package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"compcache/internal/snap"
)

// runSchedule drives nActors actors over the given per-actor absolute-time
// schedules and returns the dispatch log ("actor@time" per completed step).
// goOrder controls the order in which actors are armed with Go, which must
// not affect the schedule.
func runSchedule(t *testing.T, schedules [][]Time, goOrder []int) []string {
	t.Helper()
	k := NewKernel()
	clocks := make([]*Clock, len(schedules))
	for id := range schedules {
		clocks[id] = k.NewClock(ActorID(id))
	}
	var log []string
	for _, id := range goOrder {
		id := id
		k.Go(ActorID(id), func() {
			for _, at := range schedules[id] {
				clocks[id].AdvanceTo(at)
				log = append(log, fmt.Sprintf("%d@%v", id, clocks[id].Now()))
			}
		})
	}
	k.Run()
	return log
}

// TestKernelTieBreakDeterminism checks the heap's (time, actorID, seq) key:
// schedules engineered so many actors land on equal timestamps must dispatch
// in actor-ID order at each instant, identically across repeated runs and
// independently of the order actors were armed in.
func TestKernelTieBreakDeterminism(t *testing.T) {
	const nActors = 7
	rng := rand.New(rand.NewSource(42))
	schedules := make([][]Time, nActors)
	for id := range schedules {
		// Coarse timestamps (multiples of 10) force frequent exact ties
		// between different actors.
		at := Time(0)
		for s := 0; s < 50; s++ {
			at += Time(10 * (1 + rng.Intn(3)))
			schedules[id] = append(schedules[id], at)
		}
	}
	forward := make([]int, nActors)
	reversed := make([]int, nActors)
	for i := range forward {
		forward[i] = i
		reversed[i] = nActors - 1 - i
	}

	ref := runSchedule(t, schedules, forward)
	if got := runSchedule(t, schedules, forward); !reflect.DeepEqual(got, ref) {
		t.Fatalf("repeated run diverged:\n%v\nvs\n%v", got, ref)
	}
	if got := runSchedule(t, schedules, reversed); !reflect.DeepEqual(got, ref) {
		t.Fatalf("Go-order-reversed run diverged:\n%v\nvs\n%v", got, ref)
	}

	// Spot-check the tie rule itself: within one timestamp, dispatch order
	// is ascending actor ID.
	byTime := map[string][]string{}
	var times []string
	for _, entry := range ref {
		var id int
		var at string
		fmt.Sscanf(entry, "%d@%s", &id, &at)
		if len(byTime[at]) == 0 {
			times = append(times, at)
		}
		byTime[at] = append(byTime[at], entry)
	}
	for _, at := range times {
		group := byTime[at]
		prev := -1
		for _, entry := range group {
			var id int
			var rest string
			fmt.Sscanf(entry, "%d@%s", &id, &rest)
			if id <= prev {
				t.Fatalf("tie at %s dispatched out of actor-ID order: %v", at, group)
			}
			prev = id
		}
	}
}

// TestKernelEquivalentToFreeClock checks that a single kernel-attached actor
// observes exactly the instants a plain free-running clock would.
func TestKernelEquivalentToFreeClock(t *testing.T) {
	free := &Clock{}
	var want []Time
	for i := 1; i <= 20; i++ {
		want = append(want, free.Advance(Duration(i*137)))
	}

	k := NewKernel()
	c := k.NewClock(3)
	var got []Time
	k.Go(3, func() {
		for i := 1; i <= 20; i++ {
			got = append(got, c.Advance(Duration(i*137)))
		}
	})
	k.Run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kernel-attached clock diverged from free clock:\n%v\nvs\n%v", got, want)
	}
	if k.Now() != free.Now() {
		t.Fatalf("kernel time %v != free clock time %v", k.Now(), free.Now())
	}
}

// TestKernelSnapshotRestoreMidRun pauses a multi-actor simulation at a timer,
// snapshots the kernel with resume events still pending, restores it into a
// fresh kernel with re-bound continuations, and requires the restored run to
// produce byte-for-byte the same remaining dispatch log as the original run
// simply continuing in place.
func TestKernelSnapshotRestoreMidRun(t *testing.T) {
	const nActors = 5
	rng := rand.New(rand.NewSource(7))
	schedules := make([][]Time, nActors)
	for id := range schedules {
		at := Time(0)
		for s := 0; s < 40; s++ {
			at += Time(5 * (1 + rng.Intn(4)))
			schedules[id] = append(schedules[id], at)
		}
	}

	// body returns the actor program starting at step pc, logging into log
	// and recording completed steps in pcs.
	build := func(clocks []*Clock, pcs []int, log *[]string) func(id, pc int) func() {
		return func(id, pc int) func() {
			return func() {
				for s := pc; s < len(schedules[id]); s++ {
					clocks[id].AdvanceTo(schedules[id][s])
					*log = append(*log, fmt.Sprintf("%d@%v", id, clocks[id].Now()))
					pcs[id] = s + 1
				}
			}
		}
	}

	k1 := NewKernel()
	clocks1 := make([]*Clock, nActors)
	pcs1 := make([]int, nActors)
	var log1 []string
	body1 := build(clocks1, pcs1, &log1)
	for id := 0; id < nActors; id++ {
		clocks1[id] = k1.NewClock(ActorID(id))
		k1.Go(ActorID(id), body1(id, 0))
	}
	// Pause roughly mid-run. The timer uses a dedicated actor ID above the
	// real ones so its tie-break slot is deterministic too.
	const pauseAt = Time(200)
	k1.Schedule(pauseAt, ActorID(nActors), func(Time) { k1.Stop() })
	k1.Run()
	if k1.Pending() == 0 {
		t.Fatalf("pause produced no pending events; schedule too short")
	}

	w := snap.NewWriter()
	if err := k1.SnapshotTo(w); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	img, err := w.Bytes()
	if err != nil {
		t.Fatalf("snapshot bytes: %v", err)
	}
	pausePCs := append([]int(nil), pcs1...)
	prefixLen := len(log1)

	// Original kernel continues in place.
	k1.Run()
	wantTail := append([]string(nil), log1[prefixLen:]...)

	// Restored kernel replays the rest from the snapshot.
	k2 := NewKernel()
	r, err := snap.NewReader(img)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := k2.RestoreFrom(r); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	clocks2 := make([]*Clock, nActors)
	pcs2 := append([]int(nil), pausePCs...)
	var log2 []string
	body2 := build(clocks2, pcs2, &log2)
	for id := 0; id < nActors; id++ {
		clocks2[id] = &Clock{}
		k2.Attach(clocks2[id], ActorID(id))
		if pausePCs[id] < len(schedules[id]) {
			k2.Bind(ActorID(id), body2(id, pausePCs[id]))
		}
	}
	k2.Run()

	if !reflect.DeepEqual(log2, wantTail) {
		t.Fatalf("restored run diverged from continued run:\nrestored: %v\ncontinued: %v", log2, wantTail)
	}
	if k2.Now() != k1.Now() {
		t.Fatalf("restored kernel finished at %v, original at %v", k2.Now(), k1.Now())
	}
	for id := range clocks2 {
		if clocks2[id].Now() != clocks1[id].Now() {
			t.Fatalf("actor %d clock: restored %v vs original %v", id, clocks2[id].Now(), clocks1[id].Now())
		}
	}
}

// TestKernelSnapshotRefusesPendingTimer: timer callbacks are closures and
// must block snapshotting.
func TestKernelSnapshotRefusesPendingTimer(t *testing.T) {
	k := NewKernel()
	k.NewClock(0)
	k.Schedule(100, 0, func(Time) {})
	w := snap.NewWriter()
	if err := k.SnapshotTo(w); err == nil {
		t.Fatal("SnapshotTo allowed a pending timer callback")
	}
}

// TestKernelWaitBackwardPanics: virtual time never runs backward, attached
// or not.
func TestKernelWaitBackwardPanics(t *testing.T) {
	k := NewKernel()
	c := k.NewClock(0)
	c.now = 100
	defer func() {
		if recover() == nil {
			t.Fatal("Wait backward did not panic")
		}
	}()
	k.Wait(0, 50)
	_ = c
}
