package lint

// nondet: no nondeterministic value may flow into a replayable artifact.
// The syntactic analyzers forbid the obvious calls (walltime bans the
// host clock, globalrand the process-global source), but a value can
// still be minted legally somewhere out of scope and *flow* into an
// experiment table or an obs export — map iteration order collected into
// rows, a %p-formatted address in an event label, an env var in a CSV.
// nondet runs the dataflow/taint engine (dataflow.go) over the whole
// module and reports every source→sink flow with the deterministic
// shortest call chain, the way crosscredit prints its credit chains.
//
// Findings are positioned at the source side (the call or range that
// minted the nondeterminism, or the call whose result carries it), inside
// the function being analyzed — that is where the fix goes.

// Nondet reports nondeterministic values flowing into output sinks.
type Nondet struct{}

// Name implements Analyzer.
func (Nondet) Name() string { return "nondet" }

// Doc implements Analyzer.
func (Nondet) Doc() string {
	return "no nondeterministic value (host clock, global rand, map order, %p, env) may flow into obs exports or experiment tables"
}

// Severity implements Analyzer.
func (Nondet) Severity() Severity { return SevError }

// Check implements Analyzer.
func (nd Nondet) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil || pkg.Mod.Graph == nil {
		return nil
	}
	tf := pkg.Mod.Taint()
	var out []Diagnostic
	for _, n := range pkg.Mod.Graph.order {
		if n.Pkg != pkg {
			continue
		}
		for _, h := range tf.HitsIn(n.Fn) {
			out = append(out, diag(pkg, nd.Name(), h.Node,
				"nondeterministic %s flows into %s (%s); replayable output must not depend on it",
				h.Source, h.Sink, chainString(h.Chain)))
		}
	}
	return out
}
