package lint

import (
	"go/ast"
	"slices"
)

// GlobalRand forbids the process-global math/rand source and unseeded
// constructions. Every experiment must be byte-identical at any -j
// (PR 1's guarantee), so all randomness has to flow from an explicit seed
// the way internal/trace and internal/workload already do:
//
//	rng := rand.New(rand.NewSource(seed))
//
// Flagged:
//   - any call through the package-level source: rand.Intn, rand.Shuffle,
//     rand.Float64, rand.Seed, ... (their stream is shared, goroutine-
//     interleaving-dependent, and auto-seeded since Go 1.20);
//   - rand.New(rand.NewSource(expr)) where expr is a computed value such
//     as time.Now().UnixNano() rather than a constant, parameter or field.
type GlobalRand struct{}

// Name implements Analyzer.
func (GlobalRand) Name() string { return "globalrand" }

// Doc implements Analyzer.
func (GlobalRand) Doc() string {
	return "forbid the global math/rand source; randomness must come from rand.New(rand.NewSource(seed)) with an explicit seed"
}

// Severity implements Analyzer.
func (GlobalRand) Severity() Severity { return SevError }

// randConstructors are the math/rand package-level names that do not touch
// the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Check implements Analyzer.
func (g GlobalRand) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		names := append(importNames(f, "math/rand"), importNames(f, "math/rand/v2")...)
		if len(names) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !slices.Contains(names, id.Name) {
				return true
			}
			fn := sel.Sel.Name
			switch {
			case !randConstructors[fn] && ast.IsExported(fn):
				out = append(out, diag(pkg, g.Name(), call,
					"rand.%s uses the process-global source; thread a seeded *rand.Rand instead", fn))
			case fn == "New" && len(call.Args) == 1:
				if src, ok := call.Args[0].(*ast.CallExpr); ok {
					if s, ok := src.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "NewSource" && len(src.Args) == 1 {
						if !explicitSeed(src.Args[0]) {
							out = append(out, diag(pkg, g.Name(), src.Args[0],
								"rand.NewSource seed must be a constant, parameter or field, not a computed value"))
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// explicitSeed reports whether an expression is an acceptable seed: a
// literal, an identifier (constant, parameter, local), a field selector,
// arithmetic over those, or a basic integer conversion of one. Function
// calls — time.Now().UnixNano() being the canonical offender — are not.
func explicitSeed(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.ParenExpr:
		return explicitSeed(e.X)
	case *ast.UnaryExpr:
		return explicitSeed(e.X)
	case *ast.BinaryExpr:
		return explicitSeed(e.X) && explicitSeed(e.Y)
	case *ast.CallExpr:
		// Allow conversions like int64(seed); a conversion has exactly one
		// argument and a bare type name as its operand.
		if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) == 1 {
			switch id.Name {
			case "int", "int32", "int64", "uint", "uint32", "uint64":
				return explicitSeed(e.Args[0])
			}
		}
		return false
	default:
		return false
	}
}
