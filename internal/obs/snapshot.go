package obs

import (
	"fmt"
	"sort"
	"time"

	"compcache/internal/sim"
	"compcache/internal/snap"
)

// SnapshotTo serializes the bus: the retained events (oldest first), the
// drop counter, and every registered metric by name. The enable mask is
// written only to be verified on restore — it comes from the configuration.
// A nil bus writes a presence flag and nothing else.
func (b *Bus) SnapshotTo(w *snap.Writer) {
	w.Section("obs.bus")
	w.Bool(b != nil)
	if b == nil {
		return
	}
	w.U32(uint32(b.mask))
	events := b.Events()
	w.Int(len(events))
	for _, e := range events {
		w.I64(int64(e.T))
		w.U32(uint32(e.Class))
		w.U8(uint8(e.Sub))
		w.I32(e.Seg)
		w.I32(e.Page)
		w.I64(e.Bytes)
		w.Dur(e.Dur)
		w.I64(e.Aux)
	}
	w.U64(b.dropped)
	snapshotRegistry(w, &b.reg)
}

func snapshotRegistry(w *snap.Writer, reg *Registry) {
	names := make([]string, 0, len(reg.counters))
	for name := range reg.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, name := range names {
		w.String(name)
		w.U64(reg.counters[name].v)
	}
	names = names[:0]
	for name := range reg.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, name := range names {
		w.String(name)
		w.I64(reg.gauges[name].v)
	}
	names = names[:0]
	for name := range reg.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, name := range names {
		h := reg.hists[name]
		w.String(name)
		w.Int(len(h.counts))
		for _, c := range h.counts {
			w.U64(c)
		}
		w.U64(h.count)
		w.Dur(h.sum)
		w.Dur(h.min)
		w.Dur(h.max)
	}
}

// RestoreFrom rebuilds the bus's events and metrics. Metric values are
// restored onto the existing handles in place — subsystems cached those
// pointers at wiring time — so a metric named in the snapshot must already
// be registered on this bus.
func (b *Bus) RestoreFrom(r *snap.Reader) error {
	r.Section("obs.bus")
	present := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if present != (b != nil) {
		return fmt.Errorf("obs: snapshot bus presence %v does not match the configuration", present)
	}
	if b == nil {
		return nil
	}
	mask := Class(r.U32())
	if r.Err() == nil && mask != b.mask {
		return fmt.Errorf("obs: snapshot mask %#x does not match configured %#x", mask, b.mask)
	}
	nevents := r.Int()
	if r.Err() == nil && (nevents < 0 || nevents > cap(b.ring)) {
		return fmt.Errorf("obs: snapshot holds %d events, ring capacity %d", nevents, cap(b.ring))
	}
	ring := b.ring[:0]
	for i := 0; i < nevents && r.Err() == nil; i++ {
		ring = append(ring, Event{
			T:     sim.Time(r.I64()),
			Class: Class(r.U32()),
			Sub:   Subsystem(r.U8()),
			Seg:   r.I32(),
			Page:  r.I32(),
			Bytes: r.I64(),
			Dur:   r.Dur(),
			Aux:   r.I64(),
		})
	}
	dropped := r.U64()
	ncounters := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	counters := make(map[string]uint64, ncounters)
	for i := 0; i < ncounters && r.Err() == nil; i++ {
		counters[r.String()] = r.U64()
	}
	ngauges := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	gauges := make(map[string]int64, ngauges)
	for i := 0; i < ngauges && r.Err() == nil; i++ {
		gauges[r.String()] = r.I64()
	}
	nhists := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	type histState struct {
		counts []uint64
		count  uint64
		sum    time.Duration
		min    time.Duration
		max    time.Duration
	}
	hists := make(map[string]histState, nhists)
	for i := 0; i < nhists && r.Err() == nil; i++ {
		name := r.String()
		nbuckets := r.Int()
		if r.Err() != nil {
			break
		}
		if nbuckets < 0 || nbuckets > len(DefaultBuckets)+1 {
			return fmt.Errorf("obs: snapshot histogram %q has %d buckets", name, nbuckets)
		}
		hs := histState{counts: make([]uint64, nbuckets)}
		for j := range hs.counts {
			hs.counts[j] = r.U64()
		}
		hs.count = r.U64()
		hs.sum = r.Dur()
		hs.min = r.Dur()
		hs.max = r.Dur()
		hists[name] = hs
	}
	if err := r.Err(); err != nil {
		return err
	}
	for name, v := range counters {
		c, ok := b.reg.counters[name]
		if !ok {
			return fmt.Errorf("obs: snapshot names unregistered counter %q", name)
		}
		c.v = v
	}
	for name, v := range gauges {
		g, ok := b.reg.gauges[name]
		if !ok {
			return fmt.Errorf("obs: snapshot names unregistered gauge %q", name)
		}
		g.v = v
	}
	for name, hs := range hists {
		h, ok := b.reg.hists[name]
		if !ok {
			return fmt.Errorf("obs: snapshot names unregistered histogram %q", name)
		}
		if len(hs.counts) != len(h.counts) {
			return fmt.Errorf("obs: snapshot histogram %q has %d buckets, want %d", name, len(hs.counts), len(h.counts))
		}
		copy(h.counts, hs.counts)
		h.count = hs.count
		h.sum = hs.sum
		h.min = hs.min
		h.max = hs.max
	}
	b.ring = ring
	b.start = 0
	b.n = len(ring)
	b.dropped = dropped
	return nil
}
