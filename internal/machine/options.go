package machine

import (
	"compcache/internal/fault"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/swap"
)

// Option customizes machine assembly beyond the value-typed Config. The
// options path is the one place cross-cutting attachments land — the
// observability bus, the discrete-event kernel, the fleet's remote page
// store — so Config stays a plain, comparable description of the simulated
// hardware while everything that wires the machine into a larger harness
// arrives explicitly at construction:
//
//	m, err := machine.New(cfg, machine.WithObs(obs.Options{}), machine.WithKernel(k, 3))
type Option func(*buildOpts)

// buildOpts collects every Option before assembly.
type buildOpts struct {
	obs    *obs.Options
	kernel *sim.Kernel
	actor  sim.ActorID
	remote RemoteStore
}

// WithObs attaches the observability layer: every subsystem emits
// virtual-time events onto the machine's bus and feeds the metrics registry
// (the zero obs.Options traces every class into the default ring). Without
// this option observation is disabled entirely — each probe site then costs
// one nil test.
func WithObs(o obs.Options) Option {
	return func(b *buildOpts) { b.obs = &o }
}

// WithKernel attaches the machine's clock to a shared discrete-event kernel
// as actor id, making the machine one actor of a co-advancing fleet.
//
// Kernel-attachment contract: the attachment happens once, at construction
// time, before any virtual time passes — construction charges accrue while
// the kernel is not yet running and land directly on the actor's clock.
// After construction the machine's program (the workload driving it) must
// run inside kernel.Go/Run, where every Clock.Advance/AdvanceTo becomes a
// kernel-mediated wait; driving an attached machine outside the kernel's
// scheduler panics on the first wait. Each machine of a fleet needs a
// distinct actor id, and the id doubles as the event tie-breaker, so fleet
// composition — not attachment order — determines the schedule. Attached
// machines cannot use Machine.Snapshot (the kernel snapshots instead; see
// sim.Kernel.SnapshotTo).
func WithKernel(k *sim.Kernel, id sim.ActorID) Option {
	return func(b *buildOpts) {
		b.kernel = k
		b.actor = id
	}
}

// WithRemote attaches a remote page store: fleet-level memory the paging
// policy offers evicted pages to before falling back to the local backing
// store, and consults first on faults. The cluster package implements it
// with sibling-machine memory and a shared page server.
func WithRemote(r RemoteStore) Option {
	return func(b *buildOpts) { b.remote = r }
}

// RemoteStore is the machine's hook into fleet-level page placement. All
// methods are called on the machine's own actor goroutine; implementations
// charge transfer costs through the machine's devices (so virtual time and
// contention stay honest) and must copy payloads they retain — the machine
// reuses its scratch buffers immediately after each call.
type RemoteStore interface {
	// Offer proposes an evicted page for remote placement. payload is the
	// page's travel form (compressed when compressed is true), sum its
	// checksum. Offer reports whether the remote store took responsibility
	// for the copy; false means the caller must place the page locally.
	Offer(key swap.PageKey, payload []byte, compressed bool, sum uint32) bool

	// Fetch returns the remotely held copy of a page. ok reports whether
	// the store holds the page at all; err reports a transfer failure for
	// a page the store does hold.
	Fetch(key swap.PageKey) (payload []byte, compressed bool, sum uint32, ok bool, err error)

	// Has reports whether the store holds a current copy of the page.
	Has(key swap.PageKey) bool

	// Invalidate discards the remote copy (the page was modified locally).
	Invalidate(key swap.PageKey)
}

// Introspection bundles the read-only wiring handles a harness occasionally
// needs after construction — the event bus, the fault injector, the concrete
// backing stores, and the mount-time recovery report. Each field is nil when
// the corresponding subsystem is absent. Machine.Introspect replaces the
// former per-handle accessor sprawl (Bus, Injector, LFSStore,
// ClusteredStore, RecoveryReport) with one documented view; the measurement
// API (Stats, Events, Metrics, Faults, Err) stays on Machine itself.
type Introspection struct {
	// Bus is the machine's event bus (nil without WithObs).
	Bus *obs.Bus
	// Injector is the deterministic fault injector (nil without
	// Config.Faults). Harnesses use it to schedule crashes dynamically
	// (Injector.CrashAt) and to read injection counters.
	Injector *fault.Injector
	// LFS is the log-structured backing store, when the machine pages into
	// one.
	LFS *swap.LFS
	// Clustered is the compressed clustered backing store, when the
	// compression cache is enabled.
	Clustered *swap.Clustered
	// Recovery is the mount-time recovery report for machines booted with
	// NewFromMedia.
	Recovery *swap.RecoveryReport
}

// Introspect returns the machine's wiring handles. See Introspection.
func (m *Machine) Introspect() Introspection {
	return Introspection{
		Bus:       m.bus,
		Injector:  m.faults,
		LFS:       m.lfs,
		Clustered: m.clustered,
		Recovery:  m.recovery,
	}
}
