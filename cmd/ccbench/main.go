// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench -list
//	ccbench [-scale small|paper] [-run name1,name2,...] [-j N] [-format text|csv]
//
// Every experiment is registered under a stable name (see -list); -run
// accepts exact names, the group names "ablations" and "extensions", and
// "all". The older -exp, -faults and -fault-rate flags remain as aliases.
//
// Each experiment prints the same rows or series the paper reports; the
// paper's published values are included alongside where applicable (Table 1)
// so the shape comparison is immediate. At the paper scale the full suite
// takes a few minutes of host time; the virtual-time measurements themselves
// are deterministic.
//
// -j caps how many simulated machines run concurrently: 0 (the default)
// uses one worker per core, 1 forces serial execution. Every machine runs
// on its own virtual clock with its own cloned workload, so the output is
// byte-for-byte identical at any -j.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"compcache/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or paper")
	runFlag := flag.String("run", "", "comma-separated experiment names (see -list); groups: ablations, extensions, all")
	listFlag := flag.Bool("list", false, "list registered experiment names and exit")
	expFlag := flag.String("exp", "", "alias for -run (kept for compatibility)")
	format := flag.String("format", "text", "output format for tables: text or csv")
	jobs := flag.Int("j", 0, "max concurrent simulated machines (0 = one per core, 1 = serial); output is identical at any value")
	faultsFlag := flag.Bool("faults", false, "run the fault-injection sweep (overhead and survival vs fault rate); shorthand for -run faults")
	faultRate := flag.Float64("fault-rate", -1, "restrict the fault sweep to a single rate (plus the fault-free baseline); default sweeps the built-in rates")
	hostTiming := flag.Bool("host-timing", false, "measure host-clock columns (codec sweep ns/op); nondeterministic, off by default")
	tracePath := flag.String("trace", "", "write a machine-readable JSONL trace of trace-capable experiments (ext/fleet-sweep) to this file")
	flag.Parse()

	if *listFlag {
		for _, name := range exp.Names() {
			fmt.Println(name)
		}
		return
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "ccbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	var scale exp.Scale
	switch *scaleFlag {
	case "small":
		scale = exp.Small
	case "paper":
		scale = exp.Paper
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	// Merge the aliases into one selection: -run wins, then -exp, then the
	// -faults shorthand, then the full suite.
	selection := *runFlag
	if selection == "" {
		selection = *expFlag
	}
	if *faultsFlag {
		if selection == "" || selection == "all" {
			selection = "faults"
		} else if !strings.Contains(","+selection+",", ",faults,") {
			selection += ",faults"
		}
	}
	if selection == "" {
		selection = "all"
	}
	experiments, err := exp.Resolve(strings.Split(selection, ","))
	if err != nil {
		// Bad selection is a usage error (exit 2), like a bad flag value.
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(2)
	}
	if len(experiments) == 0 {
		fmt.Fprintf(os.Stderr, "ccbench: nothing selected by %q\n", selection)
		os.Exit(2)
	}

	opts := exp.DefaultOptions(scale)
	opts.Parallelism = *jobs
	opts.FaultRate = *faultRate
	opts.HostTiming = *hostTiming
	opts.TracePath = *tracePath

	emit := func(tab *exp.Table) {
		if *format == "csv" {
			fmt.Printf("# %s\n%s\n", tab.Title, tab.CSV())
			return
		}
		fmt.Println(tab)
	}

	ctx := context.Background()
	start := time.Now() //cclint:ignore walltime -- deliberate host-time reading: the closing line reports how long the suite took on this machine, never a simulated cost
	for _, e := range experiments {
		res, err := e.Run(ctx, opts)
		fatal(err)
		for _, tab := range res.Tables() {
			emit(tab)
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond) //cclint:ignore walltime -- deliberate host-time reading: the summary is explicitly labelled "(host time)" in the output
	fmt.Printf("ccbench: %d experiment(s) at %s scale in %v (host time)\n",
		len(experiments), scale, elapsed)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}
