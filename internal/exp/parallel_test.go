package exp

import (
	"context"
	"reflect"
	"testing"

	"compcache/internal/machine"
	"compcache/internal/workload"
)

// The acceptance bar for the parallel runner: the rendered experiment
// output must be byte-for-byte identical at any parallelism. Each simulated
// machine runs on its own virtual clock with its own cloned workload, so
// host-side scheduling must be invisible in the results.

func TestTable1ParallelMatchesSerial(t *testing.T) {
	render := func(parallelism int) string {
		opts := DefaultTable1Options(Small)
		// Trim to three rows to keep the doubled run affordable; the three
		// cover all mutable-receiver workload kinds (Compare, CacheSim, Sort).
		opts.Workloads = opts.Workloads[:3]
		opts.Parallelism = parallelism
		res, err := Table1(opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.Table().String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("Table 1 differs between -j 1 and -j 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestFig3ParallelMatchesSerial(t *testing.T) {
	render := func(parallelism int) string {
		opts := DefaultFig3Options(Small)
		opts.SizesMB = opts.SizesMB[:3] // 12 machines; enough to overlap workers
		opts.Parallelism = parallelism
		res, err := Fig3(opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.TableA().String() + res.TableB().String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("Figure 3 differs between -j 1 and -j 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// RunBoth's contract predates the runner: the two-machine comparison must
// come back identical whether the machines run serially or concurrently.
func TestRunBothNMatchesRunBoth(t *testing.T) {
	opts := DefaultTable1Options(Small)
	w := opts.Workloads[0]
	cfgStd := machine.Default(int64(opts.MemoryMB) << 20)
	cfgCC := cfgStd.WithCC()
	serial, err := workload.RunBoth(cfgStd, cfgCC, workload.Clone(w))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := workload.RunBothN(context.Background(), cfgStd, cfgCC, workload.Clone(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("RunBothN(2) differs from RunBoth:\n%+v\nvs\n%+v", parallel, serial)
	}
}
