// Package obs is the obscoverage fixture's observability layer: Emit,
// Inc and Add are the probes the analyzer requires charged work to reach.
package obs

// Event is one trace record.
type Event struct {
	Class int
	Bytes int64
}

// Bus collects events.
type Bus struct{ events []Event }

// Emit records an event; it is a probe.
func (b *Bus) Emit(e Event) { b.events = append(b.events, e) }

// Counter is a monotone counter.
type Counter struct{ n int64 }

// Inc bumps the counter; it is a probe.
func (c *Counter) Inc() { c.n++ }

// Add adds d to the counter; it is a probe.
func (c *Counter) Add(d int64) { c.n += d }
