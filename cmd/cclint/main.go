// Command cclint runs the project's custom static-analysis suite: the
// determinism and virtual-time invariants the reproduction depends on.
//
// Usage:
//
//	cclint [-json] [-list] [packages...]
//
// Packages default to ./... . Patterns follow the go tool's shape
// ("./...", "./internal/...", or plain directories). Exit status is 0
// when the tree is clean, 1 when there are findings, and 2 on usage or
// load errors.
//
// Findings are suppressed one line at a time, with a mandatory reason:
//
//	start := time.Now() //cclint:ignore walltime -- host-time progress line
//
// See internal/lint for the analyzers and DESIGN.md ("Determinism and
// virtual-time invariants") for why each rule exists.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compcache/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "cclint: no Go packages matched")
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cclint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
