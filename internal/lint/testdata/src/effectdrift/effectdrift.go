// Package effectdrift exercises the manifest-drift analyzer. The
// fixture tree's manifest (testdata/src/.cclint-effects.json) records
// Drifted as effect-free, Stable as allocating, and Shrunk as
// allocating: only Drifted — whose inferred effects exceed its
// recorded entry — warns. Functions absent from the manifest
// (Unlisted) never warn, and effect shrink (Shrunk) never warns.
package effectdrift

// Drifted gained an allocation its recorded (empty) effect set does not
// admit.
func Drifted() []byte { // want `effects of Drifted grew beyond the recorded manifest: inferred \{allocates\}, recorded \{none\}`
	return make([]byte, 8)
}

// Stable allocates, and its manifest entry says so. Silent.
func Stable() []byte {
	return make([]byte, 8)
}

// Shrunk lost the allocation its entry records; shrink is progress, not
// drift. Silent.
func Shrunk(n int) int {
	return n + 1
}

// Unlisted has no manifest entry; a fresh function is quiet until a
// baseline is recorded for it. Silent.
func Unlisted() []byte {
	return make([]byte, 8)
}
