package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is the unit cclint analyzes: every package of one Go module,
// parsed and type-checked together with a single shared types.Info, plus
// the approximate static call graph built over the whole set. Analyzers
// reach cross-package facts (does this method transitively advance the
// virtual clock two packages away?) through Module, while per-package
// syntax stays on Package exactly as before.
type Module struct {
	// Root is the directory the tree was loaded from (the go.mod
	// directory for LoadModule, the fixture root for LoadTree).
	Root string
	// Path is the module import path ("compcache", or the fake path a
	// fixture tree is mounted at).
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs holds all packages, sorted by import path.
	Pkgs []*Package
	// Info is the shared type information for the whole module. It is
	// always non-nil; entries may be missing for code that failed to
	// type-check (TypeErrors records why), and analyzers must treat a
	// nil lookup as "unknown", never as proof.
	Info *types.Info
	// Graph is the module-wide approximate call graph.
	Graph *CallGraph
	// TypeErrors collects type-check errors. A broken tree still loads —
	// cclint has to be able to point at code the compiler also rejects —
	// but analyses degrade to syntax where type facts are missing.
	TypeErrors []error
	// EffectsPath overrides where the effects manifest is read from
	// (absolute, or relative to Root); empty selects EffectsFile.
	EffectsPath string

	byPath map[string]*Package
	facts  map[string]map[*types.Func]bool

	effects             *EffectFacts       // memoized effect-inference table
	taint               *TaintFacts        // memoized dataflow/taint table
	kproto              *kprotoFacts       // memoized kernel-protocol facts
	manifest            map[string]Effects // memoized .cclint-effects.json
	manifestLoaded      bool
	manifestErr         error
	manifestErrReported bool
}

// effectsManifest loads the module's effects manifest once; a missing
// file is an empty manifest.
func (m *Module) effectsManifest() (map[string]Effects, error) {
	if !m.manifestLoaded {
		m.manifestLoaded = true
		p := m.EffectsPath
		if p == "" {
			p = EffectsFile
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(m.Root, p)
		}
		m.manifest, m.manifestErr = LoadEffects(p)
	}
	return m.manifest, m.manifestErr
}

// factSet memoizes Graph.Reaches computations under a key, so several
// analyzers (and several packages within one analyzer) share one
// propagation pass over the graph.
func (m *Module) factSet(key string, pred func(*types.Func) bool) map[*types.Func]bool {
	if m.facts == nil {
		m.facts = make(map[string]map[*types.Func]bool)
	}
	if s, ok := m.facts[key]; ok {
		return s
	}
	s := m.Graph.Reaches(pred)
	m.facts[key] = s
	return s
}

// Package is one parsed Go package as the analyzers see it. Syntax (Files,
// Lines) is always present; Types carries the package's type-checked form
// and Mod links back to the whole module for cross-package queries.
type Package struct {
	// Path is the slash-separated import path, e.g.
	// "compcache/internal/machine".
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions all Files (it is the module's shared FileSet).
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Lines holds each file's raw source split into lines, keyed the same
	// way Fset positions name files. The ignore machinery uses it to tell
	// trailing directives from standalone ones.
	Lines map[string][]string
	// Types is the type-checked package (never nil after loading, but
	// possibly incomplete if TypeErrors is non-empty for the module).
	Types *types.Package
	// Mod is the module this package belongs to.
	Mod *Module

	imports []string // module-internal import paths, for topo-sorting
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LoadModule locates the module containing dir (by walking up to go.mod)
// and loads every package in it: the whole tree is parsed, type-checked
// in dependency order with one shared types.Info, and the call graph is
// built. Test files (_test.go) are not loaded — the invariants cclint
// enforces are about simulation code, and tests routinely hold golden
// host-time or shuffled fixtures — and testdata, vendor and hidden
// directories are always skipped, so fixture packages can never leak into
// a real lint run (see TestLoadModuleNeverLoadsTestdata).
func LoadModule(dir string) (*Module, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return LoadTree(root, module)
}

// LoadTree loads the directory tree rooted at root as if it were a module
// named modulePath. The golden tests use it to mount
// internal/lint/testdata/src as a pretend module, so fixture packages get
// import paths like "compcache/crosscredit/internal/machine" and can
// import each other, while real loads (LoadModule) can never reach them.
func LoadTree(root, modulePath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Root:   root,
		Path:   modulePath,
		Fset:   token.NewFileSet(),
		Info:   newInfo(),
		byPath: make(map[string]*Package),
	}

	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, d := range dirs {
		pkg, err := parsePackage(mod, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Pkgs = append(mod.Pkgs, pkg)
			mod.byPath[pkg.Path] = pkg
		}
	}
	if len(mod.Pkgs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", root)
	}

	order, err := topoSort(mod)
	if err != nil {
		return nil, err
	}
	check(mod, order)
	mod.Graph = buildCallGraph(mod)
	return mod, nil
}

// Select resolves go-tool-shaped package patterns against the loaded
// module, relative to dir: "./..." selects every package at or below dir,
// "./internal/..." a subtree, and a plain directory path selects that one
// directory. Selection never reaches outside the loaded set, so patterns
// naming a testdata directory select nothing.
func (m *Module) Select(dir string, patterns []string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[*Package]bool)
	var out []*Package
	add := func(p *Package) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(abs, base)
		}
		base = filepath.Clean(base)
		for _, p := range m.Pkgs {
			pdir, err := filepath.Abs(p.Dir)
			if err != nil {
				continue
			}
			if pdir == base || (rec && strings.HasPrefix(pdir+string(filepath.Separator), base+string(filepath.Separator))) {
				add(p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// parsePackage parses the non-test Go files of one directory into the
// module. It returns (nil, nil) for directories with no Go files.
func parsePackage(mod *Module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	pkg := &Package{
		Path:  importPath(dir, mod.Root, mod.Path),
		Dir:   dir,
		Fset:  mod.Fset,
		Lines: make(map[string][]string),
		Mod:   mod,
	}
	imports := make(map[string]bool)
	for _, n := range names {
		path := filepath.Join(dir, n)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(mod.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Lines[path] = strings.Split(string(src), "\n")
		for _, imp := range f.Imports {
			if p := importLiteral(imp); p == mod.Path || strings.HasPrefix(p, mod.Path+"/") {
				imports[p] = true
			}
		}
	}
	for p := range imports {
		pkg.imports = append(pkg.imports, p)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// importLiteral unquotes an import spec's path, returning "" on error.
func importLiteral(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 && p[0] == '"' {
		p = p[1 : len(p)-1]
	}
	return p
}

// importPath maps a directory inside the module to its import path.
func importPath(dir, root, module string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return module
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// topoSort orders the module's packages so every package comes after its
// module-internal imports, which is the order the type checker needs.
func topoSort(mod *Module) ([]*Package, error) {
	const (
		white = iota // unvisited
		grey         // on the current DFS path
		black        // done
	)
	state := make(map[*Package]int)
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p] = grey
		for _, imp := range p.imports {
			if dep := mod.byPath[imp]; dep != nil && dep != p {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range mod.Pkgs { // mod.Pkgs is sorted, so order is stable
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// newInfo allocates the shared types.Info with every map analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// moduleImporter resolves module-internal imports from the loaded set and
// everything else (the standard library) by type-checking it from GOROOT
// source — the build environment has no network and no pre-compiled
// export data, so "source" is the only compiler the stdlib importer can
// honestly claim.
type moduleImporter struct {
	mod *Module
	std types.ImporterFrom
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, mi.mod.Root, 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == mi.mod.Path || strings.HasPrefix(path, mi.mod.Path+"/") {
		if p := mi.mod.byPath[path]; p != nil && p.Types != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("package %s not found in module %s", path, mi.mod.Path)
	}
	return mi.std.ImportFrom(path, dir, mode)
}

// check type-checks the packages in dependency order, sharing one
// types.Info so cross-package identities (the *types.Func for
// sim.Clock.Advance, say) are the same object everywhere.
func check(mod *Module, order []*Package) {
	mi := &moduleImporter{mod: mod}
	if src, ok := importer.ForCompiler(mod.Fset, "source", nil).(types.ImporterFrom); ok {
		mi.std = src
	}
	for _, pkg := range order {
		conf := types.Config{
			Importer: mi,
			Error: func(err error) {
				mod.TypeErrors = append(mod.TypeErrors, err)
			},
		}
		tpkg, err := conf.Check(pkg.Path, mod.Fset, pkg.Files, mod.Info)
		if tpkg == nil {
			// Even a badly broken package yields a placeholder so
			// importers of it can proceed.
			tpkg = types.NewPackage(pkg.Path, "_")
			if err != nil {
				mod.TypeErrors = append(mod.TypeErrors, err)
			}
		}
		pkg.Types = tpkg
	}
}
