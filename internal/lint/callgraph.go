package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is the module-wide approximate static call graph.
//
// Nodes are the named functions and methods declared in the module; every
// call site in a body (including calls made inside function literals,
// which are attributed to the enclosing declaration) contributes edges.
// Three kinds of imprecision are accepted, all conservative for the
// analyses built on top:
//
//   - A call through an interface is resolved with type-informed
//     method-set resolution: an edge is added to the interface method
//     itself and to the matching concrete method of every module type
//     that implements the interface. This over-approximates the callees,
//     which makes "reaches a clock advance" facts easier to earn and
//     "does work without credit" findings harder to fake.
//   - A call through a plain func value is dropped (no edge).
//   - Calls into other modules (the standard library) appear as edges to
//     body-less external nodes, so predicates can still match them by
//     package path and name.
type CallGraph struct {
	mod   *Module
	nodes map[*types.Func]*Node
	// order lists the declared nodes in (package, file, position) order,
	// so every whole-graph pass is deterministic by construction.
	order []*Node
	// impls caches interface-method -> concrete-method resolution.
	impls map[*types.Func][]*types.Func
	// named lists every defined (non-alias) type in the module, in
	// deterministic order, for method-set resolution.
	named []*types.Named
	// orderIdx maps each declared function to its position in order, the
	// tie-break every deterministic traversal uses.
	orderIdx map[*types.Func]int
}

// Node is one function or method in the graph.
type Node struct {
	// Fn identifies the function; for external (out-of-module) callees
	// it is the only field set.
	Fn *types.Func
	// Decl is the declaration, nil for external functions.
	Decl *ast.FuncDecl
	// Pkg is the declaring package, nil for external functions.
	Pkg *Package
	// Out lists the call edges in source order.
	Out []Edge
}

// Edge is one call site.
type Edge struct {
	// Site is the call expression (positions diagnostics).
	Site ast.Node
	// Callee is the resolved target.
	Callee *types.Func
	// Dynamic marks edges recovered by interface method-set resolution.
	Dynamic bool
}

// Node returns the graph node for fn, or nil.
func (g *CallGraph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// buildCallGraph constructs the graph after type-checking.
func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		mod:   mod,
		nodes: make(map[*types.Func]*Node),
		impls: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range mod.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.named = append(g.named, named)
			}
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := mod.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type checking failed for this decl
				}
				node := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = node
				g.order = append(g.order, node)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, e := range g.resolve(call) {
						node.Out = append(node.Out, e)
					}
					return true
				})
			}
		}
	}
	g.orderIdx = make(map[*types.Func]int, len(g.order))
	for i, n := range g.order {
		g.orderIdx[n.Fn] = i
	}
	return g
}

// before orders functions for tie-breaking: declared functions by their
// position in g.order, external functions after them by full name.
func (g *CallGraph) before(a, b *types.Func) bool {
	ia, oka := g.orderIdx[a]
	ib, okb := g.orderIdx[b]
	if oka != okb {
		return oka
	}
	if oka && ia != ib {
		return ia < ib
	}
	return a.FullName() < b.FullName()
}

// resolve maps one call expression to its edges.
func (g *CallGraph) resolve(call *ast.CallExpr) []Edge {
	info := g.mod.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []Edge{{Site: call, Callee: fn}}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				out := []Edge{{Site: call, Callee: fn, Dynamic: true}}
				for _, impl := range g.implementations(sel.Recv(), fn) {
					out = append(out, Edge{Site: call, Callee: impl, Dynamic: true})
				}
				return out
			}
			return []Edge{{Site: call, Callee: fn}}
		}
		// No selection: a package-qualified call like compress.Compress.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []Edge{{Site: call, Callee: fn}}
		}
	}
	return nil
}

// implementations resolves an interface method to the matching concrete
// methods of every module type whose method set satisfies the interface.
func (g *CallGraph) implementations(recv types.Type, m *types.Func) []*types.Func {
	if cached, ok := g.impls[m]; ok {
		return cached
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		g.impls[m] = nil
		return nil
	}
	var out []*types.Func
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		var recvT types.Type
		switch {
		case types.Implements(named, iface):
			recvT = named
		case types.Implements(types.NewPointer(named), iface):
			recvT = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recvT, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if pa, pb := pkgPath(a), pkgPath(b); pa != pb {
			return pa < pb
		}
		return a.FullName() < b.FullName()
	})
	g.impls[m] = out
	return out
}

// Reaches computes the set of functions that satisfy pred themselves or
// can reach, through any chain of call edges, a callee satisfying pred.
func (g *CallGraph) Reaches(pred func(*types.Func) bool) map[*types.Func]bool {
	// Reverse adjacency over every callee (including external ones).
	rev := make(map[*types.Func][]*types.Func)
	reached := make(map[*types.Func]bool)
	var queue []*types.Func
	mark := func(fn *types.Func) {
		if !reached[fn] {
			reached[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, node := range g.order {
		if pred(node.Fn) {
			mark(node.Fn)
		}
		for _, e := range node.Out {
			rev[e.Callee] = append(rev[e.Callee], node.Fn)
			if pred(e.Callee) {
				mark(e.Callee)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range rev[fn] {
			mark(caller)
		}
	}
	return reached
}

// Path returns a shortest call chain from `from` to a callee satisfying
// pred: [from, ..., target]. It returns nil if no chain exists. The BFS is
// level-synchronized and ties between same-length chains are broken by
// g.order (each level's frontier is visited in declaration order, and the
// first match wins), so the chain reported for a diagnostic is the same
// on every run regardless of how the graph was assembled.
func (g *CallGraph) Path(from *types.Func, pred func(*types.Func) bool) []*types.Func {
	if pred(from) {
		return []*types.Func{from}
	}
	parent := map[*types.Func]*types.Func{from: nil}
	frontier := []*types.Func{from}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return g.before(frontier[i], frontier[j]) })
		var next []*types.Func
		for _, fn := range frontier {
			node := g.nodes[fn]
			if node == nil {
				continue
			}
			var target *types.Func
			for _, e := range node.Out {
				if pred(e.Callee) && (target == nil || g.before(e.Callee, target)) {
					target = e.Callee
				}
			}
			if target != nil {
				chain := []*types.Func{target}
				for f := fn; f != nil; f = parent[f] {
					chain = append([]*types.Func{f}, chain...)
				}
				return chain
			}
			for _, e := range node.Out {
				if _, ok := parent[e.Callee]; !ok {
					parent[e.Callee] = fn
					next = append(next, e.Callee)
				}
			}
		}
		frontier = next
	}
	return nil
}

// pkgPath returns a function's package path, "" for builtins.
func pkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathHasSuffix reports whether an import path is, or ends with, the
// given slash-separated suffix ("internal/sim" matches both
// "compcache/internal/sim" and a fixture's "compcache/x/internal/sim").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// fnIn reports whether fn is declared in a package whose path ends with
// suffix and has one of the given names.
func fnIn(fn *types.Func, suffix string, names map[string]bool) bool {
	return fn != nil && names[fn.Name()] && pathHasSuffix(pkgPath(fn), suffix)
}

// chainString renders a call chain for a diagnostic message, e.g.
// "Flush → lfs.Append → compress.Compress".
func chainString(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, fn := range chain {
		name := fn.Name()
		if i > 0 {
			if p := fn.Pkg(); p != nil {
				name = p.Name() + "." + name
			}
		}
		parts[i] = name
	}
	return strings.Join(parts, " → ")
}
