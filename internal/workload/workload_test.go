package workload

import (
	"bytes"
	"math/rand"
	"testing"

	"compcache/internal/machine"
	"compcache/internal/trace"
)

const mb = 1 << 20

// small machine configs for workload tests (virtual sizes are scaled down;
// experiments use paper-scale parameters).
func baseCfg() machine.Config { return machine.Default(2 * mb) }
func ccCfg() machine.Config   { return machine.Default(2 * mb).WithCC() }

func TestThrasherRuns(t *testing.T) {
	for _, write := range []bool{false, true} {
		w := &Thrasher{Pages: 1024, Write: write, Passes: 2, Seed: 1}
		st, err := Measure(baseCfg(), w)
		if err != nil {
			t.Fatal(err)
		}
		if st.VM.Faults == 0 {
			t.Fatalf("write=%v: thrasher did not fault with 2x-memory working set", write)
		}
		if st.Time == 0 {
			t.Fatal("no time elapsed")
		}
	}
}

func TestThrasherNamesDistinct(t *testing.T) {
	ro := &Thrasher{Pages: 1, Write: false}
	rw := &Thrasher{Pages: 1, Write: true}
	if ro.Name() == rw.Name() {
		t.Fatal("names collide")
	}
}

func TestThrasherCCSpeedsUp(t *testing.T) {
	w := func() Workload { return &Thrasher{Pages: 1024, Write: true, Passes: 2, Seed: 1} }
	cmp, err := RunBoth(baseCfg(), ccCfg(), w())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() <= 1.5 {
		t.Fatalf("thrasher speedup = %.2f, want > 1.5 (the paper's maximum-improvement case)", cmp.Speedup())
	}
	if cmp.CC.CC.Hits == 0 {
		t.Fatal("CC run did not hit the cache")
	}
}

func TestThrasherInMemoryNoSlowdown(t *testing.T) {
	// A working set that fits in memory must not be noticeably hurt by the
	// compression cache ("the compression cache should stay out of the
	// way").
	w := func() Workload { return &Thrasher{Pages: 256, Write: true, Passes: 4, Seed: 2} }
	cmp, err := RunBoth(baseCfg(), ccCfg(), w())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() < 0.95 {
		t.Fatalf("in-memory thrasher slowed to %.2fx under the CC", cmp.Speedup())
	}
	if cmp.CC.Comp.Compressions > 50 {
		t.Fatalf("CC compressed %d pages for an in-memory workload", cmp.CC.Comp.Compressions)
	}
}

func TestThrasherValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &Thrasher{Pages: 0}); err == nil {
		t.Fatal("Pages=0 accepted")
	}
}

func TestCompareRuns(t *testing.T) {
	w := &Compare{N: 2000, Band: 128, Seed: 3}
	st, err := Measure(baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st.VM.Refs == 0 {
		t.Fatal("compare made no references")
	}
}

func TestCompareCompressesWell(t *testing.T) {
	// The DP band must be compressible (paper: ~3:1, <1% uncompressible).
	w := &Compare{N: 4000, Band: 256, Seed: 3}
	st, err := Measure(ccCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Comp.Compressions == 0 {
		t.Skip("no memory pressure at this scale")
	}
	if f := st.Comp.UncompressibleFrac(); f > 0.1 {
		t.Fatalf("compare uncompressible fraction %.2f, want < 0.1", f)
	}
	if r := st.Comp.Ratio(); r > 0.5 {
		t.Fatalf("compare compression ratio %.2f, want < 0.5", r)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &Compare{N: 1, Band: 1}); err == nil {
		t.Fatal("degenerate compare accepted")
	}
}

func TestCacheSimRuns(t *testing.T) {
	w := &CacheSim{CPUs: 2, Sets: 64, Ways: 2, AddrWords: 1 << 14,
		BlockWordsList: []int{4, 16}, Refs: 20000, Seed: 4}
	st, err := Measure(baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st.VM.Refs == 0 {
		t.Fatal("isca made no references")
	}
	rates := w.MissRates()
	if len(rates) != 2 {
		t.Fatalf("got %d miss rates, want 2", len(rates))
	}
	for i, r := range rates {
		if r <= 0 || r >= 1 {
			t.Fatalf("miss rate %d = %v out of (0,1)", i, r)
		}
	}
}

func TestCacheSimLargerBlocksFewerColdMisses(t *testing.T) {
	// With strided locality, larger blocks exploit spatial locality: the
	// miss rate should not increase dramatically with block size on the
	// strided half of the trace. We only check the simulation is sensitive
	// to its parameter at all.
	w := &CacheSim{CPUs: 2, Sets: 128, Ways: 2, AddrWords: 1 << 15,
		BlockWordsList: []int{2, 32}, Refs: 40000, Seed: 5}
	if _, err := Measure(baseCfg(), w); err != nil {
		t.Fatal(err)
	}
	rates := w.MissRates()
	if rates[0] == rates[1] {
		t.Fatalf("block size had no effect: %v", rates)
	}
}

func TestCacheSimValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &CacheSim{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := &CacheSim{CPUs: 1, Sets: 8, Ways: 1, AddrWords: 1 << 10, Refs: 10,
		BlockWordsList: []int{3}}
	if _, err := Measure(baseCfg(), bad); err == nil {
		t.Fatal("non-power-of-two block accepted")
	}
}

func TestSortProducesSortedOutput(t *testing.T) {
	for _, mode := range []SortMode{SortRandom, SortPartial} {
		w := &Sort{Bytes: mb / 2, Mode: mode, VocabWords: 500, Seed: 6}
		if _, err := Measure(baseCfg(), w); err != nil {
			t.Fatal(err)
		}
		if idx := w.VerifySorted(); idx != -1 {
			t.Fatalf("mode %v: output out of order at record %d", mode, idx)
		}
	}
}

func TestSortUnderCCProducesSortedOutput(t *testing.T) {
	w := &Sort{Bytes: mb, Mode: SortPartial, VocabWords: 500, Seed: 6}
	if _, err := Measure(ccCfg(), w); err != nil {
		t.Fatal(err)
	}
	if idx := w.VerifySorted(); idx != -1 {
		t.Fatalf("output out of order at record %d", idx)
	}
}

func TestSortCompressibilityContrast(t *testing.T) {
	// Partial input must be much more compressible than random input
	// (paper: 49% vs 98% uncompressible pages).
	run := func(mode SortMode) float64 {
		w := &Sort{Bytes: 2 * mb, Mode: mode, VocabWords: 4000, Seed: 7}
		st, err := Measure(ccCfg(), w)
		if err != nil {
			t.Fatal(err)
		}
		if st.Comp.Compressions == 0 {
			t.Skip("no memory pressure at this scale")
		}
		return st.Comp.UncompressibleFrac()
	}
	random := run(SortRandom)
	partial := run(SortPartial)
	if random <= partial {
		t.Fatalf("random uncompressible %.2f should exceed partial %.2f", random, partial)
	}
	if random < 0.5 {
		t.Fatalf("random input uncompressible fraction %.2f, want > 0.5", random)
	}
}

func TestSortValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &Sort{Bytes: 10}); err == nil {
		t.Fatal("tiny sort accepted")
	}
}

func TestGoldPhasesRun(t *testing.T) {
	for _, phase := range []GoldPhase{GoldCreate, GoldCold, GoldWarm} {
		w := &Gold{Messages: 400, WordsPerMessage: 16, VocabWords: 300,
			Queries: 200, Phase: phase, Seed: 8}
		st, err := Measure(baseCfg(), w)
		if err != nil {
			t.Fatalf("phase %v: %v", phase, err)
		}
		if st.VM.Refs == 0 {
			t.Fatalf("phase %v made no references", phase)
		}
	}
}

func TestGoldColdFaultsAfterRestart(t *testing.T) {
	w := &Gold{Messages: 400, WordsPerMessage: 16, VocabWords: 300,
		Queries: 300, Phase: GoldCold, Seed: 9}
	st, err := Measure(baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	// EvictAll pushed the index out; the timed phase must fault it back.
	if st.VM.Faults == 0 {
		t.Fatal("cold phase took no faults")
	}
}

func TestGoldQueryFindsPostings(t *testing.T) {
	m, err := machine.New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	g := &Gold{Messages: 100, WordsPerMessage: 8, VocabWords: 50, Queries: 1, Seed: 10}
	if err := g.Run(m); err != nil {
		t.Fatal(err)
	}
}

func TestGoldValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &Gold{Messages: 0}); err == nil {
		t.Fatal("Messages=0 accepted")
	}
}

func TestRunBothRequiresProperConfigs(t *testing.T) {
	w := &Thrasher{Pages: 16, Passes: 1}
	if _, err := RunBoth(ccCfg(), ccCfg(), w); err == nil {
		t.Fatal("RunBoth accepted CC baseline")
	}
	if _, err := RunBoth(baseCfg(), baseCfg(), w); err == nil {
		t.Fatal("RunBoth accepted non-CC comparison config")
	}
}

func TestVocabularyDeterministicDistinct(t *testing.T) {
	a := vocabulary(100, 1)
	b := vocabulary(100, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("vocabulary not deterministic")
		}
	}
	seen := map[string]bool{}
	for _, w := range a {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < 4 || len(w) > 12 {
			t.Fatalf("word %q out of length range", w)
		}
	}
}

func TestFillTunableRatios(t *testing.T) {
	// The helper's output should actually compress near the target.
	w := &Thrasher{Pages: 600, Write: true, Passes: 1, CompressTarget: 0.6, Seed: 11}
	st, err := Measure(ccCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Comp.Compressions == 0 {
		t.Skip("no pressure")
	}
	if r := st.Comp.Ratio(); r < 0.4 || r > 0.78 {
		t.Fatalf("target 0.6 produced ratio %.2f", r)
	}
}

func TestRecordAndReplay(t *testing.T) {
	// Record a thrasher run, then replay the trace on baseline and CC
	// machines: the replay must reproduce the workload's character
	// (faults, speedup direction).
	m, err := machine.New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	m.VM.SetTraceHook(rec.Note)
	if err := (&Thrasher{Pages: 1024, Write: true, Passes: 1, Seed: 1}).Run(m); err != nil {
		t.Fatal(err)
	}
	if len(rec.Refs) == 0 {
		t.Fatal("nothing recorded")
	}

	// Serialize and re-load, then replay.
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	refs, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunBoth(baseCfg(), ccCfg(), &Replay{Refs: refs, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Std.VM.Faults == 0 {
		t.Fatal("replay did not fault")
	}
	if cmp.Speedup() <= 1 {
		t.Fatalf("replayed thrasher speedup %.2f, want > 1", cmp.Speedup())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &Replay{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := []trace.PageRef{{Seg: -1, Page: 0}}
	if _, err := Measure(baseCfg(), &Replay{Refs: bad}); err == nil {
		t.Fatal("negative segment accepted")
	}
}

func TestMultiRunsAllMembers(t *testing.T) {
	s1 := &Thrasher{Pages: 512, Write: true, Passes: 1, Seed: 1}
	s2 := &Sort{Bytes: mb / 2, Mode: SortPartial, VocabWords: 300, Seed: 2}
	w := &Multi{Workloads: []Workload{s1, s2}, QuantumRefs: 500}
	st, err := Measure(ccCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st.VM.Refs == 0 {
		t.Fatal("no references")
	}
	// The sort member must still have produced correct output despite
	// interleaving.
	if idx := s2.VerifySorted(); idx != -1 {
		t.Fatalf("interleaved sort out of order at %d", idx)
	}
}

func TestMultiDeterministic(t *testing.T) {
	run := func() int64 {
		w := &Multi{Workloads: []Workload{
			&Thrasher{Pages: 400, Write: true, Passes: 1, Seed: 3},
			&Thrasher{Pages: 300, Write: false, Passes: 1, Seed: 4},
		}, QuantumRefs: 777}
		st, err := Measure(ccCfg(), w)
		if err != nil {
			t.Fatal(err)
		}
		return int64(st.Time)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("multiprogramming not deterministic: %d vs %d", a, b)
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := Measure(baseCfg(), &Multi{}); err == nil {
		t.Fatal("empty multi accepted")
	}
}

func TestMultiMemberErrorPropagates(t *testing.T) {
	w := &Multi{Workloads: []Workload{
		&Thrasher{Pages: 64, Passes: 1, Seed: 1},
		&Compare{N: 0, Band: 0}, // invalid
	}}
	if _, err := Measure(baseCfg(), w); err == nil {
		t.Fatal("member error not propagated")
	}
}

func TestMultiName(t *testing.T) {
	w := &Multi{Workloads: []Workload{
		&Thrasher{Pages: 1, Write: true},
		&Sort{Mode: SortRandom},
	}}
	if w.Name() != "multi+thrasher_rw+sort_random" {
		t.Fatalf("Name = %q", w.Name())
	}
}

func TestCompareDistanceAgainstReference(t *testing.T) {
	// The banded DP must agree with a plain full-matrix edit distance when
	// the band covers the whole matrix.
	w := &Compare{N: 64, Band: 160, MutationRate: 0.15, Seed: 13}
	if _, err := Measure(baseCfg(), w); err != nil {
		t.Fatal(err)
	}
	// Recompute the inputs the workload generated.
	rng := rand.New(rand.NewSource(13))
	a := make([]byte, 64)
	for i := range a {
		a[i] = byte('a' + rng.Intn(26))
	}
	b := append([]byte(nil), a...)
	for i := range b {
		if rng.Float64() < 0.15 {
			b[i] = byte('a' + rng.Intn(26))
		}
	}
	want := editDistanceRef(a, b)
	if got := w.Distance(); got != want {
		t.Fatalf("banded distance %d, reference %d", got, want)
	}
}

// editDistanceRef is a straightforward O(n^2) Levenshtein distance.
func editDistanceRef(a, b []byte) uint32 {
	n := len(b)
	prev := make([]uint32, n+1)
	cur := make([]uint32, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = uint32(j)
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = uint32(i)
		for j := 1; j <= n; j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			best := sub
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// Determinism: identical configuration and seed must produce bit-identical
// virtual times — the property that makes every number in EXPERIMENTS.md
// reproducible. Gold exercises the most internal map-based bookkeeping, so
// it is the canary for accidental map-iteration dependence.
func TestDeterminismAcrossRuns(t *testing.T) {
	for _, mk := range []func() Workload{
		func() Workload { return &Thrasher{Pages: 700, Write: true, Passes: 2, Seed: 5} },
		func() Workload {
			return &Gold{Messages: 1500, WordsPerMessage: 16, VocabWords: 800,
				Queries: 700, Phase: GoldCold, Seed: 5}
		},
		func() Workload { return &Sort{Bytes: mb / 2, Mode: SortRandom, VocabWords: 500, Seed: 5} },
	} {
		name := mk().Name()
		var times []int64
		for run := 0; run < 2; run++ {
			st, err := Measure(ccCfg(), mk())
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, int64(st.Time))
		}
		if times[0] != times[1] {
			t.Errorf("%s: nondeterministic virtual time: %d vs %d", name, times[0], times[1])
		}
	}
}
