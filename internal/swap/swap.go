// Package swap implements the interface between virtual memory and the
// backing store (§4.3 of the paper).
//
// Two stores are provided:
//
//   - Direct: the unmodified Sprite arrangement. Each segment has a swap
//     file and page p lives at offset p*pageSize, so locating a page is
//     trivial and every transfer is exactly one page (one file block).
//
//   - Clustered: the paper's design for compressed pages. Each compressed
//     page is padded to a uniform fragment size (1 KByte in the paper) and
//     sets of fragments are written in a single clustered operation
//     (32 KBytes in the paper). The fixed page↔block mapping is lost, so the
//     store keeps an explicit location map, performs free-fragment
//     accounting, and garbage-collects the swap file as pages are
//     rewritten to new locations. A parameter controls whether pages may
//     span file-block boundaries; when they may not, fragmentation rises
//     and effective write bandwidth falls, exactly the trade §4.3 discusses.
//
// Reads honour the file system's whole-block rule: a clustered read returns
// not just the requested page but every other page wholly contained in the
// blocks read, which the machine inserts into the compression cache as clean
// pages ("multiple pages can be obtained with a single read", §5.1).
package swap

import (
	"fmt"

	"compcache/internal/fs"
	"compcache/internal/stats"
)

// PageKey identifies a virtual page: segment ID and page number within the
// segment.
type PageKey struct {
	Seg  int32
	Page int32
}

func (k PageKey) String() string { return fmt.Sprintf("seg%d:p%d", k.Seg, k.Page) }

// Item is one page's worth of data bound for the backing store.
type Item struct {
	Key        PageKey
	Data       []byte // compressed or raw page bytes
	Compressed bool   // whether Data is compressed (affects fault handling)
	Sum        uint32 // integrity checksum of Data, computed when it entered the cache
}

// Direct is the unmodified-Sprite backing store: one file per segment,
// page p at byte offset p*pageSize. Writes and reads are whole pages.
type Direct struct {
	fsys     *fs.FS //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	pageSize int    //cclint:ignore snapcover -- config: derived from the pool at construction
	files    map[int32]*fs.File
	present  map[PageKey]bool
	st       stats.Swap
}

// NewDirect creates a direct store for pages of pageSize bytes.
func NewDirect(fsys *fs.FS, pageSize int) (*Direct, error) {
	if pageSize%fsys.BlockSize() != 0 {
		return nil, fmt.Errorf("swap: page size %d not a multiple of block size %d",
			pageSize, fsys.BlockSize())
	}
	return &Direct{
		fsys:     fsys,
		pageSize: pageSize,
		files:    make(map[int32]*fs.File),
		present:  make(map[PageKey]bool),
	}, nil
}

func (d *Direct) file(seg int32) *fs.File {
	f, ok := d.files[seg]
	if !ok {
		f = d.fsys.Create(fmt.Sprintf("swap.seg%d", seg)) //cclint:ignore hotalloc -- segment file named and created once per segment id (first touch)
		d.files[seg] = f
	}
	return f
}

// Write stores a raw page. The write is queued asynchronously; the disk's
// busy timeline serializes it ahead of subsequent reads. On a device error
// the store does not mark the page present — the old copy (if any) remains
// the authoritative one.
func (d *Direct) Write(key PageKey, data []byte) error {
	if len(data) != d.pageSize {
		// Invariant: the VM layer always pages out whole pages; a short
		// buffer is a programming error, not a runtime fault.
		panic(fmt.Sprintf("swap: Direct.Write of %d bytes, want a whole %d-byte page", len(data), d.pageSize))
	}
	f := d.file(key.Seg)
	if _, err := f.RawWriteAsync(data, int64(key.Page)*int64(d.pageSize), d.pageSize); err != nil {
		return err
	}
	d.present[key] = true
	d.st.PagesOut++
	return nil
}

// Read fetches a raw page into buf. It reports false if the page was never
// written.
func (d *Direct) Read(key PageKey, buf []byte) (bool, error) {
	if !d.present[key] {
		return false, nil
	}
	if len(buf) != d.pageSize {
		// Invariant: the VM layer always pages in whole pages.
		panic("swap: Direct.Read needs a whole-page buffer")
	}
	if err := d.file(key.Seg).RawRead(buf, int64(key.Page)*int64(d.pageSize), d.pageSize); err != nil {
		return false, err
	}
	d.st.PagesIn++
	return true, nil
}

// Has reports whether the store holds a copy of the page.
func (d *Direct) Has(key PageKey) bool { return d.present[key] }

// Invalidate forgets the stored copy (the in-memory page was modified).
func (d *Direct) Invalidate(key PageKey) { delete(d.present, key) }

// Stats returns a snapshot of the store's counters.
func (d *Direct) Stats() stats.Swap { return d.st }
