package compcache

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := Default(1 << 20).WithCC()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heap := m.NewSegment("heap", 4<<20)
	for p := int32(0); p < heap.Pages(); p++ {
		heap.WriteWord(int64(p)*4096, uint64(p))
	}
	for p := int32(0); p < heap.Pages(); p++ {
		if got := heap.ReadWord(int64(p) * 4096); got != uint64(p) {
			t.Fatalf("page %d corrupted: %d", p, got)
		}
	}
	st := m.Stats()
	if st.CC.Inserts == 0 {
		t.Fatal("compression cache unused on a 4x-memory working set")
	}
	if !strings.Contains(st.String(), "compressions") {
		t.Fatal("stats rendering broken")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if f := Fig1a(); len(f.Grid) == 0 {
		t.Fatal("Fig1a empty")
	}
	if f := Fig1b(); len(f.Grid) == 0 {
		t.Fatal("Fig1b empty")
	}
	p := DefaultModel()
	if p.WorkingSetFactor != 2 {
		t.Fatal("default model wrong")
	}
}

func TestFacadeObservability(t *testing.T) {
	cfg := Default(1 << 20).WithCC()
	m, err := New(cfg, WithObs(ObsOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	heap := m.NewSegment("heap", 4<<20)
	for p := int32(0); p < heap.Pages(); p++ {
		heap.WriteWord(int64(p)*4096, uint64(p))
	}
	events := m.Events()
	if len(events) == 0 {
		t.Fatal("traced machine emitted no events")
	}
	var sb strings.Builder
	if err := WriteEventsJSONL(&sb, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"class":"fault"`) {
		t.Fatal("no fault events in the JSONL export")
	}
	snap := m.Metrics()
	if snap == nil {
		t.Fatal("metrics snapshot nil on a traced machine")
	}
	if h, ok := snap.Hist("vm.fault_service"); !ok || h.Count == 0 {
		t.Fatal("metrics snapshot missing vm.fault_service histogram")
	}
	if st := m.Stats(); st.Metrics == nil {
		t.Fatal("Stats().Metrics nil on a traced machine")
	}
	mask, err := ParseEventClasses("fault,flush")
	if err != nil {
		t.Fatal(err)
	}
	if mask == 0 || mask == AllEventClasses {
		t.Fatalf("ParseEventClasses mask = %v", mask)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) == 0 {
		t.Fatal("no experiments registered")
	}
	if _, ok := LookupExperiment("table1"); !ok {
		t.Fatal("table1 not registered")
	}
	exps, err := ResolveExperiments([]string{"ablations"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatal("ablations group empty")
	}
	if len(Experiments()) != len(names) {
		t.Fatal("Experiments and ExperimentNames disagree")
	}
}

func TestFacadeCodecs(t *testing.T) {
	names := Codecs()
	if len(names) < 3 {
		t.Fatalf("codecs: %v", names)
	}
	c, err := LookupCodec("lzrw1")
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("compression cache compression cache compression cache")
	out, err := c.Decompress(nil, c.Compress(nil, src))
	if err != nil || string(out) != string(src) {
		t.Fatal("facade codec round trip failed")
	}
}

func TestFacadeRunBoth(t *testing.T) {
	cmp, err := RunBoth(Default(1<<20), Default(1<<20).WithCC(),
		&Thrasher{Pages: 512, Write: true, Passes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() <= 1 {
		t.Fatalf("thrasher speedup %.2f, want > 1", cmp.Speedup())
	}
}

func TestFacadeMeasureWorkloads(t *testing.T) {
	cfg := Default(1 << 20).WithCC()
	for _, w := range []Workload{
		&Compare{N: 1000, Band: 64, Seed: 1},
		&Sort{Bytes: 1 << 18, Mode: SortPartial, VocabWords: 200, Seed: 1},
		&Gold{Messages: 200, WordsPerMessage: 8, VocabWords: 100, Queries: 50, Phase: GoldWarm, Seed: 1},
		&CacheSim{CPUs: 2, Sets: 32, Ways: 2, AddrWords: 1 << 12, BlockWordsList: []int{4}, Refs: 5000, Seed: 1},
	} {
		if _, err := Measure(cfg, w); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	}
}

func TestRZ57Exposed(t *testing.T) {
	if RZ57().BytesPerSec <= 0 {
		t.Fatal("bad disk params")
	}
}
