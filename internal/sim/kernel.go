package sim

import (
	"fmt"
	"sort"
)

// ActorID names one actor (one machine, one device owner) on a Kernel. IDs
// are small dense integers chosen by the caller; they are the second key of
// the event ordering, so the caller's ID assignment is part of the
// deterministic schedule.
type ActorID int32

// evKind distinguishes the two event flavours on the kernel heap.
type evKind uint8

const (
	// evResume unblocks an actor waiting in Kernel.Wait (or starts an actor
	// registered with Go that has not run yet).
	evResume evKind = iota
	// evTimer runs a callback on the scheduler at its timestamp. Timer
	// callbacks must not call Wait; they run outside any actor.
	evTimer
)

// event is one pending entry on the kernel's time line.
type event struct {
	at   Time
	id   ActorID
	seq  uint64
	kind evKind
	fn   func(Time) // evTimer only
}

// eventHeap is a binary min-heap ordering events by (time, actorID, seq):
// time first, then actor ID, then insertion sequence. The triple is totally
// ordered and depends only on the sequence of Kernel calls, never on map
// iteration or goroutine scheduling, so ties at equal timestamps resolve
// identically on every run. The heap is hand-rolled rather than built on
// container/heap because Wait sits on the paging hot path: the stdlib API
// boxes every event into an interface, and this one stays allocation-free
// once the backing array has warmed up.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.seq < b.seq
}

// up restores the heap invariant after an element lands at index i.
func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = event{} // drop the callback reference for the collector
	*h = s[:n]
	h.down(0)
	return top
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// init establishes the heap invariant over arbitrary contents.
func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h eventHeap) peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// actorState is the kernel's bookkeeping for one attached clock.
type actorState struct {
	id     ActorID
	clock  *Clock
	body   func()    // bound program, consumed by the first resume
	resume chan Time // hand-off into a blocked Wait
	live   bool      // goroutine exists and is blocked in Wait
	done   bool      // body returned
	save   Time      // restored clock instant, adopted on Attach
}

// Kernel is a deterministic discrete-event scheduler that co-advances many
// Clocks on one shared time line.
//
// Machines become actors: each attaches its Clock to the kernel, and every
// Clock.Advance/AdvanceTo turns into a Wait — the actor blocks until the
// kernel's global time reaches the target instant, and meanwhile the actor
// that is globally earliest runs. Exactly one actor goroutine executes at any
// moment (the scheduler and the actors pass a baton over unbuffered
// channels), so execution order is a pure function of the event keys and the
// simulation is reproducible — and race-clean — at any GOMAXPROCS.
//
// A Clock that is never attached to a Kernel behaves exactly as before: a
// private free-running counter. Single-machine runs therefore stay
// byte-identical to the pre-kernel code.
type Kernel struct {
	heap   eventHeap
	seq    uint64
	now    Time
	actors map[ActorID]*actorState
	ids    []ActorID // sorted attach order view for deterministic snapshots
	// yield returns the baton to the scheduler: the yielding actor reports
	// whether its body returned (done) or it blocked in Wait. All actor
	// bookkeeping is written on the scheduler side of this hand-off, so
	// every field access is ordered by the channel.
	yield   chan yieldMsg //cclint:ignore snapcover -- runtime: the baton channel is recreated when Run starts
	running bool
	stopped bool    //cclint:ignore snapcover -- runtime: snapshots happen outside Run, where Stop state is spent
	current ActorID //cclint:ignore snapcover -- runtime: no actor holds the baton at a snapshot boundary
}

// yieldMsg is the baton an actor hands back to the scheduler.
type yieldMsg struct {
	id   ActorID
	done bool // body returned (vs blocked in Wait)
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		actors:  make(map[ActorID]*actorState),
		yield:   make(chan yieldMsg),
		current: -1,
	}
}

// Now reports the kernel's global virtual time: the timestamp of the most
// recently dispatched event.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting on the heap.
func (k *Kernel) Pending() int { return len(k.heap) }

// Attach registers clock c as actor id on the kernel. From then on the
// clock's Advance/AdvanceTo are kernel-mediated waits. If the kernel holds
// restored state for id (see RestoreFrom), the clock adopts the restored
// instant; otherwise the actor starts at the clock's current time. Attaching
// a duplicate id or a nil clock panics.
func (k *Kernel) Attach(c *Clock, id ActorID) {
	if c == nil {
		panic("sim: Attach of nil clock")
	}
	if id < 0 {
		panic(fmt.Sprintf("sim: actor id %d must be non-negative", id))
	}
	st, restored := k.actors[id]
	if restored && st.clock != nil {
		panic(fmt.Sprintf("sim: duplicate actor %d", id))
	}
	if !restored {
		st = &actorState{id: id, resume: make(chan Time)}
		k.actors[id] = st
		k.ids = append(k.ids, id)
		sort.Slice(k.ids, func(i, j int) bool { return k.ids[i] < k.ids[j] })
	} else {
		// Restored actor: the snapshot recorded where its clock stood.
		c.now = st.save
	}
	st.clock = c
	c.kernel = k
	c.actor = id
}

// NewClock attaches a fresh clock as actor id and returns it.
func (k *Kernel) NewClock(id ActorID) *Clock {
	c := &Clock{}
	k.Attach(c, id)
	return c
}

// Go binds fn as the program of actor id and schedules its start at the
// actor's current clock time. The actor must be attached and idle (never
// started, finished a previous program, or freshly restored); binding over a
// live actor panics. An actor can be re-armed with Go once its previous body
// returns, which is how multi-phase runs reuse one kernel.
func (k *Kernel) Go(id ActorID, fn func()) {
	st := k.state(id)
	if st.live {
		panic(fmt.Sprintf("sim: Go on live actor %d", id))
	}
	st.body = fn
	st.done = false
	k.push(event{at: st.clock.now, id: id, kind: evResume})
}

// Bind installs fn as the program of actor id without scheduling a start
// event. It is the restore-side counterpart of Go: a kernel restored with
// pending resume events needs each waiting actor's continuation re-bound
// before Run, and the restored events themselves provide the wake-ups.
func (k *Kernel) Bind(id ActorID, fn func()) {
	st := k.state(id)
	if st.live {
		panic(fmt.Sprintf("sim: Bind on live actor %d", id))
	}
	st.body = fn
	st.done = false
}

// Schedule runs fn on the scheduler at instant at, attributed to actor id
// for tie-breaking. The callback runs outside any actor and must not call
// Wait (it has no goroutine to block); it may Schedule further events.
// Timer callbacks cannot be serialized, so a kernel with pending timers
// refuses to snapshot.
func (k *Kernel) Schedule(at Time, id ActorID, fn func(Time)) {
	if fn == nil {
		panic("sim: Schedule of nil callback")
	}
	if at < k.now {
		at = k.now
	}
	k.push(event{at: at, id: id, kind: evTimer, fn: fn})
}

// Run dispatches events in (time, actorID, seq) order until the heap is
// empty and every started actor has either returned or is blocked with no
// wake-up pending (which would be a deadlock and panics). Run returns the
// final kernel time.
func (k *Kernel) Run() Time {
	if k.running {
		panic("sim: Run re-entered")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for len(k.heap) > 0 && !k.stopped {
		ev := k.heap.pop()
		k.now = ev.at
		if ev.kind == evTimer {
			k.current = -1
			ev.fn(ev.at)
			continue
		}
		st := k.actors[ev.id]
		if st == nil {
			panic(fmt.Sprintf("sim: resume event for unknown actor %d", ev.id))
		}
		k.current = ev.id
		if st.live {
			st.resume <- ev.at
		} else {
			if st.body == nil || st.done {
				panic(fmt.Sprintf("sim: resume event for actor %d with no program", ev.id))
			}
			st.live = true
			body := st.body
			st.body = nil
			id := ev.id
			go func() {
				body()
				k.yield <- yieldMsg{id: id, done: true}
			}()
		}
		msg := <-k.yield
		if msg.done {
			fin := k.actors[msg.id]
			fin.live = false
			fin.done = true
		}
		k.current = -1
	}
	if k.stopped {
		// Paused mid-run: pending events stay on the heap and blocked
		// actors stay parked on their resume channels. A later Run picks
		// up exactly where this one left off; alternatively the kernel can
		// be snapshotted now and restored elsewhere.
		return k.now
	}
	for _, id := range k.ids {
		if st := k.actors[id]; st.live {
			// Invariant: a live actor always has a resume event pending
			// (Wait pushes before yielding), so an empty heap with a live
			// actor means the kernel lost an event.
			panic(fmt.Sprintf("sim: deadlock — actor %d blocked with empty heap", id))
		}
	}
	return k.now
}

// Stop asks Run to return after the event currently being dispatched. It is
// meant to be called from a timer callback (see Schedule) to pause the
// simulation at a chosen instant — for a mid-run snapshot — with every
// pending event preserved on the heap. Run can simply be called again to
// resume in place.
func (k *Kernel) Stop() { k.stopped = true }

// Wait blocks actor id until global time reaches until, running other actors
// meanwhile, and returns the (unchanged) target instant. Outside Run the
// clock simply jumps — construction-time charges accrue before the kernel
// starts dispatching. Wait is the one operation clockcredit/crosscredit
// count as crediting the clock, exactly like Clock.Advance.
func (k *Kernel) Wait(id ActorID, until Time) Time {
	st := k.state(id)
	if until < st.clock.now {
		panic(fmt.Sprintf("sim: Wait backward from %v to %v", st.clock.now, until))
	}
	if !k.running {
		st.clock.now = until
		if until > k.now {
			k.now = until
		}
		return until
	}
	if k.current != id {
		panic(fmt.Sprintf("sim: Wait by actor %d while actor %d holds the baton", id, k.current))
	}
	// Fast path: if this actor would still be the globally earliest event,
	// advance in place without a context switch. The prospective key uses
	// the next sequence number, so an equal-time event already on the heap
	// (necessarily with a smaller seq) still wins, exactly as it would on
	// the slow path.
	if top, ok := k.heap.peek(); !ok || less(until, id, k.seq, top) {
		st.clock.now = until
		k.now = until
		return until
	}
	k.push(event{at: until, id: id, kind: evResume})
	k.yield <- yieldMsg{id: id}
	t := <-st.resume
	st.clock.now = t
	return t
}

// less reports whether the prospective key (at, id, seq) orders before event e.
func less(at Time, id ActorID, seq uint64, e event) bool {
	if at != e.at {
		return at < e.at
	}
	if id != e.id {
		return id < e.id
	}
	return seq < e.seq
}

// state looks up an attached actor or panics.
func (k *Kernel) state(id ActorID) *actorState {
	st := k.actors[id]
	if st == nil || st.clock == nil {
		panic(fmt.Sprintf("sim: actor %d not attached", id))
	}
	return st
}

// push assigns the next sequence number and adds e to the heap. The append
// targets the kernel's own backing array, so it amortizes to zero
// allocations once the heap has warmed up to its steady-state depth.
func (k *Kernel) push(e event) {
	e.seq = k.seq
	k.seq++
	k.heap = append(k.heap, e)
	k.heap.up(len(k.heap) - 1)
}
