// Package disk is the crosscredit fixture for the disjointness rule: the
// chargeable device primitives live here, so a chain that ends in this
// same package is clockcredit's jurisdiction and crosscredit must stay
// silent on it — only cross-package work counts.
package disk

import (
	"time"

	"compcache/crosscredit/internal/compress"
	"compcache/crosscredit/internal/sim"
)

// Disk is the fixture device.
type Disk struct {
	clock *sim.Clock
}

// Write is a chargeable device primitive that charges itself.
func (d *Disk) Write(addr int64, p []byte) {
	d.clock.Advance(time.Duration(len(p)))
}

// Read is a device primitive that does not charge; it is the target of
// the same-package chain below.
func (d *Disk) Read(addr int64, p []byte) {}

// Scrub reaches the uncharged Read — but only within its own package, so
// crosscredit leaves it alone (disjointness with clockcredit).
func (d *Disk) Scrub(p []byte) {
	d.Read(0, p)
}

// BadCompact reaches codec work in another package without charging.
func (d *Disk) BadCompact(p []byte) []byte { // want `BadCompact does codec/device work \(BadCompact → compress\.Compress\)`
	var z compress.LZ
	return z.Compress(p)
}
