package lint

// bufown: the borrow-only buffer ownership contracts, checked statically.
//
// Three families of functions receive buffers they may only borrow for
// the duration of the call:
//
//   - Codec Compress(dst, src []byte) []byte and
//     Decompress(dst, src []byte) ([]byte, error) in internal/compress:
//     src is the caller's page (read-only borrow), dst is a recycled
//     scratch buffer whose contents beyond len are garbage (the
//     FuzzCompressDirtyScratch contract). Returning dst-derived memory
//     is the contract; returning src-derived memory aliases the caller's
//     page into the compressed stream.
//   - core.Cache.Insert: the data argument is the page being inserted;
//     the cache must copy it into its own slab, never keep the slice.
//   - machine.PageIn/PageOut []byte arguments: frames on loan from the
//     memory pool.
//
// Violations reported: a borrowed buffer stored into a field, package
// variable or map (retained past the call); src-derived memory aliased
// into a return value; and p[…:cap(p)] on a borrowed buffer (reading
// capacity the caller never filled). The taint tracking launders at call
// boundaries — a callee that misbehaves with the forwarded buffer is
// caught when bufown analyzes the callee's own contract, or not at all
// (a documented soundness caveat).

import "go/types"

// BufOwn reports violations of the borrow-only buffer contracts.
type BufOwn struct{}

// Name implements Analyzer.
func (BufOwn) Name() string { return "bufown" }

// Doc implements Analyzer.
func (BufOwn) Doc() string {
	return "borrowed codec/cache buffers must not be retained, returned (src), or read past len"
}

// Severity implements Analyzer.
func (BufOwn) Severity() Severity { return SevError }

// borrowRole says what the contract allows for one borrowed parameter.
type borrowRole int

const (
	// roleBorrowed may be read and written within len, never kept.
	roleBorrowed borrowRole = iota
	// roleDst is a codec's recycled destination: appending and returning
	// it is the contract, but its capacity beyond len is garbage and it
	// must not be retained.
	roleDst
	// roleSrc is a codec's source page: read-only, never returned.
	roleSrc
)

// contractParams returns the borrowed parameters of fn, or nil when fn
// carries no ownership contract.
func contractParams(fn *types.Func) map[*types.Var]borrowRole {
	if codecContract(fn) {
		sig := fn.Type().(*types.Signature)
		return map[*types.Var]borrowRole{
			sig.Params().At(0): roleDst,
			sig.Params().At(1): roleSrc,
		}
	}
	borrowAll := fnIn(fn, "internal/core", map[string]bool{"Insert": true}) ||
		fnIn(fn, "internal/machine", map[string]bool{"PageIn": true, "PageOut": true})
	if !borrowAll {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[*types.Var]borrowRole)
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isByteSlice(p.Type()) {
			out[p] = roleBorrowed
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Check implements Analyzer.
func (BufOwn) Check(pkg *Package) []Diagnostic {
	facts := pkg.Mod.Effects()
	var out []Diagnostic
	for _, n := range pkg.Mod.Graph.order {
		if n.Pkg != pkg {
			continue
		}
		borrowed := contractParams(n.Fn)
		if borrowed == nil {
			continue
		}
		fe := facts.Of(n.Fn)
		for _, fl := range fe.Flows {
			role, ok := borrowed[fl.Param]
			if !ok {
				continue
			}
			if fl.Store {
				out = append(out, diag(pkg, "bufown", fl.Node,
					"%s retains borrowed buffer %s past the call (must copy, not keep)",
					n.Fn.Name(), fl.Param.Name()))
				continue
			}
			if role != roleDst {
				out = append(out, diag(pkg, "bufown", fl.Node,
					"%s returns memory derived from borrowed buffer %s (aliases the caller's page)",
					n.Fn.Name(), fl.Param.Name()))
			}
		}
		for _, cr := range fe.CapReslices {
			if _, ok := borrowed[cr.Param]; ok {
				out = append(out, diag(pkg, "bufown", cr.Node,
					"%s reslices borrowed buffer %s to cap, reading past len (dirty-scratch contract)",
					n.Fn.Name(), cr.Param.Name()))
			}
		}
	}
	return out
}
