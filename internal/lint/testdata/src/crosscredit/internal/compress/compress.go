// Package compress is the crosscredit fixture's codec: its Compress and
// Decompress methods are the chargeable work primitives the analyzer
// tracks across package boundaries.
package compress

// LZ is a toy codec.
type LZ struct{}

// Compress is chargeable codec work.
func (LZ) Compress(p []byte) []byte {
	out := make([]byte, 0, len(p)/2+1)
	for i := 0; i < len(p); i += 2 {
		out = append(out, p[i])
	}
	return out
}

// Decompress is chargeable codec work.
func (LZ) Decompress(p []byte) []byte {
	out := make([]byte, 0, 2*len(p))
	for _, b := range p {
		out = append(out, b, b)
	}
	return out
}
