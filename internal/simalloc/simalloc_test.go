package simalloc

import (
	"testing"

	"compcache/internal/machine"
)

func newArena(t *testing.T, bytes int64) *Arena {
	t.Helper()
	m, err := machine.New(machine.Default(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return New(m.NewSegment("heap", bytes))
}

func TestAllocSequence(t *testing.T) {
	a := newArena(t, 64*1024)
	x := a.Alloc(100, 1)
	y := a.Alloc(100, 1)
	if x != 0 || y != 100 {
		t.Fatalf("offsets %d, %d", x, y)
	}
	if a.Used() != 200 {
		t.Fatalf("Used = %d", a.Used())
	}
}

func TestAlignment(t *testing.T) {
	a := newArena(t, 64*1024)
	a.Alloc(3, 1)
	w := a.AllocWords(2)
	if w%8 != 0 {
		t.Fatalf("word allocation at %d not aligned", w)
	}
	p := a.AllocPageAligned(10)
	if p%4096 != 0 {
		t.Fatalf("page allocation at %d not aligned", p)
	}
	if a.Remaining() <= 0 {
		t.Fatal("remaining should be positive")
	}
}

func TestExhaustionPanics(t *testing.T) {
	a := newArena(t, 8192)
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion did not panic")
		}
	}()
	a.Alloc(10000, 1)
}

func TestBadArgsPanic(t *testing.T) {
	a := newArena(t, 8192)
	for _, args := range [][2]int64{{-1, 1}, {8, 0}, {8, 3}} {
		func() {
			defer func() { recover() }()
			a.Alloc(args[0], args[1])
			t.Errorf("Alloc(%d,%d) did not panic", args[0], args[1])
		}()
	}
}

func TestDataThroughArena(t *testing.T) {
	a := newArena(t, 64*1024)
	off := a.AllocWords(10)
	s := a.Space()
	for i := int64(0); i < 10; i++ {
		s.WriteWord(off+i*8, uint64(i*i))
	}
	for i := int64(0); i < 10; i++ {
		if got := s.ReadWord(off + i*8); got != uint64(i*i) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}
