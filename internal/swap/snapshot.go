package swap

import (
	"fmt"
	"sort"

	"compcache/internal/fs"
	"compcache/internal/snap"
)

// SnapshotTo serializes the log-structured store: the segment tables, the
// free list (in order — allocSegment pops from the tail), the open segment
// and its staged bytes, the durable-format sequencing state, and the
// counters. The location map is not written; it is a pure function of the
// segment tables and is recomputed on restore. The pinned segment-buffer
// frames are likewise omitted: the rebuilt machine re-pins them during
// construction and the pool restore rewrites ownership verbatim.
func (l *LFS) SnapshotTo(w *snap.Writer) {
	w.Section("swap.lfs")
	w.Int(l.pagesPerSeg)
	w.Int(len(l.bufferFrames))
	w.Int(len(l.segs))
	for _, s := range l.segs {
		w.Bool(s != nil)
		if s == nil {
			continue
		}
		w.Int(len(s.pages))
		for _, key := range s.pages {
			w.I32(key.Seg)
			w.I32(key.Page)
		}
		w.Int(len(s.sums))
		for _, sum := range s.sums {
			w.U32(sum)
		}
		w.Int(s.live)
		w.U64(s.seq)
	}
	w.Int(len(l.free))
	for _, f := range l.free {
		w.I32(f)
	}
	w.I32(l.cur)
	w.Int(l.curUsed)
	w.U64(l.seq)
	w.Bytes32(l.stage)
	w.Int(len(l.pending))
	for _, p := range l.pending {
		w.I32(p.seg)
		w.U64(p.afterSeq)
	}
	w.U64(l.st.PagesOut)
	w.U64(l.st.PagesIn)
	w.U64(l.st.GCs)
	w.U64(l.st.GCBytesCopied)
}

// RestoreFrom rebuilds the store into a freshly constructed LFS of the same
// configuration, recomputing the location map from the segment tables.
func (l *LFS) RestoreFrom(r *snap.Reader) error {
	r.Section("swap.lfs")
	pagesPerSeg := r.Int()
	nbuffer := r.Int()
	if r.Err() == nil && pagesPerSeg != l.pagesPerSeg {
		return fmt.Errorf("swap: lfs snapshot has %d pages per segment, this store %d", pagesPerSeg, l.pagesPerSeg)
	}
	if r.Err() == nil && nbuffer != len(l.bufferFrames) {
		return fmt.Errorf("swap: lfs snapshot pinned %d buffer frames, this store %d", nbuffer, len(l.bufferFrames))
	}
	nsegs := r.Int()
	if r.Err() == nil && (nsegs < 0 || nsegs > 1<<24) {
		return fmt.Errorf("swap: lfs snapshot claims %d segments", nsegs)
	}
	segs := make([]*lfsSegment, 0, nsegs)
	for i := 0; i < nsegs && r.Err() == nil; i++ {
		if !r.Bool() {
			segs = append(segs, nil)
			continue
		}
		npages := r.Int()
		if r.Err() != nil {
			break
		}
		if npages < 0 || npages > l.pagesPerSeg {
			return fmt.Errorf("swap: lfs snapshot segment %d holds %d slots, capacity %d", i, npages, l.pagesPerSeg)
		}
		s := &lfsSegment{pages: make([]PageKey, npages)}
		for j := range s.pages {
			s.pages[j] = PageKey{Seg: r.I32(), Page: r.I32()}
		}
		nsums := r.Int()
		if r.Err() != nil {
			break
		}
		if nsums != 0 && nsums != npages {
			return fmt.Errorf("swap: lfs snapshot segment %d has %d sums for %d slots", i, nsums, npages)
		}
		if nsums > 0 {
			s.sums = make([]uint32, nsums)
			for j := range s.sums {
				s.sums[j] = r.U32()
			}
		}
		s.live = r.Int()
		s.seq = r.U64()
		segs = append(segs, s)
	}
	nfree := r.Int()
	if r.Err() == nil && (nfree < 0 || nfree > nsegs) {
		return fmt.Errorf("swap: lfs snapshot free list of %d exceeds %d segments", nfree, nsegs)
	}
	free := make([]int32, 0, nfree)
	for i := 0; i < nfree && r.Err() == nil; i++ {
		free = append(free, r.I32())
	}
	cur := r.I32()
	curUsed := r.Int()
	seq := r.U64()
	stage := r.Bytes32()
	npending := r.Int()
	if r.Err() == nil && (npending < 0 || npending > nsegs) {
		return fmt.Errorf("swap: lfs snapshot pending list of %d exceeds %d segments", npending, nsegs)
	}
	pending := make([]lfsPending, 0, npending)
	for i := 0; i < npending && r.Err() == nil; i++ {
		pending = append(pending, lfsPending{seg: r.I32(), afterSeq: r.U64()})
	}
	pagesOut := r.U64()
	pagesIn := r.U64()
	gcs := r.U64()
	gcBytes := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if int(cur) < 0 || int(cur) >= len(segs) || segs[cur] == nil {
		return fmt.Errorf("swap: lfs snapshot current segment %d is not allocated", cur)
	}
	for _, f := range free {
		if int(f) < 0 || int(f) >= len(segs) || segs[f] != nil {
			return fmt.Errorf("swap: lfs snapshot frees allocated segment %d", f)
		}
	}
	if l.durable() != (len(stage) > 0) {
		return fmt.Errorf("swap: lfs snapshot durability does not match the configuration")
	}
	if l.durable() && len(stage) != len(l.stage) {
		return fmt.Errorf("swap: lfs snapshot stage is %d bytes, want %d", len(stage), len(l.stage))
	}
	l.segs = segs
	l.free = free
	l.cur = cur
	l.curUsed = curUsed
	l.seq = seq
	if l.durable() {
		copy(l.stage, stage)
	}
	l.pending = pending
	l.loc = make(map[PageKey]lfsLoc, len(segs)*l.pagesPerSeg/2)
	for i, s := range l.segs {
		if s == nil {
			continue
		}
		for idx, key := range s.pages {
			if key == lfsTombstone {
				continue
			}
			l.loc[key] = lfsLoc{seg: int32(i), idx: int32(idx)}
		}
	}
	l.st.PagesOut = pagesOut
	l.st.PagesIn = pagesIn
	l.st.GCs = gcs
	l.st.GCBytesCopied = gcBytes
	return l.CheckConsistency()
}

// SnapshotTo serializes the clustered store: the fragment bitmap, the page
// map (key-sorted), the accounting counters, the commit-record sequencing
// state, and the stats. byStart is recomputed on restore.
func (c *Clustered) SnapshotTo(w *snap.Writer) {
	w.Section("swap.clustered")
	w.Int(len(c.marked))
	for _, m := range c.marked {
		w.Bool(m)
	}
	keys := make([]PageKey, 0, len(c.extents))
	for key := range c.extents {
		keys = append(keys, key)
	}
	sortPageKeys(keys)
	w.Int(len(keys))
	for _, key := range keys {
		e := c.extents[key]
		w.I32(key.Seg)
		w.I32(key.Page)
		w.I32(e.start)
		w.I32(e.nfrags)
		w.I32(e.length)
		w.Bool(e.compressed)
		w.U32(e.sum)
	}
	w.Int(c.liveFr)
	w.Int(c.padFr)
	w.Int(c.hint)
	w.U64(c.seq)
	akeys := make([]PageKey, 0, len(c.attempted))
	for key := range c.attempted {
		akeys = append(akeys, key)
	}
	sortPageKeys(akeys)
	w.Int(len(akeys))
	for _, key := range akeys {
		w.I32(key.Seg)
		w.I32(key.Page)
		w.U32(c.attempted[key])
	}
	w.U64(c.st.PagesOut)
	w.U64(c.st.PagesIn)
	w.U64(c.st.GCs)
	w.U64(c.st.GCBytesCopied)
}

// RestoreFrom rebuilds the clustered store into a freshly constructed one of
// the same configuration.
func (c *Clustered) RestoreFrom(r *snap.Reader) error {
	r.Section("swap.clustered")
	nmarked := r.Int()
	if r.Err() == nil && (nmarked < 0 || nmarked > 1<<28) {
		return fmt.Errorf("swap: clustered snapshot claims %d fragments", nmarked)
	}
	marked := make([]bool, nmarked)
	for i := range marked {
		marked[i] = r.Bool()
	}
	nextents := r.Int()
	if r.Err() == nil && (nextents < 0 || nextents > 1<<24) {
		return fmt.Errorf("swap: clustered snapshot claims %d extents", nextents)
	}
	extents := make(map[PageKey]extent, nextents)
	byStart := make(map[int32]PageKey, nextents)
	for i := 0; i < nextents && r.Err() == nil; i++ {
		key := PageKey{Seg: r.I32(), Page: r.I32()}
		e := extent{
			start:      r.I32(),
			nfrags:     r.I32(),
			length:     r.I32(),
			compressed: r.Bool(),
			sum:        r.U32(),
		}
		if r.Err() != nil {
			break
		}
		if e.start < 0 || e.nfrags <= 0 || int(e.start)+int(e.nfrags) > nmarked {
			return fmt.Errorf("swap: clustered snapshot extent for %v out of bounds", key)
		}
		extents[key] = e
		byStart[e.start] = key
	}
	liveFr := r.Int()
	padFr := r.Int()
	hint := r.Int()
	seq := r.U64()
	nattempted := r.Int()
	if r.Err() == nil && (nattempted < 0 || nattempted > 1<<24) {
		return fmt.Errorf("swap: clustered snapshot claims %d attempted pages", nattempted)
	}
	var attempted map[PageKey]uint32
	if nattempted > 0 {
		attempted = make(map[PageKey]uint32, nattempted)
	}
	for i := 0; i < nattempted && r.Err() == nil; i++ {
		key := PageKey{Seg: r.I32(), Page: r.I32()}
		attempted[key] = r.U32()
	}
	pagesOut := r.U64()
	pagesIn := r.U64()
	gcs := r.U64()
	gcBytes := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	c.marked = marked
	c.extents = extents
	c.byStart = byStart
	c.liveFr = liveFr
	c.padFr = padFr
	c.hint = hint
	c.seq = seq
	c.attempted = attempted
	c.st.PagesOut = pagesOut
	c.st.PagesIn = pagesIn
	c.st.GCs = gcs
	c.st.GCBytesCopied = gcBytes
	return c.CheckConsistency()
}

// SnapshotTo serializes the direct store: the per-segment swap files (by
// name, segment-sorted) and the present set. Restore rebinds the files by
// name — the fs restore has already recreated them.
func (d *Direct) SnapshotTo(w *snap.Writer) {
	w.Section("swap.direct")
	segs := make([]int32, 0, len(d.files))
	for seg := range d.files {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	w.Int(len(segs))
	for _, seg := range segs {
		w.I32(seg)
		w.String(d.files[seg].Name())
	}
	keys := make([]PageKey, 0, len(d.present))
	for key := range d.present {
		keys = append(keys, key)
	}
	sortPageKeys(keys)
	w.Int(len(keys))
	for _, key := range keys {
		w.I32(key.Seg)
		w.I32(key.Page)
	}
	w.U64(d.st.PagesOut)
	w.U64(d.st.PagesIn)
}

// RestoreFrom rebuilds the direct store, binding segment swap files by name
// through the already-restored file system.
func (d *Direct) RestoreFrom(r *snap.Reader) error {
	r.Section("swap.direct")
	nfiles := r.Int()
	if r.Err() == nil && (nfiles < 0 || nfiles > 1<<20) {
		return fmt.Errorf("swap: direct snapshot claims %d files", nfiles)
	}
	names := make(map[int32]string, nfiles)
	for i := 0; i < nfiles && r.Err() == nil; i++ {
		seg := r.I32()
		name := r.String()
		if r.Err() != nil {
			break
		}
		names[seg] = name
	}
	npresent := r.Int()
	if r.Err() == nil && (npresent < 0 || npresent > 1<<28) {
		return fmt.Errorf("swap: direct snapshot claims %d present pages", npresent)
	}
	present := make(map[PageKey]bool, npresent)
	for i := 0; i < npresent && r.Err() == nil; i++ {
		present[PageKey{Seg: r.I32(), Page: r.I32()}] = true
	}
	pagesOut := r.U64()
	pagesIn := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	d.files = make(map[int32]*fs.File, nfiles)
	for seg, name := range names {
		f, err := d.fsys.Open(name)
		if err != nil {
			return fmt.Errorf("swap: direct snapshot names missing file %q: %w", name, err)
		}
		d.files[seg] = f
	}
	d.present = present
	d.st.PagesOut = pagesOut
	d.st.PagesIn = pagesIn
	return nil
}
