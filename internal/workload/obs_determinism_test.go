package workload

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"compcache/internal/fault"
	"compcache/internal/machine"
	"compcache/internal/obs"
	"compcache/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files instead of comparing")

// tracedRun runs one fully-traced thrashing machine and renders everything
// the observability layer produced — the JSONL event stream followed by the
// metrics snapshot — as one byte string, the unit of comparison for the
// determinism contract.
func tracedRun(memFrames int, pages int32, seed int64, faults bool) (string, error) {
	cfg := machine.Default(int64(memFrames) * 4096).WithCC()
	if faults {
		// Latency spikes only: deterministic, never fatal, and they route
		// through the injector's rng so emission order is exercised too.
		cfg = cfg.WithFaults(fault.Config{Seed: seed, LatencySpikeRate: 0.05, LatencySpike: time.Millisecond})
	}
	m, _, err := MeasureMachine(cfg, &Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed},
		machine.WithObs(obs.Options{}))
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := obs.WriteEventsJSONL(&buf, m.Events()); err != nil {
		return "", err
	}
	buf.WriteString(m.Metrics().String())
	return buf.String(), nil
}

// TestObsParallelDeterminism is the tentpole's hard contract: the event
// stream and every histogram of each machine in a fleet are byte-identical
// whether the fleet runs serially or on eight workers. Each machine is
// single-threaded on its own virtual clock, so host scheduling must not be
// able to perturb a trace; if this fails, some probe site consumed shared
// state (host clock, global rand, map order) on the hot path.
func TestObsParallelDeterminism(t *testing.T) {
	type variant struct {
		frames int
		pages  int32
		seed   int64
		faults bool
	}
	fleet := []variant{
		{64, 96, 1, false},
		{64, 96, 2, false},
		{32, 80, 3, false},
		{32, 80, 3, true},
		{128, 96, 4, false},
		{64, 128, 5, true},
	}
	render := func(ctx context.Context, i int) (string, error) {
		v := fleet[i]
		return tracedRun(v.frames, v.pages, v.seed, v.faults)
	}
	serial, err := runner.Map(context.Background(), 1, len(fleet), render)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.Map(context.Background(), 8, len(fleet), render)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fleet {
		if serial[i] == "" {
			t.Fatalf("machine %d produced an empty trace", i)
		}
		if serial[i] != parallel[i] {
			t.Fatalf("machine %d: -j1 and -j8 traces differ (%d vs %d bytes)\nfirst divergence near: %s",
				i, len(serial[i]), len(parallel[i]), firstDiff(serial[i], parallel[i]))
		}
	}
	// Distinct seeds must yield distinct traces, or the comparison above is
	// vacuous.
	if serial[0] == serial[1] {
		t.Fatal("different seeds produced identical traces")
	}
}

// firstDiff excerpts the region where two strings first diverge.
func firstDiff(a, b string) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := max(0, i-40), min(n, i+40)
			return fmt.Sprintf("byte %d: %q vs %q", i, a[lo:hi], b[lo:hi])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestGoldenTrace pins the exact trace of a tiny fixed-seed workload: the
// JSONL event stream plus the metrics snapshot must match the checked-in
// golden file byte for byte. Any intentional change to event emission,
// costs, or policy shows up as a reviewable golden diff; regenerate with
//
//	go test ./internal/workload -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	got, err := tracedRun(32, 48, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_trace.jsonl")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Fatalf("trace deviates from %s (%d vs %d bytes)\nfirst divergence near: %s\nif the change is intentional, rerun with -update",
			path, len(got), len(want), firstDiff(got, string(want)))
	}
}
