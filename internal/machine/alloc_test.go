package machine

import (
	"testing"
)

// The compression cache's value proposition is that a compressed-memory hit
// costs microseconds of simulated decompression, not milliseconds of disk.
// On the host side that only holds if the steady-state PageOut/PageIn cycle
// stays off the garbage collector: the machine compresses into a per-machine
// scratch buffer, core.Cache copies into recycled slabs and recycles its
// entry and frame bookkeeping, and the codecs pool their own scratch. These
// tests pin that property with testing.AllocsPerRun so a regression shows up
// as a test failure instead of a profile.

// steadyMachine builds a CC machine whose working set does not fit in RAM
// but compresses well enough to live entirely in the compression cache, then
// cycles through it until compression-cache traffic is the steady state.
func steadyMachine(t *testing.T, writes bool) (*Machine, *Space) {
	t.Helper()
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", 400*4096) // 400 pages vs 256 frames
	fillCompressible(s)
	for pass := 0; pass < 3; pass++ {
		for p := int32(0); p < s.Pages(); p++ {
			s.Touch(p, writes)
		}
	}
	return m, s
}

func TestSteadyStateReadCycleZeroAllocs(t *testing.T) {
	m, s := steadyMachine(t, false)
	p := int32(0)
	n := testing.AllocsPerRun(2000, func() {
		s.Touch(p, false)
		p = (p + 1) % s.Pages()
	})
	if n != 0 {
		t.Errorf("steady-state read cycle allocates %v times per touch", n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyStateDirtyRewriteZeroAllocs(t *testing.T) {
	m, s := steadyMachine(t, true)
	p := int32(0)
	n := testing.AllocsPerRun(2000, func() {
		s.Touch(p, true)
		p = (p + 1) % s.Pages()
	})
	if n != 0 {
		t.Errorf("steady-state dirty rewrite cycle allocates %v times per touch", n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
