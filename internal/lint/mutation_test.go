package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Mutation tests guard against analyzers silently going blind: each test
// copies a golden fixture subtree into a scratch module, runs the full
// suite to get a baseline, injects one regression a real patch could
// introduce, and asserts the re-run reports exactly the expected new
// finding — no more, no less. A golden test alone cannot catch an
// analyzer that stops firing on shapes nobody has written yet; the
// mutant is that shape.

// copyFixtureTree copies testdata/src/<name> into root/<name>, so a
// LoadTree(root, "compcache") resolves the fixture's own import paths.
func copyFixtureTree(t *testing.T, root, name string) {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(root, name, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture %s: %v", name, err)
	}
}

// mutateFile applies one exact string replacement, failing if the
// anchor text is missing (a drifted fixture would silently test nothing).
func mutateFile(t *testing.T, path, old, new string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("mutation anchor %q not found in %s", old, path)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// lintTree loads a scratch module and runs the full suite over it.
func lintTree(t *testing.T, root string) []Diagnostic {
	t.Helper()
	mod, err := LoadTree(root, "compcache")
	if err != nil {
		t.Fatalf("LoadTree(%s): %v", root, err)
	}
	if len(mod.TypeErrors) > 0 {
		t.Fatalf("mutant must still type-check, got: %v", mod.TypeErrors)
	}
	return Run(mod.Pkgs, All())
}

// diagKeys folds diagnostics to analyzer+message multisets; mutations
// shift line numbers, so positions cannot key the diff.
func diagKeys(diags []Diagnostic) map[string]int {
	keys := make(map[string]int)
	for _, d := range diags {
		keys[d.Analyzer+": "+d.Message]++
	}
	return keys
}

// assertExactlyNew asserts the mutant run reports precisely the expected
// additional findings over the baseline, and loses none.
func assertExactlyNew(t *testing.T, base, got []Diagnostic, wantNew []string) {
	t.Helper()
	baseKeys, gotKeys := diagKeys(base), diagKeys(got)
	for _, w := range wantNew {
		gotKeys[w]--
	}
	for k, n := range gotKeys {
		switch {
		case n > baseKeys[k]:
			t.Errorf("mutant produced unexpected extra finding: %s", k)
		case n < baseKeys[k]:
			t.Errorf("mutant lost or double-counted finding: %s", k)
		}
	}
	for k, n := range baseKeys {
		if _, ok := gotKeys[k]; !ok && n > 0 {
			t.Errorf("mutant lost baseline finding: %s", k)
		}
	}
}

// TestSnapCoverMutationUnserializedField: a brand-new field nobody
// serializes must produce both per-side findings.
func TestSnapCoverMutationUnserializedField(t *testing.T) {
	root := t.TempDir()
	copyFixtureTree(t, root, "snapcover")
	base := lintTree(t, root)
	mutateFile(t, filepath.Join(root, "snapcover", "snapcover.go"),
		"pages   int64",
		"pages   int64\n\tepoch   int64")
	got := lintTree(t, root)
	assertExactlyNew(t, base, got, []string{
		"snapcover: field Good.epoch is never written by SnapshotTo; snapshot it or mark it //cclint:ignore snapcover -- <reason>",
		"snapcover: field Good.epoch is never restored by RestoreFrom; restore it or mark it //cclint:ignore snapcover -- <reason>",
	})
}

// TestSnapCoverMutationUnrestoredField: a field written by the snapshot
// but forgotten by the restore — the silent stream-desync bug — must
// produce exactly the restored-side finding.
func TestSnapCoverMutationUnrestoredField(t *testing.T) {
	root := t.TempDir()
	copyFixtureTree(t, root, "snapcover")
	base := lintTree(t, root)
	path := filepath.Join(root, "snapcover", "snapcover.go")
	mutateFile(t, path,
		"pages   int64",
		"pages   int64\n\tepoch   int64")
	mutateFile(t, path,
		"w.I64(g.pages)",
		"w.I64(g.pages)\n\tw.I64(g.epoch)")
	got := lintTree(t, root)
	assertExactlyNew(t, base, got, []string{
		"snapcover: field Good.epoch is never restored by RestoreFrom; restore it or mark it //cclint:ignore snapcover -- <reason>",
	})
}

// TestKernelProtoMutationRawGoroutine: a raw go statement slipped into
// the clean actor body must be reported with its actor chain.
func TestKernelProtoMutationRawGoroutine(t *testing.T) {
	root := t.TempDir()
	copyFixtureTree(t, root, "kernelproto")
	base := lintTree(t, root)
	mutateFile(t, filepath.Join(root, "kernelproto", "kernelproto.go"),
		"buf := pool.Get().([]byte)",
		"buf := pool.Get().([]byte)\n\t\tgo func() { _ = buf }()")
	got := lintTree(t, root)
	assertExactlyNew(t, base, got, []string{
		"kernelproto: actor body armed in Good: spawns a raw goroutine outside the kernel baton (Good); fleet determinism needs the single-actor discipline",
	})
}
