package exp

import (
	"context"
	"sort"
	"strings"
	"testing"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := []string{
		"ablation/bias", "ablation/codec", "ablation/fixed-size",
		"ablation/partial-io", "ablation/spanning", "ablation/threshold",
		"ext/backing-store", "ext/codec-sweep", "ext/compression-speed",
		"ext/crash-sweep",
		"ext/file-cache", "ext/fleet-sweep", "ext/lfs", "ext/mobile", "ext/model-validation",
		"ext/multiprogramming", "ext/pinning",
		"faults", "fig1a", "fig1b", "fig3", "table1",
	}
	if len(names) != len(want) {
		t.Fatalf("got %d experiments %v, want %d", len(names), names, len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestResolveGroups(t *testing.T) {
	abl, err := Resolve([]string{"ablations"})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 6 {
		t.Fatalf("ablations resolved to %d experiments, want 6", len(abl))
	}
	for _, e := range abl {
		if !strings.HasPrefix(e.Name(), "ablation/") {
			t.Fatalf("ablations group included %q", e.Name())
		}
	}

	all, err := Resolve([]string{"all", "fig3", " table1 "})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Fatalf("all resolved to %d experiments, want %d (deduplicated)", len(all), len(Names()))
	}

	if _, err := Resolve([]string{"no-such-experiment"}); err == nil {
		t.Fatal("Resolve accepted an unknown name")
	}
}

func TestRegistryRunsModelExperiment(t *testing.T) {
	e, ok := Lookup("fig1a")
	if !ok {
		t.Fatal("fig1a not registered")
	}
	res, err := e.Run(context.Background(), DefaultOptions(Small))
	if err != nil {
		t.Fatal(err)
	}
	tabs := res.Tables()
	if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
		t.Fatalf("fig1a produced %d tables (rows %v)", len(tabs), tabs)
	}
	if !strings.Contains(tabs[0].Title, "Figure 1(a)") {
		t.Fatalf("unexpected title %q", tabs[0].Title)
	}
}
