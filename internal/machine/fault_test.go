package machine

import (
	"errors"
	"testing"
	"time"

	"compcache/internal/fault"
	"compcache/internal/vm"
)

// faultWindow delays injection far past any setup phase, so tests can stage
// exact machine state fault-free and then step into the injection window.
const faultWindow = time.Hour

// stageCompressedPage builds a CC machine with the given fault config,
// thrashes a segment until some page sits compressed in the cache, and
// returns the space and that page's index. Injection has not started yet.
func stageCompressedPage(t *testing.T, fc fault.Config, cleanReserve int) (*Machine, *Space, int32) {
	t.Helper()
	fc.ActiveAfter = faultWindow
	cfg := Default(mb / 4).WithCC().WithFaults(fc)
	// cleanReserve 1 effectively disables the background cleaner, so cache
	// entries stay dirty (the only copy of their page).
	cfg.CC.CleanReserve = cleanReserve
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", mb)
	fillCompressible(s)
	if err := m.Err(); err != nil {
		t.Fatalf("setup phase saw an error: %v", err)
	}
	for i := int32(0); i < s.Pages(); i++ {
		if s.seg.Page(i).State == vm.Compressed {
			return m, s, i
		}
	}
	t.Fatal("no page ended up compressed in the cache")
	return nil, nil, 0
}

// TestCorruptCleanEntryRecoversFromSwap is the graceful-degradation
// acceptance test: a corrupted compression-cache fragment whose clean copy
// exists on the backing store is detected by its checksum, dropped, and
// re-fetched from swap — correct contents, no error, only virtual-time
// costs.
func TestCorruptCleanEntryRecoversFromSwap(t *testing.T) {
	m, s, page := stageCompressedPage(t, fault.Config{Seed: 1, CacheCorruptionRate: 1}, 0)

	// Flush every dirty cache entry to the backing store so the target
	// entry is clean and a swap copy exists.
	for {
		n, err := m.CC.Clean()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	m.Drain()

	// Step into the injection window: the next cache read is corrupted.
	m.Clock.Advance(faultWindow)
	reads := m.Device.Stats().Reads
	before := m.Clock.Now()
	if got := s.ReadWord(int64(page) * 4096); got != uint64(page)+1 {
		t.Fatalf("recovered page read %d, want %d", got, uint64(page)+1)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("recovery surfaced an error: %v", err)
	}
	f := m.Faults()
	if f.InjectedCorruptions == 0 || f.CorruptionsDetected == 0 {
		t.Fatalf("corruption not injected or not detected: %+v", f)
	}
	if f.Recoveries == 0 {
		t.Fatalf("no recovery recorded: %+v", f)
	}
	if m.Device.Stats().Reads == reads {
		t.Fatal("recovery did not re-fetch from the backing store")
	}
	if m.Clock.Now() == before {
		t.Fatal("recovery was free: the swap re-fetch must cost virtual time")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptOnlyCopyYieldsTypedError: when the corrupted cache entry is
// dirty — the only copy of the page — there is nothing to fall back to. The
// machine must report a typed unrecoverable error, never panic, and stick
// the error so later operations are no-ops.
func TestCorruptOnlyCopyYieldsTypedError(t *testing.T) {
	m, s, page := stageCompressedPage(t, fault.Config{Seed: 1, CacheCorruptionRate: 1}, 1)

	// Find a compressed page whose entry is dirty — the only copy of the
	// page (frame pressure cleans some entries even without the cleaner).
	page = -1
	for i := int32(0); i < s.Pages(); i++ {
		if s.seg.Page(i).State != vm.Compressed {
			continue
		}
		if _, _, dirty, ok := m.CC.Fault(s.seg.Page(i).Key); ok && dirty {
			page = i
			break
		}
	}
	if page < 0 {
		t.Fatal("no dirty cache entry to corrupt")
	}
	m.Clock.Advance(faultWindow)
	s.ReadWord(int64(page) * 4096)
	err := m.Err()
	if err == nil {
		t.Fatal("corrupt only-copy read reported no error")
	}
	if !fault.IsUnrecoverable(err) {
		t.Fatalf("error is not typed unrecoverable: %v", err)
	}
	var ce *fault.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("unrecoverable error does not wrap the corruption detail: %v", err)
	}

	// The error sticks: later accesses no-op instead of cascading.
	s.WriteWord(0, 42)
	if got := s.ReadWord(0); got != 0 {
		t.Fatalf("post-failure read returned %d, want sticky-error zero", got)
	}
	if m.Err() != err {
		t.Fatal("first error did not stick")
	}
}

// TestSwapCorruptionIsUnrecoverable: a bit flip in a fragment read from the
// backing store has no lower level to fall back to.
func TestSwapCorruptionIsUnrecoverable(t *testing.T) {
	m, s, page := stageCompressedPage(t, fault.Config{Seed: 1, SwapCorruptionRate: 1}, 0)

	// Push the compressed entry out of the cache so the next read comes
	// from the backing store.
	if err := m.EvictAll(); err != nil {
		t.Fatal(err)
	}
	m.Clock.Advance(faultWindow)
	s.ReadWord(int64(page) * 4096)
	if err := m.Err(); !fault.IsUnrecoverable(err) {
		t.Fatalf("swap corruption produced %v, want typed unrecoverable error", err)
	}
}

// TestFaultFreeInjectorChangesNothing: attaching a zero-rate injector must
// not perturb the simulation — same virtual time, same stats.
func TestFaultFreeInjectorChangesNothing(t *testing.T) {
	run := func(withInjector bool) (time.Duration, uint64) {
		cfg := Default(mb / 4).WithCC()
		if withInjector {
			cfg = cfg.WithFaults(fault.Config{Seed: 99})
		}
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", mb)
		fillCompressible(s)
		for p := int32(0); p < s.Pages(); p += 3 {
			s.ReadWord(int64(p) * 4096)
		}
		m.Drain()
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed(), m.VM.Stats().Faults
	}
	t0, f0 := run(false)
	t1, f1 := run(true)
	if t0 != t1 || f0 != f1 {
		t.Fatalf("zero-rate injector changed the run: %v/%d vs %v/%d", t0, f0, t1, f1)
	}
}
