package netdev

import (
	"testing"
	"time"

	"compcache/internal/sim"
)

func newNet(t *testing.T, p Params) (*Net, *sim.Clock) {
	t.Helper()
	var clock sim.Clock
	n, err := New(p, &clock)
	if err != nil {
		t.Fatal(err)
	}
	return n, &clock
}

func TestValidate(t *testing.T) {
	for _, p := range []Params{Ethernet10(), Wireless2()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	bad := []Params{
		{BytesPerSec: 0, PacketBytes: 1024},
		{BytesPerSec: 1e6, PacketBytes: 0},
		{BytesPerSec: 1e6, PacketBytes: 1024, RTT: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Params{}, &sim.Clock{}); err == nil {
		t.Error("New accepted invalid params")
	}
}

func TestTransferRoundsToPackets(t *testing.T) {
	p := Params{BytesPerSec: 1e6, PacketBytes: 1024}
	if p.TransferTime(1) != p.TransferTime(1024) {
		t.Error("1 byte should cost a packet")
	}
	if p.TransferTime(1025) != p.TransferTime(2048) {
		t.Error("1025 bytes should cost two packets")
	}
	if p.TransferTime(0) != 0 {
		t.Error("zero transfer should be free")
	}
}

func TestReadCost(t *testing.T) {
	p := Ethernet10()
	n, clock := newNet(t, p)
	n.Read(0, 4096)
	want := p.PerOp + p.RTT + p.TransferTime(4096)
	if got := time.Duration(clock.Now()); got != want {
		t.Fatalf("read took %v, want %v", got, want)
	}
	st := n.Stats()
	if st.Reads != 1 || st.BytesRead != 4096 || st.Seeks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoSequentialDiscount(t *testing.T) {
	// Unlike a disk, back-to-back sequential reads cost the same as random
	// ones: the RTT is paid every time.
	p := Ethernet10()
	n, clock := newNet(t, p)
	n.Read(0, 4096)
	t0 := clock.Now()
	n.Read(4096, 4096)
	if got := clock.Elapsed(t0); got != p.PerOp+p.RTT+p.TransferTime(4096) {
		t.Fatalf("sequential read took %v", got)
	}
}

func TestAsyncQueue(t *testing.T) {
	n, clock := newNet(t, Wireless2())
	done := n.WriteAsync(0, 32*1024)
	if clock.Now() != 0 {
		t.Fatal("async send advanced the clock")
	}
	// A read queues behind the pending send.
	n.Read(0, 4096)
	if clock.Now() <= done {
		t.Fatal("read did not queue behind the async send")
	}
	n.Drain()
	if sim.Time(0) >= n.BusyUntil() {
		t.Fatal("busy timeline not advanced")
	}
}

func TestWirelessSlowerThanEthernet(t *testing.T) {
	e, eClock := newNet(t, Ethernet10())
	w, wClock := newNet(t, Wireless2())
	e.Read(0, 4096)
	w.Read(0, 4096)
	if wClock.Now() <= eClock.Now() {
		t.Fatal("wireless should be slower than Ethernet")
	}
}

func TestGranularity(t *testing.T) {
	n, _ := newNet(t, Ethernet10())
	if n.Granularity() != 1024 {
		t.Fatalf("granularity = %d", n.Granularity())
	}
	if n.Params().PacketBytes != 1024 {
		t.Fatal("params accessor broken")
	}
}

func TestSyncWriteCost(t *testing.T) {
	p := Wireless2()
	n, clock := newNet(t, p)
	n.Write(0, 4096)
	want := p.PerOp + p.RTT + p.TransferTime(4096)
	if got := time.Duration(clock.Now()); got != want {
		t.Fatalf("write took %v, want %v", got, want)
	}
	if n.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}
