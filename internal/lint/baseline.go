package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline support: incremental adoption without weakening the ratchet.
//
// Introducing a new analyzer over a tree with existing findings forces a
// bad choice — fix everything in the same change (huge PRs), or sprinkle
// ignore directives that misrepresent deliberate suppressions. A baseline
// is the third option: `cclint -write-baseline` records today's findings
// in .cclint-baseline.json, subsequent runs subtract exactly those, and
// the file can only shrink — CI fails while the checked-in baseline is
// non-empty, so the debt is burned down in follow-ups, never accreted.
//
// Entries are keyed by (analyzer, module-relative file, message) with a
// count, not by line number: surrounding edits must not invalidate the
// baseline, but a new instance of a suppressed finding in the same file
// must still surface (the count budget is exceeded and the extra finding
// is reported).

// BaselineEntry is one suppressed finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// WriteBaseline records diags (relative to root) at path, sorted and
// deduplicated into counted entries. An empty diagnostic set writes the
// canonical empty baseline "[]".
func WriteBaseline(path, root string, diags []Diagnostic) error {
	counts := make(map[BaselineEntry]int)
	var order []BaselineEntry
	for _, d := range diags {
		key := BaselineEntry{Analyzer: d.Analyzer, File: relFile(root, d.File), Message: d.Message}
		if counts[key] == 0 {
			order = append(order, key)
		}
		counts[key]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	entries := make([]BaselineEntry, 0, len(order))
	for _, key := range order {
		key.Count = counts[key]
		entries = append(entries, key)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error — a fresh checkout without the file must behave
// like one with the canonical "[]".
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %v", path, err)
	}
	for i := range entries {
		if entries[i].Count <= 0 {
			entries[i].Count = 1
		}
	}
	return entries, nil
}

// ApplyBaseline subtracts baselined findings from diags (which must be
// sorted, as Run returns them, so budget consumption is deterministic)
// and reports how many were suppressed.
func ApplyBaseline(entries []BaselineEntry, root string, diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	if len(entries) == 0 {
		return diags, 0
	}
	budget := make(map[BaselineEntry]int, len(entries))
	for _, e := range entries {
		budget[BaselineEntry{Analyzer: e.Analyzer, File: e.File, Message: e.Message}] += e.Count
	}
	for _, d := range diags {
		key := BaselineEntry{Analyzer: d.Analyzer, File: relFile(root, d.File), Message: d.Message}
		if budget[key] > 0 {
			budget[key]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// relFile maps an absolute diagnostic path to the module-root-relative
// slash form used in baseline files.
func relFile(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
