package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		cs = append(cs, c)
	}
	if len(cs) < 4 {
		t.Fatalf("expected at least 4 registered codecs, got %v", Names())
	}
	return cs
}

func roundTrip(t *testing.T, c Codec, src []byte) []byte {
	t.Helper()
	comp := c.Compress(nil, src)
	if len(comp) > c.MaxCompressedSize(len(src)) {
		t.Fatalf("%s: compressed %d bytes to %d, exceeds bound %d",
			c.Name(), len(src), len(comp), c.MaxCompressedSize(len(src)))
	}
	out, err := c.Decompress(nil, comp)
	if err != nil {
		t.Fatalf("%s: Decompress: %v", c.Name(), err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("%s: round trip mismatch: in %d bytes, out %d bytes", c.Name(), len(src), len(out))
	}
	return comp
}

func TestRoundTripCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 8192)
	rng.Read(random)
	text := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 200))
	runs := bytes.Repeat([]byte{0xAB}, 5000)
	sparse := make([]byte, 4096)
	for i := 0; i < len(sparse); i += 512 {
		sparse[i] = byte(i / 512)
	}
	periodic := make([]byte, 4096)
	for i := range periodic {
		periodic[i] = byte(i % 7)
	}
	cases := map[string][]byte{
		"empty":     {},
		"one":       {0x42},
		"two":       {0x42, 0x42},
		"random":    random,
		"text":      text,
		"runs":      runs,
		"sparse":    sparse,
		"periodic":  periodic,
		"allzero":   make([]byte, 4096),
		"short-run": {1, 1, 1},
		"min-run":   {2, 2, 2, 2},
	}
	for _, c := range allCodecs(t) {
		for name, src := range cases {
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				roundTrip(t, c, src)
			})
		}
	}
}

func TestLZRW1CompressesTypicalPages(t *testing.T) {
	var c LZRW1
	// A zero page should compress enormously.
	zero := make([]byte, 4096)
	comp := roundTrip(t, c, zero)
	if len(comp) > 600 {
		t.Errorf("zero page compressed to %d bytes, want < 600", len(comp))
	}
	// English-like text should compress better than 4:3 (the paper's
	// retention threshold).
	text := []byte(strings.Repeat("aaaa memory compression cache paging sprite ", 100))[:4096]
	comp = roundTrip(t, c, text)
	if len(comp) > 4096*3/4 {
		t.Errorf("text page compressed to %d bytes, want < %d", len(comp), 4096*3/4)
	}
}

func TestLZRW1RandomDataStored(t *testing.T) {
	var c LZRW1
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 4096)
	rng.Read(src)
	comp := roundTrip(t, c, src)
	// Random data must fall back to the stored block: exactly n+1 bytes.
	if len(comp) != len(src)+1 {
		t.Errorf("random page compressed to %d bytes, want stored fallback %d", len(comp), len(src)+1)
	}
	if comp[0] != flagCopy {
		t.Errorf("random page flag = %#x, want flagCopy", comp[0])
	}
}

func TestLZRW1OverlappingCopy(t *testing.T) {
	// "abcabcabc..." forces copies whose source overlaps the destination
	// (offset 3, length up to 18).
	var c LZRW1
	src := bytes.Repeat([]byte("abc"), 500)
	comp := roundTrip(t, c, src)
	if len(comp) >= len(src)/2 {
		t.Errorf("periodic data compressed to %d bytes, want < %d", len(comp), len(src)/2)
	}
}

func TestLZRW1MatchAtMaxOffset(t *testing.T) {
	var c LZRW1
	src := make([]byte, 4200)
	copy(src, "UNIQUETOKEN")
	copy(src[4090:], "UNIQUETOKEN") // offset 4090 < 4095: reachable
	roundTrip(t, c, src)

	src2 := make([]byte, 8300)
	copy(src2, "UNIQUETOKEN")
	copy(src2[8200:], "UNIQUETOKEN") // offset 8200 > 4095: not reachable
	roundTrip(t, c, src2)
}

func TestDecompressErrors(t *testing.T) {
	for _, c := range allCodecs(t) {
		if _, err := c.Decompress(nil, nil); err == nil {
			t.Errorf("%s: empty input should error", c.Name())
		}
	}
	var lz LZRW1
	if _, err := lz.Decompress(nil, []byte{0xFF, 1, 2}); err == nil {
		t.Error("lzrw1: bad flag should error")
	}
	if _, err := lz.Decompress(nil, []byte{flagCompress, 0x01}); err == nil {
		t.Error("lzrw1: truncated control word should error")
	}
	// Control word says "copy item" but only one byte follows.
	if _, err := lz.Decompress(nil, []byte{flagCompress, 0x01, 0x00, 0x12}); err == nil {
		t.Error("lzrw1: truncated copy item should error")
	}
	// Copy item with offset pointing before the start of output.
	if _, err := lz.Decompress(nil, []byte{flagCompress, 0x01, 0x00, 0x00, 0x10}); err == nil {
		t.Error("lzrw1: out-of-range offset should error")
	}
	var rle RLE
	if _, err := rle.Decompress(nil, []byte{0x7F}); err == nil {
		t.Error("rle: bad flag should error")
	}
	if _, err := rle.Decompress(nil, []byte{flagCompress, 0x00}); err == nil {
		t.Error("rle: truncated literal header should error")
	}
	if _, err := rle.Decompress(nil, []byte{flagCompress, 0x00, 0x05, 'a'}); err == nil {
		t.Error("rle: truncated literal span should error")
	}
	if _, err := rle.Decompress(nil, []byte{flagCompress, 0x09}); err == nil {
		t.Error("rle: truncated run should error")
	}
	var null Null
	if _, err := null.Decompress(nil, []byte{1, 0, 0, 0}); err == nil {
		t.Error("null: length mismatch should error")
	}
	if _, err := null.Decompress(nil, []byte{0, 0}); err == nil {
		t.Error("null: short block should error")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"bdi", "fpc", "lzrw1", "lzss", "null", "rle"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for _, w := range want {
		if _, err := Lookup(w); err != nil {
			t.Errorf("Lookup(%q): %v", w, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown codec should error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(LZRW1{})
}

// Property: round trip is the identity for arbitrary byte strings, and the
// output respects the documented size bound, for every codec.
func TestRoundTripProperty(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		f := func(src []byte) bool {
			comp := c.Compress(nil, src)
			if len(comp) > c.MaxCompressedSize(len(src)) {
				return false
			}
			out, err := c.Decompress(nil, comp)
			return err == nil && bytes.Equal(out, src)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// Property: decompressing arbitrary garbage either errors or succeeds, but
// never panics and never reads out of range.
func TestDecompressGarbageNoPanic(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		f := func(junk []byte) bool {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panic on garbage input: %v", c.Name(), r)
				}
			}()
			_, _ = c.Decompress(nil, junk)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// Property: compressing structured (repetitive) input with LZRW1 always
// shrinks once the input is long enough, and appending to a non-empty dst
// leaves the prefix untouched.
func TestCompressAppendsToDst(t *testing.T) {
	for _, c := range allCodecs(t) {
		prefix := []byte("PREFIX")
		src := bytes.Repeat([]byte("xy"), 300)
		out := c.Compress(append([]byte{}, prefix...), src)
		if !bytes.HasPrefix(out, prefix) {
			t.Errorf("%s: Compress clobbered dst prefix", c.Name())
		}
		dec, err := c.Decompress(append([]byte{}, prefix...), out[len(prefix):])
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(dec, append(append([]byte{}, prefix...), src...)) {
			t.Errorf("%s: Decompress clobbered dst prefix", c.Name())
		}
	}
}

func TestRLERuns(t *testing.T) {
	var c RLE
	// A very long run must be split across count bytes without corruption.
	src := bytes.Repeat([]byte{9}, 1000)
	comp := roundTrip(t, c, src)
	if len(comp) > 16 {
		t.Errorf("1000-byte run compressed to %d bytes, want <= 16", len(comp))
	}
	// Alternating bytes cannot be run-length coded: must store.
	alt := make([]byte, 512)
	for i := range alt {
		alt[i] = byte(i & 1)
	}
	comp = roundTrip(t, c, alt)
	if len(comp) != len(alt)+1 {
		t.Errorf("alternating bytes compressed to %d, want stored %d", len(comp), len(alt)+1)
	}
}

func TestRLELongLiteralSpan(t *testing.T) {
	var c RLE
	// >255 bytes with no runs at all: forces multiple literal spans, which
	// expand, which forces the stored fallback. Either way round trip holds.
	src := make([]byte, 700)
	for i := range src {
		src[i] = byte(i * 37)
	}
	roundTrip(t, c, src)
}

// Fuzz targets for the LZ codecs live in fuzz_test.go.

func BenchmarkLZRW1CompressText(b *testing.B) {
	src := []byte(strings.Repeat("memory compression cache paging sprite kernel ", 100))[:4096]
	var c LZRW1
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], src)
	}
}

func BenchmarkLZRW1DecompressText(b *testing.B) {
	src := []byte(strings.Repeat("memory compression cache paging sprite kernel ", 100))[:4096]
	var c LZRW1
	comp := c.Compress(nil, src)
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = c.Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestLZSSBeatsLZRW1OnText(t *testing.T) {
	// The asymmetric codec's reason to exist: better ratios on real text.
	text := []byte(strings.Repeat("the compression cache uses some memory to store data in compressed format so the working set of a large application fits in small memory ", 60))[:4096]
	var lzrw LZRW1
	var lzss LZSS
	a := lzrw.Compress(nil, text)
	b := lzss.Compress(nil, text)
	if len(b) >= len(a) {
		t.Fatalf("lzss (%d bytes) did not beat lzrw1 (%d bytes) on text", len(b), len(a))
	}
	roundTrip(t, lzss, text)
}

func TestLZSSLongMatch(t *testing.T) {
	// A long run exercises the length-extension byte (matches up to 514).
	var c LZSS
	src := bytes.Repeat([]byte{7}, 3000)
	comp := roundTrip(t, c, src)
	if len(comp) > 64 {
		t.Fatalf("3000-byte run compressed to %d bytes", len(comp))
	}
}

func TestLZSSFarMatch(t *testing.T) {
	// Matches beyond LZRW1's 4-KB window but within LZSS's 32-KB window.
	var c LZSS
	src := make([]byte, 20000)
	copy(src, "UNIQUESEQUENCEtokenXYZ")
	copy(src[18000:], "UNIQUESEQUENCEtokenXYZ")
	comp := roundTrip(t, c, src)
	var lzrw LZRW1
	lcomp := lzrw.Compress(nil, src)
	// Both inputs are mostly zeros, so both compress; just verify validity
	// and that lzss found the far match region too (smaller or equal).
	if len(comp) > len(lcomp) {
		t.Fatalf("lzss %d > lzrw1 %d on far-match input", len(comp), len(lcomp))
	}
}

func TestLZSSDecompressErrors(t *testing.T) {
	var c LZSS
	if _, err := c.Decompress(nil, []byte{0x5A}); err == nil {
		t.Error("bad flag accepted")
	}
	if _, err := c.Decompress(nil, []byte{flagCompress, 0x01, 0x00}); err == nil {
		t.Error("truncated copy item accepted")
	}
	// Copy with offset beyond output start.
	if _, err := c.Decompress(nil, []byte{flagCompress, 0x01, 0x10, 0x00, 0x00}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	// Length extension truncated.
	if _, err := c.Decompress(nil, []byte{flagCompress, 0x02, 'a', 0x00, 0x00, 0xFF}); err == nil {
		t.Error("truncated length extension accepted")
	}
}
