// Package machine is the crosscredit golden fixture for the scoped
// exported API: every chain here keeps the codec work in another package,
// which is exactly the territory the same-package clockcredit analyzer
// cannot see.
package machine

import (
	"compcache/crosscredit/internal/pipeline"
	"compcache/crosscredit/internal/sim"
)

// Machine owns the fixture's clock.
type Machine struct {
	clock *sim.Clock
}

// BadDeep reaches codec work two packages away with no credit on any
// path: the chain in the message names the route.
func (m *Machine) BadDeep(p []byte) []byte { // want `BadDeep does codec/device work \(BadDeep → pipeline\.Process → compress\.Compress\) but no call path ever advances the virtual clock`
	return pipeline.Process(p)
}

// GoodDeep reaches the same work through a chain that charges the clock.
func (m *Machine) GoodDeep(p []byte) []byte {
	return pipeline.ProcessCharged(m.clock, p)
}

// BadIface reaches codec work through interface dispatch; method-set
// resolution still finds the uncharged chain.
func (m *Machine) BadIface(c pipeline.Codec, p []byte) []byte { // want `BadIface does codec/device work`
	return pipeline.Apply(c, p)
}

// GoodKernelWait reaches the same cross-package codec work, but the
// kernel-mediated wait is the credit: Kernel.Wait is how an attached
// clock advances.
func (m *Machine) GoodKernelWait(k *sim.Kernel, p []byte) []byte {
	k.Wait(0, sim.Time(len(p)))
	return pipeline.Process(p)
}

// GoodKernelSchedule credits through the kernel timer API on the way to
// the uncharged pipeline.
func (m *Machine) GoodKernelSchedule(k *sim.Kernel, p []byte) []byte {
	k.Schedule(10, 0)
	return pipeline.Process(p)
}

// Idle does no chargeable work at all; silent.
func (m *Machine) Idle() sim.Time { return m.clock.Now() }
