package lint

import (
	"go/ast"
	"go/types"
)

// CrossCredit is the interprocedural, cross-package form of ClockCredit.
//
// ClockCredit's view stops at the package boundary: it sees an exported
// internal/machine method charge the clock through a same-package helper,
// but it cannot see codec work buried two calls deep in another package,
// and it cannot see credit earned there either. CrossCredit walks the
// module-wide call graph instead: an exported method of internal/machine,
// internal/swap or internal/disk that transitively reaches codec work
// (internal/compress Compress/Decompress, resolved through interfaces by
// method-set matching) or raw device I/O (internal/disk
// Read/Write/ReadCluster/WriteCluster) in *another* package must also
// transitively reach a virtual-clock advance ((*sim.Clock).Advance /
// AdvanceTo) — otherwise simulated work is happening that no experiment
// ever pays for.
//
// Same-package chains are deliberately left to ClockCredit, so the two
// analyzers partition the invariant instead of double-reporting it.
type CrossCredit struct{}

// Name implements Analyzer.
func (CrossCredit) Name() string { return "crosscredit" }

// Doc implements Analyzer.
func (CrossCredit) Doc() string {
	return "exported machine/swap/disk methods reaching codec or device work in another package must advance the virtual clock"
}

// Severity implements Analyzer.
func (CrossCredit) Severity() Severity { return SevError }

// crossCreditScopes are the package-path suffixes whose exported API owns
// chargeable simulation work.
var crossCreditScopes = []string{"internal/machine", "internal/swap", "internal/disk"}

// codecFuncs are the chargeable codec entry points in internal/compress.
var codecFuncs = map[string]bool{"Compress": true, "Decompress": true}

// deviceFuncs are the chargeable device entry points in internal/disk.
var deviceFuncs = map[string]bool{"Read": true, "Write": true, "ReadCluster": true, "WriteCluster": true}

// isChargeableWork reports whether fn is a chargeable work primitive.
func isChargeableWork(fn *types.Func) bool {
	return fnIn(fn, "internal/compress", codecFuncs) || fnIn(fn, "internal/disk", deviceFuncs)
}

// isClockAdvance reports whether fn is a virtual-clock charging call.
func isClockAdvance(fn *types.Func) bool {
	return fnIn(fn, "internal/sim", advanceOps)
}

// Check implements Analyzer.
func (c CrossCredit) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil || pkg.Mod.Graph == nil || !inScopes(pkg.Path, crossCreditScopes) {
		return nil
	}
	g := pkg.Mod.Graph
	credited := pkg.Mod.factSet("crosscredit.credited", isClockAdvance)

	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pkg.Mod.Info.Defs[fd.Name].(*types.Func)
			if !ok || credited[fn] {
				continue
			}
			// Only cross-package work counts: the final work primitive
			// must live outside the declaring package (same-package work
			// is ClockCredit's jurisdiction).
			chain := g.Path(fn, func(callee *types.Func) bool {
				return isChargeableWork(callee) && callee.Pkg() != nil && callee.Pkg() != pkg.Types
			})
			if chain == nil {
				continue
			}
			out = append(out, diag(pkg, c.Name(), fd.Name,
				"%s does codec/device work (%s) but no call path ever advances the virtual clock; this cost is uncharged",
				fd.Name.Name, chainString(chain)))
		}
	}
	return out
}

// inScopes reports whether an import path ends in one of the suffixes.
func inScopes(path string, scopes []string) bool {
	for _, s := range scopes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}
