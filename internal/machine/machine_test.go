package machine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"compcache/internal/mem"
	"compcache/internal/netdev"
	"compcache/internal/swap"
	"compcache/internal/vm"
)

const mb = 1 << 20

func newMachine(t *testing.T, cfg Config, opts ...Option) *Machine {
	t.Helper()
	m, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fillCompressible writes highly compressible content (mostly zeros with a
// counter) to every page of the space.
func fillCompressible(s *Space) {
	var word [8]byte
	for p := int32(0); p < s.Pages(); p++ {
		binary.LittleEndian.PutUint64(word[:], uint64(p)+1)
		s.Write(int64(p)*4096, word[:])
	}
}

// fillRandom writes incompressible content to every page.
func fillRandom(s *Space, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	page := make([]byte, 4096)
	for p := int32(0); p < s.Pages(); p++ {
		rng.Read(page)
		s.Write(int64(p)*4096, page)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{PageSize: 1000, MemoryBytes: mb}); err == nil {
		t.Error("bad page size accepted")
	}
	if _, err := New(Config{MemoryBytes: 1024}); err == nil {
		t.Error("tiny memory accepted")
	}
	cfg := Default(mb)
	cfg.CC.Enabled = true
	cfg.CC.Codec = "no-such-codec"
	if _, err := New(cfg); err == nil {
		t.Error("unknown codec accepted")
	}
	cfg = Default(mb)
	cfg.CC.KeepNum, cfg.CC.KeepDen = 5, 4
	if _, err := New(cfg); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestBaselineInMemoryWorkload(t *testing.T) {
	m := newMachine(t, Default(mb))
	s := m.NewSegment("heap", 64*4096)
	fillCompressible(s)
	// Everything fits: re-reading must not fault again.
	f0 := m.Stats().VM.Faults
	for p := int32(0); p < s.Pages(); p++ {
		s.Touch(p, false)
	}
	if m.Stats().VM.Faults != f0 {
		t.Fatal("refs faulted despite fitting in memory")
	}
	if m.Stats().Disk.Reads != 0 {
		t.Fatal("disk reads for an in-memory workload")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineThrashingIntegrity(t *testing.T) {
	m := newMachine(t, Default(mb)) // 256 frames
	s := m.NewSegment("heap", 512*4096)
	rng := rand.New(rand.NewSource(1))
	shadow := make(map[int64]uint64)
	for i := 0; i < 4000; i++ {
		off := int64(rng.Intn(int(s.Pages())))*4096 + int64(rng.Intn(500))*8
		if rng.Intn(2) == 0 {
			val := rng.Uint64()
			s.WriteWord(off, val)
			shadow[off] = val
		} else if got := s.ReadWord(off); got != shadow[off] {
			t.Fatalf("step %d: read %d, want %d", i, got, shadow[off])
		}
	}
	st := m.Stats()
	if st.VM.SwapIns == 0 || st.Disk.Writes == 0 {
		t.Fatalf("expected paging traffic: %+v", st.VM)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCCThrashingIntegrity(t *testing.T) {
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", 512*4096)
	rng := rand.New(rand.NewSource(2))
	shadow := make(map[int64]uint64)
	for i := 0; i < 6000; i++ {
		off := int64(rng.Intn(int(s.Pages())))*4096 + int64(rng.Intn(500))*8
		if rng.Intn(2) == 0 {
			val := rng.Uint64()
			s.WriteWord(off, val)
			shadow[off] = val
		} else if got := s.ReadWord(off); got != shadow[off] {
			t.Fatalf("step %d: read %d, want %d", i, got, shadow[off])
		}
		if i%1000 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	st := m.Stats()
	if st.CC.Inserts == 0 || st.CC.Hits == 0 {
		t.Fatalf("compression cache unused: %+v", st.CC)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCCEliminatesDiskIOWhenFitsCompressed(t *testing.T) {
	// 2x memory of near-zero pages compresses far below memory size: after
	// the cold pass, cyclic sweeps must be serviced without disk reads.
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", 2*mb)
	fillCompressible(s)
	reads0 := m.Stats().Disk.Reads
	for pass := 0; pass < 3; pass++ {
		for p := int32(0); p < s.Pages(); p++ {
			s.Touch(p, false)
		}
	}
	st := m.Stats()
	// The cleaner may push clean copies out and the policy may briefly trim
	// the cache, so a handful of re-reads is legitimate; what must not
	// happen is disk reads on any meaningful fraction of faults.
	if got := st.Disk.Reads - reads0; got > st.VM.Faults/20 {
		t.Fatalf("CC machine read disk %d times on a fits-compressed workload (%d faults)", got, st.VM.Faults)
	}
	if st.CC.Hits == 0 {
		t.Fatal("no compression-cache hits")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSameWorkloadHitsDisk(t *testing.T) {
	m := newMachine(t, Default(mb))
	s := m.NewSegment("heap", 2*mb)
	fillCompressible(s)
	r0 := m.Stats().Disk.Reads
	for p := int32(0); p < s.Pages(); p++ {
		s.Touch(p, false)
	}
	if got := m.Stats().Disk.Reads - r0; got == 0 {
		t.Fatal("baseline avoided disk on a 2x-memory workload")
	}
}

func TestCCFasterThanBaselineOnCompressible(t *testing.T) {
	run := func(cfg Config) int64 {
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", 2*mb)
		fillCompressible(s)
		m.MarkStart()
		for pass := 0; pass < 3; pass++ {
			for p := int32(0); p < s.Pages(); p++ {
				s.Touch(p, true)
			}
		}
		m.Drain()
		return int64(m.Elapsed())
	}
	base := run(Default(mb))
	cc := run(Default(mb).WithCC())
	if cc >= base {
		t.Fatalf("CC (%d) not faster than baseline (%d) on compressible thrash", cc, base)
	}
	if float64(base)/float64(cc) < 2 {
		t.Fatalf("speedup only %.2fx, want >= 2x", float64(base)/float64(cc))
	}
}

func TestCCSlowerOnIncompressible(t *testing.T) {
	run := func(cfg Config) int64 {
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", 2*mb)
		fillRandom(s, 7)
		m.MarkStart()
		for pass := 0; pass < 2; pass++ {
			for p := int32(0); p < s.Pages(); p++ {
				s.Touch(p, false)
			}
		}
		m.Drain()
		return int64(m.Elapsed())
	}
	base := run(Default(mb))
	cc := run(Default(mb).WithCC())
	if cc <= base {
		t.Fatalf("CC (%d) should be slower than baseline (%d) on incompressible data: compression effort is wasted", cc, base)
	}
}

func TestIncompressibleCounted(t *testing.T) {
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", 2*mb)
	fillRandom(s, 3)
	st := m.Stats()
	if st.Comp.Compressions == 0 {
		t.Fatal("no compressions attempted")
	}
	if st.Comp.UncompressibleFrac() < 0.9 {
		t.Fatalf("uncompressible fraction %.2f, want > 0.9 for random pages", st.Comp.UncompressibleFrac())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatioMeasured(t *testing.T) {
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", 2*mb)
	fillCompressible(s)
	st := m.Stats()
	if r := st.Comp.Ratio(); r > 0.25 {
		t.Fatalf("near-zero pages compressed to ratio %.2f, want <= 0.25", r)
	}
}

func TestDataSurvivesFullHierarchyRoundTrip(t *testing.T) {
	// Small memory forces pages through CC, cleaning, swap, GC and back.
	cfg := Default(mb / 4).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", mb)
	content := make([][]byte, s.Pages())
	rng := rand.New(rand.NewSource(4))
	buf := make([]byte, 4096)
	for p := int32(0); p < s.Pages(); p++ {
		// Half compressible, half random: exercises both paths.
		if p%2 == 0 {
			for i := range buf {
				buf[i] = byte(p)
			}
		} else {
			rng.Read(buf)
		}
		content[p] = append([]byte(nil), buf...)
		s.Write(int64(p)*4096, buf)
	}
	// Random revisits force heavy replacement traffic.
	for i := 0; i < 2000; i++ {
		p := int32(rng.Intn(int(s.Pages())))
		s.Read(int64(p)*4096, buf)
		if !bytes.Equal(buf, content[p]) {
			t.Fatalf("page %d corrupted after %d steps", p, i)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborPrefetchPopulatesCC(t *testing.T) {
	cfg := Default(mb / 2).WithCC()
	m := newMachine(t, cfg)
	// 4x memory of compressible pages: the CC cannot hold everything, so
	// the cleaner pushes clusters to swap; sequential re-reads should then
	// pull neighbors back in and hit the cache.
	s := m.NewSegment("heap", 2*mb)
	fillCompressible(s)
	for pass := 0; pass < 2; pass++ {
		for p := int32(0); p < s.Pages(); p++ {
			s.Touch(p, false)
		}
	}
	st := m.Stats()
	if st.VM.SwapIns == 0 {
		t.Skip("workload fit without swap; prefetch not exercised")
	}
	if st.CC.Hits == 0 {
		t.Fatal("no cache hits despite clustered prefetch")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataOverheadReservesFrames(t *testing.T) {
	cfg := Default(mb).WithCC()
	cfg.CC.MetadataOverhead = true
	m := newMachine(t, cfg)
	if got := m.Pool.OwnedBy(mem.Kernel); got != 10 { // 38 KB -> 10 frames
		t.Fatalf("kernel frames after startup = %d, want 10", got)
	}
	m.NewSegment("big", 60*mb) // 15360 pages * 8 B = 120 KB -> 30 frames
	if got := m.Pool.OwnedBy(mem.Kernel); got != 40 {
		t.Fatalf("kernel frames after segment = %d, want 40", got)
	}
}

func TestMarkStartAndElapsed(t *testing.T) {
	m := newMachine(t, Default(mb))
	s := m.NewSegment("heap", 16*4096)
	fillCompressible(s)
	if m.Elapsed() == 0 {
		t.Fatal("no time elapsed during setup")
	}
	m.MarkStart()
	if m.Elapsed() != 0 {
		t.Fatal("MarkStart did not reset elapsed time")
	}
	s.Touch(0, false)
	if m.Elapsed() == 0 {
		t.Fatal("Elapsed did not advance")
	}
}

func TestRereadAfterDirtyInvalidatesStaleCopies(t *testing.T) {
	cfg := Default(mb / 4).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", mb)
	fillCompressible(s)
	// Rewrite every page with new values, then force them out and back.
	var word [8]byte
	for p := int32(0); p < s.Pages(); p++ {
		binary.LittleEndian.PutUint64(word[:], uint64(p)+7777)
		s.Write(int64(p)*4096, word[:])
	}
	for p := int32(0); p < s.Pages(); p++ {
		if got := s.ReadWord(int64(p) * 4096); got != uint64(p)+7777 {
			t.Fatalf("page %d: stale value %d", p, got)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceAccessors(t *testing.T) {
	m := newMachine(t, Default(mb))
	s := m.NewSegment("heap", 10000)
	if s.Pages() != 3 || s.Size() != 3*4096 {
		t.Fatalf("pages=%d size=%d", s.Pages(), s.Size())
	}
	if s.Machine() != m {
		t.Fatal("Machine() mismatch")
	}
}

func TestPageStateTransitions(t *testing.T) {
	cfg := Default(mb / 4).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", mb)
	fillCompressible(s)
	states := map[vm.PageState]int{}
	for _, seg := range m.VM.Segments() {
		for i := int32(0); i < seg.NPages; i++ {
			states[seg.Page(i).State]++
		}
	}
	if states[vm.Compressed] == 0 {
		t.Fatalf("no pages in compressed state: %v", states)
	}
	if states[vm.Resident] == 0 {
		t.Fatalf("no resident pages: %v", states)
	}
}

func TestEvictAllPushesEverythingOut(t *testing.T) {
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", mb/2)
	fillCompressible(s)
	m.EvictAll()
	if m.VM.ResidentPages() != 0 {
		t.Fatalf("resident pages after EvictAll: %d", m.VM.ResidentPages())
	}
	if m.CC.FrameCount() != 0 {
		t.Fatalf("cc frames after EvictAll: %d", m.CC.FrameCount())
	}
	if m.FS.CacheLen() != 0 {
		t.Fatalf("fs cache after EvictAll: %d", m.FS.CacheLen())
	}
	// All data must still be intact on the backing store.
	for p := int32(0); p < s.Pages(); p++ {
		if got := s.ReadWord(int64(p) * 4096); got != uint64(p)+1 {
			t.Fatalf("page %d lost after EvictAll: %d", p, got)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFixedFramesCacheNeverResizes(t *testing.T) {
	cfg := Default(mb).WithCC()
	cfg.CC.FixedFrames = 64
	m := newMachine(t, cfg)
	if got := m.CC.FrameCount(); got != 64 {
		t.Fatalf("prefilled frames = %d, want 64", got)
	}
	s := m.NewSegment("heap", 2*mb)
	fillCompressible(s)
	for pass := 0; pass < 2; pass++ {
		for p := int32(0); p < s.Pages(); p++ {
			s.Touch(p, false)
		}
	}
	if got := m.CC.FrameCount(); got != 64 {
		t.Fatalf("fixed cache resized to %d frames", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialIOMachineReadsLess(t *testing.T) {
	run := func(partial bool) uint64 {
		cfg := Default(mb / 2).WithCC()
		cfg.FS.AllowPartialIO = partial
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", 2*mb)
		fillRandom(s, 5) // incompressible: raw 4K pages to swap either way
		for p := int32(0); p < s.Pages(); p++ {
			s.Touch(p, false)
		}
		return m.Stats().Disk.BytesRead
	}
	whole := run(false)
	exact := run(true)
	if exact > whole {
		t.Fatalf("partial IO read more (%d) than whole-block (%d)", exact, whole)
	}
}

func TestCodecChoiceAffectsBehaviour(t *testing.T) {
	run := func(codec string) float64 {
		cfg := Default(mb).WithCC()
		cfg.CC.Codec = codec
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", 2*mb)
		fillCompressible(s)
		return m.Stats().Comp.Ratio()
	}
	if lz := run("lzrw1"); lz > 0.3 {
		t.Fatalf("lzrw1 ratio %.2f on zero-ish pages", lz)
	}
	// RLE also crushes near-zero pages.
	if rle := run("rle"); rle > 0.3 {
		t.Fatalf("rle ratio %.2f on zero-ish pages", rle)
	}
}

func TestDisablePrefetch(t *testing.T) {
	// Pages compressing to ~1 fragment (4 pages per file block) with a
	// compressed working set larger than memory: faults reach the clustered
	// swap and each block read carries neighbors.
	fillQuarterCompressible := func(s *Space) {
		rng := rand.New(rand.NewSource(9))
		page := make([]byte, 4096)
		for p := int32(0); p < s.Pages(); p++ {
			rng.Read(page[:800])
			for i := 800; i < 4096; i++ {
				page[i] = 0
			}
			s.Write(int64(p)*4096, page)
		}
	}
	run := func(disable bool) float64 {
		cfg := Default(mb / 2).WithCC()
		cfg.CC.DisablePrefetch = disable
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", 3*mb)
		fillQuarterCompressible(s)
		for pass := 0; pass < 2; pass++ {
			for p := int32(0); p < s.Pages(); p++ {
				s.Touch(p, false)
			}
		}
		return m.Stats().CC.HitRate()
	}
	with := run(false)
	without := run(true)
	if with <= without {
		t.Fatalf("prefetch did not raise the hit rate: with=%.2f without=%.2f", with, without)
	}
}

func TestNetworkBackedMachine(t *testing.T) {
	// A diskless machine paging over a slow wireless link: same integrity
	// guarantees, and the compression cache matters even more.
	run := func(cfg Config) int64 {
		m := newMachine(t, cfg)
		s := m.NewSegment("heap", 2*mb)
		fillCompressible(s)
		m.MarkStart()
		for pass := 0; pass < 2; pass++ {
			for p := int32(0); p < s.Pages(); p++ {
				s.Touch(p, false)
			}
		}
		m.Drain()
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return int64(m.Elapsed())
	}
	wireless := netdev.Wireless2()
	base := run(Default(mb).WithNetwork(wireless))
	cc := run(Default(mb).WithNetwork(wireless).WithCC())
	if cc >= base {
		t.Fatalf("CC (%d) not faster than baseline (%d) over wireless", cc, base)
	}
	if float64(base)/float64(cc) < 3 {
		t.Fatalf("wireless speedup only %.2fx; slow links should amplify the cache's benefit",
			float64(base)/float64(cc))
	}
}

func TestNetworkMachineIntegrity(t *testing.T) {
	cfg := Default(mb / 2).WithNetwork(netdev.Ethernet10()).WithCC()
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", mb)
	rng := rand.New(rand.NewSource(3))
	shadow := make(map[int64]uint64)
	for i := 0; i < 3000; i++ {
		off := int64(rng.Intn(int(s.Pages())))*4096 + int64(rng.Intn(500))*8
		if rng.Intn(2) == 0 {
			val := rng.Uint64()
			s.WriteWord(off, val)
			shadow[off] = val
		} else if got := s.ReadWord(off); got != shadow[off] {
			t.Fatalf("step %d: read %d, want %d", i, got, shadow[off])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPerSegmentCodec(t *testing.T) {
	cfg := Default(mb).WithCC()
	m := newMachine(t, cfg)
	if _, err := m.NewSegmentCodec("bad", mb, "no-such"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	// A null-codec segment and an lzrw1 segment, both with compressible
	// data and enough pressure to compress: the null segment's pages never
	// meet the retention threshold.
	nullSeg, err := m.NewSegmentCodec("null", 2*mb, "null")
	if err != nil {
		t.Fatal(err)
	}
	fillCompressible(nullSeg)
	st := m.Stats()
	if st.Comp.Compressions == 0 {
		t.Fatal("no compression attempts")
	}
	if st.Comp.UncompressibleFrac() < 0.99 {
		t.Fatalf("null codec retained pages: uncomp %.2f", st.Comp.UncompressibleFrac())
	}
	// Data integrity across the raw-swap path.
	for p := int32(0); p < nullSeg.Pages(); p++ {
		if got := nullSeg.ReadWord(int64(p) * 4096); got != uint64(p)+1 {
			t.Fatalf("page %d corrupted: %d", p, got)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedPagesSurviveThrash(t *testing.T) {
	m := newMachine(t, Default(mb))
	s := m.NewSegment("heap", 2*mb)
	fillCompressible(s)
	// Pin page 0 and thrash everything else: page 0 must never fault again.
	s.Pin(0)
	f0 := m.Stats().VM.Faults
	for p := int32(1); p < s.Pages(); p++ {
		s.Touch(p, false)
	}
	s.Touch(0, false)
	s.Unpin(0)
	st := m.Stats()
	if st.VM.Faults-f0 < uint64(s.Pages())/2 {
		t.Fatal("test did not thrash")
	}
	if st.VM.PinnedSkips == 0 {
		t.Fatal("eviction never skipped the pinned page")
	}
}

func TestCompressedFileCache(t *testing.T) {
	if _, err := New(func() Config {
		c := Default(mb)
		c.CC.FileCache = true // without Enabled
		return c
	}()); err == nil {
		t.Fatal("FileCache without CC accepted")
	}

	cfg := Default(mb).WithCC()
	cfg.CC.FileCache = true
	m := newMachine(t, cfg)
	f := m.FS.Create("data")
	// Write a compressible 3 MB file, then re-read it cyclically.
	buf := make([]byte, 4096)
	for b := int64(0); b < 768; b++ {
		for i := range buf {
			buf[i] = byte(b)
		}
		f.WriteAt(buf, b*4096)
	}
	m.FS.Sync()
	r0 := m.Stats().Disk.Reads
	for pass := 0; pass < 2; pass++ {
		for b := int64(0); b < 768; b++ {
			f.ReadAt(buf, b*4096)
			if buf[0] != byte(b) {
				t.Fatalf("block %d corrupted through compressed cache", b)
			}
		}
	}
	if m.FS.CompressedCacheHits() == 0 {
		t.Fatal("compressed file cache never hit")
	}
	if got := m.Stats().Disk.Reads - r0; got > 768 {
		t.Fatalf("compressed cache barely reduced disk reads: %d", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLFSBackedMachineIntegrity(t *testing.T) {
	cfg := Default(mb).WithLFS(swap.LFSConfig{SegmentBytes: 16 * 4096, MaxSegments: 24})
	m := newMachine(t, cfg)
	s := m.NewSegment("heap", 2*mb)
	rng := rand.New(rand.NewSource(6))
	shadow := make(map[int64]uint64)
	for i := 0; i < 4000; i++ {
		off := int64(rng.Intn(int(s.Pages())))*4096 + int64(rng.Intn(500))*8
		if rng.Intn(2) == 0 {
			val := rng.Uint64()
			s.WriteWord(off, val)
			shadow[off] = val
		} else if got := s.ReadWord(off); got != shadow[off] {
			t.Fatalf("step %d: read %d, want %d", i, got, shadow[off])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Swap.PagesOut == 0 {
		t.Fatal("LFS swap unused")
	}
}

// TestConfigMatrixIntegrity drives a randomized access script through every
// interesting configuration combination and checks end-to-end data
// integrity plus cross-subsystem invariants — the closest thing the
// simulator has to fault-injection coverage of the paging paths.
func TestConfigMatrixIntegrity(t *testing.T) {
	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	add := func(name string, cfg Config) { variants = append(variants, variant{name, cfg}) }

	add("baseline", Default(mb/2))
	add("baseline+lfs", Default(mb/2).WithLFS(swap.LFSConfig{SegmentBytes: 8 * 4096, MaxSegments: 32}))
	add("baseline+net", Default(mb/2).WithNetwork(netdev.Ethernet10()))
	for _, codec := range []string{"lzrw1", "lzss"} {
		for _, span := range []bool{false, true} {
			for _, partial := range []bool{false, true} {
				cfg := Default(mb / 2).WithCC()
				cfg.CC.Codec = codec
				cfg.Swap.SpanBlocks = span
				cfg.FS.AllowPartialIO = partial
				add(fmt.Sprintf("cc/%s/span=%v/partial=%v", codec, span, partial), cfg)
			}
		}
	}
	ccNet := Default(mb / 2).WithCC().WithNetwork(netdev.Wireless2())
	add("cc+wireless", ccNet)
	ccRefresh := Default(mb / 2).WithCC()
	ccRefresh.CC.RefreshOnFault = true
	add("cc+refresh", ccRefresh)
	ccFixed := Default(mb / 2).WithCC()
	ccFixed.CC.FixedFrames = 32
	add("cc+fixed", ccFixed)
	ccMeta := Default(mb / 2).WithCC()
	ccMeta.CC.MetadataOverhead = true
	add("cc+metadata", ccMeta)

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			m := newMachine(t, v.cfg)
			s := m.NewSegment("heap", mb)
			rng := rand.New(rand.NewSource(99))
			shadow := make(map[int64]uint64)
			page := make([]byte, 4096)
			for i := 0; i < 2500; i++ {
				switch rng.Intn(10) {
				case 0: // bulk page write, mixed compressibility
					p := int64(rng.Intn(int(s.Pages())))
					if rng.Intn(2) == 0 {
						rng.Read(page)
					} else {
						for j := range page {
							page[j] = byte(p)
						}
					}
					s.Write(p*4096, page)
					// The whole page changed: refresh every shadowed word in it.
					for off := range shadow {
						if off/4096 == p {
							j := off % 4096
							shadow[off] = uint64(page[j]) | uint64(page[j+1])<<8 |
								uint64(page[j+2])<<16 | uint64(page[j+3])<<24 |
								uint64(page[j+4])<<32 | uint64(page[j+5])<<40 |
								uint64(page[j+6])<<48 | uint64(page[j+7])<<56
						}
					}
				case 1, 2, 3, 4: // word write
					off := int64(rng.Intn(int(s.Pages())))*4096 + int64(rng.Intn(512))*8
					val := rng.Uint64()
					s.WriteWord(off, val)
					shadow[off] = val
				default: // read + verify
					off := int64(rng.Intn(int(s.Pages())))*4096 + int64(rng.Intn(512))*8
					want, seen := shadow[off]
					if !seen {
						continue
					}
					if got := s.ReadWord(off); got != want {
						t.Fatalf("step %d: %d != %d at %d", i, got, want, off)
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFreezeStart(t *testing.T) {
	m := newMachine(t, Default(mb))
	s := m.NewSegment("heap", 16*4096)
	s.Touch(0, true)
	m.FreezeStart()
	frozen := m.Elapsed()
	s.Touch(1, true)
	m.MarkStart() // must be a no-op now
	if m.Elapsed() <= frozen {
		t.Fatal("MarkStart reset the frozen origin")
	}
}
