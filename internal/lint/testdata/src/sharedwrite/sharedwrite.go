// Package sw is the sharedwrite golden fixture: every write shape a go
// closure can make to captured state, sanctioned and not.
package sw

// counters is shared state for the field-write case.
type counters struct {
	N int
}

// goodIndexSlotted is the contract's sanctioned shape: each goroutine
// owns slot i of a pre-sized slice.
func goodIndexSlotted(n int) []int {
	results := make([]int, n)
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			results[i] = 2 * i
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return results
}

// goodChannel hands results over a channel instead.
func goodChannel(n int) int {
	out := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			v := 2 * i // locals declared inside the closure are fine
			out <- v
		}()
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-out
	}
	return total
}

// badScalar writes a captured int from the goroutine.
func badScalar(n int) int {
	total := 0
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			total = total + i // want `goroutine writes captured variable total`
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return total
}

// badIncrement bumps a captured counter.
func badIncrement(n int) int {
	hits := 0
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			hits++ // want `goroutine increments captured variable hits`
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return hits
}

// badMap writes a captured map: unordered shared state.
func badMap(keys []string) map[string]int {
	m := make(map[string]int)
	done := make(chan struct{}, len(keys))
	for i, k := range keys {
		i, k := i, k
		go func() {
			m[k] = i // want `goroutine writes captured map m`
			done <- struct{}{}
		}()
	}
	for range keys {
		<-done
	}
	return m
}

// badField writes a field of a captured struct.
func badField() counters {
	var c counters
	done := make(chan struct{})
	go func() {
		c.N = 1 // want `goroutine writes field N of captured c`
		done <- struct{}{}
	}()
	<-done
	return c
}

// badPointer writes through a captured pointer.
func badPointer(p *int) {
	done := make(chan struct{})
	go func() {
		*p = 1 // want `goroutine writes through captured pointer p`
		done <- struct{}{}
	}()
	<-done
}
