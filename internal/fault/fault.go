// Package fault is a deterministic fault injector for the simulated paging
// stack, plus the typed errors the stack reports when a layer misbehaves.
//
// Real memory-compression deployments treat backing-store failures and
// compressed-data integrity as first-class concerns: a transfer can fail, a
// latency spike can stall the device, and a bit flip in a compressed
// fragment corrupts a whole page's worth of data. The injector models all
// three so experiments can measure overhead and survival as a function of
// fault rate.
//
// Determinism contract: every decision the injector makes is derived from an
// explicit seed and the machine's virtual clock — never from the host clock
// or the global math/rand source — and the simulation is single-threaded per
// machine, so the stream of decisions is a pure function of (seed, config,
// workload). Two runs with identical seeds and fault configs are
// byte-identical at any parallelism, faults included.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
)

// Config describes what to inject and how often. Rates are per-opportunity
// probabilities in [0, 1]: each device read, device write, and fragment
// decompression draws once against its rate. The zero Config injects
// nothing.
type Config struct {
	// Seed drives all injection decisions. Two injectors with the same seed
	// and config make identical decisions at identical points in a run.
	Seed int64

	// ReadErrorRate is the probability a device read fails after being
	// charged its full service time.
	ReadErrorRate float64

	// WriteErrorRate is the probability a device write (synchronous or
	// queued) fails.
	WriteErrorRate float64

	// CacheCorruptionRate is the probability a compressed fragment fetched
	// from the compression cache has one bit flipped before decompression —
	// an in-memory corruption. The checksum catches it and the machine
	// re-fetches the page from the backing store when a clean copy exists.
	CacheCorruptionRate float64

	// SwapCorruptionRate is the probability a compressed fragment read from
	// the backing store has one bit flipped — an on-media corruption. There
	// is no lower level to fall back to, so a hit here is unrecoverable.
	SwapCorruptionRate float64

	// LatencySpikeRate is the probability a device operation pays
	// LatencySpike of extra service time (a stalled bus, a remapped sector,
	// a congested link).
	LatencySpikeRate float64

	// LatencySpike is the extra service time a spike adds. Must be positive
	// when LatencySpikeRate is.
	LatencySpike time.Duration

	// ActiveAfter delays injection until this much virtual time has passed,
	// so a workload's setup phase can run clean. Zero starts immediately.
	ActiveAfter time.Duration

	// ActiveFor bounds the injection window; zero means faults stay active
	// until the run ends.
	ActiveFor time.Duration
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"ReadErrorRate", c.ReadErrorRate},
		{"WriteErrorRate", c.WriteErrorRate},
		{"CacheCorruptionRate", c.CacheCorruptionRate},
		{"SwapCorruptionRate", c.SwapCorruptionRate},
		{"LatencySpikeRate", c.LatencySpikeRate},
	}
	for _, r := range rates {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", r.name, r.v)
		}
	}
	if c.LatencySpike < 0 {
		return fmt.Errorf("fault: negative LatencySpike %v", c.LatencySpike)
	}
	if c.LatencySpikeRate > 0 && c.LatencySpike == 0 {
		return fmt.Errorf("fault: LatencySpikeRate %g needs a positive LatencySpike", c.LatencySpikeRate)
	}
	if c.ActiveAfter < 0 || c.ActiveFor < 0 {
		return fmt.Errorf("fault: negative activity window (after %v, for %v)", c.ActiveAfter, c.ActiveFor)
	}
	return nil
}

// Injector makes the injection decisions for one machine. A nil *Injector is
// valid and injects nothing, so fault-free hot paths need no branch beyond
// the nil-receiver method call.
//
// Injector is not safe for concurrent use; like the clock it belongs to
// exactly one single-threaded simulated machine.
type Injector struct {
	cfg   Config
	clock *sim.Clock
	rng   *rand.Rand
	bus   *obs.Bus
	st    stats.Faults
}

// New creates an injector on the given clock.
func New(cfg Config, clock *sim.Clock) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, clock: clock, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// SetObserver wires the injector to a machine's event bus; nil disables
// emission. Emission never consumes randomness, so a traced run makes the
// same injection decisions as an untraced one.
func (in *Injector) SetObserver(b *obs.Bus) {
	if in != nil {
		in.bus = b
	}
}

// emit records one fired injection decision.
func (in *Injector) emit(kind int64) {
	if in.bus.Enabled(obs.ClassInject) {
		in.bus.Emit(obs.Event{
			T: in.clock.Now(), Class: obs.ClassInject, Sub: obs.SubFault, Aux: kind,
		})
	}
}

// Stats returns the injected-fault counters. The detection and recovery
// counters of stats.Faults are owned by the machine, not the injector.
func (in *Injector) Stats() stats.Faults {
	if in == nil {
		return stats.Faults{}
	}
	return in.st
}

// active reports whether the virtual clock is inside the injection window.
func (in *Injector) active() bool {
	now := time.Duration(in.clock.Now())
	if now < in.cfg.ActiveAfter {
		return false
	}
	return in.cfg.ActiveFor == 0 || now <= in.cfg.ActiveAfter+in.cfg.ActiveFor
}

// draw makes one rate decision. It consumes randomness only when the rate
// can fire, so enabling one fault class does not perturb the others.
func (in *Injector) draw(rate float64) bool {
	if in == nil || rate <= 0 || !in.active() {
		return false
	}
	return in.rng.Float64() < rate
}

// DiskRead decides whether the device read that just completed fails. It
// returns a *DeviceError or nil.
func (in *Injector) DiskRead() error {
	if in == nil || !in.draw(in.cfg.ReadErrorRate) {
		return nil
	}
	in.st.InjectedReadErrors++
	in.emit(obs.InjectReadError)
	return &DeviceError{Op: "read", At: in.clock.Now()}
}

// DiskWrite decides whether the device write that just completed fails.
func (in *Injector) DiskWrite() error {
	if in == nil || !in.draw(in.cfg.WriteErrorRate) {
		return nil
	}
	in.st.InjectedWriteErrors++
	in.emit(obs.InjectWriteError)
	return &DeviceError{Op: "write", At: in.clock.Now()}
}

// Latency reports the extra service time the current device operation pays
// (zero in the common case).
func (in *Injector) Latency() time.Duration {
	if in == nil || !in.draw(in.cfg.LatencySpikeRate) {
		return 0
	}
	in.st.InjectedSpikes++
	in.emit(obs.InjectLatencySpike)
	return in.cfg.LatencySpike
}

// CorruptCache flips one deterministically chosen bit of a compressed
// fragment about to be decompressed out of the compression cache, reporting
// whether it did. The caller's checksum verification is expected to catch
// the flip.
func (in *Injector) CorruptCache(frag []byte) bool {
	if in == nil {
		return false
	}
	return in.corrupt(in.cfg.CacheCorruptionRate, frag, obs.InjectCacheCorruption)
}

// CorruptSwap flips one bit of a compressed fragment just read from the
// backing store.
func (in *Injector) CorruptSwap(frag []byte) bool {
	if in == nil {
		return false
	}
	return in.corrupt(in.cfg.SwapCorruptionRate, frag, obs.InjectSwapCorruption)
}

func (in *Injector) corrupt(rate float64, frag []byte, kind int64) bool {
	if len(frag) == 0 || !in.draw(rate) {
		return false
	}
	bit := in.rng.Intn(len(frag) * 8)
	frag[bit>>3] ^= 1 << (bit & 7)
	in.st.InjectedCorruptions++
	in.emit(kind)
	return true
}

// ---------------------------------------------------------------------------
// Typed errors. Layers report these instead of panicking, so a single bad
// page or transfer degrades one run instead of crashing the whole sweep.

// DeviceError is an injected backing-store transfer failure.
type DeviceError struct {
	Op string   // "read" or "write"
	At sim.Time // virtual instant the failure surfaced
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("fault: injected device %s error at %v", e.Op, e.At)
}

// CorruptionError is a compressed fragment that failed integrity
// verification: its checksum did not match, the codec rejected it, or it
// decompressed to the wrong length.
type CorruptionError struct {
	Page   string // the page key, already formatted
	Reason string // what the verification found
	Err    error  // underlying codec error, when there is one
}

// Error implements error.
func (e *CorruptionError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fault: corrupt fragment for page %s: %s: %v", e.Page, e.Reason, e.Err)
	}
	return fmt.Sprintf("fault: corrupt fragment for page %s: %s", e.Page, e.Reason)
}

// Unwrap exposes the codec error for errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// UnrecoverableError means the paging stack could not reconstruct a page's
// contents from any level of the hierarchy: the data is gone and the run
// (the simulated process) cannot continue. It is the typed replacement for
// what used to be a panic.
type UnrecoverableError struct {
	Page   string // the page key, already formatted
	Reason string // why no fallback existed
	Err    error  // the failure that triggered the loss, when there is one
}

// Error implements error.
func (e *UnrecoverableError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fault: page %s unrecoverable (%s): %v", e.Page, e.Reason, e.Err)
	}
	return fmt.Sprintf("fault: page %s unrecoverable (%s)", e.Page, e.Reason)
}

// Unwrap exposes the triggering failure for errors.Is/As.
func (e *UnrecoverableError) Unwrap() error { return e.Err }

// IsUnrecoverable reports whether err contains an UnrecoverableError — the
// "this run died, siblings may continue" signal experiment harnesses test
// for.
func IsUnrecoverable(err error) bool {
	var ue *UnrecoverableError
	return errors.As(err, &ue)
}
