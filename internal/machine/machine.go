package machine

import (
	"errors"
	"fmt"
	"time"

	"compcache/internal/compress"
	"compcache/internal/core"
	"compcache/internal/disk"
	"compcache/internal/fault"
	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/netdev"
	"compcache/internal/obs"
	"compcache/internal/policy"
	"compcache/internal/sim"
	"compcache/internal/stats"
	"compcache/internal/swap"
	"compcache/internal/vm"
)

// Machine is a simulated computer. All subsystems share one virtual clock;
// running a workload against the machine produces deterministic virtual-time
// measurements.
type Machine struct {
	cfg Config

	Clock *sim.Clock
	Pool  *mem.Pool
	// Device is the backing hardware (a *disk.Disk unless the configuration
	// selects a network page server).
	Device fs.Device
	Disk   *disk.Disk // non-nil only for disk-backed machines
	FS     *fs.FS
	VM     *vm.VM
	CC     *core.Cache // nil when the compression cache is disabled

	direct      rawStore        // baseline backing store (direct or LFS)
	directPlain *swap.Direct    // concrete direct store when that is the baseline
	lfs         *swap.LFS       // concrete LFS store when that is the baseline
	clustered   *swap.Clustered // compressed backing store
	alloc       *policy.Allocator
	codec       compress.Codec
	faults      *fault.Injector      // nil when no fault config is given
	recovery    *swap.RecoveryReport // mount-time recovery report (NewFromMedia only)

	segByID     map[int32]*vm.Segment
	segCodec    map[int32]compress.Codec // per-segment override (§3)
	comp        stats.Compression
	fst         stats.Faults // machine-side detection/recovery counters
	err         error        // first fatal error; see Err
	start       sim.Time
	startFrozen bool

	bus        *obs.Bus       // nil without WithObs
	compHist   *obs.Histogram // machine.compress_page — per-page compression time
	decompHist *obs.Histogram // machine.decompress_page — per-page decompression time

	remote RemoteStore // nil without WithRemote; fleet-level page placement

	// Hot-path scratch. The machine is single-goroutine, and both consumers
	// of these buffers copy at the boundary before returning — core.Cache
	// .Insert copies into a cache-owned slab, swap.Clustered.WriteCluster
	// serializes into its own cluster buffer — so one compression buffer and
	// one neighbor-staging buffer serve every PageOut/PageIn/Store without
	// per-call allocation.
	compBuf []byte       // codec.Compress destination, reused across calls
	nbrBuf  []byte       // clustered-read neighbor staging (corrupt+verify)
	itemBuf [1]swap.Item // single-item WriteCluster batches
}

// New builds a machine from the configuration. Options attach the machine to
// its surroundings — observability, a shared discrete-event kernel, a remote
// page store; see Option.
func New(cfg Config, opts ...Option) (*Machine, error) { return buildMachine(cfg, nil, opts) }

// NewFromMedia boots a machine from a media image — the reboot-after-crash
// path. The image (captured with FS.Image() before or after the crash) is
// loaded into the fresh file system and the backing store is mounted through
// its recovery scanner instead of being created empty; the resulting
// RecoveryReport is available from Introspect().Recovery and its counters
// appear in Stats().Faults. The configuration must select a recoverable
// on-media format (a compressed machine with Swap.CommitRecords, or a
// durable LFS baseline) — both are enabled automatically when crash
// injection is configured.
func NewFromMedia(cfg Config, img *fs.Image, opts ...Option) (*Machine, error) {
	if img == nil {
		return nil, fmt.Errorf("machine: NewFromMedia needs a media image")
	}
	return buildMachine(cfg, img, opts)
}

func buildMachine(cfg Config, img *fs.Image, opts []Option) (*Machine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	var b buildOpts
	for _, o := range opts {
		o(&b)
	}
	m := &Machine{
		cfg:      cfg,
		Clock:    &sim.Clock{},
		remote:   b.remote,
		segByID:  make(map[int32]*vm.Segment),
		segCodec: make(map[int32]compress.Codec),
	}
	if b.kernel != nil {
		// Attach before any subsystem exists so construction-time charges land
		// on the actor clock; see the WithKernel contract.
		b.kernel.Attach(m.Clock, b.actor)
	}

	frames := int(cfg.MemoryBytes / int64(cfg.PageSize))
	m.Pool = mem.NewPool(frames, cfg.PageSize)

	if b.obs != nil {
		m.bus = obs.NewBus(*b.obs)
	}
	// Probe handles are nil-safe, so they are cached unconditionally.
	m.compHist = m.bus.Histogram("machine.compress_page")
	m.decompHist = m.bus.Histogram("machine.decompress_page")

	var err error
	if cfg.Faults != nil {
		m.faults, err = fault.New(*cfg.Faults, m.Clock)
		if err != nil {
			return nil, err
		}
		m.faults.SetObserver(m.bus)
	}
	if cfg.Net != nil {
		var net *netdev.Net
		net, err = netdev.New(*cfg.Net, m.Clock)
		if err == nil {
			net.SetFaultInjector(m.faults)
			net.SetObserver(m.bus)
			m.Device = net
		}
	} else {
		m.Disk, err = disk.New(cfg.Disk, m.Clock)
		if err == nil {
			m.Disk.SetFaultInjector(m.faults)
			m.Disk.SetObserver(m.bus)
			m.Device = m.Disk
		}
	}
	if err != nil {
		return nil, err
	}
	m.FS, err = fs.New(cfg.FS, m.Device, m.Clock, m.Pool)
	if err != nil {
		return nil, err
	}
	if img != nil {
		if err := m.FS.LoadImage(img); err != nil {
			return nil, err
		}
	}
	m.VM = vm.New(m.Clock, m.Pool, cfg.Cost)
	m.VM.SetPager(m)
	m.VM.SetObserver(m.bus)

	m.alloc = policy.NewAllocator(m.Pool, m.Clock)
	m.alloc.Reserve = cfg.ReserveFrames
	bias := func(name string) policy.Bias {
		if b, ok := cfg.Biases[name]; ok {
			return b
		}
		return policy.Neutral
	}
	m.alloc.Register(m.FS, bias("fs"))
	m.alloc.Register(m.VM, bias("vm"))

	if cfg.CC.Enabled {
		m.codec, err = compress.Lookup(cfg.CC.Codec)
		if err != nil {
			return nil, err
		}
		m.compBuf = make([]byte, 0, m.codec.MaxCompressedSize(cfg.PageSize))
		m.CC = core.New(cfg.CC.Core, m.Clock, m.Pool)
		m.CC.SetHooks(m.flushEntries, m.entryDropped)
		m.CC.SetObserver(m.bus)
		m.alloc.Register(ccConsumer{m.CC}, bias("cc"))
		if img != nil {
			if !cfg.Swap.CommitRecords {
				return nil, fmt.Errorf("machine: NewFromMedia on a compressed machine requires Swap.CommitRecords")
			}
			var rep *swap.RecoveryReport
			m.clustered, rep, err = swap.RecoverClustered(cfg.Swap, m.FS, m.bus, m.Clock)
			if err != nil {
				return nil, err
			}
			m.recordRecovery(rep)
		} else {
			m.clustered, err = swap.NewClustered(cfg.Swap, m.FS)
			if err != nil {
				return nil, err
			}
		}
		m.clustered.SetObserver(m.bus, m.Clock)
		if cfg.CC.FixedFrames > 0 {
			m.CC.Prefill(cfg.CC.FixedFrames)
		}
		if cfg.CC.FileCache {
			m.FS.SetCompressedBlockCache(fsBlockCache{m})
		}
		if cfg.CC.MetadataOverhead {
			m.reserveKernelBytes(staticOverheadBytes)
		}
	} else if cfg.LFSSwap != nil {
		lfsCfg := *cfg.LFSSwap
		if lfsCfg.PageSize == 0 {
			lfsCfg.PageSize = cfg.PageSize
		}
		if img != nil {
			if !lfsCfg.Durable {
				return nil, fmt.Errorf("machine: NewFromMedia on an LFS machine requires LFSSwap.Durable")
			}
			var rep *swap.RecoveryReport
			m.lfs, rep, err = swap.RecoverLFS(lfsCfg, m.FS, m.Pool, m.bus, m.Clock)
			if err != nil {
				return nil, err
			}
			m.recordRecovery(rep)
		} else {
			m.lfs, err = swap.NewLFS(lfsCfg, m.FS, m.Pool)
			if err != nil {
				return nil, err
			}
		}
		m.direct = m.lfs
	} else {
		if img != nil {
			return nil, fmt.Errorf("machine: NewFromMedia requires a recoverable backing store (Swap.CommitRecords or a durable LFS)")
		}
		m.directPlain, err = swap.NewDirect(m.FS, cfg.PageSize)
		if err != nil {
			return nil, err
		}
		m.direct = m.directPlain
	}

	m.VM.SetFrameSource(m.allocFrame)
	m.FS.SetFrameSource(m.allocFrame)
	return m, nil
}

// rawStore is the baseline machine's backing store: whole uncompressed
// pages in, whole pages out. *swap.Direct implements it (the unmodified
// Sprite arrangement); *swap.LFS implements it for the §5.1 log-structured
// alternative.
type rawStore interface {
	Write(key swap.PageKey, data []byte) error
	Read(key swap.PageKey, buf []byte) (bool, error)
	Has(key swap.PageKey) bool
	Invalidate(key swap.PageKey)
	Stats() stats.Swap
}

// ccConsumer adapts the compression cache to the policy interface with its
// registry name.
type ccConsumer struct{ *core.Cache }

func (ccConsumer) Name() string { return "cc" }

// Config returns the machine's (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Err returns the first fatal error the machine hit while servicing the
// workload (an unrecoverable page loss or a propagated device failure), or
// nil. Once Err is non-nil the Space access methods become no-ops: the
// simulated process is dead and the workload's remaining references are not
// executed. Harnesses check Err after the workload returns.
func (m *Machine) Err() error { return m.err }

// fail records the machine's first fatal error.
func (m *Machine) fail(err error) {
	if m.err == nil && err != nil {
		m.err = err
	}
}

// Faults reports the machine-side fault counters (detections, recoveries,
// mount-time recovery results) merged with the injector's counters.
func (m *Machine) Faults() stats.Faults {
	f := m.faults.Stats()
	f.CorruptionsDetected = m.fst.CorruptionsDetected
	f.Recoveries = m.fst.Recoveries
	f.RecoveredSegments = m.fst.RecoveredSegments
	f.TornWritesDiscarded = m.fst.TornWritesDiscarded
	return f
}

// recordRecovery folds a mount-time recovery report into the machine's fault
// counters and keeps it for RecoveryReport.
func (m *Machine) recordRecovery(rep *swap.RecoveryReport) {
	m.recovery = rep
	m.fst.RecoveredSegments += uint64(rep.RecoveredSegments)
	m.fst.TornWritesDiscarded += uint64(rep.TornDiscarded)
}

// Events returns the retained event window in emission order (nil when
// observability is disabled).
func (m *Machine) Events() []obs.Event { return m.bus.Events() }

// Metrics captures the machine's metrics registry in deterministic sorted
// order (nil when observability is disabled).
func (m *Machine) Metrics() *obs.Snapshot { return m.bus.Snapshot() }

// Elapsed reports the virtual time since the machine was created or since
// the last ResetClockBase call.
func (m *Machine) Elapsed() time.Duration { return time.Duration(m.Clock.Now() - m.start) }

// MarkStart makes subsequent Elapsed() calls measure from now; workloads use
// it to exclude their setup phase if desired. Under FreezeStart it is a
// no-op.
func (m *Machine) MarkStart() {
	if m.startFrozen {
		return
	}
	m.start = m.Clock.Now()
}

// FreezeStart pins the Elapsed() origin at the current instant and makes
// later MarkStart calls no-ops. The multiprogramming runner uses it so that
// member workloads' own MarkStart calls cannot reset the shared clock
// origin.
func (m *Machine) FreezeStart() {
	m.start = m.Clock.Now()
	m.startFrozen = true
}

// Drain waits for all queued asynchronous backing-store writes to finish,
// so that end-of-run timings include background cleaning.
//
//cclint:ignore obscoverage -- drain only retires the device's busy timeline; the drained writes were probed when issued
func (m *Machine) Drain() { m.Device.Drain() }

// EvictAll pushes every resident page out of memory, empties the compression
// cache to the backing store, and drops the file cache. It models a freshly
// (re)started process whose address space lives entirely on the backing
// store — the setup for the gold "cold" benchmark.
func (m *Machine) EvictAll() error {
	for {
		more, err := m.VM.ReleaseOldest()
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	if m.CC != nil {
		for {
			more, err := m.CC.ReleaseOldest()
			if err != nil {
				return err
			}
			if !more {
				break
			}
		}
	}
	if err := m.FS.DropCaches(); err != nil {
		return err
	}
	m.Drain()
	return nil
}

// NewSegmentCodec creates a segment whose pages are compressed with a
// specific codec instead of the machine default — §3's requirement that the
// design "allow different compression algorithms to be used for different
// types of data, in order to get the best compression rates and/or
// throughput".
func (m *Machine) NewSegmentCodec(name string, bytes int64, codec string) (*Space, error) {
	c, err := compress.Lookup(codec)
	if err != nil {
		return nil, err
	}
	sp := m.NewSegment(name, bytes)
	m.segCodec[sp.seg.ID] = c
	return sp, nil
}

// codecFor returns the codec for a segment's pages.
func (m *Machine) codecFor(seg int32) compress.Codec {
	if c, ok := m.segCodec[seg]; ok {
		return c
	}
	return m.codec
}

// NewSegment creates a virtual-memory segment of at least `bytes` bytes and
// returns an address space handle for it.
func (m *Machine) NewSegment(name string, bytes int64) *Space {
	if bytes <= 0 {
		// Invariant: a workload asking for a non-positive segment is a
		// programming error in the workload, not a runtime fault.
		panic("machine: segment size must be positive")
	}
	npages := int32((bytes + int64(m.cfg.PageSize) - 1) / int64(m.cfg.PageSize))
	seg := m.VM.NewSegment(name, npages)
	m.segByID[seg.ID] = seg
	if m.cfg.CC.Enabled && m.cfg.CC.MetadataOverhead {
		m.reserveKernelBytes(int(npages) * perPageOverheadBytes)
	}
	return &Space{m: m, seg: seg}
}

// reserveKernelBytes pins whole frames to model kernel metadata overhead.
func (m *Machine) reserveKernelBytes(bytes int) {
	frames := (bytes + m.cfg.PageSize - 1) / m.cfg.PageSize
	for i := 0; i < frames; i++ {
		if _, ok := m.Pool.Alloc(mem.Kernel); !ok {
			// Invariant: kernel metadata is charged at configuration time
			// (machine/segment creation); a machine too small to hold its own
			// page tables is an experiment sizing error, not a runtime fault
			// to degrade from.
			panic("machine: not enough memory for kernel metadata")
		}
	}
}

// allocFrame is the policy-arbitrated frame source shared by the VM fault
// path and the file cache.
func (m *Machine) allocFrame(owner mem.Owner) (mem.FrameID, error) {
	id, err := m.alloc.AllocFrame(owner)
	if err != nil {
		return mem.NoFrame, err
	}
	m.maybeClean()
	return id, nil
}

// writeOne sends a single item to the clustered store through the reusable
// one-item batch buffer, clearing the staged reference afterwards so the
// machine never retains a caller's page buffer.
func (m *Machine) writeOne(it swap.Item) error {
	m.itemBuf[0] = it
	err := m.clustered.WriteCluster(m.itemBuf[:], true)
	m.itemBuf[0] = swap.Item{}
	return err
}

// maybeClean runs the background cleaner: if the stock of immediately
// usable frames (free plus clean-reclaimable) is below the reserve, write
// out the oldest dirty compressed data in clustered batches. The write is
// asynchronous; its cost appears as device busy time that later synchronous
// reads queue behind, exactly how the paper's cleaner thread overlaps with
// computation.
func (m *Machine) maybeClean() {
	if m.CC == nil {
		return
	}
	guard := 8 // bound cleaning work per trigger
	for m.Pool.FreeCount()+m.CC.ReclaimableFrames() < m.cfg.CC.CleanReserve && guard > 0 {
		n, err := m.CC.Clean()
		if err != nil {
			// A failed cleaner flush is not fatal: the batch stays dirty in
			// the cache (Clean marks nothing clean on error) and is retried
			// on a later trigger, so no data is lost — the reserve just
			// stays low for a while. Degrade instead of killing the run.
			return
		}
		if n == 0 {
			return
		}
		guard--
	}
}

// Stats assembles the full statistics block: nested per-subsystem views
// (VM, Comp, Disk, CC, Swap, Faults) plus — when the machine carries an
// observability bus — a deterministic snapshot of its metrics registry in
// Metrics.
func (m *Machine) Stats() stats.Run {
	r := stats.Run{
		VM:     m.VM.Stats(),
		Comp:   m.comp,
		Disk:   m.Device.Stats(),
		Faults: m.Faults(),
		Time:   m.Elapsed(),
	}
	if m.CC != nil {
		r.CC = m.CC.Stats()
	}
	if m.clustered != nil {
		r.Swap = m.clustered.Stats()
	} else if m.direct != nil {
		r.Swap = m.direct.Stats()
	}
	if m.bus != nil {
		// Gauges are levels, sampled at snapshot time rather than maintained
		// on the hot path.
		m.bus.Gauge("vm.resident_pages").Set(int64(m.VM.ResidentPages()))
		m.bus.Gauge("pool.free_frames").Set(int64(m.Pool.FreeCount()))
		if m.CC != nil {
			m.bus.Gauge("cc.frames").Set(int64(m.CC.FrameCount()))
			m.bus.Gauge("cc.live_bytes").Set(int64(m.CC.LiveBytes()))
			m.bus.Gauge("cc.dirty_bytes").Set(int64(m.CC.DirtyBytes()))
		}
		r.Metrics = m.bus.Snapshot()
	}
	return r
}

// ---------------------------------------------------------------------------
// vm.Pager implementation: the paging policy of §4.1.

// PageOut handles a page leaving uncompressed memory. Write failures that
// leave a valid copy somewhere (a dirty cache entry, the old backing-store
// extent) degrade silently and are retried later; a failure that loses the
// only copy returns fault.UnrecoverableError.
func (m *Machine) PageOut(p *vm.Page, data []byte) error {
	if m.CC == nil {
		// Baseline system: dirty pages go to the direct swap file; clean
		// pages with a valid backing copy are simply discarded.
		if p.Dirty {
			if err := m.direct.Write(p.Key, data); err != nil {
				// The frame is gone and the store refused the only copy.
				return &fault.UnrecoverableError{
					Page:   p.Key.String(),
					Reason: "backing-store write failed for the only copy",
					Err:    err,
				}
			}
			p.Dirty = false
			p.SwapValid = true
		}
		p.State = vm.Swapped
		return nil
	}

	// Fast path: the page was faulted out of the cache and never modified,
	// so its compressed copy is still valid — re-entering the cache is just
	// a page-table update, no compression (§4.1's retained compressed
	// copies; this is what keeps read-mostly working sets cheap).
	if !p.Dirty && m.CC.Has(p.Key) {
		p.State = vm.Compressed
		return nil
	}

	// Compression cache path: compress the page and decide its fate.
	m.Clock.Advance(m.cfg.Cost.CompressCost(len(data)))
	m.compHist.Observe(m.cfg.Cost.CompressCost(len(data)))
	m.comp.Compressions++
	m.comp.BytesIn += uint64(len(data))
	// Compress into the machine scratch buffer: Insert copies into a
	// cache-owned slab and WriteCluster serializes before returning, so the
	// buffer is free again by the time this call ends.
	cdata := m.codecFor(p.Key.Seg).Compress(m.compBuf[:0], data)
	m.compBuf = cdata[:0]
	m.comp.BytesOut += uint64(len(cdata))

	if len(cdata) <= m.cfg.keepThreshold() {
		m.comp.CompressibleIn += uint64(len(data))
		m.comp.CompressibleOut += uint64(len(cdata))
		ok, insErr := m.CC.Insert(p.Key, cdata, p.Dirty)
		if ok {
			p.State = vm.Compressed
			p.Dirty = false // dirtiness now tracked by the cache entry
			m.maybeClean()
			return nil
		}
		// The cache could not take the page: no memory, or the flush that
		// would have made room failed (insErr — the flushed batch stays
		// dirty in the cache and is retried later, so insErr alone loses
		// nothing). Offer the compressed page to the fleet first — remote
		// memory is faster than the local backing store — then fall back to
		// a direct backing-store write, still benefiting from the reduced
		// transfer size.
		if p.Dirty || !p.SwapValid {
			if m.remote != nil && m.remote.Offer(p.Key, cdata, true, core.Checksum(cdata)) {
				p.SwapValid = true
			} else {
				err := m.writeOne(swap.Item{
					Key: p.Key, Data: cdata, Compressed: true, Sum: core.Checksum(cdata),
				})
				if err != nil {
					return &fault.UnrecoverableError{
						Page:   p.Key.String(),
						Reason: "backing-store write failed for the only copy",
						Err:    errors.Join(insErr, err),
					}
				}
				p.SwapValid = true
			}
		}
		p.Dirty = false
		p.State = vm.Swapped
		return nil
	}

	// Below the 4:3 threshold: the compression effort was wasted (§5.2) and
	// the page travels uncompressed.
	m.comp.Incompressible++
	if p.Dirty || !p.SwapValid {
		if m.remote != nil && m.remote.Offer(p.Key, data, false, core.Checksum(data)) {
			p.SwapValid = true
		} else {
			// The page buffer goes straight to the store: WriteCluster copies
			// into its own cluster buffer before returning, so no defensive
			// copy is needed.
			err := m.writeOne(swap.Item{
				Key: p.Key, Data: data, Compressed: false, Sum: core.Checksum(data),
			})
			if err != nil {
				return &fault.UnrecoverableError{
					Page:   p.Key.String(),
					Reason: "backing-store write failed for the only copy",
					Err:    err,
				}
			}
			p.SwapValid = true
		}
	}
	p.Dirty = false
	p.State = vm.Swapped
	return nil
}

// PageIn services a fault for a page whose contents are compressed in
// memory or on the backing store. A corrupt compression-cache fragment is
// recovered from the backing store when a clean copy exists there (the
// entry is dropped, the swap read proceeds at its usual virtual-time cost,
// and the recovery is counted); a corrupt or unreadable fragment with no
// lower-level copy returns fault.UnrecoverableError.
func (m *Machine) PageIn(p *vm.Page, data []byte) (vm.Source, error) {
	if m.CC != nil {
		if cdata, sum, entryDirty, ok := m.CC.Fault(p.Key); ok {
			m.faults.CorruptCache(cdata)
			err := m.decompressInto(data, cdata, sum, p.Key)
			if err == nil {
				// The entry is retained and backs the resident copy, so the
				// page itself is clean; SwapValid tracks whether the entry
				// has been persisted. Modifying the page invalidates the
				// entry (see Dirtied).
				p.Dirty = false
				p.SwapValid = !entryDirty
				return vm.SrcCC, nil
			}
			// The in-memory fragment is corrupt. Drop the entry; if the
			// backing store (or the fleet) has a clean copy of the same
			// contents, recover from it below at the usual swap-in cost.
			m.CC.Drop(p.Key)
			hasCopy := m.clustered.Has(p.Key) || (m.remote != nil && m.remote.Has(p.Key))
			if entryDirty || !hasCopy {
				return 0, &fault.UnrecoverableError{
					Page:   p.Key.String(),
					Reason: "corrupt cache entry with no backing copy",
					Err:    err,
				}
			}
			m.fst.Recoveries++
			if m.bus.Enabled(obs.ClassRecovery) {
				m.bus.Emit(obs.Event{
					T: m.Clock.Now(), Class: obs.ClassRecovery, Sub: obs.SubMachine,
					Seg: p.Key.Seg, Page: p.Key.Page,
				})
			}
			// Fall through to the backing-store read.
		}
	}
	if m.CC == nil {
		ok, err := m.direct.Read(p.Key, data)
		if err != nil {
			return 0, &fault.UnrecoverableError{
				Page:   p.Key.String(),
				Reason: "backing-store read failed",
				Err:    err,
			}
		}
		if !ok {
			return 0, &fault.UnrecoverableError{
				Page:   p.Key.String(),
				Reason: fmt.Sprintf("page in state %v has no backing copy", p.State),
			}
		}
		m.Clock.Advance(m.cfg.Cost.PageCopy)
		p.Dirty = false
		p.SwapValid = true
		return vm.SrcSwap, nil
	}

	// Fleet memory first: a remotely placed page comes back over the network
	// far faster than a backing-store extent. Dirtied invalidates the remote
	// copy, so whatever the fleet holds is current.
	if m.remote != nil && m.remote.Has(p.Key) {
		payload, compressed, sum, _, ferr := m.remote.Fetch(p.Key)
		if ferr != nil {
			return 0, &fault.UnrecoverableError{
				Page:   p.Key.String(),
				Reason: "remote fetch failed",
				Err:    ferr,
			}
		}
		if compressed {
			if derr := m.decompressInto(data, payload, sum, p.Key); derr != nil {
				return 0, &fault.UnrecoverableError{
					Page:   p.Key.String(),
					Reason: "corrupt remote fragment",
					Err:    derr,
				}
			}
		} else {
			m.Clock.Advance(m.cfg.Cost.PageCopy)
			if core.Checksum(payload) != sum {
				m.fst.CorruptionsDetected++
				return 0, &fault.UnrecoverableError{
					Page:   p.Key.String(),
					Reason: "corrupt remote page",
					Err:    &fault.CorruptionError{Page: p.Key.String(), Reason: "checksum mismatch on remote page"},
				}
			}
			copy(data, payload)
		}
		p.Dirty = false
		p.SwapValid = true
		return vm.SrcRemote, nil
	}

	payload, sum, compressed, neighbors, ok, err := m.clustered.Read(p.Key)
	if !ok {
		return 0, &fault.UnrecoverableError{
			Page:   p.Key.String(),
			Reason: fmt.Sprintf("page in state %v has no backing copy", p.State),
		}
	}
	if err != nil {
		return 0, &fault.UnrecoverableError{
			Page:   p.Key.String(),
			Reason: "backing-store read failed",
			Err:    err,
		}
	}
	if compressed {
		m.faults.CorruptSwap(payload)
		if derr := m.decompressInto(data, payload, sum, p.Key); derr != nil {
			// The backing store held the only remaining copy.
			return 0, &fault.UnrecoverableError{
				Page:   p.Key.String(),
				Reason: "corrupt backing-store fragment",
				Err:    derr,
			}
		}
	} else {
		m.Clock.Advance(m.cfg.Cost.PageCopy)
		if core.Checksum(payload) != sum {
			m.fst.CorruptionsDetected++
			return 0, &fault.UnrecoverableError{
				Page:   p.Key.String(),
				Reason: "corrupt backing-store page",
				Err:    &fault.CorruptionError{Page: p.Key.String(), Reason: "checksum mismatch on raw page"},
			}
		}
		copy(data, payload)
	}
	p.Dirty = false
	p.SwapValid = true

	if !m.cfg.CC.DisablePrefetch {
		m.insertNeighbors(neighbors)
	}
	return vm.SrcSwap, nil
}

// insertNeighbors caches pages that came along for free with a clustered
// read ("multiple pages can be obtained with a single read from the backing
// store", §5.1). Only compressed, currently swapped-out pages are inserted,
// and only when the cache can take them without stealing memory. A neighbor
// whose checksum does not verify is skipped — the prefetch is an
// opportunistic copy; the extent on the backing store stays authoritative.
func (m *Machine) insertNeighbors(neighbors []swap.Neighbor) {
	for _, n := range neighbors {
		if !n.Compressed {
			continue
		}
		seg := m.segByID[n.Key.Seg]
		if seg == nil {
			continue
		}
		p := seg.Page(n.Key.Page)
		if p.State != vm.Swapped || m.CC.Has(n.Key) {
			continue
		}
		// Stage the neighbor in the machine scratch buffer so fault injection
		// corrupts the staged copy, not the clustered read buffer; Insert
		// below copies again into a cache-owned slab.
		m.nbrBuf = append(m.nbrBuf[:0], n.Data...)
		cdata := m.nbrBuf
		m.faults.CorruptSwap(cdata)
		if core.Checksum(cdata) != n.Sum {
			m.fst.CorruptionsDetected++
			continue
		}
		m.Clock.Advance(m.cfg.Cost.PageCopy / 4) // short memcpy of compressed bytes
		ok, err := m.CC.Insert(n.Key, cdata, false)
		if err != nil {
			continue // flush failure: skip the opportunistic insert
		}
		if !ok {
			// No free frame: this is how the paper's swap reads behave —
			// they land in the compression cache, displacing the oldest
			// memory by the usual age comparison. Make room and retry once.
			freed, ferr := m.alloc.FreeOne()
			if ferr != nil || !freed {
				continue
			}
			if ok, err = m.CC.Insert(n.Key, cdata, false); err != nil || !ok {
				continue
			}
		}
		p.State = vm.Compressed
	}
}

// Dirtied invalidates stale lower-level copies when a clean resident page is
// first modified: the retained compression-cache entry and the backing-store
// copy both go stale at that moment.
func (m *Machine) Dirtied(p *vm.Page) {
	if m.CC != nil {
		m.CC.Drop(p.Key)
	}
	if m.clustered != nil {
		m.clustered.Invalidate(p.Key)
	}
	if m.direct != nil {
		m.direct.Invalidate(p.Key)
	}
	if m.remote != nil {
		m.remote.Invalidate(p.Key)
	}
}

// flushEntries is the cleaner's flush hook: persist dirty cache entries with
// one clustered asynchronous write. On error the cache keeps the batch
// dirty, so nothing is lost — the flush is retried by a later clean.
func (m *Machine) flushEntries(items []swap.Item) error {
	return m.clustered.WriteCluster(items, true)
}

// ---------------------------------------------------------------------------
// fs.CompressedBlockCache implementation: §6's compressed file cache.
// File blocks share the compression cache with VM pages under synthetic
// negative segment IDs, so one pool of compressed memory serves both, with
// the usual aging and reclamation.

// fsBlockCache adapts the compression cache to the file system.
type fsBlockCache struct{ m *Machine }

// fsBlockKey maps a (file, block) pair into the page-key namespace; file
// cache entries use negative segment IDs, which no VM segment ever has.
func fsBlockKey(fileID int32, block int64) swap.PageKey {
	return swap.PageKey{Seg: -1 - fileID, Page: int32(block)}
}

// Store implements fs.CompressedBlockCache.
func (f fsBlockCache) Store(fileID int32, block int64, data []byte) (bool, error) {
	m := f.m
	key := fsBlockKey(fileID, block)
	if m.CC.Has(key) {
		return true, nil // still-valid compressed copy from an earlier eviction
	}
	m.Clock.Advance(m.cfg.Cost.CompressCost(len(data)))
	m.compHist.Observe(m.cfg.Cost.CompressCost(len(data)))
	m.comp.Compressions++
	m.comp.BytesIn += uint64(len(data))
	cdata := m.codec.Compress(m.compBuf[:0], data)
	m.compBuf = cdata[:0]
	m.comp.BytesOut += uint64(len(cdata))
	if len(cdata) > m.cfg.keepThreshold() {
		m.comp.Incompressible++
		return false, nil
	}
	m.comp.CompressibleIn += uint64(len(data))
	m.comp.CompressibleOut += uint64(len(cdata))
	// File blocks are always clean here (written back before Store), so the
	// entry can be dropped at any time without I/O.
	return m.CC.Insert(key, cdata, false)
}

// Load implements fs.CompressedBlockCache. A corrupt cached block is
// dropped and reported as a miss, not an error: the block is durable on the
// device, so the file system falls back to a device read.
func (f fsBlockCache) Load(fileID int32, block int64, data []byte) (bool, error) {
	m := f.m
	key := fsBlockKey(fileID, block)
	cdata, sum, _, ok := m.CC.Fault(key)
	if !ok {
		return false, nil
	}
	m.faults.CorruptCache(cdata)
	if err := m.decompressInto(data, cdata, sum, key); err != nil {
		m.CC.Drop(key)
		return false, nil
	}
	return true, nil
}

// Invalidate implements fs.CompressedBlockCache.
func (f fsBlockCache) Invalidate(fileID int32, block int64) {
	f.m.CC.Drop(fsBlockKey(fileID, block))
}

// entryDropped is called when frame reclamation discards a live clean entry.
// If the page lived in the cache it now lives only on the backing store; if
// it is resident (the entry was a retained copy of an unmodified page), the
// backing store still holds the same contents.
func (m *Machine) entryDropped(key swap.PageKey) {
	seg := m.segByID[key.Seg]
	if seg == nil {
		return
	}
	p := seg.Page(key.Page)
	switch p.State {
	case vm.Compressed:
		p.State = vm.Swapped
		p.SwapValid = true
		p.Dirty = false
	case vm.Resident:
		// Reclaim only drops clean entries, so the backing store has the
		// contents.
		p.SwapValid = true
	}
}

// decompressInto verifies and decompresses cdata into the page buffer data,
// charging the cost model. sum is the fragment's checksum computed when the
// data entered the cache; verification runs before the codec so a flipped
// bit can never decompress to a silently wrong page. A checksum mismatch,
// codec rejection, or length mismatch returns a *fault.CorruptionError;
// callers decide whether a fallback copy exists.
func (m *Machine) decompressInto(data, cdata []byte, sum uint32, key swap.PageKey) error {
	m.Clock.Advance(m.cfg.Cost.DecompressCost(len(data)))
	m.decompHist.Observe(m.cfg.Cost.DecompressCost(len(data)))
	m.comp.Decompressions++
	if core.Checksum(cdata) != sum {
		m.fst.CorruptionsDetected++
		return &fault.CorruptionError{Page: key.String(), Reason: "checksum mismatch"}
	}
	out, err := m.codecFor(key.Seg).Decompress(data[:0], cdata)
	if err != nil {
		m.fst.CorruptionsDetected++
		return &fault.CorruptionError{Page: key.String(), Reason: "codec rejected fragment", Err: err}
	}
	if len(out) != len(data) {
		m.fst.CorruptionsDetected++
		return &fault.CorruptionError{
			Page:   key.String(),
			Reason: fmt.Sprintf("decompressed to %d bytes, want %d", len(out), len(data)),
		}
	}
	// Decompress appends to data[:0]; a codec that transiently grows past
	// cap(data) leaves the result in a new backing array, and without this
	// copy the page would silently keep its stale contents.
	if len(out) > 0 && &out[0] != &data[0] {
		copy(data, out)
	}
	return nil
}

// CheckInvariants validates cross-subsystem invariants; tests call it after
// stressing a machine.
func (m *Machine) CheckInvariants() error {
	if err := m.Pool.CheckConservation(); err != nil {
		return err
	}
	if err := m.VM.CheckLRU(); err != nil {
		return err
	}
	if m.CC != nil {
		if err := m.CC.CheckConsistency(); err != nil {
			return err
		}
	}
	if m.clustered != nil {
		if err := m.clustered.CheckConsistency(); err != nil {
			return err
		}
	}
	// Every page's state must agree with the subsystem actually holding it.
	for _, seg := range m.VM.Segments() {
		for i := int32(0); i < seg.NPages; i++ {
			p := seg.Page(i)
			switch p.State {
			case vm.Compressed:
				if m.CC == nil || !m.CC.Has(p.Key) {
					return fmt.Errorf("machine: page %v marked compressed but absent from cache", p.Key)
				}
			case vm.Swapped:
				hasBacking := (m.direct != nil && m.direct.Has(p.Key)) ||
					(m.clustered != nil && m.clustered.Has(p.Key)) ||
					(m.remote != nil && m.remote.Has(p.Key))
				if !hasBacking {
					return fmt.Errorf("machine: page %v marked swapped but absent from backing store", p.Key)
				}
			case vm.Resident:
				if p.Frame == mem.NoFrame {
					return fmt.Errorf("machine: resident page %v has no frame", p.Key)
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Space: the workload-facing address-space handle.

// Space is a byte-addressable view of one segment. Workloads allocate their
// data structures inside spaces so every access goes through the simulated
// VM system.
//
// The access methods carry no error returns; instead the machine is sticky:
// the first fatal paging error (see Machine.Err) kills the simulated
// process, every later access is a no-op, and the harness reads the cause
// from Err after the workload returns. This mirrors how a real machine
// check behaves — the program does not get per-load error codes.
type Space struct {
	m   *Machine
	seg *vm.Segment
}

// Machine returns the owning machine.
func (s *Space) Machine() *Machine { return s.m }

// Size reports the segment size in bytes.
func (s *Space) Size() int64 { return s.seg.Size(s.m.cfg.PageSize) }

// Pages reports the segment size in pages.
func (s *Space) Pages() int32 { return s.seg.NPages }

// Touch references one word on page n (reading or writing), the primitive
// the thrasher workload uses.
func (s *Space) Touch(page int32, write bool) {
	if s.m.err != nil {
		return
	}
	if _, err := s.m.VM.Touch(s.seg, page, write); err != nil {
		s.m.fail(err)
	}
}

// Pin faults page n in (if needed) and exempts it from eviction — the §3
// advisory for applications that know LRU will behave poorly.
func (s *Space) Pin(page int32) {
	if s.m.err != nil {
		return
	}
	if _, err := s.m.VM.Pin(s.seg, page); err != nil {
		s.m.fail(err)
	}
}

// Unpin makes page n evictable again.
func (s *Space) Unpin(page int32) { s.m.VM.Unpin(s.seg, page) }

// Read copies from the space into buf.
func (s *Space) Read(off int64, buf []byte) {
	if s.m.err != nil {
		return
	}
	if err := s.m.VM.Read(s.seg, off, buf); err != nil {
		s.m.fail(err)
	}
}

// Write copies data into the space.
func (s *Space) Write(off int64, data []byte) {
	if s.m.err != nil {
		return
	}
	if err := s.m.VM.Write(s.seg, off, data); err != nil {
		s.m.fail(err)
	}
}

// ReadWord reads the 8-byte word at off. After a fatal machine error it
// returns 0 (the dead process observes nothing).
func (s *Space) ReadWord(off int64) uint64 {
	if s.m.err != nil {
		return 0
	}
	v, err := s.m.VM.ReadWord(s.seg, off)
	if err != nil {
		s.m.fail(err)
		return 0
	}
	return v
}

// WriteWord writes the 8-byte word at off.
func (s *Space) WriteWord(off int64, val uint64) {
	if s.m.err != nil {
		return
	}
	if err := s.m.VM.WriteWord(s.seg, off, val); err != nil {
		s.m.fail(err)
	}
}
