// Package fs implements the simulated machine's block file system.
//
// The paper's backing store is a swap file in the Sprite file system, and the
// central complication of its §4.3 is that the file system "enforces
// transfers in multiples of a whole file system block": writing part of a
// 4-KByte block costs a 4-KByte read plus a 4-KByte write, and reading 2 KB
// within a block reads all 4 KB. This package reproduces that interface:
//
//   - Cached reads and writes go through an LRU buffer cache whose frames
//     come from the shared physical pool, so the file cache competes with
//     the VM system and the compression cache for memory (§4.2).
//   - Raw (uncached) I/O, used by the swap layers, transfers whole blocks.
//     The AllowPartialIO option relaxes this to sector granularity; it is
//     the "better interface to the backing store" ablation from §6.
//
// File contents are held authoritatively in an in-memory "platter" so the
// simulation can verify end-to-end page integrity; the buffer cache and the
// disk model contribute memory pressure and virtual-time costs.
package fs

import (
	"errors"
	"fmt"
	"sort"

	"compcache/internal/fault"
	"compcache/internal/mem"
	"compcache/internal/sim"
	"compcache/internal/stats"
)

// Device is the backing hardware the file system runs on. *disk.Disk is the
// usual implementation; *netdev.Net implements it for the paper's diskless
// mobile environment (paging over a network to a page server).
type Device interface {
	// Read performs a synchronous transfer from the device, advancing the
	// caller's clock to completion. The clock is charged even when the
	// transfer fails.
	Read(addr int64, n int) error
	// Write performs a synchronous transfer to the device.
	Write(addr int64, n int) error
	// WriteAsync queues a write without blocking; it returns the completion
	// instant. A failure of the queued write is reported immediately.
	WriteAsync(addr int64, n int) (sim.Time, error)
	// Drain advances the clock until queued operations complete.
	Drain()
	// Granularity is the device's addressing granularity in bytes (a disk
	// sector, a network packet payload).
	Granularity() int
	// Stats reports transfer counters.
	Stats() stats.Disk
}

// fileExtent is the disk address space reserved per file. Files are sparse;
// the extent only fixes the mapping from file offsets to disk addresses so
// that sequential file blocks are sequential on disk.
const fileExtent = 1 << 30

// Options configures a file system.
type Options struct {
	// BlockSize is the file-system block size; the paper's Sprite systems
	// use 4-KByte blocks, equal to the DECstation page size.
	BlockSize int

	// AllowPartialIO permits raw transfers at sector granularity instead of
	// whole blocks (ablation of the paper's §4.3 constraint).
	AllowPartialIO bool

	// CacheCapacity caps the number of buffer-cache frames (0 = no cap
	// beyond pool pressure).
	CacheCapacity int
}

// CompressedBlockCache holds evicted file-cache blocks in compressed form,
// the §6 extension ("the system could keep part or all of the file buffer
// cache in compressed format in order to improve the cache hit rate"). The
// machine package implements it on top of the compression cache.
type CompressedBlockCache interface {
	// Store offers an evicted block's (durable) contents; the cache may
	// decline (incompressible, no memory). The error reports a failure of
	// work the store triggered (e.g. flushing entries to make room).
	Store(fileID int32, block int64, data []byte) (bool, error)
	// Load fetches a cached block into data, reporting whether it hit. A
	// corrupt cached copy is reported as a miss, not an error: the block is
	// durable on the device, so the caller falls back to a device read.
	Load(fileID int32, block int64, data []byte) (bool, error)
	// Invalidate drops any cached copy (the block was modified).
	Invalidate(fileID int32, block int64)
}

// FS is a simulated block file system on one device.
type FS struct {
	opts  Options              //cclint:ignore snapcover -- config: fixed at construction; the restore target is built with the same options
	disk  Device               //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	clock *sim.Clock           //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	pool  *mem.Pool            //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	ccb   CompressedBlockCache //cclint:ignore snapcover -- wiring: the optional block cache snapshots itself separately
	//cclint:ignore snapcover -- scratch: eviction copy buffer, dead between operations
	scratch []byte // eviction copy buffer for the block cache
	nextID  int32

	files    map[string]*File
	nextBase int64

	// frameSource obtains a frame for the buffer cache, reclaiming one from
	// some consumer if the pool is empty. The machine wires this to the
	// replacement policy after construction.
	frameSource func(mem.Owner) (mem.FrameID, error)

	cache   map[blockKey]*cacheBlock
	lruHead *cacheBlock // least recently used
	//cclint:ignore snapcover -- derived: tail of the LRU list, re-linked as restore replays insertions
	lruTail   *cacheBlock // most recently used
	hits      uint64
	misses    uint64
	ccHits    uint64 // misses served by the compressed block cache
	writeHits uint64
}

type blockKey struct {
	file  *File
	block int64
}

type cacheBlock struct {
	key        blockKey
	frame      mem.FrameID
	dirty      bool
	lastUse    sim.Time
	prev, next *cacheBlock
}

// File is a simulated file. Its blocks map to a contiguous disk extent, so
// block n of the file lives at disk address base + n*BlockSize.
type File struct {
	fs      *FS
	name    string
	id      int32 // identity for the compressed block cache; changes on truncate
	base    int64
	size    int64
	platter map[int64][]byte // authoritative block contents
}

// New creates a file system on device d, drawing cache frames from pool.
func New(opts Options, d Device, clock *sim.Clock, pool *mem.Pool) (*FS, error) {
	if opts.BlockSize <= 0 {
		return nil, fmt.Errorf("fs: BlockSize must be positive, got %d", opts.BlockSize)
	}
	if opts.BlockSize%d.Granularity() != 0 {
		return nil, fmt.Errorf("fs: BlockSize %d not a multiple of device granularity %d",
			opts.BlockSize, d.Granularity())
	}
	f := &FS{
		opts:  opts,
		disk:  d,
		clock: clock,
		pool:  pool,
		files: make(map[string]*File),
		cache: make(map[blockKey]*cacheBlock),
	}
	f.frameSource = func(o mem.Owner) (mem.FrameID, error) {
		id, ok := pool.Alloc(o)
		if !ok {
			return 0, fmt.Errorf("fs: no frame source wired and pool exhausted")
		}
		return id, nil
	}
	return f, nil
}

// SetFrameSource installs the policy-backed frame allocator.
func (fs *FS) SetFrameSource(f func(mem.Owner) (mem.FrameID, error)) { fs.frameSource = f }

// SetCompressedBlockCache installs the §6 compressed block cache.
func (fs *FS) SetCompressedBlockCache(c CompressedBlockCache) { fs.ccb = c }

// BlockSize reports the file-system block size.
func (fs *FS) BlockSize() int { return fs.opts.BlockSize }

// AllowPartialIO reports whether raw I/O may be sub-block.
func (fs *FS) AllowPartialIO() bool { return fs.opts.AllowPartialIO }

// CacheStats reports buffer-cache hits, misses and write hits.
func (fs *FS) CacheStats() (hits, misses uint64) { return fs.hits, fs.misses }

// CompressedCacheHits reports how many buffer-cache misses were served by
// the compressed block cache instead of the device.
func (fs *FS) CompressedCacheHits() uint64 { return fs.ccHits }

// CacheLen reports the number of cached blocks.
func (fs *FS) CacheLen() int { return len(fs.cache) }

// Create creates (or truncates) a file.
func (fs *FS) Create(name string) *File {
	if f, ok := fs.files[name]; ok {
		f.platter = make(map[int64][]byte)
		f.size = 0
		fs.dropFileBlocks(f)
		// A fresh identity orphans any compressed-cache entries for the old
		// contents.
		f.id = fs.nextID
		fs.nextID++
		return f
	}
	f := &File{ //cclint:ignore hotalloc -- file construction; paging reaches Create only on a swap segment's first touch
		fs:      fs,
		name:    name,
		id:      fs.nextID,
		base:    fs.nextBase,
		platter: make(map[int64][]byte), //cclint:ignore hotalloc -- file construction; paging reaches Create only on a swap segment's first touch
	}
	fs.nextID++
	fs.nextBase += fileExtent
	fs.files[name] = f
	return f
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: file %q does not exist", name)
	}
	return f, nil
}

// Name reports the file's name.
func (f *File) Name() string { return f.name }

// Size reports the file's logical size (highest byte written + 1).
func (f *File) Size() int64 { return f.size }

// ---------------------------------------------------------------------------
// Cached I/O (workload file access)

// ReadAt reads len(p) bytes at offset off through the buffer cache. Reads
// beyond the written extent return zero bytes, matching sparse-file
// semantics.
func (f *File) ReadAt(p []byte, off int64) error {
	if off < 0 {
		// Invariant: callers derive offsets from non-negative loop indices;
		// a negative offset is a programming error, not a runtime fault.
		panic("fs: negative offset")
	}
	bs := int64(f.fs.opts.BlockSize)
	for len(p) > 0 {
		block := off / bs
		inOff := int(off % bs)
		n := int(bs) - inOff
		if n > len(p) {
			n = len(p)
		}
		cb, err := f.fs.getBlock(f, block, true)
		if err != nil {
			return err
		}
		copy(p[:n], f.fs.pool.Bytes(cb.frame)[inOff:inOff+n])
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt writes len(p) bytes at offset off through the buffer cache. A
// write that only partially covers an uncached block pays the §4.3
// read-modify-write: the whole block is read from disk first.
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 {
		// Invariant: callers derive offsets from non-negative loop indices;
		// a negative offset is a programming error, not a runtime fault.
		panic("fs: negative offset")
	}
	bs := int64(f.fs.opts.BlockSize)
	for len(p) > 0 {
		block := off / bs
		inOff := int(off % bs)
		n := int(bs) - inOff
		if n > len(p) {
			n = len(p)
		}
		full := inOff == 0 && n == int(bs)
		cb, err := f.fs.getBlock(f, block, !full)
		if err != nil {
			return err
		}
		copy(f.fs.pool.Bytes(cb.frame)[inOff:inOff+n], p[:n])
		cb.dirty = true
		if f.fs.ccb != nil {
			f.fs.ccb.Invalidate(f.id, block)
		}
		// Keep the platter authoritative immediately; the dirty flag defers
		// only the disk write's cost, not the contents.
		copy(f.platterBlock(block)[inOff:inOff+n], p[:n])
		if end := off + int64(n); end > f.size {
			f.size = end
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// Sync writes all dirty cached blocks of the file system to disk, in disk
// address order (the cheapest schedule). On a device error the remaining
// blocks stay dirty and the error is returned.
func (fs *FS) Sync() error {
	var dirty []*cacheBlock
	for _, cb := range fs.cache {
		if cb.dirty {
			dirty = append(dirty, cb)
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		return dirty[i].key.file.addr(dirty[i].key.block) < dirty[j].key.file.addr(dirty[j].key.block)
	})
	for _, cb := range dirty {
		if err := fs.disk.Write(cb.key.file.addr(cb.key.block), fs.opts.BlockSize); err != nil {
			return err
		}
		cb.dirty = false
	}
	return nil
}

// Name identifies the buffer cache in the replacement policy ("fs").
func (fs *FS) Name() string { return "fs" }

// OldestAge reports the last-use instant of the LRU cached block. ok is
// false when the cache is empty. This makes the buffer cache a consumer in
// the three-way memory trade.
func (fs *FS) OldestAge() (sim.Time, bool) {
	if fs.lruHead == nil {
		return 0, false
	}
	return fs.lruHead.lastUse, true
}

// ReleaseOldest evicts the LRU cached block, writing it back first if dirty,
// and returns its frame to the pool. It reports false when the cache is
// empty.
func (fs *FS) ReleaseOldest() (bool, error) {
	cb := fs.lruHead
	if cb == nil {
		return false, nil
	}
	return true, fs.evict(cb)
}

// DropCaches evicts every cached block (writing back dirty ones); used by
// benchmarks to start runs cold.
func (fs *FS) DropCaches() error {
	if err := fs.Sync(); err != nil {
		return err
	}
	for fs.lruHead != nil {
		if err := fs.evict(fs.lruHead); err != nil {
			return err
		}
	}
	return nil
}

func (fs *FS) evict(cb *cacheBlock) error {
	if cb.dirty {
		// The platter already holds the authoritative contents, so a failed
		// writeback loses no simulated data; the eviction completes and the
		// device error propagates for the caller to account.
		err := fs.disk.Write(cb.key.file.addr(cb.key.block), fs.opts.BlockSize)
		cb.dirty = false
		if err != nil {
			fs.lruRemove(cb)
			delete(fs.cache, cb.key)
			fs.pool.Release(cb.frame)
			return err
		}
	}
	fs.lruRemove(cb)
	delete(fs.cache, cb.key)
	if fs.ccb == nil {
		fs.pool.Release(cb.frame)
		return nil
	}
	// The block is durable on the device now; keep a compressed copy in
	// memory so a re-read can skip the device (§6). Release the frame first
	// so the compressed cache can absorb it — the same ordering the VM
	// eviction path uses.
	if fs.scratch == nil {
		fs.scratch = make([]byte, fs.opts.BlockSize)
	}
	copy(fs.scratch, fs.pool.Bytes(cb.frame))
	fs.pool.Release(cb.frame)
	_, err := fs.ccb.Store(cb.key.file.id, cb.key.block, fs.scratch)
	return err
}

func (fs *FS) dropFileBlocks(f *File) {
	for key, cb := range fs.cache {
		if key.file == f {
			fs.lruRemove(cb)
			delete(fs.cache, key)
			fs.pool.Release(cb.frame)
		}
	}
}

// getBlock returns the cache entry for (f, block), faulting it in from disk
// when fill is true (a full-block overwrite skips the disk read). On a
// device error the frame is returned to the pool and no cache entry is left
// behind.
func (fs *FS) getBlock(f *File, block int64, fill bool) (*cacheBlock, error) {
	key := blockKey{f, block}
	if cb, ok := fs.cache[key]; ok {
		fs.hits++
		fs.lruTouch(cb)
		return cb, nil
	}
	fs.misses++
	if fs.opts.CacheCapacity > 0 && len(fs.cache) >= fs.opts.CacheCapacity {
		if _, err := fs.ReleaseOldest(); err != nil {
			return nil, err
		}
	}
	frame, err := fs.frameSource(mem.FS)
	if err != nil {
		return nil, err
	}
	cb := &cacheBlock{key: key, frame: frame}
	if fill {
		hit := false
		if fs.ccb != nil {
			hit, err = fs.ccb.Load(f.id, block, fs.pool.Bytes(frame))
			if err != nil {
				fs.pool.Release(frame)
				return nil, err
			}
		}
		if hit {
			fs.ccHits++
		} else {
			if err := fs.disk.Read(f.addr(block), fs.opts.BlockSize); err != nil {
				fs.pool.Release(frame)
				return nil, err
			}
			copy(fs.pool.Bytes(frame), f.platterBlock(block))
		}
	}
	fs.cache[key] = cb
	fs.lruAppend(cb)
	return cb, nil
}

// ---------------------------------------------------------------------------
// Raw I/O (swap layers; bypasses the buffer cache)

// checkRaw validates raw transfer geometry against the whole-block rule.
func (fs *FS) checkRaw(off int64, n int) {
	gran := int64(fs.opts.BlockSize)
	if fs.opts.AllowPartialIO {
		gran = int64(fs.disk.Granularity())
	}
	if off%gran != 0 || int64(n)%gran != 0 {
		// Invariant: the swap layers size every raw transfer from BlockSize
		// (or sector size under AllowPartialIO) at construction time, so a
		// misaligned transfer is a programming error in a swap layer, not a
		// condition that can arise from workload data or injected faults.
		panic(fmt.Sprintf("fs: raw I/O of %d bytes at %d violates %d-byte transfer granularity",
			n, off, gran))
	}
}

// RawRead reads n bytes at off directly from disk into p (len(p) >= n),
// bypassing the cache. Geometry must respect the transfer granularity. On a
// device error p is left unfilled.
func (f *File) RawRead(p []byte, off int64, n int) error {
	f.fs.checkRaw(off, n)
	if err := f.fs.disk.Read(f.base+off, n); err != nil {
		return err
	}
	f.copyOut(p, off, n)
	return nil
}

// RawWrite synchronously writes n bytes from p at off, bypassing the cache.
func (f *File) RawWrite(p []byte, off int64, n int) error {
	f.fs.checkRaw(off, n)
	if err := f.fs.disk.Write(f.base+off, n); err != nil {
		f.applyTorn(p, off, err)
		return err
	}
	f.copyIn(p, off, n)
	return nil
}

// RawWriteAsync queues a raw write on the device without blocking the
// caller; it returns the completion instant. The platter is updated only
// when the queued write will complete, so a failed write leaves the old
// contents — the caller must not assume the new data is durable.
func (f *File) RawWriteAsync(p []byte, off int64, n int) (sim.Time, error) {
	f.fs.checkRaw(off, n)
	done, err := f.fs.disk.WriteAsync(f.base+off, n)
	if err != nil {
		f.applyTorn(p, off, err)
		return done, err
	}
	f.copyIn(p, off, n)
	return done, nil
}

// applyTorn applies the surviving prefix of a crash-torn write to the media
// image: a power cut mid-transfer leaves exactly the whole-sector prefix the
// device reported, and nothing else, on the platter. Every other write
// failure leaves the old contents untouched.
func (f *File) applyTorn(p []byte, off int64, err error) {
	var ce *fault.CrashError
	if !errors.As(err, &ce) || ce.Survived <= 0 {
		return
	}
	n := ce.Survived
	if n > len(p) {
		n = len(p)
	}
	f.copyIn(p[:n], off, n)
}

// WriteStage stores bytes at off without charging any device cost: the data
// sits in a memory buffer (whose frames the caller accounts for separately)
// until RawWriteStaged flushes the region. The log-structured store uses it
// for its pinned segment buffer.
func (f *File) WriteStage(off int64, data []byte) {
	f.copyIn(data, off, len(data))
}

// ReadStaged copies bytes back out of the file image without charging any
// device cost — for data the caller knows is buffer-resident (staged and
// not yet flushed) or already paid for (a just-read region).
func (f *File) ReadStaged(off int64, buf []byte) {
	f.copyOut(buf, off, len(buf))
}

// RawWriteStaged charges one asynchronous device write for a region whose
// contents were previously placed with WriteStage. Geometry rules are those
// of RawWrite.
func (f *File) RawWriteStaged(off int64, n int) (sim.Time, error) {
	f.fs.checkRaw(off, n)
	return f.fs.disk.WriteAsync(f.base+off, n)
}

func (f *File) addr(block int64) int64 { return f.base + block*int64(f.fs.opts.BlockSize) }

func (f *File) platterBlock(block int64) []byte {
	b, ok := f.platter[block]
	if !ok {
		b = make([]byte, f.fs.opts.BlockSize) //cclint:ignore hotalloc -- first touch of a sparse platter block; allocated once per block over a run
		f.platter[block] = b
	}
	return b
}

func (f *File) copyIn(p []byte, off int64, n int) {
	bs := int64(f.fs.opts.BlockSize)
	for done := 0; done < n; {
		block := (off + int64(done)) / bs
		inOff := int((off + int64(done)) % bs)
		c := int(bs) - inOff
		if c > n-done {
			c = n - done
		}
		copy(f.platterBlock(block)[inOff:inOff+c], p[done:done+c])
		done += c
	}
	if end := off + int64(n); end > f.size {
		f.size = end
	}
}

func (f *File) copyOut(p []byte, off int64, n int) {
	bs := int64(f.fs.opts.BlockSize)
	for done := 0; done < n; {
		block := (off + int64(done)) / bs
		inOff := int((off + int64(done)) % bs)
		c := int(bs) - inOff
		if c > n-done {
			c = n - done
		}
		copy(p[done:done+c], f.platterBlock(block)[inOff:inOff+c])
		done += c
	}
}

// ---------------------------------------------------------------------------
// LRU list plumbing

func (fs *FS) lruAppend(cb *cacheBlock) {
	cb.lastUse = fs.clock.Now()
	cb.prev = fs.lruTail
	cb.next = nil
	if fs.lruTail != nil {
		fs.lruTail.next = cb
	} else {
		fs.lruHead = cb
	}
	fs.lruTail = cb
}

func (fs *FS) lruRemove(cb *cacheBlock) {
	if cb.prev != nil {
		cb.prev.next = cb.next
	} else {
		fs.lruHead = cb.next
	}
	if cb.next != nil {
		cb.next.prev = cb.prev
	} else {
		fs.lruTail = cb.prev
	}
	cb.prev, cb.next = nil, nil
}

func (fs *FS) lruTouch(cb *cacheBlock) {
	fs.lruRemove(cb)
	fs.lruAppend(cb)
}
