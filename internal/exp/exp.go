// Package exp regenerates every table and figure in the paper's evaluation
// (§3 Figure 1, §5.1 Figure 3, §5.2 Table 1), plus the ablation studies
// DESIGN.md calls out. Each experiment returns a structured result with a
// text renderer that prints the same rows or series the paper reports.
//
// Absolute numbers come from a simulated machine, not the authors' 1993
// testbed; per the reproduction methodology, the quantities to compare are
// the shapes: who wins, by roughly what factor, and where the crossovers
// fall. EXPERIMENTS.md records the paper-vs-measured comparison.
package exp

import (
	"fmt"
	"strings"
)

// csvEscape quotes a cell when needed.
func csvEscape(cell string) string {
	if strings.ContainsAny(cell, ",\"\n") {
		return "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
	}
	return cell
}

// Table is a generic result table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first), the
// plot-ready form of every experiment result.
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Scale selects experiment sizing. The paper's full scale takes a few
// minutes of host time; the small scale exercises every code path in
// seconds and is what the unit tests and testing.B benchmarks use.
type Scale int

// Experiment scales.
const (
	// Small shrinks memory and working sets ~8x for fast runs.
	Small Scale = iota
	// Paper uses the paper's sizes: 6 MB user memory for Figure 3, 14 MB
	// for Table 1, address spaces up to 40 MB.
	Paper
)

// String returns the scale name.
func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "small"
}
