// Package obs is the sink-side half of the nondet golden fixture: a
// minimal stand-in for the observability bus, matched by the analyzer's
// internal/obs package-suffix rule exactly as the real one is.
package obs

// Bus is a minimal metrics bus; Emit is a nondet sink.
type Bus struct{ rows []string }

// Emit records one exported value.
func (b *Bus) Emit(v string) { b.rows = append(b.rows, v) }
