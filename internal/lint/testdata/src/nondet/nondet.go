// Package nd is a golden fixture for the nondet taint analyzer: every
// bad case routes a nondeterminism source (host clock, map iteration
// order, heap address, environment) into an obs or exp sink, and every
// good case shows the sanctioned way to export the same shape of data.
package nd

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"compcache/nondet/internal/exp"
	"compcache/nondet/internal/obs"
)

// BadClock formats the host clock straight into a table row.
func BadClock(t *exp.Table) {
	t.AddRow(fmt.Sprintf("%v", time.Now())) // want `wall-clock call time\.Now` `nondeterministic time\.Now host-clock value flows into exp\.AddRow \(BadClock → exp\.AddRow\)`
}

// BadMapOrder exports whichever key the map happens to yield last; no
// append or print happens inside the loop, so only dataflow sees it.
func BadMapOrder(b *obs.Bus, m map[string]int) {
	last := ""
	for k := range m { // want `nondeterministic iteration order of map m flows into obs\.Emit \(BadMapOrder → obs\.Emit\)`
		last = k
	}
	b.Emit(last)
}

// BadPointer prints a heap address into a metric.
func BadPointer(b *obs.Bus, p *int) {
	b.Emit(fmt.Sprintf("%p", p)) // want `nondeterministic fmt\.Sprintf %p pointer formatting flows into obs\.Emit \(BadPointer → obs\.Emit\)`
}

// BadEnv lets the host environment name a table row.
func BadEnv(t *exp.Table) {
	t.AddRow(os.Getenv("CC_HOST")) // want `nondeterministic os\.Getenv environment value flows into exp\.AddRow \(BadEnv → exp\.AddRow\)`
}

// stamp returns a host-clock string; the taint travels the return edge.
func stamp() string {
	return fmt.Sprintf("%v", time.Now()) // want `wall-clock call time\.Now`
}

// BadTransitive reports taint that arrives through a helper's return
// value; the source description names the callee.
func BadTransitive(t *exp.Table) {
	t.AddRow(stamp()) // want `nondeterministic time\.Now host-clock value \(returned by stamp\) flows into exp\.AddRow \(BadTransitive → exp\.AddRow\)`
}

// report forwards its argument into the table; the sink-parameter fixed
// point is what lets the caller's taint find it.
func report(t *exp.Table, v string) {
	t.AddRow(v)
}

// BadDeepSink reaches AddRow two hops away; the chain names the route.
func BadDeepSink(t *exp.Table) {
	report(t, os.Getenv("CC_SEED")) // want `nondeterministic os\.Getenv environment value flows into exp\.AddRow \(BadDeepSink → nd\.report → exp\.AddRow\)`
}

// GoodSorted collects map keys and sorts before exporting: the sort is
// the sanitizer that restores determinism.
func GoodSorted(t *exp.Table, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t.AddRow(keys...)
}

// GoodSeeded threads an explicit seed; methods on a seeded *rand.Rand
// are deterministic and not sources.
func GoodSeeded(b *obs.Bus, seed int64) {
	r := rand.New(rand.NewSource(seed))
	b.Emit(fmt.Sprintf("%d", r.Intn(100)))
}

// GoodVirtual exports a value derived only from deterministic inputs.
func GoodVirtual(t *exp.Table, pages int) {
	t.AddRow(fmt.Sprintf("%d", 4096*pages))
}
