package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("Advance(0) changed time to %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	// Advancing to the past is a no-op.
	c.AdvanceTo(Time(3 * time.Millisecond))
	if got := c.Now(); got != Time(10*time.Millisecond) {
		t.Fatalf("AdvanceTo(past) moved clock to %v", got)
	}
	c.AdvanceTo(Time(25 * time.Millisecond))
	if got := c.Now(); got != Time(25*time.Millisecond) {
		t.Fatalf("AdvanceTo(future) = %v, want 25ms", got)
	}
}

func TestClockElapsed(t *testing.T) {
	var c Clock
	start := c.Now()
	c.Advance(7 * time.Second)
	if got := c.Elapsed(start); got != 7*time.Second {
		t.Fatalf("Elapsed = %v, want 7s", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(time.Second)
	b := a.Add(500 * time.Millisecond)
	if b != Time(1500*time.Millisecond) {
		t.Fatalf("Add = %v", b)
	}
	if d := b.Sub(a); d != 500*time.Millisecond {
		t.Fatalf("Sub = %v", d)
	}
	if s := Time(1500 * time.Millisecond).String(); s != "1.5s" {
		t.Fatalf("String = %q, want 1.5s", s)
	}
}

// Property: any sequence of non-negative advances keeps the clock monotone
// and equal to the running sum.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		var sum Time
		prev := c.Now()
		for _, s := range steps {
			d := Duration(s) * time.Microsecond
			c.Advance(d)
			sum += Time(d)
			if c.Now() < prev || c.Now() != sum {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.CompressBW <= 0 || m.DecompressBW <= 0 {
		t.Fatal("default bandwidths must be positive")
	}
	if m.DecompressBW < m.CompressBW {
		t.Fatal("decompression should not be slower than compression for LZRW1-class codecs")
	}
}

func TestCompressCostScalesLinearly(t *testing.T) {
	m := DefaultCostModel()
	c1 := m.CompressCost(4096)
	c2 := m.CompressCost(8192)
	if c2 != 2*c1 {
		t.Fatalf("CompressCost not linear: %v vs %v", c1, c2)
	}
	// 4096 bytes at 1 MB/s is ~4.096ms.
	want := time.Duration(float64(4096) / 1e6 * float64(time.Second))
	if c1 != want {
		t.Fatalf("CompressCost(4096) = %v, want %v", c1, want)
	}
}

func TestCostEdgeCases(t *testing.T) {
	m := DefaultCostModel()
	if m.CompressCost(0) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
	if m.CompressCost(-5) != 0 {
		t.Fatal("negative bytes should cost nothing")
	}
	z := CostModel{}
	if z.CompressCost(100) != 0 || z.DecompressCost(100) != 0 {
		t.Fatal("zero-bandwidth model should charge nothing rather than divide by zero")
	}
}

func TestDecompressCostHalfOfCompress(t *testing.T) {
	m := DefaultCostModel()
	if got, want := m.DecompressCost(4096), m.CompressCost(4096)/2; got != want {
		t.Fatalf("DecompressCost = %v, want %v", got, want)
	}
}
