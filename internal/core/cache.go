// Package core implements the compression cache, the paper's primary
// contribution (§4).
//
// The cache is a variable-size circular buffer of physical page frames
// mapped (conceptually) into contiguous kernel virtual addresses. Compressed
// pages are appended at the tail, each preceded by a small header; they may
// span frame boundaries because the buffer is virtually contiguous. Frames
// are reclaimed from the oldest end — or from the middle when no clean frame
// is available at the oldest end — and returned to the shared pool, shrinking
// the cache; growth happens one frame at a time as insertions need space.
//
// Entry life cycle (the paper's Figure 2 states, at entry granularity):
//
//	dirty — holds modified data that exists nowhere else; must be written
//	        to the backing store before its frame can be reclaimed.
//	clean — the backing store holds the same contents (either the cleaner
//	        wrote it out, or the entry was populated from a backing-store
//	        read); droppable at any time.
//	dead  — superseded (the page was faulted back in, or dropped); its
//	        space is reclaimed when its frame leaves the ring.
//
// A frame whose overlapping entries are all clean or dead is reclaimable; a
// "new" frame in the paper's terminology is the tail frame still being
// filled. The cleaner writes the oldest dirty entries to the backing store
// in clustered batches so a supply of reclaimable frames is ready before the
// allocator needs them (§4.2).
//
// Insert is transactional: it verifies — without touching anything — that
// the frames it needs can actually be obtained before it reclaims, drops, or
// flushes anything. A failed Insert therefore has no observable side
// effects: no entries dropped, no drop hooks fired, no dirty batches
// flushed, and no counters changed.
package core

import (
	"fmt"
	"hash/crc32"

	"compcache/internal/mem"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
	"compcache/internal/swap"
)

// Checksum computes the integrity checksum stored with every compressed
// fragment (CRC-32/IEEE). It is computed once when data enters the cache and
// travels with the bytes through the backing store, so verification at
// decompress time catches corruption anywhere along the path — not just in
// the cache ring.
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Params configures a Cache.
type Params struct {
	// MaxFrames caps the cache's physical size; 0 means unbounded (the
	// replacement policy is then the only limit). When the cap is reached,
	// insertions recycle the cache's own oldest reclaimable frame instead
	// of growing.
	MaxFrames int

	// MinFrames stops ReleaseOldest from shrinking the cache below this
	// size. Setting MinFrames == MaxFrames and prefilling produces the
	// fixed-size cache of the paper's first design (§4.2), kept for the
	// ablation study.
	MinFrames int

	// FrameHeaderBytes is the per-frame header (24 bytes in the paper).
	FrameHeaderBytes int

	// EntryHeaderBytes is the per-compressed-page header (36 bytes in the
	// paper).
	EntryHeaderBytes int

	// CleanBatchBytes is how much dirty data one cleaning pass batches into
	// a clustered write (32 KBytes in the paper).
	CleanBatchBytes int

	// RefreshOnFault makes a fault refresh the entry's age, so the
	// three-way policy treats actively reused compressed data as young
	// (LRU-like aging). The paper's ring ages entries by insertion only
	// (FIFO), which is the default; LRU aging helps read-mostly reuse
	// (e.g. the compressed file cache) but over-retains the cache for
	// workloads like gold that need uncompressed frames more.
	RefreshOnFault bool
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		FrameHeaderBytes: 24,
		EntryHeaderBytes: 36,
		CleanBatchBytes:  32 * 1024,
	}
}

// Entry is one compressed page in the cache. Data always points into a
// cache-owned slab (Insert copies at the boundary), recycled through the
// cache's freelists when the entry dies, so the steady-state insert path
// allocates nothing.
type Entry struct {
	Key    swap.PageKey
	Data   []byte
	Dirty  bool
	Sum    uint32 // Checksum of Data, computed at insertion
	dead   bool
	insert sim.Time
	frames []*ccFrame
	refs   int // frames still holding this entry; 0 → recyclable
	oidx   int // index of this entry's slot in the order deque
}

// footprint is the buffer space the entry occupies, including its header.
func (e *Entry) footprint(p Params) int { return len(e.Data) + p.EntryHeaderBytes }

type ccFrame struct {
	id      mem.FrameID
	used    int // bytes consumed, including the frame header
	entries []*Entry
}

// reclaimable reports whether every entry overlapping the frame is clean or
// dead.
func (f *ccFrame) reclaimable() bool {
	for _, e := range f.entries {
		if !e.dead && e.Dirty {
			return false
		}
	}
	return true
}

// FlushFunc persists a batch of dirty entries to the backing store (the
// machine implements it with a clustered asynchronous write and updates the
// affected pages' bookkeeping). It is called before the entries are marked
// clean; on error the entries stay dirty.
type FlushFunc func(items []swap.Item) error

// DropFunc is called when a live clean entry is discarded during frame
// reclamation, so the owner can account that the page now lives only on the
// backing store.
type DropFunc func(key swap.PageKey)

// Cache is the compression cache.
type Cache struct {
	params Params     //cclint:ignore snapcover -- config: fixed at construction; the restore target is built with the same params
	clock  *sim.Clock //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	pool   *mem.Pool  //cclint:ignore snapcover -- wiring: injected at construction, not replay state

	frames []*ccFrame // ring order; frames[0] is the oldest
	//cclint:ignore snapcover -- derived: the snapshot encodes the entry table via the frame ring
	entries map[swap.PageKey]*Entry
	order   []*Entry // insertion order; order[head:] are current, nil = killed
	head    int

	dirtyBytes int
	liveBytes  int

	// Recycling freelists: dead entries' slabs return at kill time; Entry
	// and ccFrame structs return when the last reference (ring frame) lets
	// go. Together with the order-slot nil-out in kill they make the
	// steady-state insert/kill cycle allocation-free. All bookkeeping is
	// per-cache and single-goroutine, so recycling cannot perturb
	// determinism.
	slabs      [][]byte      //cclint:ignore snapcover -- scratch: recycling freelist, refilled on demand
	entryPool  []*Entry      //cclint:ignore snapcover -- scratch: recycling freelist, refilled on demand
	framePool  []*ccFrame    //cclint:ignore snapcover -- scratch: recycling freelist, refilled on demand
	acqBuf     []mem.FrameID //cclint:ignore snapcover -- scratch: Insert's frame-acquisition buffer, dead between calls
	cleanBatch []*Entry      //cclint:ignore snapcover -- scratch: Clean's batch buffer, dead between calls
	cleanItems []swap.Item   //cclint:ignore snapcover -- scratch: Clean's flush-item buffer, dead between calls

	flush  FlushFunc
	onDrop DropFunc

	bus *obs.Bus //cclint:ignore snapcover -- wiring: observability bus attached separately

	st stats.CC
}

// New creates a compression cache drawing frames from pool.
func New(params Params, clock *sim.Clock, pool *mem.Pool) *Cache {
	if params.FrameHeaderBytes < 0 || params.EntryHeaderBytes < 0 {
		// Invariant: construction-time configuration error, not a runtime
		// fault; machine.Config validation rejects it before reaching here.
		panic("core: negative header size")
	}
	if params.CleanBatchBytes <= 0 {
		params.CleanBatchBytes = 32 * 1024
	}
	if params.FrameHeaderBytes >= pool.PageSize() {
		// Invariant: construction-time configuration error (see above).
		panic("core: frame header exceeds the page size")
	}
	return &Cache{
		params:  params,
		clock:   clock,
		pool:    pool,
		entries: make(map[swap.PageKey]*Entry),
	}
}

// SetHooks installs the backing-store flush and the drop notification.
func (c *Cache) SetHooks(flush FlushFunc, onDrop DropFunc) {
	c.flush = flush
	c.onDrop = onDrop
}

// SetObserver wires the cache to a machine's event bus; nil disables
// emission.
func (c *Cache) SetObserver(b *obs.Bus) { c.bus = b }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() stats.CC { return c.st }

// FrameCount reports the number of physical frames the cache holds.
func (c *Cache) FrameCount() int { return len(c.frames) }

// LiveBytes reports the footprint of live (non-dead) entries.
func (c *Cache) LiveBytes() int { return c.liveBytes }

// DirtyBytes reports the footprint of dirty entries.
func (c *Cache) DirtyBytes() int { return c.dirtyBytes }

// Len reports the number of live entries.
func (c *Cache) Len() int { return len(c.entries) }

// Has reports whether the cache holds a live entry for key.
func (c *Cache) Has(key swap.PageKey) bool {
	_, ok := c.entries[key]
	return ok
}

// frameCap is the usable bytes per frame.
func (c *Cache) frameCap() int { return c.pool.PageSize() - c.params.FrameHeaderBytes }

// slabGet returns a cache-owned buffer of n bytes (n never exceeds the page
// size, so every slab is allocated at full page capacity and any recycled
// slab fits).
func (c *Cache) slabGet(n int) []byte {
	if k := len(c.slabs); k > 0 {
		s := c.slabs[k-1]
		c.slabs = c.slabs[:k-1]
		return s[:n]
	}
	return make([]byte, n, c.pool.PageSize())
}

// newEntry returns a reset Entry, recycled when possible.
func (c *Cache) newEntry() *Entry {
	if k := len(c.entryPool); k > 0 {
		e := c.entryPool[k-1]
		c.entryPool = c.entryPool[:k-1]
		return e
	}
	return &Entry{}
}

// newFrame returns an empty ccFrame for pool frame id, recycled when
// possible.
func (c *Cache) newFrame(id mem.FrameID) *ccFrame {
	if k := len(c.framePool); k > 0 {
		f := c.framePool[k-1]
		c.framePool = c.framePool[:k-1]
		f.id = id
		f.used = c.params.FrameHeaderBytes
		return f
	}
	return &ccFrame{id: id, used: c.params.FrameHeaderBytes}
}

// Insert adds a compressed page to the tail of the ring. It reports false —
// without side effects — when the cache cannot obtain the frames it needs
// (pool empty and nothing reclaimable, or MaxFrames reached); the caller
// then sends the page to the backing store instead. Feasibility is
// established before any destructive work, so a failed insert reclaims no
// frames, drops no entries, fires no hooks, flushes nothing, and changes no
// counters. Data is COPIED into cache-owned storage: the caller keeps
// ownership of the slice and may reuse it immediately, which is what lets
// the machine hand every codec one per-machine scratch buffer. The error
// reports a flush failure during at-cap recycling; the insert is abandoned
// with any newly acquired frames returned to the pool.
func (c *Cache) Insert(key swap.PageKey, data []byte, dirty bool) (bool, error) {
	if len(data) > c.pool.PageSize() {
		// Invariant: the machine stores a page raw when compression does not
		// shrink it, so an entry can never exceed the page size.
		panic(fmt.Sprintf("core: entry for %v of %d bytes larger than a page", key, len(data)))
	}
	need := len(data) + c.params.EntryHeaderBytes

	// Work out how many new frames the tail needs, then acquire them all
	// before mutating anything so failure has no side effects. A frame's
	// `used` includes its frame header, so free space is measured against
	// the full page size.
	rem := 0
	var tailFrame *ccFrame
	if n := len(c.frames); n > 0 {
		tailFrame = c.frames[n-1]
		rem = c.pool.PageSize() - tailFrame.used
	}
	if rem == 0 {
		tailFrame = nil // full tail: nothing to protect during recycling
	}
	newFrames := 0
	if need > rem {
		newFrames = (need - rem + c.frameCap() - 1) / c.frameCap()
	}
	if !c.canAcquire(newFrames, tailFrame != nil) {
		return false, nil
	}
	acquired := c.acqBuf[:0]
	for i := 0; i < newFrames; i++ {
		if c.params.MaxFrames > 0 && len(c.frames)+len(acquired) >= c.params.MaxFrames {
			// At the cap: rotate the ring by recycling the oldest
			// reclaimable frame (fixed-size behaviour). canAcquire proved
			// the recycling cannot run dry, and the partially filled tail
			// frame this insert appends into is never recycled from under
			// it.
			for !c.reclaimFirstExcept(tailFrame) {
				n, err := c.Clean()
				if err != nil {
					for _, id := range acquired {
						c.pool.Release(id)
					}
					c.acqBuf = acquired[:0]
					return false, err
				}
				if n == 0 {
					// Invariant: canAcquire proved recycling cannot run dry
					// while dirty entries remain cleanable.
					panic("core: insert feasibility check admitted an unrecyclable ring")
				}
			}
		}
		id, ok := c.pool.Alloc(mem.CC)
		if !ok {
			// Invariant: canAcquire counted the pool's free frames.
			panic("core: insert feasibility check admitted an empty pool")
		}
		acquired = append(acquired, id)
	}

	if old, ok := c.entries[key]; ok {
		// A stale copy exists (e.g. the page went out, came back, changed,
		// and is going out again): supersede it now that success is assured.
		c.kill(old)
	}

	buf := c.slabGet(len(data))
	copy(buf, data)
	e := c.newEntry()
	*e = Entry{Key: key, Data: buf, Dirty: dirty, Sum: Checksum(buf),
		insert: c.clock.Now(), frames: e.frames[:0]}
	left := need
	if rem > 0 {
		tail := c.frames[len(c.frames)-1]
		take := min(rem, left)
		tail.used += take
		tail.entries = append(tail.entries, e)
		e.frames = append(e.frames, tail)
		left -= take
	}
	for _, id := range acquired {
		f := c.newFrame(id)
		take := min(c.pool.PageSize()-f.used, left)
		f.used += take
		f.entries = append(f.entries, e)
		e.frames = append(e.frames, f)
		c.frames = append(c.frames, f)
		left -= take
		c.st.FrameGrows++
	}
	if left != 0 {
		// Invariant: the frame-count arithmetic above exactly covers need.
		panic("core: space accounting error during insert")
	}
	c.acqBuf = acquired[:0]
	e.refs = len(e.frames)
	c.entries[key] = e
	e.oidx = len(c.order)
	c.order = append(c.order, e)
	c.liveBytes += need
	if dirty {
		c.dirtyBytes += need
	}
	c.st.Inserts++
	if c.bus.Enabled(obs.ClassCCInsert) {
		aux := int64(0)
		if dirty {
			aux = 1
		}
		c.bus.Emit(obs.Event{
			T: c.clock.Now(), Class: obs.ClassCCInsert, Sub: obs.SubCore,
			Seg: key.Seg, Page: key.Page, Bytes: int64(len(data)), Aux: aux,
		})
	}
	return true, nil
}

// canAcquire reports whether Insert can obtain n new tail frames, without
// mutating anything. Frame acquisition draws first from the pool (growth,
// until MaxFrames is reached) and then recycles the ring's own frames
// (fixed-size rotation); protectTail excludes the partially filled tail
// frame — which the pending insert appends into — from recycling. The check
// mirrors the acquisition loop exactly: once it passes, acquisition cannot
// fail, so no destructive work happens before success is assured.
func (c *Cache) canAcquire(n int, protectTail bool) bool {
	if n == 0 {
		return true
	}
	direct := n
	if c.params.MaxFrames > 0 {
		headroom := c.params.MaxFrames - len(c.frames)
		if headroom < 0 {
			headroom = 0
		}
		if headroom < direct {
			direct = headroom
		}
	}
	if c.pool.FreeCount() < direct {
		return false
	}
	recycles := n - direct
	if recycles == 0 {
		return true
	}
	usable := len(c.frames)
	if protectTail {
		usable--
	}
	if usable < recycles {
		return false
	}
	if c.flush != nil {
		// Cleaning makes progress whenever dirty entries remain, so with a
		// flush hook installed every frame is eventually reclaimable.
		return true
	}
	avail := 0
	for i, f := range c.frames {
		if protectTail && i == len(c.frames)-1 {
			continue
		}
		if f.reclaimable() {
			if avail++; avail >= recycles {
				return true
			}
		}
	}
	return false
}

// Fault returns the entry for key, satisfying a page fault from the cache.
// The caller decompresses Data after verifying it against sum; dirty reports
// whether the backing store lacks the contents. The entry is RETAINED: "the
// compressed copy in memory can be freed at any time" (§4.1), and keeping it
// means a later eviction of the still-unmodified page costs nothing — the
// owner must Drop the entry when the page is modified. The returned data is
// cache-owned and valid only until the entry is dropped or superseded (its
// slab is recycled at that point); callers consume it before the next cache
// mutation and must not retain it.
func (c *Cache) Fault(key swap.PageKey) (data []byte, sum uint32, dirty bool, ok bool) {
	e, found := c.entries[key]
	if !found {
		c.st.Misses++
		if c.bus.Enabled(obs.ClassCCMiss) {
			c.bus.Emit(obs.Event{
				T: c.clock.Now(), Class: obs.ClassCCMiss, Sub: obs.SubCore,
				Seg: key.Seg, Page: key.Page,
			})
		}
		return nil, 0, false, false
	}
	c.st.Hits++
	if c.bus.Enabled(obs.ClassCCHit) {
		c.bus.Emit(obs.Event{
			T: c.clock.Now(), Class: obs.ClassCCHit, Sub: obs.SubCore,
			Seg: key.Seg, Page: key.Page, Bytes: int64(len(e.Data)),
		})
	}
	if c.params.RefreshOnFault {
		// A re-reference refreshes the entry's age (LRU-like aging). The
		// ring's frame-reclamation order is positional and unchanged; only
		// the age the allocator compares against other consumers moves.
		e.insert = c.clock.Now()
	}
	return e.Data, e.Sum, e.Dirty, true
}

// Drop discards the entry for key if present (used when a stale copy must be
// invalidated). It does not call the drop hook: the caller initiated it.
func (c *Cache) Drop(key swap.PageKey) {
	if e, ok := c.entries[key]; ok {
		c.kill(e)
		c.st.Dropped++
		if c.bus.Enabled(obs.ClassCCEvict) {
			c.bus.Emit(obs.Event{
				T: c.clock.Now(), Class: obs.ClassCCEvict, Sub: obs.SubCore,
				Seg: key.Seg, Page: key.Page, Aux: 0,
			})
		}
	}
}

// kill marks an entry dead and removes it from the live index. Its data
// slab returns to the freelist immediately — nothing reads a dead entry's
// Data — and its order slot is nilled so the Entry struct itself can be
// recycled as soon as the last ring frame holding it is reclaimed.
func (c *Cache) kill(e *Entry) {
	if e.dead {
		return
	}
	e.dead = true
	c.liveBytes -= e.footprint(c.params)
	if e.Dirty {
		c.dirtyBytes -= e.footprint(c.params)
		e.Dirty = false
	}
	delete(c.entries, e.Key)
	c.slabs = append(c.slabs, e.Data[:0])
	e.Data = nil
	c.order[e.oidx] = nil
}

// OldestAge reports the insertion time of the oldest live entry; ok is false
// when the cache is empty. This makes the cache a consumer in the three-way
// memory trade.
func (c *Cache) OldestAge() (sim.Time, bool) {
	c.advanceHead()
	if c.head >= len(c.order) {
		return 0, false
	}
	return c.order[c.head].insert, true
}

func (c *Cache) advanceHead() {
	for c.head < len(c.order) && c.order[c.head] == nil {
		c.head++
	}
	// Periodically compact the order slice so it does not grow without
	// bound across a long run. Dropping interior nil slots too keeps the
	// deque's live density high; surviving entries are reindexed.
	if c.head > 1024 && c.head*2 > len(c.order) {
		kept := c.order[:0]
		for _, e := range c.order[c.head:] {
			if e == nil {
				continue
			}
			e.oidx = len(kept)
			kept = append(kept, e)
		}
		// Clear the abandoned tail so it holds no stale pointers.
		for i := len(kept); i < len(c.order); i++ {
			c.order[i] = nil
		}
		c.order = kept
		c.head = 0
	}
}

// Clean writes the oldest dirty entries — about one clean batch's worth — to
// the backing store through the flush hook and marks them clean. It returns
// the number of entries cleaned (0 when nothing is dirty or no flush hook is
// installed). On a flush error the batch stays dirty.
func (c *Cache) Clean() (int, error) {
	if c.flush == nil || c.dirtyBytes == 0 {
		return 0, nil
	}
	// Skip (and periodically compact) the dead prefix once, instead of
	// re-walking an arbitrarily long run of dropped entries on every pass.
	c.advanceHead()
	batch := c.cleanBatch[:0]
	items := c.cleanItems[:0]
	bytes := 0
	for i := c.head; i < len(c.order) && bytes < c.params.CleanBatchBytes; i++ {
		e := c.order[i]
		if e == nil || !e.Dirty {
			continue
		}
		batch = append(batch, e)
		items = append(items, swap.Item{Key: e.Key, Data: e.Data, Compressed: true, Sum: e.Sum})
		bytes += e.footprint(c.params)
	}
	c.cleanBatch, c.cleanItems = batch[:0], items[:0]
	if len(batch) == 0 {
		return 0, nil
	}
	if err := c.flush(items); err != nil {
		return 0, err
	}
	for _, e := range batch {
		e.Dirty = false
		c.dirtyBytes -= e.footprint(c.params)
		c.st.CleanWrites++
	}
	if c.bus.Enabled(obs.ClassCleanPass) {
		c.bus.Emit(obs.Event{
			T: c.clock.Now(), Class: obs.ClassCleanPass, Sub: obs.SubCore,
			Bytes: int64(bytes), Aux: int64(len(batch)),
		})
	}
	return len(batch), nil
}

// ReclaimableFrames reports how many frames could be released right now
// without any I/O.
func (c *Cache) ReclaimableFrames() int {
	n := 0
	for _, f := range c.frames {
		if f.reclaimable() {
			n++
		}
	}
	return n
}

// Prefill grows the cache to k empty frames, taking them from the pool.
// Together with MinFrames == MaxFrames == k this reproduces the original
// fixed-size compression cache for the §4.2 ablation. It panics when the
// pool cannot supply the frames (a configuration error).
func (c *Cache) Prefill(k int) {
	for len(c.frames) < k {
		id, ok := c.pool.Alloc(mem.CC)
		if !ok {
			// Invariant: Prefill runs at machine construction against a
			// freshly sized pool; exhaustion is a configuration error.
			panic("core: Prefill exceeds available memory")
		}
		c.frames = append(c.frames, &ccFrame{id: id, used: c.params.FrameHeaderBytes})
		c.st.FrameGrows++
	}
}

// ReleaseOldest reclaims one frame for the pool: the oldest frame whose
// entries are all clean or dead, dropping any live clean entries it overlaps
// (they remain available on the backing store). If no such frame exists, it
// cleans the oldest dirty data first and retries. It reports false when the
// cache holds no frames, is at its configured minimum size, or cleaning is
// impossible.
func (c *Cache) ReleaseOldest() (bool, error) {
	if len(c.frames) == 0 || len(c.frames) <= c.params.MinFrames {
		return false, nil
	}
	if c.reclaimFirst() {
		return true, nil
	}
	n, err := c.Clean()
	if err != nil {
		return false, err
	}
	if n == 0 {
		return false, nil
	}
	return c.reclaimFirst(), nil
}

// reclaimFirst releases the oldest reclaimable frame, searching from the
// head of the ring toward the tail (a middle reclaim when the head frame is
// pinned by dirty data, as §4.1 allows).
func (c *Cache) reclaimFirst() bool { return c.reclaimFirstExcept(nil) }

// reclaimFirstExcept is reclaimFirst with one frame exempted (Insert
// protects the tail frame it is about to append into).
func (c *Cache) reclaimFirstExcept(skip *ccFrame) bool {
	for i, f := range c.frames {
		if f == skip || !f.reclaimable() {
			continue
		}
		for _, e := range f.entries {
			if e.dead {
				continue
			}
			// Live clean entry: drop it. It may span into a neighbouring
			// frame; dropping is still correct since the backing store has
			// the contents.
			c.kill(e)
			c.st.Dropped++
			if c.bus.Enabled(obs.ClassCCEvict) {
				c.bus.Emit(obs.Event{
					T: c.clock.Now(), Class: obs.ClassCCEvict, Sub: obs.SubCore,
					Seg: e.Key.Seg, Page: e.Key.Page, Aux: 1,
				})
			}
			if c.onDrop != nil {
				c.onDrop(e.Key)
			}
		}
		c.frames = append(c.frames[:i], c.frames[i+1:]...)
		c.pool.Release(f.id)
		// Every entry the frame held is now dead (live ones were killed just
		// above). Dropping the frame's reference may free the Entry struct
		// for recycling; the frame itself always recycles.
		for j, e := range f.entries {
			if e.refs--; e.refs == 0 {
				e.frames = e.frames[:0]
				c.entryPool = append(c.entryPool, e) //cclint:ignore maprange -- f.entries is a slice ([]*Entry); the syntactic check name-matches the Cache.entries map
			}
			f.entries[j] = nil
		}
		f.entries = f.entries[:0]
		c.framePool = append(c.framePool, f)
		c.st.FrameShrinks++
		if i != 0 {
			c.st.MidReclaims++
		}
		return true
	}
	return false
}

// CheckConsistency validates the cache's internal invariants: index/ring
// agreement, byte accounting, and frame occupancy. Tests call it after
// stressing the cache.
func (c *Cache) CheckConsistency() error {
	live, dirty := 0, 0
	for key, e := range c.entries {
		if e.dead {
			return fmt.Errorf("core: dead entry %v in live index", key)
		}
		if e.Key != key {
			return fmt.Errorf("core: entry key mismatch %v vs %v", e.Key, key)
		}
		if len(e.frames) == 0 {
			return fmt.Errorf("core: live entry %v occupies no frames", key)
		}
		live += e.footprint(c.params)
		if e.Dirty {
			dirty += e.footprint(c.params)
		}
	}
	if live != c.liveBytes {
		return fmt.Errorf("core: liveBytes %d, recomputed %d", c.liveBytes, live)
	}
	if dirty != c.dirtyBytes {
		return fmt.Errorf("core: dirtyBytes %d, recomputed %d", c.dirtyBytes, dirty)
	}
	frameSet := make(map[*ccFrame]bool, len(c.frames))
	for _, f := range c.frames {
		frameSet[f] = true
		if f.used < c.params.FrameHeaderBytes || f.used > c.pool.PageSize() {
			return fmt.Errorf("core: frame %d occupancy %d out of range", f.id, f.used)
		}
		if c.pool.Owner(f.id) != mem.CC {
			return fmt.Errorf("core: frame %d owned by %v", f.id, c.pool.Owner(f.id))
		}
	}
	for key, e := range c.entries {
		for _, f := range e.frames {
			if !frameSet[f] {
				return fmt.Errorf("core: entry %v references a frame not in the ring", key)
			}
		}
	}
	// Every live entry must sit in its recorded order slot (dead entries'
	// slots are nil).
	for key, e := range c.entries {
		if e.oidx < 0 || e.oidx >= len(c.order) || c.order[e.oidx] != e {
			return fmt.Errorf("core: live entry %v not at its order slot", key)
		}
	}
	for i, e := range c.order {
		if e != nil && e.oidx != i {
			return fmt.Errorf("core: order slot %d holds entry %v with oidx %d", i, e.Key, e.oidx)
		}
	}
	return nil
}
