// Quickstart: build two simulated machines — one unmodified, one with the
// compression cache — run the same memory-hungry loop on both, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"compcache"
)

func main() {
	const memory = 4 << 20      // 4 MB of physical memory for user pages
	const workingSet = 12 << 20 // a 12 MB address space: 3x memory

	run := func(cfg compcache.Config, label string) compcache.Stats {
		m, err := compcache.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		heap := m.NewSegment("heap", workingSet)

		// Touch every page: write a little, then sweep it twice read-only.
		// Pages hold mostly-zero content, so they compress well — the
		// compression cache's happy case.
		for p := int32(0); p < heap.Pages(); p++ {
			heap.WriteWord(int64(p)*4096, uint64(p)*2654435761)
		}
		for pass := 0; pass < 2; pass++ {
			for p := int32(0); p < heap.Pages(); p++ {
				heap.Touch(p, false)
			}
		}
		m.Drain()

		st := m.Stats()
		fmt.Printf("--- %s ---\n%s\n", label, st)
		return st
	}

	base := run(compcache.Default(memory), "unmodified system")
	cc := run(compcache.Default(memory).WithCC(), "with compression cache")

	fmt.Printf("speedup with the compression cache: %.2fx (virtual time %v -> %v)\n",
		float64(base.Time)/float64(cc.Time), base.Time, cc.Time)
	fmt.Printf("disk reads avoided: %d -> %d\n", base.Disk.Reads, cc.Disk.Reads)
}
