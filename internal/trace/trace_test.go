package trace

import (
	"bytes"
	"testing"
)

func TestUniform(t *testing.T) {
	g := &Uniform{N: 1000, Range: 512, WriteFrac: 0.3, CPUs: 4, Seed: 1}
	refs := Collect(g)
	if len(refs) != 1000 {
		t.Fatalf("got %d refs", len(refs))
	}
	st := Summarize(refs)
	if st.WriteFrac < 0.2 || st.WriteFrac > 0.4 {
		t.Fatalf("write frac = %v", st.WriteFrac)
	}
	cpus := map[int]bool{}
	for _, r := range refs {
		if r.Addr >= 512 {
			t.Fatalf("addr %d out of range", r.Addr)
		}
		cpus[r.CPU] = true
	}
	if len(cpus) != 4 {
		t.Fatalf("cpus used: %d", len(cpus))
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Collect(&Uniform{N: 100, Range: 64, Seed: 7})
	b := Collect(&Uniform{N: 100, Range: 64, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := Collect(&Uniform{N: 100, Range: 64, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestZipfSkewsPopularity(t *testing.T) {
	refs := Collect(&Zipf{N: 10000, Range: 10000, Skew: 1.5, Seed: 2})
	counts := map[uint64]int{}
	for _, r := range refs {
		counts[r.Addr]++
	}
	// The most popular address should dominate a uniform expectation (1 ref
	// per address).
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 100 {
		t.Fatalf("zipf max popularity = %d, want heavy skew", maxCount)
	}
}

func TestStridedStaysInPartition(t *testing.T) {
	g := &Strided{N: 4000, Range: 4096, Stride: 8, CPUs: 4, Seed: 3}
	part := uint64(1024)
	for {
		r, done := g.Next()
		if done {
			break
		}
		lo := uint64(r.CPU) * part
		if r.Addr < lo || r.Addr >= lo+part {
			t.Fatalf("cpu %d touched addr %d outside [%d,%d)", r.CPU, r.Addr, lo, lo+part)
		}
	}
}

func TestMixDrainsAll(t *testing.T) {
	m := &Mix{Gens: []Generator{
		&Uniform{N: 10, Range: 8, Seed: 1},
		&Uniform{N: 25, Range: 8, Seed: 2},
	}}
	refs := Collect(m)
	if len(refs) != 35 {
		t.Fatalf("mix produced %d refs, want 35", len(refs))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Refs != 0 || st.WriteFrac != 0 {
		t.Fatalf("empty summary %+v", st)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	var rec Recorder
	rec.Note(0, 5, false)
	rec.Note(1, 9, true)
	rec.Note(0, 5, false)
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != (PageRef{Seg: 1, Page: 9, Write: true}) {
		t.Fatalf("round trip mismatch: %v", got)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := [][]byte{
		nil,                // empty
		[]byte("xxxx"),     // bad magic
		[]byte("cct1\x01"), // short count
		append([]byte("cct1"), make([]byte, 8)...), // count 0, ok actually
	}
	if _, err := ReadTrace(bytes.NewReader(cases[0])); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(cases[1])); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(cases[2])); err == nil {
		t.Error("short count accepted")
	}
	if refs, err := ReadTrace(bytes.NewReader(cases[3])); err != nil || len(refs) != 0 {
		t.Errorf("empty trace should parse: %v %v", refs, err)
	}
	// Truncated body.
	var rec Recorder
	rec.Note(0, 1, false)
	var buf bytes.Buffer
	rec.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
	// Implausible count.
	big := append([]byte("cct1"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := ReadTrace(bytes.NewReader(big)); err == nil {
		t.Error("implausible count accepted")
	}
}
