package exp

import (
	"fmt"

	"compcache/internal/machine"
	"compcache/internal/policy"
	"compcache/internal/workload"
)

// Ablations quantify the design decisions §4 argues for. Each returns a
// Table comparing a design variant against the paper's configuration. Every
// ablation builds its full grid of independent (configuration, workload)
// runs up front and fans them out across up to workers concurrent machines
// (0 = one per core, 1 = serial); rows always assemble in grid order, so
// the tables are byte-identical at any parallelism.

// AblationPartialIO measures §4.3's central constraint: whole-file-block
// transfers versus an ideal backing store that can move exactly the bytes a
// compressed page occupies ("Ideally, one would use the compression cache in
// a system that permitted less than a 4-Kbyte read to satisfy a page fault",
// §5.2; "A better interface to the backing store would help as well", §6).
func AblationPartialIO(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Ablation: whole-block backing-store transfers vs exact-size (partial) I/O",
		Header: []string{"workload", "backing store", "time", "disk reads", "bytes read", "speedup vs whole-block"},
		Note: "The paper predicts exact-size transfers help applications with nonsequential faults (gold);\n" +
			"for sequential sweeps (thrasher) whole-block reads win because they carry neighbor pages.",
	}
	msgs := memoryMB << 20 / (24 * 8 * 3) // index ~1.5x memory
	loads := []workload.Workload{
		&workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed},
		&workload.Gold{Messages: msgs, WordsPerMessage: 24, VocabWords: 3000,
			Queries: msgs / 2, Phase: workload.GoldCold, Seed: seed},
	}
	modes := []bool{false, true}
	var jobs []job
	for _, w := range loads {
		for _, partial := range modes {
			cfg := machine.Default(int64(memoryMB) << 20).WithCC()
			cfg.FS.AllowPartialIO = partial
			jobs = append(jobs, job{cfg, w})
		}
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for wi, w := range loads {
		base := runs[2*wi].Time // whole-block row comes first
		for mi, partial := range modes {
			st := runs[2*wi+mi]
			name := "whole 4-KByte blocks (paper)"
			if partial {
				name = "exact-size transfers (ideal)"
			}
			t.AddRow(w.Name(), name, fmtDur(st.Time), fmt.Sprint(st.Disk.Reads),
				fmt.Sprintf("%.1fMB", float64(st.Disk.BytesRead)/(1<<20)),
				fmt.Sprintf("%.2f", float64(base)/float64(st.Time)))
		}
	}
	return t, nil
}

// AblationSpanning measures §4.3's page-spanning parameter: pages that may
// cross file-block boundaries waste no fragments but can require two-block
// reads; pages that may not "increase fragmentation and the effective
// bandwidth for writes to the backing store correspondingly decreases".
func AblationSpanning(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Ablation: compressed pages spanning file-block boundaries",
		Header: []string{"spanning", "time", "bytes written", "bytes read", "swap frags live/free"},
	}
	modes := []bool{false, true}
	var jobs []job
	for _, span := range modes {
		cfg := machine.Default(int64(memoryMB) << 20).WithCC()
		cfg.Swap.SpanBlocks = span
		// Pages compressing to ~3 fragments so packing decisions matter.
		jobs = append(jobs, job{cfg, &workload.Thrasher{Pages: pages, Write: true, Passes: 2,
			CompressTarget: 0.55, Seed: seed}})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for i, span := range modes {
		st := runs[i]
		t.AddRow(fmt.Sprint(span), fmtDur(st.Time),
			fmt.Sprintf("%.1fMB", float64(st.Disk.BytesWritten)/(1<<20)),
			fmt.Sprintf("%.1fMB", float64(st.Disk.BytesRead)/(1<<20)),
			fmt.Sprintf("%d/%d", st.Swap.FragsLive, st.Swap.FragsFree))
	}
	return t, nil
}

// AblationBias sweeps the compression cache's retention bias (§4.2: "the
// optimal penalty for the compression cache is application-dependent").
// A favourable bias (small scale) lets the cache grow during paging; an
// unfavourable one degenerates it into "a buffer for compressing and
// decompressing pages between memory and the backing store".
func AblationBias(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Ablation: compression-cache age bias (retention preference)",
		Header: []string{"cc age scale", "thrasher time", "thrasher hits", "gold_warm time", "gold_warm hits"},
		Note: "Smaller scale = compressed pages look younger = retained longer; the optimal\n" +
			"penalty for the compression cache is application-dependent (§4.2).",
	}
	// Size the index at about 1.5x memory so the warm queries page.
	msgs := memoryMB << 20 / 128
	scales := []float64{0.1, 0.25, 0.5, 1.0, 2.0, 4.0}
	var jobs []job
	for _, scale := range scales {
		cfg := machine.Default(int64(memoryMB) << 20).WithCC()
		cfg.Biases = policy.DefaultBiases()
		b := cfg.Biases["cc"]
		b.Scale = scale
		cfg.Biases["cc"] = b
		jobs = append(jobs,
			job{cfg, &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}},
			job{cfg, &workload.Gold{Messages: msgs, WordsPerMessage: 24,
				VocabWords: 3000, Queries: msgs / 3, Phase: workload.GoldWarm, Seed: seed}})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for si, scale := range scales {
		thr, gld := runs[2*si], runs[2*si+1]
		t.AddRow(fmt.Sprintf("%.2f", scale),
			fmtDur(thr.Time), fmt.Sprintf("%.2f", thr.CC.HitRate()),
			fmtDur(gld.Time), fmt.Sprintf("%.2f", gld.CC.HitRate()))
	}
	return t, nil
}

// AblationThreshold sweeps the 4:3 retention threshold on the paper's worst
// compressor, sort_random (§5.2: ~98% of pages miss the threshold, so the
// threshold's job is damage control).
func AblationThreshold(memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Ablation: compression retention threshold (paper: keep only better than 4:3)",
		Header: []string{"keep if comp <=", "sort_random time", "uncomp%", "cc inserts"},
	}
	thresholds := []struct {
		num, den int
		label    string
	}{
		{1, 2, "1/2 page (2:1)"},
		{3, 4, "3/4 page (4:3, paper)"},
		{9, 10, "9/10 page"},
		{1, 1, "always keep"},
	}
	var jobs []job
	for _, th := range thresholds {
		cfg := machine.Default(int64(memoryMB) << 20).WithCC()
		cfg.CC.KeepNum, cfg.CC.KeepDen = th.num, th.den
		jobs = append(jobs, job{cfg, &workload.Sort{
			Bytes: int64(memoryMB) << 20 * 3 / 2, Mode: workload.SortRandom, VocabWords: 4000, Seed: seed}})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for i, th := range thresholds {
		st := runs[i]
		t.AddRow(th.label, fmtDur(st.Time),
			fmt.Sprintf("%.1f", 100*st.Comp.UncompressibleFrac()),
			fmt.Sprint(st.CC.Inserts))
	}
	return t, nil
}

// AblationCodec compares compression algorithms (§3: the design "should
// allow different compression algorithms to be used for different types of
// data").
func AblationCodec(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Ablation: codec choice",
		Header: []string{"codec", "time", "ratio", "uncomp%", "cc hit rate"},
	}
	codecs := []string{"lzrw1", "lzss", "rle", "null"}
	var jobs []job
	for _, codec := range codecs {
		cfg := machine.Default(int64(memoryMB) << 20).WithCC()
		cfg.CC.Codec = codec
		jobs = append(jobs, job{cfg, &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for i, codec := range codecs {
		st := runs[i]
		t.AddRow(codec, fmtDur(st.Time),
			fmt.Sprintf("%.2f", st.Comp.Ratio()),
			fmt.Sprintf("%.1f", 100*st.Comp.UncompressibleFrac()),
			fmt.Sprintf("%.2f", st.CC.HitRate()))
	}
	return t, nil
}

// AblationFixedSize reproduces §4.2's motivating argument against the
// original fixed-size compression cache: "on a machine with 8 Mbytes of
// memory available to user processes, setting aside 4 Mbytes for compressed
// pages would cause a 6-Mbyte process to page, ruining its performance. On
// the other hand, even after compression a 12-Mbyte process probably would
// not fit into the 4 Mbytes available." The fixed rows pre-grow the cache to
// a set size that never changes (the original design, kept in the core for
// this study); the adaptive row is the paper's final design.
func AblationFixedSize(memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Ablation: fixed-size compression cache vs adaptive sizing (§4.2)",
		Header: []string{"cache sizing", "small ws time", "large ws time"},
		Note:   "small ws ~= 3/4 of memory (should not page at all); large ws ~= 3x memory.",
	}
	memBytes := int64(memoryMB) << 20
	frames := int(memBytes / 4096)
	smallWS := int32(frames * 3 / 4)
	largeWS := int32(frames * 3)
	variants := []struct {
		label     string
		maxFrames int
	}{
		{"fixed 1/2 of memory", frames / 2},
		{"fixed 1/8 of memory", frames / 8},
		{"adaptive (paper)", 0},
	}
	var jobs []job
	for _, v := range variants {
		for _, ws := range []int32{smallWS, largeWS} {
			cfg := machine.Default(memBytes).WithCC()
			cfg.CC.FixedFrames = v.maxFrames
			jobs = append(jobs, job{cfg, &workload.Thrasher{Pages: ws, Write: true, Passes: 2, Seed: seed}})
		}
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		small, large := runs[2*vi].Time, runs[2*vi+1].Time
		t.AddRow(v.label, fmtDur(small), fmtDur(large))
	}
	return t, nil
}
