package compress

import (
	"encoding/binary"
	"fmt"
)

// BDI is a Base-Delta-Immediate codec in the style of Pekhimenko et al.
// (PACT 2012): memory lines whose values are numerically close to a common
// base — pointer arrays, counters, index tables — are stored as one base
// value plus an array of narrow deltas. The transform is a handful of integer
// subtractions per line, no searching and no history window, which is why the
// hardware proposals run it at cache-access latency. In this simulator it is
// the "hardware-class" ratio/speed point opposite LZSS on the codec axis.
//
// Format: one flag byte (flagCompress/flagCopy), then one scheme byte per
// 64-byte line followed by that scheme's payload:
//
//	bdiZero  — all-zero line, no payload
//	bdiRep8  — eight identical 8-byte words; payload is the word (8 bytes)
//	bdiB8D1  — 8-byte base +  7 × 1-byte deltas (payload 15 bytes)
//	bdiB8D2  — 8-byte base +  7 × 2-byte deltas (payload 22 bytes)
//	bdiB8D4  — 8-byte base +  7 × 4-byte deltas (payload 36 bytes)
//	bdiB4D1  — 4-byte base + 15 × 1-byte deltas (payload 19 bytes)
//	bdiB4D2  — 4-byte base + 15 × 2-byte deltas (payload 34 bytes)
//	bdiB2D1  — 2-byte base + 31 × 1-byte deltas (payload 33 bytes)
//	bdiRaw   — incompressible line stored verbatim (payload 64 bytes)
//	bdiTail  — final partial line (input length not a multiple of 64),
//	           stored verbatim to the end of the block; always last
//
// The base is the line's first word, so its own (zero) delta is not stored.
//
// The base is the line's first word at the scheme's width; deltas are
// two's-complement differences stored little-endian and sign-extended on
// decode. The encoder picks the smallest applicable payload per line. If the
// whole block would not beat len(src)+1 the stored fallback is used, so
// MaxCompressedSize is n+1 like the LZ codecs.
type BDI struct{}

const bdiLine = 64

const (
	bdiZero = iota
	bdiRep8
	bdiB8D1
	bdiB8D2
	bdiB8D4
	bdiB4D1
	bdiB4D2
	bdiB2D1
	bdiRaw
	bdiTail
)

// bdiPayload[s] is the payload length of scheme s (bdiTail is variable).
var bdiPayload = [bdiRaw + 1]int{
	bdiZero: 0, bdiRep8: 8,
	bdiB8D1: 15, bdiB8D2: 22, bdiB8D4: 36,
	bdiB4D1: 19, bdiB4D2: 34, bdiB2D1: 33,
	bdiRaw: bdiLine,
}

// Name reports "bdi".
func (BDI) Name() string { return "bdi" }

// MaxCompressedSize reports n+1 (stored fallback).
func (BDI) MaxCompressedSize(n int) int { return n + 1 }

// Compress appends the BDI-compressed form of src to dst.
func (BDI) Compress(dst, src []byte) []byte {
	base := len(dst)
	dst = append(dst, flagCompress)
	limit := base + len(src) + 1
	for off := 0; off < len(src); off += bdiLine {
		if off+bdiLine > len(src) {
			dst = append(dst, bdiTail)
			dst = append(dst, src[off:]...)
			break
		}
		dst = bdiEncodeLine(dst, src[off:off+bdiLine])
		if len(dst) > limit {
			return storedBlock(dst[:base], src)
		}
	}
	if len(dst) > limit {
		return storedBlock(dst[:base], src)
	}
	return dst
}

// bdiEncodeLine appends the smallest applicable scheme for one full line.
func bdiEncodeLine(dst, line []byte) []byte {
	zero := true
	for _, b := range line {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return append(dst, bdiZero)
	}
	first := binary.LittleEndian.Uint64(line)
	rep := true
	for i := 8; i < bdiLine; i += 8 {
		if binary.LittleEndian.Uint64(line[i:]) != first {
			rep = false
			break
		}
	}
	if rep {
		dst = append(dst, bdiRep8)
		return append(dst, line[:8]...)
	}
	// Try base+delta schemes from smallest payload to largest. The delta
	// buffer is a fixed-size stack array passed by pointer so the encoder
	// allocates nothing.
	var buf [bdiLine]byte
	type try struct{ scheme, width, dw int }
	for _, t := range [...]try{
		{bdiB8D1, 8, 1}, // 15 bytes
		{bdiB4D1, 4, 1}, // 19 bytes
		{bdiB8D2, 8, 2}, // 22 bytes
		{bdiB2D1, 2, 1}, // 33 bytes
		{bdiB4D2, 4, 2}, // 34 bytes
		{bdiB8D4, 8, 4}, // 36 bytes
	} {
		if n, ok := bdiDeltas(&buf, line, t.width, t.dw); ok {
			dst = append(dst, byte(t.scheme))
			dst = append(dst, line[:t.width]...)
			return append(dst, buf[:n]...)
		}
	}
	dst = append(dst, bdiRaw)
	return append(dst, line...)
}

// bdiDeltas writes the little-endian deltas of a line's width-byte words
// from its first word, truncated to dw bytes each, into buf. It reports the
// byte count written and false if any delta does not fit dw bytes as a
// signed value.
func bdiDeltas(buf *[bdiLine]byte, line []byte, width, dw int) (int, bool) {
	n := 0
	baseVal := bdiWord(line, 0, width)
	for i := width; i < bdiLine; i += width {
		d := bdiWord(line, i, width) - baseVal
		// Sign-extended truncation must round-trip.
		sd := int64(d)
		switch dw {
		case 1:
			if sd < -128 || sd > 127 {
				return 0, false
			}
			buf[n] = byte(sd)
			n++
		case 2:
			if sd < -32768 || sd > 32767 {
				return 0, false
			}
			binary.LittleEndian.PutUint16(buf[n:], uint16(sd))
			n += 2
		default: // 4
			if sd < -1<<31 || sd > 1<<31-1 {
				return 0, false
			}
			binary.LittleEndian.PutUint32(buf[n:], uint32(sd))
			n += 4
		}
	}
	return n, true
}

// bdiWord reads the width-byte little-endian word at off, sign-agnostic
// (arithmetic is modular, so unsigned works for both).
func bdiWord(b []byte, off, width int) uint64 {
	switch width {
	case 2:
		return uint64(binary.LittleEndian.Uint16(b[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b[off:]))
	default: // 8
		return binary.LittleEndian.Uint64(b[off:])
	}
}

// Decompress appends the decompressed form of a BDI block to dst.
func (BDI) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrCorrupt)
	}
	flag, body := src[0], src[1:]
	switch flag {
	case flagCopy:
		return append(dst, body...), nil
	case flagCompress:
	default:
		return nil, fmt.Errorf("%w: bad flag byte %#x", ErrCorrupt, flag)
	}
	pos := 0
	for pos < len(body) {
		scheme := int(body[pos])
		pos++
		if scheme == bdiTail {
			return append(dst, body[pos:]...), nil
		}
		if scheme > bdiRaw {
			return nil, fmt.Errorf("%w: bad bdi scheme %d", ErrCorrupt, scheme)
		}
		pl := bdiPayload[scheme]
		if pos+pl > len(body) {
			return nil, fmt.Errorf("%w: truncated bdi line payload", ErrCorrupt)
		}
		payload := body[pos : pos+pl]
		pos += pl
		var err error
		dst, err = bdiDecodeLine(dst, scheme, payload)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// bdiDecodeLine appends one reconstructed 64-byte line.
func bdiDecodeLine(dst []byte, scheme int, payload []byte) ([]byte, error) {
	var line [bdiLine]byte
	switch scheme {
	case bdiZero:
		// line is already zero
	case bdiRep8:
		for i := 0; i < bdiLine; i += 8 {
			copy(line[i:], payload)
		}
	case bdiRaw:
		copy(line[:], payload)
	case bdiB8D1, bdiB8D2, bdiB8D4, bdiB4D1, bdiB4D2, bdiB2D1:
		width, dw := bdiGeometry(scheme)
		baseVal := bdiWord(payload, 0, width)
		bdiPutWord(line[:], 0, width, baseVal)
		dp := width
		for i := width; i < bdiLine; i += width {
			var d int64
			switch dw {
			case 1:
				d = int64(int8(payload[dp]))
			case 2:
				d = int64(int16(binary.LittleEndian.Uint16(payload[dp:])))
			default:
				d = int64(int32(binary.LittleEndian.Uint32(payload[dp:])))
			}
			dp += dw
			bdiPutWord(line[:], i, width, baseVal+uint64(d))
		}
	default:
		return nil, fmt.Errorf("%w: bad bdi scheme %d", ErrCorrupt, scheme)
	}
	return append(dst, line[:]...), nil
}

// bdiGeometry maps a base+delta scheme to its (base width, delta width).
func bdiGeometry(scheme int) (width, dw int) {
	switch scheme {
	case bdiB8D1:
		return 8, 1
	case bdiB8D2:
		return 8, 2
	case bdiB8D4:
		return 8, 4
	case bdiB4D1:
		return 4, 1
	case bdiB4D2:
		return 4, 2
	default: // bdiB2D1
		return 2, 1
	}
}

// bdiPutWord writes the width-byte little-endian word at off (truncating).
func bdiPutWord(b []byte, off, width int, v uint64) {
	switch width {
	case 2:
		binary.LittleEndian.PutUint16(b[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(b[off:], v)
	}
}
