// Package simalloc provides a bump allocator over a simulated address
// space, so workloads can lay out real data structures (arrays, hash
// tables, postings lists) inside simulated pages and access them through
// the paging machinery.
package simalloc

import (
	"fmt"

	"compcache/internal/machine"
)

// Arena allocates regions of a Space from low to high addresses. There is
// no free: workloads build their structures once, like the paper's
// applications do, and the whole space is discarded with the machine.
type Arena struct {
	space *machine.Space
	off   int64
}

// New creates an arena over space.
func New(space *machine.Space) *Arena {
	return &Arena{space: space}
}

// Space returns the underlying address space.
func (a *Arena) Space() *machine.Space { return a.space }

// Used reports how many bytes have been allocated.
func (a *Arena) Used() int64 { return a.off }

// Remaining reports how many bytes are left.
func (a *Arena) Remaining() int64 { return a.space.Size() - a.off }

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// region's byte offset. It panics when the space is exhausted: workloads
// size their segments up front, so exhaustion is a bug in the workload.
func (a *Arena) Alloc(n, align int64) int64 {
	if n < 0 || align <= 0 || align&(align-1) != 0 {
		// Invariant: allocation sizes and alignments are workload constants;
		// a bad one is a programming error, not a runtime fault.
		panic(fmt.Sprintf("simalloc: bad allocation n=%d align=%d", n, align))
	}
	off := (a.off + align - 1) &^ (align - 1)
	if off+n > a.space.Size() {
		panic(fmt.Sprintf("simalloc: out of space: need %d at %d, size %d", n, off, a.space.Size()))
	}
	a.off = off + n
	return off
}

// AllocWords reserves n 8-byte words, 8-aligned.
func (a *Arena) AllocWords(n int64) int64 { return a.Alloc(n*8, 8) }

// AllocPageAligned reserves n bytes starting on a page boundary, which
// workloads use for large arrays so page-level compressibility reflects one
// structure at a time.
func (a *Arena) AllocPageAligned(n int64) int64 {
	return a.Alloc(n, int64(a.space.Machine().Config().PageSize))
}
