// Thrasher: the paper's §5.1 maximum-improvement experiment as a standalone
// program. Sweeps address-space size on a 6 MB machine and prints the four
// Figure 3 curves (std/cc x ro/rw).
//
//	go run ./examples/thrasher            # small sweep
//	go run ./examples/thrasher -paper     # the paper's 2-40 MB sweep
package main

import (
	"flag"
	"fmt"
	"log"

	"compcache"
)

func main() {
	paper := flag.Bool("paper", false, "run the paper-scale sweep (slower)")
	flag.Parse()

	scale := compcache.SmallScale
	if *paper {
		scale = compcache.PaperScale
	}
	opts := compcache.DefaultFig3Options(scale)

	fmt.Printf("thrasher sweep, %d MB user memory (the paper's Figure 3)\n\n", opts.MemoryMB)
	res, err := compcache.Fig3(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.TableA())
	fmt.Println(res.TableB())

	// Narrate the shape, the way §5.1 does.
	var knee, best int
	bestS := 0.0
	for _, p := range res.Points {
		if p.SpeedRW > bestS {
			bestS, best = p.SpeedRW, p.SizeMB
		}
		if knee == 0 && p.SpeedRW > 1.5 {
			knee = p.SizeMB
		}
	}
	fmt.Printf("the cache starts winning around %d MB and peaks at %.1fx near %d MB;\n",
		knee, bestS, best)
	fmt.Println("beyond the fits-compressed knee it still wins on clustered, compressed transfers.")
}
