package fs

import (
	"fmt"
	"sort"
)

// Image is a deep copy of the file system's media: every file's metadata and
// platter blocks, in deterministic (name- and block-sorted) order. It is what
// survives a crash — buffer-cache contents and in-memory staging do not.
// machine.NewFromMedia boots a fresh machine from an Image and runs the swap
// stores' mount-time recovery against it.
type Image struct {
	Files []FileImage
}

// FileImage is one file's on-media state.
type FileImage struct {
	Name   string
	ID     int32
	Base   int64
	Size   int64
	Blocks []BlockImage
}

// BlockImage is one written platter block.
type BlockImage struct {
	Block int64
	Data  []byte
}

// Image captures the current media state. The copy is deep: mutating the
// source file system afterwards does not change the image, so a crashed
// machine's image can outlive the machine.
func (fs *FS) Image() *Image {
	img := &Image{}
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fs.files[name]
		fi := FileImage{Name: f.name, ID: f.id, Base: f.base, Size: f.size}
		blocks := make([]int64, 0, len(f.platter))
		for b := range f.platter {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, b := range blocks {
			data := make([]byte, len(f.platter[b]))
			copy(data, f.platter[b])
			fi.Blocks = append(fi.Blocks, BlockImage{Block: b, Data: data})
		}
		img.Files = append(img.Files, fi)
	}
	return img
}

// LoadImage installs a media image into a freshly created file system — the
// reboot path. It must run before any file is created; the loaded files keep
// their identities and disk extents so raw offsets resolve to the same media
// addresses they did before the crash.
func (fs *FS) LoadImage(img *Image) error {
	if len(fs.files) != 0 {
		return fmt.Errorf("fs: LoadImage on a file system that already has %d file(s)", len(fs.files))
	}
	for i := range img.Files {
		fi := &img.Files[i]
		f := &File{
			fs:      fs,
			name:    fi.Name,
			id:      fi.ID,
			base:    fi.Base,
			size:    fi.Size,
			platter: make(map[int64][]byte, len(fi.Blocks)),
		}
		for _, b := range fi.Blocks {
			if len(b.Data) != fs.opts.BlockSize {
				return fmt.Errorf("fs: image block %d of %q is %d bytes, want the %d-byte block size",
					b.Block, fi.Name, len(b.Data), fs.opts.BlockSize)
			}
			data := make([]byte, len(b.Data))
			copy(data, b.Data)
			f.platter[b.Block] = data
		}
		fs.files[fi.Name] = f
		if fi.ID >= fs.nextID {
			fs.nextID = fi.ID + 1
		}
		if fi.Base >= fs.nextBase {
			fs.nextBase = fi.Base + fileExtent
		}
	}
	return nil
}
