package machine

import (
	"bytes"
	"strings"
	"testing"

	"compcache/internal/fault"
	"compcache/internal/obs"
	"compcache/internal/swap"
)

// drivePhase applies a deterministic mixed read/write pattern to the space.
// Two machines driven through the same phases must end in identical states.
func drivePhase(m *Machine, s *Space, base int) {
	npages := int64(s.Pages())
	for i := 0; i < 4000; i++ {
		page := (int64(base)*7 + int64(i)*31) % npages
		off := page*4096 + int64(i%500)*8
		if i%3 == 0 {
			s.ReadWord(off)
		} else {
			s.WriteWord(off, uint64(base)*1_000_003+uint64(i))
		}
	}
	m.Drain()
}

// snapCase pairs a configuration with the machine options it is built with;
// Restore needs the same options to reproduce the fingerprint.
type snapCase struct {
	cfg  Config
	opts []Option
}

// snapshotConfigs are the machine shapes the byte-identity test covers: the
// baseline direct swap, the durable log-structured swap, and the compression
// cache with observability and an (idle) fault injector attached.
func snapshotConfigs() map[string]snapCase {
	small := Default(40 * 4096) // 40 frames against a 96-page working set
	return map[string]snapCase{
		"direct": {cfg: small},
		"lfs":    {cfg: small.WithLFS(swap.LFSConfig{SegmentBytes: 8 * 4096, Durable: true, Paranoid: true})},
		"cc": {
			cfg:  small.WithCC().WithFaults(fault.Config{Seed: 7}),
			opts: []Option{WithObs(obs.Options{})},
		},
	}
}

// TestSnapshotResumeByteIdentity is the tentpole determinism check: run
// phase 1, snapshot mid-flight, resume both the original machine and a
// restored copy through phase 2, and require byte-identical final snapshots
// and identical statistics.
func TestSnapshotResumeByteIdentity(t *testing.T) {
	for name, tc := range snapshotConfigs() {
		t.Run(name, func(t *testing.T) {
			m1 := newMachine(t, tc.cfg, tc.opts...)
			s1 := m1.NewSegment("snap", 96*4096)
			drivePhase(m1, s1, 1)

			blob, err := m1.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			m2, err := Restore(tc.cfg, blob, tc.opts...)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			s2, ok := m2.SpaceFor("snap")
			if !ok {
				t.Fatal("restored machine lost the segment")
			}

			drivePhase(m1, s1, 2)
			drivePhase(m2, s2, 2)

			b1, err := m1.Snapshot()
			if err != nil {
				t.Fatalf("original re-snapshot: %v", err)
			}
			b2, err := m2.Snapshot()
			if err != nil {
				t.Fatalf("restored re-snapshot: %v", err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("final snapshots differ: %d vs %d bytes", len(b1), len(b2))
			}
			st1, st2 := m1.Stats().String(), m2.Stats().String()
			if st1 != st2 {
				t.Errorf("statistics diverged:\noriginal:\n%s\nrestored:\n%s", st1, st2)
			}
			if m1.Elapsed() != m2.Elapsed() {
				t.Errorf("virtual time diverged: %v vs %v", m1.Elapsed(), m2.Elapsed())
			}
		})
	}
}

// TestSnapshotRestoreIsRerunnable restores the same blob twice and checks the
// two copies agree — Restore must not consume or alias the snapshot.
func TestSnapshotRestoreIsRerunnable(t *testing.T) {
	tc := snapshotConfigs()["cc"]
	m := newMachine(t, tc.cfg, tc.opts...)
	s := m.NewSegment("snap", 96*4096)
	drivePhase(m, s, 3)
	blob, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Restore(tc.cfg, blob, tc.opts...)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Restore(tc.cfg, blob, tc.opts...)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := ra.Snapshot()
	bb, _ := rb.Snapshot()
	if !bytes.Equal(ba, bb) {
		t.Error("two restores of one blob disagree")
	}
	if !bytes.Equal(ba, blob) {
		t.Error("restore-then-snapshot does not round-trip the blob")
	}
}

// TestSnapshotConfigMismatchRejected feeds a snapshot to configurations it
// was not captured under; Restore must refuse rather than mis-simulate.
func TestSnapshotConfigMismatchRejected(t *testing.T) {
	cfg := Default(40 * 4096)
	m := newMachine(t, cfg)
	s := m.NewSegment("snap", 96*4096)
	drivePhase(m, s, 4)
	blob, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]snapCase{
		"memory": {cfg: Default(64 * 4096)},
		"cc":     {cfg: cfg.WithCC()},
		"lfs":    {cfg: cfg.WithLFS(swap.LFSConfig{})},
		"faults": {cfg: cfg.WithFaults(fault.Config{Seed: 1})},
		"obs":    {cfg: cfg, opts: []Option{WithObs(obs.Options{})}},
	}
	for name, c := range bad {
		if _, err := Restore(c.cfg, blob, c.opts...); err == nil {
			t.Errorf("%s mismatch accepted", name)
		}
	}
	if _, err := Restore(cfg, blob[:len(blob)-1]); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

// TestSnapshotDeadMachineRefused crashes a machine and checks Snapshot
// declines — a dead machine's process is gone; reboot from media instead.
func TestSnapshotDeadMachineRefused(t *testing.T) {
	cfg := Default(40 * 4096).
		WithLFS(swap.LFSConfig{SegmentBytes: 8 * 4096, Durable: true}).
		WithFaults(fault.Config{Seed: 1, CrashAtWrite: 1})
	m := newMachine(t, cfg)
	s := m.NewSegment("snap", 96*4096)
	drivePhase(m, s, 5)
	if !m.Introspect().Injector.Crashed() {
		t.Skip("workload finished without a device write")
	}
	if _, err := m.Snapshot(); err == nil {
		t.Error("snapshot of a crashed machine accepted")
	}
}

// TestCrashRebootFromMedia cuts power at an early device write, reboots from
// the torn media image, and verifies the recovered store against the crashed
// machine's in-memory state — the machine-level version of the crash sweep.
func TestCrashRebootFromMedia(t *testing.T) {
	base := Default(40 * 4096)
	cases := map[string]Config{
		"lfs": base.WithLFS(swap.LFSConfig{SegmentBytes: 8 * 4096, Durable: true, Paranoid: true}),
		"cc":  base.WithCC(),
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			cfg.Swap.CommitRecords = true
			cfg.Swap.Paranoid = true
			for _, k := range []uint64{1, 2, 5, 9} {
				crashed := cfg.WithFaults(fault.Config{Seed: 3, CrashAtWrite: k})
				m := newMachine(t, crashed)
				s := m.NewSegment("snap", 96*4096)
				drivePhase(m, s, 6)
				if !m.Introspect().Injector.Crashed() {
					t.Fatalf("crash point %d never fired", k)
				}
				reborn, err := NewFromMedia(cfg, m.FS.Image())
				if err != nil {
					t.Fatalf("crash point %d: reboot: %v", k, err)
				}
				stores, rebornStores := m.Introspect(), reborn.Introspect()
				switch {
				case stores.Clustered != nil:
					err = rebornStores.Clustered.VerifyRecovery(stores.Clustered)
				case stores.LFS != nil:
					err = rebornStores.LFS.VerifyRecovery(stores.LFS)
				default:
					t.Fatal("no recoverable store")
				}
				if err != nil {
					t.Errorf("crash point %d: %v", k, err)
				}
				if rebornStores.Recovery == nil {
					t.Errorf("crash point %d: reboot recorded no recovery report", k)
				}
				if err := reborn.CheckInvariants(); err != nil {
					t.Errorf("crash point %d: %v", k, err)
				}
			}
		})
	}
}

// TestNewFromMediaRequiresImage pins the constructor's contract: a nil image
// is a programming error, and the baseline direct swap has no recoverable
// layout to boot from.
func TestNewFromMediaRequiresImage(t *testing.T) {
	if _, err := NewFromMedia(Default(mb), nil); err == nil {
		t.Error("nil image accepted")
	}
	m := newMachine(t, Default(mb))
	if _, err := NewFromMedia(Default(mb), m.FS.Image()); err == nil ||
		!strings.Contains(err.Error(), "recoverable") {
		t.Errorf("direct-swap boot from media: err = %v, want recoverable-store complaint", err)
	}
}
