// Package wt is a golden fixture for the walltime analyzer.
package wt

import (
	"time"

	wall "time"
)

// bad exercises every banned wall-clock entry point, including through a
// renamed import.
func bad() {
	_ = time.Now()                   // want `wall-clock call time\.Now`
	time.Sleep(time.Second)          // want `wall-clock call time\.Sleep`
	_ = wall.Since(wall.Now())       // want `wall-clock call time\.Since` `wall-clock call time\.Now`
	_ = time.After(time.Millisecond) // want `wall-clock call time\.After`
	t := time.NewTimer(0)            // want `wall-clock call time\.NewTimer`
	tick := time.NewTicker(1)        // want `wall-clock call time\.NewTicker`
	_, _ = t, tick
}

// badValue smuggles the host clock past a call-only check by handing the
// functions around as values.
func badValue() {
	now := time.Now // want `wall-clock func time\.Now referenced as a value`
	_ = now
	stamp(wall.Since) // want `wall-clock func time\.Since referenced as a value`
}

func stamp(func(time.Time) time.Duration) {}

// good uses the time package the way the simulation does: durations as
// units of virtual time, never the host clock.
func good() time.Duration {
	d := 50 * time.Microsecond
	d = d.Round(time.Millisecond)
	return time.Duration(int64(d))
}
