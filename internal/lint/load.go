package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses the packages matched by the given patterns, rooted at the
// module containing dir. Patterns follow the go tool's shape: "./..."
// loads the whole module, "./internal/..." a subtree, and a plain
// directory path loads that one directory. Test files (_test.go) are not
// loaded — the invariants cclint enforces are about simulation code, and
// tests routinely hold golden host-time or shuffled fixtures — and
// "testdata", "vendor" and hidden directories are skipped during pattern
// expansion (naming a testdata directory explicitly still works, which is
// how the golden tests and the fixture demos load).
func Load(dir string, patterns []string) ([]*Package, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !rec {
			dirs[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[filepath.Clean(p)] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var order []string
	for d := range dirs {
		order = append(order, d)
	}
	sort.Strings(order)

	var pkgs []*Package
	for _, d := range order {
		pkg, err := parsePackage(d, root, module)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// parsePackage parses the non-test Go files of one directory. It returns
// (nil, nil) for directories with no Go files.
func parsePackage(dir, root, module string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	pkg := &Package{
		Path:  importPath(dir, root, module),
		Dir:   dir,
		Fset:  token.NewFileSet(),
		Lines: make(map[string][]string),
	}
	for _, n := range names {
		path := filepath.Join(dir, n)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(pkg.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Lines[path] = strings.Split(string(src), "\n")
	}
	return pkg, nil
}

// importPath maps a directory inside the module to its import path.
func importPath(dir, root, module string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return module
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// ParseSource builds a single-file Package directly from source text; the
// golden tests use it to position fixtures at arbitrary import paths
// (e.g. pretending a file lives in compcache/internal/machine).
func ParseSource(path, fakeImportPath string, src []byte) (*Package, error) {
	pkg := &Package{
		Path:  fakeImportPath,
		Dir:   filepath.Dir(path),
		Fset:  token.NewFileSet(),
		Lines: make(map[string][]string),
	}
	f, err := parser.ParseFile(pkg.Fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg.Files = []*ast.File{f}
	pkg.Lines[path] = strings.Split(string(src), "\n")
	return pkg, nil
}
