package vm

import (
	"fmt"

	"compcache/internal/mem"
	"compcache/internal/sim"
	"compcache/internal/snap"
	"compcache/internal/stats"
	"compcache/internal/swap"
)

// SnapshotTo serializes the VM: every segment's page table and the resident
// LRU list as an explicit key sequence (head to tail), so the restored
// replacement order is exact. Frame IDs are recorded as-is — the pool is
// restored verbatim, so they stay valid.
func (v *VM) SnapshotTo(w *snap.Writer) {
	w.Section("vm")
	w.I32(v.nextSeg)
	w.Int(len(v.segs))
	for _, s := range v.segs {
		w.I32(s.ID)
		w.String(s.Name)
		w.I32(s.NPages)
		for i := range s.pages {
			p := &s.pages[i]
			w.U8(uint8(p.State))
			w.I32(int32(p.Frame))
			w.Bool(p.Dirty)
			w.Bool(p.SwapValid)
			w.Bool(p.EverWritten)
			w.Bool(p.Pinned)
			w.I64(int64(p.LastUse))
		}
	}
	w.Int(v.resident)
	for p := v.lruHead; p != nil; p = p.next {
		w.I32(p.Key.Seg)
		w.I32(p.Key.Page)
	}
	w.U64(v.st.Refs)
	w.U64(v.st.Faults)
	w.U64(v.st.ColdFaults)
	w.U64(v.st.CacheHits)
	w.U64(v.st.SwapIns)
	w.U64(v.st.Evictions)
	w.U64(v.st.WriteBacks)
	w.U64(v.st.PinnedSkips)
}

// RestoreFrom rebuilds the VM's segments, page states and LRU list. The VM
// must be freshly constructed (no segments).
func (v *VM) RestoreFrom(r *snap.Reader) error {
	r.Section("vm")
	if len(v.segs) != 0 {
		return fmt.Errorf("vm: restore into a VM that already has %d segment(s)", len(v.segs))
	}
	nextSeg := r.I32()
	nsegs := r.Int()
	if r.Err() == nil && (nsegs < 0 || nsegs > 1<<20) {
		return fmt.Errorf("vm: snapshot claims %d segments", nsegs)
	}
	for si := 0; si < nsegs && r.Err() == nil; si++ {
		id := r.I32()
		name := r.String()
		npages := r.I32()
		if r.Err() != nil {
			break
		}
		if npages <= 0 || npages > 1<<24 {
			return fmt.Errorf("vm: snapshot segment %q claims %d pages", name, npages)
		}
		s := &Segment{ID: id, Name: name, NPages: npages, pages: make([]Page, npages)}
		for i := range s.pages {
			p := &s.pages[i]
			p.Key = swap.PageKey{Seg: id, Page: int32(i)}
			p.State = PageState(r.U8())
			p.Frame = mem.FrameID(r.I32())
			p.Dirty = r.Bool()
			p.SwapValid = r.Bool()
			p.EverWritten = r.Bool()
			p.Pinned = r.Bool()
			p.LastUse = sim.Time(r.I64())
		}
		v.segs = append(v.segs, s)
	}
	resident := r.Int()
	if r.Err() == nil && resident < 0 {
		return fmt.Errorf("vm: snapshot claims %d resident pages", resident)
	}
	segByID := make(map[int32]*Segment, len(v.segs))
	for _, s := range v.segs {
		segByID[s.ID] = s
	}
	var head, tail *Page
	for i := 0; i < resident && r.Err() == nil; i++ {
		seg := r.I32()
		page := r.I32()
		if r.Err() != nil {
			break
		}
		s := segByID[seg]
		if s == nil || page < 0 || page >= s.NPages {
			return fmt.Errorf("vm: snapshot LRU entry %d/%d does not name a page", seg, page)
		}
		p := s.Page(page)
		p.prev = tail
		p.next = nil
		if tail != nil {
			tail.next = p
		} else {
			head = p
		}
		tail = p
	}
	var st stats.VM
	st.Refs = r.U64()
	st.Faults = r.U64()
	st.ColdFaults = r.U64()
	st.CacheHits = r.U64()
	st.SwapIns = r.U64()
	st.Evictions = r.U64()
	st.WriteBacks = r.U64()
	st.PinnedSkips = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	v.nextSeg = nextSeg
	v.lruHead, v.lruTail = head, tail
	v.resident = resident
	v.st = st
	return v.CheckLRU()
}
