package disk

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"compcache/internal/sim"
)

func newTestDisk(t *testing.T) (*Disk, *sim.Clock) {
	t.Helper()
	var clock sim.Clock
	d, err := New(RZ57(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	return d, &clock
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"RZ57 preset", RZ57(), true},
		{"minimal valid", Params{BytesPerSec: 1, SectorSize: 1}, true},
		{"zero everything", Params{}, false},
		{"zero bandwidth", Params{BytesPerSec: 0, SectorSize: 512}, false},
		{"negative bandwidth", Params{BytesPerSec: -1e6, SectorSize: 512}, false},
		{"NaN bandwidth", Params{BytesPerSec: math.NaN(), SectorSize: 512}, false},
		{"Inf bandwidth", Params{BytesPerSec: math.Inf(1), SectorSize: 512}, false},
		{"zero sector", Params{BytesPerSec: 1e6, SectorSize: 0}, false},
		{"negative sector", Params{BytesPerSec: 1e6, SectorSize: -512}, false},
		{"sector at cap", Params{BytesPerSec: 1e6, SectorSize: 1 << 30}, true},
		{"sector past cap", Params{BytesPerSec: 1e6, SectorSize: 1<<30 + 1}, false},
		{"sector overflow-adjacent", Params{BytesPerSec: 1e6, SectorSize: math.MaxInt}, false},
		{"negative seek", Params{BytesPerSec: 1e6, SectorSize: 512, SeekAvg: -time.Millisecond}, false},
		{"negative rotation", Params{BytesPerSec: 1e6, SectorSize: 512, RotLatency: -time.Nanosecond}, false},
		{"negative per-op", Params{BytesPerSec: 1e6, SectorSize: 512, PerOp: -time.Hour}, false},
		{"zero latencies valid", Params{BytesPerSec: 1e6, SectorSize: 512}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	if _, err := New(Params{}, &sim.Clock{}); err == nil {
		t.Error("New accepted invalid params")
	}
}

func TestTransferTimeRoundsToSectors(t *testing.T) {
	p := Params{BytesPerSec: 1e6, SectorSize: 512}
	if got, want := p.TransferTime(1), p.TransferTime(512); got != want {
		t.Errorf("1 byte should cost a full sector: %v vs %v", got, want)
	}
	if got, want := p.TransferTime(513), p.TransferTime(1024); got != want {
		t.Errorf("513 bytes should cost two sectors: %v vs %v", got, want)
	}
	if p.TransferTime(0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
}

func TestReadAdvancesClock(t *testing.T) {
	d, clock := newTestDisk(t)
	d.Read(0, 4096)
	p := RZ57()
	want := p.PerOp + p.SeekAvg + p.RotLatency + p.TransferTime(4096)
	if got := time.Duration(clock.Now()); got != want {
		t.Fatalf("first read took %v, want %v", got, want)
	}
	if d.Stats().Reads != 1 || d.Stats().BytesRead != 4096 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestSequentialAccessSkipsSeek(t *testing.T) {
	d, clock := newTestDisk(t)
	d.Read(0, 4096)
	t0 := clock.Now()
	d.Read(4096, 4096) // starts exactly where the last one ended
	p := RZ57()
	want := p.PerOp + p.TransferTime(4096)
	if got := clock.Elapsed(t0); got != want {
		t.Fatalf("sequential read took %v, want %v (no seek)", got, want)
	}
	if d.Stats().Seeks != 1 {
		t.Fatalf("seeks = %d, want 1", d.Stats().Seeks)
	}
}

func TestNonSequentialPaysSeek(t *testing.T) {
	d, _ := newTestDisk(t)
	d.Read(0, 4096)
	d.Read(1<<20, 4096)
	if d.Stats().Seeks != 2 {
		t.Fatalf("seeks = %d, want 2", d.Stats().Seeks)
	}
}

func TestWriteAsyncDoesNotBlock(t *testing.T) {
	d, clock := newTestDisk(t)
	done, err := d.WriteAsync(0, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatalf("async write advanced the clock to %v", clock.Now())
	}
	if done <= 0 {
		t.Fatal("async completion time should be positive")
	}
	if d.BusyUntil() != done {
		t.Fatalf("BusyUntil = %v, want %v", d.BusyUntil(), done)
	}
	d.Drain()
	if clock.Now() != done {
		t.Fatalf("Drain advanced clock to %v, want %v", clock.Now(), done)
	}
}

func TestSyncReadQueuesBehindAsyncWrite(t *testing.T) {
	d, clock := newTestDisk(t)
	wDone, _ := d.WriteAsync(0, 1<<20) // a long write
	d.Read(1<<24, 4096)
	if clock.Now() <= wDone {
		t.Fatalf("read completed at %v, should be after the pending write at %v", clock.Now(), wDone)
	}
}

func TestAsyncSequentialChain(t *testing.T) {
	d, _ := newTestDisk(t)
	d.WriteAsync(0, 32*1024)
	d.WriteAsync(32*1024, 32*1024)
	d.WriteAsync(64*1024, 32*1024)
	if d.Stats().Seeks != 1 {
		t.Fatalf("sequential async chain paid %d seeks, want 1", d.Stats().Seeks)
	}
}

func TestIdleDiskStartsImmediately(t *testing.T) {
	d, clock := newTestDisk(t)
	d.Read(0, 512)
	first := clock.Now()
	clock.Advance(time.Second) // idle period
	d.Read(0, 512)
	p := RZ57()
	// Second read at same address is non-sequential (next is 512), pays seek,
	// but starts at once because the device is idle.
	want := first.Add(time.Second + p.PerOp + p.SeekAvg + p.RotLatency + p.TransferTime(512))
	if clock.Now() != want {
		t.Fatalf("second read done at %v, want %v", clock.Now(), want)
	}
}

// Property: the busy timeline never moves backward and the clock never
// overtakes it for synchronous operations.
func TestBusyTimelineMonotoneProperty(t *testing.T) {
	f := func(ops []struct {
		Addr  uint16
		Size  uint8
		Async bool
	}) bool {
		var clock sim.Clock
		d, err := New(RZ57(), &clock)
		if err != nil {
			return false
		}
		prevBusy := sim.Time(0)
		for _, op := range ops {
			n := int(op.Size)%4096 + 1
			addr := int64(op.Addr) * 512
			if op.Async {
				d.WriteAsync(addr, n)
			} else {
				d.Read(addr, n)
			}
			if d.BusyUntil() < prevBusy {
				return false
			}
			if clock.Now() > d.BusyUntil() {
				return false
			}
			prevBusy = d.BusyUntil()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	d, _ := newTestDisk(t)
	d.Read(0, 4096)
	d.Write(4096, 4096)
	p := RZ57()
	want := 2*p.PerOp + p.SeekAvg + p.RotLatency + 2*p.TransferTime(4096)
	if got := d.Stats().BusyTime; got != want {
		t.Fatalf("BusyTime = %v, want %v", got, want)
	}
}

func TestSequentialAfterIdlePaysRotation(t *testing.T) {
	d, clock := newTestDisk(t)
	d.Read(0, 4096)
	// Host does work between faults: the device goes idle and the next
	// sequential sector rotates past.
	clock.Advance(2 * time.Millisecond)
	t0 := clock.Now()
	d.Read(4096, 4096)
	p := RZ57()
	want := p.PerOp + p.RotLatency + p.TransferTime(4096)
	if got := clock.Elapsed(t0); got != want {
		t.Fatalf("idle sequential read took %v, want %v (rotation miss, no seek)", got, want)
	}
	if d.Stats().Seeks != 1 {
		t.Fatalf("seeks = %d, want 1 (only the first op)", d.Stats().Seeks)
	}
}

func TestQueuedSequentialStreams(t *testing.T) {
	d, _ := newTestDisk(t)
	// Three async writes queued back-to-back with no idle gap: only the
	// first pays positioning; the rest stream.
	d.WriteAsync(0, 4096)
	t1 := d.BusyUntil()
	d.WriteAsync(4096, 4096)
	p := RZ57()
	if got := d.BusyUntil().Sub(t1); got != p.PerOp+p.TransferTime(4096) {
		t.Fatalf("queued sequential write took %v, want streaming %v", got, p.PerOp+p.TransferTime(4096))
	}
}
