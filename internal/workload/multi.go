package workload

import (
	"fmt"

	"compcache/internal/machine"
)

// Multi runs several workloads as concurrent processes on one machine,
// interleaved in fixed quanta of simulated references. The paper's memory
// trade is defined over "the collective working set of active processes";
// Multi is how that situation is created: each member gets its own segments,
// and the three-way policy arbitrates the shared frames among all of them.
//
// Scheduling is deterministic round-robin. Each member runs in its own
// goroutine, but a baton guarantees exactly one touches the machine at a
// time, so the simulation stays single-threaded and reproducible.
type Multi struct {
	// Workloads are the member processes.
	Workloads []Workload

	// QuantumRefs is the context-switch interval in simulated references
	// (default 2000 — a few simulated milliseconds).
	QuantumRefs int
}

// Name implements Workload.
func (mw *Multi) Name() string {
	name := "multi"
	for _, w := range mw.Workloads {
		name += "+" + w.Name()
	}
	return name
}

// mpScheduler hands a baton around the member goroutines.
type mpScheduler struct {
	turn    []chan struct{}
	done    []bool
	cur     int
	refs    int
	quantum int
}

// tick is installed as the VM trace hook; it yields the baton when the
// current process's quantum expires.
func (s *mpScheduler) tick(seg, page int32, write bool) {
	s.refs++
	if s.refs >= s.quantum {
		s.refs = 0
		s.yield()
	}
}

// yield passes the baton to the next unfinished process and blocks until it
// comes back.
func (s *mpScheduler) yield() {
	next := s.next(s.cur)
	if next == s.cur || next < 0 {
		return // nobody else runnable
	}
	me := s.cur
	s.cur = next
	s.turn[next] <- struct{}{}
	<-s.turn[me]
}

// finish marks the current process done and passes the baton on for good.
func (s *mpScheduler) finish(idx int) {
	s.done[idx] = true
	if next := s.next(idx); next >= 0 && next != idx {
		s.cur = next
		s.turn[next] <- struct{}{}
	}
}

// next returns the next unfinished index after from (round-robin), or -1.
func (s *mpScheduler) next(from int) int {
	n := len(s.turn)
	for i := 1; i <= n; i++ {
		idx := (from + i) % n
		if !s.done[idx] {
			return idx
		}
	}
	return -1
}

// Run implements Workload.
func (mw *Multi) Run(m *machine.Machine) error {
	if len(mw.Workloads) == 0 {
		return fmt.Errorf("multi: no workloads")
	}
	quantum := mw.QuantumRefs
	if quantum <= 0 {
		quantum = 2000
	}
	m.FreezeStart()

	sched := &mpScheduler{
		turn:    make([]chan struct{}, len(mw.Workloads)),
		done:    make([]bool, len(mw.Workloads)),
		quantum: quantum,
	}
	for i := range sched.turn {
		sched.turn[i] = make(chan struct{}, 1)
	}
	m.VM.SetTraceHook(sched.tick)
	defer m.VM.SetTraceHook(nil)

	errs := make([]error, len(mw.Workloads))
	finished := make(chan int, len(mw.Workloads))
	for i, w := range mw.Workloads {
		i, w := i, w
		go func() {
			<-sched.turn[i] // wait for the baton
			errs[i] = w.Run(m)
			sched.finish(i)
			finished <- i
		}()
	}
	sched.cur = 0
	sched.turn[0] <- struct{}{}
	for range mw.Workloads {
		<-finished
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("multi: %s: %w", mw.Workloads[i].Name(), err)
		}
	}
	m.Drain()
	return nil
}
