package compress

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func TestStreamRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mixed := make([]byte, 40000)
	rng.Read(mixed[:20000])
	copy(mixed[20000:], bytes.Repeat([]byte("compressible text "), 1200)[:20000])
	for _, c := range allCodecs(t) {
		for _, blockSize := range []int{512, 4096, 10000} {
			var compressed bytes.Buffer
			in, out, err := CompressStream(c, blockSize, bytes.NewReader(mixed), &compressed)
			if err != nil {
				t.Fatalf("%s/%d: %v", c.Name(), blockSize, err)
			}
			if in != int64(len(mixed)) || out != int64(compressed.Len()) {
				t.Fatalf("%s/%d: counts in=%d out=%d buf=%d", c.Name(), blockSize, in, out, compressed.Len())
			}
			var plain bytes.Buffer
			_, n, err := DecompressStream(c, &compressed, &plain)
			if err != nil {
				t.Fatalf("%s/%d: decompress: %v", c.Name(), blockSize, err)
			}
			if n != int64(len(mixed)) || !bytes.Equal(plain.Bytes(), mixed) {
				t.Fatalf("%s/%d: stream round trip mismatch", c.Name(), blockSize)
			}
		}
	}
}

// TestStreamMaxBlockRoundTrip is a regression test for the framing asymmetry
// where CompressStream happily wrote blocks up to the codec's worst case for
// a StreamMaxBlock input but DecompressStream rejected lengths above
// StreamMaxBlock+streamLenBytes. Incompressible data at exactly the maximum
// block size forces every codec into its stored fallback — the Null codec's
// StreamMaxBlock+4 block is the case the old bound refused to read back.
func TestStreamMaxBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, StreamMaxBlock)
	rng.Read(src)
	for _, c := range allCodecs(t) {
		var compressed bytes.Buffer
		if _, _, err := CompressStream(c, StreamMaxBlock, bytes.NewReader(src), &compressed); err != nil {
			t.Fatalf("%s: compress: %v", c.Name(), err)
		}
		var plain bytes.Buffer
		if _, _, err := DecompressStream(c, &compressed, &plain); err != nil {
			t.Fatalf("%s: decompress: %v", c.Name(), err)
		}
		if !bytes.Equal(plain.Bytes(), src) {
			t.Fatalf("%s: max-block stream round trip mismatch", c.Name())
		}
	}
}

func TestStreamEmptyInput(t *testing.T) {
	var c LZRW1
	var compressed, plain bytes.Buffer
	if _, _, err := CompressStream(c, 4096, bytes.NewReader(nil), &compressed); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() != 0 {
		t.Fatalf("empty input produced %d bytes", compressed.Len())
	}
	if _, _, err := DecompressStream(c, &compressed, &plain); err != nil {
		t.Fatal(err)
	}
}

func TestStreamBadGeometry(t *testing.T) {
	var c LZRW1
	if _, _, err := CompressStream(c, 0, bytes.NewReader(nil), io.Discard); err == nil {
		t.Error("block size 0 accepted")
	}
	if _, _, err := CompressStream(c, StreamMaxBlock+1, bytes.NewReader(nil), io.Discard); err == nil {
		t.Error("oversize block accepted")
	}
}

func TestStreamCorruption(t *testing.T) {
	var c LZRW1
	var compressed bytes.Buffer
	src := []byte(strings.Repeat("data data data ", 500))
	if _, _, err := CompressStream(c, 1024, bytes.NewReader(src), &compressed); err != nil {
		t.Fatal(err)
	}
	// Truncated header.
	if _, _, err := DecompressStream(c, bytes.NewReader(compressed.Bytes()[:compressed.Len()-1]), io.Discard); err == nil {
		t.Error("truncated stream accepted")
	}
	// Zero-length block header.
	if _, _, err := DecompressStream(c, bytes.NewReader([]byte{0, 0, 0}), io.Discard); err == nil {
		t.Error("zero-length block accepted")
	}
	// Length larger than the stream bound.
	if _, _, err := DecompressStream(c, bytes.NewReader([]byte{0xFF, 0xFF, 0xFF}), io.Discard); err == nil {
		t.Error("implausible block length accepted")
	}
}

func TestAnalyze(t *testing.T) {
	var c LZRW1
	// Half compressible, half random blocks.
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 8*4096)
	for b := 0; b < 8; b++ {
		blk := src[b*4096 : (b+1)*4096]
		if b%2 == 0 {
			copy(blk, bytes.Repeat([]byte{byte(b)}, 4096))
		} else {
			rng.Read(blk)
		}
	}
	rep, err := Analyze(c, 4096, 3, 4, bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 8 || rep.BytesIn != 8*4096 {
		t.Fatalf("report %+v", rep)
	}
	if rep.FailThreshold != 4 {
		t.Fatalf("FailThreshold = %d, want 4 (the random blocks)", rep.FailThreshold)
	}
	if rep.FailFrac() != 0.5 {
		t.Fatalf("FailFrac = %v", rep.FailFrac())
	}
	if rep.Ratio() >= 1 || rep.Ratio() <= 0.3 {
		t.Fatalf("Ratio = %v, want between 0.3 and 1 for the mix", rep.Ratio())
	}
	if _, err := Analyze(c, 0, 3, 4, bytes.NewReader(nil)); err == nil {
		t.Error("bad geometry accepted")
	}
	empty, err := Analyze(c, 4096, 3, 4, bytes.NewReader(nil))
	if err != nil || empty.Ratio() != 1 || empty.FailFrac() != 0 {
		t.Errorf("empty analyze: %+v err %v", empty, err)
	}
}
