package compress

import "fmt"

// LZRW1 implements Ross Williams's LZRW1 algorithm ("An Extremely Fast
// Ziv-Lempel Data Compression Algorithm", DCC 1991), the codec the paper's
// compression cache uses. It is a single-pass LZ77 variant tuned for speed:
//
//   - A 4096-entry hash table maps the hash of the next three input bytes to
//     the most recent position where that hash was seen. There is no
//     collision chain and no verification beyond a direct byte comparison,
//     so the table is a heuristic, not an index.
//   - Output is a sequence of 16-item groups. Each group is preceded by a
//     16-bit little-endian control word holding one bit per item, LSB first:
//     0 = literal byte, 1 = copy item.
//   - A copy item is two bytes: the first byte's high nibble holds bits 8–11
//     of the match offset and its low nibble holds length-3; the second byte
//     holds bits 0–7 of the offset. Offsets are 1–4095 back from the current
//     output position; lengths are 3–18 bytes.
//   - A block begins with a one-byte flag: flagCompress for compressed data
//     or flagCopy for stored data. The stored fallback is used whenever
//     compression would expand the block, so worst-case expansion is exactly
//     one byte. (Williams's C original used a four-byte flag word; one byte
//     carries the same information and matters at page granularity.)
//
// Decompression needs no hash table and runs roughly twice as fast as
// compression, the asymmetry Figure 1 of the paper assumes.
type LZRW1 struct{}

const (
	flagCompress = 0x00
	flagCopy     = 0x01

	lzMinMatch = 3
	lzMaxMatch = 18   // 4-bit length field encodes len-3 in 0..15
	lzMaxOff   = 4095 // 12-bit offset
	lzHashSize = 4096
)

// Name reports "lzrw1".
func (LZRW1) Name() string { return "lzrw1" }

// MaxCompressedSize reports n+1: the stored fallback adds only the flag byte.
func (LZRW1) MaxCompressedSize(n int) int { return n + 1 }

// lzHash mixes three bytes into a table index. This is Williams's original
// multiplicative hash.
func lzHash(b0, b1, b2 byte) uint32 {
	return (40543 * ((((uint32(b0) << 4) ^ uint32(b1)) << 4) ^ uint32(b2)) >> 4) & (lzHashSize - 1)
}

// Compress appends the LZRW1-compressed form of src to dst.
func (LZRW1) Compress(dst, src []byte) []byte {
	base := len(dst)
	if len(src) == 0 {
		return append(dst, flagCompress)
	}
	// Budget: if compressed output reaches len(src)+1 we are not winning;
	// fall back to a stored block of exactly len(src)+1 bytes.
	limit := base + len(src) + 1

	var hash [lzHashSize]int32
	for i := range hash {
		hash[i] = -1
	}

	dst = append(dst, flagCompress)
	// Reserve space for the first control word.
	ctrlPos := len(dst)
	dst = append(dst, 0, 0)
	var control uint16
	controlBits := 0

	flushControl := func() {
		dst[ctrlPos] = byte(control)
		dst[ctrlPos+1] = byte(control >> 8)
	}

	pos := 0
	for pos < len(src) {
		if len(dst)+2 > limit {
			return storedBlock(dst[:base], src)
		}
		emitted := false
		if pos+lzMinMatch <= len(src) {
			h := lzHash(src[pos], src[pos+1], src[pos+2])
			cand := hash[h]
			hash[h] = int32(pos)
			if cand >= 0 {
				off := pos - int(cand)
				if off >= 1 && off <= lzMaxOff &&
					src[cand] == src[pos] && src[cand+1] == src[pos+1] && src[cand+2] == src[pos+2] {
					// Extend the match. The source region may overlap the
					// current position (off < length), which reproduces
					// earlier output bytes exactly as LZ77 intends.
					maxLen := lzMaxMatch
					if rem := len(src) - pos; rem < maxLen {
						maxLen = rem
					}
					length := lzMinMatch
					for length < maxLen && src[int(cand)+length] == src[pos+length] {
						length++
					}
					dst = append(dst,
						byte((off>>4)&0xF0)|byte(length-lzMinMatch),
						byte(off))
					pos += length
					control = control>>1 | 0x8000
					controlBits++
					emitted = true
				}
			}
		}
		if !emitted {
			dst = append(dst, src[pos])
			pos++
			control >>= 1
			controlBits++
		}
		if controlBits == 16 {
			flushControl()
			if pos < len(src) {
				if len(dst)+2 > limit {
					return storedBlock(dst[:base], src)
				}
				ctrlPos = len(dst)
				dst = append(dst, 0, 0)
			}
			control = 0
			controlBits = 0
		}
	}
	if controlBits > 0 {
		control >>= 16 - uint(controlBits)
		flushControl()
	} else if ctrlPos == len(dst)-2 {
		// A control word was reserved but no items followed; drop it.
		dst = dst[:len(dst)-2]
	}
	if len(dst) > limit {
		return storedBlock(dst[:base], src)
	}
	return dst
}

func storedBlock(dst, src []byte) []byte {
	dst = append(dst, flagCopy)
	return append(dst, src...)
}

// Decompress appends the decompressed form of an LZRW1 block to dst.
func (LZRW1) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrCorrupt)
	}
	flag, body := src[0], src[1:]
	switch flag {
	case flagCopy:
		return append(dst, body...), nil
	case flagCompress:
	default:
		return nil, fmt.Errorf("%w: bad flag byte %#x", ErrCorrupt, flag)
	}
	base := len(dst)
	pos := 0
	for pos < len(body) {
		if pos+2 > len(body) {
			return nil, fmt.Errorf("%w: truncated control word", ErrCorrupt)
		}
		control := uint16(body[pos]) | uint16(body[pos+1])<<8
		pos += 2
		for bit := 0; bit < 16 && pos < len(body); bit++ {
			if control&1 == 1 {
				if pos+2 > len(body) {
					return nil, fmt.Errorf("%w: truncated copy item", ErrCorrupt)
				}
				b0, b1 := body[pos], body[pos+1]
				pos += 2
				off := int(b0&0xF0)<<4 | int(b1)
				length := int(b0&0x0F) + lzMinMatch
				start := len(dst) - off
				if off == 0 || start < base {
					return nil, fmt.Errorf("%w: copy offset %d out of range", ErrCorrupt, off)
				}
				// Byte-at-a-time copy: source and destination may overlap
				// when off < length.
				for i := 0; i < length; i++ {
					dst = append(dst, dst[start+i])
				}
			} else {
				dst = append(dst, body[pos])
				pos++
			}
			control >>= 1
		}
	}
	return dst, nil
}
