// Package workload re-implements the applications the paper's §5 evaluates:
//
//   - thrasher — the contrived VM-thrashing program of §5.1 that bounds the
//     maximum possible improvement (Figure 3);
//   - compare — Lopresti's dynamic-programming file differencer, the paper's
//     best case (2.68x speedup, pages compress ~3:1);
//   - isca — Dubnicki's adjustable-block-size coherent-cache simulator,
//     CPU- and memory-intensive (1.60x);
//   - sort — quicksort over ~12 MB of words, in "partial" (nearly sorted,
//     repetitive, 1.30x) and "random" (shuffled, 98% uncompressible, 0.91x)
//     variants;
//   - gold — the Gold Mailer's main-memory inverted-index engine, in
//     create/cold/warm phases (0.90x/0.80x/0.73x).
//
// Each workload allocates its data inside a simulated address space, so the
// compression ratios and fault patterns the machine observes are real
// properties of real bytes, not assumptions.
package workload

import (
	"context"
	"fmt"

	"compcache/internal/machine"
	"compcache/internal/runner"
	"compcache/internal/stats"
)

// Workload is a program that runs against a simulated machine. Run should
// call m.MarkStart after its setup phase so Elapsed measures the benchmarked
// portion, and m.Drain before returning so queued background writes are
// charged.
type Workload interface {
	// Name is a short identifier ("thrasher", "compare", ...).
	Name() string

	// Run executes the workload to completion on m.
	Run(m *machine.Machine) error
}

// Measure builds a machine from cfg (passing any machine options through),
// runs w, and returns the final stats.
func Measure(cfg machine.Config, w Workload, opts ...machine.Option) (stats.Run, error) {
	_, st, err := MeasureMachine(cfg, w, opts...)
	return st, err
}

// MeasureMachine is Measure for callers that also need the machine after the
// run — typically to read its event ring (Machine.Events) or metrics
// snapshot, which stats.Run does not carry. The machine is returned even on
// error (nil only if construction itself failed), so a died run's trace can
// still be inspected.
func MeasureMachine(cfg machine.Config, w Workload, opts ...machine.Option) (*machine.Machine, stats.Run, error) {
	m, err := machine.New(cfg, opts...)
	if err != nil {
		return nil, stats.Run{}, err
	}
	if err := w.Run(m); err != nil {
		return m, stats.Run{}, fmt.Errorf("workload %s: %w", w.Name(), err)
	}
	// A paging failure inside the run sticks to the machine rather than
	// aborting mid-workload; surface it here so a died run reports its typed
	// error (fault.IsUnrecoverable distinguishes data loss from bugs).
	if err := m.Err(); err != nil {
		return m, stats.Run{}, fmt.Errorf("workload %s: %w", w.Name(), err)
	}
	if err := m.CheckInvariants(); err != nil {
		return m, stats.Run{}, fmt.Errorf("workload %s: post-run invariant violation: %w", w.Name(), err)
	}
	return m, m.Stats(), nil
}

// Comparison is the outcome of running one workload on the baseline machine
// and on the compression-cache machine, the shape of one Table 1 row.
type Comparison struct {
	Workload string
	Std      stats.Run
	CC       stats.Run
}

// Speedup reports Std time / CC time (>1 means the compression cache wins).
func (c Comparison) Speedup() float64 {
	if c.CC.Time == 0 {
		return 0
	}
	return float64(c.Std.Time) / float64(c.CC.Time)
}

// RunBoth runs w under both configurations. cc must have the compression
// cache enabled; base must not. Options apply to both machines.
func RunBoth(base, cc machine.Config, w Workload, opts ...machine.Option) (Comparison, error) {
	return RunBothN(context.Background(), base, cc, w, 1, opts...)
}

// RunBothN is RunBoth with the two measurements fanned out across up to
// workers goroutines (0 means one per core): the baseline and
// compression-cache runs are independent machines with their own virtual
// clocks, so they can run concurrently. Each run gets its own Clone of w,
// which keeps the runs race-free and makes the result identical to a serial
// RunBoth.
func RunBothN(ctx context.Context, base, cc machine.Config, w Workload, workers int, opts ...machine.Option) (Comparison, error) {
	if base.CC.Enabled || !cc.CC.Enabled {
		return Comparison{}, fmt.Errorf("workload: RunBoth needs a baseline and a CC configuration, in that order")
	}
	cfgs := [2]machine.Config{base, cc}
	runs, err := runner.Map(ctx, runner.Parallelism(workers), len(cfgs),
		func(_ context.Context, i int) (stats.Run, error) {
			return Measure(cfgs[i], Clone(w), opts...)
		})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Workload: w.Name(), Std: runs[0], CC: runs[1]}, nil
}
