package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// PageRef is one page-granularity VM reference, the unit the machine's
// tracing hook reports. (Ref, in this package's generators, is
// word-granularity input for the cache-simulator workload; PageRef is
// output from the paging simulator.)
type PageRef struct {
	Seg   int32
	Page  int32
	Write bool
}

// Recorder accumulates page references; plug its Note method into the VM's
// trace hook. The zero Recorder is ready to use.
type Recorder struct {
	Refs []PageRef
}

// Note records one reference (the vm trace-hook signature).
func (r *Recorder) Note(seg, page int32, write bool) {
	r.Refs = append(r.Refs, PageRef{Seg: seg, Page: page, Write: write})
}

// traceMagic identifies the on-disk format.
var traceMagic = [4]byte{'c', 'c', 't', '1'}

// WriteTo serializes the trace: a magic header, a count, then 9 bytes per
// reference (segment, page, write flag), little-endian.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return n, err
	}
	n += 4
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(r.Refs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += 8
	var rec [9]byte
	for _, ref := range r.Refs {
		binary.LittleEndian.PutUint32(rec[0:], uint32(ref.Seg))
		binary.LittleEndian.PutUint32(rec[4:], uint32(ref.Page))
		rec[8] = 0
		if ref.Write {
			rec[8] = 1
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n += 9
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) ([]PageRef, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxTrace = 1 << 28 // sanity bound: ~268M references
	if count > maxTrace {
		return nil, fmt.Errorf("trace: implausible reference count %d", count)
	}
	refs := make([]PageRef, 0, count)
	var rec [9]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at reference %d: %w", i, err)
		}
		refs = append(refs, PageRef{
			Seg:   int32(binary.LittleEndian.Uint32(rec[0:])),
			Page:  int32(binary.LittleEndian.Uint32(rec[4:])),
			Write: rec[8] != 0,
		})
	}
	return refs, nil
}
