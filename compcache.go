// Package compcache is a from-scratch reproduction of the system described
// in Fred Douglis, "The Compression Cache: Using On-line Compression to
// Extend Physical Memory", Winter 1993 USENIX Conference.
//
// The compression cache is a level of the memory hierarchy between
// uncompressed virtual-memory pages and the backing store: least-recently
// used pages are compressed (with LZRW1) and retained in a variable-size
// circular buffer of page frames; pages that still do not fit are written to
// the backing store in compressed, fragment-padded, clustered form. Whether
// this wins depends on the ratio of compression speed to I/O speed, the
// compressibility of the data, and the application's access pattern — the
// three axes this package's experiments sweep.
//
// Because the original ran inside the Sprite kernel on a DECstation 5000/200
// and a Go process cannot observe its own paging truthfully, the
// reproduction is built on a deterministic simulated machine with a virtual
// clock: a frame pool, an RZ57-class disk model, a Sprite-like block file
// system, exact-LRU virtual memory, and the compression cache itself.
// Workloads place real bytes in simulated pages, so compression ratios are
// measured, not assumed.
//
// # Quick start
//
//	cfg := compcache.Default(6 << 20).WithCC() // 6 MB of memory, cache on
//	m, err := compcache.New(cfg)
//	if err != nil { ... }
//	heap := m.NewSegment("heap", 24<<20) // a 24 MB address space
//	heap.WriteWord(0, 42)                // touch pages; paging just happens
//	fmt.Println(m.Stats())
//
// Ready-made workloads (the paper's applications) and experiment harnesses
// that regenerate every table and figure live here too, all registered
// behind one interface:
//
//	res, _ := compcache.Table1(compcache.DefaultTable1Options(compcache.SmallScale))
//	fmt.Println(res.Table())
//
//	for _, e := range compcache.Experiments() { // or LookupExperiment("table1")
//		res, _ := e.Run(ctx, compcache.DefaultExperimentOptions(compcache.SmallScale))
//		for _, t := range res.Tables() { fmt.Println(t) }
//	}
//
// The cmd/ccbench command prints all of them (-list, -run). To watch a
// machine work, attach the deterministic observability layer and read the
// virtual-time event stream and metrics back:
//
//	m, _ := compcache.New(cfg, compcache.WithObs(compcache.ObsOptions{}))
//	... run a workload ...
//	events, metrics := m.Events(), m.Metrics()
//
// The cmd/cctrace command exposes the same as -events/-timeline/-summary.
package compcache

import (
	"context"

	"compcache/internal/compress"
	"compcache/internal/disk"
	"compcache/internal/exp"
	"compcache/internal/machine"
	"compcache/internal/model"
	"compcache/internal/netdev"
	"compcache/internal/obs"
	"compcache/internal/runner"
	"compcache/internal/stats"
	"compcache/internal/trace"
	"compcache/internal/workload"
)

// Core machine types.
type (
	// Config describes a simulated machine; see Default and WithCC.
	Config = machine.Config
	// CCConfig is the compression-cache section of Config.
	CCConfig = machine.CCConfig
	// Machine is a simulated computer running in virtual time.
	Machine = machine.Machine
	// Space is a byte-addressable simulated address space.
	Space = machine.Space
	// Stats is the statistics block a run produces.
	Stats = stats.Run
	// DiskParams parameterizes the backing-store device.
	DiskParams = disk.Params
	// NetParams parameterizes a network page server (the diskless mobile
	// scenario of the paper's introduction).
	NetParams = netdev.Params
	// Codec is a page-compression algorithm.
	Codec = compress.Codec
	// PageRef is one recorded page reference.
	PageRef = trace.PageRef
	// TraceRecorder captures page references via Machine.VM.SetTraceHook.
	TraceRecorder = trace.Recorder
)

// Workload types (the paper's §5 applications).
type (
	// Workload is a program that runs against a Machine.
	Workload = workload.Workload
	// Thrasher is the §5.1 maximum-improvement probe.
	Thrasher = workload.Thrasher
	// Compare is the dynamic-programming file differencer (2.68x in the paper).
	Compare = workload.Compare
	// CacheSim is the coherent-cache simulator, "isca" (1.60x).
	CacheSim = workload.CacheSim
	// Sort is the quicksort benchmark; see SortPartial and SortRandom.
	Sort = workload.Sort
	// Gold is the inverted-index main-memory database; see GoldCreate,
	// GoldCold and GoldWarm.
	Gold = workload.Gold
	// FileScan cyclically reads a large file through the file system (the
	// §6 compressed-file-cache scenario).
	FileScan = workload.FileScan
	// Replay re-executes a recorded page-reference trace.
	Replay = workload.Replay
	// Multi runs several workloads as interleaved processes on one machine.
	Multi = workload.Multi
	// Comparison is a baseline-versus-compression-cache measurement pair.
	Comparison = workload.Comparison
)

// Sort input orders and gold phases.
const (
	SortPartial = workload.SortPartial
	SortRandom  = workload.SortRandom
	GoldCreate  = workload.GoldCreate
	GoldCold    = workload.GoldCold
	GoldWarm    = workload.GoldWarm
)

// Experiment types.
type (
	// Fig1Result is a panel of the paper's Figure 1.
	Fig1Result = exp.Fig1Result
	// Fig3Result is the §5.1 thrasher sweep (Figure 3).
	Fig3Result = exp.Fig3Result
	// Fig3Options sizes the Figure 3 sweep.
	Fig3Options = exp.Fig3Options
	// Table1Result is the §5.2 application table.
	Table1Result = exp.Table1Result
	// Table1Options sizes the Table 1 runs.
	Table1Options = exp.Table1Options
	// Table is a rendered result table.
	Table = exp.Table
	// ModelParams adjusts the Figure 1 analytic model.
	ModelParams = model.Params
)

// Experiment scales.
const (
	// SmallScale shrinks experiments for fast runs (tests, benchmarks).
	SmallScale = exp.Small
	// PaperScale uses the paper's sizes.
	PaperScale = exp.Paper
)

// Experiment registry: every table, figure, ablation and extension study
// behind one interface, dispatched by name (ccbench -list / -run).
type (
	// Experiment is one registered, runnable experiment.
	Experiment = exp.Experiment
	// ExperimentOptions is the shared sizing knob set experiments accept.
	ExperimentOptions = exp.Options
	// ExperimentResult is what an experiment produces: renderable tables.
	ExperimentResult = exp.Result
)

// DefaultExperimentOptions returns the options every experiment documents:
// built-in seeds and the full fault-rate ladder.
func DefaultExperimentOptions(s exp.Scale) ExperimentOptions { return exp.DefaultOptions(s) }

// Experiments returns every registered experiment in name order.
func Experiments() []Experiment { return exp.Experiments() }

// ExperimentNames returns every registered experiment name, sorted.
func ExperimentNames() []string { return exp.Names() }

// LookupExperiment finds one experiment by exact name ("table1",
// "ablation/codec", ...).
func LookupExperiment(name string) (Experiment, bool) { return exp.Lookup(name) }

// ResolveExperiments expands names, group names ("ablations",
// "extensions") and "all" into experiments in name order.
func ResolveExperiments(names []string) ([]Experiment, error) { return exp.Resolve(names) }

// Observability: the deterministic virtual-time event bus and metrics
// registry (attach with the WithObs machine option; see internal/obs).
type (
	// ObsOptions selects event classes and the ring size.
	ObsOptions = obs.Options
	// Event is one virtual-time event emitted by a subsystem.
	Event = obs.Event
	// EventClass is the bitmask of event classes.
	EventClass = obs.Class
	// MetricsSnapshot is a machine's metrics-registry snapshot.
	MetricsSnapshot = obs.Snapshot
)

// AllEventClasses enables every event class.
const AllEventClasses = obs.ClassAll

// ParseEventClasses parses a comma- or pipe-separated list of event-class
// names ("fault,disk_read") into an enable mask; "all" (or empty) selects
// every class.
func ParseEventClasses(s string) (EventClass, error) { return obs.ParseClasses(s) }

// WriteEventsJSONL exports events as deterministic JSONL, one object per
// line in fixed field order — a diffable trace artifact.
var WriteEventsJSONL = obs.WriteEventsJSONL

// WriteEventsCSV exports events as CSV with the same field order.
var WriteEventsCSV = obs.WriteEventsCSV

// WriteTimeline renders events as an aligned human-readable virtual-time
// table (the cctrace -timeline view).
var WriteTimeline = obs.WriteTimeline

// Default returns the paper's baseline machine configuration (DECstation
// 5000/200-class CPU costs, RZ57 disk, 4-KByte pages) with the given user
// memory and the compression cache disabled.
func Default(memoryBytes int64) Config { return machine.Default(memoryBytes) }

// RZ57 returns the paper's disk parameters.
func RZ57() DiskParams { return disk.RZ57() }

// Ethernet10 returns parameters for a 10-Mbps Ethernet page server.
func Ethernet10() NetParams { return netdev.Ethernet10() }

// Wireless2 returns parameters for a ~2-Mbps early-90s wireless LAN, the
// paper's mobile paging scenario.
func Wireless2() NetParams { return netdev.Wireless2() }

// ReadTrace loads a page-reference trace written by TraceRecorder.WriteTo.
var ReadTrace = trace.ReadTrace

// MachineOption attaches a machine to its surroundings at construction time
// (observability, a shared discrete-event kernel, a remote page store); see
// WithObs and internal/machine.
type MachineOption = machine.Option

// WithObs is the machine option that attaches the observability layer.
func WithObs(o ObsOptions) MachineOption { return machine.WithObs(o) }

// New builds a machine.
func New(cfg Config, opts ...MachineOption) (*Machine, error) { return machine.New(cfg, opts...) }

// Measure runs a workload on a fresh machine built from cfg.
func Measure(cfg Config, w Workload, opts ...MachineOption) (Stats, error) {
	return workload.Measure(cfg, w, opts...)
}

// MeasureMachine is Measure for callers that also need the machine after
// the run — typically to read its event ring (Machine.Events) or metrics
// snapshot (Machine.Metrics) when the options attach observability.
func MeasureMachine(cfg Config, w Workload, opts ...MachineOption) (*Machine, Stats, error) {
	return workload.MeasureMachine(cfg, w, opts...)
}

// RunBoth measures a workload on the baseline and compression-cache
// machines, producing one Table 1-style comparison.
func RunBoth(base, cc Config, w Workload, opts ...MachineOption) (Comparison, error) {
	return workload.RunBoth(base, cc, w, opts...)
}

// RunBothN is RunBoth with the two machines running concurrently on up to
// workers goroutines (0 = one per core, 1 = serial). Each machine gets its
// own clone of w and its own virtual clock, so the result is identical to
// RunBoth at any parallelism.
func RunBothN(ctx context.Context, base, cc Config, w Workload, workers int, opts ...MachineOption) (Comparison, error) {
	return workload.RunBothN(ctx, base, cc, w, workers, opts...)
}

// CloneWorkload returns an independent copy of a workload, safe to run on a
// concurrent machine while the original runs elsewhere. Workloads with
// reference-typed state implement workload.Cloner; plain structs are copied
// shallowly.
func CloneWorkload(w Workload) Workload { return workload.Clone(w) }

// Parallelism resolves a worker-count knob the way every experiment harness
// here does: n if positive, else one worker per available core.
func Parallelism(n int) int { return runner.Parallelism(n) }

// LookupCodec returns a registered page-compression codec ("lzrw1", "lzss",
// "bdi", "fpc", "rle", "null").
func LookupCodec(name string) (Codec, error) { return compress.Lookup(name) }

// Codecs lists the registered codec names.
func Codecs() []string { return compress.Names() }

// DefaultModel returns the Figure 1 analytic-model assumptions.
func DefaultModel() ModelParams { return model.Default() }

// Fig1a regenerates Figure 1(a): bandwidth speedup of compressed transfers.
func Fig1a() *Fig1Result { return exp.Fig1a() }

// Fig1b regenerates Figure 1(b): reference-time speedup with compressed
// pages kept in memory.
func Fig1b() *Fig1Result { return exp.Fig1b() }

// DefaultFig3Options sizes the Figure 3 sweep for a scale.
func DefaultFig3Options(s exp.Scale) Fig3Options { return exp.DefaultFig3Options(s) }

// Fig3 regenerates Figure 3: the thrasher sweep.
func Fig3(opts Fig3Options) (*Fig3Result, error) { return exp.Fig3(opts) }

// DefaultTable1Options sizes the Table 1 runs for a scale.
func DefaultTable1Options(s exp.Scale) Table1Options { return exp.DefaultTable1Options(s) }

// Table1 regenerates Table 1: the application speedups.
func Table1(opts Table1Options) (*Table1Result, error) { return exp.Table1(opts) }
