package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing: block-at-a-time compression of a byte stream, used by
// cmd/cczip and by tests that want to run the codecs over real files. Each
// block is a 3-byte little-endian length followed by the codec's compressed
// block. The maximum block size keeps the length field honest and bounds
// decoder allocations.
const (
	// StreamMaxBlock is the largest block a stream may carry.
	StreamMaxBlock = 1 << 20
	streamLenBytes = 3
)

// CompressStream reads r in blockSize chunks, compresses each with codec,
// and writes the framed stream to w. It returns the input and output byte
// counts.
func CompressStream(codec Codec, blockSize int, r io.Reader, w io.Writer) (in, out int64, err error) {
	if blockSize <= 0 || blockSize > StreamMaxBlock {
		return 0, 0, fmt.Errorf("compress: stream block size %d out of (0,%d]", blockSize, StreamMaxBlock)
	}
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	buf := make([]byte, blockSize)
	var comp []byte
	var hdr [streamLenBytes]byte
	for {
		n, rerr := io.ReadFull(br, buf)
		if n > 0 {
			comp = codec.Compress(comp[:0], buf[:n])
			if len(comp) >= 1<<(8*streamLenBytes) {
				return in, out, fmt.Errorf("compress: block expanded beyond the stream length field")
			}
			putStreamLen(hdr[:], len(comp))
			if _, err := bw.Write(hdr[:]); err != nil {
				return in, out, err
			}
			if _, err := bw.Write(comp); err != nil {
				return in, out, err
			}
			in += int64(n)
			out += int64(streamLenBytes + len(comp))
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return in, out, bw.Flush()
		}
		if rerr != nil {
			return in, out, rerr
		}
	}
}

// DecompressStream reverses CompressStream.
func DecompressStream(codec Codec, r io.Reader, w io.Writer) (in, out int64, err error) {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	var hdr [streamLenBytes]byte
	var comp, plain []byte
	for {
		if _, rerr := io.ReadFull(br, hdr[:]); rerr != nil {
			if rerr == io.EOF {
				return in, out, bw.Flush()
			}
			return in, out, fmt.Errorf("compress: truncated stream header: %w", rerr)
		}
		n := getStreamLen(hdr[:])
		// A block can legally be as large as the codec's own worst case for a
		// maximal input — e.g. the Null codec's stored header makes that
		// StreamMaxBlock+4, which the old StreamMaxBlock+streamLenBytes bound
		// wrongly rejected on data CompressStream itself wrote.
		if n == 0 || n > codec.MaxCompressedSize(StreamMaxBlock) {
			return in, out, fmt.Errorf("%w: implausible stream block length %d", ErrCorrupt, n)
		}
		if cap(comp) < n {
			comp = make([]byte, n)
		}
		comp = comp[:n]
		if _, rerr := io.ReadFull(br, comp); rerr != nil {
			return in, out, fmt.Errorf("compress: truncated stream block: %w", rerr)
		}
		in += int64(streamLenBytes + n)
		plain, err = codec.Decompress(plain[:0], comp)
		if err != nil {
			return in, out, err
		}
		if _, err := bw.Write(plain); err != nil {
			return in, out, err
		}
		out += int64(len(plain))
	}
}

// BlockReport summarizes how a stream of blocks would fare in the
// compression cache.
type BlockReport struct {
	Blocks        int
	BytesIn       int64
	BytesOut      int64
	FailThreshold int // blocks compressing worse than num/den of their size
}

// Ratio reports bytes remaining after compression (1 for an empty report).
func (r BlockReport) Ratio() float64 {
	if r.BytesIn == 0 {
		return 1
	}
	return float64(r.BytesOut) / float64(r.BytesIn)
}

// FailFrac reports the fraction of blocks failing the threshold.
func (r BlockReport) FailFrac() float64 {
	if r.Blocks == 0 {
		return 0
	}
	return float64(r.FailThreshold) / float64(r.Blocks)
}

// Analyze compresses r block by block (without writing anything) and reports
// the per-block outcome against a retention threshold of num/den — the
// cmd/cczip -stats path, or "what would my file's pages do in the cache?".
func Analyze(codec Codec, blockSize, num, den int, r io.Reader) (BlockReport, error) {
	var rep BlockReport
	if blockSize <= 0 || blockSize > StreamMaxBlock || num <= 0 || den <= 0 {
		return rep, fmt.Errorf("compress: bad analyze geometry")
	}
	br := bufio.NewReader(r)
	buf := make([]byte, blockSize)
	var comp []byte
	for {
		n, rerr := io.ReadFull(br, buf)
		if n > 0 {
			comp = codec.Compress(comp[:0], buf[:n])
			rep.Blocks++
			rep.BytesIn += int64(n)
			rep.BytesOut += int64(len(comp))
			if len(comp) > n*num/den {
				rep.FailThreshold++
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return rep, nil
		}
		if rerr != nil {
			return rep, rerr
		}
	}
}

func putStreamLen(b []byte, n int) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(n))
	copy(b, tmp[:streamLenBytes])
}

func getStreamLen(b []byte) int {
	return int(b[0]) | int(b[1])<<8 | int(b[2])<<16
}
