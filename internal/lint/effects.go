package lint

// Effect inference: a bottom-up pass over the module that assigns every
// declared function a conservative effect set, the static half of the
// zero-allocation hot-path contract that internal/machine's AllocsPerRun
// tests enforce dynamically.
//
// The lattice is four independent boolean facts (so joins are bitwise OR
// and the transitive fixed point converges even through recursion):
//
//   - AllocSteady: the function may allocate on every execution in steady
//     state — composite literals that escape, make/new into locals,
//     appends to fresh slices, string↔[]byte conversions, interface
//     boxing at call sites, escaping closures, and calls into the small
//     set of standard-library functions known to allocate (fmt,
//     errors.New/Join, sort.Slice).
//   - AllocWarm: the function may allocate, but only through recognized
//     warm-up/amortized idioms — growing a pooled buffer held in a
//     struct field (compBuf/nbrBuf/readBuf and friends), appending to
//     caller- or field-owned backing storage, map writes, sync.Pool
//     refills, and the cache's slab/entry/frame recyclers. These settle
//     to zero allocations once capacities are reached, which is exactly
//     what AllocsPerRun measures after warm-up.
//   - Retains: the function stores parameter-derived slice/pointer memory
//     into a receiver field, package state, or a map.
//   - Escapes: the function returns parameter-derived memory to the
//     caller.
//
// Sites on error and panic paths are classified cold and excluded from
// steady-state summaries and from hot-path reachability: the dynamic
// contract never exercises them, and wrapping an error is allowed to
// cost an allocation.
//
// Soundness caveats (documented in DESIGN.md): the known-allocating
// external table is curated, not derived, so an allocating stdlib call
// outside it is missed; taint laundering at call boundaries means a
// callee that retains its own argument is not propagated to the caller;
// and closure escape analysis is syntactic (a literal only assigned to a
// local and called in place is assumed non-escaping).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Effects is a set of inferred function effects.
type Effects uint8

const (
	// AllocSteady marks steady-state allocation.
	AllocSteady Effects = 1 << iota
	// AllocWarm marks warm-up/amortized allocation through a recognized
	// pooled idiom.
	AllocWarm
	// Retains marks storing parameter-derived memory into longer-lived
	// state.
	Retains
	// Escapes marks returning parameter-derived memory to the caller.
	Escapes
)

// Has reports whether e includes every flag of f.
func (e Effects) Has(f Effects) bool { return e&f == f }

// Names returns the canonical sorted spelling of the set, the form the
// manifest records.
func (e Effects) Names() []string {
	out := []string{}
	if e.Has(AllocSteady) {
		out = append(out, "allocates")
	}
	if e.Has(AllocWarm) {
		out = append(out, "allocates-amortized")
	}
	if e.Has(Escapes) {
		out = append(out, "escapes")
	}
	if e.Has(Retains) {
		out = append(out, "retains")
	}
	return out
}

// String renders the set for diagnostics ("none" for the empty set).
func (e Effects) String() string {
	if e == 0 {
		return "none"
	}
	return strings.Join(e.Names(), ",")
}

// effectsFromNames parses a manifest entry; unknown names are ignored so
// an old cclint reading a newer manifest degrades gracefully.
func effectsFromNames(names []string) Effects {
	var e Effects
	for _, n := range names {
		switch n {
		case "allocates":
			e |= AllocSteady
		case "allocates-amortized":
			e |= AllocWarm
		case "retains":
			e |= Retains
		case "escapes":
			e |= Escapes
		}
	}
	return e
}

// SiteClass classifies one allocation site.
type SiteClass int

const (
	// SiteSteady allocates on the steady-state path.
	SiteSteady SiteClass = iota
	// SiteWarm allocates only while a pooled buffer grows to its working
	// capacity (or another amortized idiom).
	SiteWarm
	// SiteCold allocates only on an error or panic path.
	SiteCold
)

// AllocSite is one potential allocation in a function body.
type AllocSite struct {
	// Node positions the site.
	Node ast.Node
	// Class is the steady/warm/cold classification.
	Class SiteClass
	// What describes the allocation for the diagnostic.
	What string
}

// ParamFlow records parameter-derived memory leaving a function: stored
// into longer-lived state (Store) or returned to the caller.
type ParamFlow struct {
	// Node is the assignment or return statement.
	Node ast.Node
	// Param is the parameter the value derives from.
	Param *types.Var
	// Store is true for a store into a field/global/map, false for a
	// return.
	Store bool
}

// CapReslice records a reslice of a parameter beyond its length
// (p[:cap(p)]), which reads memory the caller never handed over.
type CapReslice struct {
	Node  ast.Node
	Param *types.Var
}

// FnEffects is the inferred effect summary of one declared function.
type FnEffects struct {
	// Fn identifies the function.
	Fn *types.Func
	// Local is the effect set earned by this body's own sites.
	Local Effects
	// Summary is Local joined with the summaries of every callee reached
	// through a non-cold call edge (the transitive fixed point).
	Summary Effects
	// Sites lists the body's allocation sites.
	Sites []AllocSite
	// ColdSites marks call expressions that execute only on error/panic
	// paths; hot-path reachability skips edges whose site is cold.
	ColdSites map[ast.Node]bool
	// Flows lists parameter-derived stores and returns (bufown's input).
	Flows []ParamFlow
	// CapReslices lists reads beyond a parameter's length.
	CapReslices []CapReslice
}

// EffectFacts is the module-wide effect table, computed once per load.
type EffectFacts struct {
	mod *Module
	fns map[*types.Func]*FnEffects

	hot map[*types.Func][]*types.Func // hot-path chains, computed lazily
}

// Effects returns the module's effect table, computing it on first use.
func (m *Module) Effects() *EffectFacts {
	if m.effects == nil {
		m.effects = computeEffects(m)
	}
	return m.effects
}

// Of returns the summary for fn, or nil for external functions.
func (f *EffectFacts) Of(fn *types.Func) *FnEffects { return f.fns[fn] }

// pooledAllocFns are module functions whose whole purpose is recycling:
// their internal make/new fallbacks run only until the freelist warms up,
// so every steady site in them is demoted to warm.
var pooledAllocFns = map[string]map[string]bool{
	"internal/cluster": {"newEntry": true, "newTier": true},
	"internal/core":    {"slabGet": true, "newEntry": true, "newFrame": true},
	"internal/policy":  {"scratch": true},
	"internal/swap":    {"newSegment": true},
}

// knownAllocExternals flags standard-library callees that always (or
// almost always) allocate. The table is curated, not derived — an
// allocating stdlib function outside it is a known soundness gap.
func knownAllocExternal(fn *types.Func) bool {
	switch pkgPath(fn) {
	case "fmt":
		return true
	case "errors":
		return fn.Name() == "New" || fn.Name() == "Join"
	case "sort":
		return fn.Name() == "Slice" || fn.Name() == "SliceStable"
	}
	return false
}

// warmExternal flags external callees that allocate only to refill a pool.
func warmExternal(fn *types.Func) bool {
	return fn.Name() == "Get" && pkgPath(fn) == "sync"
}

// computeEffects scans every declared function and runs the transitive
// fixed point over non-cold call edges.
func computeEffects(mod *Module) *EffectFacts {
	facts := &EffectFacts{mod: mod, fns: make(map[*types.Func]*FnEffects)}
	for _, node := range mod.Graph.order {
		facts.fns[node.Fn] = scanFn(mod, node)
	}
	for changed := true; changed; {
		changed = false
		for _, node := range mod.Graph.order {
			fe := facts.fns[node.Fn]
			sum := fe.Summary
			for _, e := range node.Out {
				if fe.ColdSites[e.Site] {
					continue
				}
				callee := facts.fns[e.Callee]
				if callee == nil {
					continue // external; handled as a local site
				}
				sum |= callee.Summary & (AllocSteady | AllocWarm)
			}
			if sum != fe.Summary {
				fe.Summary = sum
				changed = true
			}
		}
	}
	return facts
}

// originKind says where a value's backing memory comes from.
type originKind int

const (
	oFresh  originKind = iota // allocated here or laundered through a call
	oParam                    // derived from a parameter
	oField                    // derived from a struct field
	oGlobal                   // derived from package state
)

type origin struct {
	kind  originKind
	param *types.Var // set for oParam
}

// fnScanner walks one function body collecting sites, flows and cold
// spans.
type fnScanner struct {
	mod       *Module
	node      *Node
	fe        *FnEffects
	origins   map[types.Object]origin
	fieldRHS  map[ast.Expr]bool // RHS exprs assigned to a field/global LHS
	coldRoots []ast.Node
	handled   map[ast.Node]bool // composite lits consumed by a parent &T{}
	pooled    bool
	errorType types.Type
}

func scanFn(mod *Module, node *Node) *FnEffects {
	fe := &FnEffects{Fn: node.Fn, ColdSites: make(map[ast.Node]bool)}
	s := &fnScanner{
		mod:       mod,
		node:      node,
		fe:        fe,
		origins:   make(map[types.Object]origin),
		fieldRHS:  make(map[ast.Expr]bool),
		handled:   make(map[ast.Node]bool),
		errorType: types.Universe.Lookup("error").Type(),
	}
	for name, fns := range pooledAllocFns {
		if fnIn(node.Fn, name, fns) {
			s.pooled = true
		}
	}
	sig := node.Fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		s.origins[p] = origin{kind: oParam, param: p}
	}
	s.contextPass(node.Decl.Body)
	s.sitePass(node.Decl.Body)
	fe.Summary = fe.Local
	return fe
}

// contextPass records assignment contexts (field-destined RHS, local
// variable origins) and cold roots before the site pass classifies
// anything. ast.Inspect visits in source order, so the forward origin
// pass sees definitions before uses for straight-line idioms like
// `batch := c.cleanBatch[:0]`.
func (s *fnScanner) contextPass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if s.isPersistentLHS(n.Lhs[i]) {
						s.fieldRHS[n.Rhs[i]] = true
					}
					if obj := s.lhsObject(n.Lhs[i]); obj != nil {
						s.setOrigin(obj, s.originOf(n.Rhs[i]))
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if obj := s.mod.Info.Defs[name]; obj != nil {
						s.setOrigin(obj, s.originOf(n.Values[i]))
					}
				}
			}
		case *ast.RangeStmt:
			// `for _, x := range p`: the element derives from the ranged
			// value (a slice element aliases its backing array).
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := s.lhsObject(id); obj != nil {
					s.setOrigin(obj, s.originOf(n.X))
				}
			}
		case *ast.ReturnStmt:
			if s.isColdReturn(n) {
				s.coldRoots = append(s.coldRoots, n)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := s.mod.Info.Uses[id].(*types.Builtin); isBuiltin {
					s.coldRoots = append(s.coldRoots, n)
				}
			}
		}
		return true
	})
}

// isColdReturn reports whether a return statement is an error exit: the
// function's last result is error and the returned error is constructed
// in place (&T{…}, T{…}, or fmt.Errorf/errors.New/errors.Join). Returning
// a plain identifier or a module-internal call is NOT cold — tail calls
// like `return c.WriteCluster(batch, false)` stay on the hot path.
func (s *fnScanner) isColdReturn(ret *ast.ReturnStmt) bool {
	sig := s.node.Fn.Type().(*types.Signature)
	nres := sig.Results().Len()
	if nres == 0 || len(ret.Results) == 0 {
		return false
	}
	if !types.Identical(sig.Results().At(nres-1).Type(), s.errorType) {
		return false
	}
	switch last := ast.Unparen(ret.Results[len(ret.Results)-1]).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if last.Op == token.AND {
			_, ok := last.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		for _, e := range s.edgesAt(last) {
			if knownAllocExternal(e.Callee) {
				return true
			}
		}
	}
	return false
}

// edgesAt returns the call-graph edges whose site is this expression.
func (s *fnScanner) edgesAt(call ast.Node) []Edge {
	var out []Edge
	for _, e := range s.node.Out {
		if e.Site == call {
			out = append(out, e)
		}
	}
	return out
}

// isCold reports whether a node lies inside a cold root's span.
func (s *fnScanner) isCold(n ast.Node) bool {
	for _, r := range s.coldRoots {
		if n.Pos() >= r.Pos() && n.End() <= r.End() {
			return true
		}
	}
	return false
}

// isPersistentLHS reports whether an assignment target outlives the call:
// a field selector, a package-level variable, or a map/index element of
// either.
func (s *fnScanner) isPersistentLHS(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := s.mod.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		if v, ok := s.mod.Info.Uses[e.Sel].(*types.Var); ok {
			return isGlobal(v)
		}
	case *ast.Ident:
		if v, ok := s.mod.Info.Uses[e].(*types.Var); ok {
			return isGlobal(v)
		}
	case *ast.IndexExpr:
		return s.isPersistentLHS(e.X)
	case *ast.StarExpr:
		return s.isPersistentLHS(e.X)
	}
	return false
}

func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// lhsObject returns the local variable object an assignment target binds,
// or nil for fields, globals, and indexed elements.
func (s *fnScanner) lhsObject(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	var obj types.Object
	if d := s.mod.Info.Defs[id]; d != nil {
		obj = d
	} else if u := s.mod.Info.Uses[id]; u != nil {
		obj = u
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && !isGlobal(v) {
		return v
	}
	return nil
}

// setOrigin joins a new binding into a variable's origin. The pass is
// flow-insensitive: a local that EVER derives from a parameter, field or
// global keeps that origin, because idioms like `dst = encodeLine(dst, …)`
// or `neighbors = nil` would otherwise launder a pooled destination into
// fresh memory mid-function. Derived origins dominate fresh; parameters
// dominate fields dominate globals (first binding wins among equals).
func (s *fnScanner) setOrigin(obj types.Object, o origin) {
	old, ok := s.origins[obj]
	if !ok {
		s.origins[obj] = o
		return
	}
	rank := func(k originKind) int {
		switch k {
		case oParam:
			return 3
		case oField:
			return 2
		case oGlobal:
			return 1
		}
		return 0
	}
	if rank(o.kind) > rank(old.kind) {
		s.origins[obj] = o
	}
}

// originOf resolves where an expression's backing memory comes from.
// Calls and conversions launder (a callee's result is fresh memory as far
// as this body can prove), except append, which derives from its first
// argument.
func (s *fnScanner) originOf(e ast.Expr) origin {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := s.objectOf(e).(*types.Var); ok {
			if o, ok := s.origins[v]; ok {
				return o
			}
			if isGlobal(v) {
				return origin{kind: oGlobal}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := s.mod.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			// A field of a parameter value still derives from the
			// parameter; a field of anything else is persistent state.
			if base := s.originOf(e.X); base.kind == oParam {
				return base
			}
			return origin{kind: oField}
		}
		if v, ok := s.mod.Info.Uses[e.Sel].(*types.Var); ok && isGlobal(v) {
			return origin{kind: oGlobal}
		}
	case *ast.SliceExpr:
		return s.originOf(e.X)
	case *ast.IndexExpr:
		return s.originOf(e.X)
	case *ast.StarExpr:
		return s.originOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.originOf(e.X)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := s.mod.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				return s.originOf(e.Args[0])
			}
		}
	}
	return origin{kind: oFresh}
}

func (s *fnScanner) objectOf(id *ast.Ident) types.Object {
	if u := s.mod.Info.Uses[id]; u != nil {
		return u
	}
	return s.mod.Info.Defs[id]
}

// addSite records one allocation site and folds its class into Local.
func (s *fnScanner) addSite(n ast.Node, class SiteClass, what string) {
	if class != SiteCold && s.pooled {
		class = SiteWarm
	}
	s.fe.Sites = append(s.fe.Sites, AllocSite{Node: n, Class: class, What: what})
	switch class {
	case SiteSteady:
		s.fe.Local |= AllocSteady
	case SiteWarm:
		s.fe.Local |= AllocWarm
	}
}

// classify picks steady vs warm vs cold for a site: cold spans win, then
// field-destined assignment (a pooled buffer growing in place) is warm.
func (s *fnScanner) classify(n ast.Node, rhs ast.Expr) SiteClass {
	if s.isCold(n) {
		return SiteCold
	}
	if rhs != nil && s.fieldRHS[rhs] {
		return SiteWarm
	}
	return SiteSteady
}

// pointerish reports whether a type can alias memory (the only kinds a
// retain/escape of a parameter can leak through).
func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Interface, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// sitePass walks the body (including function-literal bodies, which
// execute as part of the enclosing function for allocation accounting)
// and records every allocation site, flow, and cap-reslice.
func (s *fnScanner) sitePass(body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			s.scanCall(n)
		case *ast.CompositeLit:
			s.scanCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.handled[lit] = true
					class := s.classify(n, n)
					s.addSite(n, class, fmt.Sprintf("&%s literal", typeLabel(s.mod, lit)))
				}
			}
		case *ast.FuncLit:
			s.scanFuncLit(n, parent)
		case *ast.AssignStmt:
			s.scanAssign(n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if o := s.originOf(res); o.kind == oParam && pointerish(o.param.Type()) {
					s.fe.Flows = append(s.fe.Flows, ParamFlow{Node: n, Param: o.param})
					s.fe.Local |= Escapes
				}
			}
		case *ast.SliceExpr:
			s.scanSliceExpr(n)
		}
		return true
	})
}

// scanCall classifies one call site: builtin allocators, conversions,
// known-allocating externals, and interface boxing of arguments.
func (s *fnScanner) scanCall(call *ast.CallExpr) {
	info := s.mod.Info
	cold := s.isCold(call)
	if cold {
		s.fe.ColdSites[call] = true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				class := s.classify(call, call)
				s.addSite(call, class, types.ExprString(call))
			case "append":
				if len(call.Args) > 0 {
					s.scanAppend(call)
				}
			}
			return
		}
	}
	// Conversions: string↔[]byte (and []rune) copy their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringBytesConv(tv.Type, info.Types[call.Args[0]].Type) {
			class := s.classify(call, call)
			s.addSite(call, class, fmt.Sprintf("%s conversion", types.ExprString(call.Fun)))
		}
		return
	}
	// Known-allocating external callees become local sites (externals
	// have no bodies, so the fixed point cannot see inside them).
	for _, e := range s.edgesAt(call) {
		if s.mod.Graph.Node(e.Callee) != nil {
			continue
		}
		if knownAllocExternal(e.Callee) {
			class := SiteSteady
			if cold {
				class = SiteCold
			}
			s.addSite(call, class, fmt.Sprintf("call to %s.%s", e.Callee.Pkg().Name(), e.Callee.Name()))
			return // boxing into the same call would double-report
		}
		if warmExternal(e.Callee) {
			class := SiteWarm
			if cold {
				class = SiteCold
			}
			s.addSite(call, class, "sync.Pool refill")
			return
		}
	}
	s.scanBoxing(call)
}

// scanAppend classifies an append call by where its destination's memory
// lives: caller-owned (param), field- or package-owned backing storage
// grows amortized (warm); a fresh local grows on every call (steady).
func (s *fnScanner) scanAppend(call *ast.CallExpr) {
	class := SiteSteady
	switch s.originOf(call.Args[0]).kind {
	case oParam, oField, oGlobal:
		class = SiteWarm
	}
	if s.isCold(call) {
		class = SiteCold
	}
	s.addSite(call, class, fmt.Sprintf("append to %s", types.ExprString(call.Args[0])))
}

// scanBoxing flags concrete non-pointer arguments passed to interface
// parameters — each boxes into a fresh allocation.
func (s *fnScanner) scanBoxing(call *ast.CallExpr) {
	info := s.mod.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // spread of an existing slice: no per-element boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil {
			continue // constants fold; untyped nil has no boxing
		}
		switch atv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Basic:
			// Interfaces convert without boxing; pointers and funcs fit
			// in the interface word; untyped basics were caught as
			// constants above, and typed small scalars often use the
			// runtime's static boxes — all skipped to keep the signal
			// high. Structs, slices, maps and arrays always box.
			continue
		}
		class := SiteSteady
		if s.isCold(call) {
			class = SiteCold
		}
		s.addSite(call, class, fmt.Sprintf("%s boxed into interface argument", types.ExprString(arg)))
	}
}

// scanFuncLit flags escaping closures that capture variables. A literal
// called in place (directly, or via defer/go), or assigned to a local and
// invoked there, is a static func value plus stack captures — no site.
func (s *fnScanner) scanFuncLit(lit *ast.FuncLit, parent ast.Node) {
	escapes := true
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			escapes = false // directly invoked
		} else {
			for _, e := range s.edgesAt(p) {
				if knownAllocExternal(e.Callee) {
					return // the call itself is already a site
				}
			}
		}
	case *ast.AssignStmt:
		escapes = false
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) == lit && i < len(p.Lhs) && s.isPersistentLHS(p.Lhs[i]) {
				escapes = true
			}
		}
	case *ast.ValueSpec:
		escapes = false // local func variable
	}
	if !escapes || !s.captures(lit) {
		return
	}
	class := SiteSteady
	if s.isCold(lit) {
		class = SiteCold
	}
	s.addSite(lit, class, "escaping closure captures variables")
}

// captures reports whether a literal references variables of the
// enclosing function.
func (s *fnScanner) captures(lit *ast.FuncLit) bool {
	decl := s.node.Decl
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := s.mod.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isGlobal(v) {
			return true
		}
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			found = true
		}
		return true
	})
	return found
}

// scanAssign records map-write sites and parameter-retaining stores.
func (s *fnScanner) scanAssign(n *ast.AssignStmt) {
	info := s.mod.Info
	for _, lhs := range n.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.Types[ix.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					class := SiteWarm
					if s.isCold(n) {
						class = SiteCold
					}
					s.addSite(n, class, fmt.Sprintf("map write to %s", types.ExprString(ix.X)))
				}
			}
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		if !s.isPersistentLHS(n.Lhs[i]) {
			continue
		}
		if o := s.originOf(n.Rhs[i]); o.kind == oParam && pointerish(o.param.Type()) {
			s.fe.Flows = append(s.fe.Flows, ParamFlow{Node: n, Param: o.param, Store: true})
			s.fe.Local |= Retains
		}
	}
}

// scanSliceExpr flags p[…:cap(p)] on a parameter: reading capacity the
// caller never filled (the dirty-scratch contract forbids it).
func (s *fnScanner) scanSliceExpr(n *ast.SliceExpr) {
	base := s.originOf(n.X)
	if base.kind != oParam || n.High == nil {
		return
	}
	capCall, ok := ast.Unparen(n.High).(*ast.CallExpr)
	if !ok || len(capCall.Args) != 1 {
		return
	}
	id, ok := ast.Unparen(capCall.Fun).(*ast.Ident)
	if !ok || id.Name != "cap" {
		return
	}
	if _, isBuiltin := s.mod.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if arg := s.originOf(capCall.Args[0]); arg.kind == oParam && arg.param == base.param {
		s.fe.CapReslices = append(s.fe.CapReslices, CapReslice{Node: n, Param: base.param})
	}
}

// isStringBytesConv reports a string↔[]byte/[]rune conversion.
func isStringBytesConv(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// scanCompositeLit flags slice- and map-typed literals (struct values and
// fixed arrays live on the stack; &T{…} is handled by the parent unary).
func (s *fnScanner) scanCompositeLit(lit *ast.CompositeLit) {
	if s.handled[lit] {
		return
	}
	t := s.mod.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		class := s.classify(lit, lit)
		s.addSite(lit, class, fmt.Sprintf("%s literal", typeLabel(s.mod, lit)))
	}
}

// typeLabel renders a composite literal's type for a message.
func typeLabel(mod *Module, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type)
	}
	if t := mod.Info.Types[lit].Type; t != nil {
		return t.String()
	}
	return "composite"
}

// ---------------------------------------------------------------------------
// Hot-path reachability

// hotRoot identifies the entry points of the zero-allocation contract:
// the machine's fault-service pair, the compression cache's insert, and
// every codec method matching the (dst, src []byte) contract shape in an
// internal/compress package.
func hotRoot(fn *types.Func) bool {
	if fnIn(fn, "internal/machine", map[string]bool{"PageIn": true, "PageOut": true}) {
		return true
	}
	if fnIn(fn, "internal/core", map[string]bool{"Insert": true}) {
		return true
	}
	return codecContract(fn)
}

// codecContract reports whether fn is a codec Compress/Decompress with
// the borrow-only signature shape:
//
//	Compress(dst, src []byte) []byte
//	Decompress(dst, src []byte) ([]byte, error)
//
// declared in an internal/compress package. The shape requirement keeps
// same-named helpers in other packages (and fixtures) out of scope.
func codecContract(fn *types.Func) bool {
	if fn == nil || !pathHasSuffix(pkgPath(fn), "internal/compress") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	if !isByteSlice(sig.Params().At(0).Type()) || !isByteSlice(sig.Params().At(1).Type()) {
		return false
	}
	res := sig.Results()
	switch fn.Name() {
	case "Compress":
		return res.Len() == 1 && isByteSlice(res.At(0).Type())
	case "Decompress":
		return res.Len() == 2 && isByteSlice(res.At(0).Type()) &&
			types.Identical(res.At(1).Type(), types.Universe.Lookup("error").Type())
	}
	return false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// HotChains computes, for every function reachable from a hot root along
// non-cold call edges, the deterministic shortest chain from its root
// (ties broken by declaration order). The map is cached on the facts.
func (f *EffectFacts) HotChains() map[*types.Func][]*types.Func {
	if f.hot != nil {
		return f.hot
	}
	g := f.mod.Graph
	chains := make(map[*types.Func][]*types.Func)
	var frontier []*types.Func
	for _, n := range g.order {
		if hotRoot(n.Fn) {
			chains[n.Fn] = []*types.Func{n.Fn}
			frontier = append(frontier, n.Fn)
		}
	}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return g.before(frontier[i], frontier[j]) })
		var next []*types.Func
		for _, fn := range frontier {
			node := g.nodes[fn]
			fe := f.fns[fn]
			if node == nil || fe == nil {
				continue
			}
			for _, e := range node.Out {
				if fe.ColdSites[e.Site] {
					continue
				}
				if g.nodes[e.Callee] == nil {
					continue // external
				}
				if _, ok := chains[e.Callee]; ok {
					continue
				}
				chain := make([]*types.Func, len(chains[fn])+1)
				copy(chain, chains[fn])
				chain[len(chain)-1] = e.Callee
				chains[e.Callee] = chain
				next = append(next, e.Callee)
			}
		}
		frontier = next
	}
	f.hot = chains
	return chains
}

// ---------------------------------------------------------------------------
// Effects manifest (.cclint-effects.json)

// EffectsFile is the manifest's fixed name, resolved against the module
// root (so the fixture tree carries its own).
const EffectsFile = ".cclint-effects.json"

// EffectsManifest builds the recordable manifest: every exported-name
// function declared in the module, keyed by FullName, mapped to the
// canonical sorted effect names. Functions proven effect-free appear
// with an empty list — that records the proof, and effectdrift warns
// when they lose it.
func EffectsManifest(mod *Module) map[string][]string {
	facts := mod.Effects()
	out := make(map[string][]string)
	for _, n := range mod.Graph.order {
		if !n.Fn.Exported() {
			continue
		}
		out[n.Fn.FullName()] = facts.Of(n.Fn).Summary.Names()
	}
	return out
}

// WriteEffects writes the manifest deterministically: MarshalIndent
// sorts map keys and Names() is canonical, so regeneration is
// byte-identical for an unchanged tree.
func WriteEffects(path string, mod *Module) error {
	data, err := json.MarshalIndent(EffectsManifest(mod), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadEffects reads a manifest; a missing file is an empty manifest, so
// trees without one get no drift warnings.
func LoadEffects(path string) (map[string]Effects, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]Effects{}, nil
	}
	if err != nil {
		return nil, err
	}
	var raw map[string][]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
	}
	out := make(map[string]Effects, len(raw))
	for k, v := range raw {
		out[k] = effectsFromNames(v)
	}
	return out, nil
}
