package swap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/obs"
	"compcache/internal/sim"
)

// Durable LFS segment layout. Each segment opens with one file-system block
// holding the segment header; the page slots follow. Header and pages reach
// the device as a single transfer (Flush), so a power cut tears them
// together and the header's checksum detects any torn suffix:
//
//	off  0   magic "CCLF"
//	off  4   version  (uint16 LE)
//	off  6   count    (uint16 LE)   slots recorded
//	off  8   sequence (uint64 LE)   log order; higher supersedes lower
//	off 16   CRC-32   (uint32 LE)   over bytes [0, 20+16*count) with this
//	                                field zeroed
//	off 20   count records of 16 bytes:
//	             seg    (int32 LE)  page identity (lfsTombstone for a slot
//	             page   (int32 LE)  invalidated before the flush)
//	             length (uint32 LE) payload bytes (the page size)
//	             sum    (uint32 LE) CRC-32 of the slot's page data
const (
	lfsHeaderFixed = 20
	lfsRecordBytes = 16
	lfsVersion     = 1
)

var lfsMagic = [4]byte{'C', 'C', 'L', 'F'}

// lfsEncodeHeader serializes the open segment's record table into dst (the
// header block of the staged segment image). Unused header bytes are zeroed
// so media contents are a pure function of the write history.
func lfsEncodeHeader(dst []byte, seq uint64, seg *lfsSegment, pageSize int) {
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, lfsMagic[:])
	binary.LittleEndian.PutUint16(dst[4:], lfsVersion)
	binary.LittleEndian.PutUint16(dst[6:], uint16(len(seg.pages)))
	binary.LittleEndian.PutUint64(dst[8:], seq)
	for i, key := range seg.pages {
		off := lfsHeaderFixed + i*lfsRecordBytes
		binary.LittleEndian.PutUint32(dst[off:], uint32(key.Seg))
		binary.LittleEndian.PutUint32(dst[off+4:], uint32(key.Page))
		if key == lfsTombstone {
			continue // length and sum stay zero
		}
		binary.LittleEndian.PutUint32(dst[off+8:], uint32(pageSize))
		binary.LittleEndian.PutUint32(dst[off+12:], seg.sums[i])
	}
	crc := crc32.ChecksumIEEE(dst[:lfsHeaderFixed+len(seg.pages)*lfsRecordBytes])
	binary.LittleEndian.PutUint32(dst[16:], crc)
}

// lfsDecodeHeader parses and validates a segment header block. It returns
// ok=false for anything that is not a complete, checksum-valid header —
// unwritten media, a torn header, or garbage.
func lfsDecodeHeader(src []byte, pagesPerSeg int) (seq uint64, keys []PageKey, lengths []uint32, sums []uint32, ok bool) {
	if len(src) < lfsHeaderFixed {
		return 0, nil, nil, nil, false
	}
	if [4]byte{src[0], src[1], src[2], src[3]} != lfsMagic {
		return 0, nil, nil, nil, false
	}
	if binary.LittleEndian.Uint16(src[4:]) != lfsVersion {
		return 0, nil, nil, nil, false
	}
	count := int(binary.LittleEndian.Uint16(src[6:]))
	if count == 0 || count > pagesPerSeg || lfsHeaderFixed+count*lfsRecordBytes > len(src) {
		return 0, nil, nil, nil, false
	}
	stored := binary.LittleEndian.Uint32(src[16:])
	end := lfsHeaderFixed + count*lfsRecordBytes
	scratch := make([]byte, end)
	copy(scratch, src[:end])
	scratch[16], scratch[17], scratch[18], scratch[19] = 0, 0, 0, 0
	if crc32.ChecksumIEEE(scratch) != stored {
		return 0, nil, nil, nil, false
	}
	seq = binary.LittleEndian.Uint64(src[8:])
	keys = make([]PageKey, count)
	lengths = make([]uint32, count)
	sums = make([]uint32, count)
	for i := 0; i < count; i++ {
		off := lfsHeaderFixed + i*lfsRecordBytes
		keys[i] = PageKey{
			Seg:  int32(binary.LittleEndian.Uint32(src[off:])),
			Page: int32(binary.LittleEndian.Uint32(src[off+4:])),
		}
		lengths[i] = binary.LittleEndian.Uint32(src[off+8:])
		sums[i] = binary.LittleEndian.Uint32(src[off+12:])
	}
	return seq, keys, lengths, sums, true
}

// RecoveryReport summarizes one mount-time recovery pass.
type RecoveryReport struct {
	ScannedSegments   int // media regions examined
	RecoveredSegments int // checksum-valid segments (or commit records) accepted
	RecoveredPages    int // page copies reindexed as live
	StalePages        int // valid copies superseded by a higher sequence number
	TornDiscarded     int // records discarded for a failed data checksum
}

// String renders the report in a fixed human-readable layout.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("scanned %d segment(s): recovered %d segment(s), %d page(s) live, %d stale, %d torn record(s) discarded",
		r.ScannedSegments, r.RecoveredSegments, r.RecoveredPages, r.StalePages, r.TornDiscarded)
}

// RecoverLFS mounts a log-structured store from whatever the media image
// holds — the reboot-after-crash path. It scans every segment-sized region
// of the swap file, accepts the regions whose header block parses and
// checksums clean, validates each recorded page slot against its data
// checksum (discarding torn tails), and replays the accepted segments in
// sequence order so the highest-sequence copy of every page wins. The
// rebuilt store passes CheckConsistency before it is returned.
//
// Recovery reads cost real device time on the machine's clock, like any
// mount-time log scan. Events on bus (nil-safe) record per-segment recovery;
// clock stamps them.
//
// A page that was invalidated in memory but never overwritten on the media
// is resurrected by recovery: the log has no record of the invalidation.
// That is safe — the VM layer re-faults pages it still cares about and the
// extra copies die at the next cleaning pass — and it is exactly how a
// log without explicit deletion records behaves after a crash.
func RecoverLFS(cfg LFSConfig, fsys *fs.FS, pool *mem.Pool, bus *obs.Bus, clock *sim.Clock) (*LFS, *RecoveryReport, error) {
	cfg.setDefaults()
	if !cfg.Durable {
		return nil, nil, fmt.Errorf("swap: RecoverLFS requires LFSConfig.Durable")
	}
	rep := &RecoveryReport{}
	file, err := fsys.Open("swap.lfs")
	if err != nil {
		// No swap file on the media: the machine crashed before its first
		// pageout. Boot a fresh, empty store.
		l, err := NewLFS(cfg, fsys, pool)
		return l, rep, err
	}
	l, err := makeLFS(cfg, fsys, pool, file)
	if err != nil {
		return nil, nil, err
	}

	type candidate struct {
		region int32
		seg    *lfsSegment
	}
	var cands []candidate
	nRegions := int((file.Size() + int64(cfg.SegmentBytes) - 1) / int64(cfg.SegmentBytes))
	hdr := make([]byte, l.headerBytes)
	data := make([]byte, l.pagesPerSeg*cfg.PageSize)
	for s := int32(0); int(s) < nRegions; s++ {
		rep.ScannedSegments++
		if err := file.RawRead(hdr, l.segOff(s), l.headerBytes); err != nil {
			return nil, nil, fmt.Errorf("swap: recovery read of segment %d header: %w", s, err)
		}
		seq, keys, lengths, sums, ok := lfsDecodeHeader(hdr, l.pagesPerSeg)
		if !ok {
			continue // never written, torn header, or garbage: region is free
		}
		n := len(keys) * cfg.PageSize
		if err := file.RawRead(data[:n], l.dataOff(s, 0), n); err != nil {
			return nil, nil, fmt.Errorf("swap: recovery read of segment %d data: %w", s, err)
		}
		seg := &lfsSegment{
			seq:   seq,
			pages: make([]PageKey, len(keys)),
			sums:  make([]uint32, len(keys)),
		}
		for i, key := range keys {
			seg.pages[i] = lfsTombstone
			if key == lfsTombstone {
				continue
			}
			pg := data[i*cfg.PageSize : (i+1)*cfg.PageSize]
			if lengths[i] != uint32(cfg.PageSize) || crc32.ChecksumIEEE(pg) != sums[i] {
				// The header survived but this slot's data did not reach the
				// media whole — the torn tail of the crashed flush.
				rep.TornDiscarded++
				continue
			}
			seg.pages[i] = key
			seg.sums[i] = sums[i]
		}
		cands = append(cands, candidate{region: s, seg: seg})
	}

	// Replay in sequence order so a later copy of a page supersedes an
	// earlier one; region number breaks (corrupt-media) sequence ties
	// deterministically.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seg.seq != cands[j].seg.seq {
			return cands[i].seg.seq < cands[j].seg.seq
		}
		return cands[i].region < cands[j].region
	})
	l.segs = make([]*lfsSegment, nRegions)
	var maxSeq uint64
	for _, c := range cands {
		l.segs[c.region] = c.seg
		if c.seg.seq > maxSeq {
			maxSeq = c.seg.seq
		}
		rep.RecoveredSegments++
		pages := 0
		for i, key := range c.seg.pages {
			if key == lfsTombstone {
				continue
			}
			if old, ok := l.loc[key]; ok {
				stale := l.segs[old.seg]
				stale.pages[old.idx] = lfsTombstone
				stale.live--
				rep.StalePages++
			}
			l.loc[key] = lfsLoc{seg: c.region, idx: int32(i)}
			c.seg.live++
			pages++
		}
		rep.RecoveredPages += pages
		if bus.Enabled(obs.ClassRecovery) {
			bus.Emit(obs.Event{
				T: clock.Now(), Class: obs.ClassRecovery, Sub: obs.SubSwap,
				Seg: c.region, Bytes: int64(pages * cfg.PageSize), Aux: int64(pages),
			})
		}
	}
	for s := 0; s < nRegions; s++ {
		if l.segs[s] == nil {
			l.free = append(l.free, int32(s))
		}
	}
	l.seq = maxSeq + 1
	cur, err := l.allocSegment()
	if err != nil {
		return nil, nil, err
	}
	l.cur = cur
	if err := l.CheckConsistency(); err != nil {
		return nil, nil, fmt.Errorf("swap: recovered LFS fails consistency check: %w", err)
	}
	bus.Counter("recovery.segments").Add(uint64(rep.RecoveredSegments))
	bus.Counter("recovery.pages").Add(uint64(rep.RecoveredPages))
	bus.Counter("recovery.torn_discarded").Add(uint64(rep.TornDiscarded))
	return l, rep, nil
}

// VerifyRecovery checks the recovered store rec against pre, the pre-crash
// in-memory state, enforcing the two crash-consistency guarantees:
//
//  1. No acknowledged-durable page is lost: every page whose newest copy had
//     been flushed before the crash (its location is not the open segment)
//     must be recovered with exactly that copy's checksum.
//  2. No torn page is silently served: every page the recovered store
//     indexes must read back matching its recorded checksum.
//
// Pages whose newest copy was still staged in the open segment carry no
// durability promise — the crashed flush may have torn them away — so they
// are allowed to be missing or to resurface as an older durable copy.
func (rec *LFS) VerifyRecovery(pre *LFS) error {
	if !rec.durable() || !pre.durable() {
		return fmt.Errorf("swap: VerifyRecovery requires durable stores")
	}
	keys := sortedKeys(pre.loc)
	for _, key := range keys {
		pos := pre.loc[key]
		if pos.seg == pre.cur {
			continue // staged only: no durability promise
		}
		want := pre.segs[pos.seg].sums[pos.idx]
		rpos, ok := rec.loc[key]
		if !ok {
			return fmt.Errorf("swap: acknowledged-durable page %v lost in recovery", key)
		}
		if got := rec.segs[rpos.seg].sums[rpos.idx]; got != want {
			return fmt.Errorf("swap: page %v recovered with checksum %08x, want durable copy %08x", key, got, want)
		}
	}
	keys = sortedKeys(rec.loc)
	buf := make([]byte, rec.cfg.PageSize)
	for _, key := range keys {
		ok, err := rec.Read(key, buf)
		if err != nil {
			return fmt.Errorf("swap: recovered page %v unreadable: %w", key, err)
		}
		if !ok {
			return fmt.Errorf("swap: recovered page %v vanished from the index", key)
		}
		pos := rec.loc[key]
		want := rec.segs[pos.seg].sums[pos.idx]
		if sum := crc32.ChecksumIEEE(buf); sum != want {
			return fmt.Errorf("swap: recovered page %v served with checksum %08x, recorded %08x", key, sum, want)
		}
	}
	return nil
}

func sortedKeys(m map[PageKey]lfsLoc) []PageKey {
	keys := make([]PageKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Seg != keys[j].Seg {
			return keys[i].Seg < keys[j].Seg
		}
		return keys[i].Page < keys[j].Page
	})
	return keys
}
