// Mobile: the paper's §1 pitch — a small-memory mobile computer, diskless,
// paging over a slow wireless network, where "the disparity between
// processor speed and I/O speed is at least as great … as for
// workstations". Runs the same working set against the local-disk
// workstation and the wireless mobile machine, with and without the
// compression cache.
//
//	go run ./examples/mobile [-mem MB] [-size MB]
package main

import (
	"flag"
	"fmt"
	"log"

	"compcache"
)

func main() {
	memMB := flag.Int("mem", 2, "physical memory in MB")
	sizeMB := flag.Int("size", 5, "working-set size in MB")
	flag.Parse()

	pages := int32(*sizeMB << 20 / 4096)
	// Read-mostly sweep: after the initial load, every fault the cache
	// absorbs is a network/disk read avoided, so the comparison isolates
	// the backing store's speed.
	mk := func() compcache.Workload {
		return &compcache.Thrasher{Pages: pages, Write: false, Passes: 3, Seed: 9}
	}

	fmt.Printf("a %d MB machine sweeping a %d MB working set\n\n", *memMB, *sizeMB)
	fmt.Printf("%-34s  %-10s  %-10s  %s\n", "machine", "std", "cc", "speedup")

	configs := []struct {
		name string
		cfg  compcache.Config
	}{
		{"workstation (RZ57 local disk)", compcache.Default(int64(*memMB) << 20)},
		{"mobile (2-Mbps wireless, diskless)",
			compcache.Default(int64(*memMB) << 20).WithNetwork(compcache.Wireless2())},
	}
	for _, c := range configs {
		cmp, err := compcache.RunBoth(c.cfg, c.cfg.WithCC(), mk())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s  %-10v  %-10v  %.2fx\n",
			c.name, cmp.Std.Time.Round(1e6), cmp.CC.Time.Round(1e6), cmp.Speedup())
	}

	fmt.Println("\nthe slower the backing store, the more each avoided transfer is worth —")
	fmt.Println("the compression cache was proposed for exactly this machine (§1, §6).")
}
