package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite enforces the parallel runner's determinism contract at the
// source level: results produced by concurrent goroutines are either
// index-slotted into a pre-sized slice (results[i] = r — each goroutine
// owns its slot, merge order is the index order) or handed over a
// channel. Any other write to a variable captured from the enclosing
// scope — a plain scalar, a struct field, a map entry, a dereferenced
// pointer — is scheduler-ordered: the outcome depends on goroutine
// interleaving, which is exactly the shape that silently breaks the
// byte-identical -j1 ≡ -jN guarantee (and usually the race detector's
// patience too).
//
// The analysis is type-informed: a captured variable is one whose
// declaration lies outside the `go` closure (including package level);
// index expressions are split by the indexed type, slices/arrays being
// slot writes and maps being unordered shared state.
type SharedWrite struct{}

// Name implements Analyzer.
func (SharedWrite) Name() string { return "sharedwrite" }

// Doc implements Analyzer.
func (SharedWrite) Doc() string {
	return "goroutine closures may write captured state only via index-slotted slices or channels (the -j1 ≡ -jN contract)"
}

// Severity implements Analyzer.
func (SharedWrite) Severity() Severity { return SevError }

// Check implements Analyzer.
func (s SharedWrite) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil {
		return nil
	}
	info := pkg.Mod.Info
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, s.checkClosure(pkg, info, lit)...)
			return true
		})
	}
	return out
}

// checkClosure walks one go-closure body (nested function literals
// included — they run on the same goroutine) and flags writes to
// captured variables that are not index-slotted.
func (s SharedWrite) checkClosure(pkg *Package, info *types.Info, lit *ast.FuncLit) []Diagnostic {
	captured := func(id *ast.Ident) (types.Object, bool) {
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok {
			return nil, false
		}
		// Declared outside the closure's span = captured (parameters of
		// the closure and locals fall inside).
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return nil, false
		}
		return obj, true
	}

	var out []Diagnostic
	flagLHS := func(lhs ast.Expr, verb string) {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			if obj, ok := captured(lhs); ok {
				out = append(out, diag(pkg, s.Name(), lhs,
					"goroutine %s captured variable %s; concurrent writes are scheduler-ordered — use an index-slotted slice or a channel", verb, obj.Name()))
			}
		case *ast.SelectorExpr:
			if root := rootCapturedIdent(lhs.X); root != nil {
				if obj, ok := captured(root); ok {
					out = append(out, diag(pkg, s.Name(), lhs,
						"goroutine %s field %s of captured %s; concurrent writes are scheduler-ordered — use an index-slotted slice or a channel", verb, lhs.Sel.Name, obj.Name()))
				}
			}
		case *ast.IndexExpr:
			t := info.TypeOf(lhs.X)
			if t == nil {
				return
			}
			switch deref(t.Underlying()).Underlying().(type) {
			case *types.Map:
				if root := rootCapturedIdent(lhs.X); root != nil {
					if obj, ok := captured(root); ok {
						out = append(out, diag(pkg, s.Name(), lhs,
							"goroutine %s captured map %s; map writes are unordered shared state — index-slot a slice or use a channel", verb, obj.Name()))
					}
				}
			default:
				// Slice/array element write: the index-slotted pattern.
				// This is the contract's sanctioned shape; nothing to do.
			}
		case *ast.StarExpr:
			if root := rootCapturedIdent(lhs.X); root != nil {
				if obj, ok := captured(root); ok {
					out = append(out, diag(pkg, s.Name(), lhs,
						"goroutine %s through captured pointer %s; concurrent writes are scheduler-ordered — use an index-slotted slice or a channel", verb, obj.Name()))
				}
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := declares inside the closure
			}
			for _, lhs := range n.Lhs {
				flagLHS(lhs, "writes")
			}
		case *ast.IncDecStmt:
			flagLHS(n.X, "increments")
		}
		return true
	})
	return out
}

// rootCapturedIdent unwraps selectors/indexes/parens/derefs down to the
// base identifier of an lvalue, or nil.
func rootCapturedIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
