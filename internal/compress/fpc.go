package compress

import (
	"encoding/binary"
	"fmt"
)

// FPC is a Frequent-Pattern Compression codec after Alameldeen & Wood
// (UW-Madison TR-1500, 2004): each 32-bit word is matched against a small
// set of frequent patterns — zeros, narrow sign-extended integers, a
// repeated byte — and replaced by a 4-bit prefix code plus only the word's
// significant bytes. Like BDI it needs no history window or searching, so
// the hardware proposals pipeline it at a few cycles per word; here it is
// the second "hardware-class" point on the codec axis, trading a little of
// BDI's speed for pattern coverage that does not require whole lines to
// cooperate.
//
// Format: one flag byte (flagCompress/flagCopy), then a 4-byte little-endian
// original length, then a sequence of control bytes each holding two 4-bit
// prefix codes (low nibble first). Each code's payload follows the control
// byte in code order; the next control byte starts after the second code's
// payload. Codes:
//
//	fpcZero    — zero word, no payload
//	fpcZeroRun — run of 2..255 zero words; payload one count byte
//	fpcSE8     — word is a sign-extended  8-bit value; payload 1 byte
//	fpcSE16    — word is a sign-extended 16-bit value; payload 2 bytes (LE)
//	fpcLoZero  — lower halfword zero; payload is the upper halfword (2 bytes)
//	fpcHalfSE8 — each halfword is a sign-extended 8-bit value; payload 2 bytes
//	fpcRepByte — four identical bytes; payload 1 byte
//	fpcRaw     — uncompressed word; payload 4 bytes (LE order preserved)
//
// When the word count is odd the final control byte's high nibble must be
// zero (fpcZero is never a valid dangling code since the count is exhausted,
// so the decoder ignores it). The 0..3 bytes of input beyond the last whole
// word are stored verbatim at the end of the block and their length is
// implied by the header. If the encoded block would not beat len(src)+1 the
// stored fallback is used, so MaxCompressedSize is n+1.
type FPC struct{}

const (
	fpcZero = iota
	fpcZeroRun
	fpcSE8
	fpcSE16
	fpcLoZero
	fpcHalfSE8
	fpcRepByte
	fpcRaw

	fpcLenBytes   = 4
	fpcMaxZeroRun = 255
)

// Name reports "fpc".
func (FPC) Name() string { return "fpc" }

// MaxCompressedSize reports n+1 (stored fallback).
func (FPC) MaxCompressedSize(n int) int { return n + 1 }

// Compress appends the FPC-compressed form of src to dst.
func (FPC) Compress(dst, src []byte) []byte {
	base := len(dst)
	limit := base + len(src) + 1
	dst = append(dst, flagCompress)
	var lenHdr [fpcLenBytes]byte
	binary.LittleEndian.PutUint32(lenHdr[:], uint32(len(src)))
	dst = append(dst, lenHdr[:]...)

	words := len(src) / 4
	ctrlPos := -1 // position of a control byte with a free high nibble
	var pl [4]byte
	for w := 0; w < words && len(dst) <= limit; {
		v := binary.LittleEndian.Uint32(src[w*4:])
		var code int
		np := 0 // payload length in pl
		adv := 1
		if v == 0 {
			run := 1
			for run < fpcMaxZeroRun && w+run < words &&
				binary.LittleEndian.Uint32(src[(w+run)*4:]) == 0 {
				run++
			}
			if run >= 2 {
				code, pl[0], np, adv = fpcZeroRun, byte(run), 1, run
			} else {
				code = fpcZero
			}
		} else {
			switch {
			case v == uint32(int32(int8(v))):
				code, pl[0], np = fpcSE8, byte(v), 1
			case v == uint32(int32(int16(v))):
				code, np = fpcSE16, 2
				binary.LittleEndian.PutUint16(pl[:], uint16(v))
			case v&0xFFFF == 0:
				code, np = fpcLoZero, 2
				binary.LittleEndian.PutUint16(pl[:], uint16(v>>16))
			case uint16(v) == uint16(int16(int8(v))) && uint16(v>>16) == uint16(int16(int8(v>>16))):
				code, pl[0], pl[1], np = fpcHalfSE8, byte(v), byte(v>>16), 2
			case v == uint32(v&0xFF)*0x01010101:
				code, pl[0], np = fpcRepByte, byte(v), 1
			default:
				code, np = fpcRaw, 4
				binary.LittleEndian.PutUint32(pl[:], v)
			}
		}
		if ctrlPos < 0 {
			ctrlPos = len(dst)
			dst = append(dst, byte(code))
		} else {
			dst[ctrlPos] |= byte(code) << 4
			ctrlPos = -1
		}
		dst = append(dst, pl[:np]...)
		w += adv
	}
	dst = append(dst, src[words*4:]...) // raw tail, length implied by header
	if len(dst) > limit {
		return storedBlock(dst[:base], src)
	}
	return dst
}

// Decompress appends the decompressed form of an FPC block to dst.
func (FPC) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrCorrupt)
	}
	flag, body := src[0], src[1:]
	switch flag {
	case flagCopy:
		return append(dst, body...), nil
	case flagCompress:
	default:
		return nil, fmt.Errorf("%w: bad flag byte %#x", ErrCorrupt, flag)
	}
	if len(body) < fpcLenBytes {
		return nil, fmt.Errorf("%w: truncated fpc header", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(body))
	body = body[fpcLenBytes:]
	words, tail := n/4, n%4
	pos, ctrl, haveHi := 0, byte(0), false
	var wbuf [4]byte
	for w := 0; w < words; {
		var code byte
		if haveHi {
			code, haveHi = ctrl>>4, false
		} else {
			if pos >= len(body) {
				return nil, fmt.Errorf("%w: fpc input exhausted at word %d/%d", ErrCorrupt, w, words)
			}
			ctrl, code, haveHi = body[pos], body[pos]&0x0F, true
			pos++
		}
		need := 0
		switch code {
		case fpcZero:
		case fpcZeroRun, fpcSE8, fpcRepByte:
			need = 1
		case fpcSE16, fpcLoZero, fpcHalfSE8:
			need = 2
		case fpcRaw:
			need = 4
		default:
			return nil, fmt.Errorf("%w: bad fpc code %d", ErrCorrupt, code)
		}
		if pos+need > len(body) {
			return nil, fmt.Errorf("%w: truncated fpc payload", ErrCorrupt)
		}
		payload := body[pos : pos+need]
		pos += need
		var v uint32
		switch code {
		case fpcZero:
			v = 0
		case fpcZeroRun:
			run := int(payload[0])
			if run < 2 || w+run > words {
				return nil, fmt.Errorf("%w: bad fpc zero-run length %d", ErrCorrupt, run)
			}
			for i := 0; i < run; i++ {
				dst = append(dst, 0, 0, 0, 0)
			}
			w += run
			continue
		case fpcSE8:
			v = uint32(int32(int8(payload[0])))
		case fpcSE16:
			v = uint32(int32(int16(binary.LittleEndian.Uint16(payload))))
		case fpcLoZero:
			v = uint32(binary.LittleEndian.Uint16(payload)) << 16
		case fpcHalfSE8:
			v = uint32(uint16(int16(int8(payload[0])))) |
				uint32(uint16(int16(int8(payload[1]))))<<16
		case fpcRepByte:
			v = uint32(payload[0]) * 0x01010101
		case fpcRaw:
			v = binary.LittleEndian.Uint32(payload)
		}
		binary.LittleEndian.PutUint32(wbuf[:], v)
		dst = append(dst, wbuf[:]...)
		w++
	}
	if haveHi && ctrl>>4 != 0 {
		return nil, fmt.Errorf("%w: nonzero dangling fpc nibble", ErrCorrupt)
	}
	if len(body)-pos != tail {
		return nil, fmt.Errorf("%w: fpc tail is %d bytes, want %d", ErrCorrupt, len(body)-pos, tail)
	}
	return append(dst, body[pos:]...), nil
}
