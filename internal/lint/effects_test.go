package lint

import (
	"bytes"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"compcache/internal/compress"
)

// fxEffects resolves the inferred facts for one function of the effects
// unit fixture (testdata/src/effects).
func fxEffects(t *testing.T, name string) *FnEffects {
	t.Helper()
	mod := fixtureModule(t)
	fe := mod.Effects().Of(findFn(t, mod, "effects", name))
	if fe == nil {
		t.Fatalf("no effect facts for %s", name)
	}
	return fe
}

// TestEffectsPerAllocationKind pins the classification of every
// allocation kind the engine recognizes, one fixture function each.
func TestEffectsPerAllocationKind(t *testing.T) {
	cases := []struct {
		fn       string
		want     Effects // exact summary
		whatSub  string  // substring of the first site's What ("" = no sites)
		numSites int
	}{
		{"CompositeLit", AllocSteady, "literal", 1},
		{"AppendFresh", AllocSteady, "append to out", 1},
		{"AppendParam", AllocWarm | Escapes, "append to dst", 1},
		{"StringConv", AllocSteady, "conversion", 1},
		{"Boxing", AllocSteady, "boxed into interface argument", 1},
		{"Closure", AllocSteady, "escaping closure", 1},
		{"MapWrite", AllocWarm, "map write to m", 1},
		{"Clean", 0, "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fe := fxEffects(t, tc.fn)
			if fe.Summary != tc.want {
				t.Errorf("%s summary = {%s}, want {%s}", tc.fn, fe.Summary, tc.want)
			}
			if len(fe.Sites) != tc.numSites {
				t.Fatalf("%s has %d sites, want %d", tc.fn, len(fe.Sites), tc.numSites)
			}
			if tc.numSites > 0 && !strings.Contains(fe.Sites[0].What, tc.whatSub) {
				t.Errorf("%s site %q does not mention %q", tc.fn, fe.Sites[0].What, tc.whatSub)
			}
		})
	}
}

// TestEffectsFixedPointConverges: mutual recursion must terminate and
// both functions must end up with the allocating summary.
func TestEffectsFixedPointConverges(t *testing.T) {
	for _, name := range []string{"Ping", "Pong"} {
		if fe := fxEffects(t, name); !fe.Summary.Has(AllocSteady) {
			t.Errorf("%s summary = {%s}, want allocates (propagated through the cycle)", name, fe.Summary)
		}
	}
	// Ping itself has no local allocation site; its steadiness is purely
	// the propagated fixed point.
	if fe := fxEffects(t, "Ping"); fe.Local.Has(AllocSteady) {
		t.Error("Ping has a local steady site; the fixture should only inherit one from Pong")
	}
}

// TestCallGraphCycleTerminates: Reaches and Path over a mutually
// recursive pair must terminate and produce the deterministic chain.
func TestCallGraphCycleTerminates(t *testing.T) {
	mod := fixtureModule(t)
	ping := findFn(t, mod, "effects", "Ping")
	pong := findFn(t, mod, "effects", "Pong")

	reach := mod.Graph.Reaches(func(fn *types.Func) bool { return fn == pong })
	if !reach[ping] {
		t.Error("Reaches lost Ping → Pong inside the cycle")
	}
	chain := mod.Graph.Path(ping, func(fn *types.Func) bool { return fn == pong })
	if len(chain) != 2 || chain[0] != ping || chain[1] != pong {
		t.Errorf("Path(Ping → Pong) = %s, want the direct 2-hop chain", chainString(chain))
	}
	// Determinism: the same query answers identically on repeat.
	for i := 0; i < 3; i++ {
		again := mod.Graph.Path(ping, func(fn *types.Func) bool { return fn == pong })
		if len(again) != len(chain) || again[0] != chain[0] || again[1] != chain[1] {
			t.Fatalf("Path is not deterministic: %s vs %s", chainString(again), chainString(chain))
		}
	}
}

// realModule loads the actual compcache module once for the whole test
// binary (shared by the codec cross-check and manifest tests).
var (
	realOnce sync.Once
	realMod  *Module
	realErr  error
)

func realModule(t *testing.T) *Module {
	t.Helper()
	realOnce.Do(func() { realMod, realErr = LoadModule(".") })
	if realErr != nil {
		t.Fatalf("LoadModule(.): %v", realErr)
	}
	return realMod
}

// findCodecMethod resolves the concrete Compress/Decompress method of a
// registered codec by receiver type name.
func findCodecMethod(t *testing.T, mod *Module, recv, name string) *types.Func {
	t.Helper()
	for _, n := range mod.Graph.order {
		if n.Fn.Name() != name || n.Pkg == nil || !pathHasSuffix(n.Pkg.Path, "internal/compress") {
			continue
		}
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Name() == recv {
			return n.Fn
		}
	}
	t.Fatalf("codec method %s.%s not found in internal/compress", recv, name)
	return nil
}

// TestCodecStaticDynamicAllocAgreement cross-checks the two proofs for
// every registered codec: the effect engine must statically infer no
// steady-state allocation for the concrete Compress/Decompress (which
// is what keeps hotalloc quiet), and testing.AllocsPerRun must
// dynamically measure zero once pools are warm. A disagreement in
// either direction is a soundness or precision bug worth failing on.
func TestCodecStaticDynamicAllocAgreement(t *testing.T) {
	mod := realModule(t)
	facts := mod.Effects()
	const pageSize = 4096
	page := bytes.Repeat([]byte("static dynamic agreement "), pageSize/25+1)[:pageSize]

	for _, name := range compress.Names() {
		c, err := compress.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		recv := strings.TrimPrefix(strings.TrimPrefix(fmt.Sprintf("%T", c), "*"), "compress.")
		t.Run(name, func(t *testing.T) {
			// Static half: both contract methods are recognized roots with
			// no steady allocation anywhere in their summaries.
			for _, meth := range []string{"Compress", "Decompress"} {
				fn := findCodecMethod(t, mod, recv, meth)
				if !codecContract(fn) {
					t.Errorf("%s.%s does not match the codec contract shape", recv, meth)
				}
				if sum := facts.Of(fn).Summary; sum.Has(AllocSteady) {
					t.Errorf("%s.%s statically allocates in steady state ({%s}); hotalloc and AllocsPerRun disagree", recv, meth, sum)
				}
			}
			// Dynamic half, mirroring TestCodecZeroAllocs' warm-up.
			comp := make([]byte, 0, c.MaxCompressedSize(pageSize))
			plain := make([]byte, 0, pageSize)
			comp = c.Compress(comp[:0], page)
			if n := testing.AllocsPerRun(50, func() {
				comp = c.Compress(comp[:0], page)
			}); n != 0 {
				t.Errorf("Compress dynamically allocates %v/run; the static proof says zero", n)
			}
			if n := testing.AllocsPerRun(50, func() {
				out, err := c.Decompress(plain[:0], comp)
				if err != nil {
					t.Fatal(err)
				}
				plain = out[:0]
			}); n != 0 {
				t.Errorf("Decompress dynamically allocates %v/run; the static proof says zero", n)
			}
		})
	}
}

// TestEffectsManifestDeterministic: regenerating the manifest twice
// must be byte-identical, and the checked-in file must be fresh (CI
// enforces the same property by regenerate-and-diff).
func TestEffectsManifestDeterministic(t *testing.T) {
	mod := realModule(t)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	if err := WriteEffects(p1, mod); err != nil {
		t.Fatal(err)
	}
	if err := WriteEffects(p2, mod); err != nil {
		t.Fatal(err)
	}
	d1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("two regenerations of the effects manifest differ")
	}
	checked, err := os.ReadFile(filepath.Join(mod.Root, EffectsFile))
	if err != nil {
		t.Fatalf("checked-in %s unreadable: %v", EffectsFile, err)
	}
	if !bytes.Equal(checked, d1) {
		t.Fatalf("checked-in %s is stale; regenerate with `go run ./cmd/cclint -write-effects`", EffectsFile)
	}
}

// TestHotAllocTreeClean locks the tentpole invariant: the real tree has
// zero unignored findings under the full fifteen-analyzer suite —
// in particular no steady-state allocation on the paging hot path.
// (The full suite must run so ignore directives for the other
// analyzers resolve; a partial suite would misread them as unknown.)
func TestHotAllocTreeClean(t *testing.T) {
	mod := realModule(t)
	for _, d := range Run(mod.Pkgs, All()) {
		t.Errorf("unexpected finding on the real tree: %v", d)
	}
}

// BenchmarkLintModule measures full-module cclint wall time: load,
// type-check, call graph, effect inference, and all fifteen analyzers — the
// pass the CI wall-time budget gate times against .cclint-lint-budget.
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod, err := LoadModule(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := mod.Select(".", []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if diags := Run(pkgs, All()); len(diags) > 0 {
			b.Fatalf("tree not clean under benchmark: %d findings", len(diags))
		}
	}
}
