package exp

import (
	"context"
	"testing"

	"compcache/internal/compress"
	"compcache/internal/machine"
	"compcache/internal/swap"
	"compcache/internal/workload"
)

// tinyCrashLegs returns small machine configurations — the durable LFS plus
// one compressed machine per registered codec — whose runs have few enough
// device writes to crash exhaustively.
func tinyCrashLegs() map[string]machine.Config {
	base := machine.Default(64 * 4096) // 64 frames
	legs := map[string]machine.Config{
		"lfs": base.WithLFS(swap.LFSConfig{SegmentBytes: 8 * 4096, Durable: true, Paranoid: true}),
	}
	for _, codec := range compress.Names() {
		cfg := base.WithCC()
		cfg.CC.Codec = codec
		cfg.Swap.CommitRecords = true
		cfg.Swap.Paranoid = true
		legs["cc/"+codec] = cfg
	}
	return legs
}

// TestCrashAtEveryPoint is the exhaustive satellite: for every leg, crash at
// every single device write of a small run and verify every recovery.
func TestCrashAtEveryPoint(t *testing.T) {
	w := &workload.Thrasher{Pages: 80, Write: true, Passes: 1, CompressTarget: 0.85, Seed: 5}
	for name, cfg := range tinyCrashLegs() {
		t.Run(name, func(t *testing.T) {
			st, err := workload.Measure(cfg, workload.Clone(w))
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			writes := int(st.Disk.Writes)
			if writes == 0 {
				t.Fatal("baseline run never wrote to the device; the sweep proves nothing")
			}
			if testing.Short() && writes > 40 {
				writes = 40
			}
			for k := 1; k <= writes; k++ {
				if _, err := crashTrial(cfg, workload.Clone(w), 5, uint64(k)); err != nil {
					t.Errorf("%v", err)
				}
			}
		})
	}
}

// TestCrashSweepDeterministicAcrossWorkers reruns one leg's sweep serially
// and with eight workers; virtual-time simulation must make the aggregate
// recovery reports identical.
func TestCrashSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := machine.Default(64 * 4096).WithCC()
	cfg.Swap.CommitRecords = true
	cfg.Swap.Paranoid = true
	w := &workload.Thrasher{Pages: 80, Write: true, Passes: 1, CompressTarget: 0.85, Seed: 5}

	ctx := context.Background()
	s1, w1, rep1, err := crashSweepLeg(ctx, cfg, w, 5, 1)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	s8, w8, rep8, err := crashSweepLeg(ctx, cfg, w, 5, 8)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if s1 != s8 || w1 != w8 || rep1 != rep8 {
		t.Errorf("sweep diverged across workers:\n-j1: %d/%d %+v\n-j8: %d/%d %+v",
			s1, w1, rep1, s8, w8, rep8)
	}
	if s1 == 0 {
		t.Error("sweep sampled no crash points")
	}
}
