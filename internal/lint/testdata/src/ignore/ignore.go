// Package ig is a golden fixture for the //cclint:ignore directive
// machinery: well-formed directives suppress exactly their line, and
// malformed, unknown or stale directives are themselves findings.
package ig

import "time"

// deliberate carries a trailing directive: the finding on this line is
// suppressed and nothing is reported.
func deliberate() int64 {
	return time.Now().UnixNano() //cclint:ignore walltime -- fixture: deliberate host-time read
}

// standalone puts the directive on its own line; it suppresses the line
// below.
func standalone() {
	//cclint:ignore walltime -- fixture: suppresses the sleep below
	time.Sleep(time.Millisecond)
}

// missingReason omits the mandatory "-- reason": the directive does not
// suppress, and is reported itself.
func missingReason() {
	time.Sleep(1) //cclint:ignore walltime // want `wall-clock call time\.Sleep` `ignore directive missing`
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer() {
	time.Sleep(2) //cclint:ignore wibble -- no such analyzer // want `wall-clock call time\.Sleep` `unknown analyzer "wibble"`
}

// stale suppresses nothing: the directive must be deleted.
func stale() int {
	return 3 //cclint:ignore walltime -- nothing here needs it // want `suppresses nothing`
}
