// Package fo is the floatorder golden fixture: float reductions in the
// two positions Go leaves unordered, next to their deterministic fixes.
package fo

import "sort"

// badSumMap reduces floats in random map order.
func badSumMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation inside map iteration`
	}
	return total
}

// badSpelled spells the accumulation out; still order-sensitive.
func badSpelled(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `float accumulation inside map iteration`
	}
	return total
}

// goodSorted materializes and sorts the keys first.
func goodSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// goodIntCount is integer accumulation: commutative, silent.
func goodIntCount(m map[string]float64) int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// goodLocalReset accumulates into a body-local; it resets every
// iteration and cannot carry order dependence out of the loop.
func goodLocalReset(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		sub := 0.0
		for _, v := range vs {
			sub += v
		}
		if sub > 1 {
			n += 1
		}
	}
	return n
}

// badParallel reduces in scheduler order; sharedwrite objects to the
// captured write too — one line, two broken contracts.
func badParallel(vs []float64) float64 {
	sum := 0.0
	done := make(chan struct{}, len(vs))
	for _, v := range vs {
		v := v
		go func() {
			sum += v // want `float accumulation across goroutines` `goroutine writes captured variable sum`
			done <- struct{}{}
		}()
	}
	for range vs {
		<-done
	}
	return sum
}

// goodPartials index-slots per-goroutine partial sums and reduces after
// the join, in index order.
func goodPartials(vs []float64) float64 {
	parts := make([]float64, len(vs))
	done := make(chan struct{}, len(vs))
	for i, v := range vs {
		i, v := i, v
		go func() {
			parts[i] = v
			done <- struct{}{}
		}()
	}
	for range vs {
		<-done
	}
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}
