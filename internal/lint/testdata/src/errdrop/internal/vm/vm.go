// Package vm is the errdrop golden fixture: the paged-data path where one
// dropped error return breaks the degradation ladder invisibly.
package vm

import (
	"errors"
	"fmt"
	"strings"

	"compcache/errdrop/internal/stats"
)

// Pager fakes the vm layer over a fallible backing store.
type Pager struct {
	run stats.Run
}

// read fakes a fallible page fetch.
func (p *Pager) read(addr int) error {
	if addr < 0 {
		return errors.New("vm: bad address")
	}
	return nil
}

// write fakes a fallible page store.
func (p *Pager) write(addr int) error { return p.read(addr) }

// fetch fakes a read that also returns data.
func (p *Pager) fetch(addr int) (int, error) { return addr, p.read(addr) }

// badDiscard drops the error on the floor.
func (p *Pager) badDiscard(addr int) {
	p.read(addr) // want `p\.read returns an error that is silently discarded`
}

// badBlank drops it into the blank identifier.
func (p *Pager) badBlank(addr int) {
	_ = p.read(addr) // want `error result assigned to the blank identifier`
}

// badTupleBlank keeps the value but blanks the error.
func (p *Pager) badTupleBlank(addr int) int {
	n, _ := p.fetch(addr) // want `error result assigned to the blank identifier`
	return n
}

// badOverwrite loses the first failure to the second assignment.
func (p *Pager) badOverwrite(addr int) error {
	err := p.read(addr) // want `error assigned to err is overwritten before anything reads it`
	err = p.write(addr)
	return err
}

// goodChecked handles every return.
func (p *Pager) goodChecked(addr int) error {
	if err := p.read(addr); err != nil {
		return fmt.Errorf("vm: read: %w", err)
	}
	return p.write(addr)
}

// goodWrap overwrites err while reading it: wrapping, not dropping.
func (p *Pager) goodWrap(addr int) error {
	err := p.read(addr)
	err = fmt.Errorf("vm: %w", err)
	return err
}

// goodSequential reads the first error before reusing the variable.
func (p *Pager) goodSequential(addr int) error {
	err := p.read(addr)
	if err != nil {
		return err
	}
	err = p.write(addr)
	return err
}

// goodBuilder discards a strings.Builder error: the conventional
// always-nil source is exempt.
func (p *Pager) goodBuilder() string {
	var b strings.Builder
	b.WriteString("page")
	return b.String()
}

// goodIgnored documents a deliberate drop with a directive.
func (p *Pager) goodIgnored(addr int) {
	p.read(addr) //cclint:ignore errdrop -- fixture: prefetch probe, a miss here is re-fetched on the fault path
}

// badDeferDiscard drops a deferred call's error: the defer statement's
// call is not an expression statement, so a call-statement-only check
// misses it.
func (p *Pager) badDeferDiscard(addr int) {
	defer p.read(addr) // want `p\.read returns an error that is silently discarded`
}

// badGoDiscard drops the error of a spawned call the same way.
func (p *Pager) badGoDiscard(addr int) {
	go p.write(addr) // want `p\.write returns an error that is silently discarded`
}

// badDeferBlank blanks the error inside a defer closure — the cleanup
// path is exactly where close errors die.
func (p *Pager) badDeferBlank(addr int) {
	defer func() {
		_ = p.read(addr) // want `error result assigned to the blank identifier`
	}()
}

// badDeferOverwrite loses the first failure to a shadow-overwrite
// inside a defer closure.
func (p *Pager) badDeferOverwrite(addr int) (last error) {
	defer func() {
		err := p.read(addr) // want `error assigned to err is overwritten before anything reads it`
		err = p.write(addr)
		last = err
	}()
	return nil
}

// goodDeferHandled checks the deferred close's error.
func (p *Pager) goodDeferHandled(addr int) (err error) {
	defer func() {
		if cerr := p.read(addr); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// Healthy reads the nested view, which is always fine.
func (p *Pager) Healthy() bool { return !p.run.Faults.Any() }
