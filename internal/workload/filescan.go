package workload

import (
	"fmt"
	"math/rand"

	"compcache/internal/machine"
)

// FileScan exercises the §6 extension — a compressed file buffer cache — by
// cyclically reading a file larger than memory through the file system. It
// is not one of the paper's benchmarks; it is the workload §6's "improve the
// cache hit rate" remark implies.
type FileScan struct {
	// FileBytes is the file size; choose larger than memory.
	FileBytes int64

	// Passes is the number of full sequential read passes after the file is
	// written.
	Passes int

	// CompressTarget tunes the file contents' compressibility (default
	// 0.25).
	CompressTarget float64

	// Seed makes runs reproducible.
	Seed int64
}

// Name implements Workload.
func (f *FileScan) Name() string { return "filescan" }

// Run implements Workload.
func (f *FileScan) Run(m *machine.Machine) error {
	if f.FileBytes <= 0 {
		return fmt.Errorf("filescan: FileBytes must be positive")
	}
	passes := f.Passes
	if passes <= 0 {
		passes = 3
	}
	target := f.CompressTarget
	if target == 0 {
		target = 0.25
	}
	bs := int64(m.FS.BlockSize())
	file := m.FS.Create("scan.data")
	rng := rand.New(rand.NewSource(f.Seed))
	buf := make([]byte, bs)
	for off := int64(0); off < f.FileBytes; off += bs {
		fillTunable(rng, buf, target)
		file.WriteAt(buf, off)
	}
	m.FS.Sync()

	m.MarkStart()
	for pass := 0; pass < passes; pass++ {
		for off := int64(0); off < f.FileBytes; off += bs {
			file.ReadAt(buf, off)
		}
	}
	m.Drain()
	return nil
}
