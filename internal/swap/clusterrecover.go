package swap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"compcache/internal/fs"
	"compcache/internal/obs"
	"compcache/internal/sim"
)

// Clustered commit-record layout. Every clustered write ends with one of
// these, fragment-aligned, in the same device transfer as the data:
//
//	off  0   magic "CCCR"
//	off  4   version  (uint16 LE)
//	off  6   count    (uint16 LE)   items in the batch
//	off  8   sequence (uint64 LE)   cluster order; higher supersedes lower
//	off 16   CRC-32   (uint32 LE)   over bytes [0, 24+28*count) with this
//	                                field zeroed
//	off 20   recFrags (uint32 LE)   fragments the record occupies
//	off 24   count records of 28 bytes:
//	             seg    (int32 LE)   page identity
//	             page   (int32 LE)
//	             start  (int32 LE)   absolute first fragment of the extent
//	             nfrags (int32 LE)
//	             length (int32 LE)   exact stored byte length
//	             flags  (uint32 LE)  bit 0: compressed
//	             sum    (uint32 LE)  CRC-32 of the stored bytes (Item.Sum)
const (
	ccrFixed       = 24
	ccrRecordBytes = 28
	ccrVersion     = 1
)

var ccrMagic = [4]byte{'C', 'C', 'C', 'R'}

// ccrEncode serializes a commit record for a batch placed at absolute
// fragment start. dst is the record's fragment range within the cluster
// serialization buffer, already zeroed; recFrags is the fragment count that
// range spans.
func ccrEncode(dst []byte, seq uint64, start int32, recFrags int32, placements []placement) {
	copy(dst, ccrMagic[:])
	binary.LittleEndian.PutUint16(dst[4:], ccrVersion)
	binary.LittleEndian.PutUint16(dst[6:], uint16(len(placements)))
	binary.LittleEndian.PutUint64(dst[8:], seq)
	binary.LittleEndian.PutUint32(dst[20:], uint32(recFrags))
	for i, p := range placements {
		off := ccrFixed + i*ccrRecordBytes
		binary.LittleEndian.PutUint32(dst[off:], uint32(p.item.Key.Seg))
		binary.LittleEndian.PutUint32(dst[off+4:], uint32(p.item.Key.Page))
		binary.LittleEndian.PutUint32(dst[off+8:], uint32(start+p.rel))
		binary.LittleEndian.PutUint32(dst[off+12:], uint32(p.nfrags))
		binary.LittleEndian.PutUint32(dst[off+16:], uint32(len(p.item.Data)))
		var flags uint32
		if p.item.Compressed {
			flags |= 1
		}
		binary.LittleEndian.PutUint32(dst[off+20:], flags)
		binary.LittleEndian.PutUint32(dst[off+24:], p.item.Sum)
	}
	crc := crc32.ChecksumIEEE(dst[:ccrFixed+len(placements)*ccrRecordBytes])
	binary.LittleEndian.PutUint32(dst[16:], crc)
}

// ccrItem is one decoded commit-record entry.
type ccrItem struct {
	key        PageKey
	start      int32
	nfrags     int32
	length     int32
	compressed bool
	sum        uint32
}

// ccrDecode parses and validates a commit record at the start of src. It
// returns ok=false for anything that is not a complete, checksum-valid,
// internally consistent record.
func ccrDecode(src []byte, fragSize int) (seq uint64, recFrags int32, items []ccrItem, ok bool) {
	if len(src) < ccrFixed {
		return 0, 0, nil, false
	}
	if [4]byte{src[0], src[1], src[2], src[3]} != ccrMagic {
		return 0, 0, nil, false
	}
	if binary.LittleEndian.Uint16(src[4:]) != ccrVersion {
		return 0, 0, nil, false
	}
	count := int(binary.LittleEndian.Uint16(src[6:]))
	end := ccrFixed + count*ccrRecordBytes
	if count == 0 || end > len(src) {
		return 0, 0, nil, false
	}
	stored := binary.LittleEndian.Uint32(src[16:])
	scratch := make([]byte, end)
	copy(scratch, src[:end])
	scratch[16], scratch[17], scratch[18], scratch[19] = 0, 0, 0, 0
	if crc32.ChecksumIEEE(scratch) != stored {
		return 0, 0, nil, false
	}
	recFrags = int32(binary.LittleEndian.Uint32(src[20:]))
	if recFrags != int32((end+fragSize-1)/fragSize) {
		return 0, 0, nil, false
	}
	seq = binary.LittleEndian.Uint64(src[8:])
	items = make([]ccrItem, count)
	for i := 0; i < count; i++ {
		off := ccrFixed + i*ccrRecordBytes
		it := ccrItem{
			key: PageKey{
				Seg:  int32(binary.LittleEndian.Uint32(src[off:])),
				Page: int32(binary.LittleEndian.Uint32(src[off+4:])),
			},
			start:      int32(binary.LittleEndian.Uint32(src[off+8:])),
			nfrags:     int32(binary.LittleEndian.Uint32(src[off+12:])),
			length:     int32(binary.LittleEndian.Uint32(src[off+16:])),
			compressed: binary.LittleEndian.Uint32(src[off+20:])&1 != 0,
			sum:        binary.LittleEndian.Uint32(src[off+24:]),
		}
		if it.start < 0 || it.nfrags <= 0 || it.length < 0 || int(it.length) > int(it.nfrags)*fragSize {
			return 0, 0, nil, false
		}
		items[i] = it
	}
	return seq, recFrags, items, true
}

// RecoverClustered mounts a clustered store from whatever the media image
// holds — the reboot-after-crash path. One sequential sweep reads the whole
// swap file; every fragment boundary is probed for a checksum-valid commit
// record. Records replay in descending sequence order: an item is accepted
// when its page is not yet recovered, its fragments are not claimed by a
// newer cluster, and its data checksums clean — so the newest intact copy of
// every page wins, torn copies fall through to the previous intact one, and
// copies whose media was since reused are rejected by the claim map or the
// checksum. The rebuilt store passes CheckConsistency before it is returned.
//
// Like LFS recovery, a page invalidated in memory but never overwritten on
// the media can be resurrected; the copy is valid, merely stale, and dies at
// the next compaction.
func RecoverClustered(cfg ClusterConfig, fsys *fs.FS, bus *obs.Bus, clock *sim.Clock) (*Clustered, *RecoveryReport, error) {
	cfg.setDefaults()
	if !cfg.CommitRecords {
		return nil, nil, fmt.Errorf("swap: RecoverClustered requires ClusterConfig.CommitRecords")
	}
	if err := cfg.validate(fsys.BlockSize()); err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{}
	file, err := fsys.Open("swap.clustered")
	if err != nil {
		// No swap file on the media: the machine crashed before its first
		// pageout. Boot a fresh, empty store.
		c, err := NewClustered(cfg, fsys)
		return c, rep, err
	}
	c := makeClustered(cfg, fsys, file)
	bs := int64(fsys.BlockSize())
	n := int((file.Size() + bs - 1) / bs * bs)
	if n == 0 {
		return c, rep, nil
	}

	// One sequential mount sweep reads the full media span, charged to the
	// device like any log scan.
	buf := make([]byte, n)
	if err := file.RawRead(buf, 0, n); err != nil {
		return nil, nil, fmt.Errorf("swap: recovery sweep of clustered swap: %w", err)
	}
	totalFrags := n / cfg.FragSize
	type candidate struct {
		frag     int32
		seq      uint64
		recFrags int32
		items    []ccrItem
	}
	var cands []candidate
	for f := 0; f < totalFrags; f++ {
		seq, recFrags, items, ok := ccrDecode(buf[f*cfg.FragSize:], cfg.FragSize)
		if !ok {
			continue
		}
		cands = append(cands, candidate{frag: int32(f), seq: seq, recFrags: recFrags, items: items})
	}
	rep.ScannedSegments = len(cands)

	// Newest first; fragment position breaks (corrupt-media) sequence ties
	// deterministically.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq > cands[j].seq
		}
		return cands[i].frag < cands[j].frag
	})
	claimed := make([]bool, totalFrags)
	unclaimedRun := func(start, nfrags int32) bool {
		if int(start+nfrags) > totalFrags {
			return false
		}
		for i := start; i < start+nfrags; i++ {
			if claimed[i] {
				return false
			}
		}
		return true
	}
	claim := func(start, nfrags int32) {
		for i := start; i < start+nfrags; i++ {
			claimed[i] = true
		}
	}
	var maxSeq uint64
	for _, cand := range cands {
		if cand.seq > maxSeq {
			maxSeq = cand.seq
		}
		// A record whose own fragments were reused by a newer cluster is
		// dead even if its bytes happen to still parse.
		if !unclaimedRun(cand.frag, cand.recFrags) {
			continue
		}
		claim(cand.frag, cand.recFrags) // tentative; reverted if nothing survives
		accepted := 0
		for _, it := range cand.items {
			if _, ok := c.extents[it.key]; ok {
				rep.StalePages++ // a newer cluster already recovered this page
				continue
			}
			if !unclaimedRun(it.start, it.nfrags) {
				rep.StalePages++ // media since reused by a newer cluster
				continue
			}
			dataOff := int(it.start) * cfg.FragSize
			if crc32.ChecksumIEEE(buf[dataOff:dataOff+int(it.length)]) != it.sum {
				rep.TornDiscarded++
				continue
			}
			claim(it.start, it.nfrags)
			e := extent{start: it.start, nfrags: it.nfrags, length: it.length, compressed: it.compressed, sum: it.sum}
			c.extents[it.key] = e
			c.byStart[e.start] = it.key
			c.liveFr += int(it.nfrags)
			accepted++
		}
		if accepted == 0 {
			for i := cand.frag; i < cand.frag+cand.recFrags; i++ {
				claimed[i] = false
			}
			continue
		}
		rep.RecoveredSegments++
		rep.RecoveredPages += accepted
		if bus.Enabled(obs.ClassRecovery) {
			bus.Emit(obs.Event{
				T: clock.Now(), Class: obs.ClassRecovery, Sub: obs.SubSwap,
				Seg: cand.frag, Bytes: int64(accepted * cfg.PageSize), Aux: int64(accepted),
			})
		}
	}
	c.marked = claimed
	total := 0
	for _, m := range claimed {
		if m {
			total++
		}
	}
	c.padFr = total - c.liveFr
	c.hint = 0
	c.seq = maxSeq + 1
	if err := c.CheckConsistency(); err != nil {
		return nil, nil, fmt.Errorf("swap: recovered clustered store fails consistency check: %w", err)
	}
	bus.Counter("recovery.segments").Add(uint64(rep.RecoveredSegments))
	bus.Counter("recovery.pages").Add(uint64(rep.RecoveredPages))
	bus.Counter("recovery.torn_discarded").Add(uint64(rep.TornDiscarded))
	return c, rep, nil
}

// VerifyRecovery checks the recovered store rec against pre, the pre-crash
// in-memory state, enforcing the crash-consistency guarantees:
//
//  1. No acknowledged-durable page is lost: every page in pre's map whose
//     write was not the crash-torn one must be recovered with exactly its
//     committed checksum, length, and compression flag.
//  2. A page whose rewrite was in flight when the power cut (pre.attempted)
//     must still resurface — its previous committed copy was never freed —
//     either as that old copy or, when the tear happened to preserve the
//     whole new cluster, as the in-flight copy.
//  3. No torn page is silently served: everything the recovered store
//     indexes must read back matching its recorded checksum.
func (rec *Clustered) VerifyRecovery(pre *Clustered) error {
	if !rec.cfg.CommitRecords || !pre.cfg.CommitRecords {
		return fmt.Errorf("swap: VerifyRecovery requires CommitRecords stores")
	}
	keys := make([]PageKey, 0, len(pre.extents))
	for k := range pre.extents {
		keys = append(keys, k)
	}
	sortPageKeys(keys)
	for _, key := range keys {
		e := pre.extents[key]
		re, ok := rec.extents[key]
		if att, inflight := pre.attempted[key]; inflight {
			if !ok {
				return fmt.Errorf("swap: page %v (durable copy with an in-flight rewrite) lost in recovery", key)
			}
			if re.sum != e.sum && re.sum != att {
				return fmt.Errorf("swap: page %v recovered with checksum %08x; want durable %08x or in-flight %08x",
					key, re.sum, e.sum, att)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("swap: acknowledged-durable page %v lost in recovery", key)
		}
		if re.sum != e.sum || re.length != e.length || re.compressed != e.compressed {
			return fmt.Errorf("swap: page %v recovered as (sum %08x, len %d, compressed %t), want (sum %08x, len %d, compressed %t)",
				key, re.sum, re.length, re.compressed, e.sum, e.length, e.compressed)
		}
	}
	keys = keys[:0]
	for k := range rec.extents {
		keys = append(keys, k)
	}
	sortPageKeys(keys)
	for _, key := range keys {
		data, sum, _, _, ok, err := rec.Read(key)
		if err != nil {
			return fmt.Errorf("swap: recovered page %v unreadable: %w", key, err)
		}
		if !ok {
			return fmt.Errorf("swap: recovered page %v vanished from the index", key)
		}
		if crc32.ChecksumIEEE(data) != sum {
			return fmt.Errorf("swap: recovered page %v served with bytes that miss its checksum %08x", key, sum)
		}
	}
	return nil
}

func sortPageKeys(keys []PageKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Seg != keys[j].Seg {
			return keys[i].Seg < keys[j].Seg
		}
		return keys[i].Page < keys[j].Page
	})
}
