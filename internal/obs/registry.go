package obs

import (
	"sort"
	"time"
)

// Counter is a monotonically increasing count. A nil *Counter is valid and
// ignores Add, so probe handles can be cached from a nil bus.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time level (frames held, pages resident). A nil *Gauge
// is valid and ignores Set.
type Gauge struct {
	name string
	v    int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value reports the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// DefaultBuckets are the fixed virtual-latency bucket upper bounds every
// histogram uses: a 1-2-5 decade ladder from 1µs to 5s (the upper decades
// exist for fleet runs, where a whole cluster queues on one server). Fixed
// buckets keep
// histograms byte-comparable across runs and machines — the determinism
// contract extends to every exported artifact.
var DefaultBuckets = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
}

// Histogram accumulates virtual durations into fixed buckets. A nil
// *Histogram is valid and ignores Observe — the disabled-bus hot path.
type Histogram struct {
	name   string
	bounds []time.Duration // upper bounds; one overflow bucket follows
	counts []uint64        // len(bounds)+1
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Registry holds one machine's metrics. The zero Registry is ready to use;
// each Bus embeds one. Lookups happen at wiring time (subsystems cache the
// returned handles), so the hot path never touches the maps.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram with the default virtual-latency
// buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := &Histogram{
		name:   name,
		bounds: DefaultBuckets,
		counts: make([]uint64, len(DefaultBuckets)+1),
	}
	r.hists[name] = h
	return h
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string
	Value uint64
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string
	Value int64
}

// Bucket is one histogram bucket: the count of observations at most Le.
type Bucket struct {
	Le    time.Duration // upper bound; -1 marks the overflow bucket
	Count uint64
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Name    string
	Count   uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets []Bucket // per-bucket (non-cumulative) counts, empty buckets omitted
}

// Mean reports the average observed duration (0 when empty).
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Snapshot is a deterministic capture of a registry: every slice is sorted
// by name, so two identical runs export byte-identical snapshots.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Snapshot captures the registry's current state in sorted order.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].v})
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: r.gauges[name].v})
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hs := HistogramSnapshot{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			le := time.Duration(-1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: c})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Hist returns the named histogram snapshot (ok=false when absent) — the
// lookup tests and harnesses use to assert on one metric.
func (s *Snapshot) Hist(name string) (HistogramSnapshot, bool) {
	if s == nil {
		return HistogramSnapshot{}, false
	}
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Counter returns the named counter's value (0 when absent).
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
