package lint

// Dataflow and taint analysis: the flow-aware layer under the nondet
// analyzer. An intraprocedural def-use/taint pass runs once per declared
// function, then the per-function facts are joined interprocedurally over
// the existing call graph — the same deterministic g.order iteration and
// monotone fixed-point shape the effects engine uses.
//
// The model is sources, sinks and sanitizers:
//
//   - Sources introduce nondeterminism: host-clock reads (time.Now/
//     Since/Until), the process-global math/rand source, os environment
//     reads, runtime scheduler facts (NumGoroutine/NumCPU), map iteration
//     order, %p pointer formatting, and uintptr(unsafe.Pointer)
//     addresses. Seeded randomness (methods on a *rand.Rand) is NOT a
//     source — that is the sanctioned determinism idiom.
//   - Sinks are the places a nondeterministic value would corrupt a
//     replayable artifact: the obs probes and exporters (Emit, Add, Set,
//     Observe, WriteEventsJSONL, WriteTimeline, ...) and experiment
//     table rows (exp Table.AddRow).
//   - Sanitizers kill ordering taint: sort.X(s)/slices.Sort(s) and
//     package-local helpers whose name starts with "sort" (the same
//     collect-then-sort idiom maprange recognizes). Sorting fixes
//     iteration-order nondeterminism only, so value taint (a host-clock
//     reading) survives a sort.
//
// Taint is tracked flow-insensitively per function over three token
// kinds: a local source, a parameter (index), and a call-site result.
// The intraprocedural pass iterates to a (small) fixed point so taint
// flows through local rebinding chains, then records three relations:
// tokens reaching a return, tokens reaching a sink argument, and tokens
// reaching a module-internal call argument. Two interprocedural fixed
// points join these over the call graph: retSrcs (which sources a
// function's results may carry) and sinkParams (which parameters flow
// onward into a sink). Hits are resolved per function, with the
// deterministic shortest source→sink chain recovered through
// CallGraph.Path exactly as crosscredit prints its credit chains.
//
// Soundness caveats, mirroring the effects engine's: receiver taint on
// module-internal method calls is dropped (only argument and result flow
// is joined across calls); interprocedural param-to-result propagation is
// resolved one level deep; taint stored into a struct field in one
// function and read back in another is not tracked; and external calls
// conservatively propagate their argument taint to their result, so
// fmt.Sprintf of a tainted value stays tainted but strconv-style
// laundering is impossible.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TaintSource is one nondeterminism source site.
type TaintSource struct {
	// Node positions the source.
	Node ast.Node
	// Desc names the source for diagnostics ("time.Now host-clock value").
	Desc string
	// Order marks ordering nondeterminism (map iteration), the only kind
	// the sort sanitizers can kill.
	Order bool
}

// tok is one taint token: exactly one of src/call is set, or parm >= 0.
// Call tokens carry the result index they stand for, so an error result's
// taint does not contaminate its siblings — `rep, err := f()` taints rep
// only with what f's first result actually carries.
type tok struct {
	src  *TaintSource
	parm int
	call *ast.CallExpr
	ridx int // result index, for call tokens
}

func srcTok(s *TaintSource) tok          { return tok{src: s, parm: -1} }
func parmTok(i int) tok                  { return tok{parm: i} }
func callTok(c *ast.CallExpr, i int) tok { return tok{parm: -1, call: c, ridx: i} }

// retargetCall re-points call tokens of one call site at a different
// result index — the multi-assign `a, b := f()` hands callTok(f, 0) to a
// and callTok(f, 1) to b. Tokens of other (nested) calls pass unchanged.
func retargetCall(toks map[tok]bool, call *ast.CallExpr, i int) map[tok]bool {
	out := make(map[tok]bool, len(toks))
	for t := range toks {
		if t.call == call {
			t.ridx = i
		}
		out[t] = true
	}
	return out
}

// sinkArgFlow records taint reaching one sink call's arguments.
type sinkArgFlow struct {
	call   *ast.CallExpr
	callee *types.Func
	sink   string
	toks   map[tok]bool
}

// callArgFlow records taint reaching one module-internal call argument.
type callArgFlow struct {
	site   *ast.CallExpr
	callee *types.Func
	arg    int // callee parameter index (variadic-folded)
	toks   map[tok]bool
}

// fnTaint is the intraprocedural taint summary of one function. ret is
// indexed by result position, so the summary distinguishes an error
// result built from map-ordered keys from a sibling counter result.
type fnTaint struct {
	node     *Node
	ret      []map[tok]bool
	sinkArgs []sinkArgFlow
	callArgs []callArgFlow
}

// TaintHit is one resolved source→sink flow, reported by nondet.
type TaintHit struct {
	// Fn is the function the hit is reported in (the source side).
	Fn *types.Func
	// Node positions the diagnostic, always inside Fn's body.
	Node ast.Node
	// Source describes the nondeterminism source.
	Source string
	// Sink names the sink ("obs.Emit", "exp.AddRow").
	Sink string
	// Chain is the deterministic shortest call chain from Fn to the sink.
	Chain []*types.Func
}

// TaintFacts is the module-wide taint table, computed once per load.
type TaintFacts struct {
	mod  *Module
	fns  map[*types.Func]*fnTaint
	hits map[*types.Func][]TaintHit
}

// Taint returns the module's taint facts, computing them on first use.
func (m *Module) Taint() *TaintFacts {
	if m.taint == nil {
		m.taint = computeTaint(m)
	}
	return m.taint
}

// HitsIn returns the resolved source→sink hits whose source lies in fn.
func (f *TaintFacts) HitsIn(fn *types.Func) []TaintHit { return f.hits[fn] }

// ---------------------------------------------------------------------------
// Source, sink and sanitizer tables.

// nondetSourceFn reports whether an external callee is a nondeterminism
// source, with its diagnostic description.
func nondetSourceFn(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	switch pkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " host-clock value", true
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() == nil && fn.Exported() && !randConstructors[fn.Name()] {
			return "global rand." + fn.Name() + " value", true
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ", "Getpid", "Getppid", "Hostname":
			return "os." + fn.Name() + " environment value", true
		}
	case "runtime":
		switch fn.Name() {
		case "NumGoroutine", "NumCPU":
			return "runtime." + fn.Name() + " scheduler value", true
		}
	}
	return "", false
}

// nondetSinkFn reports whether fn is an output sink: the obs probes and
// exporters, and experiment table rows. Matching is by package-path
// suffix plus name, the same scoping rule every call-graph analyzer uses.
func nondetSinkFn(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	if fnIn(fn, "internal/obs", obsSinkFuncs) {
		return "obs." + fn.Name(), true
	}
	if fnIn(fn, "internal/exp", expSinkFuncs) {
		return "exp." + fn.Name(), true
	}
	return "", false
}

// obsSinkFuncs are the observability entry points a nondeterministic
// value must never reach: the metric probes and every exporter.
var obsSinkFuncs = map[string]bool{
	"Emit": true, "Add": true, "Inc": true, "Set": true, "Observe": true,
	"WriteEventsJSONL": true, "WriteEventsCSV": true, "WriteTimeline": true,
	"WriteClassSummary": true, "WriteCSV": true,
}

// expSinkFuncs are the experiment-table sinks (golden Table 1 / Figure 3
// output and the extension tables).
var expSinkFuncs = map[string]bool{"AddRow": true}

// isNondetSink adapts nondetSinkFn to a reachability predicate.
func isNondetSink(fn *types.Func) bool {
	_, ok := nondetSinkFn(fn)
	return ok
}

// sanitizerCall reports whether a call is a sort-shaped sanitizer:
// sort.X(...), slices.X(...), or a local helper named sort* — the same
// heuristic maprange's sortedLater uses.
func sanitizerCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "sort" || id.Name == "slices"
		}
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "sort")
	}
	return false
}

// ---------------------------------------------------------------------------
// Intraprocedural pass.

// taintScanner walks one function body to a local taint fixed point.
type taintScanner struct {
	mod        *Module
	node       *Node
	params     map[types.Object]int
	results    []types.Object // named result objects (nil entries when unnamed)
	numResults int
	tainted    map[types.Object]map[tok]bool
	sanitized  map[types.Object]bool
	srcMemo    map[ast.Node]*TaintSource
	siteEdges  map[ast.Node][]Edge
	ft         *fnTaint
	changed    bool
}

func scanFnTaint(mod *Module, node *Node) *fnTaint {
	ft := &fnTaint{node: node}
	s := &taintScanner{
		mod:       mod,
		node:      node,
		params:    make(map[types.Object]int),
		tainted:   make(map[types.Object]map[tok]bool),
		sanitized: make(map[types.Object]bool),
		srcMemo:   make(map[ast.Node]*TaintSource),
		siteEdges: make(map[ast.Node][]Edge),
		ft:        ft,
	}
	for _, e := range node.Out {
		s.siteEdges[e.Site] = append(s.siteEdges[e.Site], e)
	}
	sig := node.Fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		s.params[sig.Params().At(i)] = i
	}
	s.numResults = sig.Results().Len()
	for i := 0; i < s.numResults; i++ {
		r := sig.Results().At(i)
		if r.Name() != "" {
			s.results = append(s.results, r)
		} else {
			s.results = append(s.results, nil)
		}
	}
	s.collectSanitized(node.Decl.Body)
	// Iterate the flow-insensitive propagation to a fixed point (bounded:
	// each round can only add tokens to objects). The final round runs
	// with a stable tainted set, so its collected relations stand.
	for range 16 {
		s.changed = false
		s.walk(node.Decl.Body)
		if !s.changed {
			break
		}
	}
	return ft
}

// collectSanitized records every object handed to a sort-shaped call.
func (s *taintScanner) collectSanitized(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !sanitizerCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil {
				if obj := s.objectOf(id); obj != nil {
					s.sanitized[obj] = true
				}
			}
		}
		return true
	})
}

func (s *taintScanner) objectOf(id *ast.Ident) types.Object {
	if u := s.mod.Info.Uses[id]; u != nil {
		return u
	}
	return s.mod.Info.Defs[id]
}

// addTaint joins tokens into an object's taint set. Sanitized objects
// reject ordering taint — sorting is exactly what makes map-order
// collection deterministic — but value taint passes through a sort.
func (s *taintScanner) addTaint(obj types.Object, toks map[tok]bool) {
	if obj == nil || len(toks) == 0 {
		return
	}
	set := s.tainted[obj]
	for t := range toks {
		if s.sanitized[obj] && t.src != nil && t.src.Order {
			continue
		}
		if !set[t] {
			if set == nil {
				set = make(map[tok]bool)
				s.tainted[obj] = set
			}
			set[t] = true
			s.changed = true
		}
	}
}

// lhsTaintObject resolves an assignment target to a local object (or a
// parameter); fields and globals are not tracked.
func (s *taintScanner) lhsTaintObject(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := s.objectOf(id)
	if v, ok := obj.(*types.Var); ok && !v.IsField() && !isGlobal(v) {
		return v
	}
	return nil
}

// walk runs one propagation round and (re)collects the flow relations.
func (s *taintScanner) walk(body *ast.BlockStmt) {
	s.ft.ret = make([]map[tok]bool, s.numResults)
	for i := range s.ft.ret {
		s.ft.ret[i] = make(map[tok]bool)
	}
	s.ft.sinkArgs = nil
	s.ft.callArgs = nil
	var stack []ast.Node
	litDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				litDepth--
			}
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			litDepth++
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.scanAssignTaint(n)
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					s.addTaint(s.lhsTaintObject(name), s.toksOf(n.Values[i]))
				}
			}
		case *ast.RangeStmt:
			s.scanRangeTaint(n)
		case *ast.ReturnStmt:
			if litDepth == 0 {
				s.scanReturnTaint(n)
			}
		case *ast.CallExpr:
			s.recordCallFlows(n)
		}
		return true
	})
}

// scanAssignTaint propagates RHS taint into assignable locals, including
// compound ops (s += x keeps and extends existing taint) and multi-value
// calls, where each LHS carries the call token for its own result index
// (comma-ok and other non-call multi-forms share the whole token set).
func (s *taintScanner) scanAssignTaint(n *ast.AssignStmt) {
	switch {
	case len(n.Lhs) == len(n.Rhs):
		for i := range n.Lhs {
			s.addTaint(s.lhsTaintObject(n.Lhs[i]), s.toksOf(n.Rhs[i]))
		}
	case len(n.Rhs) == 1:
		toks := s.toksOf(n.Rhs[0])
		call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		for i, lhs := range n.Lhs {
			if isCall && len(n.Lhs) > 1 {
				s.addTaint(s.lhsTaintObject(lhs), retargetCall(toks, call, i))
				continue
			}
			s.addTaint(s.lhsTaintObject(lhs), toks)
		}
	}
}

// scanReturnTaint records which tokens each result position carries. A
// bare return drains the named result objects; `return f()` forwarding a
// multi-value call re-points the call token at each position.
func (s *taintScanner) scanReturnTaint(n *ast.ReturnStmt) {
	record := func(i int, toks map[tok]bool) {
		if i >= len(s.ft.ret) {
			return
		}
		for t := range toks {
			s.ft.ret[i][t] = true
		}
	}
	switch {
	case len(n.Results) == 0:
		for i, obj := range s.results {
			if obj != nil {
				record(i, s.tainted[obj])
			}
		}
	case len(n.Results) == 1 && s.numResults > 1:
		toks := s.toksOf(n.Results[0])
		call, isCall := ast.Unparen(n.Results[0]).(*ast.CallExpr)
		for i := 0; i < s.numResults; i++ {
			if isCall {
				record(i, retargetCall(toks, call, i))
			} else {
				record(i, toks)
			}
		}
	default:
		for i, res := range n.Results {
			record(i, s.toksOf(res))
		}
	}
}

// scanRangeTaint taints a map range's key/value with the iteration-order
// source, and propagates the ranged expression's own taint into both.
func (s *taintScanner) scanRangeTaint(n *ast.RangeStmt) {
	toks := s.toksOf(n.X)
	if t := s.mod.Info.TypeOf(n.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			src := s.srcMemo[n]
			if src == nil {
				src = &TaintSource{
					Node:  n,
					Desc:  fmt.Sprintf("iteration order of map %s", types.ExprString(n.X)),
					Order: true,
				}
				s.srcMemo[n] = src
			}
			toks = unionToks(toks, map[tok]bool{srcTok(src): true})
		}
	}
	if id, ok := n.Key.(*ast.Ident); ok {
		s.addTaint(s.lhsTaintObject(id), toks)
	}
	if id, ok := n.Value.(*ast.Ident); ok {
		s.addTaint(s.lhsTaintObject(id), toks)
	}
}

// recordCallFlows collects sink-argument and internal-call-argument taint
// for one call site.
func (s *taintScanner) recordCallFlows(call *ast.CallExpr) {
	for _, e := range s.siteEdges[call] {
		if label, ok := nondetSinkFn(e.Callee); ok {
			toks := make(map[tok]bool)
			for _, arg := range call.Args {
				toks = unionToks(toks, s.toksOf(arg))
			}
			if len(toks) > 0 {
				s.ft.sinkArgs = append(s.ft.sinkArgs, sinkArgFlow{call: call, callee: e.Callee, sink: label, toks: toks})
			}
			continue
		}
		if s.mod.Graph.Node(e.Callee) == nil {
			continue // external: argument flow handled in toksOf
		}
		sig, ok := e.Callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i, arg := range call.Args {
			toks := s.toksOf(arg)
			if len(toks) == 0 {
				continue
			}
			pi := paramIndexFor(sig, i)
			if pi < 0 {
				continue
			}
			s.ft.callArgs = append(s.ft.callArgs, callArgFlow{site: call, callee: e.Callee, arg: pi, toks: toks})
		}
	}
}

// paramIndexFor folds an argument position onto a parameter index
// (variadic arguments all land on the last parameter).
func paramIndexFor(sig *types.Signature, arg int) int {
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if sig.Variadic() && arg >= n-1 {
		return n - 1
	}
	if arg < n {
		return arg
	}
	return -1
}

func unionToks(a, b map[tok]bool) map[tok]bool {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		out := make(map[tok]bool, len(b))
		for t := range b {
			out[t] = true
		}
		return out
	}
	for t := range b {
		a[t] = true
	}
	return a
}

// toksOf resolves the taint tokens an expression's value may carry.
func (s *taintScanner) toksOf(e ast.Expr) map[tok]bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.objectOf(e)
		if obj == nil {
			return nil
		}
		out := map[tok]bool{}
		for t := range s.tainted[obj] {
			out[t] = true
		}
		if i, ok := s.params[obj]; ok {
			out[parmTok(i)] = true
		}
		if len(out) == 0 {
			return nil
		}
		return out
	case *ast.SelectorExpr:
		if sel, ok := s.mod.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return s.toksOf(e.X)
		}
		return nil
	case *ast.IndexExpr:
		return unionToks(s.toksOf(e.X), s.toksOf(e.Index))
	case *ast.SliceExpr:
		return s.toksOf(e.X)
	case *ast.StarExpr:
		return s.toksOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return nil // channel receive: kernelproto's jurisdiction
		}
		return s.toksOf(e.X)
	case *ast.BinaryExpr:
		return unionToks(s.toksOf(e.X), s.toksOf(e.Y))
	case *ast.CompositeLit:
		var out map[tok]bool
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = unionToks(out, s.toksOf(el))
		}
		return out
	case *ast.CallExpr:
		return s.toksOfCall(e)
	case *ast.TypeAssertExpr:
		return s.toksOf(e.X)
	}
	return nil
}

// toksOfCall resolves a call expression: source calls mint a token,
// sanitizers return clean, conversions and builtins propagate operands,
// internal calls yield a call token, and external calls conservatively
// propagate receiver and argument taint (so time.Now().UnixNano() and
// fmt.Sprintf("%d", tainted) both stay tainted).
func (s *taintScanner) toksOfCall(call *ast.CallExpr) map[tok]bool {
	info := s.mod.Info
	if sanitizerCall(call) {
		return nil
	}
	// Builtins: append derives from every argument; len/cap/make/new are
	// deterministic (a tainted slice's length is not itself tainted).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var out map[tok]bool
				for _, a := range call.Args {
					out = unionToks(out, s.toksOf(a))
				}
				return out
			}
			return nil
		}
	}
	// Conversions propagate their operand; uintptr(unsafe.Pointer) is
	// additionally an address source.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		out := s.toksOf(call.Args[0])
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if at := info.TypeOf(call.Args[0]); at != nil {
				if ab, ok := at.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					out = unionToks(out, map[tok]bool{srcTok(s.sourceAt(call, "uintptr(unsafe.Pointer) address", false)): true})
				}
			}
		}
		return out
	}
	var internal bool
	var out map[tok]bool
	for _, e := range s.siteEdges[call] {
		if desc, ok := nondetSourceFn(e.Callee); ok {
			out = unionToks(out, map[tok]bool{srcTok(s.sourceAt(call, desc, false)): true})
			continue
		}
		if s.mod.Graph.Node(e.Callee) != nil {
			internal = true
		}
	}
	if internal {
		return unionToks(out, map[tok]bool{callTok(call, 0): true})
	}
	if out != nil {
		return out
	}
	// %p pointer formatting through fmt is an address source.
	if s.fmtPointerCall(call) {
		return map[tok]bool{srcTok(s.sourceAt(call, fmt.Sprintf("%s %%p pointer formatting", callName(call)), false)): true}
	}
	// External call: propagate receiver and argument taint.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.MethodVal {
			out = unionToks(out, s.toksOf(sel.X))
		}
	}
	for _, a := range call.Args {
		out = unionToks(out, s.toksOf(a))
	}
	return out
}

// sourceAt memoizes one TaintSource per site, so repeated propagation
// rounds reuse the same token and the fixed point terminates.
func (s *taintScanner) sourceAt(n ast.Node, desc string, order bool) *TaintSource {
	if src := s.srcMemo[n]; src != nil {
		return src
	}
	src := &TaintSource{Node: n, Desc: desc, Order: order}
	s.srcMemo[n] = src
	return src
}

// fmtPointerCall reports a fmt call whose constant format string contains
// %p — the classic way a heap address sneaks into output.
func (s *taintScanner) fmtPointerCall(call *ast.CallExpr) bool {
	for _, e := range s.siteEdges[call] {
		if pkgPath(e.Callee) == "fmt" {
			for _, a := range call.Args {
				if lit, ok := ast.Unparen(a).(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "%p") {
					return true
				}
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Interprocedural join and hit resolution.

// computeTaint scans every declared function, runs the two interprocedural
// fixed points, and resolves every source→sink hit.
func computeTaint(mod *Module) *TaintFacts {
	tf := &TaintFacts{
		mod:  mod,
		fns:  make(map[*types.Func]*fnTaint),
		hits: make(map[*types.Func][]TaintHit),
	}
	g := mod.Graph
	for _, n := range g.order {
		tf.fns[n.Fn] = scanFnTaint(mod, n)
	}

	// sinkParams: (fn, param) pairs whose incoming value flows onward into
	// a sink — directly via a sink argument, or transitively through an
	// internal call whose parameter already forwards. Monotone OR-join.
	sinkParams := make(map[*types.Func]map[int]bool)
	markSink := func(fn *types.Func, i int) bool {
		set := sinkParams[fn]
		if set == nil {
			set = make(map[int]bool)
			sinkParams[fn] = set
		}
		if set[i] {
			return false
		}
		set[i] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			ft := tf.fns[n.Fn]
			for _, sa := range ft.sinkArgs {
				for t := range sa.toks {
					if t.parm >= 0 && markSink(n.Fn, t.parm) {
						changed = true
					}
				}
			}
			for _, ca := range ft.callArgs {
				if !sinkParams[ca.callee][ca.arg] {
					continue
				}
				for t := range ca.toks {
					if t.parm >= 0 && markSink(n.Fn, t.parm) {
						changed = true
					}
				}
			}
		}
	}

	// retSrcs: the local sources each result position of a function may
	// carry, joined through call-result tokens reaching returns — indexed
	// per result so an error built from map-ordered keys does not taint a
	// sibling counter. paramRets records which parameters flow to which
	// result positions (for one-level call resolution).
	retSrcs := make(map[retKey]map[*TaintSource]bool)
	paramRets := make(map[retKey]map[int]bool)
	for _, n := range g.order {
		ft := tf.fns[n.Fn]
		for i, set := range ft.ret {
			k := retKey{n.Fn, i}
			for t := range set {
				switch {
				case t.src != nil:
					if retSrcs[k] == nil {
						retSrcs[k] = make(map[*TaintSource]bool)
					}
					retSrcs[k][t.src] = true
				case t.parm >= 0:
					if paramRets[k] == nil {
						paramRets[k] = make(map[int]bool)
					}
					paramRets[k][t.parm] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			ft := tf.fns[n.Fn]
			for i, set := range ft.ret {
				k := retKey{n.Fn, i}
				for t := range set {
					if t.call == nil {
						continue
					}
					for _, callee := range calleesAt(n, t.call) {
						for src := range retSrcs[retKey{callee, t.ridx}] {
							if !retSrcs[k][src] {
								if retSrcs[k] == nil {
									retSrcs[k] = make(map[*TaintSource]bool)
								}
								retSrcs[k][src] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}

	// Hit resolution, per function in declaration order.
	for _, n := range g.order {
		ft := tf.fns[n.Fn]
		var hits []TaintHit
		for _, sa := range ft.sinkArgs {
			chain := []*types.Func{n.Fn, sa.callee}
			for _, t := range sortedToks(sa.toks) {
				switch {
				case t.src != nil:
					hits = append(hits, TaintHit{Fn: n.Fn, Node: t.src.Node, Source: t.src.Desc, Sink: sa.sink, Chain: chain})
				case t.call != nil:
					for _, src := range tf.callResultSources(n, t.call, t.ridx, retSrcs, paramRets) {
						hits = append(hits, TaintHit{Fn: n.Fn, Node: t.call, Source: src, Sink: sa.sink, Chain: chain})
					}
				}
			}
		}
		for _, ca := range ft.callArgs {
			if !sinkParams[ca.callee][ca.arg] {
				continue
			}
			sinkChain := g.Path(ca.callee, isNondetSink)
			if sinkChain == nil {
				continue
			}
			chain := append([]*types.Func{n.Fn}, sinkChain...)
			sink, _ := nondetSinkFn(chain[len(chain)-1])
			for _, t := range sortedToks(ca.toks) {
				switch {
				case t.src != nil:
					hits = append(hits, TaintHit{Fn: n.Fn, Node: t.src.Node, Source: t.src.Desc, Sink: sink, Chain: chain})
				case t.call != nil:
					for _, src := range tf.callResultSources(n, t.call, t.ridx, retSrcs, paramRets) {
						hits = append(hits, TaintHit{Fn: n.Fn, Node: ca.site, Source: src, Sink: sink, Chain: chain})
					}
				}
			}
		}
		if hits != nil {
			tf.hits[n.Fn] = dedupHits(mod, hits)
		}
	}
	return tf
}

// calleesAt lists the module-internal callees of one call site, in edge
// order.
func calleesAt(n *Node, site *ast.CallExpr) []*types.Func {
	var out []*types.Func
	for _, e := range n.Out {
		if e.Site == site && n.Pkg != nil && n.Pkg.Mod.Graph.Node(e.Callee) != nil {
			out = append(out, e.Callee)
		}
	}
	return out
}

// retKey addresses one result position of one function.
type retKey struct {
	fn   *types.Func
	ridx int
}

// callResultSources describes the nondeterminism one result of a call may
// carry: the callee's own returned sources at that position, plus (one
// level deep) tainted arguments the callee passes through to it.
func (tf *TaintFacts) callResultSources(n *Node, site *ast.CallExpr, ridx int, retSrcs map[retKey]map[*TaintSource]bool, paramRets map[retKey]map[int]bool) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(desc string) {
		if !seen[desc] {
			seen[desc] = true
			out = append(out, desc)
		}
	}
	for _, callee := range calleesAt(n, site) {
		k := retKey{callee, ridx}
		var srcs []*TaintSource
		for src := range retSrcs[k] {
			srcs = append(srcs, src)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i].Node.Pos() < srcs[j].Node.Pos() })
		for _, src := range srcs {
			add(fmt.Sprintf("%s (returned by %s)", src.Desc, callee.Name()))
		}
		if len(paramRets[k]) == 0 {
			continue
		}
		for _, ca := range tf.fns[n.Fn].callArgs {
			if ca.site != site || ca.callee != callee || !paramRets[k][ca.arg] {
				continue
			}
			for _, t := range sortedToks(ca.toks) {
				if t.src != nil {
					add(fmt.Sprintf("%s (through %s)", t.src.Desc, callee.Name()))
				}
			}
		}
	}
	return out
}

// sortedToks orders a token set deterministically: sources by position,
// then call tokens by position, then parameters by index.
func sortedToks(toks map[tok]bool) []tok {
	out := make([]tok, 0, len(toks))
	for t := range toks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ra, rb := tokRank(a), tokRank(b)
		if ra != rb {
			return ra < rb
		}
		switch {
		case a.src != nil:
			return a.src.Node.Pos() < b.src.Node.Pos()
		case a.call != nil:
			if a.call.Pos() != b.call.Pos() {
				return a.call.Pos() < b.call.Pos()
			}
			return a.ridx < b.ridx
		default:
			return a.parm < b.parm
		}
	})
	return out
}

func tokRank(t tok) int {
	switch {
	case t.src != nil:
		return 0
	case t.call != nil:
		return 1
	default:
		return 2
	}
}

// dedupHits drops repeated (position, source, sink) triples, keeping the
// first (shortest-chain) occurrence, and sorts by position.
func dedupHits(mod *Module, hits []TaintHit) []TaintHit {
	seen := make(map[string]bool)
	var out []TaintHit
	for _, h := range hits {
		pos := mod.Fset.Position(h.Node.Pos())
		key := fmt.Sprintf("%s:%d:%d|%s|%s", pos.Filename, pos.Line, pos.Column, h.Source, h.Sink)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, h)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Node.Pos() < out[j].Node.Pos()
	})
	return out
}

// ---------------------------------------------------------------------------
// Taint report (-taint-report): the machine-readable source→sink table CI
// archives next to the effects manifest.

// TaintReportEntry is one source→sink flow in the module-wide report.
type TaintReportEntry struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Source string `json:"source"`
	Sink   string `json:"sink"`
	Chain  string `json:"chain"`
}

// TaintReport lists every resolved source→sink flow in the module, in
// deterministic (declaration, position) order with module-relative paths.
func TaintReport(mod *Module) []TaintReportEntry {
	tf := mod.Taint()
	out := []TaintReportEntry{}
	for _, n := range mod.Graph.order {
		for _, h := range tf.hits[n.Fn] {
			pos := mod.Fset.Position(h.Node.Pos())
			file := pos.Filename
			if rel, err := filepath.Rel(mod.Root, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			out = append(out, TaintReportEntry{
				File:   file,
				Line:   pos.Line,
				Source: h.Source,
				Sink:   h.Sink,
				Chain:  chainString(h.Chain),
			})
		}
	}
	return out
}

// WriteTaintReport writes the report deterministically; an empty report
// serializes as [] so a clean tree's artifact is canonical.
func WriteTaintReport(path string, mod *Module) error {
	data, err := json.MarshalIndent(TaintReport(mod), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
