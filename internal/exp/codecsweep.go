package exp

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"compcache/internal/compress"
	"compcache/internal/machine"
	"compcache/internal/obs"
	"compcache/internal/workload"
)

// CodecSweep compares the codec suite end to end: the paper's software LZ
// codecs against the hardware-class BDI and FPC transforms. Each codec runs
// the same thrashing workload with a virtual compression bandwidth modeling
// its class (§6 discusses exactly this trade: a hardware engine compresses
// far faster but usually less tightly than software LZ), so the table shows
// how ratio and per-page cost pull the total run time in opposite
// directions. The virtual per-page costs come from the machine's
// machine.compress_page / machine.decompress_page histograms.
//
// The host ns/op column is a host-clock microbenchmark of the codec itself
// and therefore nondeterministic; it is measured only when hostTiming is set
// (ccbench -host-timing) and prints "-" otherwise, keeping the default table
// byte-identical at any parallelism.
func CodecSweep(memoryMB int, pages int32, seed int64, workers int, hostTiming bool) (*Table, error) {
	t := &Table{
		Title: "Extension: codec sweep — software LZ vs hardware-class BDI/FPC",
		Header: []string{"codec", "time", "ratio", "uncomp%",
			"comp us/pg", "dec us/pg", "host ns/op"},
		Note: "Virtual bandwidths model each codec's class (software LZ ~1 MB/s on the paper's " +
			"DECstation, BDI/FPC at hardware speeds). FPC's word patterns target integer-heavy " +
			"pages, so the text-patterned thrasher pages defeat it (100% stored) — exactly the " +
			"coverage gap that separates pattern codecs from LZ. host ns/op requires -host-timing.",
	}
	variants := []struct {
		codec            string
		compBW, decompBW float64 // virtual bytes/second
	}{
		{"lzrw1", 1e6, 2e6},  // the paper's software speed point
		{"lzss", 0.4e6, 2e6}, // asymmetric: slow compress, LZRW1-fast decompress
		{"fpc", 20e6, 20e6},  // hardware-class pattern matcher
		{"bdi", 40e6, 40e6},  // hardware-class arithmetic transform
	}
	w := &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}
	var jobs []job
	for _, v := range variants {
		cfg := machine.Default(int64(memoryMB) << 20).WithCC()
		cfg.CC.Codec = v.codec
		cfg.Cost.CompressBW = v.compBW
		cfg.Cost.DecompressBW = v.decompBW
		jobs = append(jobs, job{cfg, w})
	}
	runs, err := measureAll(workers, jobs, machine.WithObs(obs.Options{}))
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		st := runs[i]
		comp, _ := st.Metrics.Hist("machine.compress_page")
		dec, _ := st.Metrics.Hist("machine.decompress_page")
		host := "-"
		if hostTiming {
			c, err := compress.Lookup(v.codec)
			if err != nil {
				return nil, err
			}
			//cclint:ignore nondet -- intentional: the host-ns column exists to report wall-clock codec cost and hides behind the HostTiming gate
			host = fmt.Sprintf("%d", hostNsPerPage(c, seed))
		}
		t.AddRow(v.codec, fmtDur(st.Time),
			fmt.Sprintf("%.2f", st.Comp.Ratio()),
			fmt.Sprintf("%.1f", 100*st.Comp.UncompressibleFrac()),
			fmt.Sprintf("%.1f", float64(comp.Mean())/1e3),
			fmt.Sprintf("%.1f", float64(dec.Mean())/1e3),
			host)
	}
	return t, nil
}

// hostNsPerPage measures the host-side cost of one Compress call on a mixed
// page corpus (zero, text-like, incompressible). It is only called behind
// the HostTiming gate because wall-clock results vary run to run.
func hostNsPerPage(c compress.Codec, seed int64) int64 {
	const pageSize = 4096
	rng := rand.New(rand.NewSource(seed))
	corpus := make([][]byte, 0, 24)
	text := bytes.Repeat([]byte("inverted index posting list "), pageSize/28+1)[:pageSize]
	for i := 0; i < 8; i++ {
		corpus = append(corpus, make([]byte, pageSize)) // zero page
		corpus = append(corpus, text)
		p := make([]byte, pageSize)
		rng.Read(p)
		corpus = append(corpus, p)
	}
	dst := make([]byte, 0, c.MaxCompressedSize(pageSize))
	for _, p := range corpus { // warm up pools and caches
		dst = c.Compress(dst[:0], p)
	}
	const rounds = 50
	start := time.Now() //cclint:ignore walltime -- host-side microbenchmark behind the -host-timing gate
	for r := 0; r < rounds; r++ {
		for _, p := range corpus {
			dst = c.Compress(dst[:0], p)
		}
	}
	elapsed := time.Since(start) //cclint:ignore walltime -- host-side microbenchmark behind the -host-timing gate
	return elapsed.Nanoseconds() / int64(rounds*len(corpus))
}
