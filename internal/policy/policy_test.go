package policy

import (
	"errors"
	"testing"
	"time"

	"compcache/internal/mem"
	"compcache/internal/sim"
)

// fakeConsumer holds frames and releases them LIFO with a fixed oldest age.
type fakeConsumer struct {
	name     string
	pool     *mem.Pool
	frames   []mem.FrameID
	oldest   sim.Time
	releases int
	// holdOnRelease makes ReleaseOldest report success without freeing a
	// frame (models the VM page moving into the compression cache).
	holdOnRelease bool
	// refuse makes ReleaseOldest fail even when frames are held.
	refuse bool
}

func (f *fakeConsumer) Name() string { return f.name }

func (f *fakeConsumer) OldestAge() (sim.Time, bool) {
	if len(f.frames) == 0 {
		return 0, false
	}
	return f.oldest, true
}

func (f *fakeConsumer) ReleaseOldest() (bool, error) {
	if len(f.frames) == 0 || f.refuse {
		return false, nil
	}
	f.releases++
	if f.holdOnRelease {
		return true, nil
	}
	id := f.frames[len(f.frames)-1]
	f.frames = f.frames[:len(f.frames)-1]
	f.pool.Release(id)
	return true, nil
}

func (f *fakeConsumer) grab(t *testing.T, owner mem.Owner, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, ok := f.pool.Alloc(owner)
		if !ok {
			t.Fatalf("setup: pool exhausted for %s", f.name)
		}
		f.frames = append(f.frames, id)
	}
}

func setup(t *testing.T, frames int) (*Allocator, *mem.Pool, *sim.Clock) {
	t.Helper()
	var clock sim.Clock
	pool := mem.NewPool(frames, 4096)
	return NewAllocator(pool, &clock), pool, &clock
}

func TestAllocFromFreePool(t *testing.T) {
	a, pool, _ := setup(t, 2)
	id, err := a.AllocFrame(mem.VM)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Owner(id) != mem.VM {
		t.Fatalf("owner = %v", pool.Owner(id))
	}
}

func TestReclaimsOldestEffectiveAge(t *testing.T) {
	a, pool, clock := setup(t, 4)
	older := &fakeConsumer{name: "older", pool: pool, oldest: 0}
	newer := &fakeConsumer{name: "newer", pool: pool, oldest: sim.Time(5 * time.Second)}
	older.grab(t, mem.FS, 2)
	newer.grab(t, mem.VM, 2)
	a.Register(older, Neutral)
	a.Register(newer, Neutral)
	clock.Advance(10 * time.Second)

	a.AllocFrame(mem.VM)
	if older.releases != 1 || newer.releases != 0 {
		t.Fatalf("releases: older %d newer %d", older.releases, newer.releases)
	}
}

func TestBiasOverridesRawAge(t *testing.T) {
	a, pool, clock := setup(t, 4)
	// "vm" is older in raw terms but "fs" carries a +20s offset, so fs must
	// be reclaimed first (the paper's file-cache penalty).
	vm := &fakeConsumer{name: "vm", pool: pool, oldest: 0}
	fsc := &fakeConsumer{name: "fs", pool: pool, oldest: sim.Time(9 * time.Second)}
	vm.grab(t, mem.VM, 2)
	fsc.grab(t, mem.FS, 2)
	a.Register(vm, Neutral)
	a.Register(fsc, Bias{Scale: 1, Offset: 20 * time.Second})
	clock.Advance(10 * time.Second)

	a.AllocFrame(mem.VM)
	if fsc.releases != 1 || vm.releases != 0 {
		t.Fatalf("releases: fs %d vm %d", fsc.releases, vm.releases)
	}
}

func TestScaleBias(t *testing.T) {
	a, pool, clock := setup(t, 4)
	// cc's items are much older, but scale 0.1 shrinks its effective age
	// below vm's.
	cc := &fakeConsumer{name: "cc", pool: pool, oldest: 0}                         // raw age 10s
	vm := &fakeConsumer{name: "vm", pool: pool, oldest: sim.Time(8 * time.Second)} // raw age 2s
	cc.grab(t, mem.CC, 2)
	vm.grab(t, mem.VM, 2)
	a.Register(cc, Bias{Scale: 0.1})
	a.Register(vm, Neutral)
	clock.Advance(10 * time.Second)

	a.AllocFrame(mem.VM)
	if vm.releases != 1 || cc.releases != 0 {
		t.Fatalf("releases: vm %d cc %d", vm.releases, cc.releases)
	}
}

func TestIteratesWhenReleaseFreesNoFrame(t *testing.T) {
	a, pool, clock := setup(t, 4)
	// "vm" is older but its releases free no frames (pages migrate to the
	// compression cache); the allocator must keep iterating and eventually
	// take from "fs".
	vm := &fakeConsumer{name: "vm", pool: pool, oldest: 0, holdOnRelease: true}
	fsc := &fakeConsumer{name: "fs", pool: pool, oldest: sim.Time(9 * time.Second)}
	vm.grab(t, mem.VM, 2)
	fsc.grab(t, mem.FS, 2)
	a.Register(vm, Neutral)
	a.Register(fsc, Neutral)
	clock.Advance(10 * time.Second)

	id, err := a.AllocFrame(mem.VM)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Owner(id) != mem.VM {
		t.Fatal("allocation failed")
	}
	if vm.releases == 0 || fsc.releases == 0 {
		t.Fatalf("releases: vm %d fs %d", vm.releases, fsc.releases)
	}
}

func TestFallsBackWhenChosenConsumerRefuses(t *testing.T) {
	a, pool, clock := setup(t, 4)
	stuck := &fakeConsumer{name: "stuck", pool: pool, oldest: 0, refuse: true}
	ok := &fakeConsumer{name: "ok", pool: pool, oldest: sim.Time(9 * time.Second)}
	stuck.grab(t, mem.CC, 2)
	ok.grab(t, mem.FS, 2)
	a.Register(stuck, Neutral)
	a.Register(ok, Neutral)
	clock.Advance(10 * time.Second)

	a.AllocFrame(mem.VM)
	if ok.releases != 1 {
		t.Fatalf("fallback consumer releases = %d", ok.releases)
	}
}

func TestOOMReturnsTypedError(t *testing.T) {
	a, pool, _ := setup(t, 1)
	if _, ok := pool.Alloc(mem.Kernel); !ok {
		t.Fatal("setup alloc failed")
	}
	_, err := a.AllocFrame(mem.VM)
	if err == nil {
		t.Fatal("AllocFrame with no consumers succeeded")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("error %v is not ErrOutOfMemory", err)
	}
}

func TestRebalanceKeepsReserve(t *testing.T) {
	a, pool, _ := setup(t, 8)
	c := &fakeConsumer{name: "fs", pool: pool, oldest: 0}
	c.grab(t, mem.FS, 8)
	a.Register(c, Neutral)
	a.Reserve = 3
	a.Rebalance()
	if pool.FreeCount() != 3 {
		t.Fatalf("free after rebalance = %d, want 3", pool.FreeCount())
	}
	// Idempotent when satisfied.
	rel := c.releases
	a.Rebalance()
	if c.releases != rel {
		t.Fatal("rebalance released more than needed")
	}
}

func TestRebalanceDisabledByDefault(t *testing.T) {
	a, pool, _ := setup(t, 4)
	c := &fakeConsumer{name: "fs", pool: pool, oldest: 0}
	c.grab(t, mem.FS, 4)
	a.Register(c, Neutral)
	a.Rebalance()
	if c.releases != 0 {
		t.Fatal("rebalance with zero reserve did work")
	}
}

func TestDefaultBiasesShape(t *testing.T) {
	b := DefaultBiases()
	if b["fs"].Offset <= b["vm"].Offset {
		t.Fatal("file cache must be penalized relative to VM")
	}
	if b["cc"].Offset >= b["vm"].Offset || b["cc"].Scale >= b["vm"].Scale {
		t.Fatal("compressed pages must be favored relative to VM")
	}
}

func TestRegisterZeroScaleDefaultsToNeutral(t *testing.T) {
	a, pool, clock := setup(t, 2)
	c := &fakeConsumer{name: "c", pool: pool, oldest: 0}
	c.grab(t, mem.FS, 2)
	a.Register(c, Bias{}) // zero scale would zero all ages
	clock.Advance(time.Second)
	a.AllocFrame(mem.VM)
	if c.releases != 1 {
		t.Fatal("zero-value bias broke reclamation")
	}
}

func TestFreeOne(t *testing.T) {
	a, pool, clock := setup(t, 4)
	older := &fakeConsumer{name: "older", pool: pool, oldest: 0}
	newer := &fakeConsumer{name: "newer", pool: pool, oldest: sim.Time(5 * time.Second)}
	older.grab(t, mem.FS, 2)
	newer.grab(t, mem.VM, 2)
	a.Register(older, Neutral)
	a.Register(newer, Neutral)
	clock.Advance(10 * time.Second)

	if ok, err := a.FreeOne(); err != nil || !ok {
		t.Fatalf("FreeOne: ok=%v err=%v", ok, err)
	}
	if older.releases != 1 || newer.releases != 0 {
		t.Fatalf("releases: older %d newer %d", older.releases, newer.releases)
	}
	if pool.FreeCount() != 1 {
		t.Fatalf("free = %d", pool.FreeCount())
	}
}

func TestFreeOneSkipsRefusers(t *testing.T) {
	a, pool, clock := setup(t, 4)
	stuck := &fakeConsumer{name: "stuck", pool: pool, oldest: 0, refuse: true}
	ok := &fakeConsumer{name: "ok", pool: pool, oldest: sim.Time(9 * time.Second)}
	stuck.grab(t, mem.CC, 2)
	ok.grab(t, mem.FS, 2)
	a.Register(stuck, Neutral)
	a.Register(ok, Neutral)
	clock.Advance(10 * time.Second)
	if ok, err := a.FreeOne(); err != nil || !ok {
		t.Fatalf("FreeOne: ok=%v err=%v", ok, err)
	}
	if ok.releases != 1 {
		t.Fatalf("releases = %d", ok.releases)
	}
}

func TestFreeOneEmpty(t *testing.T) {
	a, _, _ := setup(t, 2)
	if ok, err := a.FreeOne(); err != nil || ok {
		t.Fatalf("FreeOne with no consumers: ok=%v err=%v", ok, err)
	}
}
