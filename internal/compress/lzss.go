package compress

import (
	"fmt"
	"sync"
)

// LZSS is a higher-effort LZ77 codec: a 32-KByte window searched with hash
// chains, long matches, and the same stored-block fallback as LZRW1. It
// compresses meaningfully better than LZRW1 and decompresses just as fast,
// at several times the compression cost — the "asymmetric" profile §2.2
// attributes to the Xerox PARC work on compressed paging of read-mostly
// data, where compression happens rarely and decompression often. Together
// with LZRW1 it gives the per-data-type codec choice a real axis: speed
// versus ratio.
//
// Format: one flag byte (flagCompress/flagCopy), then groups of 8 items
// preceded by a control byte (LSB first; 0 = literal byte, 1 = copy item).
// A copy item is a 16-bit little-endian (offset-1) followed by a length
// byte encoding length-4; a length byte of 255 is followed by one extension
// byte, so matches run 4..514 bytes at offsets 1..32768.
type LZSS struct{}

const (
	lzssMinMatch = 4
	lzssMaxOff   = 1 << 15 // 32 KB window
	lzssHashBits = 14
	lzssHashSize = 1 << lzssHashBits
	lzssMaxChain = 32 // search effort bound
	// length byte encodes len-lzssMinMatch; 255 adds an extension byte.
	lzssLenCap = 255
)

// Name reports "lzss".
func (LZSS) Name() string { return "lzss" }

// MaxCompressedSize reports n+1 (stored fallback).
func (LZSS) MaxCompressedSize(n int) int { return n + 1 }

func lzssHash(b []byte) uint32 {
	// Four-byte multiplicative hash.
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return (v * 2654435761) >> (32 - lzssHashBits)
}

// lzssScratch holds one Compress call's hash-chain state. The tables are
// pooled so steady-state compression allocates nothing; determinism is
// preserved because head is fully reset per call (head[h] stores position+1,
// 0 meaning empty, so the reset is a plain clear) and prev[i] is always
// written before position i becomes reachable through any chain — stale
// entries from an earlier call are never read.
type lzssScratch struct {
	head [lzssHashSize]int32
	prev []int32
}

var lzssPool = sync.Pool{New: func() any { return new(lzssScratch) }}

// Compress appends the LZSS-compressed form of src to dst.
func (LZSS) Compress(dst, src []byte) []byte {
	base := len(dst)
	if len(src) == 0 {
		return append(dst, flagCompress)
	}
	limit := base + len(src) + 1
	dst = append(dst, flagCompress)

	// Hash chains: head[h]-1 is the most recent position with hash h (0 =
	// empty chain); prev[i] links position i to the previous position with
	// the same hash, again offset by one.
	sc := lzssPool.Get().(*lzssScratch)
	defer lzssPool.Put(sc)
	head := &sc.head
	for i := range head {
		head[i] = 0
	}
	if cap(sc.prev) < len(src) {
		sc.prev = make([]int32, len(src))
	}
	prev := sc.prev[:len(src)]

	ctrlPos := len(dst)
	dst = append(dst, 0)
	var control byte
	nItems := 0

	flush := func() {
		dst[ctrlPos] = control
	}
	pos := 0
	for pos < len(src) {
		if len(dst)+4 > limit {
			return storedBlock(dst[:base], src)
		}
		bestLen, bestOff := 0, 0
		if pos+lzssMinMatch <= len(src) {
			h := lzssHash(src[pos:])
			cand := int(head[h]) - 1
			maxLen := len(src) - pos
			for depth := 0; cand >= 0 && depth < lzssMaxChain; depth++ {
				off := pos - cand
				if off > lzssMaxOff {
					break
				}
				// Quick reject on the byte past the current best.
				if bestLen > 0 && (bestLen >= maxLen || src[cand+bestLen] != src[pos+bestLen]) {
					cand = int(prev[cand]) - 1
					continue
				}
				l := 0
				for l < maxLen && src[cand+l] == src[pos+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestOff = l, off
					if l >= maxLen {
						break
					}
				}
				cand = int(prev[cand]) - 1
			}
			prev[pos] = head[h]
			head[h] = int32(pos) + 1
		}
		if bestLen >= lzssMinMatch {
			// Copy item: 16-bit little-endian offset-1, then length.
			o := bestOff - 1
			l := bestLen - lzssMinMatch
			dst = append(dst, byte(o), byte(o>>8))
			if l >= lzssLenCap {
				ext := l - lzssLenCap
				if ext > 255 {
					ext = 255
					l = lzssLenCap + 255
					bestLen = l + lzssMinMatch
				}
				dst = append(dst, byte(lzssLenCap), byte(ext))
			} else {
				dst = append(dst, byte(l))
			}
			// Insert the skipped positions into the chains so later matches
			// can land inside this one.
			end := pos + bestLen
			for p := pos + 1; p < end && p+lzssMinMatch <= len(src); p++ {
				h := lzssHash(src[p:])
				prev[p] = head[h]
				head[h] = int32(p) + 1
			}
			pos = end
			control |= 1 << uint(nItems)
		} else {
			dst = append(dst, src[pos])
			pos++
		}
		nItems++
		if nItems == 8 {
			flush()
			control, nItems = 0, 0
			if pos < len(src) {
				if len(dst)+1 > limit {
					return storedBlock(dst[:base], src)
				}
				ctrlPos = len(dst)
				dst = append(dst, 0)
			}
		}
	}
	if nItems > 0 {
		flush()
	} else if ctrlPos == len(dst)-1 {
		dst = dst[:len(dst)-1]
	}
	if len(dst) > limit {
		return storedBlock(dst[:base], src)
	}
	return dst
}

// Decompress appends the decompressed form of an LZSS block to dst.
func (LZSS) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrCorrupt)
	}
	flag, body := src[0], src[1:]
	switch flag {
	case flagCopy:
		return append(dst, body...), nil
	case flagCompress:
	default:
		return nil, fmt.Errorf("%w: bad flag byte %#x", ErrCorrupt, flag)
	}
	base := len(dst)
	pos := 0
	for pos < len(body) {
		control := body[pos]
		pos++
		for bit := 0; bit < 8 && pos < len(body); bit++ {
			if control&(1<<uint(bit)) != 0 {
				if pos+3 > len(body) {
					return nil, fmt.Errorf("%w: truncated copy item", ErrCorrupt)
				}
				off := (int(body[pos]) | int(body[pos+1])<<8) + 1
				length := int(body[pos+2]) + lzssMinMatch
				pos += 3
				if body[pos-1] == lzssLenCap {
					if pos >= len(body) {
						return nil, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
					}
					length += int(body[pos])
					pos++
				}
				start := len(dst) - off
				if start < base {
					return nil, fmt.Errorf("%w: copy offset %d out of range", ErrCorrupt, off)
				}
				for i := 0; i < length; i++ {
					dst = append(dst, dst[start+i])
				}
			} else {
				dst = append(dst, body[pos])
				pos++
			}
		}
	}
	return dst, nil
}
