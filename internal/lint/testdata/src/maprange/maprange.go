// Package mr is a golden fixture for the maprange analyzer.
package mr

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

type runStats struct{ Extra map[string]float64 }

// badAppend collects map keys without ever sorting them.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside map iteration`
	}
	return out
}

// badPrint writes directly from map iteration, the cctrace shape.
func badPrint() {
	segs := map[int]int{}
	for seg, pages := range segs {
		fmt.Printf("%d: %d\n", seg, pages) // want `fmt\.Printf inside map iteration`
	}
}

// badBuilder builds a string through a field-typed map.
func badBuilder(s runStats) string {
	var b strings.Builder
	for k := range s.Extra {
		b.WriteString(k) // want `WriteString inside map iteration`
	}
	return b.String()
}

// badConcat accumulates a string with +=.
func badConcat(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v + "\n" // want `string built inside map iteration`
	}
	return out
}

// badWrite pushes bytes from map iteration straight through a writer.
func badWrite(w io.Writer, m map[string][]byte) {
	for _, v := range m {
		w.Write(v)             // want `Write inside map iteration`
		io.WriteString(w, "x") // want `io\.WriteString inside map iteration`
	}
}

// badEncode streams records in random map order through an encoder.
func badEncode(enc *json.Encoder, m map[string]int) {
	for k := range m {
		enc.Encode(k) // want `Encode inside map iteration`
	}
}

// goodCollectSort is the canonical deterministic idiom: collect, sort,
// then use.
func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice collects values and orders them with a comparator, the
// fs.Sync shape.
func goodSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// sortKeys stands in for a package-local sorting helper (the swap
// package's sortPageKeys shape).
func sortKeys(keys []string) { sort.Strings(keys) }

// goodHelperSort collects keys and orders them through a local helper
// whose name marks it as a sort.
func goodHelperSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

// goodCount does commutative accumulation; order cannot matter.
func goodCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodMapToMap writes into another map; the result is order-independent.
func goodMapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// goodSliceRange ranges a slice: never a finding, appends and prints are
// fine in deterministic order.
func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
		fmt.Println(x)
	}
	return out
}
