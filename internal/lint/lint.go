// Package lint is the project's custom static-analysis framework (cclint).
//
// The reproduction rests on two invariants that ordinary tooling does not
// enforce:
//
//  1. Virtual-time purity — simulated costs come only from the virtual
//     clock in internal/sim. A single stray time.Now() turns the paper's
//     Table 1 / Figure 3 numbers into artifacts of the host machine.
//  2. Determinism — every experiment is byte-identical at any -j. One
//     unseeded rand call or one map iteration feeding an output stream
//     silently breaks the guarantee.
//
// cclint turns those tribal rules into CI-enforced law. The framework is
// deliberately stdlib-only: the build environment has no network, so
// golang.org/x/tools is off the table. Since PR 5 the engine loads the
// whole module at once, type-checks it with go/types (one shared
// types.Info across packages, stdlib resolved from GOROOT source) and
// builds an approximate static call graph with type-informed method-set
// resolution — so invariants that cross package boundaries (clock credit
// earned two calls deep in another package, probes emitted by a callee)
// are enforced too, not just the syntactic per-package ones.
//
// Findings can be suppressed, one line at a time, with a written reason:
//
//	start := time.Now() //cclint:ignore walltime -- host-time progress report
//
// or, as a standalone comment, on the line directly below it. The reason
// after "--" is mandatory; a directive without one is itself a finding, as
// is a directive that no longer suppresses anything. For incremental
// adoption of new analyzers there is also a baseline mechanism
// (.cclint-baseline.json, see baseline.go) — the checked-in baseline is
// kept empty, and CI fails if it ever stops being empty.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Severity ranks a finding. Error-severity findings fail cclint (exit 1);
// warn-severity findings are reported but only fail under -werror.
type Severity string

const (
	// SevError marks invariant violations: the tree must not merge with
	// one of these outstanding.
	SevError Severity = "error"
	// SevWarn marks strong-heuristic findings that occasionally need
	// human judgment (floatorder, obscoverage).
	SevWarn Severity = "warn"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Severity Severity       `json:"severity"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional compiler-style form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.File, d.Line, d.Col, d.Severity, d.Message, d.Analyzer)
}

// Analyzer is one named check. Check is called once per selected package;
// module-wide context (the call graph, other packages, type info) is
// reached through pkg.Mod.
type Analyzer interface {
	// Name is the identifier used in output and in ignore directives.
	Name() string
	// Doc is a one-line description of what the analyzer enforces.
	Doc() string
	// Severity is the default severity of this analyzer's findings.
	Severity() Severity
	// Check reports all findings in pkg.
	Check(pkg *Package) []Diagnostic
}

// All returns the full cclint analyzer suite, in stable order: the four
// original syntactic analyzers, the five call-graph analyzers added
// with the cross-package engine, the three effect-inference analyzers
// (hotalloc, bufown, effectdrift), then the three dataflow/contract
// analyzers (nondet, kernelproto, snapcover).
func All() []Analyzer {
	return []Analyzer{
		Walltime{},
		GlobalRand{},
		MapRange{},
		ClockCredit{},
		CrossCredit{},
		ErrDrop{},
		SharedWrite{},
		FloatOrder{},
		ObsCoverage{},
		HotAlloc{},
		BufOwn{},
		EffectDrift{},
		Nondet{},
		KernelProto{},
		SnapCover{},
	}
}

// diag builds a Diagnostic at a node's position. Severity is stamped by
// Run from the analyzer's declared level.
func diag(pkg *Package, name string, n ast.Node, format string, args ...any) Diagnostic {
	pos := pkg.Fset.Position(n.Pos())
	return Diagnostic{
		Analyzer: name,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Run applies every analyzer to every selected package, filters the
// findings through the //cclint:ignore directives, appends
// directive-hygiene findings (missing reason, unknown analyzer, unused
// directive), and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	return run(pkgs, analyzers, analyzers, true)
}

// RunOnly runs only the named analyzers from the suite — the -only
// iteration loop. Directive hygiene still validates names against the
// whole suite (so -only does not misreport known analyzers as unknown),
// and the unused-directive check is skipped entirely: a directive for an
// analyzer outside the selection legitimately suppresses nothing in a
// filtered run. An unknown name in names is an error.
func RunOnly(pkgs []*Package, suite []Analyzer, names []string) ([]Diagnostic, error) {
	byName := make(map[string]Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name()] = a
	}
	var selected []Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", n)
		}
		selected = append(selected, a)
	}
	return run(pkgs, suite, selected, false), nil
}

// run is the shared engine behind Run and RunOnly: known names come from
// the full suite, checks from the selection, and unused-directive
// hygiene only applies when the whole suite ran.
func run(pkgs []*Package, suite, selected []Analyzer, fullSuite bool) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name()] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectIgnores(pkg, known)
		var raw []Diagnostic
		for _, a := range selected {
			for _, d := range a.Check(pkg) {
				if d.Severity == "" {
					d.Severity = a.Severity()
				}
				raw = append(raw, d)
			}
		}
		for _, d := range raw {
			if dirs.suppress(d) {
				continue
			}
			out = append(out, d)
		}
		for _, d := range dirs.hygiene(fullSuite) {
			d.Severity = SevError
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ErrorCount reports how many diagnostics are error-severity; cclint's
// exit status is 1 exactly when this is non-zero (or -werror is set and
// any finding survives).
func ErrorCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}
