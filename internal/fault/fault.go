// Package fault is a deterministic fault injector for the simulated paging
// stack, plus the typed errors the stack reports when a layer misbehaves.
//
// Real memory-compression deployments treat backing-store failures and
// compressed-data integrity as first-class concerns: a transfer can fail, a
// latency spike can stall the device, and a bit flip in a compressed
// fragment corrupts a whole page's worth of data. The injector models all
// three so experiments can measure overhead and survival as a function of
// fault rate.
//
// Determinism contract: every decision the injector makes is derived from an
// explicit seed and the machine's virtual clock — never from the host clock
// or the global math/rand source — and the simulation is single-threaded per
// machine, so the stream of decisions is a pure function of (seed, config,
// workload). Two runs with identical seeds and fault configs are
// byte-identical at any parallelism, faults included.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
)

// Config describes what to inject and how often. Rates are per-opportunity
// probabilities in [0, 1]: each device read, device write, and fragment
// decompression draws once against its rate. The zero Config injects
// nothing.
type Config struct {
	// Seed drives all injection decisions. Two injectors with the same seed
	// and config make identical decisions at identical points in a run.
	Seed int64

	// ReadErrorRate is the probability a device read fails after being
	// charged its full service time.
	ReadErrorRate float64

	// WriteErrorRate is the probability a device write (synchronous or
	// queued) fails.
	WriteErrorRate float64

	// CacheCorruptionRate is the probability a compressed fragment fetched
	// from the compression cache has one bit flipped before decompression —
	// an in-memory corruption. The checksum catches it and the machine
	// re-fetches the page from the backing store when a clean copy exists.
	CacheCorruptionRate float64

	// SwapCorruptionRate is the probability a compressed fragment read from
	// the backing store has one bit flipped — an on-media corruption. There
	// is no lower level to fall back to, so a hit here is unrecoverable.
	SwapCorruptionRate float64

	// LatencySpikeRate is the probability a device operation pays
	// LatencySpike of extra service time (a stalled bus, a remapped sector,
	// a congested link).
	LatencySpikeRate float64

	// LatencySpike is the extra service time a spike adds. Must be positive
	// when LatencySpikeRate is.
	LatencySpike time.Duration

	// ActiveAfter delays injection until this much virtual time has passed,
	// so a workload's setup phase can run clean. Zero starts immediately.
	ActiveAfter time.Duration

	// ActiveFor bounds the injection window; zero means faults stay active
	// until the run ends.
	ActiveFor time.Duration

	// CrashRate is the probability a device write is a crash point: the
	// machine loses power mid-transfer, the write is torn at sector
	// granularity (a prefix reaches the media), and every later device
	// operation fails with a *CrashError. Rate draws respect the activity
	// window, like every other rate.
	CrashRate float64

	// CrashAtWrite crashes deterministically on the k-th device write of the
	// run (1-based; 0 disables). This is the exhaustive-sweep knob: iterating
	// k over every write of a workload visits every crash point exactly once.
	// Deterministic crash points ignore the activity window.
	CrashAtWrite uint64

	// CrashAtTime crashes on the first device write at or after this virtual
	// instant (0 disables). Injector.CrashAt schedules the same thing
	// dynamically.
	CrashAtTime time.Duration
}

// CrashConfigured reports whether any crash mode is armed. The machine uses
// it to auto-enable the recoverable on-media swap formats: crashing a store
// whose layout cannot be recovered only proves the layout is unrecoverable.
func (c Config) CrashConfigured() bool {
	return c.CrashRate > 0 || c.CrashAtWrite > 0 || c.CrashAtTime > 0
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"ReadErrorRate", c.ReadErrorRate},
		{"WriteErrorRate", c.WriteErrorRate},
		{"CacheCorruptionRate", c.CacheCorruptionRate},
		{"SwapCorruptionRate", c.SwapCorruptionRate},
		{"LatencySpikeRate", c.LatencySpikeRate},
		{"CrashRate", c.CrashRate},
	}
	for _, r := range rates {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", r.name, r.v)
		}
	}
	if c.LatencySpike < 0 {
		return fmt.Errorf("fault: negative LatencySpike %v", c.LatencySpike)
	}
	if c.LatencySpikeRate > 0 && c.LatencySpike == 0 {
		return fmt.Errorf("fault: LatencySpikeRate %g needs a positive LatencySpike", c.LatencySpikeRate)
	}
	if c.ActiveAfter < 0 || c.ActiveFor < 0 {
		return fmt.Errorf("fault: negative activity window (after %v, for %v)", c.ActiveAfter, c.ActiveFor)
	}
	if c.CrashAtTime < 0 {
		return fmt.Errorf("fault: negative CrashAtTime %v", c.CrashAtTime)
	}
	return nil
}

// Injector makes the injection decisions for one machine. A nil *Injector is
// valid and injects nothing, so fault-free hot paths need no branch beyond
// the nil-receiver method call.
//
// Injector is not safe for concurrent use; like the clock it belongs to
// exactly one single-threaded simulated machine.
type Injector struct {
	cfg   Config     //cclint:ignore snapcover -- config: fixed at construction; restore reads only cfg.Seed
	clock *sim.Clock //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	src   countingSource
	rng   *rand.Rand //cclint:ignore snapcover -- derived: re-synced from cfg.Seed by replaying the counted src draws
	bus   *obs.Bus   //cclint:ignore snapcover -- wiring: observability bus attached separately
	st    stats.Faults

	writeSeq  uint64   // device writes seen (crash-point numbering)
	crashAt   sim.Time // dynamically scheduled crash instant (0 = none)
	crashed   bool     // the machine lost power; every device op now fails
	crashTime sim.Time // virtual instant of the crash
}

// countingSource wraps a rand.Source and counts raw Int63 draws. rand.Rand's
// derived methods (Float64, Intn) consume a variable number of raw draws via
// rejection sampling, so replaying the generator exactly — which snapshot/
// restore must do — requires counting at the source, not at the call sites.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.n = 0
	s.src.Seed(seed)
}

// New creates an injector on the given clock.
func New(cfg Config, clock *sim.Clock) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{cfg: cfg, clock: clock}
	in.src.src = rand.NewSource(cfg.Seed)
	in.rng = rand.New(&in.src)
	return in, nil
}

// SetObserver wires the injector to a machine's event bus; nil disables
// emission. Emission never consumes randomness, so a traced run makes the
// same injection decisions as an untraced one.
func (in *Injector) SetObserver(b *obs.Bus) {
	if in != nil {
		in.bus = b
	}
}

// emit records one fired injection decision.
func (in *Injector) emit(kind int64) {
	if in.bus.Enabled(obs.ClassInject) {
		in.bus.Emit(obs.Event{
			T: in.clock.Now(), Class: obs.ClassInject, Sub: obs.SubFault, Aux: kind,
		})
	}
}

// Stats returns the injected-fault counters. The detection and recovery
// counters of stats.Faults are owned by the machine, not the injector.
func (in *Injector) Stats() stats.Faults {
	if in == nil {
		return stats.Faults{}
	}
	return in.st
}

// active reports whether the virtual clock is inside the injection window.
func (in *Injector) active() bool {
	now := time.Duration(in.clock.Now())
	if now < in.cfg.ActiveAfter {
		return false
	}
	return in.cfg.ActiveFor == 0 || now <= in.cfg.ActiveAfter+in.cfg.ActiveFor
}

// draw makes one rate decision. It consumes randomness only when the rate
// can fire, so enabling one fault class does not perturb the others.
func (in *Injector) draw(rate float64) bool {
	if in == nil || rate <= 0 || !in.active() {
		return false
	}
	return in.rng.Float64() < rate
}

// DiskRead decides whether the device read that just completed fails. It
// returns a *DeviceError or nil; after a crash it returns the sticky
// *CrashError (a dead machine's device answers nothing).
func (in *Injector) DiskRead() error {
	if in == nil {
		return nil
	}
	if in.crashed {
		return &CrashError{Op: "read", At: in.crashTime}
	}
	if !in.draw(in.cfg.ReadErrorRate) {
		return nil
	}
	in.st.InjectedReadErrors++
	in.emit(obs.InjectReadError)
	return &DeviceError{Op: "read", At: in.clock.Now()}
}

// DiskWrite decides whether the device write that just completed fails.
func (in *Injector) DiskWrite() error {
	if in == nil {
		return nil
	}
	if in.crashed {
		return &CrashError{Op: "write", At: in.crashTime}
	}
	if !in.draw(in.cfg.WriteErrorRate) {
		return nil
	}
	in.st.InjectedWriteErrors++
	in.emit(obs.InjectWriteError)
	return &DeviceError{Op: "write", At: in.clock.Now()}
}

// CrashAt schedules a crash at the first device write at or after virtual
// instant t, overriding any Config.CrashAtTime. Zero cancels the schedule.
func (in *Injector) CrashAt(t sim.Time) {
	if in != nil {
		in.crashAt = t
	}
}

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool { return in != nil && in.crashed }

// CrashWrite is the crash-point decision, made once per device write before
// the write's own error draw. When the crash fires, the in-flight write is
// torn: a whole-sector prefix of Survived bytes reaches the media (possibly
// none, possibly all n), the injector goes sticky-crashed, and the returned
// *CrashError reports the tear so the file system can apply exactly that
// prefix. When no crash mode is configured the decision consumes no
// randomness, so crash-capable runs are byte-identical to plain ones right
// up to the crash point.
func (in *Injector) CrashWrite(n, sectorSize int) error {
	if in == nil {
		return nil
	}
	if in.crashed {
		return &CrashError{Op: "write", At: in.crashTime}
	}
	if !in.cfg.CrashConfigured() && in.crashAt == 0 {
		return nil
	}
	in.writeSeq++
	fire := in.cfg.CrashAtWrite > 0 && in.writeSeq == in.cfg.CrashAtWrite
	if !fire && in.cfg.CrashAtTime > 0 && time.Duration(in.clock.Now()) >= in.cfg.CrashAtTime {
		fire = true
	}
	if !fire && in.crashAt > 0 && in.clock.Now() >= in.crashAt {
		fire = true
	}
	if !fire && !in.draw(in.cfg.CrashRate) {
		return nil
	}
	sectors := 0
	if sectorSize > 0 {
		sectors = n / sectorSize
	}
	survived := 0
	if sectors > 0 {
		survived = in.rng.Intn(sectors+1) * sectorSize
	}
	if survived > n {
		survived = n
	}
	in.crashed = true
	in.crashTime = in.clock.Now()
	in.st.InjectedCrashes++
	in.emit(obs.InjectCrash)
	return &CrashError{Op: "write", At: in.crashTime, Survived: survived}
}

// Latency reports the extra service time the current device operation pays
// (zero in the common case).
func (in *Injector) Latency() time.Duration {
	if in == nil || !in.draw(in.cfg.LatencySpikeRate) {
		return 0
	}
	in.st.InjectedSpikes++
	in.emit(obs.InjectLatencySpike)
	return in.cfg.LatencySpike
}

// CorruptCache flips one deterministically chosen bit of a compressed
// fragment about to be decompressed out of the compression cache, reporting
// whether it did. The caller's checksum verification is expected to catch
// the flip.
func (in *Injector) CorruptCache(frag []byte) bool {
	if in == nil {
		return false
	}
	return in.corrupt(in.cfg.CacheCorruptionRate, frag, obs.InjectCacheCorruption)
}

// CorruptSwap flips one bit of a compressed fragment just read from the
// backing store.
func (in *Injector) CorruptSwap(frag []byte) bool {
	if in == nil {
		return false
	}
	return in.corrupt(in.cfg.SwapCorruptionRate, frag, obs.InjectSwapCorruption)
}

func (in *Injector) corrupt(rate float64, frag []byte, kind int64) bool {
	if len(frag) == 0 || !in.draw(rate) {
		return false
	}
	bit := in.rng.Intn(len(frag) * 8)
	frag[bit>>3] ^= 1 << (bit & 7)
	in.st.InjectedCorruptions++
	in.emit(kind)
	return true
}

// ---------------------------------------------------------------------------
// Typed errors. Layers report these instead of panicking, so a single bad
// page or transfer degrades one run instead of crashing the whole sweep.

// DeviceError is an injected backing-store transfer failure.
type DeviceError struct {
	Op string   // "read" or "write"
	At sim.Time // virtual instant the failure surfaced
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("fault: injected device %s error at %v", e.Op, e.At)
}

// CrashError is a power cut. The first one (Op "write") carries the tear:
// Survived bytes of the in-flight write — a whole-sector prefix — reached
// the media before power was lost. Every device operation after the crash
// returns a CrashError with Survived 0 and the At of the original cut, so
// the machine grinds to a sticky halt instead of quietly writing to a dead
// device.
type CrashError struct {
	Op       string   // operation that observed the crash
	At       sim.Time // virtual instant power was lost
	Survived int      // bytes of the torn write that reached the media
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: machine crashed at %v (device %s; %d bytes of the in-flight write survived)",
		e.At, e.Op, e.Survived)
}

// IsCrash reports whether err contains a CrashError — the "this machine lost
// power, recover it from its media image" signal the crash-sweep harness
// tests for.
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// CorruptionError is a compressed fragment that failed integrity
// verification: its checksum did not match, the codec rejected it, or it
// decompressed to the wrong length.
type CorruptionError struct {
	Page   string // the page key, already formatted
	Reason string // what the verification found
	Err    error  // underlying codec error, when there is one
}

// Error implements error.
func (e *CorruptionError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fault: corrupt fragment for page %s: %s: %v", e.Page, e.Reason, e.Err)
	}
	return fmt.Sprintf("fault: corrupt fragment for page %s: %s", e.Page, e.Reason)
}

// Unwrap exposes the codec error for errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// UnrecoverableError means the paging stack could not reconstruct a page's
// contents from any level of the hierarchy: the data is gone and the run
// (the simulated process) cannot continue. It is the typed replacement for
// what used to be a panic.
type UnrecoverableError struct {
	Page   string // the page key, already formatted
	Reason string // why no fallback existed
	Err    error  // the failure that triggered the loss, when there is one
}

// Error implements error.
func (e *UnrecoverableError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fault: page %s unrecoverable (%s): %v", e.Page, e.Reason, e.Err)
	}
	return fmt.Sprintf("fault: page %s unrecoverable (%s)", e.Page, e.Reason)
}

// Unwrap exposes the triggering failure for errors.Is/As.
func (e *UnrecoverableError) Unwrap() error { return e.Err }

// IsUnrecoverable reports whether err contains an UnrecoverableError — the
// "this run died, siblings may continue" signal experiment harnesses test
// for.
func IsUnrecoverable(err error) bool {
	var ue *UnrecoverableError
	return errors.As(err, &ue)
}
