package disk

import (
	"compcache/internal/sim"
	"compcache/internal/snap"
)

// SnapshotTo serializes the device's timing state (busy horizon, head
// position) and traffic counters. The parameters come from the machine
// configuration and are not stored.
func (d *Disk) SnapshotTo(w *snap.Writer) {
	w.Section("disk")
	w.I64(int64(d.busyAt))
	w.I64(d.next)
	w.U64(d.stats.Reads)
	w.U64(d.stats.Writes)
	w.U64(d.stats.BytesRead)
	w.U64(d.stats.BytesWritten)
	w.U64(d.stats.Seeks)
	w.Dur(d.stats.BusyTime)
	w.U64(d.stats.Retries)
}

// RestoreFrom rebuilds the device's timing state and counters.
func (d *Disk) RestoreFrom(r *snap.Reader) error {
	r.Section("disk")
	busyAt := sim.Time(r.I64())
	next := r.I64()
	reads := r.U64()
	writes := r.U64()
	bytesRead := r.U64()
	bytesWritten := r.U64()
	seeks := r.U64()
	busyTime := r.Dur()
	retries := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	d.busyAt = busyAt
	d.next = next
	d.stats.Reads = reads
	d.stats.Writes = writes
	d.stats.BytesRead = bytesRead
	d.stats.BytesWritten = bytesWritten
	d.stats.Seeks = seeks
	d.stats.BusyTime = busyTime
	d.stats.Retries = retries
	return nil
}
