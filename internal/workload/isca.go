package workload

import (
	"fmt"

	"compcache/internal/machine"
	"compcache/internal/simalloc"
	"compcache/internal/trace"
)

// CacheSim reproduces the paper's "isca" application: Dubnicki & LeBlanc's
// adjustable-block-size coherent-cache simulator (ISCA '92), "both
// CPU-intensive and memory-intensive". It simulates P processors with
// set-associative caches kept coherent by an MSI invalidation protocol,
// sweeping several block sizes over the same reference trace; the tag
// arrays and the large per-block statistics tables live in simulated memory,
// and their contents (small counters, structured tags) compress about 3:1,
// matching the paper's measurement for isca.
type CacheSim struct {
	// CPUs is the number of simulated processors.
	CPUs int

	// Sets and Ways give each processor's cache geometry.
	Sets, Ways int

	// AddrWords is the simulated physical address space, in words.
	AddrWords uint64

	// BlockWordsList is the list of block sizes (in words) to sweep — the
	// "adjustable block size" study.
	BlockWordsList []int

	// Refs is the number of trace references per block size.
	Refs int

	// Seed makes runs reproducible.
	Seed int64

	// missRates records the result of each sweep (exposed for tests).
	missRates []float64
}

// Name implements Workload.
func (c *CacheSim) Name() string { return "isca" }

// MSI cache-line states, stored in the low bits of each meta word.
const (
	lineInvalid  = 0
	lineShared   = 1
	lineModified = 2
)

// Run implements Workload.
func (c *CacheSim) Run(m *machine.Machine) error {
	if c.CPUs <= 0 || c.Sets <= 0 || c.Ways <= 0 || c.AddrWords == 0 || c.Refs <= 0 {
		return fmt.Errorf("isca: incomplete configuration")
	}
	if len(c.BlockWordsList) == 0 {
		c.BlockWordsList = []int{4, 16, 64}
	}
	for _, bw := range c.BlockWordsList {
		if bw <= 0 || bw&(bw-1) != 0 {
			return fmt.Errorf("isca: block size %d must be a positive power of two", bw)
		}
	}

	// Size the simulated heap: per block size, a stats table of 4 words per
	// block plus tag/meta arrays of Sets*Ways words per CPU.
	var total int64
	for _, bw := range c.BlockWordsList {
		blocks := int64(c.AddrWords) / int64(bw)
		total += blocks*4*8 + int64(c.CPUs)*int64(c.Sets)*int64(c.Ways)*2*8
	}
	total += int64(m.Config().PageSize) * 4
	space := m.NewSegment("isca", total)
	arena := simalloc.New(space)

	m.MarkStart()
	c.missRates = c.missRates[:0]
	for cfgIdx, bw := range c.BlockWordsList {
		// The simulator is restarted per block size; tables are zeroed by
		// construction (fresh allocations read as zero).
		blocks := int64(c.AddrWords) / int64(bw)
		statsOff := arena.AllocPageAligned(blocks * 4 * 8)
		tagOff := arena.AllocPageAligned(int64(c.CPUs) * int64(c.Sets) * int64(c.Ways) * 8)
		metaOff := arena.AllocPageAligned(int64(c.CPUs) * int64(c.Sets) * int64(c.Ways) * 8)

		slot := func(cpu, set, way int) int64 {
			return int64(((cpu*c.Sets)+set)*c.Ways+way) * 8
		}
		gen := &trace.Mix{Gens: []trace.Generator{
			&trace.Strided{N: c.Refs / 2, Range: c.AddrWords, Stride: 1, WriteFrac: 0.3,
				CPUs: c.CPUs, Seed: c.Seed + int64(cfgIdx)},
			&trace.Zipf{N: c.Refs / 2, Range: c.AddrWords, Skew: 1.3, WriteFrac: 0.3,
				CPUs: c.CPUs, Seed: c.Seed + 1000 + int64(cfgIdx)},
		}}

		var refs, misses, invals uint64
		var stamp uint64
		for {
			ref, done := gen.Next()
			if done {
				break
			}
			refs++
			stamp++
			block := ref.Addr / uint64(bw)
			set := int(block % uint64(c.Sets))
			tag := block / uint64(c.Sets)

			// Probe the local cache.
			hitWay := -1
			victim, victimStamp := 0, ^uint64(0)
			for w := 0; w < c.Ways; w++ {
				meta := space.ReadWord(metaOff + slot(ref.CPU, set, w))
				state := meta & 3
				lru := meta >> 2
				if state != lineInvalid {
					t := space.ReadWord(tagOff + slot(ref.CPU, set, w))
					if t == tag {
						hitWay = w
						break
					}
				}
				if lru < victimStamp {
					victim, victimStamp = w, lru
				}
			}

			statBase := statsOff + int64(block)*4*8
			if hitWay >= 0 {
				meta := space.ReadWord(metaOff + slot(ref.CPU, set, hitWay))
				state := meta & 3
				if ref.Write && state != lineModified {
					invals += c.invalidateOthers(space, metaOff, tagOff, slot, ref.CPU, set, tag)
					state = lineModified
					space.WriteWord(statBase+8, space.ReadWord(statBase+8)+1) // write upgrades
				}
				space.WriteWord(metaOff+slot(ref.CPU, set, hitWay), stamp<<2|state)
				space.WriteWord(statBase, space.ReadWord(statBase)+1) // accesses
				continue
			}

			// Miss: fill the LRU victim way.
			misses++
			state := uint64(lineShared)
			if ref.Write {
				invals += c.invalidateOthers(space, metaOff, tagOff, slot, ref.CPU, set, tag)
				state = lineModified
			} else {
				// A read fetch downgrades a remote modified copy.
				c.downgradeOthers(space, metaOff, tagOff, slot, ref.CPU, set, tag)
			}
			space.WriteWord(tagOff+slot(ref.CPU, set, victim), tag)
			space.WriteWord(metaOff+slot(ref.CPU, set, victim), stamp<<2|state)
			space.WriteWord(statBase, space.ReadWord(statBase)+1)
			space.WriteWord(statBase+16, space.ReadWord(statBase+16)+1) // misses
		}
		// Record the per-config result in the last stats slot for realism
		// (a real simulator writes its summary).
		c.missRates = append(c.missRates, float64(misses)/float64(refs))
		space.WriteWord(statsOff+24, invals)
	}
	m.Drain()
	return nil
}

// invalidateOthers removes every other CPU's copy of (set, tag), returning
// the number of invalidations.
func (c *CacheSim) invalidateOthers(space *machine.Space, metaOff, tagOff int64,
	slot func(cpu, set, way int) int64, me, set int, tag uint64) uint64 {
	var n uint64
	for cpu := 0; cpu < c.CPUs; cpu++ {
		if cpu == me {
			continue
		}
		for w := 0; w < c.Ways; w++ {
			meta := space.ReadWord(metaOff + slot(cpu, set, w))
			if meta&3 == lineInvalid {
				continue
			}
			if space.ReadWord(tagOff+slot(cpu, set, w)) == tag {
				space.WriteWord(metaOff+slot(cpu, set, w), meta&^3) // -> invalid
				n++
			}
		}
	}
	return n
}

// downgradeOthers moves remote modified copies of (set, tag) to shared.
func (c *CacheSim) downgradeOthers(space *machine.Space, metaOff, tagOff int64,
	slot func(cpu, set, way int) int64, me, set int, tag uint64) {
	for cpu := 0; cpu < c.CPUs; cpu++ {
		if cpu == me {
			continue
		}
		for w := 0; w < c.Ways; w++ {
			meta := space.ReadWord(metaOff + slot(cpu, set, w))
			if meta&3 != lineModified {
				continue
			}
			if space.ReadWord(tagOff+slot(cpu, set, w)) == tag {
				space.WriteWord(metaOff+slot(cpu, set, w), meta&^3|lineShared)
			}
		}
	}
}

// MissRates reports the per-block-size miss rates from the last Run.
func (c *CacheSim) MissRates() []float64 { return c.missRates }
