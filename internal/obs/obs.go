// Package obs is the deterministic observability layer of the simulated
// machine: a virtual-time event bus plus a metrics registry.
//
// Every simulated subsystem (vm, core, machine, swap, disk, netdev, fault)
// emits typed events — fault-in, compression-cache insert/evict/hit, cluster
// flush, cleaner pass, device op completion, injected fault, recovery —
// stamped only with the machine's virtual clock, never the host clock.
// Alongside the event stream, a registry collects counters, gauges and
// fixed-bucket virtual-latency histograms (fault service time, compression
// time per page, device queue wait).
//
// Determinism is a hard contract, identical to the one the experiment
// harness makes: a machine's event stream and every histogram are pure
// functions of (config, workload, seed). Because each machine is
// single-threaded on its own virtual clock, traces are byte-identical at any
// experiment parallelism, making a JSONL trace a diffable artifact of an
// experiment configuration.
//
// Overhead is budgeted at a few host nanoseconds when disabled: a nil *Bus
// is valid and every probe is one nil/mask test away from a no-op, so the
// default (untraced) machine pays one predictable branch per probe site and
// allocates nothing.
package obs

import (
	"fmt"
	"strings"
	"time"

	"compcache/internal/sim"
)

// Class identifies one event type. Classes are bits so a Bus can enable any
// subset; a zero mask in Options selects all classes.
type Class uint32

// Event classes, one bit each.
const (
	// ClassFault is a serviced page fault (vm). Aux holds the fault source
	// (0 zero-fill, 1 compression cache, 2 backing store), Dur the full
	// service time including any device wait.
	ClassFault Class = 1 << iota
	// ClassEvict is a page leaving uncompressed memory (vm). Aux is 1 for a
	// dirty write-back, 0 for a clean discard.
	ClassEvict
	// ClassCCInsert is a page entering the compression cache (core). Bytes
	// is the compressed size, Aux is 1 when the entry is dirty.
	ClassCCInsert
	// ClassCCHit is a fault satisfied by the compression cache (core).
	ClassCCHit
	// ClassCCMiss is a cache lookup that fell through to the backing store
	// (core).
	ClassCCMiss
	// ClassCCEvict is a cache entry leaving the live index (core). Aux is 0
	// for an explicit drop (stale copy invalidated), 1 for a reclaim of a
	// clean entry during frame release.
	ClassCCEvict
	// ClassCleanPass is one cleaner pass that flushed dirty entries (core).
	// Aux is the number of entries cleaned, Bytes their total footprint.
	ClassCleanPass
	// ClassFlush is one clustered write to the backing store (swap). Bytes
	// is the cluster size on the store, Aux the number of pages in it.
	ClassFlush
	// ClassSwapGC is one compaction pass of the clustered store (swap). Bytes
	// is the live data copied.
	ClassSwapGC
	// ClassDiskRead is a completed device read (disk or netdev). Dur is the
	// service time, Bytes the transfer size, Aux the queue wait in
	// nanoseconds of virtual time.
	ClassDiskRead
	// ClassDiskWrite is a completed device write, synchronous or queued
	// (disk or netdev). Fields as for ClassDiskRead.
	ClassDiskWrite
	// ClassRetry is a failed network transfer being reissued (netdev). Aux
	// is the attempt number, Dur the backoff charged before the retry.
	ClassRetry
	// ClassInject is a fault-injector decision that fired (fault). Aux is
	// the injected kind: 1 read error, 2 write error, 3 cache corruption,
	// 4 swap corruption, 5 latency spike, 6 crash (power cut mid-write).
	ClassInject
	// ClassRecovery is a recovery action: a corrupt fragment re-fetched from
	// a lower level of the hierarchy (machine), or one log segment / cluster
	// commit record revalidated during mount-time crash recovery (swap). For
	// mount-time events Aux is the number of page copies recovered and Bytes
	// their total size.
	ClassRecovery

	classCount = 14
)

// ClassAll enables every event class.
const ClassAll Class = 1<<classCount - 1

// classNames maps each class bit (by index) to its wire name; the names are
// what the exporters and the enable-mask parser use.
var classNames = [classCount]string{
	"fault", "evict", "cc_insert", "cc_hit", "cc_miss", "cc_evict",
	"clean_pass", "flush", "swap_gc", "disk_read", "disk_write",
	"retry", "inject", "recovery",
}

// String names a single class ("fault"); multi-bit masks render as
// "class|class".
func (c Class) String() string {
	out := ""
	for i := 0; i < classCount; i++ {
		if c&(1<<i) == 0 {
			continue
		}
		if out != "" {
			out += "|"
		}
		out += classNames[i]
	}
	if out == "" {
		return "none"
	}
	return out
}

// ParseClasses parses a comma- or pipe-separated list of wire names
// ("fault,disk_read") into an enable mask. "all" and the empty string select
// every class; "none" selects nothing.
func ParseClasses(s string) (Class, error) {
	split := func(r rune) bool { return r == ',' || r == '|' }
	var mask Class
	for _, name := range strings.FieldsFunc(s, split) {
		name = strings.TrimSpace(name)
		switch name {
		case "", "none":
		case "all":
			mask = ClassAll
		default:
			bit := -1
			for i, n := range classNames {
				if n == name {
					bit = i
					break
				}
			}
			if bit < 0 {
				return 0, fmt.Errorf("obs: unknown event class %q (valid: all, none, %s)",
					name, strings.Join(classNames[:], ", "))
			}
			mask |= 1 << bit
		}
	}
	if s == "" || strings.TrimFunc(s, split) == "" {
		return ClassAll, nil
	}
	return mask, nil
}

// Subsystem identifies the layer an event came from.
type Subsystem uint8

// Subsystems, in hierarchy order.
const (
	SubVM Subsystem = iota
	SubCore
	SubMachine
	SubSwap
	SubDisk
	SubNet
	SubFault

	subsystemCount
)

var subsystemNames = [subsystemCount]string{
	"vm", "core", "machine", "swap", "disk", "netdev", "fault",
}

// String names the subsystem ("vm", "core", ...).
func (s Subsystem) String() string {
	if int(s) < len(subsystemNames) {
		return subsystemNames[s]
	}
	return "unknown"
}

// Event is one typed observation. T is the only timestamp and comes from the
// machine's virtual clock; an Event never carries host time, so two runs of
// the same seeded experiment produce identical streams.
type Event struct {
	T     sim.Time      // virtual instant the event completed
	Class Class         // exactly one class bit
	Sub   Subsystem     // emitting subsystem
	Seg   int32         // page identity when applicable (else 0)
	Page  int32         // page identity when applicable (else 0)
	Bytes int64         // payload size when applicable (else 0)
	Dur   time.Duration // virtual duration when applicable (else 0)
	Aux   int64         // class-specific detail; see the class doc comments
}

// Fault sources recorded in ClassFault's Aux field.
const (
	FaultSrcZero   int64 = iota // zero-filled cold fault
	FaultSrcCC                  // decompressed from the compression cache
	FaultSrcSwap                // read from the backing store
	FaultSrcRemote              // fetched from remote fleet memory
)

// Injected-fault kinds recorded in ClassInject's Aux field.
const (
	InjectReadError int64 = 1 + iota
	InjectWriteError
	InjectCacheCorruption
	InjectSwapCorruption
	InjectLatencySpike
	InjectCrash
)

// Options configures a Bus.
type Options struct {
	// Classes is the enable mask; 0 selects every class.
	Classes Class

	// RingSize bounds the retained event window; 0 selects DefaultRingSize.
	// When more events are emitted than the ring holds, the oldest are
	// dropped (and counted); the retained window is still deterministic.
	RingSize int
}

// DefaultRingSize is the event window retained when Options.RingSize is 0.
const DefaultRingSize = 1 << 16
