// Package machine assembles the simulated computer: clock, frame pool, disk,
// file system, backing stores, virtual memory, replacement policy and — when
// enabled — the compression cache. It implements the paging policy that glues
// the pieces together, which is where the paper's design decisions live:
// compress-on-eviction with the 4:3 retention threshold, fault service from
// the cache before the backing store, clustered cleaning, and neighbor
// prefetch from clustered reads.
package machine

import (
	"fmt"

	"compcache/internal/core"
	"compcache/internal/disk"
	"compcache/internal/fault"
	"compcache/internal/fs"
	"compcache/internal/netdev"
	"compcache/internal/policy"
	"compcache/internal/sim"
	"compcache/internal/swap"
)

// CCConfig configures the compression cache.
type CCConfig struct {
	// Enabled turns the compression cache on. When false the machine is the
	// unmodified baseline system: dirty evictions go straight to a direct
	// (page-per-block) swap file.
	Enabled bool

	// Codec names the registered compression codec; default "lzrw1".
	Codec string

	// KeepNum/KeepDen define the retention threshold as a ratio of the page
	// size: a compressed page is kept only if its size is at most
	// PageSize*KeepNum/KeepDen. The paper keeps pages that compress better
	// than 4:3, i.e. to at most 3/4 of the page: KeepNum=3, KeepDen=4.
	KeepNum, KeepDen int

	// MaxFrames caps the cache's physical size (0 = policy-limited only).
	MaxFrames int

	// FixedFrames, when positive, reproduces the paper's original
	// fixed-size compression cache (§4.2's rejected first design): the
	// cache is pre-grown to exactly this many frames and never shrinks or
	// grows. Used by the ablation study.
	FixedFrames int

	// Core carries the low-level cache parameters (headers, clean batch).
	Core core.Params

	// CleanReserve is the number of free-or-reclaimable frames the cleaner
	// tries to keep ahead of demand. 0 selects a default proportional to
	// memory size.
	CleanReserve int

	// PrefetchNeighbors inserts pages incidentally read by clustered swap
	// reads into the cache as clean entries (on by default; set
	// DisablePrefetch to turn off).
	DisablePrefetch bool

	// MetadataOverhead models the paper's §4.4 memory overhead: ~38 KBytes
	// of static tables (LZRW1 hash table + code growth) charged at startup,
	// plus 8 bytes per virtual page charged as segments are created.
	MetadataOverhead bool

	// FileCache extends the compression cache to evicted file-buffer-cache
	// blocks, §6's "one might consider ... keep[ing] part or all of the
	// file buffer cache in compressed format in order to improve the cache
	// hit rate". Requires Enabled.
	FileCache bool

	// RefreshOnFault switches the cache from the paper's FIFO entry aging
	// to LRU-like aging (a fault refreshes the entry's age). See
	// core.Params.RefreshOnFault for the trade-off.
	RefreshOnFault bool
}

// Config describes a simulated machine.
type Config struct {
	// PageSize is the VM page size; the paper's DECstations use 4 KBytes.
	PageSize int

	// MemoryBytes is the physical memory available to user pages (VM pages,
	// file cache and compression cache combined). The paper runs Figure 3
	// with ~6 MBytes and Table 1 with ~14 MBytes.
	MemoryBytes int64

	// Cost is the CPU cost model.
	Cost sim.CostModel

	// Disk parameterizes the backing-store device.
	Disk disk.Params

	// Net, when non-nil, replaces the disk with a network page server (the
	// paper's diskless mobile scenario): all backing-store traffic crosses
	// the modelled link instead of a local disk.
	Net *netdev.Params

	// FS configures the file system (block size defaults to PageSize).
	FS fs.Options

	// Swap configures the clustered backing store used when the compression
	// cache is enabled.
	Swap swap.ClusterConfig

	// LFSSwap, when non-nil, replaces the baseline machine's direct
	// (page-per-block) swap with a log-structured store — the "paging into
	// Sprite LFS" alternative §5.1 discusses. Ignored when the compression
	// cache is enabled (the cache brings its own clustered store).
	LFSSwap *swap.LFSConfig

	// CC configures the compression cache.
	CC CCConfig

	// Faults, when non-nil, attaches a deterministic fault injector to the
	// machine: device errors, latency spikes, and compressed-fragment
	// corruption per the rates in the config. Nil injects nothing and adds
	// no overhead.
	Faults *fault.Config

	// Biases configures the three-way memory trade; keys "vm", "fs", "cc".
	// Defaults to policy.DefaultBiases.
	Biases map[string]policy.Bias

	// ReserveFrames keeps this many frames free as fault-path headroom;
	// 0 selects a small default.
	ReserveFrames int
}

// Default returns the paper's baseline configuration: a DECstation-class
// cost model, an RZ57 disk, 4-KByte pages and the given user memory, with
// the compression cache disabled.
func Default(memoryBytes int64) Config {
	return Config{
		PageSize:    4096,
		MemoryBytes: memoryBytes,
		Cost:        sim.DefaultCostModel(),
		Disk:        disk.RZ57(),
	}
}

// WithNetwork returns a copy of the configuration paging over the given
// network instead of a local disk.
func (c Config) WithNetwork(p netdev.Params) Config {
	c.Net = &p
	return c
}

// WithLFS returns a copy of the configuration whose baseline machine pages
// into a log-structured backing store.
func (c Config) WithLFS(cfg swap.LFSConfig) Config {
	c.LFSSwap = &cfg
	return c
}

// WithCC returns a copy of the configuration with the compression cache
// enabled using the paper's parameters (LZRW1, 4:3 threshold, 1-KByte
// fragments, 32-KByte clusters).
func (c Config) WithCC() Config {
	c.CC.Enabled = true
	return c
}

func (c *Config) setDefaults() error {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PageSize <= 0 || c.PageSize%512 != 0 {
		return fmt.Errorf("machine: bad page size %d", c.PageSize)
	}
	if c.MemoryBytes < int64(c.PageSize)*8 {
		return fmt.Errorf("machine: memory %d bytes is too small (need at least 8 pages)", c.MemoryBytes)
	}
	if c.Cost == (sim.CostModel{}) {
		c.Cost = sim.DefaultCostModel()
	}
	if c.Disk.BytesPerSec == 0 {
		c.Disk = disk.RZ57()
	}
	if c.FS.BlockSize == 0 {
		c.FS.BlockSize = c.PageSize
	}
	if c.Swap.PageSize == 0 {
		c.Swap.PageSize = c.PageSize
	}
	if c.CC.Codec == "" {
		c.CC.Codec = "lzrw1"
	}
	if c.CC.KeepNum == 0 || c.CC.KeepDen == 0 {
		c.CC.KeepNum, c.CC.KeepDen = 3, 4
	}
	if c.CC.KeepNum < 0 || c.CC.KeepDen <= 0 || c.CC.KeepNum > c.CC.KeepDen {
		return fmt.Errorf("machine: bad retention threshold %d/%d", c.CC.KeepNum, c.CC.KeepDen)
	}
	if c.CC.Core == (core.Params{}) {
		c.CC.Core = core.DefaultParams()
	}
	if c.CC.FileCache {
		if !c.CC.Enabled {
			return fmt.Errorf("machine: CC.FileCache requires CC.Enabled")
		}
		if c.FS.BlockSize != c.PageSize {
			return fmt.Errorf("machine: CC.FileCache needs BlockSize == PageSize (got %d vs %d)",
				c.FS.BlockSize, c.PageSize)
		}
	}
	c.CC.Core.MaxFrames = c.CC.MaxFrames
	if c.CC.RefreshOnFault {
		c.CC.Core.RefreshOnFault = true
	}
	if c.CC.FixedFrames > 0 {
		c.CC.Core.MaxFrames = c.CC.FixedFrames
		c.CC.Core.MinFrames = c.CC.FixedFrames
	}
	frames := int(c.MemoryBytes / int64(c.PageSize))
	if c.CC.CleanReserve == 0 {
		c.CC.CleanReserve = max(4, frames/64)
	}
	if c.ReserveFrames == 0 {
		c.ReserveFrames = max(2, frames/256)
	}
	if c.Biases == nil {
		c.Biases = policy.DefaultBiases()
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if c.Faults.CrashConfigured() {
			// Crashing a store whose media layout cannot be recovered only
			// proves the layout is unrecoverable, so arm the recoverable
			// formats. The LFS config is copied before mutation — Config is
			// passed by value but LFSSwap is a pointer the caller may share.
			c.Swap.CommitRecords = true
			if c.LFSSwap != nil && !c.LFSSwap.Durable {
				lfsCfg := *c.LFSSwap
				lfsCfg.Durable = true
				c.LFSSwap = &lfsCfg
			}
		}
	}
	return nil
}

// WithFaults returns a copy of the configuration with the fault injector
// attached.
func (c Config) WithFaults(f fault.Config) Config {
	c.Faults = &f
	return c
}

// keepThreshold is the largest compressed size retained, in bytes.
func (c *Config) keepThreshold() int {
	return c.PageSize * c.CC.KeepNum / c.CC.KeepDen
}

// staticOverheadBytes is the §4.4 fixed metadata cost.
const staticOverheadBytes = 16*1024 + 22*1024 // LZRW1 hash table + code size delta

// perPageOverheadBytes is the §4.4 page-table extension per virtual page.
const perPageOverheadBytes = 8
