package mem

import (
	"fmt"

	"compcache/internal/snap"
)

// SnapshotTo serializes the pool exactly: every frame's bytes, the owner
// table, and the free list in its current order. Restoring the pool
// verbatim is what keeps every FrameID held by the other subsystems (VM
// page tables, cache ring, buffer cache, LFS segment buffer) valid across
// a snapshot/restore cycle without any pointer rewriting.
func (p *Pool) SnapshotTo(w *snap.Writer) {
	w.Section("mem.pool")
	w.Int(p.pageSize)
	w.Int(len(p.owner))
	w.Bytes32(p.data)
	for _, o := range p.owner {
		w.U8(uint8(o))
	}
	w.Int(len(p.free))
	for _, id := range p.free {
		w.I32(int32(id))
	}
}

// RestoreFrom overwrites the pool's state with a snapshot. The pool must
// have the same geometry (frame count and page size) as the one that was
// snapshotted — machine.Restore guarantees it by rebuilding the machine
// from the same configuration first.
func (p *Pool) RestoreFrom(r *snap.Reader) error {
	r.Section("mem.pool")
	pageSize := r.Int()
	frames := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if pageSize != p.pageSize || frames != len(p.owner) {
		return fmt.Errorf("mem: snapshot geometry %d frames x %d bytes, pool has %d x %d",
			frames, pageSize, len(p.owner), p.pageSize)
	}
	data := r.Bytes32()
	if r.Err() == nil && len(data) != len(p.data) {
		return fmt.Errorf("mem: snapshot holds %d data bytes, pool has %d", len(data), len(p.data))
	}
	owner := make([]Owner, frames)
	for i := range owner {
		o := Owner(r.U8())
		if r.Err() == nil && (o < Free || o >= numOwners) {
			return fmt.Errorf("mem: snapshot frame %d has invalid owner %d", i, o)
		}
		owner[i] = o
	}
	nfree := r.Int()
	if r.Err() == nil && (nfree < 0 || nfree > frames) {
		return fmt.Errorf("mem: snapshot free list of %d frames exceeds pool size %d", nfree, frames)
	}
	free := make([]FrameID, 0, nfree)
	for i := 0; i < nfree; i++ {
		free = append(free, FrameID(r.I32()))
	}
	if err := r.Err(); err != nil {
		return err
	}
	copy(p.data, data)
	p.owner = owner
	p.free = free
	p.counts = [numOwners]int{}
	for _, o := range owner {
		p.counts[o]++
	}
	return p.CheckConservation()
}
