// Command cclint runs the project's custom static-analysis suite: the
// determinism and virtual-time invariants the reproduction depends on.
//
// Usage:
//
//	cclint [-json] [-list] [-werror] [-only a,b] [-baseline file]
//	       [-write-baseline] [-effects file] [-write-effects]
//	       [-taint-report file] [packages...]
//
// Packages default to ./... . Patterns follow the go tool's shape
// ("./...", "./internal/...", or plain directories); whatever the
// patterns, the whole module is loaded and type-checked so cross-package
// analyses (crosscredit, obscoverage) see every call path — patterns only
// select which packages' findings are reported. Exit status is 0 when the
// tree is clean (warn-severity findings do not fail unless -werror), 1
// when there are error findings, and 2 on usage or load errors.
//
// -only runs a comma-separated subset of the suite — the iteration loop
// for a single analyzer on a subtree, e.g.
//
//	cclint -only snapcover ./internal/swap
//
// Ignore directives naming unselected analyzers stay valid (the unused-
// directive hygiene check is skipped in filtered runs).
//
// -taint-report writes the dataflow engine's full source→sink flow table
// as JSON — every nondeterministic value reaching a replayable output,
// with its call chain — for CI to archive alongside the effects manifest.
//
// Findings are suppressed one line at a time, with a mandatory reason:
//
//	start := time.Now() //cclint:ignore walltime -- host-time progress line
//
// or, for incremental adoption of a new analyzer, recorded wholesale with
// -write-baseline into .cclint-baseline.json and burned down over time —
// CI fails while the checked-in baseline is non-empty.
//
// -write-effects regenerates .cclint-effects.json, the manifest of every
// exported function's inferred effect set; the effectdrift analyzer warns
// when a function's effects grow beyond the recorded entry. The file is
// byte-deterministic, so CI can regenerate it and fail on any diff
// (a stale manifest means an unreviewed effect change).
//
// See internal/lint for the analyzers and DESIGN.md ("Static analysis
// engine") for the call-graph machinery and why each rule exists.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"compcache/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	werror := flag.Bool("werror", false, "treat warn-severity findings as errors for the exit status")
	baselinePath := flag.String("baseline", ".cclint-baseline.json", "baseline file (module-root-relative unless absolute); missing file = empty baseline")
	writeBaseline := flag.Bool("write-baseline", false, "record current findings into the baseline file and exit 0")
	effectsPath := flag.String("effects", lint.EffectsFile, "effects manifest (module-root-relative unless absolute); missing file = no drift checks")
	writeEffects := flag.Bool("write-effects", false, "record the inferred effects of every exported function into the manifest and exit 0")
	only := flag.String("only", "", "comma-separated analyzer names to run instead of the full suite")
	taintReport := flag.String("taint-report", "", "write the taint source→sink flow report to this JSON file and exit 0")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %-5s %s\n", a.Name(), a.Severity(), a.Doc())
		}
		return
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(2)
	}
	for _, terr := range mod.TypeErrors {
		fmt.Fprintln(os.Stderr, "cclint: type error:", terr)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := mod.Select(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "cclint: no Go packages matched")
		os.Exit(2)
	}

	ep := *effectsPath
	if !filepath.IsAbs(ep) {
		ep = filepath.Join(mod.Root, ep)
	}
	if *writeEffects {
		if err := lint.WriteEffects(ep, mod); err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cclint: wrote effects manifest to %s\n", ep)
		return
	}
	mod.EffectsPath = ep

	if *taintReport != "" {
		tp := *taintReport
		if !filepath.IsAbs(tp) {
			tp = filepath.Join(mod.Root, tp)
		}
		if err := lint.WriteTaintReport(tp, mod); err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cclint: wrote taint report to %s\n", tp)
		return
	}

	var diags []lint.Diagnostic
	if *only != "" {
		names := strings.Split(*only, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		diags, err = lint.RunOnly(pkgs, analyzers, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
	} else {
		diags = lint.Run(pkgs, analyzers)
	}

	bp := *baselinePath
	if !filepath.IsAbs(bp) {
		bp = filepath.Join(mod.Root, bp)
	}
	if *writeBaseline {
		if err := lint.WriteBaseline(bp, mod.Root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cclint: wrote %d finding(s) to %s\n", len(diags), bp)
		return
	}
	entries, err := lint.LoadBaseline(bp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(2)
	}
	diags, suppressed := lint.ApplyBaseline(entries, mod.Root, diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	fail := lint.ErrorCount(diags) > 0 || (*werror && len(diags) > 0)
	if len(diags) > 0 || suppressed > 0 {
		if !*jsonOut || suppressed > 0 {
			fmt.Fprintf(os.Stderr, "cclint: %d finding(s), %d suppressed by baseline\n", len(diags), suppressed)
		}
	}
	if fail {
		os.Exit(1)
	}
}
