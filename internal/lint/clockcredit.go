package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// ClockCredit guards the cost accounting of the simulated machine. It
// runs only on internal/machine, the package that owns the boundary
// between simulation logic and the charged subsystems: any exported
// method that performs codec work (Compress/Decompress) or touches the
// backing store through the machine's device fields must advance the
// virtual clock somewhere on the way — uncharged simulated work would
// silently skew Table 1 and Figure 3 while every test stays green.
//
// The analysis is intra-package: a method is credited if it calls
// Advance/AdvanceTo directly or calls (transitively, by name) another
// function in the package that does, so charging through a helper like
// decompressInto counts.
type ClockCredit struct{}

// Name implements Analyzer.
func (ClockCredit) Name() string { return "clockcredit" }

// Doc implements Analyzer.
func (ClockCredit) Doc() string {
	return "exported internal/machine methods doing codec or disk work must advance the virtual clock"
}

// Severity implements Analyzer.
func (ClockCredit) Severity() Severity { return SevError }

// clockCreditScope is the package-path suffix the analyzer applies to.
const clockCreditScope = "internal/machine"

// codecOps are selector names that always denote chargeable codec work.
var codecOps = map[string]bool{"Compress": true, "Decompress": true}

// storeOps are selector names that denote backing-store work when invoked
// through one of the machine's device fields.
var storeOps = map[string]bool{"Read": true, "Write": true, "WriteCluster": true, "ReadCluster": true}

// deviceFields are the machine fields that reach the simulated device.
var deviceFields = map[string]bool{"direct": true, "clustered": true, "Device": true, "Disk": true}

// advanceOps are the virtual-clock charging calls. Advance/AdvanceTo are the
// clock's own methods; Wait/Schedule are the kernel's — on an attached clock
// every Advance is a kernel-mediated Wait, so a method reaching the kernel
// API directly has charged its actor's clock just the same.
var advanceOps = map[string]bool{"Advance": true, "AdvanceTo": true, "Wait": true, "Schedule": true}

// funcFacts records what one function body does directly.
type funcFacts struct {
	decl     *ast.FuncDecl
	advances bool
	ops      []ast.Node // chargeable op call sites
	calls    []string   // names of same-package functions it calls
}

// Check implements Analyzer.
func (c ClockCredit) Check(pkg *Package) []Diagnostic {
	if !strings.HasSuffix(pkg.Path, clockCreditScope) {
		return nil
	}

	// Pass 1: direct facts for every function in the package.
	facts := map[string]*funcFacts{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := &funcFacts{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.SelectorExpr:
					name := fun.Sel.Name
					switch {
					case advanceOps[name]:
						ff.advances = true
					case codecOps[name]:
						ff.ops = append(ff.ops, call)
					case storeOps[name] && throughDeviceField(fun.X):
						ff.ops = append(ff.ops, call)
					default:
						// m.helper(...) — a candidate same-package call.
						ff.calls = append(ff.calls, name)
					}
				case *ast.Ident:
					ff.calls = append(ff.calls, fun.Name)
				}
				return true
			})
			// Methods and functions are keyed by bare name; a collision
			// between a method and a function only makes the analysis more
			// conservative (credit propagates more freely).
			facts[fd.Name.Name] = ff
		}
	}

	// Pass 2: propagate clock credit through same-package calls to a
	// fixed point.
	for changed := true; changed; {
		changed = false
		for _, ff := range facts {
			if ff.advances {
				continue
			}
			for _, callee := range ff.calls {
				if cf, ok := facts[callee]; ok && cf.advances {
					ff.advances = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: flag exported functions that do chargeable work without
	// credit, directly or via an uncredited same-package callee. Names are
	// visited in sorted order so the analyzer's own output never depends
	// on map iteration order — cclint practices what it preaches.
	names := make([]string, 0, len(facts))
	for name := range facts {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Diagnostic
	for _, name := range names {
		ff := facts[name]
		if !ast.IsExported(name) || ff.advances {
			continue
		}
		for _, op := range ff.ops {
			out = append(out, diag(pkg, c.Name(), op,
				"%s performs codec/disk work but never advances the virtual clock; the cost of this op is uncharged", name))
		}
		flagged := map[string]bool{}
		for _, callee := range ff.calls {
			if flagged[callee] {
				continue
			}
			if cf, ok := facts[callee]; ok && !cf.advances && len(cf.ops) > 0 {
				flagged[callee] = true
				out = append(out, diag(pkg, c.Name(), ff.decl.Name,
					"%s reaches codec/disk work via %s without ever advancing the virtual clock", name, callee))
			}
		}
	}
	return out
}

// throughDeviceField reports whether a receiver expression reaches one of
// the machine's device fields (m.direct, m.clustered, s.m.Device, ...).
func throughDeviceField(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			if deviceFields[v.Sel.Name] {
				return true
			}
			e = v.X
		case *ast.Ident:
			return deviceFields[v.Name]
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			return false
		default:
			return false
		}
	}
}
