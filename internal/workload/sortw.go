package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"compcache/internal/machine"
	"compcache/internal/simalloc"
)

// SortMode selects the input ordering for the Sort workload.
type SortMode int

// Sort input orderings.
const (
	// SortRandom shuffles the input uniformly, "so there was minimal
	// repetition of strings within an individual 4-Kbyte page"; the paper
	// measured ~98% of pages failing the 4:3 threshold and an 0.91x
	// slowdown under the compression cache.
	SortRandom SortMode = iota

	// SortPartial uses "only a minor permutation of the sorted copy of the
	// file, with substrings (or complete words) often repeated within a
	// page"; the paper measured ~3:1 compression and a 1.30x speedup.
	SortPartial
)

// String returns the mode name.
func (m SortMode) String() string {
	if m == SortPartial {
		return "partial"
	}
	return "random"
}

// Sort reproduces the paper's quicksort benchmark: sorting a file of
// approximately 12 MB of text ("numerous copies of each word in
// /usr/dict/words"). Records live in simulated memory and are sorted with
// an in-place iterative quicksort; the input file is read through the
// simulated file system.
type Sort struct {
	// Bytes is the total input size; the paper uses ~12 MB.
	Bytes int64

	// Mode selects random or partial (nearly sorted) input.
	Mode SortMode

	// VocabWords is the dictionary size words are drawn from.
	VocabWords int

	// Seed makes runs reproducible.
	Seed int64

	// Run records the heap location so tests can verify the result.
	space *machine.Space
	base  int64
	n     int64
}

// recordBytes is the fixed record size: a word padded/truncated to 16 bytes.
// Fixed-size records keep the in-place quicksort honest without an indirect
// pointer array.
const recordBytes = 16

// Name implements Workload.
func (s *Sort) Name() string { return "sort_" + s.Mode.String() }

// Run implements Workload.
func (s *Sort) Run(m *machine.Machine) error {
	if s.Bytes < recordBytes*16 {
		return fmt.Errorf("sort: input too small")
	}
	vocabN := s.VocabWords
	if vocabN == 0 {
		vocabN = 25000
	}
	n := s.Bytes / recordBytes
	rng := rand.New(rand.NewSource(s.Seed))

	// Build the input file (setup): records drawn from the vocabulary in
	// the requested order.
	words := vocabulary(vocabN, s.Seed+1)
	sortedWords := append([]string(nil), words...)
	sort.Strings(sortedWords)

	input := m.FS.Create("sort.input")
	rec := make([]byte, recordBytes)
	writeRec := func(off int64, w string, salt uint32) {
		for i := range rec {
			rec[i] = 0
		}
		copy(rec, w)
		// A sequence tag keeps records distinct without making random
		// pages compressible.
		rec[12], rec[13], rec[14] = byte(salt), byte(salt>>8), byte(salt>>16)
		input.WriteAt(rec, off)
	}
	switch s.Mode {
	case SortRandom:
		for i := int64(0); i < n; i++ {
			writeRec(i*recordBytes, words[rng.Intn(vocabN)], rng.Uint32())
		}
	case SortPartial:
		// "Only a minor permutation of the sorted copy of the file, with
		// substrings (or complete words) often repeated within a page":
		// walk the sorted vocabulary in order, but jitter each pick within
		// a local window and repeat words in short bursts. The result is
		// nearly sorted and partially repetitive — compressible pages and
		// hard-to-compress pages mixed, as the paper measured (~49% of
		// pages missing the 4:3 threshold).
		const window = 96
		i := int64(0)
		for i < n {
			center := int(i * int64(vocabN) / n)
			idx := center + rng.Intn(window) - window/2
			if idx < 0 {
				idx = 0
			}
			if idx >= vocabN {
				idx = vocabN - 1
			}
			w := sortedWords[idx]
			run := int64(rng.Intn(3) + 1)
			for j := int64(0); j < run && i < n; j++ {
				writeRec(i*recordBytes, w, rng.Uint32())
				i++
			}
		}
	default:
		return fmt.Errorf("sort: unknown mode %d", s.Mode)
	}
	m.FS.Sync()

	// Load the file into the heap (this is part of the benchmark in the
	// paper: the sort program reads its input).
	heap := m.NewSegment("sort.heap", n*recordBytes+int64(m.Config().PageSize))
	arena := simalloc.New(heap)
	base := arena.AllocPageAligned(n * recordBytes)
	s.space, s.base, s.n = heap, base, n

	m.MarkStart()
	buf := make([]byte, 64*recordBytes)
	for off := int64(0); off < n*recordBytes; off += int64(len(buf)) {
		chunk := buf
		if rem := n*recordBytes - off; rem < int64(len(buf)) {
			chunk = buf[:rem]
		}
		input.ReadAt(chunk, off)
		heap.Write(base+off, chunk)
	}

	s.quicksort(heap, base, 0, n-1)

	m.Drain()
	return nil
}

// quicksort is an iterative in-place quicksort with median-of-three pivots
// and insertion sort below a cutoff, operating on records in simulated
// memory.
func (s *Sort) quicksort(space *machine.Space, base, lo, hi int64) {
	var ra, rb, rp [recordBytes]byte
	read := func(i int64, dst *[recordBytes]byte) { space.Read(base+i*recordBytes, dst[:]) }
	write := func(i int64, src *[recordBytes]byte) { space.Write(base+i*recordBytes, src[:]) }
	swap := func(i, j int64) {
		if i == j {
			return
		}
		read(i, &ra)
		read(j, &rb)
		write(i, &rb)
		write(j, &ra)
	}
	less := func(a, b *[recordBytes]byte) bool { return bytes.Compare(a[:], b[:]) < 0 }

	const cutoff = 12
	type span struct{ lo, hi int64 }
	stack := []span{{lo, hi}}
	for len(stack) > 0 {
		sp := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sp.hi-sp.lo > cutoff {
			// Median of three: order lo, mid, hi.
			mid := sp.lo + (sp.hi-sp.lo)/2
			read(sp.lo, &ra)
			read(mid, &rb)
			if less(&rb, &ra) {
				swap(sp.lo, mid)
			}
			read(sp.lo, &ra)
			read(sp.hi, &rb)
			if less(&rb, &ra) {
				swap(sp.lo, sp.hi)
			}
			read(mid, &ra)
			read(sp.hi, &rb)
			if less(&rb, &ra) {
				swap(mid, sp.hi)
			}
			read(mid, &rp) // pivot

			i, j := sp.lo, sp.hi
			for i <= j {
				for {
					read(i, &ra)
					if !less(&ra, &rp) {
						break
					}
					i++
				}
				for {
					read(j, &rb)
					if !less(&rp, &rb) {
						break
					}
					j--
				}
				if i <= j {
					swap(i, j)
					i++
					j--
				}
			}
			// Recurse into the smaller side; loop on the larger.
			if j-sp.lo < sp.hi-i {
				if i < sp.hi {
					stack = append(stack, span{i, sp.hi})
				}
				sp.hi = j
			} else {
				if sp.lo < j {
					stack = append(stack, span{sp.lo, j})
				}
				sp.lo = i
			}
		}
		// Insertion sort for the small residue.
		for i := sp.lo + 1; i <= sp.hi; i++ {
			read(i, &ra)
			j := i - 1
			for j >= sp.lo {
				read(j, &rb)
				if !less(&ra, &rb) {
					break
				}
				write(j+1, &rb)
				j--
			}
			write(j+1, &ra)
		}
	}
}

// VerifySorted checks the final order after Run (tests use it); it reports
// the first out-of-order record index, or -1 when sorted.
func (s *Sort) VerifySorted() int64 {
	var prev, cur [recordBytes]byte
	s.space.Read(s.base, prev[:])
	for i := int64(1); i < s.n; i++ {
		s.space.Read(s.base+i*recordBytes, cur[:])
		if bytes.Compare(cur[:], prev[:]) < 0 {
			return i
		}
		prev = cur
	}
	return -1
}
