// Package core holds the Cache.Insert hot-root fixture and exercises
// the pooled-function table: slabGet is a recognized recycler, so its
// make fallback is warm-up, not a steady-state violation.
package core

// Cache is a miniature compression cache with a slab freelist.
type Cache struct {
	slabs [][]byte
	free  [][]byte
}

// Insert is a hot root (core Insert). It allocates nothing in steady
// state: the slab comes from the freelist and the append to a field is
// amortized.
func (c *Cache) Insert(key int64, data []byte) {
	b := c.slabGet(len(data))
	copy(b, data)
	c.slabs = append(c.slabs, b) // warm: append to a field
}

// slabGet is in the pooled-function table: the make fallback runs only
// until the freelist warms up, so it is demoted to amortized.
func (c *Cache) slabGet(n int) []byte {
	if k := len(c.free); k > 0 {
		b := c.free[k-1]
		c.free = c.free[:k-1]
		return b[:n]
	}
	return make([]byte, n) // warm: pooled recycler fallback
}
