// Package core is the obscoverage gate fixture: it advances the clock
// but does not import internal/obs, so it is not instrumented yet and
// the analyzer leaves it alone entirely.
package core

import (
	"time"

	"compcache/obscoverage/internal/sim"
)

// Core is an uninstrumented subsystem.
type Core struct{ clock *sim.Clock }

// Step advances the clock; no finding, because the package has no bus to
// probe in the first place.
func (c *Core) Step() { c.clock.Advance(time.Microsecond) }
