// Benchmarks regenerating the paper's evaluation. There is one benchmark
// per table and figure (Figure 1(a), Figure 1(b), Figure 3, Table 1 — one
// sub-benchmark per application row), plus ablation benchmarks for the
// design decisions DESIGN.md calls out and micro-benchmarks for the codec
// and fault paths. Benchmarks run at the small scale so `go test -bench=.`
// finishes in minutes; cmd/ccbench runs the paper scale.
package compcache

import (
	"fmt"
	"strings"
	"testing"

	"compcache/internal/exp"
	"compcache/internal/workload"
)

const benchMB = 1 << 20

// BenchmarkFig1a regenerates Figure 1(a), the analytic bandwidth-speedup
// surface.
func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Fig1a()
		if len(f.Grid) == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkFig1b regenerates Figure 1(b), the analytic reference-time
// surface with its leap at r = 0.5.
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Fig1b()
		if len(f.Grid) == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: the thrasher sweep over address-space
// sizes, measured on the baseline and compression-cache machines.
func BenchmarkFig3(b *testing.B) {
	opts := DefaultFig3Options(SmallScale)
	for i := 0; i < b.N; i++ {
		res, err := Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 row by row; each sub-benchmark runs
// one application on both machines and reports the measured speedup.
func BenchmarkTable1(b *testing.B) {
	opts := DefaultTable1Options(SmallScale)
	for _, w := range opts.Workloads {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			base := Default(int64(opts.MemoryMB) << 20)
			cc := base.WithCC()
			var last Comparison
			for i := 0; i < b.N; i++ {
				cmp, err := RunBoth(base, cc, w)
				if err != nil {
					b.Fatal(err)
				}
				last = cmp
			}
			b.ReportMetric(last.Speedup(), "speedup")
			b.ReportMetric(last.CC.Comp.Ratio(), "ratio")
		})
	}
}

// BenchmarkTable1Parallelism regenerates the whole of Table 1 serially and
// with the parallel runner. Wall-clock per op is the point of comparison:
// the runs are independent machines, so -j 4 should approach a 4x win on
// idle 4-core hardware while producing a byte-identical table (asserted in
// TestTable1ParallelMatchesSerial). Run with -scale=paper semantics via
// cmd/ccbench for the paper-sized version of the same comparison.
func BenchmarkTable1Parallelism(b *testing.B) {
	for _, j := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := DefaultTable1Options(SmallScale)
			opts.Parallelism = j
			for i := 0; i < b.N; i++ {
				res, err := Table1(opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkTable1ParallelismPaper is the acceptance benchmark at the
// paper's scale: the 14 machines of the full Table 1 regenerated with one
// worker and with four. On a ≥4-core host the j=4 run must finish in well
// under 1/1.5 of the serial time (the limit is the slowest single row, not
// worker count). Skipped under -short; run with
//
//	go test -short=false -run='^$' -bench=BenchmarkTable1ParallelismPaper -benchtime=1x
func BenchmarkTable1ParallelismPaper(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale Table 1 takes minutes; skipped under -short")
	}
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := DefaultTable1Options(PaperScale)
			opts.Parallelism = j
			for i := 0; i < b.N; i++ {
				if _, err := Table1(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Parallelism is the same serial-vs-parallel comparison over
// the Figure 3 sweep (4 machines per size, embarrassingly parallel).
func BenchmarkFig3Parallelism(b *testing.B) {
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := DefaultFig3Options(SmallScale)
			opts.Parallelism = j
			for i := 0; i < b.N; i++ {
				if _, err := Fig3(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartialIO measures whole-block vs exact-size backing
// store transfers (§4.3 / §6).
func BenchmarkAblationPartialIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPartialIO(1, 768, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpanning measures fragment spanning of file blocks
// (§4.3).
func BenchmarkAblationSpanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationSpanning(1, 768, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBias sweeps the compression-cache retention bias (§4.2).
func BenchmarkAblationBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationBias(1, 768, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThreshold sweeps the 4:3 retention threshold (§5.2).
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationThreshold(1, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCodec compares compression algorithms (§3).
func BenchmarkAblationCodec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationCodec(1, 768, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFixedSize compares the original fixed-size cache with
// adaptive sizing (§4.2).
func BenchmarkAblationFixedSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationFixedSize(1, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecs measures raw codec throughput on a representative page.
func BenchmarkCodecs(b *testing.B) {
	page := []byte(strings.Repeat("the compression cache extends physical memory ", 100))[:4096]
	for _, name := range Codecs() {
		codec, err := LookupCodec(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/compress", func(b *testing.B) {
			b.SetBytes(4096)
			b.ReportAllocs()
			dst := make([]byte, 0, codec.MaxCompressedSize(4096))
			dst = codec.Compress(dst[:0], page) // warm internal pools
			for i := 0; i < b.N; i++ {
				dst = codec.Compress(dst[:0], page)
			}
		})
		b.Run(name+"/decompress", func(b *testing.B) {
			comp := codec.Compress(nil, page)
			b.SetBytes(4096)
			b.ReportAllocs()
			dst := make([]byte, 0, 4096)
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = codec.Decompress(dst[:0], comp)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultPath measures the simulator's host-side cost per simulated
// memory reference under heavy paging (the figure that bounds experiment
// wall-clock time).
func BenchmarkFaultPath(b *testing.B) {
	for _, cc := range []bool{false, true} {
		name := "baseline"
		if cc {
			name = "cc"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Default(benchMB)
			if cc {
				cfg = cfg.WithCC()
			}
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := m.NewSegment("bench", 4*benchMB)
			pages := s.Pages()
			var word [8]byte
			for p := int32(0); p < pages; p++ {
				s.Write(int64(p)*4096, word[:])
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Touch(int32(i)%pages, i%2 == 0)
			}
		})
	}
}

// BenchmarkSteadyStatePaging measures the machine's compress/decompress hot
// path once the compression cache holds the whole working set: every touch
// is a page-out (compress into the per-machine scratch buffer) plus a cache
// hit (decompress into the frame), with no disk traffic. The allocs/op
// column is the interesting one — the steady state must stay at zero (also
// pinned by TestSteadyState*ZeroAllocs in internal/machine).
func BenchmarkSteadyStatePaging(b *testing.B) {
	for _, codecName := range []string{"lzrw1", "lzss", "bdi", "fpc"} {
		b.Run(codecName, func(b *testing.B) {
			cfg := Default(benchMB).WithCC()
			cfg.CC.Codec = codecName
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := m.NewSegment("bench", 400*4096)
			pages := s.Pages()
			var word [8]byte
			for p := int32(0); p < pages; p++ {
				s.Write(int64(p)*4096, word[:])
			}
			for pass := 0; pass < 3; pass++ { // reach the compressed steady state
				for p := int32(0); p < pages; p++ {
					s.Touch(p, false)
				}
			}
			b.SetBytes(4096)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Touch(int32(i)%pages, false)
			}
		})
	}
}

// BenchmarkThrasherSweep is the inner loop of Figure 3 at one interesting
// size (2x memory), useful for profiling the whole stack.
func BenchmarkThrasherSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Measure(Default(benchMB).WithCC(),
			&workload.Thrasher{Pages: 512, Write: true, Passes: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionBackingStore sweeps backing-store speed (§6).
func BenchmarkExtensionBackingStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BackingStoreSweep(1, 768, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionCompressionSpeed sweeps compression bandwidth (§6).
func BenchmarkExtensionCompressionSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.CompressionSpeedSweep(1, 768, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionPinning compares §3 advisory pinning with the cache.
func BenchmarkExtensionPinning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AdvisoryPinning(1, 512, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionFileCache measures the §6 compressed file buffer cache.
func BenchmarkExtensionFileCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.CompressedFileCache(1, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures trace replay throughput (references per second of
// host time through the full paging stack).
func BenchmarkReplay(b *testing.B) {
	m, err := New(Default(benchMB))
	if err != nil {
		b.Fatal(err)
	}
	var rec TraceRecorder
	m.VM.SetTraceHook(rec.Note)
	if err := (&Thrasher{Pages: 512, Write: true, Passes: 1, Seed: 1}).Run(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(Default(benchMB).WithCC(), &Replay{Refs: rec.Refs, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionLFS compares direct, log-structured and compressed
// paging (§5.1).
func BenchmarkExtensionLFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.LFSComparison(1, 512, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionMultiprogramming measures the three-way trade with
// concurrent processes (§4.2).
func BenchmarkExtensionMultiprogramming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Multiprogramming(1, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
