package stats

import (
	"strings"
	"testing"
	"time"
)

func TestCompressionRatio(t *testing.T) {
	c := Compression{CompressibleIn: 4096, CompressibleOut: 1024}
	if got := c.Ratio(); got != 0.25 {
		t.Fatalf("Ratio = %v, want 0.25", got)
	}
}

func TestCompressionRatioEmpty(t *testing.T) {
	var c Compression
	if got := c.Ratio(); got != 1 {
		t.Fatalf("empty Ratio = %v, want 1", got)
	}
}

func TestUncompressibleFrac(t *testing.T) {
	c := Compression{Compressions: 200, Incompressible: 98}
	if got := c.UncompressibleFrac(); got != 0.49 {
		t.Fatalf("UncompressibleFrac = %v, want 0.49", got)
	}
	var zero Compression
	if got := zero.UncompressibleFrac(); got != 0 {
		t.Fatalf("zero UncompressibleFrac = %v, want 0", got)
	}
}

func TestCCHitRate(t *testing.T) {
	c := CC{Hits: 3, Misses: 1}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	var zero CC
	if zero.HitRate() != 0 {
		t.Fatal("zero HitRate should be 0")
	}
}

func TestAvgAccess(t *testing.T) {
	r := Run{Time: 10 * time.Millisecond}
	r.VM.Refs = 1000
	if got := r.AvgAccess(); got != 10*time.Microsecond {
		t.Fatalf("AvgAccess = %v, want 10µs", got)
	}
	var zero Run
	if zero.AvgAccess() != 0 {
		t.Fatal("zero AvgAccess should be 0")
	}
}

func TestRunStringContainsSections(t *testing.T) {
	var r Run
	r.VM.Refs = 5
	r.AddExtra("records", 42)
	s := r.String()
	for _, want := range []string{"time", "refs", "faults", "compressions", "disk", "swap", "records"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestBytesStr(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KB"},
		{3 << 20, "3.0MB"},
		{5 << 30, "5.0GB"},
	}
	for _, c := range cases {
		if got := bytesStr(c.n); got != c.want {
			t.Errorf("bytesStr(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestAddExtraInitializesMap(t *testing.T) {
	var r Run
	r.AddExtra("a", 1)
	r.AddExtra("b", 2)
	if r.Extra["a"] != 1 || r.Extra["b"] != 2 {
		t.Fatalf("Extra = %v", r.Extra)
	}
}
