package lint

// effectdrift: effect-set growth of exported functions must be an
// explicit, reviewed diff. The checked-in .cclint-effects.json manifest
// records the inferred effect set of every exported function; when the
// inferred set gains an effect the manifest does not record, effectdrift
// warns at the declaration. Regenerating with `cclint -write-effects`
// puts the new set in the manifest, so the growth shows up in review as
// a JSON diff instead of sneaking in silently. Functions absent from
// the manifest never warn — a fresh tree (or a fixture module without a
// manifest) is quiet until someone records a baseline to hold.

// EffectDrift warns when an exported function's inferred effects exceed
// the recorded manifest.
type EffectDrift struct{}

// Name implements Analyzer.
func (EffectDrift) Name() string { return "effectdrift" }

// Doc implements Analyzer.
func (EffectDrift) Doc() string {
	return "exported function gained effects beyond the recorded .cclint-effects.json"
}

// Severity implements Analyzer.
func (EffectDrift) Severity() Severity { return SevWarn }

// Check implements Analyzer.
func (EffectDrift) Check(pkg *Package) []Diagnostic {
	manifest, err := pkg.Mod.effectsManifest()
	if err != nil {
		// A malformed manifest is itself a finding, reported once, on the
		// first package checked.
		if !pkg.Mod.manifestErrReported {
			pkg.Mod.manifestErrReported = true
			return []Diagnostic{{
				Analyzer: "effectdrift",
				Severity: SevError,
				File:     EffectsFile,
				Line:     1,
				Col:      1,
				Message:  err.Error(),
			}}
		}
		return nil
	}
	if len(manifest) == 0 {
		return nil
	}
	facts := pkg.Mod.Effects()
	var out []Diagnostic
	for _, n := range pkg.Mod.Graph.order {
		if n.Pkg != pkg || !n.Fn.Exported() {
			continue
		}
		recorded, ok := manifest[n.Fn.FullName()]
		if !ok {
			continue
		}
		inferred := facts.Of(n.Fn).Summary
		if gained := inferred &^ recorded; gained != 0 {
			out = append(out, diag(pkg, "effectdrift", n.Decl.Name,
				"effects of %s grew beyond the recorded manifest: inferred {%s}, recorded {%s} — review and regenerate with -write-effects",
				n.Fn.Name(), inferred, recorded))
		}
	}
	return out
}
