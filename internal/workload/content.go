package workload

import "math/rand"

// fillTunable fills buf with content whose LZRW1 compressibility is tuned by
// target, the approximate fraction of bytes that should remain after
// compression (the paper's compression-ratio axis). A prefix of
// target*len(buf) bytes is random (incompressible) and the remainder is a
// short repeating pattern (compresses to almost nothing), so the overall
// ratio lands near target.
func fillTunable(rng *rand.Rand, buf []byte, target float64) {
	if target < 0 {
		target = 0
	}
	if target > 1 {
		target = 1
	}
	n := int(float64(len(buf)) * target)
	rng.Read(buf[:n])
	pattern := [4]byte{0x20, byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26)), 0x00}
	for i := n; i < len(buf); i++ {
		buf[i] = pattern[i&3]
	}
}

// vocabulary produces a deterministic pseudo-dictionary of distinct
// lowercase words, standing in for /usr/dict/words (which the paper's sort
// benchmark replicates many times). Word lengths are 4-12 letters.
func vocabulary(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	words := make([]string, 0, n)
	for len(words) < n {
		l := 4 + rng.Intn(9)
		b := make([]byte, l)
		// Markov-ish letter chain for a vaguely English shape.
		prev := byte('a' + rng.Intn(26))
		for i := range b {
			if i > 0 && rng.Intn(3) == 0 {
				b[i] = prev
				continue
			}
			c := byte('a' + rng.Intn(26))
			b[i] = c
			prev = c
		}
		w := string(b)
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return words
}

// pageFiller synthesizes page contents at a fixed compressibility for
// trace replay.
type pageFiller struct {
	rng    *rand.Rand
	buf    []byte
	target float64
}

func newPageFiller(seed int64, pageSize int, target float64) *pageFiller {
	return &pageFiller{
		rng:    rand.New(rand.NewSource(seed)),
		buf:    make([]byte, pageSize),
		target: target,
	}
}

// page returns a freshly filled page buffer (reused across calls).
func (p *pageFiller) page() []byte {
	fillTunable(p.rng, p.buf, p.target)
	return p.buf
}
