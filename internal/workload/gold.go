package workload

import (
	"fmt"
	"math/rand"

	"compcache/internal/machine"
	"compcache/internal/simalloc"
)

// GoldPhase selects which of the paper's three gold benchmarks to run.
type GoldPhase int

// Gold benchmark phases (Table 1 rows).
const (
	// GoldCreate "creates a new index from scratch. It has a high degree of
	// write accesses"; the paper measured 0.90x (an 11% slowdown).
	GoldCreate GoldPhase = iota

	// GoldCold "performs a sequence of queries against an existing gold
	// index engine, with the index engine having just started", writing
	// many pages as well as reading them; 0.80x.
	GoldCold

	// GoldWarm "performs the same set of queries once gold_cold has
	// executed", mostly read-only faulting; 0.73x.
	GoldWarm
)

// String returns the phase name.
func (p GoldPhase) String() string {
	switch p {
	case GoldCreate:
		return "create"
	case GoldCold:
		return "cold"
	default:
		return "warm"
	}
}

// Gold reproduces the paper's main-memory database benchmark: the "index
// engine" of the Gold Mailer (Barbara et al., ICDE '93), an inverted index
// over mail messages kept entirely in virtual memory. The index is a
// chained-bucket hash table of words, each with a linked list of postings
// blocks holding ascending message IDs; postings pages compress "slightly
// worse than 2:1", and queries produce "a high fraction of nonsequential
// page accesses" — the combination that makes gold the paper's losing case
// for the compression cache.
type Gold struct {
	// Messages is the number of synthetic mail messages to index.
	Messages int

	// WordsPerMessage is the indexed words per message.
	WordsPerMessage int

	// VocabWords is the dictionary size.
	VocabWords int

	// Queries is the number of queries per query phase.
	Queries int

	// UpdateFrac is the fraction of queries that also insert a posting
	// (modifying pages); the cold run uses a higher effective write load
	// because it also replays recent-mail insertion.
	UpdateFrac float64

	// Phase selects create/cold/warm.
	Phase GoldPhase

	// Seed makes runs reproducible.
	Seed int64
}

// Name implements Workload.
func (g *Gold) Name() string { return "gold_" + g.Phase.String() }

// Index layout constants. A posting is 8 bytes: the message ID plus a
// 4-byte relevance weight. The weight carries most of the entropy, which is
// what puts gold's pages at the paper's "slightly worse than 2:1"
// compression: the IDs are structured, the weights are not.
const (
	goldBuckets     = 1 << 14
	dictEntryBytes  = 8 + 8 + 8 + 8 + 24 // link, head, tail, count, word[24]
	postingCapacity = 28
	postingEntry    = 8
	postingBytes    = 8 + 8 + postingEntry*postingCapacity // next, count, postings
)

// postingWeight derives the pseudo-random relevance weight stored with each
// posting (deterministic, high entropy).
func postingWeight(entry int64, docID uint32) uint32 {
	x := uint64(entry)*0x9E3779B97F4A7C15 ^ uint64(docID)*0xC2B2AE3D27D4EB4F
	return uint32(x>>32) ^ uint32(x)
}

// goldIndex is the in-simulated-memory index.
type goldIndex struct {
	space   *machine.Space
	arena   *simalloc.Arena
	buckets int64 // offset of the bucket array
}

func (g *Gold) hash(w string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(w); i++ {
		h ^= uint64(w[i])
		h *= 1099511628211
	}
	return h
}

// lookup finds the dictionary entry for w, returning its offset or 0.
func (ix *goldIndex) lookup(g *Gold, w string) int64 {
	b := int64(g.hash(w) % goldBuckets)
	off := int64(ix.space.ReadWord(ix.buckets + b*8))
	var wordBuf [24]byte
	for off != 0 {
		ix.space.Read(off+32, wordBuf[:])
		if entryWordEquals(wordBuf, w) {
			return off
		}
		off = int64(ix.space.ReadWord(off)) // hash chain link
	}
	return 0
}

func entryWordEquals(buf [24]byte, w string) bool {
	if len(w) > 23 {
		w = w[:23]
	}
	if int(buf[0]) != len(w) {
		return false
	}
	for i := 0; i < len(w); i++ {
		if buf[1+i] != w[i] {
			return false
		}
	}
	return true
}

// insertWord finds or creates the dictionary entry for w.
func (ix *goldIndex) insertWord(g *Gold, w string) int64 {
	if off := ix.lookup(g, w); off != 0 {
		return off
	}
	b := int64(g.hash(w) % goldBuckets)
	head := ix.space.ReadWord(ix.buckets + b*8)
	off := ix.arena.Alloc(dictEntryBytes, 8)
	ix.space.WriteWord(off, head) // chain link
	ix.space.WriteWord(off+8, 0)  // postings head
	ix.space.WriteWord(off+16, 0) // postings tail
	ix.space.WriteWord(off+24, 0) // posting count
	var wordBuf [24]byte
	n := len(w)
	if n > 23 {
		n = 23
	}
	wordBuf[0] = byte(n)
	copy(wordBuf[1:], w[:n])
	ix.space.Write(off+32, wordBuf[:])
	ix.space.WriteWord(ix.buckets+b*8, uint64(off))
	return off
}

// addPosting appends docID to w's postings list.
func (ix *goldIndex) addPosting(g *Gold, w string, docID uint32) {
	entry := ix.insertWord(g, w)
	tail := int64(ix.space.ReadWord(entry + 16))
	if tail != 0 {
		count := ix.space.ReadWord(tail + 8)
		if count < postingCapacity {
			ix.writePosting(tail+16+int64(count)*postingEntry, entry, docID)
			ix.space.WriteWord(tail+8, count+1)
			ix.space.WriteWord(entry+24, ix.space.ReadWord(entry+24)+1)
			return
		}
	}
	// Allocate a new postings block.
	blk := ix.arena.Alloc(postingBytes, 8)
	ix.space.WriteWord(blk, 0)   // next
	ix.space.WriteWord(blk+8, 1) // count
	ix.writePosting(blk+16, entry, docID)
	if tail != 0 {
		ix.space.WriteWord(tail, uint64(blk))
	} else {
		ix.space.WriteWord(entry+8, uint64(blk))
	}
	ix.space.WriteWord(entry+16, uint64(blk))
	ix.space.WriteWord(entry+24, ix.space.ReadWord(entry+24)+1)
}

// writePosting stores one 8-byte posting (doc ID + relevance weight).
func (ix *goldIndex) writePosting(off, entry int64, docID uint32) {
	w := postingWeight(entry, docID)
	var buf [postingEntry]byte
	buf[0], buf[1], buf[2], buf[3] = byte(docID), byte(docID>>8), byte(docID>>16), byte(docID>>24)
	buf[4], buf[5], buf[6], buf[7] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	ix.space.Write(off, buf[:])
}

// queryScanLimit bounds how many postings one query reads: the engine
// returns the best matches, not the full list, like any ranked-retrieval
// system. The cap also keeps popular-word queries from dwarfing the rest of
// the benchmark.
const queryScanLimit = 1024

// query walks w's postings list (up to the scan limit), returning the number
// of postings touched.
func (ix *goldIndex) query(g *Gold, w string) int {
	entry := ix.lookup(g, w)
	if entry == 0 {
		return 0
	}
	touched := 0
	blk := int64(ix.space.ReadWord(entry + 8))
	var buf [postingEntry]byte
	for blk != 0 && touched < queryScanLimit {
		count := int(ix.space.ReadWord(blk + 8))
		for i := 0; i < count && touched < queryScanLimit; i++ {
			ix.space.Read(blk+16+int64(i)*postingEntry, buf[:])
			touched++
		}
		blk = int64(ix.space.ReadWord(blk))
	}
	return touched
}

// Run implements Workload.
func (g *Gold) Run(m *machine.Machine) error {
	if g.Messages <= 0 {
		return fmt.Errorf("gold: Messages must be positive")
	}
	if g.WordsPerMessage == 0 {
		g.WordsPerMessage = 48
	}
	if g.VocabWords == 0 {
		g.VocabWords = 12000
	}
	if g.Queries == 0 {
		g.Queries = g.Messages / 2
	}
	if g.UpdateFrac == 0 {
		g.UpdateFrac = 0.02
	}

	words := vocabulary(g.VocabWords, g.Seed+1)
	rng := rand.New(rand.NewSource(g.Seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(g.VocabWords-1))

	// Size the heap: postings dominate. Updates during the query phases
	// allocate more blocks, hence the slack factor.
	postings := int64(g.Messages)*int64(g.WordsPerMessage) + int64(g.Queries)
	heapBytes := int64(goldBuckets)*8 +
		int64(g.VocabWords)*dictEntryBytes*2 +
		(postings/postingCapacity+int64(g.VocabWords)+16)*postingBytes*2 +
		int64(m.Config().PageSize)*8
	space := m.NewSegment("gold", heapBytes)
	arena := simalloc.New(space)
	ix := &goldIndex{space: space, arena: arena}
	ix.buckets = arena.AllocPageAligned(goldBuckets * 8)

	build := func() {
		for msg := 0; msg < g.Messages; msg++ {
			for i := 0; i < g.WordsPerMessage; i++ {
				ix.addPosting(g, words[zipf.Uint64()], uint32(msg))
			}
		}
	}
	runQueries := func(n int, updateFrac float64, seed int64) {
		qrng := rand.New(rand.NewSource(seed))
		qzipf := rand.NewZipf(qrng, 1.1, 1, uint64(g.VocabWords-1))
		nextDoc := uint32(g.Messages)
		for q := 0; q < n; q++ {
			w := words[qzipf.Uint64()]
			ix.query(g, w)
			if qrng.Float64() < updateFrac {
				ix.addPosting(g, w, nextDoc)
				nextDoc++
			}
		}
	}

	switch g.Phase {
	case GoldCreate:
		m.MarkStart()
		build()
	case GoldCold:
		build()
		m.EvictAll() // the engine "having just started": nothing resident
		m.MarkStart()
		// The cold run both answers queries and absorbs new mail, so it
		// "writes many pages as well as reading them".
		runQueries(g.Queries, 0.3, g.Seed+7)
	case GoldWarm:
		build()
		m.EvictAll()
		runQueries(g.Queries, 0.3, g.Seed+7) // untimed cold pass
		m.MarkStart()
		runQueries(g.Queries, g.UpdateFrac, g.Seed+8)
	default:
		return fmt.Errorf("gold: unknown phase %d", g.Phase)
	}
	m.Drain()
	return nil
}
