// Package vm implements the simulated virtual-memory system: segments, page
// tables, an exact-LRU resident list, and the page-fault path.
//
// The VM system is deliberately policy-free about where page contents go
// when they leave memory: it delegates to a Pager, which the machine package
// implements by combining the compression cache and the backing store. This
// mirrors the paper's structure, where the compression cache is "a new level
// in the memory management hierarchy" slotted between uncompressed pages and
// the backing store (§4.1), and keeps this package reusable for the
// unmodified baseline system (a Pager that goes straight to swap).
//
// Sprite used true LRU approximations; the simulator uses exact LRU, updated
// on every simulated reference, which is affordable in a simulator and
// matches the paper's analysis ("The system uses an LRU algorithm for page
// replacement", §5.1).
package vm

import (
	"fmt"
	"time"

	"compcache/internal/mem"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
	"compcache/internal/swap"
)

// PageState is where a page's current contents live.
type PageState int8

// Page states.
const (
	// Untouched pages have never been written; they read as zeros and cost
	// no I/O to reconstruct.
	Untouched PageState = iota
	// Resident pages occupy a physical frame, uncompressed.
	Resident
	// Compressed pages live in the compression cache.
	Compressed
	// Swapped pages' current contents are only on the backing store.
	Swapped
)

// String returns the state name.
func (s PageState) String() string {
	switch s {
	case Untouched:
		return "untouched"
	case Resident:
		return "resident"
	case Compressed:
		return "compressed"
	case Swapped:
		return "swapped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Page is one virtual page's bookkeeping. The Pager may read and write the
// exported fields; the VM owns State, Frame and the LRU links.
type Page struct {
	Key   swap.PageKey
	State PageState
	Frame mem.FrameID

	// Dirty reports that the resident copy has been modified since it was
	// last made durable; a dirty page cannot be discarded without either
	// compressing it into the cache or writing it to the backing store.
	Dirty bool

	// SwapValid reports that the backing store holds the page's current
	// contents (so a clean eviction needs no write).
	SwapValid bool

	// EverWritten distinguishes pages that have only ever been read (their
	// contents are still all zeros and can be recreated for free).
	EverWritten bool

	// Pinned pages are exempt from LRU eviction — the §3 "advisory to the
	// operating system" that LRU replacement will behave poorly. A pinned
	// page must be resident.
	Pinned bool

	// LastUse is the virtual time of the page's most recent reference.
	LastUse sim.Time

	prev, next *Page
}

// Source says where a fault's contents came from; the Pager returns it so
// the VM can attribute the fault in its statistics.
type Source int8

// Fault sources.
const (
	SrcZero   Source = iota // zero-filled cold fault
	SrcCC                   // decompressed from the compression cache
	SrcSwap                 // read from the backing store
	SrcRemote               // fetched from remote fleet memory (cluster runs)
)

// Pager moves page contents between memory and the lower levels of the
// hierarchy. The machine package implements it.
type Pager interface {
	// PageOut disposes of the contents of a page leaving Resident state.
	// data is a scratch copy of the page (the frame itself has already been
	// released so the pager can reuse it, e.g. to grow the compression
	// cache). PageOut must set p.State to Compressed, Swapped or Untouched
	// and maintain p.Dirty/p.SwapValid. On error the page's contents are
	// lost (a device failure with no remaining copy).
	PageOut(p *Page, data []byte) error

	// PageIn produces the page's current contents into data (the new
	// frame's bytes) and reports where they came from. It must update
	// p.Dirty/p.SwapValid; the VM sets p.State to Resident afterwards. On
	// error data is not valid and the page stays in its prior state.
	PageIn(p *Page, data []byte) (Source, error)

	// Dirtied is called when a clean resident page is first modified, so
	// stale copies at lower levels can be invalidated.
	Dirtied(p *Page)
}

// Segment is a contiguous range of virtual pages (the unit that has a swap
// file in Sprite).
type Segment struct {
	ID     int32
	Name   string
	NPages int32
	pages  []Page
}

// Page returns the page descriptor for page n.
func (s *Segment) Page(n int32) *Page {
	if n < 0 || n >= s.NPages {
		// Invariant: a reference outside the segment is the simulated
		// equivalent of a wild pointer — a workload bug, not a runtime fault.
		panic(fmt.Sprintf("vm: page %d out of range [0,%d) in segment %q", n, s.NPages, s.Name))
	}
	return &s.pages[n]
}

// Size reports the segment size in bytes, given the page size p.
func (s *Segment) Size(pageSize int) int64 { return int64(s.NPages) * int64(pageSize) }

// VM is the virtual-memory system.
type VM struct {
	clock *sim.Clock    //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	pool  *mem.Pool     //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	cost  sim.CostModel //cclint:ignore snapcover -- config: fixed at construction; the restore target is built with the same model
	pager Pager         //cclint:ignore snapcover -- wiring: installed with SetPager after construction

	// frameSource obtains a frame for a faulting page, reclaiming one
	// through the replacement policy when the pool is empty.
	frameSource func(mem.Owner) (mem.FrameID, error)

	segs    []*Segment
	nextSeg int32

	lruHead *Page // least recently used resident page
	//cclint:ignore snapcover -- derived: tail of the LRU list, re-linked as restore replays insertions
	lruTail  *Page // most recently used
	resident int

	//cclint:ignore snapcover -- scratch: eviction copy buffer, dead between operations
	scratch []byte // eviction copy buffer

	// traceHook, when set, observes every simulated reference (segment,
	// page, write); the trace package's Recorder plugs in here.
	traceHook func(seg, page int32, write bool)

	bus *obs.Bus //cclint:ignore snapcover -- wiring: observability bus attached separately
	//cclint:ignore snapcover -- observability: per-run histogram, not replay state
	faultHist *obs.Histogram // vm.fault_service — full fault service time

	st stats.VM
}

// New creates a VM system. The pager and frame source must be installed with
// SetPager/SetFrameSource before the first fault.
func New(clock *sim.Clock, pool *mem.Pool, cost sim.CostModel) *VM {
	v := &VM{
		clock:   clock,
		pool:    pool,
		cost:    cost,
		scratch: make([]byte, pool.PageSize()),
	}
	v.frameSource = func(o mem.Owner) (mem.FrameID, error) {
		id, ok := pool.Alloc(o)
		if !ok {
			return 0, fmt.Errorf("vm: no frame source wired and pool exhausted")
		}
		return id, nil
	}
	return v
}

// SetPager installs the pager.
func (v *VM) SetPager(p Pager) { v.pager = p }

// SetFrameSource installs the policy-backed frame allocator.
func (v *VM) SetFrameSource(f func(mem.Owner) (mem.FrameID, error)) { v.frameSource = f }

// SetTraceHook installs an observer called on every simulated reference;
// nil disables tracing.
func (v *VM) SetTraceHook(f func(seg, page int32, write bool)) { v.traceHook = f }

// SetObserver wires the VM to a machine's event bus; nil disables emission.
// Probe handles are cached here so the fault path never touches registry maps.
func (v *VM) SetObserver(b *obs.Bus) {
	v.bus = b
	v.faultHist = b.Histogram("vm.fault_service")
}

// Stats returns a snapshot of the VM counters.
func (v *VM) Stats() stats.VM { return v.st }

// ResidentPages reports the number of uncompressed resident pages.
func (v *VM) ResidentPages() int { return v.resident }

// PageSize reports the page size in bytes.
func (v *VM) PageSize() int { return v.pool.PageSize() }

// Segments returns the live segments.
func (v *VM) Segments() []*Segment { return v.segs }

// NewSegment creates a segment of npages pages.
func (v *VM) NewSegment(name string, npages int32) *Segment {
	if npages <= 0 {
		// Invariant: setup-time configuration error, not a runtime fault.
		panic(fmt.Sprintf("vm: segment %q must have at least one page", name))
	}
	s := &Segment{ID: v.nextSeg, Name: name, NPages: npages, pages: make([]Page, npages)}
	v.nextSeg++
	for i := range s.pages {
		s.pages[i].Key = swap.PageKey{Seg: s.ID, Page: int32(i)}
		s.pages[i].Frame = mem.NoFrame
	}
	v.segs = append(v.segs, s)
	return s
}

// Touch simulates one memory reference to page n of segment s, faulting it
// in if necessary, and returns the page (resident on return). Every call
// costs one memory-reference time plus whatever the fault path costs. On
// error the page is not resident and the reference did not complete — the
// simulated process took an unrecoverable machine check.
func (v *VM) Touch(s *Segment, n int32, write bool) (*Page, error) {
	v.st.Refs++
	v.clock.Advance(v.cost.MemRef)
	if v.traceHook != nil {
		v.traceHook(s.ID, n, write)
	}
	p := s.Page(n)
	if p.State == Resident {
		v.lruTouch(p)
		if write {
			v.markWritten(p)
		}
		return p, nil
	}
	if err := v.fault(p); err != nil {
		return nil, err
	}
	if write {
		v.markWritten(p)
	}
	return p, nil
}

func (v *VM) markWritten(p *Page) {
	p.EverWritten = true
	if !p.Dirty {
		p.Dirty = true
		if p.SwapValid {
			p.SwapValid = false
		}
		v.pager.Dirtied(p)
	}
}

// fault brings a non-resident page into memory. On error the allocated
// frame is returned to the pool and the page keeps its prior state.
func (v *VM) fault(p *Page) error {
	if p.State == Resident {
		// Invariant: Touch only calls fault for non-resident pages.
		panic("vm: fault on resident page")
	}
	v.st.Faults++
	t0 := v.clock.Now()
	v.clock.Advance(v.cost.FaultOverhead)

	frame, err := v.frameSource(mem.VM)
	if err != nil {
		return err
	}
	data := v.pool.Bytes(frame)

	source := obs.FaultSrcZero
	switch p.State {
	case Untouched:
		v.st.ColdFaults++
		clear(data)
		p.Dirty = false
		p.SwapValid = false
	default:
		src, err := v.pager.PageIn(p, data)
		if err != nil {
			v.pool.Release(frame)
			return err
		}
		switch src {
		case SrcCC:
			v.st.CacheHits++
			source = obs.FaultSrcCC
		case SrcSwap:
			v.st.SwapIns++
			source = obs.FaultSrcSwap
		case SrcRemote:
			v.st.RemoteIns++
			source = obs.FaultSrcRemote
		case SrcZero:
			v.st.ColdFaults++
		}
	}
	p.Frame = frame
	p.State = Resident
	v.lruAppend(p)
	svc := time.Duration(v.clock.Now() - t0)
	v.faultHist.Observe(svc)
	if v.bus.Enabled(obs.ClassFault) {
		v.bus.Emit(obs.Event{
			T: v.clock.Now(), Class: obs.ClassFault, Sub: obs.SubVM,
			Seg: p.Key.Seg, Page: p.Key.Page, Dur: svc, Aux: source,
		})
	}
	return nil
}

// Name identifies the VM system in the replacement policy ("vm").
func (v *VM) Name() string { return "vm" }

// OldestAge reports the last-use time of the LRU resident page; ok is false
// when nothing is resident. This makes the VM a consumer in the three-way
// memory trade.
func (v *VM) OldestAge() (sim.Time, bool) {
	if v.lruHead == nil {
		return 0, false
	}
	return v.lruHead.LastUse, true
}

// ReleaseOldest evicts the least-recently-used unpinned resident page,
// handing its contents to the pager, and frees its frame. It reports false
// when nothing evictable is resident.
func (v *VM) ReleaseOldest() (bool, error) {
	p := v.lruHead
	for p != nil && p.Pinned {
		v.st.PinnedSkips++
		p = p.next
	}
	if p == nil {
		return false, nil
	}
	return true, v.Evict(p)
}

// Pin makes the page exempt from eviction, faulting it in first if needed
// (the §3 advisory interface). It returns the page.
func (v *VM) Pin(s *Segment, n int32) (*Page, error) {
	p, err := v.Touch(s, n, false)
	if err != nil {
		return nil, err
	}
	p.Pinned = true
	return p, nil
}

// Unpin makes the page evictable again.
func (v *VM) Unpin(s *Segment, n int32) {
	s.Page(n).Pinned = false
}

// Evict forces a specific resident page out of memory (exported for tests
// and for workload madvise-style hints).
func (v *VM) Evict(p *Page) error {
	if p.State != Resident {
		// Invariant: callers (ReleaseOldest, tests) select from the resident
		// LRU list; evicting a non-resident page is a programming error.
		panic(fmt.Sprintf("vm: Evict of non-resident page %v (%v)", p.Key, p.State))
	}
	if p.Pinned {
		// Invariant: ReleaseOldest skips pinned pages; direct callers must
		// check Pinned themselves.
		panic(fmt.Sprintf("vm: Evict of pinned page %v", p.Key))
	}
	v.st.Evictions++
	if p.Dirty {
		v.st.WriteBacks++
	}
	if v.bus.Enabled(obs.ClassEvict) {
		aux := int64(0)
		if p.Dirty {
			aux = 1
		}
		v.bus.Emit(obs.Event{
			T: v.clock.Now(), Class: obs.ClassEvict, Sub: obs.SubVM,
			Seg: p.Key.Seg, Page: p.Key.Page, Aux: aux,
		})
	}
	v.lruRemove(p)
	v.resident--

	// Copy the contents to scratch and release the frame first, so the
	// pager can reuse it (for instance to grow the compression cache by one
	// frame while absorbing this very page). The copy is a simulation
	// convenience and is not charged: the kernel compresses straight out of
	// the page frame.
	copy(v.scratch, v.pool.Bytes(p.Frame))
	v.pool.Release(p.Frame)
	p.Frame = mem.NoFrame

	if !p.Dirty && !p.EverWritten && !p.SwapValid {
		// Never-written page: contents are all zeros; recreate on demand.
		p.State = Untouched
		return nil
	}
	return v.pager.PageOut(p, v.scratch)
}

// lru plumbing ---------------------------------------------------------------

func (v *VM) lruAppend(p *Page) {
	p.LastUse = v.clock.Now()
	p.prev = v.lruTail
	p.next = nil
	if v.lruTail != nil {
		v.lruTail.next = p
	} else {
		v.lruHead = p
	}
	v.lruTail = p
	v.resident++
}

func (v *VM) lruRemove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		v.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		v.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (v *VM) lruTouch(p *Page) {
	v.lruRemove(p)
	v.resident--
	v.lruAppend(p)
}

// CheckLRU verifies the resident list's internal consistency (length,
// linkage, monotone LastUse order); tests call it after stressing the VM.
func (v *VM) CheckLRU() error {
	count := 0
	var last sim.Time
	for p := v.lruHead; p != nil; p = p.next {
		if p.State != Resident {
			return fmt.Errorf("vm: non-resident page %v on LRU list", p.Key)
		}
		if p.LastUse < last {
			return fmt.Errorf("vm: LRU list out of order at %v", p.Key)
		}
		last = p.LastUse
		count++
		if count > v.resident {
			break
		}
	}
	if count != v.resident {
		return fmt.Errorf("vm: LRU list has %d pages, resident counter says %d", count, v.resident)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Byte-level access: workloads store real data in simulated pages.

// Read copies len(buf) bytes at byte offset off in segment s into buf,
// touching (and faulting) each covered page.
func (v *VM) Read(s *Segment, off int64, buf []byte) error {
	return v.access(s, off, buf, false)
}

// Write copies data into segment s at byte offset off, touching (and
// faulting) each covered page and marking it dirty.
func (v *VM) Write(s *Segment, off int64, data []byte) error {
	return v.access(s, off, data, true)
}

func (v *VM) access(s *Segment, off int64, buf []byte, write bool) error {
	if off < 0 {
		// Invariant: the simulated equivalent of a wild pointer (see Page).
		panic("vm: negative offset")
	}
	ps := int64(v.pool.PageSize())
	for len(buf) > 0 {
		page := int32(off / ps)
		in := int(off % ps)
		n := int(ps) - in
		if n > len(buf) {
			n = len(buf)
		}
		p, err := v.Touch(s, page, write)
		if err != nil {
			return err
		}
		frame := v.pool.Bytes(p.Frame)
		if write {
			copy(frame[in:in+n], buf[:n])
		} else {
			copy(buf[:n], frame[in:in+n])
		}
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// ReadWord reads the 8-byte little-endian word at byte offset off.
func (v *VM) ReadWord(s *Segment, off int64) (uint64, error) {
	page, in := v.wordAddr(off)
	p, err := v.Touch(s, page, false)
	if err != nil {
		return 0, err
	}
	b := v.pool.Bytes(p.Frame)[in:]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// WriteWord writes the 8-byte little-endian word at byte offset off.
func (v *VM) WriteWord(s *Segment, off int64, val uint64) error {
	page, in := v.wordAddr(off)
	p, err := v.Touch(s, page, true)
	if err != nil {
		return err
	}
	b := v.pool.Bytes(p.Frame)[in:]
	b[0], b[1], b[2], b[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
	b[4], b[5], b[6], b[7] = byte(val>>32), byte(val>>40), byte(val>>48), byte(val>>56)
	return nil
}

func (v *VM) wordAddr(off int64) (page int32, in int) {
	if off < 0 {
		// Invariant: the simulated equivalent of a wild pointer (see Page).
		panic("vm: negative offset")
	}
	ps := int64(v.pool.PageSize())
	in = int(off % ps)
	if in+8 > int(ps) {
		// Invariant: word accessors are documented page-aligned; a straddle
		// is a workload bug.
		panic(fmt.Sprintf("vm: word access at %d straddles a page boundary", off))
	}
	return int32(off / ps), in
}
