package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point accumulation whose evaluation order the
// language does not fix. Float addition is not associative: summing the
// same numbers in a different order can change the last bits of the
// result, and the stats/exp layers aggregate exactly such sums (mean
// access times, compression ratios, overhead factors) into artifacts that
// are diffed byte-for-byte between runs. Two orderings are unfixed in Go:
//
//   - iteration over a map — the order is randomized per run, so
//     `for _, v := range m { sum += v }` with a float sum is a
//     nondeterministic reduction even single-threaded;
//   - goroutine interleaving — a float accumulator captured by a `go`
//     closure is reduced in scheduler order.
//
// Integer accumulation in either position is commutative and stays
// silent. The fix is the same one maprange teaches: materialize the keys,
// sort, then reduce — or index-slot per-goroutine partial sums and reduce
// them in index order after the join.
type FloatOrder struct{}

// Name implements Analyzer.
func (FloatOrder) Name() string { return "floatorder" }

// Doc implements Analyzer.
func (FloatOrder) Doc() string {
	return "flag float accumulation over map iteration or across goroutines; float sums are order-sensitive"
}

// Severity implements Analyzer.
func (FloatOrder) Severity() Severity { return SevWarn }

// Check implements Analyzer.
func (fo FloatOrder) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil {
		return nil
	}
	info := pkg.Mod.Info
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := deref(t).Underlying().(*types.Map); !ok {
					return true
				}
				out = append(out, fo.checkBody(pkg, info, n.Body, n.Body.Pos(), n.Body.End(),
					"inside map iteration; map order is random per run — sort the keys first")...)
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					out = append(out, fo.checkBody(pkg, info, lit.Body, lit.Pos(), lit.End(),
						"across goroutines; scheduler order decides the sum — index-slot partial sums and reduce after the join")...)
				}
			}
			return true
		})
	}
	return out
}

// checkBody flags float accumulations into variables declared outside
// [from, to) — accumulators local to the body reset every iteration and
// cannot carry order dependence out.
func (fo FloatOrder) checkBody(pkg *Package, info *types.Info, body *ast.BlockStmt, from, to token.Pos, why string) []Diagnostic {
	outside := func(id *ast.Ident) (types.Object, bool) {
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || (v.Pos() >= from && v.Pos() < to) {
			return nil, false
		}
		return obj, true
	}
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := ast.Unparen(as.Lhs[0])
		id, ok := lhs.(*ast.Ident)
		if !ok {
			// Accumulation through a selector (st.sum += v) is just as
			// order-sensitive; use the root identifier for capture.
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id = rootCapturedIdent(sel.X)
			if id == nil {
				return true
			}
			lhs = sel
		}
		if !isFloat(info.TypeOf(lhs)) {
			return true
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			// x = x + v (or x - v, x * v, x / v) spelled out.
			if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					accum = exprMentions(info, bin, info.Uses[id])
				}
			}
		}
		if !accum {
			return true
		}
		if _, ok := outside(id); !ok {
			return true
		}
		out = append(out, diag(pkg, fo.Name(), as,
			"float accumulation %s", why))
		return true
	})
	return out
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprMentions reports whether expr references obj.
func exprMentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
