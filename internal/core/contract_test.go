package core

import (
	"testing"

	"compcache/internal/swap"
)

// Regression tests for the Insert contract: a failed Insert must have no
// observable side effects — no entries dropped, no hooks fired, no dirty
// batches flushed, no counters changed. Before the fix, an insert that
// reached the MaxFrames recycling path could reclaim frames (dropping live
// clean entries and firing onDrop) and flush dirty batches before a later
// pool.Alloc failure made it return false.

// fullFrameData is an entry payload whose footprint (data + 36-byte entry
// header) exactly fills one frame's usable space (4096 - 24-byte frame
// header).
const fullFrameData = 4096 - 24 - 36

func TestFailedInsertAtCapHasNoSideEffects(t *testing.T) {
	params := DefaultParams()
	params.MaxFrames = 2
	c, pool, _ := newTestCache(t, 2, params)
	drops := 0
	c.SetHooks(nil, func(swap.PageKey) { drops++ })

	// Frame 0: one clean (reclaimable) entry. Frame 1: one dirty entry that
	// cannot be cleaned (no flush hook). Pool is now empty.
	if !insert(t, c, key(0), blob(1, fullFrameData), false) {
		t.Fatal("setup insert 0 failed")
	}
	if !insert(t, c, key(1), blob(2, fullFrameData), true) {
		t.Fatal("setup insert 1 failed")
	}
	if pool.FreeCount() != 0 {
		t.Fatalf("pool free = %d, want 0", pool.FreeCount())
	}

	before := c.Stats()
	// Needs two frames; only one is reclaimable, so the insert must fail.
	// The buggy path reclaimed frame 0 (dropping the live clean entry and
	// firing onDrop) before discovering the shortfall.
	if insert(t, c, key(2), blob(3, 4090), true) {
		t.Fatal("insert succeeded with an unrecyclable ring")
	}

	if drops != 0 {
		t.Fatalf("failed insert fired onDrop %d times", drops)
	}
	if !c.Has(key(0)) || !c.Has(key(1)) {
		t.Fatal("failed insert discarded a live entry")
	}
	if c.Has(key(2)) {
		t.Fatal("failed insert left its own entry")
	}
	if after := c.Stats(); after != before {
		t.Fatalf("failed insert changed counters: %+v -> %+v", before, after)
	}
	if c.FrameCount() != 2 || pool.FreeCount() != 0 {
		t.Fatalf("failed insert moved frames: cache %d, pool free %d", c.FrameCount(), pool.FreeCount())
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestFailedInsertDoesNotFlush(t *testing.T) {
	params := DefaultParams()
	params.MaxFrames = 2
	c, pool, _ := newTestCache(t, 2, params)
	flushes, drops := 0, 0
	c.SetHooks(func(items []swap.Item) error { flushes++; return nil }, func(swap.PageKey) { drops++ })

	// Frame 0: full and dirty. Frame 1 (tail): a clean entry leaving 36
	// spare bytes. Pool empty.
	if !insert(t, c, key(0), blob(1, fullFrameData), true) {
		t.Fatal("setup insert 0 failed")
	}
	if !insert(t, c, key(1), blob(2, fullFrameData-36), false) {
		t.Fatal("setup insert 1 failed")
	}
	if pool.FreeCount() != 0 {
		t.Fatalf("pool free = %d, want 0", pool.FreeCount())
	}

	before := c.Stats()
	// need = 4126 with 36 bytes of tail slack: two fresh frames, but only
	// frame 0 may be recycled (the tail frame is about to receive this very
	// entry) and one recycle is not enough — even though cleaning could
	// eventually make both reclaimable. The insert must fail before
	// flushing anything.
	if insert(t, c, key(2), blob(3, 4090), true) {
		t.Fatal("insert succeeded needing more recycles than non-tail frames")
	}
	if flushes != 0 {
		t.Fatalf("failed insert flushed %d batches", flushes)
	}
	if drops != 0 {
		t.Fatalf("failed insert fired onDrop %d times", drops)
	}
	if !c.Has(key(0)) || !c.Has(key(1)) {
		t.Fatal("failed insert discarded a live entry")
	}
	if after := c.Stats(); after != before {
		t.Fatalf("failed insert changed counters: %+v -> %+v", before, after)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCapRecyclingNeverRecyclesTheTailFrame(t *testing.T) {
	// The tail frame a pending insert appends into must never be recycled
	// out from under it, even when it is the only reclaimable frame.
	params := DefaultParams()
	params.MaxFrames = 2
	c, pool, _ := newTestCache(t, 2, params)

	// Frame 0: full and dirty (not reclaimable, no flush hook). Frame 1
	// (tail): clean entry with room to spare — reclaimable, but protected.
	if !insert(t, c, key(0), blob(1, fullFrameData), true) {
		t.Fatal("setup insert 0 failed")
	}
	if !insert(t, c, key(1), blob(2, 1000), false) {
		t.Fatal("setup insert 1 failed")
	}
	before := c.Stats()
	// Needs the tail slack plus one fresh frame; recycling may not touch
	// the tail, frame 0 is dirty, so this must fail cleanly. (The buggy
	// path reclaimed the tail frame and then appended into whatever frame
	// came last, corrupting the space accounting.)
	if insert(t, c, key(2), blob(3, 4000), true) {
		t.Fatal("insert succeeded by recycling its own tail frame")
	}
	if !c.Has(key(1)) {
		t.Fatal("tail frame's entry was dropped by a failed insert")
	}
	if after := c.Stats(); after != before {
		t.Fatalf("failed insert changed counters: %+v -> %+v", before, after)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanSkipsDeadPrefix(t *testing.T) {
	// After mass drops, cleaning must not re-walk the dead prefix of the
	// insertion order on every pass: Clean advances (and compacts) the head
	// first, so the scan is O(live), not O(history).
	c, _, _ := newTestCache(t, 64, DefaultParams())
	c.SetHooks(noFlush, nil)

	const total, dropped = 1500, 1400
	for i := int32(0); i < total; i++ {
		if !insert(t, c, key(i), blob(int64(i), 64), true) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := int32(0); i < dropped; i++ {
		c.Drop(key(i))
	}
	if clean(t, c) == 0 {
		t.Fatal("nothing cleaned with dirty entries outstanding")
	}
	// The dead prefix is long enough to trigger compaction: the order deque
	// must have shed it rather than leaving 1400 dead entries to re-walk.
	if live := len(c.order) - c.head; live > total-dropped {
		t.Fatalf("order deque still holds %d entries past the head, want <= %d", live, total-dropped)
	}
	if len(c.order) >= total {
		t.Fatalf("order deque not compacted: len %d", len(c.order))
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
