// Package snap is a minimal stand-in for the snapshot codec, matched by
// snapcover's internal/snap suffix rule.
package snap

// Writer encodes snapshot fields.
type Writer struct{ buf []byte }

// I64 writes one integer field.
func (w *Writer) I64(v int64) {
	for i := 0; i < 8; i++ {
		w.buf = append(w.buf, byte(v>>(8*i)))
	}
}

// String writes one string field.
func (w *Writer) String(s string) {
	w.I64(int64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes snapshot fields.
type Reader struct {
	data []byte
	off  int
}

// I64 reads one integer field.
func (r *Reader) I64() int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(r.data[r.off]) << (8 * i)
		r.off++
	}
	return v
}

// String reads one string field.
func (r *Reader) String() string {
	n := int(r.I64())
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}
