package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// MapRange flags `range` over a map whose body produces ordered output:
// appending to a slice, writing through fmt, or building a string. Go
// randomizes map iteration order per iteration, so any ordered artifact
// built this way differs from run to run — the exact shape that would
// break the byte-identical-at-any-j guarantee.
//
// The canonical deterministic patterns stay silent:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }   // ok: keys sorted below
//	sort.Strings(keys)
//
// and order-independent work (counting, summing, writing into another
// map, deleting entries) is never flagged.
//
// Without go/types the map-ness of the ranged expression is inferred
// syntactically: map literals and make(map[...]) directly in the range
// clause, local variables assigned from either, parameters and variables
// declared with a map type, and selector expressions whose field is
// declared as a map anywhere in the package.
type MapRange struct{}

// Name implements Analyzer.
func (MapRange) Name() string { return "maprange" }

// Doc implements Analyzer.
func (MapRange) Doc() string {
	return "flag map iteration that feeds ordered output (append/print/string build) without sorting"
}

// Severity implements Analyzer.
func (MapRange) Severity() Severity { return SevError }

// Check implements Analyzer.
func (m MapRange) Check(pkg *Package) []Diagnostic {
	mapFields := collectMapFields(pkg)
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mapVars := collectMapVars(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapExpr(rs.X, mapVars, mapFields) {
					return true
				}
				out = append(out, m.checkLoop(pkg, fd, rs)...)
				return true
			})
		}
	}
	return out
}

// checkLoop inspects one map-range body for order-dependent output.
func (m MapRange) checkLoop(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) — ordered unless x is sorted afterwards.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i < len(n.Lhs) {
					if dst := rootIdent(n.Lhs[i]); dst != nil && sortedLater(fd, dst.Name) {
						continue
					}
				}
				out = append(out, diag(pkg, m.Name(), call,
					"append inside map iteration captures random map order; collect and sort keys first"))
			}
			// s += expr inside a map range builds a string (or other
			// ordered accumulation over a non-commutative op).
			if n.Tok == token.ADD_ASSIGN && likelyStringConcat(n) {
				out = append(out, diag(pkg, m.Name(), n,
					"string built inside map iteration varies run to run; sort the keys first"))
			}
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(n); ok {
				out = append(out, diag(pkg, m.Name(), n,
					"%s inside map iteration emits output in random map order; sort the keys first", name))
			}
		}
		return true
	})
	return out
}

// orderedOutputCall recognizes calls that emit ordered output: the fmt
// printers, io.WriteString, writer/encoder methods (Write, WriteString,
// Encode, ...) and the obs exporters (WriteEventsJSONL, WriteTimeline, ...
// all match the Write prefix rule below).
func orderedOutputCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		switch id.Name {
		case "fmt":
			switch sel.Sel.Name {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
				return "fmt." + sel.Sel.Name, true
			}
		case "io":
			if sel.Sel.Name == "WriteString" {
				return "io.WriteString", true
			}
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
		"Encode", "WriteAll":
		return sel.Sel.Name, true
	}
	return "", false
}

// likelyStringConcat reports whether an ADD_ASSIGN looks like string
// building rather than numeric accumulation (numeric += is commutative
// and therefore order-independent).
func likelyStringConcat(n *ast.AssignStmt) bool {
	if len(n.Rhs) != 1 {
		return false
	}
	found := false
	ast.Inspect(n.Rhs[0], func(e ast.Node) bool {
		if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			found = true
		}
		if call, ok := e.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && strings.HasPrefix(sel.Sel.Name, "Sprint") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// sortedLater reports whether the function body contains a sort call over
// the named slice — sort.X(name, ...), slices.Sort*(name, ...), or a
// package-local helper whose name starts with "sort" (sortPageKeys(name)) —
// anywhere, which is the collect-then-sort idiom.
func sortedLater(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
				return true
			}
		case *ast.Ident:
			if !strings.HasPrefix(fun.Name, "sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && id.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.y, x[i], *x, &x ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isMapType reports whether a type expression is (syntactically) a map.
func isMapType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return isMapType(t.X)
	default:
		return false
	}
}

// collectMapFields gathers the names of struct fields (and package-level
// vars) declared with map types anywhere in the package. Matching later
// is by field name only — without type information that is the sound
// over-approximation for a determinism lint.
func collectMapFields(pkg *Package) map[string]bool {
	fields := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					if !isMapType(fld.Type) {
						continue
					}
					for _, name := range fld.Names {
						fields[name.Name] = true
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil && isMapType(vs.Type) {
						for _, name := range vs.Names {
							fields[name.Name] = true
						}
					}
					for i, v := range vs.Values {
						if i < len(vs.Names) && mapValueExpr(v) {
							fields[vs.Names[i].Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return fields
}

// collectMapVars gathers identifiers with map-typed declarations or
// assignments inside one function: parameters, var decls, := from
// make(map[...]) or a map literal.
func collectMapVars(fd *ast.FuncDecl) map[string]bool {
	vars := map[string]bool{}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if isMapType(p.Type) {
				for _, name := range p.Names {
					vars[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && mapValueExpr(rhs) {
					vars[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if vs.Type != nil && isMapType(vs.Type) {
					for _, name := range vs.Names {
						vars[name.Name] = true
					}
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) && mapValueExpr(v) {
						vars[vs.Names[i].Name] = true
					}
				}
			}
		}
		return true
	})
	return vars
}

// mapValueExpr reports whether an expression certainly evaluates to a
// map: a map composite literal or make(map[...], ...).
func mapValueExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return isMapType(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 1 {
			return isMapType(e.Args[0])
		}
	}
	return false
}

// isMapExpr decides whether a ranged expression is a map, using the
// gathered hints.
func isMapExpr(e ast.Expr, mapVars, mapFields map[string]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return mapVars[e.Name] || mapFields[e.Name]
	case *ast.SelectorExpr:
		return mapFields[e.Sel.Name]
	case *ast.ParenExpr:
		return isMapExpr(e.X, mapVars, mapFields)
	default:
		return mapValueExpr(e)
	}
}
