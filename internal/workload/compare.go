package workload

import (
	"fmt"
	"math/rand"

	"compcache/internal/machine"
	"compcache/internal/simalloc"
)

// Compare is the paper's best-case application: Lopresti's file differencer,
// which "computes the sequence of modifications to change one file into
// another" with the dynamic-programming algorithm of Lipton & Lopresti
// ("Comparing long strings on a short systolic array"). It uses "a
// two-dimensional array, of which only a wide stripe along the diagonal is
// accessed. It works its way through the array in one direction, and then
// reverses direction and goes linearly back to the beginning. Elements along
// the diagonal are based on a recurrence relation that causes frequent
// repetitions in values, which in turn suggests that the data in the array
// are extremely compressible."
//
// The recurrence property this implementation exploits is the classical one
// behind the systolic formulation: the diagonal difference of edit distance,
// h(i,j) = D(i,j) − D(i−1,j−1), is always 0 or 1. The big banded array
// therefore stores these bounded differences — long runs of zeros wherever
// the inputs match — which is what makes the array compress ~3:1 or better,
// reproducing the paper's measurement (31% ratio, 0.1% uncompressible).
// Absolute distances are carried in two small rolling rows.
type Compare struct {
	// N is the sequence length (rows of the DP band).
	N int

	// Band is the width of the diagonal stripe, in cells.
	Band int

	// MutationRate controls how different the two compared strings are.
	MutationRate float64

	// Seed makes runs reproducible.
	Seed int64

	// editDistance records the final distance for verification.
	editDistance uint32
}

// Name implements Workload.
func (c *Compare) Name() string { return "compare" }

// Run implements Workload.
func (c *Compare) Run(m *machine.Machine) error {
	if c.N <= 1 || c.Band <= 2 {
		return fmt.Errorf("compare: need N > 1 and Band > 2")
	}
	mut := c.MutationRate
	if mut == 0 {
		mut = 0.05
	}

	// Generate the two similar sequences (the files being diffed).
	rng := rand.New(rand.NewSource(c.Seed))
	a := make([]byte, c.N)
	for i := range a {
		a[i] = byte('a' + rng.Intn(26))
	}
	b := append([]byte(nil), a...)
	for i := range b {
		if rng.Float64() < mut {
			b[i] = byte('a' + rng.Intn(26))
		}
	}

	// Layout: the big banded difference array (one byte per cell), the two
	// rolling absolute rows (int32 cells), and the input sequences, all in
	// simulated memory.
	pageSize := int64(m.Config().PageSize)
	bandBytes := int64(c.N) * int64(c.Band)
	rowBytes := int64(c.Band) * 4
	space := m.NewSegment("compare", bandBytes+2*rowBytes+2*int64(c.N)+4*pageSize)
	arena := simalloc.New(space)
	hOff := arena.AllocPageAligned(bandBytes)
	rowOff := [2]int64{arena.AllocPageAligned(rowBytes), arena.AllocPageAligned(rowBytes)}
	aOff := arena.Alloc(int64(c.N), 1)
	bOff := arena.Alloc(int64(c.N), 1)
	space.Write(aOff, a)
	space.Write(bOff, b)

	readCell := func(row int64, j int) uint32 {
		var buf [4]byte
		space.Read(row+int64(j)*4, buf[:])
		return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	}
	writeCell := func(row int64, j int, v uint32) {
		var buf [4]byte
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		space.Write(row+int64(j)*4, buf[:])
	}

	const inf = uint32(1) << 30
	half := c.Band / 2

	m.MarkStart()

	// Row 0: D(0, col) = col (insertions only).
	for j := 0; j < c.Band; j++ {
		col := 0 + j - half
		if col < 0 || col >= c.N {
			writeCell(rowOff[0], j, inf)
		} else {
			writeCell(rowOff[0], j, uint32(col))
		}
		var one [1]byte
		space.Write(hOff+int64(j), one[:])
	}

	// Forward pass: fill the band row by row. Band cell (i, j) is full-
	// matrix cell (i, i+j-half), so the band-vertical neighbour (i-1, j) is
	// the full-matrix diagonal neighbour — its difference is the bounded
	// h value stored in the big array.
	prev, cur := 0, 1
	var aByte, bByte [1]byte
	for i := 1; i < c.N; i++ {
		space.Read(aOff+int64(i), aByte[:])
		for j := 0; j < c.Band; j++ {
			col := i + j - half
			if col < 0 || col >= c.N {
				writeCell(rowOff[cur], j, inf)
				var zero [1]byte
				space.Write(hOff+int64(i)*int64(c.Band)+int64(j), zero[:])
				continue
			}
			best := inf
			// diag: full (i-1, col-1) = band (i-1, j).
			if d := readCell(rowOff[prev], j); d != inf {
				space.Read(bOff+int64(col), bByte[:])
				sub := uint32(0)
				if aByte[0] != bByte[0] {
					sub = 1
				}
				if d+sub < best {
					best = d + sub
				}
			}
			// up: full (i-1, col) = band (i-1, j+1).
			if j+1 < c.Band {
				if d := readCell(rowOff[prev], j+1); d != inf && d+1 < best {
					best = d + 1
				}
			}
			// left: full (i, col-1) = band (i, j-1).
			if j > 0 {
				if d := readCell(rowOff[cur], j-1); d != inf && d+1 < best {
					best = d + 1
				}
			}
			if best == inf {
				// Band boundary with no reachable predecessor.
				best = uint32(i + col)
			}
			writeCell(rowOff[cur], j, best)
			// The bounded diagonal difference h = D(i,col) - D(i-1,col-1);
			// store 0xFF at cells where the diagonal is outside the band.
			h := byte(0xFF)
			if d := readCell(rowOff[prev], j); d != inf && best >= d {
				h = byte(best - d) // 0 or 1
			}
			space.Write(hOff+int64(i)*int64(c.Band)+int64(j), []byte{h})
		}
		prev, cur = cur, prev
	}
	c.editDistance = readCell(rowOff[prev], half)

	// Reverse pass: the traceback "goes linearly back to the beginning",
	// reading the stored differences to reconstruct the edit script (here
	// accumulated as a checksum).
	var script uint64
	for i := c.N - 1; i >= 0; i-- {
		rowBase := hOff + int64(i)*int64(c.Band)
		var buf [1]byte
		for j := c.Band - 1; j >= 0; j-- {
			space.Read(rowBase+int64(j), buf[:])
			script += uint64(buf[0])
		}
	}
	_ = script
	m.Drain()
	return nil
}

// Distance reports the banded edit distance computed by the last Run.
func (c *Compare) Distance() uint32 { return c.editDistance }
