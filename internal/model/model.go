// Package model contains the closed-form analysis behind Figure 1 of the
// paper, which plots the benefit of compressed paging "modeled analytically"
// as a function of two variables:
//
//	r — the compression ratio, expressed as the paper expresses it: the
//	    fraction of bytes left after compression (0 < r ≤ 1, smaller is
//	    better; 0.25 means pages compress 4:1);
//	s — the speed of compression relative to I/O (compression bandwidth
//	    divided by backing-store bandwidth).
//
// Decompression is assumed twice as fast as compression, "as is roughly the
// case for algorithms such as LZRW1". All times are measured in units of one
// uncompressed page transfer to the backing store.
//
// Figure 1(a) models transferring compressed pages to and from the backing
// store; Figure 1(b) models keeping compressed pages in memory for an
// application that sequentially cycles through twice as many pages as fit in
// memory, reading and writing one word on each page, where the speedup leaps
// when everything fits compressed (r ≤ M/W = 0.5) and is then linear in s.
package model

import (
	"fmt"
	"math"
)

// Params adjusts the model's fixed assumptions.
type Params struct {
	// DecompressFactor is how much faster decompression is than
	// compression; the paper (and LZRW1) use 2.
	DecompressFactor float64

	// WorkingSetFactor is W/M for Figure 1(b): the application touches
	// WorkingSetFactor times as many pages as fit in memory; the paper
	// uses 2.
	WorkingSetFactor float64

	// Overhead is fixed per-fault software overhead in page-transfer units
	// (small; 0 reproduces the idealized figure).
	Overhead float64
}

// Default returns the paper's assumptions.
func Default() Params {
	return Params{DecompressFactor: 2, WorkingSetFactor: 2}
}

func (p Params) check(r, s float64) error {
	if r <= 0 || r > 1 {
		return fmt.Errorf("model: compression ratio %g out of (0,1]", r)
	}
	if s <= 0 {
		return fmt.Errorf("model: relative compression speed %g must be positive", s)
	}
	return nil
}

// compressTime is the time to compress one page, in transfer units.
func (p Params) compressTime(s float64) float64 { return 1 / s }

// decompressTime is the time to decompress one page.
func (p Params) decompressTime(s float64) float64 {
	d := p.DecompressFactor
	if d <= 0 {
		d = 2
	}
	return 1 / (s * d)
}

// BandwidthWriteSpeedup is the Figure 1(a) speedup for the pageout path:
// compress, then transfer r of a page, versus transferring the whole page.
func (p Params) BandwidthWriteSpeedup(r, s float64) float64 {
	if err := p.check(r, s); err != nil {
		// Invariant: the analytic model is pure math over caller-chosen
		// parameters; an out-of-domain input is a programming error.
		panic(err)
	}
	return (1 + p.Overhead) / (p.compressTime(s) + r + p.Overhead)
}

// BandwidthReadSpeedup is the Figure 1(a) speedup for the pagein path:
// transfer r of a page, then decompress.
func (p Params) BandwidthReadSpeedup(r, s float64) float64 {
	if err := p.check(r, s); err != nil {
		// Invariant: the analytic model is pure math over caller-chosen
		// parameters; an out-of-domain input is a programming error.
		panic(err)
	}
	return (1 + p.Overhead) / (r + p.decompressTime(s) + p.Overhead)
}

// BandwidthSpeedup is Figure 1(a)'s combined speedup for a balanced
// pageout+pagein cycle.
func (p Params) BandwidthSpeedup(r, s float64) float64 {
	if err := p.check(r, s); err != nil {
		// Invariant: the analytic model is pure math over caller-chosen
		// parameters; an out-of-domain input is a programming error.
		panic(err)
	}
	std := 2 * (1 + p.Overhead)
	comp := p.compressTime(s) + p.decompressTime(s) + 2*r + 2*p.Overhead
	return std / comp
}

// ReferenceSpeedup is Figure 1(b): the speedup of mean memory-reference time
// when compressed pages are retained in memory, for the cyclic-sequential
// read/write workload with W = WorkingSetFactor*M.
//
// Derivation: with LRU and a cyclic sweep longer than memory, the baseline
// faults on every page, paying one page write (the dirty victim) and one
// page read per access: cost_std = 2 + overhead. With the compression cache
// holding C compressed pages in essentially all of memory, C = M/r, and a
// fault hits the cache with probability min(1, C/W); a hit costs one
// compression (victim) plus one decompression; a miss additionally moves 2r
// of a page to and from the backing store (compressed transfers).
func (p Params) ReferenceSpeedup(r, s float64) float64 {
	if err := p.check(r, s); err != nil {
		// Invariant: the analytic model is pure math over caller-chosen
		// parameters; an out-of-domain input is a programming error.
		panic(err)
	}
	w := p.WorkingSetFactor
	if w <= 1 {
		w = 2
	}
	hit := 1 / (r * w) // = (M/r)/W
	if hit > 1 {
		hit = 1
	}
	std := 2 + p.Overhead
	comp := p.compressTime(s) + p.decompressTime(s) + p.Overhead + (1-hit)*2*r
	return std / comp
}

// ReadOnlyReferenceSpeedup is the read-only variant (no victim writes): the
// baseline pays one page read per access; the cache pays one decompression
// plus, on a miss, a compressed read. Clean victims are dropped free in both
// systems.
func (p Params) ReadOnlyReferenceSpeedup(r, s float64) float64 {
	if err := p.check(r, s); err != nil {
		// Invariant: the analytic model is pure math over caller-chosen
		// parameters; an out-of-domain input is a programming error.
		panic(err)
	}
	w := p.WorkingSetFactor
	if w <= 1 {
		w = 2
	}
	hit := 1 / (r * w)
	if hit > 1 {
		hit = 1
	}
	std := 1 + p.Overhead
	// A read-only miss still compresses once: the page was compressed when
	// it was first evicted into the cache.
	comp := p.decompressTime(s) + p.Overhead + (1-hit)*r
	return std / comp
}

// Region classifies a speedup the way Figure 1 shades its plot: ">6x" (the
// dark region that goes off the top of the paper's scale), "1-6x" (the light
// region) and "<1x" (slowdown).
func Region(speedup float64) string {
	switch {
	case speedup >= 6:
		return ">6x"
	case speedup >= 1:
		return "1-6x"
	default:
		return "<1x"
	}
}

// Grid evaluates f over the cross product of ratios and speeds; result[i][j]
// is f(ratios[i], speeds[j]).
func Grid(f func(r, s float64) float64, ratios, speeds []float64) [][]float64 {
	out := make([][]float64, len(ratios))
	for i, r := range ratios {
		out[i] = make([]float64, len(speeds))
		for j, s := range speeds {
			out[i][j] = f(r, s)
		}
	}
	return out
}

// Linspace returns n evenly spaced values in [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // exact endpoint despite float rounding
	return out
}

// Logspace returns n log-spaced values in [lo, hi] (lo, hi > 0).
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		// Invariant: caller-chosen sweep bounds; a non-positive bound is a
		// programming error in the experiment, not a runtime fault.
		panic("model: Logspace needs positive bounds")
	}
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
