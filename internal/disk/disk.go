// Package disk models the backing-store device: a single disk with seek,
// rotational latency and transfer-rate costs, plus an asynchronous write
// queue so background cleaning can overlap with computation the way the
// paper's kernel cleaner thread does.
//
// The default parameters approximate the DEC RZ57, the local disk of the
// paper's DECstation 5000/200: roughly one-gigabyte, 3600-RPM, ~15 ms average
// seek, ~1.6 MB/s sustained media rate. The paper's headline observation —
// that speedups depend on the ratio of compression speed to I/O speed — makes
// these parameters the principal experimental axis, so everything is
// configurable.
package disk

import (
	"fmt"
	"math"
	"time"

	"compcache/internal/fault"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
)

// Params describes a disk.
type Params struct {
	// SeekAvg is the average seek time paid by a non-sequential access.
	SeekAvg time.Duration

	// RotLatency is the average rotational delay (half a revolution) paid by
	// a non-sequential access.
	RotLatency time.Duration

	// BytesPerSec is the media transfer rate.
	BytesPerSec float64

	// PerOp is fixed per-operation overhead (controller, SCSI command).
	PerOp time.Duration

	// SectorSize is the addressing granularity, in bytes. Transfers are
	// rounded up to whole sectors.
	SectorSize int
}

// RZ57 returns parameters approximating the paper's DEC RZ57 disk: a
// 3600-RPM SCSI drive (16.7 ms/revolution, so 8.3 ms average rotational
// latency) with ~15 ms average seek and ~1.6 MB/s media rate.
func RZ57() Params {
	return Params{
		SeekAvg:     15 * time.Millisecond,
		RotLatency:  16700 * time.Microsecond / 2,
		BytesPerSec: 1.6e6,
		PerOp:       1 * time.Millisecond,
		SectorSize:  512,
	}
}

// Validate reports whether the parameters describe a usable disk.
func (p Params) Validate() error {
	if math.IsNaN(p.BytesPerSec) || math.IsInf(p.BytesPerSec, 0) || p.BytesPerSec <= 0 {
		return fmt.Errorf("disk: BytesPerSec must be positive and finite, got %g", p.BytesPerSec)
	}
	if p.SectorSize <= 0 {
		return fmt.Errorf("disk: SectorSize must be positive, got %d", p.SectorSize)
	}
	// Cap the sector size well below the overflow point of TransferTime's
	// round-up arithmetic (n + SectorSize - 1).
	if p.SectorSize > 1<<30 {
		return fmt.Errorf("disk: SectorSize %d is unreasonably large", p.SectorSize)
	}
	if p.SeekAvg < 0 || p.RotLatency < 0 || p.PerOp < 0 {
		return fmt.Errorf("disk: negative latency parameter")
	}
	return nil
}

// TransferTime reports the media time to move n bytes (rounded up to whole
// sectors), excluding positioning.
func (p Params) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	sectors := (n + p.SectorSize - 1) / p.SectorSize
	bytes := sectors * p.SectorSize
	return time.Duration(float64(bytes) / p.BytesPerSec * float64(time.Second))
}

// Disk is the device. It keeps a busy-until timeline: synchronous operations
// wait for the device to drain, while asynchronous writes only extend the
// timeline. A last-address cursor implements sequential-access detection —
// an access that starts where the previous one ended skips seek and
// rotational delay, which is how clustered swap writes earn their bandwidth.
type Disk struct {
	params Params     //cclint:ignore snapcover -- config: fixed at construction; the restore target is built with the same params
	clock  *sim.Clock //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	busyAt sim.Time   // device is busy until this instant
	next   int64      // byte address one past the previous access
	stats  stats.Disk
	faults *fault.Injector //cclint:ignore snapcover -- wiring: the injector snapshots itself separately

	bus *obs.Bus //cclint:ignore snapcover -- wiring: observability bus attached separately
	//cclint:ignore snapcover -- observability: per-run histogram, not replay state
	waitHist *obs.Histogram // disk.queue_wait — delay behind queued work
	//cclint:ignore snapcover -- observability: per-run histogram, not replay state
	svcHist *obs.Histogram // disk.service — positioning plus transfer
}

// New creates a disk on the given clock.
func New(p Params, clock *sim.Clock) (*Disk, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Disk{params: p, clock: clock, next: -1}, nil
}

// Params reports the disk's parameters.
func (d *Disk) Params() Params { return d.params }

// SetFaultInjector attaches a fault injector; nil (the default) disables
// injection. The injector must live on the same clock as the disk.
func (d *Disk) SetFaultInjector(in *fault.Injector) { d.faults = in }

// SetObserver wires the disk to a machine's event bus; nil disables emission.
func (d *Disk) SetObserver(b *obs.Bus) {
	d.bus = b
	d.waitHist = b.Histogram("disk.queue_wait")
	d.svcHist = b.Histogram("disk.service")
}

// observe records one completed operation: the wait/service histograms plus
// a completion event stamped at the completion instant.
func (d *Disk) observe(class obs.Class, n int, wait, svc time.Duration, done sim.Time) {
	d.waitHist.Observe(wait)
	d.svcHist.Observe(svc)
	if d.bus.Enabled(class) {
		d.bus.Emit(obs.Event{
			T: done, Class: class, Sub: obs.SubDisk,
			Bytes: int64(n), Dur: svc, Aux: int64(wait),
		})
	}
}

// Granularity reports the sector size (the fs.Device interface).
func (d *Disk) Granularity() int { return d.params.SectorSize }

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() stats.Disk { return d.stats }

// BusyUntil reports the instant the device queue drains.
func (d *Disk) BusyUntil() sim.Time { return d.busyAt }

// opTime computes the service time for one operation at byte address addr.
// A non-sequential access pays a seek plus rotational latency. A sequential
// access that reaches an idle device pays rotational latency alone: this is
// a 1993 drive with no read-ahead, so while the host was busy handling the
// previous fault, the target sector rotated past (the reason the paper's
// unmodified system is slow even for perfectly sequential read-only paging).
// Only back-to-back queued sequential operations stream at media rate.
func (d *Disk) opTime(addr int64, n int) (svc time.Duration, seek bool) {
	svc = d.params.PerOp + d.params.TransferTime(n)
	switch {
	case addr != d.next:
		svc += d.params.SeekAvg + d.params.RotLatency
		seek = true
	case d.clock.Now() > d.busyAt:
		// Sequential but the device went idle: missed the rotation window.
		svc += d.params.RotLatency
	}
	return svc, seek
}

// start reports when an operation issued now can begin service.
func (d *Disk) start() sim.Time {
	now := d.clock.Now()
	if d.busyAt > now {
		return d.busyAt
	}
	return now
}

// Read performs a synchronous read of n bytes at byte address addr. The
// caller's virtual clock is advanced to the completion instant (queueing
// behind any pending asynchronous writes, as a real request would). An
// injected failure surfaces only after the operation has been charged its
// full service time — a failed transfer is not a free one.
func (d *Disk) Read(addr int64, n int) error {
	svc, seek := d.opTime(addr, n)
	svc += d.faults.Latency()
	st := d.start()
	wait := time.Duration(st - d.clock.Now())
	done := st.Add(svc)
	d.finish(addr, n, done, svc, seek)
	d.stats.Reads++
	d.stats.BytesRead += uint64(n)
	d.observe(obs.ClassDiskRead, n, wait, svc, done)
	d.clock.AdvanceTo(done)
	return d.faults.DiskRead()
}

// Write performs a synchronous write of n bytes at byte address addr.
func (d *Disk) Write(addr int64, n int) error {
	svc, seek := d.opTime(addr, n)
	svc += d.faults.Latency()
	st := d.start()
	wait := time.Duration(st - d.clock.Now())
	done := st.Add(svc)
	d.finish(addr, n, done, svc, seek)
	d.stats.Writes++
	d.stats.BytesWritten += uint64(n)
	d.observe(obs.ClassDiskWrite, n, wait, svc, done)
	d.clock.AdvanceTo(done)
	if err := d.faults.CrashWrite(n, d.params.SectorSize); err != nil {
		return err
	}
	return d.faults.DiskWrite()
}

// WriteAsync queues a write without blocking the caller: the device busy
// timeline is extended but the clock is not advanced. This models the
// cleaner thread writing out dirty compressed pages in the background. The
// returned instant is when the write completes. A failure of the queued
// write is reported immediately (the model has no completion interrupt),
// with the busy timeline still charged.
func (d *Disk) WriteAsync(addr int64, n int) (sim.Time, error) {
	svc, seek := d.opTime(addr, n)
	svc += d.faults.Latency()
	st := d.start()
	wait := time.Duration(st - d.clock.Now())
	done := st.Add(svc)
	d.finish(addr, n, done, svc, seek)
	d.stats.Writes++
	d.stats.BytesWritten += uint64(n)
	d.observe(obs.ClassDiskWrite, n, wait, svc, done)
	if err := d.faults.CrashWrite(n, d.params.SectorSize); err != nil {
		return done, err
	}
	return done, d.faults.DiskWrite()
}

// Drain advances the clock until all queued operations complete. Tests and
// end-of-run accounting use it so asynchronous work is not silently free.
//
//cclint:ignore obscoverage -- drain only retires the busy timeline; every waited-out op was probed when it was issued
func (d *Disk) Drain() {
	d.clock.AdvanceTo(d.busyAt)
}

func (d *Disk) finish(addr int64, n int, done sim.Time, svc time.Duration, seek bool) {
	d.busyAt = done
	d.next = addr + int64(n)
	d.stats.BusyTime += svc
	if seek {
		d.stats.Seeks++
	}
}
