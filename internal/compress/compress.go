// Package compress provides the page-compression codecs used by the
// compression cache.
//
// The paper compresses 4-KByte VM pages with Ross Williams's LZRW1 algorithm
// (Data Compression Conference, 1991), chosen because it is fast enough for
// on-line use while compressing typical page data 2:1–4:1. This package
// contains a from-scratch Go implementation of the LZRW1 format, a
// higher-effort LZSS variant, two hardware-inspired codecs (bdi and fpc,
// after Pekhimenko's Base-Delta-Immediate and Alameldeen & Wood's
// Frequent-Pattern Compression), two simpler codecs (run-length and null),
// and a registry so different data types can use different algorithms, one
// of the design requirements in §3 of the paper ("it should allow different
// compression algorithms to be used for different types of data").
package compress

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec compresses and decompresses byte blocks. Implementations must be
// deterministic and safe for concurrent use by multiple goroutines (they may
// not retain state across calls; scratch space is allocated per call, pooled
// internally, or passed explicitly).
//
// Determinism extends to recycled destination buffers: Compress(dst, src)
// must produce the same bytes whether dst[:0] re-slices a buffer full of
// stale garbage or is freshly allocated — implementations may never read
// dst's backing array beyond len(dst). The machine's hot path hands every
// codec a per-machine scratch buffer, so this is a load-bearing contract,
// enforced by FuzzCompressDirtyScratch.
type Codec interface {
	// Name reports the registry name of the codec, e.g. "lzrw1".
	Name() string

	// Compress appends the compressed representation of src to dst and
	// returns the extended slice. Compress never fails: for incompressible
	// input every codec falls back to a stored (raw) representation that is
	// at most MaxCompressedSize(len(src)) bytes long.
	Compress(dst, src []byte) []byte

	// Decompress appends the decompressed form of a block previously
	// produced by Compress and returns the extended slice. It returns an
	// error if src is not a well-formed block.
	Decompress(dst, src []byte) ([]byte, error)

	// MaxCompressedSize reports an upper bound on the size of the output of
	// Compress for an input of n bytes.
	MaxCompressedSize(n int) int
}

// ErrCorrupt is returned (possibly wrapped) by Decompress when the input is
// not a valid compressed block.
var ErrCorrupt = errors.New("compress: corrupt block")

var (
	regMu    sync.RWMutex
	registry = make(map[string]Codec)
)

// Register makes a codec available by name. It panics if the name is already
// taken, matching the behaviour of database/sql-style registries.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	name := c.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compress: Register called twice for codec %q", name))
	}
	registry[name] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names reports the registered codec names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(LZRW1{})
	Register(LZSS{})
	Register(RLE{})
	Register(Null{})
	Register(BDI{})
	Register(FPC{})
}
