package sim

import (
	"errors"
	"fmt"
	"sort"

	"compcache/internal/snap"
)

// SnapshotTo serializes the clock for a machine snapshot.
func (c *Clock) SnapshotTo(w *snap.Writer) {
	w.Section("sim.clock")
	w.I64(int64(c.now))
}

// RestoreFrom rewinds (or advances) the clock to a snapshotted instant.
func (c *Clock) RestoreFrom(r *snap.Reader) error {
	r.Section("sim.clock")
	now := Time(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	c.now = now
	return nil
}

// SnapshotTo serializes the kernel: global time, the sequence counter, every
// actor's clock instant, and the pending resume events in dispatch order with
// their original sequence numbers, so a restored kernel replays the exact
// same schedule. The kernel must be paused (not inside Run — use Stop from a
// timer callback to pause mid-simulation) and must hold no pending timers:
// timer callbacks are closures and cannot be serialized.
func (k *Kernel) SnapshotTo(w *snap.Writer) error {
	if k.running {
		return errors.New("sim: kernel snapshot while running (pause with Stop first)")
	}
	for _, e := range k.heap {
		if e.kind == evTimer {
			return errors.New("sim: kernel snapshot with pending timer callback")
		}
	}
	w.Section("sim.kernel")
	w.I64(int64(k.now))
	w.U64(k.seq)
	w.Int(len(k.ids))
	for _, id := range k.ids {
		st := k.actors[id]
		at := st.save
		if st.clock != nil {
			at = st.clock.now
		}
		w.I32(int32(id))
		w.I64(int64(at))
	}
	evs := make([]event, len(k.heap))
	copy(evs, k.heap)
	sort.Slice(evs, func(i, j int) bool { return less(evs[i].at, evs[i].id, evs[i].seq, evs[j]) })
	w.Int(len(evs))
	for _, e := range evs {
		w.I64(int64(e.at))
		w.I32(int32(e.id))
		w.U64(e.seq)
	}
	return nil
}

// RestoreFrom loads a kernel snapshot into a fresh kernel. Each restored
// actor must then be re-attached with Attach (its clock adopts the restored
// instant) and, if it had a pending resume event, re-armed with Bind so the
// wake-up has a continuation to start. The kernel must be empty.
func (k *Kernel) RestoreFrom(r *snap.Reader) error {
	if k.running || len(k.actors) != 0 || len(k.heap) != 0 {
		return errors.New("sim: kernel restore into non-empty kernel")
	}
	r.Section("sim.kernel")
	now := Time(r.I64())
	seq := r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	type actorSave struct {
		id ActorID
		at Time
	}
	saves := make([]actorSave, n)
	for i := range saves {
		saves[i] = actorSave{id: ActorID(r.I32()), at: Time(r.I64())}
	}
	ne := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	evs := make([]event, ne)
	for i := range evs {
		evs[i] = event{at: Time(r.I64()), id: ActorID(r.I32()), kind: evResume}
		evs[i].seq = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	k.now = now
	k.seq = seq
	for _, s := range saves {
		if _, dup := k.actors[s.id]; dup {
			return fmt.Errorf("sim: duplicate actor %d in kernel snapshot", s.id)
		}
		k.actors[s.id] = &actorState{id: s.id, resume: make(chan Time), save: s.at}
		k.ids = append(k.ids, s.id)
	}
	sort.Slice(k.ids, func(i, j int) bool { return k.ids[i] < k.ids[j] })
	k.heap = append(k.heap, evs...)
	// The events were written in dispatch order, which is a valid heap
	// layout already, but establish the invariant explicitly.
	k.heap.init()
	return nil
}
