package exp

import (
	"fmt"
	"time"

	"compcache/internal/machine"
	"compcache/internal/workload"
)

// PaperRow is the published Table 1 figure for one application, used for
// side-by-side comparison in the output and in EXPERIMENTS.md.
type PaperRow struct {
	Speedup       float64
	RatioPct      float64 // compression ratio (% of original size)
	UncompressPct float64 // pages compressing worse than 4:3 (%)
}

// paperTable1 is Table 1 of the paper, in its row order.
var paperTable1 = map[string]PaperRow{
	"compare":      {2.68, 31, 0.1},
	"isca":         {1.60, 32, 1.7},
	"sort_partial": {1.30, 30, 49},
	"gold_create":  {0.90, 59, 42},
	"gold_cold":    {0.80, 60, 10},
	"sort_random":  {0.91, 37, 98},
	"gold_warm":    {0.73, 52, 0.9},
}

// PaperTable1 returns the published row for a workload name (ok=false for
// unknown names).
func PaperTable1(name string) (PaperRow, bool) {
	r, ok := paperTable1[name]
	return r, ok
}

// Table1Row is one measured application comparison.
type Table1Row struct {
	Name  string
	Cmp   workload.Comparison
	Paper PaperRow
}

// Table1Result is the whole measured table.
type Table1Result struct {
	MemoryMB int
	Rows     []Table1Row
}

// Table1Options sizes the experiment.
type Table1Options struct {
	MemoryMB int
	Seed     int64
	// Parallelism caps how many machines run concurrently: 0 means one per
	// core, 1 forces serial execution. The table is byte-identical either
	// way — runs are independent and results are ordered by row, not by
	// completion.
	Parallelism int
	// Workloads overrides the default workload set (tests use subsets).
	Workloads []workload.Workload
}

// DefaultTable1Options returns the workload set for the given scale, in the
// paper's row order. Paper scale sizes working sets at roughly 1.5-3x user
// memory, the same pressure regime as the paper's 14-MByte configuration.
func DefaultTable1Options(s Scale) Table1Options {
	if s == Paper {
		const seed = 42
		return Table1Options{
			MemoryMB: 8,
			Seed:     seed,
			Workloads: []workload.Workload{
				&workload.Compare{N: 24576, Band: 1024, Seed: seed},
				&workload.CacheSim{CPUs: 8, Sets: 2048, Ways: 2, AddrWords: 1 << 21,
					BlockWordsList: []int{4, 16, 64}, Refs: 1 << 20, Seed: seed},
				&workload.Sort{Bytes: 12 << 20, Mode: workload.SortPartial, Seed: seed},
				&workload.Gold{Messages: 60000, WordsPerMessage: 32, VocabWords: 16000,
					Queries: 20000, Phase: workload.GoldCreate, Seed: seed},
				&workload.Gold{Messages: 60000, WordsPerMessage: 32, VocabWords: 16000,
					Queries: 20000, Phase: workload.GoldCold, Seed: seed},
				&workload.Sort{Bytes: 12 << 20, Mode: workload.SortRandom, Seed: seed},
				&workload.Gold{Messages: 60000, WordsPerMessage: 32, VocabWords: 16000,
					Queries: 20000, Phase: workload.GoldWarm, Seed: seed},
			},
		}
	}
	const seed = 42
	return Table1Options{
		MemoryMB: 1,
		Seed:     seed,
		Workloads: []workload.Workload{
			&workload.Compare{N: 4096, Band: 512, Seed: seed},
			&workload.CacheSim{CPUs: 4, Sets: 256, Ways: 2, AddrWords: 1 << 17,
				BlockWordsList: []int{4, 16}, Refs: 1 << 16, Seed: seed},
			&workload.Sort{Bytes: 3 << 20 / 2, Mode: workload.SortPartial, VocabWords: 4000, Seed: seed},
			&workload.Gold{Messages: 12000, WordsPerMessage: 24, VocabWords: 3000,
				Queries: 6000, Phase: workload.GoldCreate, Seed: seed},
			&workload.Gold{Messages: 12000, WordsPerMessage: 24, VocabWords: 3000,
				Queries: 6000, Phase: workload.GoldCold, Seed: seed},
			&workload.Sort{Bytes: 3 << 20 / 2, Mode: workload.SortRandom, VocabWords: 4000, Seed: seed},
			&workload.Gold{Messages: 12000, WordsPerMessage: 24, VocabWords: 3000,
				Queries: 6000, Phase: workload.GoldWarm, Seed: seed},
		},
	}
}

// Table1 runs every §5.2 application on the baseline and compression-cache
// machines. The 2 x len(Workloads) runs are independent, so they fan out
// across opts.Parallelism workers; rows come back in workload order.
func Table1(opts Table1Options) (*Table1Result, error) {
	memBytes := int64(opts.MemoryMB) << 20
	jobs := make([]job, 0, 2*len(opts.Workloads))
	for _, w := range opts.Workloads {
		jobs = append(jobs,
			job{machine.Default(memBytes), w},
			job{machine.Default(memBytes).WithCC(), w})
	}
	runs, err := measureAll(opts.Parallelism, jobs)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{MemoryMB: opts.MemoryMB}
	for i, w := range opts.Workloads {
		row := Table1Row{Name: w.Name(), Cmp: workload.Comparison{
			Workload: w.Name(), Std: runs[2*i], CC: runs[2*i+1]}}
		row.Paper, _ = PaperTable1(w.Name())
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Tables implements Result.
func (r *Table1Result) Tables() []*Table { return []*Table{r.Table()} }

// Table renders the measured table next to the paper's published values.
func (r *Table1Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Table 1: application speedups (user memory %d MB)", r.MemoryMB),
		Header: []string{"application", "time(std)", "time(cc)", "speedup", "ratio%", "uncomp%",
			"paper:speedup", "paper:ratio%", "paper:uncomp%"},
		Note: "speedup > 1 means the compression cache wins; ratio = bytes remaining after compression for retained pages;\n" +
			"uncomp = fraction of compression attempts missing the 4:3 threshold. Paper columns from Table 1 of the paper.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmtDur(row.Cmp.Std.Time),
			fmtDur(row.Cmp.CC.Time),
			fmt.Sprintf("%.2f", row.Cmp.Speedup()),
			fmt.Sprintf("%.0f", 100*row.Cmp.CC.Comp.Ratio()),
			fmt.Sprintf("%.1f", 100*row.Cmp.CC.Comp.UncompressibleFrac()),
			fmt.Sprintf("%.2f", row.Paper.Speedup),
			fmt.Sprintf("%.0f", row.Paper.RatioPct),
			fmt.Sprintf("%.1f", row.Paper.UncompressPct))
	}
	return t
}

// fmtDur prints virtual times the way the paper's Table 1 does, as
// minutes:seconds when large.
func fmtDur(d time.Duration) string {
	if d >= time.Minute {
		return fmt.Sprintf("%d:%05.2f", int(d.Minutes()), d.Seconds()-60*float64(int(d.Minutes())))
	}
	return d.Round(time.Millisecond).String()
}
