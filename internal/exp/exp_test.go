package exp

import (
	"strconv"
	"strings"
	"testing"

	"compcache/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Note: "n"}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	s := tab.String()
	for _, want := range []string{"T", "a", "bb", "333", "n", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	f := Fig1a()
	if len(f.Grid) != len(f.Ratios) || len(f.Grid[0]) != len(f.Speeds) {
		t.Fatal("grid shape mismatch")
	}
	regions := f.Regions()
	// The paper's figure has all three shaded regions.
	for _, r := range []string{">6x", "1-6x", "<1x"} {
		if regions[r] == 0 {
			t.Errorf("region %q empty: %v", r, regions)
		}
	}
	// Top-left (good ratio, fast compression) must beat bottom-right.
	if f.Grid[0][len(f.Speeds)-1] <= f.Grid[len(f.Ratios)-1][0] {
		t.Error("surface orientation wrong")
	}
	if !strings.Contains(f.String(), "region map") {
		t.Error("missing region map in render")
	}
}

func TestFig1bLeap(t *testing.T) {
	f := Fig1b()
	// Find the ratio rows nearest 0.45 and 0.6 at high speed: the speedup
	// must leap downward crossing r=0.5 (the fits-in-memory cliff).
	var below, above float64
	lastSpeed := len(f.Speeds) - 1
	for i, r := range f.Ratios {
		if r <= 0.45 {
			below = f.Grid[i][lastSpeed]
		}
		if above == 0 && r >= 0.6 {
			above = f.Grid[i][lastSpeed]
		}
	}
	if below <= above*1.2 {
		t.Errorf("no leap at r=0.5: below=%v above=%v", below, above)
	}
}

func TestFig3SmallScale(t *testing.T) {
	res, err := Fig3(DefaultFig3Options(Small))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Shape assertions mirroring the paper's Figure 3:
	// 1. In-memory sizes: no benefit, no harm.
	first := res.Points[0]
	if first.SpeedRW < 0.9 || first.SpeedRW > 1.2 {
		t.Errorf("in-memory rw speedup %.2f, want ~1", first.SpeedRW)
	}
	// 2. Some point past memory size shows a solid rw win.
	bestRW := 0.0
	for _, p := range res.Points {
		if p.SpeedRW > bestRW {
			bestRW = p.SpeedRW
		}
	}
	if bestRW < 2 {
		t.Errorf("peak rw speedup %.2f, want >= 2", bestRW)
	}
	// 3. The compression cache never loses on the thrasher (its best case).
	for _, p := range res.Points {
		if p.SpeedRW < 0.9 || p.SpeedRO < 0.9 {
			t.Errorf("size %dMB: speedups rw=%.2f ro=%.2f dipped below 0.9", p.SizeMB, p.SpeedRW, p.SpeedRO)
		}
	}
	// Renderers.
	if !strings.Contains(res.TableA().String(), "std_rw") {
		t.Error("TableA missing header")
	}
	if !strings.Contains(res.TableB().String(), "cc_ro") {
		t.Error("TableB missing header")
	}
}

func TestTable1SmallScale(t *testing.T) {
	res, err := Table1(DefaultTable1Options(Small))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.Paper.Speedup == 0 {
			t.Errorf("row %s has no paper reference", r.Name)
		}
	}
	// Shape: compare must win clearly; sort_random must not win.
	if s := byName["compare"].Cmp.Speedup(); s < 1.2 {
		t.Errorf("compare speedup %.2f, want > 1.2", s)
	}
	if s := byName["sort_random"].Cmp.Speedup(); s > 1.1 {
		t.Errorf("sort_random speedup %.2f, want <= 1.1", s)
	}
	// Compressibility classes: compare ~3:1, sort_random mostly failing.
	if u := byName["sort_random"].Cmp.CC.Comp.UncompressibleFrac(); u < 0.5 {
		t.Errorf("sort_random uncompressible %.2f, want > 0.5", u)
	}
	if u := byName["compare"].Cmp.CC.Comp.UncompressibleFrac(); u > 0.2 {
		t.Errorf("compare uncompressible %.2f, want < 0.2", u)
	}
	if !strings.Contains(res.Table().String(), "paper:speedup") {
		t.Error("table missing paper columns")
	}
}

func TestPaperTable1Lookup(t *testing.T) {
	r, ok := PaperTable1("compare")
	if !ok || r.Speedup != 2.68 {
		t.Fatalf("compare row %+v ok=%v", r, ok)
	}
	if _, ok := PaperTable1("nope"); ok {
		t.Fatal("unknown row found")
	}
}

func TestAblationsSmallScale(t *testing.T) {
	const memMB = 1
	pages := int32(3 * 256) // 3 MB working set vs 1 MB memory

	t.Run("partialIO", func(t *testing.T) {
		tab, err := AblationPartialIO(memMB, pages, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 4 { // two workloads x two backing-store modes
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
	t.Run("spanning", func(t *testing.T) {
		tab, err := AblationSpanning(memMB, pages, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
	t.Run("bias", func(t *testing.T) {
		tab, err := AblationBias(memMB, pages, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 6 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
	t.Run("threshold", func(t *testing.T) {
		tab, err := AblationThreshold(memMB, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 4 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
	t.Run("codec", func(t *testing.T) {
		tab, err := AblationCodec(memMB, pages, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 4 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
	t.Run("fixedsize", func(t *testing.T) {
		tab, err := AblationFixedSize(memMB, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 3 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
}

func TestScaleString(t *testing.T) {
	if Small.String() != "small" || Paper.String() != "paper" {
		t.Fatal("scale names wrong")
	}
}

func TestDefaultOptionsWorkloadOrderMatchesPaper(t *testing.T) {
	opts := DefaultTable1Options(Small)
	wantOrder := []string{"compare", "isca", "sort_partial", "gold_create", "gold_cold", "sort_random", "gold_warm"}
	if len(opts.Workloads) != len(wantOrder) {
		t.Fatalf("workload count %d", len(opts.Workloads))
	}
	for i, w := range opts.Workloads {
		if w.Name() != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, w.Name(), wantOrder[i])
		}
	}
	var _ workload.Workload = opts.Workloads[0]
}

func TestExtensionSweeps(t *testing.T) {
	t.Run("backing", func(t *testing.T) {
		tab, err := BackingStoreSweep(1, 768, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 4 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		// The cache's advantage must grow as the backing store slows: the
		// wireless row's speedup exceeds the fastest row's.
		first, err1 := strconv.ParseFloat(tab.Rows[0][3], 64)
		last, err2 := strconv.ParseFloat(tab.Rows[3][3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable speedups: %v %v", err1, err2)
		}
		if last <= first {
			t.Fatalf("speedup did not grow with slower backing store: fast=%.2f wireless=%.2f", first, last)
		}
	})
	t.Run("compressionSpeed", func(t *testing.T) {
		tab, err := CompressionSpeedSweep(1, 768, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 5 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		// Speedup must be monotone in compression speed.
		prev := 0.0
		for i, row := range tab.Rows {
			v, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("speedup fell from %.2f to %.2f at row %d", prev, v, i)
			}
			prev = v
		}
	})
	t.Run("mobile", func(t *testing.T) {
		tab, err := MobileScenario(1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 3 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	})
}

func TestAdvisoryPinning(t *testing.T) {
	// Working set = 2x memory, the §3 setup.
	tab, err := AdvisoryPinning(1, 512, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Pinning must beat plain LRU, and the compression cache must beat
	// pinning — the §3 argument.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	std, pin, cc := parse(tab.Rows[0][3]), parse(tab.Rows[1][3]), parse(tab.Rows[2][3])
	if pin <= std {
		t.Errorf("pinning (%.2f) did not beat LRU (%.2f)", pin, std)
	}
	if cc <= pin {
		t.Errorf("compression cache (%.2f) did not beat pinning (%.2f)", cc, pin)
	}
}

func TestCompressedFileCacheExperiment(t *testing.T) {
	tab, err := CompressedFileCache(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The compressed block cache must serve hits and reduce device reads.
	if tab.Rows[1][3] == "0" {
		t.Fatal("no compressed-cache hits")
	}
	if tab.Rows[1][1] >= tab.Rows[0][1] && tab.Rows[1][2] >= tab.Rows[0][2] {
		t.Fatalf("compressed file cache helped neither time nor reads: %v vs %v", tab.Rows[1], tab.Rows[0])
	}
}

func TestLFSComparison(t *testing.T) {
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Fits-compressed regime: the cache eliminates I/O entirely and must
	// beat LFS, which still reads every fault from disk.
	tab, err := LFSComparison(1, 512, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	lfs, cc := parse(tab.Rows[1][4]), parse(tab.Rows[2][4])
	if lfs <= 1 {
		t.Errorf("LFS speedup %.2f, want > 1 (batched segment writes remove write seeks)", lfs)
	}
	if cc <= lfs {
		t.Errorf("compression cache (%.2f) did not beat LFS (%.2f) in the fits-compressed regime", cc, lfs)
	}
}

func TestMultiprogramming(t *testing.T) {
	tab, err := Multiprogramming(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Two compressible processes collectively thrash; the cache must win.
	if s := parse(tab.Rows[0][3]); s <= 1.2 {
		t.Errorf("compressible mix speedup %.2f, want > 1.2", s)
	}
	// With an incompressible process in the mix the win shrinks but the
	// compressible member must still make the mix a net win.
	if s := parse(tab.Rows[1][3]); s <= 0.9 {
		t.Errorf("mixed mix speedup %.2f, want > 0.9", s)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("1,2", `say "hi"`)
	tab.AddRow("3", "4")
	got := tab.CSV()
	want := "a,b\n\"1,2\",\"say \"\"hi\"\"\"\n3,4\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestModelValidation(t *testing.T) {
	tab, err := ModelValidation(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		// The idealized model and the simulator must agree within ~3x;
		// tighter agreement is workload-phase dependent.
		if ratio < 0.33 || ratio > 3 {
			t.Errorf("%s: measured/model = %.2f, want within [0.33, 3]", row[0], ratio)
		}
	}
}
