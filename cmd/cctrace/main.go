// Command cctrace records and replays page-reference traces, so one
// workload execution can be re-examined under different machine
// configurations — the classic trace-driven-simulation workflow — and
// inspects the machine's observability stream while doing it.
//
// Usage:
//
//	cctrace -record trace.cct -workload thrasher_rw -size 8 -mem 2
//	cctrace -replay trace.cct -mem 2 -cc
//	cctrace -replay trace.cct -mem 2 -cc -events run.jsonl -summary
//	cctrace -replay trace.cct -mem 2 -cc -timeline -classes fault,flush
//	cctrace -info trace.cct
//
// The -events, -timeline and -summary views attach the machine's event bus
// for the run: -events exports the retained event window as JSONL ("-" for
// stdout), -timeline prints it as an aligned virtual-time table, and
// -summary prints per-class event counts plus the metrics-registry snapshot
// (counters, gauges, virtual-latency histograms). -classes narrows which
// event classes are traced; -ring bounds how many events are retained.
// Everything printed is in virtual time and deterministic for a fixed seed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"slices"

	"compcache/internal/machine"
	"compcache/internal/obs"
	"compcache/internal/trace"
	"compcache/internal/workload"
)

// obsOptions carries the observability flags shared by -record and -replay.
type obsOptions struct {
	events   string // JSONL export path, "-" = stdout, "" = off
	timeline bool
	summary  bool
	classes  string
	ring     int
}

// enabled reports whether the run needs a bus at all.
func (o obsOptions) enabled() bool {
	return o.events != "" || o.timeline || o.summary
}

// options returns the machine options that attach the bus when any view is
// requested.
func (o obsOptions) options() []machine.Option {
	if !o.enabled() {
		return nil
	}
	mask, err := obs.ParseClasses(o.classes)
	fatal(err)
	return []machine.Option{machine.WithObs(obs.Options{Classes: mask, RingSize: o.ring})}
}

// report prints the requested views of the machine's run.
func (o obsOptions) report(m *machine.Machine) {
	if !o.enabled() {
		return
	}
	events := m.Events()
	if o.events != "" {
		out := os.Stdout
		if o.events != "-" {
			f, err := os.Create(o.events)
			fatal(err)
			defer f.Close()
			out = f
		}
		w := bufio.NewWriter(out)
		fatal(obs.WriteEventsJSONL(w, events))
		fatal(w.Flush())
		if o.events != "-" {
			fmt.Printf("wrote %d event(s) to %s\n", len(events), o.events)
		}
	}
	if dropped := m.Introspect().Bus.Dropped(); dropped > 0 {
		fmt.Printf("note: ring retained the last %d event(s); %d older one(s) dropped (raise -ring to keep more)\n",
			len(events), dropped)
	}
	if o.timeline {
		w := bufio.NewWriter(os.Stdout)
		fatal(obs.WriteTimeline(w, events))
		fatal(w.Flush())
	}
	if o.summary {
		fmt.Printf("events by class (%d retained):\n", len(events))
		fatal(obs.WriteClassSummary(os.Stdout, events))
		if snap := m.Metrics(); snap != nil {
			fmt.Println("metrics:")
			fmt.Print(snap)
		}
	}
}

func main() {
	record := flag.String("record", "", "record the workload's trace to this file")
	replay := flag.String("replay", "", "replay the trace in this file")
	info := flag.String("info", "", "print a summary of the trace in this file")
	name := flag.String("workload", "thrasher_rw", "workload to record (thrasher_ro, thrasher_rw, filescan)")
	memMB := flag.Int("mem", 2, "user memory in MB")
	sizeMB := flag.Int("size", 6, "working-set size in MB")
	useCC := flag.Bool("cc", false, "enable the compression cache (replay)")
	seed := flag.Int64("seed", 1, "random seed")
	var ob obsOptions
	flag.StringVar(&ob.events, "events", "", "export the run's event stream as JSONL to this file ('-' = stdout)")
	flag.BoolVar(&ob.timeline, "timeline", false, "print the run's event timeline (virtual time)")
	flag.BoolVar(&ob.summary, "summary", false, "print per-class event counts and the metrics snapshot")
	flag.StringVar(&ob.classes, "classes", "all", "event classes to trace, comma-separated (see obs docs); 'all' or 'none'")
	flag.IntVar(&ob.ring, "ring", 0, "event ring capacity (0 = default; oldest events drop beyond it)")
	flag.Parse()

	switch {
	case *record != "":
		doRecord(*record, *name, *memMB, *sizeMB, *seed, ob)
	case *replay != "":
		doReplay(*replay, *memMB, *useCC, *seed, ob)
	case *info != "":
		doInfo(*info)
	default:
		fmt.Fprintln(os.Stderr, "cctrace: one of -record, -replay or -info is required")
		os.Exit(2)
	}
}

func doRecord(path, name string, memMB, sizeMB int, seed int64, ob obsOptions) {
	m, err := machine.New(machine.Default(int64(memMB)<<20), ob.options()...)
	fatal(err)
	var rec trace.Recorder
	m.VM.SetTraceHook(rec.Note)

	pages := int32(sizeMB << 20 / 4096)
	var w workload.Workload
	switch name {
	case "thrasher_ro":
		w = &workload.Thrasher{Pages: pages, Write: false, Passes: 2, Seed: seed}
	case "thrasher_rw":
		w = &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}
	case "filescan":
		w = &workload.FileScan{FileBytes: int64(sizeMB) << 20, Passes: 2, Seed: seed}
	default:
		fmt.Fprintf(os.Stderr, "cctrace: unknown workload %q\n", name)
		os.Exit(2)
	}
	fatal(w.Run(m))

	f, err := os.Create(path)
	fatal(err)
	defer f.Close()
	n, err := rec.WriteTo(f)
	fatal(err)
	fmt.Printf("recorded %d references (%d bytes) from %s to %s\n",
		len(rec.Refs), n, w.Name(), path)
	ob.report(m)
}

func doReplay(path string, memMB int, useCC bool, seed int64, ob obsOptions) {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	refs, err := trace.ReadTrace(f)
	fatal(err)

	cfg := machine.Default(int64(memMB) << 20)
	mode := "baseline"
	if useCC {
		cfg = cfg.WithCC()
		mode = "compression cache"
	}
	m, st, err := workload.MeasureMachine(cfg, &workload.Replay{Refs: refs, Seed: seed}, ob.options()...)
	fatal(err)
	fmt.Printf("replayed %d references on %d MB (%s)\n\n", len(refs), memMB, mode)
	fmt.Print(st)
	ob.report(m)
}

func doInfo(path string) {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	refs, err := trace.ReadTrace(f)
	fatal(err)
	segs := map[int32]int32{}
	writes := 0
	for _, r := range refs {
		if r.Page >= segs[r.Seg] {
			segs[r.Seg] = r.Page + 1
		}
		if r.Write {
			writes++
		}
	}
	fmt.Printf("%s: %d references, %d segment(s), %.1f%% writes\n",
		path, len(refs), len(segs), 100*float64(writes)/float64(max(len(refs), 1)))
	ids := make([]int32, 0, len(segs))
	for seg := range segs {
		ids = append(ids, seg)
	}
	slices.Sort(ids)
	for _, seg := range ids {
		fmt.Printf("  segment %d: %d pages (%.1f MB)\n", seg, segs[seg], float64(segs[seg])*4096/(1<<20))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(1)
	}
}
