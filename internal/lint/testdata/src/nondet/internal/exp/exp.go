// Package exp is the table-side half of the nondet golden fixture,
// matched by the analyzer's internal/exp package-suffix rule.
package exp

// Table is a minimal experiment table; AddRow is a nondet sink.
type Table struct{ Rows [][]string }

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }
