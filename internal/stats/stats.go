// Package stats collects the counters every layer of the simulated machine
// reports: fault counts, compression outcomes, disk traffic, and the derived
// quantities the paper's tables use (compression ratio, fraction of
// uncompressible pages, average page access time).
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"compcache/internal/obs"
)

// VM aggregates virtual-memory events.
type VM struct {
	Refs        uint64 // simulated memory references issued by the workload
	Faults      uint64 // page faults taken (page not resident uncompressed)
	ColdFaults  uint64 // faults on never-before-touched pages
	CacheHits   uint64 // faults satisfied from the compression cache
	SwapIns     uint64 // faults that required reading the backing store
	RemoteIns   uint64 // faults satisfied by remote fleet memory (cluster runs)
	Evictions   uint64 // resident pages evicted to make room
	WriteBacks  uint64 // dirty pages pushed out of uncompressed memory
	PinnedSkips uint64 // evictions skipped because the page was pinned
}

// Compression aggregates codec activity.
type Compression struct {
	Compressions    uint64 // pages compressed
	Decompressions  uint64 // pages decompressed
	BytesIn         uint64 // uncompressed bytes fed to the codec
	BytesOut        uint64 // compressed bytes produced (successful only)
	Incompressible  uint64 // pages whose ratio missed the retention threshold
	CompressibleIn  uint64 // uncompressed bytes of pages that met the threshold
	CompressibleOut uint64 // compressed bytes of pages that met the threshold
}

// Ratio reports the overall compression ratio achieved on pages that met the
// retention threshold, expressed as the paper expresses it: the fraction of
// bytes remaining after compression (smaller is better; 0.25 means 4:1).
// It reports 1 if nothing compressed.
func (c Compression) Ratio() float64 {
	if c.CompressibleIn == 0 {
		return 1
	}
	return float64(c.CompressibleOut) / float64(c.CompressibleIn)
}

// UncompressibleFrac reports the fraction of compression attempts that
// failed the retention threshold (Table 1's "Uncompressible pages (%)").
func (c Compression) UncompressibleFrac() float64 {
	if c.Compressions == 0 {
		return 0
	}
	return float64(c.Incompressible) / float64(c.Compressions)
}

// Disk aggregates backing-store traffic.
type Disk struct {
	Reads        uint64 // read operations issued to the device
	Writes       uint64 // write operations issued to the device
	BytesRead    uint64
	BytesWritten uint64
	Seeks        uint64        // operations that paid a seek
	BusyTime     time.Duration // total device busy time
	Retries      uint64        // failed transfers retried (network page server)
}

// Faults aggregates injected faults and the paging stack's response to them.
// The Injected* counters come from the fault injector; the detection and
// recovery counters come from the machine's integrity checks.
type Faults struct {
	InjectedReadErrors  uint64 // device reads failed by the injector
	InjectedWriteErrors uint64 // device writes failed by the injector
	InjectedCorruptions uint64 // compressed fragments with a flipped bit
	InjectedSpikes      uint64 // operations that paid an injected latency spike
	CorruptionsDetected uint64 // fragment checksum/codec verification failures
	Recoveries          uint64 // corrupt fragments recovered from a lower level
	InjectedCrashes     uint64 // power cuts injected mid device write
	RecoveredSegments   uint64 // durable segments/commit records accepted at mount
	TornWritesDiscarded uint64 // checksum-failed records discarded by recovery
}

// Any reports whether any fault activity was recorded.
func (f Faults) Any() bool { return f != Faults{} }

// CC aggregates compression-cache events.
type CC struct {
	Inserts      uint64 // pages placed into the cache
	Hits         uint64 // lookups satisfied by the cache
	Misses       uint64 // lookups that fell through to the backing store
	CleanWrites  uint64 // dirty compressed pages persisted by the cleaner
	FrameGrows   uint64 // physical frames added to the cache
	FrameShrinks uint64 // physical frames reclaimed from the cache
	Dropped      uint64 // clean entries discarded without I/O
	MidReclaims  uint64 // frames reclaimed from the middle of the ring
}

// HitRate reports the fraction of compression-cache lookups that hit.
func (c CC) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Swap aggregates backing-store bookkeeping above the raw device.
type Swap struct {
	PagesOut      uint64 // logical pages written to the backing store
	PagesIn       uint64 // logical pages read from the backing store
	FragsLive     uint64 // current live fragments (clustered store only)
	FragsFree     uint64 // current free (dead) fragments
	GCs           uint64 // garbage-collection passes
	GCBytesCopied uint64 // live bytes moved by GC
}

// Run is the full stats block one simulation produces, organized as nested
// per-subsystem views: Stats().VM, .CC, .Swap, .Disk, .Faults.
type Run struct {
	VM     VM
	Comp   Compression
	Disk   Disk
	CC     CC
	Swap   Swap
	Faults Faults

	Time  time.Duration // virtual execution time of the workload
	Extra map[string]float64

	// Metrics is the machine's obs-registry snapshot (counters, gauges,
	// virtual-latency histograms), nil when the machine ran without an
	// observability bus. It is deterministic — sorted by name with fixed
	// buckets — so DeepEqual comparisons between runs remain valid.
	Metrics *obs.Snapshot
}

// AddExtra records a named auxiliary metric (workload-specific).
func (r *Run) AddExtra(name string, v float64) {
	if r.Extra == nil {
		r.Extra = make(map[string]float64)
	}
	r.Extra[name] = v
}

// AvgAccess reports the mean virtual time per simulated memory reference,
// the y-axis of Figure 3(a).
func (r Run) AvgAccess() time.Duration {
	if r.VM.Refs == 0 {
		return 0
	}
	return r.Time / time.Duration(r.VM.Refs)
}

// String renders the block in a compact human-readable layout used by
// cmd/ccsim.
func (r Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time            %v\n", r.Time)
	fmt.Fprintf(&b, "refs            %d (avg %v/ref)\n", r.VM.Refs, r.AvgAccess())
	fmt.Fprintf(&b, "faults          %d (cold %d, cc-hit %d, swap-in %d)\n",
		r.VM.Faults, r.VM.ColdFaults, r.VM.CacheHits, r.VM.SwapIns)
	fmt.Fprintf(&b, "evictions       %d (writebacks %d)\n", r.VM.Evictions, r.VM.WriteBacks)
	fmt.Fprintf(&b, "compressions    %d (ratio %.2f, uncompressible %.1f%%)\n",
		r.Comp.Compressions, r.Comp.Ratio(), 100*r.Comp.UncompressibleFrac())
	fmt.Fprintf(&b, "decompressions  %d\n", r.Comp.Decompressions)
	fmt.Fprintf(&b, "cc              inserts %d hits %d misses %d (hit rate %.1f%%)\n",
		r.CC.Inserts, r.CC.Hits, r.CC.Misses, 100*r.CC.HitRate())
	fmt.Fprintf(&b, "disk            %d reads / %d writes, %s in / %s out, busy %v\n",
		r.Disk.Reads, r.Disk.Writes, bytesStr(r.Disk.BytesRead), bytesStr(r.Disk.BytesWritten), r.Disk.BusyTime)
	fmt.Fprintf(&b, "swap            %d pages out / %d pages in, %d GCs\n",
		r.Swap.PagesOut, r.Swap.PagesIn, r.Swap.GCs)
	if r.Faults.Any() {
		fmt.Fprintf(&b, "faults-injected %d read-err %d write-err %d corrupt %d spikes (detected %d, recovered %d)\n",
			r.Faults.InjectedReadErrors, r.Faults.InjectedWriteErrors, r.Faults.InjectedCorruptions,
			r.Faults.InjectedSpikes, r.Faults.CorruptionsDetected, r.Faults.Recoveries)
	}
	if r.Faults.InjectedCrashes > 0 || r.Faults.RecoveredSegments > 0 || r.Faults.TornWritesDiscarded > 0 {
		fmt.Fprintf(&b, "crash           %d injected, %d segments recovered, %d torn writes discarded\n",
			r.Faults.InjectedCrashes, r.Faults.RecoveredSegments, r.Faults.TornWritesDiscarded)
	}
	if len(r.Extra) > 0 {
		keys := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "extra           %s = %g\n", k, r.Extra[k])
		}
	}
	return b.String()
}

func bytesStr(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
