// Dbindex: the paper's losing case — a main-memory inverted-index database
// (the Gold Mailer's index engine) whose pages compress barely 2:1 and whose
// queries fault nonsequentially. Runs all three phases (create, cold queries,
// warm queries) on both machines and shows the compression cache getting in
// the way, as Table 1 reports (0.90x / 0.80x / 0.73x).
//
//	go run ./examples/dbindex [-messages n] [-mem MB]
package main

import (
	"flag"
	"fmt"
	"log"

	"compcache"
)

func main() {
	messages := flag.Int("messages", 8000, "mail messages to index")
	memMB := flag.Int("mem", 1, "physical memory in MB")
	flag.Parse()

	base := compcache.Default(int64(*memMB) << 20)
	cc := base.WithCC()

	fmt.Printf("gold index engine: %d messages, %d MB of memory\n\n", *messages, *memMB)
	fmt.Printf("%-12s  %-10s  %-10s  %-8s  %-6s  %s\n",
		"phase", "std", "cc", "speedup", "paper", "ratio%")

	phases := []struct {
		phase compcache.Gold
		paper float64
	}{
		{compcache.Gold{Phase: compcache.GoldCreate}, 0.90},
		{compcache.Gold{Phase: compcache.GoldCold}, 0.80},
		{compcache.Gold{Phase: compcache.GoldWarm}, 0.73},
	}
	for _, p := range phases {
		w := &compcache.Gold{
			Messages:        *messages,
			WordsPerMessage: 24,
			VocabWords:      3000,
			Queries:         *messages / 2,
			Phase:           p.phase.Phase,
			Seed:            11,
		}
		cmp, err := compcache.RunBoth(base, cc, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %-10v  %-10v  %-8.2f  %-6.2f  %.0f\n",
			p.phase.Phase, cmp.Std.Time.Round(1e6), cmp.CC.Time.Round(1e6),
			cmp.Speedup(), p.paper, 100*cmp.CC.Comp.Ratio())
	}

	fmt.Println("\npoor compression plus nonsequential faults: each fault needs a full")
	fmt.Println("4-KByte read from the backing store, so the cache's smaller uncompressed")
	fmt.Println("memory costs more faults than its hits save (§5.2).")
}
