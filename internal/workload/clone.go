package workload

import "reflect"

// Cloner is implemented by workloads whose Run mutates state that a shallow
// copy of the receiver would share (nested slices, member workloads).
type Cloner interface {
	// CloneWorkload returns an independent copy safe to Run concurrently
	// with the receiver.
	CloneWorkload() Workload
}

// Clone returns a copy of w that can Run concurrently with the original.
// Workloads are pointers to parameter structs, and Run is allowed to write
// defaulted parameters and result fields back through the receiver, so
// sharing one value between concurrently running machines would be a data
// race even though the runs are logically independent. Clone gives every
// run its own receiver: workloads implementing Cloner choose their own deep
// copy; any other pointer-to-struct workload is copied shallowly (their Run
// writes only scalar fields of the struct itself). Because a clone carries
// the exact same parameters, a cloned run produces identical results to
// running the original.
func Clone(w Workload) Workload {
	if c, ok := w.(Cloner); ok {
		return c.CloneWorkload()
	}
	v := reflect.ValueOf(w)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		return w
	}
	cp := reflect.New(v.Elem().Type())
	cp.Elem().Set(v.Elem())
	return cp.Interface().(Workload)
}

// CloneWorkload implements Cloner: member workloads are cloned too, so two
// machines running the same mix never share member state.
func (mw *Multi) CloneWorkload() Workload {
	cp := &Multi{QuantumRefs: mw.QuantumRefs, Workloads: make([]Workload, len(mw.Workloads))}
	for i, w := range mw.Workloads {
		cp.Workloads[i] = Clone(w)
	}
	return cp
}

// CloneWorkload implements Cloner: the recorded miss rates are results, not
// parameters, so the clone starts with its own slice rather than appending
// into a backing array shared with the original; the block-size list is
// copied because Run defaults it in place.
func (c *CacheSim) CloneWorkload() Workload {
	cp := *c
	cp.missRates = nil
	cp.BlockWordsList = append([]int(nil), c.BlockWordsList...)
	return &cp
}
