// Package effects is the unit-test fixture for the effect-inference
// engine: one function per allocation kind, plus a mutually recursive
// pair that exercises the fixed point. No golden test selects this
// package; effects_test.go asserts on the inferred facts directly.
package effects

// CompositeLit allocates a slice literal: steady.
func CompositeLit() []int {
	return []int{1, 2, 3}
}

// AppendFresh grows a function-local slice: steady.
func AppendFresh(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// AppendParam appends into the caller's buffer: amortized, and the
// result escapes to the caller.
func AppendParam(dst []byte, b byte) []byte {
	return append(dst, b)
}

// StringConv converts string to []byte: steady.
func StringConv(s string) []byte {
	return []byte(s)
}

func use(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

// Boxing passes a concrete struct to an interface parameter: steady.
func Boxing(p struct{ a, b int }) int {
	return use(p)
}

// Closure returns a capturing closure: steady.
func Closure() func() int {
	n := 7
	return func() int { return n }
}

// MapWrite inserts into a caller-owned map: amortized (rehash).
func MapWrite(m map[int]int, k, v int) {
	m[k] = v
}

// Clean does arithmetic only: no effects.
func Clean(a, b int) int {
	return a + b
}

// Ping and Pong are mutually recursive; Pong allocates, so the fixed
// point must converge with both summaries marked steady.
func Ping(n int) []byte {
	if n == 0 {
		return nil
	}
	return Pong(n - 1)
}

// Pong allocates and recurses back into Ping.
func Pong(n int) []byte {
	buf := make([]byte, 1)
	if n == 0 {
		return buf
	}
	return Ping(n - 1)
}
