package sim

import "compcache/internal/snap"

// SnapshotTo serializes the clock for a machine snapshot.
func (c *Clock) SnapshotTo(w *snap.Writer) {
	w.Section("sim.clock")
	w.I64(int64(c.now))
}

// RestoreFrom rewinds (or advances) the clock to a snapshotted instant.
func (c *Clock) RestoreFrom(r *snap.Reader) error {
	r.Section("sim.clock")
	now := Time(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	c.now = now
	return nil
}
