// Package trace generates synthetic memory-reference traces.
//
// The cache-simulator workload (the paper's "isca", Dubnicki & LeBlanc's
// adjustable-block-size coherent-cache study) consumes a multiprocessor
// address trace; the paper's authors drove it with real traces we do not
// have, so this package synthesizes traces with controllable locality and
// sharing, which preserves what matters for the reproduction: the simulator
// is CPU- and memory-intensive and its tables are what the compression cache
// sees.
//
// Generators are deterministic for a given seed.
package trace

import "math/rand"

// Ref is one memory reference.
type Ref struct {
	CPU   int
	Addr  uint64
	Write bool
}

// Generator produces a stream of references. Next reports done=true when
// the trace is exhausted.
type Generator interface {
	Next() (ref Ref, done bool)
}

// Uniform generates n references uniformly over [0, Range), with the given
// write fraction, from ncpu processors round-robin.
type Uniform struct {
	N         int
	Range     uint64
	WriteFrac float64
	CPUs      int
	Seed      int64

	i   int
	rng *rand.Rand
}

// Next implements Generator.
func (u *Uniform) Next() (Ref, bool) {
	if u.rng == nil {
		u.rng = rand.New(rand.NewSource(u.Seed))
		if u.CPUs == 0 {
			u.CPUs = 1
		}
	}
	if u.i >= u.N {
		return Ref{}, true
	}
	r := Ref{
		CPU:   u.i % u.CPUs,
		Addr:  uint64(u.rng.Int63n(int64(u.Range))),
		Write: u.rng.Float64() < u.WriteFrac,
	}
	u.i++
	return r, false
}

// Zipf generates n references with Zipfian popularity over Range addresses
// (hot data shared across CPUs, the canonical coherence stressor).
type Zipf struct {
	N         int
	Range     uint64
	Skew      float64 // zipf s parameter, > 1
	WriteFrac float64
	CPUs      int
	Seed      int64

	i    int
	rng  *rand.Rand
	zipf *rand.Zipf
}

// Next implements Generator.
func (z *Zipf) Next() (Ref, bool) {
	if z.rng == nil {
		z.rng = rand.New(rand.NewSource(z.Seed))
		if z.CPUs == 0 {
			z.CPUs = 1
		}
		s := z.Skew
		if s <= 1 {
			s = 1.2
		}
		z.zipf = rand.NewZipf(z.rng, s, 1, z.Range-1)
	}
	if z.i >= z.N {
		return Ref{}, true
	}
	r := Ref{
		CPU:   z.i % z.CPUs,
		Addr:  z.zipf.Uint64(),
		Write: z.rng.Float64() < z.WriteFrac,
	}
	z.i++
	return r, false
}

// Strided generates sequential strided sweeps (matrix-walk locality): each
// CPU walks its own partition with the given stride, wrapping around, with
// periodic writes.
type Strided struct {
	N         int
	Range     uint64
	Stride    uint64
	WriteFrac float64
	CPUs      int
	Seed      int64

	i   int
	pos []uint64
	rng *rand.Rand
}

// Next implements Generator.
func (s *Strided) Next() (Ref, bool) {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.Seed))
		if s.CPUs == 0 {
			s.CPUs = 1
		}
		if s.Stride == 0 {
			s.Stride = 4
		}
		s.pos = make([]uint64, s.CPUs)
		part := s.Range / uint64(s.CPUs)
		for c := range s.pos {
			s.pos[c] = uint64(c) * part
		}
	}
	if s.i >= s.N {
		return Ref{}, true
	}
	cpu := s.i % s.CPUs
	part := s.Range / uint64(s.CPUs)
	base := uint64(cpu) * part
	addr := s.pos[cpu]
	s.pos[cpu] = base + (addr-base+s.Stride)%part
	r := Ref{CPU: cpu, Addr: addr, Write: s.rng.Float64() < s.WriteFrac}
	s.i++
	return r, false
}

// Mix interleaves several generators round-robin until all are exhausted.
type Mix struct {
	Gens []Generator
	i    int
	done []bool
	left int
}

// Next implements Generator.
func (m *Mix) Next() (Ref, bool) {
	if m.done == nil {
		m.done = make([]bool, len(m.Gens))
		m.left = len(m.Gens)
	}
	for m.left > 0 {
		idx := m.i % len(m.Gens)
		m.i++
		if m.done[idx] {
			continue
		}
		r, done := m.Gens[idx].Next()
		if done {
			m.done[idx] = true
			m.left--
			continue
		}
		return r, false
	}
	return Ref{}, true
}

// Collect drains a generator into a slice (for tests and small traces).
func Collect(g Generator) []Ref {
	var refs []Ref
	for {
		r, done := g.Next()
		if done {
			return refs
		}
		refs = append(refs, r)
	}
}

// Stats summarizes a trace: distinct addresses, write fraction, and a
// locality score (mean reuse distance bucket).
type Stats struct {
	Refs      int
	Distinct  int
	WriteFrac float64
}

// Summarize computes trace statistics.
func Summarize(refs []Ref) Stats {
	seen := make(map[uint64]struct{})
	writes := 0
	for _, r := range refs {
		seen[r.Addr] = struct{}{}
		if r.Write {
			writes++
		}
	}
	st := Stats{Refs: len(refs), Distinct: len(seen)}
	if len(refs) > 0 {
		st.WriteFrac = float64(writes) / float64(len(refs))
	}
	return st
}
