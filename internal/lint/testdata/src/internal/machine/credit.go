package machine

// Miniature shadows of the real machine's collaborators, enough for the
// clockcredit analyzer's syntactic view.

type clock struct{}

func (clock) Advance(d int64) {}

// kernel shadows the discrete-event kernel: Wait and Schedule are the
// kernel-side charging calls an attached clock's Advance resolves to.
type kernel struct{}

func (kernel) Wait(id int32, until int64) int64 { return until }

func (kernel) Schedule(at int64, id int32) {}

type codec struct{}

func (codec) Compress(dst, src []byte) []byte { return src }

func (codec) Decompress(dst, src []byte) ([]byte, error) { return src, nil }

type store struct{}

func (store) Write(key int, data []byte) {}

func (store) Read(key int, buf []byte) bool { return false }

// Machine mirrors the real struct's device fields.
type Machine struct {
	Clock  *clock
	kern   *kernel
	codec  codec
	direct store
}

// BadCompress does codec work without charging the clock.
func (m *Machine) BadCompress(data []byte) []byte {
	return m.codec.Compress(nil, data) // want `BadCompress performs codec/disk work but never advances the virtual clock`
}

// BadWrite touches the backing store uncharged.
func (m *Machine) BadWrite(data []byte) {
	m.direct.Write(0, data) // want `BadWrite performs codec/disk work but never advances the virtual clock`
}

// BadViaHelper reaches uncharged work through an unexported helper; the
// exported entry point is what gets flagged, at its declaration line.
func (m *Machine) BadViaHelper(data []byte) { // want `BadViaHelper reaches codec/disk work via unchargedWrite`
	m.unchargedWrite(data)
}

func (m *Machine) unchargedWrite(data []byte) {
	m.direct.Write(0, data)
}

// GoodCompress charges the clock in the same body.
func (m *Machine) GoodCompress(data []byte) []byte {
	m.Clock.Advance(int64(len(data)))
	return m.codec.Compress(nil, data)
}

// GoodViaHelper charges through a same-package helper; credit propagates
// transitively.
func (m *Machine) GoodViaHelper(data []byte) {
	m.chargedWrite(data)
}

func (m *Machine) chargedWrite(data []byte) {
	m.Clock.Advance(1)
	m.direct.Write(0, data)
}

// GoodNoOps does no chargeable work at all; nothing to flag.
func (m *Machine) GoodNoOps() int { return 0 }

// GoodKernelWait charges through the kernel API: a kernel-mediated wait is
// how an attached clock advances, so it credits exactly like Advance.
func (m *Machine) GoodKernelWait(data []byte) []byte {
	m.kern.Wait(0, int64(len(data)))
	return m.codec.Compress(nil, data)
}

// GoodKernelSchedule credits through the kernel's timer API.
func (m *Machine) GoodKernelSchedule(data []byte) {
	m.kern.Schedule(10, 0)
	m.direct.Write(0, data)
}
