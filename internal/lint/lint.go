// Package lint is the project's custom static-analysis framework (cclint).
//
// The reproduction rests on two invariants that ordinary tooling does not
// enforce:
//
//  1. Virtual-time purity — simulated costs come only from the virtual
//     clock in internal/sim. A single stray time.Now() turns the paper's
//     Table 1 / Figure 3 numbers into artifacts of the host machine.
//  2. Determinism — every experiment is byte-identical at any -j. One
//     unseeded rand call or one map iteration feeding an output stream
//     silently breaks the guarantee.
//
// cclint turns those tribal rules into CI-enforced law. The framework is
// deliberately stdlib-only (go/ast, go/parser, go/token): the build
// environment has no network, so golang.org/x/tools is off the table, and
// the analyses are all syntactic, so nothing heavier is needed.
//
// Findings can be suppressed, one line at a time, with a written reason:
//
//	start := time.Now() //cclint:ignore walltime -- host-time progress report
//
// or, as a standalone comment, on the line directly below it. The reason
// after "--" is mandatory; a directive without one is itself a finding, as
// is a directive that no longer suppresses anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Package is one parsed Go package as the analyzers see it: syntax only,
// no type information, with the import path preserved so analyzers can
// scope themselves (e.g. clockcredit runs only on internal/machine).
type Package struct {
	// Path is the slash-separated import path, e.g.
	// "compcache/internal/machine".
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Lines holds each file's raw source split into lines, keyed the same
	// way Fset positions name files. The ignore machinery uses it to tell
	// trailing directives from standalone ones.
	Lines map[string][]string
}

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional compiler-style form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over a single package.
type Analyzer interface {
	// Name is the identifier used in output and in ignore directives.
	Name() string
	// Doc is a one-line description of what the analyzer enforces.
	Doc() string
	// Check reports all findings in pkg.
	Check(pkg *Package) []Diagnostic
}

// All returns the full cclint analyzer suite, in stable order.
func All() []Analyzer {
	return []Analyzer{
		Walltime{},
		GlobalRand{},
		MapRange{},
		ClockCredit{},
	}
}

// diag builds a Diagnostic at a node's position.
func diag(pkg *Package, name string, n ast.Node, format string, args ...any) Diagnostic {
	pos := pkg.Fset.Position(n.Pos())
	return Diagnostic{
		Analyzer: name,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Run applies every analyzer to every package, filters the findings
// through the //cclint:ignore directives, appends directive-hygiene
// findings (missing reason, unknown analyzer, unused directive), and
// returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectIgnores(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			raw = append(raw, a.Check(pkg)...)
		}
		for _, d := range raw {
			if dirs.suppress(d) {
				continue
			}
			out = append(out, d)
		}
		out = append(out, dirs.hygiene()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
