// Package sim is the obscoverage fixture's virtual clock.
package sim

import "time"

// Time is a virtual instant.
type Time int64

// Clock is the fixture's virtual clock.
type Clock struct{ now Time }

// Now reports the current virtual instant.
func (c *Clock) Now() Time { return c.now }

// Advance charges d of virtual time.
func (c *Clock) Advance(d time.Duration) { c.now += Time(d) }

// AdvanceTo moves the clock forward to t.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}
