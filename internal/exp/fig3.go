package exp

import (
	"context"
	"fmt"
	"time"

	"compcache/internal/machine"
	"compcache/internal/runner"
	"compcache/internal/stats"
	"compcache/internal/workload"
)

// Fig3Point is one x position of Figure 3: one address-space size measured
// four ways.
type Fig3Point struct {
	SizeMB    int
	StdRW     time.Duration // average page access, unmodified system, read/write
	CCRW      time.Duration // with compression cache, read/write
	StdRO     time.Duration // unmodified, read-only
	CCRO      time.Duration // with compression cache, read-only
	SpeedRW   float64       // Figure 3(b): StdRW / CCRW
	SpeedRO   float64       // Figure 3(b): StdRO / CCRO
	CCHitRW   float64
	CCHitRO   float64
	CompRatio float64
}

// Fig3Result is the full sweep.
type Fig3Result struct {
	MemoryMB int
	Points   []Fig3Point
}

// Fig3Options sizes the experiment.
type Fig3Options struct {
	// MemoryMB is user-available memory; the paper uses ~6.
	MemoryMB int
	// SizesMB are the address-space sizes to sweep; the paper sweeps 0-40.
	SizesMB []int
	// Passes is the number of timed access sweeps after initialization.
	Passes int
	// Seed makes runs reproducible.
	Seed int64
	// Parallelism caps how many machines run concurrently: 0 means one per
	// core, 1 forces serial execution; the output is byte-identical either
	// way.
	Parallelism int
}

// DefaultFig3Options returns the sweep for the given scale.
func DefaultFig3Options(s Scale) Fig3Options {
	if s == Paper {
		return Fig3Options{
			MemoryMB: 6,
			SizesMB:  []int{2, 4, 6, 8, 10, 12, 15, 20, 25, 30, 35, 40},
			Passes:   2,
			Seed:     1,
		}
	}
	return Fig3Options{
		MemoryMB: 2,
		SizesMB:  []int{1, 2, 3, 4, 6, 8},
		Passes:   2,
		Seed:     1,
	}
}

// Fig3 runs the §5.1 thrasher sweep: average page access time and speedup
// versus address-space size, read-only and read-write, with and without the
// compression cache. Each size contributes four independent machines
// ({read-write, read-only} x {baseline, cc}); the whole grid fans out
// across opts.Parallelism workers and the points assemble in size order.
func Fig3(opts Fig3Options) (*Fig3Result, error) {
	memBytes := int64(opts.MemoryMB) << 20
	// Four measurements per size, in a fixed sub-order: rw/std, rw/cc,
	// ro/std, ro/cc.
	type spec struct {
		sizeMB int
		write  bool
		cc     bool
	}
	specs := make([]spec, 0, 4*len(opts.SizesMB))
	for _, sizeMB := range opts.SizesMB {
		for _, write := range []bool{true, false} {
			for _, cc := range []bool{false, true} {
				specs = append(specs, spec{sizeMB, write, cc})
			}
		}
	}
	runs, err := runner.Map(context.Background(), runner.Parallelism(opts.Parallelism), len(specs),
		func(_ context.Context, i int) (stats.Run, error) {
			s := specs[i]
			cfg := machine.Default(memBytes)
			if s.cc {
				cfg = cfg.WithCC()
			}
			st, err := workload.Measure(cfg, &workload.Thrasher{
				Pages: int32(s.sizeMB << 20 / 4096), Write: s.write, Passes: opts.Passes, Seed: opts.Seed})
			if err != nil {
				return stats.Run{}, fmt.Errorf("fig3 %dMB write=%v: %w", s.sizeMB, s.write, err)
			}
			return st, nil
		})
	if err != nil {
		return nil, err
	}

	res := &Fig3Result{MemoryMB: opts.MemoryMB}
	sweeps := (&workload.Thrasher{Passes: opts.Passes}).TimedSweeps()
	for si, sizeMB := range opts.SizesMB {
		pages := int32(sizeMB << 20 / 4096)
		touches := time.Duration(sweeps) * time.Duration(pages)
		rwStd, rwCC, roStd, roCC := runs[4*si], runs[4*si+1], runs[4*si+2], runs[4*si+3]
		pt := Fig3Point{
			SizeMB:    sizeMB,
			StdRW:     rwStd.Time / touches,
			CCRW:      rwCC.Time / touches,
			StdRO:     roStd.Time / touches,
			CCRO:      roCC.Time / touches,
			SpeedRW:   workload.Comparison{Std: rwStd, CC: rwCC}.Speedup(),
			SpeedRO:   workload.Comparison{Std: roStd, CC: roCC}.Speedup(),
			CCHitRW:   rwCC.CC.HitRate(),
			CCHitRO:   roCC.CC.HitRate(),
			CompRatio: rwCC.Comp.Ratio(),
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Tables implements Result.
func (r *Fig3Result) Tables() []*Table { return []*Table{r.TableA(), r.TableB()} }

// TableA renders Figure 3(a): average page access time per curve.
func (r *Fig3Result) TableA() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3(a): average page access time (user memory %d MB)", r.MemoryMB),
		Header: []string{"size(MB)", "std_rw", "cc_rw", "std_ro", "cc_ro"},
		Note:   "std = unmodified system, cc = compression cache; _rw touches write one word per page, _ro only read.",
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.SizeMB),
			fmt.Sprint(p.StdRW.Round(time.Microsecond)),
			fmt.Sprint(p.CCRW.Round(time.Microsecond)),
			fmt.Sprint(p.StdRO.Round(time.Microsecond)),
			fmt.Sprint(p.CCRO.Round(time.Microsecond)))
	}
	return t
}

// TableB renders Figure 3(b): speedup relative to the unmodified system.
func (r *Fig3Result) TableB() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3(b): speedup relative to the unmodified system (user memory %d MB)", r.MemoryMB),
		Header: []string{"size(MB)", "cc_rw", "cc_ro", "hit_rw", "hit_ro", "ratio"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.SizeMB),
			fmt.Sprintf("%.2f", p.SpeedRW),
			fmt.Sprintf("%.2f", p.SpeedRO),
			fmt.Sprintf("%.2f", p.CCHitRW),
			fmt.Sprintf("%.2f", p.CCHitRO),
			fmt.Sprintf("%.2f", p.CompRatio))
	}
	return t
}
