package workload

import (
	"fmt"
	"math/rand"

	"compcache/internal/machine"
)

// Thrasher is the §5.1 program "contrived to thrash the VM system": it
// cycles linearly through a working set, reading (and optionally writing)
// one word of memory on each page each time through. With LRU replacement
// and a working set larger than memory, every access faults, so the ratio
// between compression speed and I/O speed bounds the speedup — the maximum
// possible improvement for the configuration (Figure 3).
type Thrasher struct {
	// Pages is the working-set size in pages (the paper's x axis, "size of
	// address space", sweeps this from a few MB to 40 MB).
	Pages int32

	// Write makes each touch modify the page (the paper's _rw lines);
	// otherwise pages are only read after initialization (_ro).
	Write bool

	// Passes is how many sweeps to time; the paper's numbers stabilize
	// after the first (cold) pass, which Run performs during setup.
	Passes int

	// CompressTarget tunes page contents' compressibility; the paper's
	// thrasher pages "compress roughly 4:1", i.e. 0.25. Zero selects 0.25.
	CompressTarget float64

	// PinFraction pins this fraction of the working set in memory before
	// the access sweeps — the §3 advisory: "half the pages could
	// effectively be pinned in memory with faults occurring only on the
	// other half". Pinning competes with everything else for frames, so it
	// only helps when LRU would otherwise behave pathologically.
	PinFraction float64

	// Seed makes runs reproducible.
	Seed int64
}

// TimedSweeps reports the number of full working-set sweeps the timed run
// performs: the initialization write sweep plus the Passes access sweeps.
// Figure 3's average page access time is Elapsed / (TimedSweeps * Pages).
func (t *Thrasher) TimedSweeps() int {
	passes := t.Passes
	if passes <= 0 {
		passes = 2
	}
	return passes + 1
}

// Name implements Workload.
func (t *Thrasher) Name() string {
	if t.Write {
		return "thrasher_rw"
	}
	return "thrasher_ro"
}

// Run implements Workload.
func (t *Thrasher) Run(m *machine.Machine) error {
	if t.Pages <= 0 {
		return fmt.Errorf("thrasher: Pages must be positive")
	}
	passes := t.Passes
	if passes <= 0 {
		passes = 2
	}
	target := t.CompressTarget
	if target == 0 {
		target = 0.25
	}
	pageSize := m.Config().PageSize
	s := m.NewSegment("thrasher", int64(t.Pages)*int64(pageSize))

	// The paper measures the whole program, so the initialization sweep —
	// which writes every page once and is the source of the dirty-writeback
	// traffic interleaved with reads — is part of the timed run.
	m.MarkStart()
	rng := rand.New(rand.NewSource(t.Seed))
	buf := make([]byte, pageSize)
	for p := int32(0); p < t.Pages; p++ {
		fillTunable(rng, buf, target)
		s.Write(int64(p)*int64(pageSize), buf)
	}

	if t.PinFraction > 0 {
		n := int32(float64(t.Pages) * t.PinFraction)
		limit := int32(float64(m.Pool.Total()) * 0.9) // leave headroom for the sweep
		if n > limit {
			n = limit
		}
		for p := int32(0); p < n; p++ {
			s.Pin(p)
		}
	}

	for pass := 0; pass < passes; pass++ {
		for p := int32(0); p < t.Pages; p++ {
			if t.Write {
				// Read-modify-write one word, as the paper describes.
				off := int64(p) * int64(pageSize)
				v := s.ReadWord(off)
				s.WriteWord(off, v+1)
			} else {
				s.Touch(p, false)
			}
		}
	}
	m.Drain()
	return nil
}
