package exp

import (
	"context"
	"fmt"

	"compcache/internal/compress"
	"compcache/internal/fault"
	"compcache/internal/machine"
	"compcache/internal/runner"
	"compcache/internal/swap"
	"compcache/internal/workload"
)

// maxCrashPoints caps the trials per leg: each trial replays the whole run,
// so sweeping every one of W writes costs O(W^2). Legs with more writes are
// stride-sampled (first write onward, even stride) and the table reports the
// sampled/total ratio rather than pretending the sweep was exhaustive.
const maxCrashPoints = 64

// CrashSweep crash-tests the recoverable backing-store formats. For each leg
// — the durable log-structured baseline, then the compressed machine once
// per registered codec — it first runs a write-heavy thrasher fault-free to
// count the run's device writes, then replays the run with the power cut at
// the k-th write (every write, stride-sampled past maxCrashPoints), reboots
// a machine from the torn media image, and holds the recovery to the
// crash-consistency oracle: no acknowledged-durable page lost, no torn
// fragment served. Every sampled crash point of every leg must verify for
// the experiment to produce a table at all; the table reports what recovery
// saw along the way.
func CrashSweep(ctx context.Context, memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: crash-point sweep (power cut at the k-th device write, reboot, recover, verify)",
		Header: []string{"configuration", "crash points", "recovered pages", "stale", "torn discarded", "verified"},
		Note: "Each crash point is one full run killed at its k-th device write; 'crash points' is\n" +
			"sampled/total writes. 'recovered pages' sums the pages recovery reindexed across all crash\n" +
			"points; 'torn discarded' counts checksum-failed records the scanner refused. A row only\n" +
			"prints if every sampled crash point passed the oracle.",
	}
	// A quarter overcommit keeps the write count tractable (each write is a
	// crash point, each crash point a full replay) while still paging.
	// Near-incompressible pages force the compression cache to reject most
	// of them to the clustered store — crash points need device writes to
	// cut.
	frames := int32(int64(memoryMB) << 20 / 4096)
	pages := frames + frames/4
	w := &workload.Thrasher{Pages: pages, Write: true, Passes: 1, CompressTarget: 0.85, Seed: seed}

	type leg struct {
		name string
		cfg  machine.Config
	}
	base := machine.Default(int64(memoryMB) << 20)
	legs := []leg{{"lfs (durable)", base.WithLFS(swap.LFSConfig{Durable: true, Paranoid: true})}}
	for _, codec := range compress.Names() {
		cfg := base.WithCC()
		cfg.CC.Codec = codec
		cfg.Swap.CommitRecords = true
		cfg.Swap.Paranoid = true
		legs = append(legs, leg{"cc/" + codec, cfg})
	}
	for _, l := range legs {
		sampled, writes, rep, err := crashSweepLeg(ctx, l.cfg, w, seed, workers)
		if err != nil {
			return nil, fmt.Errorf("crash sweep %s: %w", l.name, err)
		}
		t.AddRow(l.name,
			fmt.Sprintf("%d/%d", sampled, writes),
			fmt.Sprintf("%d", rep.RecoveredPages),
			fmt.Sprintf("%d", rep.StalePages),
			fmt.Sprintf("%d", rep.TornDiscarded),
			fmt.Sprintf("%d/%d ok", sampled, sampled))
	}
	return t, nil
}

// crashSweepLeg runs one configuration's sweep and returns the sampled and
// total crash-point counts plus the summed recovery reports.
func crashSweepLeg(ctx context.Context, cfg machine.Config, w workload.Workload, seed int64, workers int) (int, int, swap.RecoveryReport, error) {
	// Fault-free run: count the device writes. Each is one crash point, and
	// the crash replays are byte-identical up to their cut, so writes 1..W
	// all occur in every replay.
	st, err := workload.Measure(cfg, workload.Clone(w))
	if err != nil {
		return 0, 0, swap.RecoveryReport{}, err
	}
	writes := int(st.Disk.Writes)
	stride := (writes + maxCrashPoints - 1) / maxCrashPoints
	if stride < 1 {
		stride = 1
	}
	points := make([]uint64, 0, maxCrashPoints)
	for k := 1; k <= writes; k += stride {
		points = append(points, uint64(k))
	}

	reps, err := runner.Map(ctx, runner.Parallelism(workers), len(points),
		func(_ context.Context, i int) (swap.RecoveryReport, error) {
			return crashTrial(cfg, workload.Clone(w), seed, points[i])
		})
	if err != nil {
		return 0, 0, swap.RecoveryReport{}, err
	}
	var total swap.RecoveryReport
	for _, rep := range reps {
		total.ScannedSegments += rep.ScannedSegments
		total.RecoveredSegments += rep.RecoveredSegments
		total.RecoveredPages += rep.RecoveredPages
		total.StalePages += rep.StalePages
		total.TornDiscarded += rep.TornDiscarded
	}
	return len(points), writes, total, nil
}

// crashTrial kills one run at its k-th device write, reboots from the torn
// media, and verifies the recovered store against the crashed machine's
// in-memory state.
func crashTrial(cfg machine.Config, w workload.Workload, seed int64, k uint64) (swap.RecoveryReport, error) {
	crashed := cfg.WithFaults(fault.Config{Seed: seed, CrashAtWrite: k})
	m, err := machine.New(crashed)
	if err != nil {
		return swap.RecoveryReport{}, err
	}
	// The dead machine's Space accessors are no-ops, so the workload runs to
	// its natural end; any error it reports must trace back to the cut.
	if err := w.Run(m); err != nil && !fault.IsCrash(err) {
		return swap.RecoveryReport{}, fmt.Errorf("crash point %d: run failed before the cut: %w", k, err)
	}
	if !m.Introspect().Injector.Crashed() {
		return swap.RecoveryReport{}, fmt.Errorf("crash point %d: the cut never fired (run has fewer writes than the baseline)", k)
	}
	if merr := m.Err(); merr != nil && !fault.IsCrash(merr) {
		return swap.RecoveryReport{}, fmt.Errorf("crash point %d: machine died of a non-crash error: %w", k, merr)
	}

	reborn, err := machine.NewFromMedia(cfg, m.FS.Image())
	if err != nil {
		return swap.RecoveryReport{}, fmt.Errorf("crash point %d: reboot failed: %w", k, err)
	}
	stores, rebornStores := m.Introspect(), reborn.Introspect()
	switch {
	case stores.Clustered != nil:
		err = rebornStores.Clustered.VerifyRecovery(stores.Clustered)
	case stores.LFS != nil:
		err = rebornStores.LFS.VerifyRecovery(stores.LFS)
	default:
		err = fmt.Errorf("no recoverable store")
	}
	if err != nil {
		return swap.RecoveryReport{}, fmt.Errorf("crash point %d: %w", k, err)
	}
	if err := reborn.CheckInvariants(); err != nil {
		return swap.RecoveryReport{}, fmt.Errorf("crash point %d: rebooted machine fails invariants: %w", k, err)
	}
	return *rebornStores.Recovery, nil
}
