package exp

import (
	"context"
	"fmt"
	"math"
	"time"

	"compcache/internal/fault"
	"compcache/internal/machine"
	"compcache/internal/runner"
	"compcache/internal/stats"
	"compcache/internal/workload"
)

// FaultPoint is one fault rate of the robustness sweep: several independent
// trials of the same workload under injected device errors, latency spikes
// and fragment corruption.
type FaultPoint struct {
	Rate     float64 // per-opportunity probability for every fault class
	Trials   int
	Survived int           // trials that completed despite the faults
	MeanTime time.Duration // mean elapsed virtual time among survivors
	Overhead float64       // survivor mean / fault-free mean (1.0 at rate 0)
	Faults   stats.Faults  // fault activity summed over all trials (died trials included)
}

// SurvivalPct reports the fraction of trials that completed, in percent.
func (p FaultPoint) SurvivalPct() float64 {
	if p.Trials == 0 {
		return 0
	}
	return 100 * float64(p.Survived) / float64(p.Trials)
}

// FaultsResult is the full sweep.
type FaultsResult struct {
	MemoryMB int
	BaseTime time.Duration // fault-free mean elapsed time (the rate-0 row)
	Points   []FaultPoint
}

// FaultsOptions sizes the robustness experiment.
type FaultsOptions struct {
	// MemoryMB is user-available memory for the thrashing workload.
	MemoryMB int
	// Pages is the workload's working-set size in pages.
	Pages int32
	// Rates are the per-opportunity fault probabilities to sweep. A rate is
	// applied uniformly to device read errors, device write errors and both
	// corruption classes; latency spikes — transient by nature, so far more
	// common than hard faults in practice — fire at 50x the rate (capped at
	// 1) to make their overhead visible at rates where the machine still
	// survives. Must include 0 (or the overhead column has no baseline).
	Rates []float64
	// Trials is how many independent trials run per rate; each trial keeps
	// the workload fixed and varies only the injector seed.
	Trials int
	// Seed derives every trial's injector seed.
	Seed int64
	// Parallelism caps concurrent machines (0 = one per core, 1 = serial);
	// the output is byte-identical at any value.
	Parallelism int
}

// DefaultFaultsOptions returns the sweep for the given scale.
func DefaultFaultsOptions(s Scale) FaultsOptions {
	if s == Paper {
		return FaultsOptions{MemoryMB: 6, Pages: 4096, Rates: []float64{0, 1e-4, 1e-3, 1e-2}, Trials: 8, Seed: 1}
	}
	return FaultsOptions{MemoryMB: 1, Pages: 640, Rates: []float64{0, 1e-4, 1e-3, 1e-2}, Trials: 4, Seed: 1}
}

// faultTrial is one trial's outcome. Dying to injected faults is an expected
// result at high rates, so it is data, not an error: returning it as a value
// keeps runner.Map dispatching the remaining trials. Died trials still carry
// their stats (the faults injected up to the point of death).
type faultTrial struct {
	run  stats.Run
	died bool
}

// measureTrial is workload.Measure with one difference: an unrecoverable
// paging failure returns the machine's stats as of the death instead of
// discarding them, so the sweep can report fault activity for died trials.
func measureTrial(cfg machine.Config, w workload.Workload) (faultTrial, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return faultTrial{}, err
	}
	err = w.Run(m)
	if err == nil {
		err = m.Err()
	}
	if fault.IsUnrecoverable(err) {
		return faultTrial{run: m.Stats(), died: true}, nil
	}
	if err != nil {
		return faultTrial{}, err
	}
	if err := m.CheckInvariants(); err != nil {
		return faultTrial{}, fmt.Errorf("post-run invariant violation: %w", err)
	}
	return faultTrial{run: m.Stats()}, nil
}

// FaultSweep measures overhead and survival versus fault rate: the same
// thrashing workload runs Trials times per rate on a compression-cache
// machine whose injector fails device transfers, stalls the device and flips
// bits in compressed fragments. A trial survives when every lost fragment
// could be re-fetched from a lower level; it dies (typed, never a panic)
// when the only copy of a page is gone. Only injector seeds vary between
// trials, so the sweep is deterministic at any parallelism.
func FaultSweep(opts FaultsOptions) (*FaultsResult, error) {
	if opts.Trials <= 0 || len(opts.Rates) == 0 {
		return nil, fmt.Errorf("faults: need at least one rate and one trial")
	}
	memBytes := int64(opts.MemoryMB) << 20
	type spec struct {
		rate float64
		seed int64
	}
	specs := make([]spec, 0, len(opts.Rates)*opts.Trials)
	for ri, rate := range opts.Rates {
		for tr := 0; tr < opts.Trials; tr++ {
			specs = append(specs, spec{rate, opts.Seed + int64(ri)*1_000_003 + int64(tr)})
		}
	}
	trials, err := runner.Map(context.Background(), runner.Parallelism(opts.Parallelism), len(specs),
		func(_ context.Context, i int) (faultTrial, error) {
			s := specs[i]
			cfg := machine.Default(memBytes).WithCC()
			if s.rate > 0 {
				cfg = cfg.WithFaults(fault.Config{
					Seed:                s.seed,
					ReadErrorRate:       s.rate,
					WriteErrorRate:      s.rate,
					CacheCorruptionRate: s.rate,
					SwapCorruptionRate:  s.rate,
					LatencySpikeRate:    math.Min(1, 50*s.rate),
					LatencySpike:        2 * time.Millisecond,
				})
			}
			trial, err := measureTrial(cfg, &workload.Thrasher{Pages: opts.Pages, Write: true, Passes: 1, Seed: opts.Seed})
			if err != nil {
				return faultTrial{}, fmt.Errorf("faults rate=%g trial seed=%d: %w", s.rate, s.seed, err)
			}
			return trial, nil
		})
	if err != nil {
		return nil, err
	}

	res := &FaultsResult{MemoryMB: opts.MemoryMB}
	for ri, rate := range opts.Rates {
		pt := FaultPoint{Rate: rate, Trials: opts.Trials}
		var total time.Duration
		for tr := 0; tr < opts.Trials; tr++ {
			t := trials[ri*opts.Trials+tr]
			// Fault activity counts for every trial — a died trial's
			// injections up to the death are part of the picture.
			f := t.run.Faults
			pt.Faults.InjectedReadErrors += f.InjectedReadErrors
			pt.Faults.InjectedWriteErrors += f.InjectedWriteErrors
			pt.Faults.InjectedCorruptions += f.InjectedCorruptions
			pt.Faults.InjectedSpikes += f.InjectedSpikes
			pt.Faults.CorruptionsDetected += f.CorruptionsDetected
			pt.Faults.Recoveries += f.Recoveries
			if t.died {
				continue
			}
			pt.Survived++
			total += t.run.Time
		}
		if pt.Survived > 0 {
			pt.MeanTime = total / time.Duration(pt.Survived)
		}
		if rate == 0 {
			res.BaseTime = pt.MeanTime
		}
		res.Points = append(res.Points, pt)
	}
	for i := range res.Points {
		if res.BaseTime > 0 && res.Points[i].MeanTime > 0 {
			res.Points[i].Overhead = float64(res.Points[i].MeanTime) / float64(res.BaseTime)
		}
	}
	return res, nil
}

// Tables implements Result.
func (r *FaultsResult) Tables() []*Table { return []*Table{r.Table()} }

// Table renders the sweep: survival and overhead versus fault rate.
func (r *FaultsResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fault injection: overhead and survival vs fault rate (user memory %d MB)", r.MemoryMB),
		Header: []string{"rate", "trials", "survived", "survival%", "mean_time", "overhead", "inj_err", "inj_spike", "inj_corrupt", "detected", "recovered"},
		Note: "rate applies per device op and per fragment; overhead is survivor mean time over the fault-free mean.\n" +
			"detected = checksum/codec verification failures, recovered = corrupt fragments re-fetched from a clean copy.",
	}
	for _, p := range r.Points {
		mean := "-"
		if p.Survived > 0 {
			mean = fmt.Sprint(p.MeanTime.Round(time.Millisecond))
		}
		overhead := "-"
		if p.Overhead > 0 {
			overhead = fmt.Sprintf("%.2f", p.Overhead)
		}
		t.AddRow(fmt.Sprintf("%g", p.Rate),
			fmt.Sprint(p.Trials),
			fmt.Sprint(p.Survived),
			fmt.Sprintf("%.0f", p.SurvivalPct()),
			mean,
			overhead,
			fmt.Sprint(p.Faults.InjectedReadErrors+p.Faults.InjectedWriteErrors),
			fmt.Sprint(p.Faults.InjectedSpikes),
			fmt.Sprint(p.Faults.InjectedCorruptions),
			fmt.Sprint(p.Faults.CorruptionsDetected),
			fmt.Sprint(p.Faults.Recoveries))
	}
	return t
}
