package fault

import (
	"math/rand"

	"compcache/internal/sim"
	"compcache/internal/snap"
)

// SnapshotTo serializes the injector: its counters, the crash-point state,
// and — crucially — the number of raw PRNG draws consumed so far. The
// generator itself is not serialized; RestoreFrom replays it from the seed,
// which is exact because countingSource counts at the Source level where
// rand.Rand's rejection sampling bottoms out.
func (in *Injector) SnapshotTo(w *snap.Writer) {
	w.Section("fault.injector")
	w.U64(in.src.n)
	w.U64(in.st.InjectedReadErrors)
	w.U64(in.st.InjectedWriteErrors)
	w.U64(in.st.InjectedCorruptions)
	w.U64(in.st.InjectedSpikes)
	w.U64(in.st.InjectedCrashes)
	w.U64(in.writeSeq)
	w.I64(int64(in.crashAt))
	w.Bool(in.crashed)
	w.I64(int64(in.crashTime))
}

// RestoreFrom rebuilds the injector's state, re-synchronizing the PRNG by
// drawing from a fresh source seeded with the configured seed until the
// snapshotted draw count is reached. The restored generator then produces
// the exact sequence the original would have.
func (in *Injector) RestoreFrom(r *snap.Reader) error {
	r.Section("fault.injector")
	n := r.U64()
	readErrs := r.U64()
	writeErrs := r.U64()
	corruptions := r.U64()
	spikes := r.U64()
	crashes := r.U64()
	writeSeq := r.U64()
	crashAt := sim.Time(r.I64())
	crashed := r.Bool()
	crashTime := sim.Time(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	in.src.src = rand.NewSource(in.cfg.Seed)
	for i := uint64(0); i < n; i++ {
		in.src.src.Int63()
	}
	in.src.n = n
	in.st.InjectedReadErrors = readErrs
	in.st.InjectedWriteErrors = writeErrs
	in.st.InjectedCorruptions = corruptions
	in.st.InjectedSpikes = spikes
	in.st.InjectedCrashes = crashes
	in.writeSeq = writeSeq
	in.crashAt = crashAt
	in.crashed = crashed
	in.crashTime = crashTime
	return nil
}
