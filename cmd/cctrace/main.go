// Command cctrace records and replays page-reference traces, so one
// workload execution can be re-examined under different machine
// configurations — the classic trace-driven-simulation workflow.
//
// Usage:
//
//	cctrace -record trace.cct -workload thrasher_rw -size 8 -mem 2
//	cctrace -replay trace.cct -mem 2 -cc
//	cctrace -info trace.cct
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"

	"compcache/internal/machine"
	"compcache/internal/trace"
	"compcache/internal/workload"
)

func main() {
	record := flag.String("record", "", "record the workload's trace to this file")
	replay := flag.String("replay", "", "replay the trace in this file")
	info := flag.String("info", "", "print a summary of the trace in this file")
	name := flag.String("workload", "thrasher_rw", "workload to record (thrasher_ro, thrasher_rw, filescan)")
	memMB := flag.Int("mem", 2, "user memory in MB")
	sizeMB := flag.Int("size", 6, "working-set size in MB")
	useCC := flag.Bool("cc", false, "enable the compression cache (replay)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	switch {
	case *record != "":
		doRecord(*record, *name, *memMB, *sizeMB, *seed)
	case *replay != "":
		doReplay(*replay, *memMB, *useCC, *seed)
	case *info != "":
		doInfo(*info)
	default:
		fmt.Fprintln(os.Stderr, "cctrace: one of -record, -replay or -info is required")
		os.Exit(2)
	}
}

func doRecord(path, name string, memMB, sizeMB int, seed int64) {
	m, err := machine.New(machine.Default(int64(memMB) << 20))
	fatal(err)
	var rec trace.Recorder
	m.VM.SetTraceHook(rec.Note)

	pages := int32(sizeMB << 20 / 4096)
	var w workload.Workload
	switch name {
	case "thrasher_ro":
		w = &workload.Thrasher{Pages: pages, Write: false, Passes: 2, Seed: seed}
	case "thrasher_rw":
		w = &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}
	case "filescan":
		w = &workload.FileScan{FileBytes: int64(sizeMB) << 20, Passes: 2, Seed: seed}
	default:
		fmt.Fprintf(os.Stderr, "cctrace: unknown workload %q\n", name)
		os.Exit(2)
	}
	fatal(w.Run(m))

	f, err := os.Create(path)
	fatal(err)
	defer f.Close()
	n, err := rec.WriteTo(f)
	fatal(err)
	fmt.Printf("recorded %d references (%d bytes) from %s to %s\n",
		len(rec.Refs), n, w.Name(), path)
}

func doReplay(path string, memMB int, useCC bool, seed int64) {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	refs, err := trace.ReadTrace(f)
	fatal(err)

	cfg := machine.Default(int64(memMB) << 20)
	mode := "baseline"
	if useCC {
		cfg = cfg.WithCC()
		mode = "compression cache"
	}
	st, err := workload.Measure(cfg, &workload.Replay{Refs: refs, Seed: seed})
	fatal(err)
	fmt.Printf("replayed %d references on %d MB (%s)\n\n", len(refs), memMB, mode)
	fmt.Print(st)
}

func doInfo(path string) {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	refs, err := trace.ReadTrace(f)
	fatal(err)
	segs := map[int32]int32{}
	writes := 0
	for _, r := range refs {
		if r.Page >= segs[r.Seg] {
			segs[r.Seg] = r.Page + 1
		}
		if r.Write {
			writes++
		}
	}
	fmt.Printf("%s: %d references, %d segment(s), %.1f%% writes\n",
		path, len(refs), len(segs), 100*float64(writes)/float64(max(len(refs), 1)))
	ids := make([]int32, 0, len(segs))
	for seg := range segs {
		ids = append(ids, seg)
	}
	slices.Sort(ids)
	for _, seg := range ids {
		fmt.Printf("  segment %d: %d pages (%.1f MB)\n", seg, segs[seg], float64(segs[seg])*4096/(1<<20))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(1)
	}
}
