package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"compcache/internal/sim"
)

func TestNilBusSafe(t *testing.T) {
	var b *Bus
	if b.Enabled(ClassFault) {
		t.Fatal("nil bus reports enabled")
	}
	b.Emit(Event{Class: ClassFault})
	if b.Len() != 0 || b.Dropped() != 0 || b.Mask() != 0 {
		t.Fatal("nil bus has state")
	}
	if b.Events() != nil {
		t.Fatal("nil bus returned events")
	}
	if b.Registry() != nil || b.Snapshot() != nil {
		t.Fatal("nil bus returned registry/snapshot")
	}
	// Handles from a nil bus are nil and must absorb all operations.
	c, g, h := b.Counter("x"), b.Gauge("x"), b.Histogram("x")
	c.Add(3)
	c.Inc()
	g.Set(9)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles accumulated state")
	}
}

func TestMaskFiltering(t *testing.T) {
	b := NewBus(Options{Classes: ClassFault | ClassFlush})
	if !b.Enabled(ClassFault) || !b.Enabled(ClassFlush) {
		t.Fatal("enabled classes not reported")
	}
	if b.Enabled(ClassEvict) {
		t.Fatal("disabled class reported enabled")
	}
	b.Emit(Event{Class: ClassFault})
	b.Emit(Event{Class: ClassEvict}) // filtered
	b.Emit(Event{Class: ClassFlush})
	got := b.Events()
	if len(got) != 2 || got[0].Class != ClassFault || got[1].Class != ClassFlush {
		t.Fatalf("events = %v, want [fault flush]", got)
	}
}

func TestZeroOptionsSelectAll(t *testing.T) {
	b := NewBus(Options{})
	if b.Mask() != ClassAll {
		t.Fatalf("mask = %v, want all", b.Mask())
	}
	if cap(b.ring) != DefaultRingSize {
		t.Fatalf("ring cap = %d, want %d", cap(b.ring), DefaultRingSize)
	}
}

func TestRingWrap(t *testing.T) {
	b := NewBus(Options{RingSize: 4})
	for i := 0; i < 10; i++ {
		b.Emit(Event{T: sim.Time(i), Class: ClassFault})
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", b.Dropped())
	}
	got := b.Events()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, e := range got {
		if e.T != sim.Time(6+i) {
			t.Fatalf("event %d has T=%d, want %d (oldest dropped, order kept)", i, e.T, 6+i)
		}
	}
}

// TestRingExactCapacityBoundaries pins the wrap behavior at the exact
// edges: filling the ring to capacity drops nothing and keeps emission
// order; one event past capacity drops exactly the oldest; a full second
// lap drops exactly one capacity's worth and retains the last lap in
// order. Off-by-ones here silently truncate traces from the wrong end.
func TestRingExactCapacityBoundaries(t *testing.T) {
	const ringSize = 8
	fill := func(n int) *Bus {
		b := NewBus(Options{RingSize: ringSize})
		for i := 0; i < n; i++ {
			b.Emit(Event{T: sim.Time(i), Class: ClassFault})
		}
		return b
	}
	cases := []struct {
		name        string
		emitted     int
		wantDropped uint64
		wantFirst   sim.Time
	}{
		{"exactly-capacity", ringSize, 0, 0},
		{"capacity-plus-one", ringSize + 1, 1, 1},
		{"twice-capacity", 2 * ringSize, ringSize, ringSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := fill(tc.emitted)
			if b.Dropped() != tc.wantDropped {
				t.Fatalf("dropped = %d, want %d", b.Dropped(), tc.wantDropped)
			}
			if b.Len() != ringSize {
				t.Fatalf("len = %d, want %d (ring stays full once filled)", b.Len(), ringSize)
			}
			got := b.Events()
			if len(got) != ringSize {
				t.Fatalf("Events() returned %d events, want %d", len(got), ringSize)
			}
			for i, e := range got {
				if want := tc.wantFirst + sim.Time(i); e.T != want {
					t.Fatalf("event %d has T=%d, want %d (oldest-first after wrap)", i, e.T, want)
				}
			}
			// Conservation at the boundary: every emission is either
			// retained or counted as dropped, never both, never neither.
			if got := uint64(b.Len()) + b.Dropped(); got != uint64(tc.emitted) {
				t.Fatalf("retained+dropped = %d, want %d emitted", got, tc.emitted)
			}
		})
	}
}

func TestRegistryReuse(t *testing.T) {
	var r Registry
	c1 := r.Counter("a")
	c1.Inc()
	if c2 := r.Counter("a"); c2 != c1 || c2.Value() != 1 {
		t.Fatal("counter not reused")
	}
	h1 := r.Histogram("h")
	h1.Observe(time.Microsecond)
	if h2 := r.Histogram("h"); h2 != h1 || h2.Count() != 1 {
		t.Fatal("histogram not reused")
	}
	g1 := r.Gauge("g")
	g1.Set(7)
	if g2 := r.Gauge("g"); g2 != g1 || g2.Value() != 7 {
		t.Fatal("gauge not reused")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var r Registry
	h := r.Histogram("svc")
	h.Observe(500 * time.Nanosecond)  // first bucket (≤1µs)
	h.Observe(1500 * time.Nanosecond) // ≤2µs
	h.Observe(10 * time.Second)       // past the 5s top of the ladder: overflow
	s := r.Snapshot()
	hs, ok := s.Hist("svc")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 3 || hs.Min != 500*time.Nanosecond || hs.Max != 10*time.Second {
		t.Fatalf("summary = %+v", hs)
	}
	want := []Bucket{
		{Le: time.Microsecond, Count: 1},
		{Le: 2 * time.Microsecond, Count: 1},
		{Le: -1, Count: 1},
	}
	if !reflect.DeepEqual(hs.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", hs.Buckets, want)
	}
	if hs.Mean() != hs.Sum/3 {
		t.Fatalf("mean = %v", hs.Mean())
	}
}

func TestSnapshotSorted(t *testing.T) {
	var r Registry
	r.Counter("zeta").Inc()
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(1)
	r.Gauge("aaa").Set(2)
	s := r.Snapshot()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %v", s.Counters)
	}
	if s.Gauges[0].Name != "aaa" || s.Gauges[1].Name != "mid" {
		t.Fatalf("gauges not sorted: %v", s.Gauges)
	}
	if s.Counter("alpha") != 2 || s.Counter("missing") != 0 {
		t.Fatal("snapshot counter lookup")
	}
}

func TestClassString(t *testing.T) {
	if got := ClassFault.String(); got != "fault" {
		t.Fatalf("ClassFault = %q", got)
	}
	if got := (ClassCCHit | ClassFlush).String(); got != "cc_hit|flush" {
		t.Fatalf("mask = %q", got)
	}
	if got := Class(0).String(); got != "none" {
		t.Fatalf("zero = %q", got)
	}
	if got := SubNet.String(); got != "netdev" {
		t.Fatalf("SubNet = %q", got)
	}
}

func TestExportersDeterministic(t *testing.T) {
	events := []Event{
		{T: 100, Class: ClassFault, Sub: SubVM, Seg: 1, Page: 2, Dur: 3 * time.Microsecond, Aux: FaultSrcCC},
		{T: 250, Class: ClassDiskWrite, Sub: SubDisk, Bytes: 4096, Dur: time.Millisecond, Aux: 120},
	}
	var a, b bytes.Buffer
	if err := WriteEventsJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteEventsJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL not deterministic")
	}
	want := `{"t":100,"class":"fault","sub":"vm","seg":1,"page":2,"bytes":0,"dur":3000,"aux":1}` + "\n" +
		`{"t":250,"class":"disk_write","sub":"disk","seg":0,"page":0,"bytes":4096,"dur":1000000,"aux":120}` + "\n"
	if a.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", a.String(), want)
	}

	var c bytes.Buffer
	if err := WriteEventsCSV(&c, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if len(lines) != 3 || lines[0] != "t,class,sub,seg,page,bytes,dur,aux" {
		t.Fatalf("CSV:\n%s", c.String())
	}
	if lines[1] != "100,fault,vm,1,2,0,3000,1" {
		t.Fatalf("CSV row: %s", lines[1])
	}
}

func TestSnapshotCSV(t *testing.T) {
	var r Registry
	r.Counter("events.fault").Add(5)
	r.Gauge("cc.frames").Set(12)
	r.Histogram("vm.fault_service").Observe(2 * time.Microsecond)
	s := r.Snapshot()
	out := s.String()
	wantLines := []string{
		"kind,name,value",
		"counter,events.fault,5",
		"gauge,cc.frames,12",
		"hist,vm.fault_service,count=1 sum=2000 min=2000 max=2000 le[2000]=1",
	}
	got := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !reflect.DeepEqual(got, wantLines) {
		t.Fatalf("snapshot CSV:\n%s", out)
	}
	var nilSnap *Snapshot
	if nilSnap.String() != "" {
		t.Fatal("nil snapshot renders non-empty")
	}
	if err := nilSnap.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDisabledProbe measures the per-probe cost when tracing is off:
// the overhead budget is "a few host nanoseconds" (one nil test).
func BenchmarkDisabledProbe(b *testing.B) {
	var bus *Bus
	for i := 0; i < b.N; i++ {
		if bus.Enabled(ClassFault) {
			bus.Emit(Event{Class: ClassFault})
		}
	}
}

// BenchmarkEnabledEmit measures the cost of recording one event on an
// enabled bus with a warm ring.
func BenchmarkEnabledEmit(b *testing.B) {
	bus := NewBus(Options{RingSize: 1 << 12})
	e := Event{T: 1, Class: ClassFault, Sub: SubVM, Page: 42, Dur: time.Microsecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Emit(e)
	}
}
