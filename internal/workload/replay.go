package workload

import (
	"fmt"

	"compcache/internal/machine"
	"compcache/internal/trace"
)

// Replay re-executes a recorded page-reference trace against a machine —
// the classic way to compare policies on identical input. Segments are
// recreated with the sizes the trace implies; page contents are synthesized
// at the configured compressibility (a trace records references, not data).
type Replay struct {
	// Refs is the recorded trace (see trace.Recorder / trace.ReadTrace).
	Refs []trace.PageRef

	// CompressTarget tunes the synthesized page contents (default 0.25).
	CompressTarget float64

	// Seed makes the synthesized contents reproducible.
	Seed int64
}

// Name implements Workload.
func (r *Replay) Name() string { return "replay" }

// Run implements Workload.
func (r *Replay) Run(m *machine.Machine) error {
	if len(r.Refs) == 0 {
		return fmt.Errorf("replay: empty trace")
	}
	target := r.CompressTarget
	if target == 0 {
		target = 0.25
	}
	// Size one space per segment seen in the trace.
	maxPage := map[int32]int32{}
	var order []int32
	for _, ref := range r.Refs {
		if ref.Seg < 0 || ref.Page < 0 {
			return fmt.Errorf("replay: negative segment or page in trace")
		}
		if _, seen := maxPage[ref.Seg]; !seen {
			order = append(order, ref.Seg)
		}
		if ref.Page > maxPage[ref.Seg] {
			maxPage[ref.Seg] = ref.Page
		}
	}
	pageSize := int64(m.Config().PageSize)
	spaces := map[int32]*machine.Space{}
	for _, seg := range order {
		spaces[seg] = m.NewSegment(fmt.Sprintf("replay.seg%d", seg),
			(int64(maxPage[seg])+1)*pageSize)
	}
	// Populate every referenced page with synthesized contents (setup).
	rng := newPageFiller(r.Seed, int(pageSize), target)
	seen := map[trace.PageRef]bool{}
	for _, ref := range r.Refs {
		key := trace.PageRef{Seg: ref.Seg, Page: ref.Page}
		if !seen[key] {
			seen[key] = true
			spaces[ref.Seg].Write(int64(ref.Page)*pageSize, rng.page())
		}
	}

	m.MarkStart()
	for _, ref := range r.Refs {
		spaces[ref.Seg].Touch(ref.Page, ref.Write)
	}
	m.Drain()
	return nil
}
