package lint

import (
	"regexp"
	"strings"
	"testing"
)

// The golden tests are a hand-rolled, stdlib-only analysistest: each
// fixture directory under testdata/src is loaded, the full analyzer suite
// (plus ignore-directive processing) runs over it, and every diagnostic
// must match a trailing
//
//	// want `regexp` [`regexp` ...]
//
// comment on its line — with unmatched wants and unexpected diagnostics
// both failing the test. Running the whole suite (not one analyzer per
// fixture) also locks in that analyzers do not fire on each other's clean
// examples.

// wantRE extracts the backquoted patterns after a "// want" marker.
var wantRE = regexp.MustCompile("`([^`]*)`")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants scans a package's raw source lines for want comments.
func parseWants(t *testing.T, pkg *Package) map[string]map[int][]*want {
	t.Helper()
	wants := map[string]map[int][]*want{}
	for file, lines := range pkg.Lines {
		for i, line := range lines {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, m[1], err)
				}
				if wants[file] == nil {
					wants[file] = map[int][]*want{}
				}
				wants[file][i+1] = append(wants[file][i+1], &want{re: re})
			}
		}
	}
	return wants
}

func runGolden(t *testing.T, dir string) {
	t.Helper()
	pkgs, err := Load(".", []string{dir})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	wants := parseWants(t, pkg)

	diags := Run(pkgs, All())
	for _, d := range diags {
		found := false
		for _, w := range wants[d.File][d.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want `%s`", file, line, w.re)
				}
			}
		}
	}
}

func TestWalltimeGolden(t *testing.T)   { runGolden(t, "testdata/src/walltime") }
func TestGlobalRandGolden(t *testing.T) { runGolden(t, "testdata/src/globalrand") }
func TestMapRangeGolden(t *testing.T)   { runGolden(t, "testdata/src/maprange") }
func TestIgnoreGolden(t *testing.T)     { runGolden(t, "testdata/src/ignore") }
func TestMachineFixture(t *testing.T)   { runGolden(t, "testdata/src/internal/machine") }

// TestMachineFixtureScope pins the two properties the acceptance criteria
// name: the fixture directory resolves to an import path ending in
// internal/machine (so walltime provably rejects a time.Now() injected
// there, and clockcredit is in scope), and the suite reports findings —
// which is exactly what makes `cclint <fixture-dir>` exit 1.
func TestMachineFixtureScope(t *testing.T) {
	pkgs, err := Load(".", []string{"testdata/src/internal/machine"})
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	if !strings.HasSuffix(pkg.Path, "internal/machine") {
		t.Fatalf("fixture import path %q does not end in internal/machine", pkg.Path)
	}
	diags := Run(pkgs, All())
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings; cclint would exit 0 on it")
	}
	var haveWalltime, haveCredit bool
	for _, d := range diags {
		switch d.Analyzer {
		case "walltime":
			haveWalltime = true
		case "clockcredit":
			haveCredit = true
		}
	}
	if !haveWalltime {
		t.Error("no walltime finding for time.Now() injected into internal/machine")
	}
	if !haveCredit {
		t.Error("no clockcredit finding in the machine fixture")
	}
}

// TestLoadSkipsTestdataAndTests: pattern expansion must skip testdata (so
// `cclint ./...` never trips over fixtures) and must not load _test.go
// files (whose golden host-time fixtures are out of scope).
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	pkgs, err := Load(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("pattern expansion loaded fixture package %s", pkg.Path)
		}
		for file := range pkg.Lines {
			if strings.HasSuffix(file, "_test.go") {
				t.Errorf("loaded test file %s", file)
			}
		}
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].Path, "internal/lint") {
		t.Fatalf("Load(./...) from internal/lint: got %d packages, want just compcache/internal/lint", len(pkgs))
	}
}

// TestRunOutputSorted: diagnostics come back ordered by position so
// cclint's own output is deterministic.
func TestRunOutputSorted(t *testing.T) {
	pkgs, err := Load(".", []string{"testdata/src/walltime", "testdata/src/internal/machine"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}
