package lint

import (
	"go/ast"
	"go/types"
)

// ObsCoverage keeps the observability layer honest as code grows.
//
// PR 4's contract is that traces tell the whole story: every virtual-time
// cost a subsystem charges shows up on its bus as an event, a counter or
// a histogram sample. The contract erodes one innocent method at a time —
// someone adds an exported entry point that advances the clock, forgets
// the probe, and from then on traced runs under-report that subsystem
// forever while every test stays green.
//
// The rule, enforced over the module-wide call graph: in an
// obs-instrumented package (one of the paged/charged subsystems that
// imports internal/obs), an exported function or method that transitively
// advances the virtual clock must also transitively reach a probe —
// (*obs.Bus).Emit, (*obs.Counter).Add/Inc, (*obs.Gauge).Set or
// (*obs.Histogram).Observe. Charging through a callee that probes (disk
// I/O reached via swap, say) satisfies the rule; a genuinely
// probe-free-by-design method carries an ignore directive with the reason
// written down.
type ObsCoverage struct{}

// Name implements Analyzer.
func (ObsCoverage) Name() string { return "obscoverage" }

// Doc implements Analyzer.
func (ObsCoverage) Doc() string {
	return "exported clock-advancing methods in obs-instrumented packages must reach an obs probe (or carry an ignore with a reason)"
}

// Severity implements Analyzer.
func (ObsCoverage) Severity() Severity { return SevWarn }

// obsScopes are the instrumented subsystems. internal/obs itself is not
// listed: probes do not need probes.
var obsScopes = []string{
	"internal/vm", "internal/core", "internal/swap", "internal/disk",
	"internal/netdev", "internal/machine", "internal/fault",
}

// probeFuncs are the obs methods that constitute a probe.
var probeFuncs = map[string]bool{
	"Emit": true, "Add": true, "Inc": true, "Set": true, "Observe": true,
}

// isObsProbe reports whether fn records something on an obs bus.
func isObsProbe(fn *types.Func) bool {
	return fnIn(fn, "internal/obs", probeFuncs)
}

// Check implements Analyzer.
func (o ObsCoverage) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil || pkg.Mod.Graph == nil || !inScopes(pkg.Path, obsScopes) {
		return nil
	}
	if !importsObs(pkg) {
		return nil // not instrumented (yet); nothing to cover
	}
	advances := pkg.Mod.factSet("obscoverage.advances", isClockAdvance)
	probes := pkg.Mod.factSet("obscoverage.probes", isObsProbe)

	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pkg.Mod.Info.Defs[fd.Name].(*types.Func)
			if !ok || !advances[fn] || probes[fn] {
				continue
			}
			out = append(out, diag(pkg, o.Name(), fd.Name,
				"%s advances the virtual clock but no call path reaches an obs probe; traced runs under-report this work", fd.Name.Name))
		}
	}
	return out
}

// importsObs reports whether any file of the package imports a package
// whose path ends in internal/obs.
func importsObs(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			if pathHasSuffix(importLiteral(imp), "internal/obs") {
				return true
			}
		}
	}
	return false
}
