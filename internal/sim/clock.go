// Package sim provides the virtual-time substrate for the simulated machine.
//
// The entire reproduction runs in virtual time: simulated memory references,
// page faults, compressions and disk transfers advance a Clock by costs taken
// from a machine model, so measurements are deterministic and independent of
// the Go runtime, scheduler and garbage collector. A Clock is the single
// source of "now" for every other module; ages used by the replacement
// policies and busy-until timelines used by the disk model are all expressed
// as Time values from the same clock.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation. It is a distinct type so that virtual instants cannot be mixed
// up with wall-clock instants or with durations.
type Time int64

// Duration is a span of virtual time in nanoseconds. time.Duration is used
// directly so cost models can be written with natural literals such as
// 50*time.Microsecond.
type Duration = time.Duration

// String formats a Time using time.Duration notation (e.g. "1.5ms"), which
// reads naturally for simulation timestamps.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock is a monotonically advancing virtual clock.
//
// The zero Clock is ready to use and reads time zero: a private free-running
// counter, exactly as before the discrete-event kernel existed, and
// single-machine runs use it that way. Clock is not safe for concurrent use;
// the simulation is single-threaded by design (the paper's kernel-level
// concurrency, such as the cleaner thread, is modelled with busy-until
// timelines rather than goroutines, so runs are reproducible).
//
// A Clock attached to a Kernel (see Kernel.Attach) keeps the same narrow
// interface, but Advance/AdvanceTo become kernel-mediated waits: the owning
// actor blocks until the shared time line reaches the target instant while
// globally earlier actors run. Callers cannot tell the difference — both
// flavours return the same instants for the same call sequence.
type Clock struct {
	now    Time
	kernel *Kernel //cclint:ignore snapcover -- wiring: the kernel snapshots itself separately
	actor  ActorID //cclint:ignore snapcover -- wiring: per-actor clock views are re-derived on attach
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Attached reports whether the clock is bound to a discrete-event kernel.
func (c *Clock) Attached() bool { return c.kernel != nil }

// Actor reports the kernel actor ID of an attached clock (zero otherwise).
func (c *Clock) Actor() ActorID { return c.actor }

// Advance moves the clock forward by d and returns the new time.
// Advance panics if d is negative: virtual time never runs backward.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	if d == 0 {
		return c.now
	}
	if c.kernel != nil {
		return c.kernel.Wait(c.actor, c.now+Time(d))
	}
	c.now += Time(d)
	return c.now
}

// AdvanceTo moves the clock forward to instant t. It is a no-op if t is in
// the past; this is the common "wait until the device is free" operation.
func (c *Clock) AdvanceTo(t Time) Time {
	if t <= c.now {
		return c.now
	}
	if c.kernel != nil {
		return c.kernel.Wait(c.actor, t)
	}
	c.now = t
	return c.now
}

// Elapsed reports the duration since instant t.
func (c *Clock) Elapsed(t Time) Duration { return c.now.Sub(t) }
