package machine

import (
	"fmt"
	"sort"

	"compcache/internal/compress"
	"compcache/internal/sim"
	"compcache/internal/snap"
)

// Snapshot captures the machine's complete simulation state as one opaque
// byte blob: clock, fault injector, disk timeline, frame pool contents, file
// system (platter and buffer cache), page tables and LRU order, compression
// cache ring, backing store, event bus and the machine's own counters.
// Capture is non-perturbing — no virtual time passes and no subsystem state
// changes — so a run that is snapshotted mid-flight continues byte-identical
// to one that is not.
//
// Restore rebuilds a machine from the same configuration and a snapshot;
// driving the restored machine produces exactly the virtual-time trace and
// statistics the original would have produced. Snapshot refuses dead
// machines (their simulated process is gone; boot from media instead),
// network-backed machines (the netdev has no snapshot support), and
// kernel-attached machines (the kernel owns the schedule; snapshot the fleet
// through sim.Kernel.SnapshotTo instead).
func (m *Machine) Snapshot() ([]byte, error) {
	if m.err != nil {
		return nil, fmt.Errorf("machine: cannot snapshot a dead machine: %w", m.err)
	}
	if m.cfg.Net != nil {
		return nil, fmt.Errorf("machine: snapshot of network-backed machines is not supported")
	}
	if m.Clock.Attached() {
		return nil, fmt.Errorf("machine: snapshot of kernel-attached machines goes through the kernel")
	}
	w := snap.NewWriter()
	w.Section("machine")
	m.cfg.fingerprintTo(w, m.bus != nil)

	m.Clock.SnapshotTo(w)
	w.Bool(m.faults != nil)
	if m.faults != nil {
		m.faults.SnapshotTo(w)
	}
	m.Disk.SnapshotTo(w)
	m.Pool.SnapshotTo(w)
	m.FS.SnapshotTo(w)
	m.VM.SnapshotTo(w)
	w.Bool(m.CC != nil)
	if m.CC != nil {
		m.CC.SnapshotTo(w)
	}
	switch {
	case m.clustered != nil:
		w.U8(storeClustered)
		m.clustered.SnapshotTo(w)
	case m.lfs != nil:
		w.U8(storeLFS)
		m.lfs.SnapshotTo(w)
	default:
		w.U8(storeDirect)
		m.directPlain.SnapshotTo(w)
	}
	m.bus.SnapshotTo(w)

	w.Section("machine.tail")
	w.U64(m.comp.Compressions)
	w.U64(m.comp.Decompressions)
	w.U64(m.comp.BytesIn)
	w.U64(m.comp.BytesOut)
	w.U64(m.comp.Incompressible)
	w.U64(m.comp.CompressibleIn)
	w.U64(m.comp.CompressibleOut)
	w.U64(m.fst.CorruptionsDetected)
	w.U64(m.fst.Recoveries)
	w.U64(m.fst.RecoveredSegments)
	w.U64(m.fst.TornWritesDiscarded)
	w.I64(int64(m.start))
	w.Bool(m.startFrozen)
	segs := make([]int32, 0, len(m.segCodec))
	for seg := range m.segCodec {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	w.Int(len(segs))
	for _, seg := range segs {
		w.I32(seg)
		w.String(m.segCodec[seg].Name())
	}
	return w.Bytes()
}

// Store kind tags in the snapshot stream.
const (
	storeDirect uint8 = iota
	storeLFS
	storeClustered
)

// fingerprintTo writes the configuration facts a snapshot depends on —
// including whether an event bus was attached, which lives in the options,
// not the Config — a snapshot restored under a different fingerprint would
// silently mis-simulate, so Restore rejects it instead.
func (c *Config) fingerprintTo(w *snap.Writer, obsAttached bool) {
	w.Int(c.PageSize)
	w.I64(c.MemoryBytes)
	w.Int(c.FS.BlockSize)
	w.Bool(c.CC.Enabled)
	w.String(c.CC.Codec)
	w.Bool(c.Swap.CommitRecords)
	w.Bool(c.LFSSwap != nil)
	w.Bool(c.LFSSwap != nil && c.LFSSwap.Durable)
	w.Bool(c.Faults != nil)
	w.Bool(obsAttached)
}

// checkFingerprint validates a snapshot's fingerprint against this
// (defaulted) configuration and the rebuilt machine's attachments.
func (c *Config) checkFingerprint(r *snap.Reader, obsAttached bool) error {
	pageSize := r.Int()
	memory := r.I64()
	blockSize := r.Int()
	ccEnabled := r.Bool()
	codec := r.String()
	commit := r.Bool()
	lfsPresent := r.Bool()
	lfsDurable := r.Bool()
	faults := r.Bool()
	obsPresent := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	switch {
	case pageSize != c.PageSize:
		return fmt.Errorf("machine: snapshot page size %d, config %d", pageSize, c.PageSize)
	case memory != c.MemoryBytes:
		return fmt.Errorf("machine: snapshot memory %d bytes, config %d", memory, c.MemoryBytes)
	case blockSize != c.FS.BlockSize:
		return fmt.Errorf("machine: snapshot block size %d, config %d", blockSize, c.FS.BlockSize)
	case ccEnabled != c.CC.Enabled:
		return fmt.Errorf("machine: snapshot compression cache %v, config %v", ccEnabled, c.CC.Enabled)
	case ccEnabled && codec != c.CC.Codec:
		return fmt.Errorf("machine: snapshot codec %q, config %q", codec, c.CC.Codec)
	case commit != c.Swap.CommitRecords:
		return fmt.Errorf("machine: snapshot commit records %v, config %v", commit, c.Swap.CommitRecords)
	case lfsPresent != (c.LFSSwap != nil):
		return fmt.Errorf("machine: snapshot LFS swap %v, config %v", lfsPresent, c.LFSSwap != nil)
	case lfsDurable != (c.LFSSwap != nil && c.LFSSwap.Durable):
		return fmt.Errorf("machine: snapshot LFS durability does not match the configuration")
	case faults != (c.Faults != nil):
		return fmt.Errorf("machine: snapshot fault injection %v, config %v", faults, c.Faults != nil)
	case obsPresent != obsAttached:
		return fmt.Errorf("machine: snapshot observability %v, rebuilt machine %v", obsPresent, obsAttached)
	}
	return nil
}

// Restore builds a machine from a configuration and a snapshot previously
// captured from a machine of the same configuration (pass the same Options
// the original was built with — attachment presence is fingerprinted). The
// rebuilt machine resumes exactly where the snapshot was taken: the same
// virtual clock, page placement, cache contents, device timeline, PRNG
// position and counters.
func Restore(cfg Config, data []byte, opts ...Option) (*Machine, error) {
	m, err := New(cfg, opts...)
	if err != nil {
		return nil, err
	}
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}
	r.Section("machine")
	if err := m.cfg.checkFingerprint(r, m.bus != nil); err != nil {
		return nil, err
	}

	if err := m.Clock.RestoreFrom(r); err != nil {
		return nil, err
	}
	hasFaults := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if hasFaults {
		if err := m.faults.RestoreFrom(r); err != nil {
			return nil, err
		}
	}
	if err := m.Disk.RestoreFrom(r); err != nil {
		return nil, err
	}
	if err := m.Pool.RestoreFrom(r); err != nil {
		return nil, err
	}
	if err := m.FS.RestoreFrom(r); err != nil {
		return nil, err
	}
	if err := m.VM.RestoreFrom(r); err != nil {
		return nil, err
	}
	hasCC := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if hasCC != (m.CC != nil) {
		return nil, fmt.Errorf("machine: snapshot cache presence does not match the configuration")
	}
	if hasCC {
		if err := m.CC.RestoreFrom(r); err != nil {
			return nil, err
		}
	}
	kind := r.U8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch kind {
	case storeClustered:
		if m.clustered == nil {
			return nil, fmt.Errorf("machine: snapshot holds a clustered store, config builds none")
		}
		if err := m.clustered.RestoreFrom(r); err != nil {
			return nil, err
		}
	case storeLFS:
		if m.lfs == nil {
			return nil, fmt.Errorf("machine: snapshot holds an LFS store, config builds none")
		}
		if err := m.lfs.RestoreFrom(r); err != nil {
			return nil, err
		}
	case storeDirect:
		if m.directPlain == nil {
			return nil, fmt.Errorf("machine: snapshot holds a direct store, config builds none")
		}
		if err := m.directPlain.RestoreFrom(r); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("machine: snapshot names unknown store kind %d", kind)
	}
	if err := m.bus.RestoreFrom(r); err != nil {
		return nil, err
	}

	r.Section("machine.tail")
	m.comp.Compressions = r.U64()
	m.comp.Decompressions = r.U64()
	m.comp.BytesIn = r.U64()
	m.comp.BytesOut = r.U64()
	m.comp.Incompressible = r.U64()
	m.comp.CompressibleIn = r.U64()
	m.comp.CompressibleOut = r.U64()
	m.fst.CorruptionsDetected = r.U64()
	m.fst.Recoveries = r.U64()
	m.fst.RecoveredSegments = r.U64()
	m.fst.TornWritesDiscarded = r.U64()
	m.start = sim.Time(r.I64())
	m.startFrozen = r.Bool()
	nseg := r.Int()
	if r.Err() == nil && (nseg < 0 || nseg > 1<<20) {
		return nil, fmt.Errorf("machine: snapshot claims %d segment codec overrides", nseg)
	}
	type segCodecPair struct {
		seg  int32
		name string
	}
	pairs := make([]segCodecPair, 0, nseg)
	for i := 0; i < nseg && r.Err() == nil; i++ {
		pairs = append(pairs, segCodecPair{seg: r.I32(), name: r.String()})
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	for _, p := range pairs {
		codec, err := compress.Lookup(p.name)
		if err != nil {
			return nil, fmt.Errorf("machine: snapshot names codec %q for segment %d: %w", p.name, p.seg, err)
		}
		m.segCodec[p.seg] = codec
	}

	// Re-derive the segment index and validate the assembled machine end to
	// end before handing it back.
	for _, seg := range m.VM.Segments() {
		m.segByID[seg.ID] = seg
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("machine: restored state fails invariants: %w", err)
	}
	return m, nil
}

// SpaceFor returns the address-space handle for a named segment — how a
// workload reattaches to its segments on a restored machine. It reports
// false when no segment has that name; with duplicate names the
// lowest-numbered segment wins (creation order).
func (m *Machine) SpaceFor(name string) (*Space, bool) {
	for _, seg := range m.VM.Segments() {
		if seg.Name == name {
			return &Space{m: m, seg: seg}, true
		}
	}
	return nil, false
}
