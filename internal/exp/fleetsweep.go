package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"compcache/internal/cluster"
	"compcache/internal/machine"
	"compcache/internal/netdev"
	"compcache/internal/obs"
	"compcache/internal/runner"
)

// FleetSweep scales the paper's diskless scenario out to a fleet: N machines
// paging over one link to a shared page server, co-advancing on one
// discrete-event kernel. The grid crosses fleet size with link parameters
// and codec; each cell reports aggregate tail latency (p50/p99/p999 of
// vm.fault_service across every member), so the table shows how server
// contention stretches the tail as the fleet grows.
//
// Every cell runs in two phases — populate, then a shuffled verify sweep —
// with a kernel snapshot/restore cycle at the phase boundary, so the sweep
// continuously proves the cycle is a semantic no-op. Cells are independent
// fleets fanned out across workers; rows assemble in grid order, so the
// table is byte-identical at any parallelism.
//
// tracePath, when non-empty, additionally writes one JSON record per cell
// (grid order) — the machine-readable artifact CI archives.
func FleetSweep(memoryMB int, pages int32, seed int64, workers int, tracePath string) (*Table, error) {
	t := &Table{
		Title:  "Extension: fleet tail latency vs fleet size (shared page server, discrete-event kernel)",
		Header: []string{"fleet", "link", "codec", "faults", "remote-ins", "srv ops", "p50", "p99", "p999"},
		Note: "Percentiles are upper bucket bounds of the aggregate vm.fault_service histogram across all\n" +
			"members. The whole fleet queues on one server timeline, so the tail stretches with fleet size;\n" +
			"donated sibling memory absorbs part of the spill that would otherwise hit the server tier.",
	}
	type cell struct {
		machines int
		linkName string
		link     netdev.Params
		codec    string
	}
	var cells []cell
	for _, n := range []int{1, 2, 4} {
		for _, l := range []struct {
			name string
			p    netdev.Params
		}{{"eth10", netdev.Ethernet10()}, {"wireless2", netdev.Wireless2()}} {
			for _, codec := range []string{"lzrw1", "fpc"} {
				cells = append(cells, cell{machines: n, linkName: l.name, link: l.p, codec: codec})
			}
		}
	}
	// Every member thrashes: the per-machine working set is ~3x physical
	// memory (half-random pages compress ~2:1, so it does not fit even
	// compressed and evictions must leave the machine).
	perMachine := int32(3 * (int64(memoryMB) << 20) / 4096)
	if perMachine > pages {
		perMachine = pages
	}
	type cellOut struct {
		row []string
		rec fleetRec
	}
	results, err := runner.Map(context.Background(), workers, len(cells), func(_ context.Context, i int) (cellOut, error) {
		ce := cells[i]
		c, err := runFleetCell(ce.machines, int64(memoryMB)<<20, ce.link, ce.codec, seed, perMachine)
		if err != nil {
			return cellOut{}, fmt.Errorf("fleet cell %d/%s/%s: %w", ce.machines, ce.linkName, ce.codec, err)
		}
		agg := newHistAgg()
		var faults, remoteIns uint64
		for m := 0; m < c.Size(); m++ {
			st := c.Machine(m).Stats()
			faults += st.VM.Faults
			remoteIns += st.VM.RemoteIns
			if h, ok := c.Machine(m).Metrics().Hist("vm.fault_service"); ok {
				agg.add(h)
			}
		}
		srv := c.Server().Stats()
		p50, p99, p999 := agg.quantile(0.50), agg.quantile(0.99), agg.quantile(0.999)
		out := cellOut{
			row: []string{
				fmt.Sprintf("%d", ce.machines), ce.linkName, ce.codec,
				fmt.Sprintf("%d", faults), fmt.Sprintf("%d", remoteIns), fmt.Sprintf("%d", srv.Ops),
				fmtQuantile(p50), fmtQuantile(p99), fmtQuantile(p999),
			},
			rec: fleetRec{
				Fleet: ce.machines, Link: ce.linkName, Codec: ce.codec,
				Faults: faults, RemoteIns: remoteIns,
				ServerOps: srv.Ops, Forwards: srv.Forwards, TierHits: srv.TierHits, TierMiss: srv.TierMiss,
				P50us: usOrNeg(p50), P99us: usOrNeg(p99), P999us: usOrNeg(p999),
				FleetTimeUs: int64(time.Duration(c.Kernel.Now()) / time.Microsecond),
			},
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	recs := make([]fleetRec, len(results))
	for i, r := range results {
		t.AddRow(r.row...)
		recs[i] = r.rec
	}
	if tracePath != "" {
		if err := writeFleetTrace(tracePath, recs); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// runFleetCell builds one fleet, populates every member's working set,
// cycles the kernel through a snapshot/restore at the phase boundary, and
// runs the shuffled verify sweep.
func runFleetCell(machines int, memoryBytes int64, link netdev.Params, codec string, seed int64, pages int32) (*cluster.Cluster, error) {
	donation := 0
	if machines > 1 {
		donation = 16
	}
	c, err := cluster.New(cluster.Config{
		Machines:       machines,
		MemoryBytes:    memoryBytes,
		Link:           link,
		Codec:          codec,
		Seed:           seed,
		DonationFrames: donation,
		Obs:            &obs.Options{},
	})
	if err != nil {
		return nil, err
	}
	spaces := make([]*machine.Space, c.Size())
	rngs := make([]*rand.Rand, c.Size())
	errs := make([]error, c.Size())
	for i := 0; i < c.Size(); i++ {
		i := i
		seed := c.SeedFor(i)
		c.Go(i, func(m *machine.Machine) {
			spaces[i], rngs[i] = populateFleet(m, pages, seed)
			errs[i] = m.Err()
		})
	}
	c.Run()
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	if err := c.SnapshotCycle(); err != nil {
		return nil, err
	}
	for i := 0; i < c.Size(); i++ {
		i := i
		c.Go(i, func(m *machine.Machine) {
			errs[i] = verifyFleet(spaces[i], pages, int64(m.Config().PageSize), rngs[i])
			if errs[i] == nil {
				errs[i] = m.Err()
			}
		})
	}
	c.Run()
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if err := c.CheckInvariants(); err != nil {
		return nil, err
	}
	return c, nil
}

// populateFleet writes a tagged working set several times physical memory:
// each page is half random 64-byte blocks (so codecs differ without pages
// becoming free to store), with a deterministic tag in word 0 that the
// verify phase checks after the pages have round-tripped through fleet
// memory or the server tier.
func populateFleet(m *machine.Machine, pages int32, seed int64) (*machine.Space, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	ps := int64(m.Config().PageSize)
	s := m.NewSegment("fleet", int64(pages)*ps)
	buf := make([]byte, ps)
	for p := int32(0); p < pages; p++ {
		for i := range buf {
			buf[i] = 0
		}
		for blk := 0; blk+64 <= len(buf); blk += 64 {
			if rng.Intn(2) == 0 {
				rng.Read(buf[blk : blk+64])
			}
		}
		s.Write(int64(p)*ps, buf)
		s.WriteWord(int64(p)*ps, fleetTag(p))
	}
	return s, rng
}

// verifyFleet sweeps the working set twice in a seed-shuffled order,
// checking every tag. A zero word is the dead-machine sentinel ReadWord
// returns after a fatal error; the caller reports that through m.Err.
func verifyFleet(s *machine.Space, pages int32, ps int64, rng *rand.Rand) error {
	for pass := 0; pass < 2; pass++ {
		for _, p := range rng.Perm(int(pages)) {
			got := s.ReadWord(int64(p) * ps)
			if got != fleetTag(int32(p)) && got != 0 {
				return fmt.Errorf("fleet page %d: tag %#x, want %#x", p, got, fleetTag(int32(p)))
			}
		}
	}
	return nil
}

func fleetTag(p int32) uint64 { return 0xf1ee7<<40 ^ uint64(p)*0x9e3779b9 }

func firstErr(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("machine %d: %w", i, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Aggregate histogram percentiles.

// histAgg sums fault-service histograms across fleet members: bucket bounds
// come from the shared default ladder, so counts add bound-by-bound.
type histAgg struct {
	counts   map[time.Duration]uint64
	overflow uint64
	total    uint64
}

func newHistAgg() *histAgg {
	return &histAgg{counts: make(map[time.Duration]uint64)}
}

func (a *histAgg) add(h obs.HistogramSnapshot) {
	a.total += h.Count
	for _, b := range h.Buckets {
		if b.Le < 0 {
			a.overflow += b.Count
		} else {
			a.counts[b.Le] += b.Count
		}
	}
}

// quantile walks the cumulative distribution to the q-th observation and
// reports that bucket's upper bound; -1 means the quantile landed in the
// overflow bucket (or the histogram was empty).
func (a *histAgg) quantile(q float64) time.Duration {
	if a.total == 0 {
		return -1
	}
	need := uint64(q * float64(a.total))
	if need == 0 {
		need = 1
	}
	bounds := make([]time.Duration, 0, len(a.counts))
	for le := range a.counts {
		bounds = append(bounds, le)
	}
	sortDurations(bounds)
	var cum uint64
	for _, le := range bounds {
		cum += a.counts[le]
		if cum >= need {
			return le
		}
	}
	return -1
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

func fmtQuantile(d time.Duration) string {
	if d < 0 {
		return ">max"
	}
	return "≤" + fmtDur(d)
}

func usOrNeg(d time.Duration) int64 {
	if d < 0 {
		return -1
	}
	return int64(d / time.Microsecond)
}

// ---------------------------------------------------------------------------
// JSONL trace artifact.

// fleetRec is one grid cell of the machine-readable sweep trace.
type fleetRec struct {
	Fleet       int    `json:"fleet"`
	Link        string `json:"link"`
	Codec       string `json:"codec"`
	Faults      uint64 `json:"faults"`
	RemoteIns   uint64 `json:"remote_ins"`
	ServerOps   uint64 `json:"server_ops"`
	Forwards    uint64 `json:"forwards"`
	TierHits    uint64 `json:"tier_hits"`
	TierMiss    uint64 `json:"tier_miss"`
	P50us       int64  `json:"p50_us"`
	P99us       int64  `json:"p99_us"`
	P999us      int64  `json:"p999_us"`
	FleetTimeUs int64  `json:"fleet_time_us"`
}

func writeFleetTrace[T any](path string, results []T) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
