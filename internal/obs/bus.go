package obs

// Bus is the per-machine event channel: a bounded ring buffer of events with
// a per-class enable mask, plus the machine's metrics registry.
//
// A nil *Bus is valid — every method is nil-safe and a disabled probe site
// costs one nil test plus (when non-nil) one mask test, which is the whole
// overhead budget of an untraced run. Like the clock, a Bus belongs to
// exactly one single-threaded simulated machine and is not safe for
// concurrent use; cross-machine aggregation happens by index order in the
// experiment runner, never by sharing a bus.
type Bus struct {
	mask    Class
	ring    []Event
	start   int    // index of the oldest retained event
	n       int    // retained events
	dropped uint64 // events lost to ring wrap
	reg     Registry
}

// NewBus creates a bus with the given options.
func NewBus(opts Options) *Bus {
	if opts.Classes == 0 {
		opts.Classes = ClassAll
	}
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	return &Bus{mask: opts.Classes, ring: make([]Event, 0, opts.RingSize)}
}

// Enabled reports whether events of class c are recorded. It is the hot-path
// guard: probe sites call it before building an Event so a disabled bus does
// no argument construction.
func (b *Bus) Enabled(c Class) bool { return b != nil && b.mask&c != 0 }

// Emit records an event if its class is enabled. The per-class event counter
// in the registry advances with every recorded event, so summary counts
// survive ring wrap.
func (b *Bus) Emit(e Event) {
	if b == nil || b.mask&e.Class == 0 {
		return
	}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		b.n++
		return
	}
	// Ring full: overwrite the oldest slot.
	b.ring[b.start] = e
	b.start++
	if b.start == len(b.ring) {
		b.start = 0
	}
	b.dropped++
}

// Events returns the retained events in emission order (a copy).
func (b *Bus) Events() []Event {
	if b == nil || b.n == 0 {
		return nil
	}
	out := make([]Event, 0, b.n)
	out = append(out, b.ring[b.start:]...)
	out = append(out, b.ring[:b.start]...)
	return out
}

// Len reports the number of retained events.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Dropped reports how many events were lost to ring wrap.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Mask reports the enable mask.
func (b *Bus) Mask() Class {
	if b == nil {
		return 0
	}
	return b.mask
}

// Registry returns the bus's metrics registry, or nil for a nil bus.
func (b *Bus) Registry() *Registry {
	if b == nil {
		return nil
	}
	return &b.reg
}

// Counter registers (or finds) a counter; nil for a nil bus, so subsystems
// can cache probe handles unconditionally at wiring time.
func (b *Bus) Counter(name string) *Counter {
	if b == nil {
		return nil
	}
	return b.reg.Counter(name)
}

// Gauge registers (or finds) a gauge; nil for a nil bus.
func (b *Bus) Gauge(name string) *Gauge {
	if b == nil {
		return nil
	}
	return b.reg.Gauge(name)
}

// Histogram registers (or finds) a virtual-latency histogram; nil for a nil
// bus.
func (b *Bus) Histogram(name string) *Histogram {
	if b == nil {
		return nil
	}
	return b.reg.Histogram(name)
}

// Snapshot captures the registry's current metrics in deterministic (sorted)
// order; nil for a nil bus.
func (b *Bus) Snapshot() *Snapshot {
	if b == nil {
		return nil
	}
	return b.reg.Snapshot()
}
