package cluster

import (
	"fmt"

	"compcache/internal/machine"
	"compcache/internal/mem"
	"compcache/internal/netdev"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/snap"
	"compcache/internal/swap"
)

// Config describes a fleet: N identical diskless machines paging over one
// link model to one shared server.
type Config struct {
	// Machines is the fleet size (>= 1). Machine i becomes kernel actor i.
	Machines int

	// MemoryBytes is each machine's physical memory.
	MemoryBytes int64

	// Link is the network path between every machine and the server.
	Link netdev.Params

	// Server parameterizes the shared page server (zero value gets
	// DefaultServerConfig).
	Server ServerConfig

	// Codec names each machine's compression codec ("" = lzrw1).
	Codec string

	// Seed is the fleet's base seed; each machine derives its own PRNG
	// stream from it with SeedFor, so per-machine streams are a function of
	// (Seed, machine ID) alone and adding or removing fleet members never
	// shifts a sibling's stream.
	Seed int64

	// DonationFrames is how many frames each machine pins as fleet memory:
	// capacity siblings can migrate evicted pages into. The frames are
	// allocated up front as kernel-owned (never reclaimed), so donation is a
	// static trade of local memory for fleet memory.
	DonationFrames int

	// Obs attaches an observability bus to every machine (fleet experiments
	// aggregate fault-service histograms across members). Nil disables it.
	Obs *obs.Options
}

// remoteKey names a page fleet-wide: PageKeys are per-machine namespaces, so
// the owner's index disambiguates.
type remoteKey struct {
	owner int
	key   swap.PageKey
}

// remoteEntry is one page held in fleet memory.
type remoteEntry struct {
	payload    []byte
	compressed bool
	sum        uint32
	donor      int   // sibling machine holding the copy, or -1 = server tier
	addr       int64 // server-tier address when donor == -1
}

// Cluster is a running fleet: the kernel, the machines (actor i is machine
// i), the shared server, and the fleet-memory directory.
type Cluster struct {
	Kernel *sim.Kernel

	cfg      Config
	machines []*machine.Machine
	nets     []*netdev.Net
	server   *Server
	dir      map[remoteKey]*remoteEntry
	free     []*remoteEntry // invalidated entries recycled by newEntry
	donated  []int64        // remaining donation budget per machine, in bytes
	spillSeq int64          // allocator for server-tier spill addresses
}

// newEntry recycles an invalidated directory entry, or allocates one while
// the freelist warms up. Offer runs on the paging hot path, so steady-state
// placements must not allocate; the payload buffer grows in place inside
// the recycled entry.
func (c *Cluster) newEntry() *remoteEntry {
	if n := len(c.free); n > 0 {
		ent := c.free[n-1]
		c.free = c.free[:n-1]
		return ent
	}
	return new(remoteEntry)
}

// New assembles a fleet. Every machine is a compression-cache machine paging
// over the link (the paper's diskless scenario), attached to one shared
// kernel and wired to the shared server.
func New(cfg Config) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", cfg.Machines)
	}
	if cfg.DonationFrames < 0 {
		return nil, fmt.Errorf("cluster: negative donation budget")
	}
	if cfg.Server == (ServerConfig{}) {
		cfg.Server = DefaultServerConfig()
	}
	c := &Cluster{
		Kernel:  sim.NewKernel(),
		cfg:     cfg,
		server:  NewServer(cfg.Server),
		dir:     make(map[remoteKey]*remoteEntry),
		donated: make([]int64, cfg.Machines),
	}
	for i := 0; i < cfg.Machines; i++ {
		mcfg := machine.Default(cfg.MemoryBytes).WithNetwork(cfg.Link).WithCC()
		if cfg.Codec != "" {
			mcfg.CC.Codec = cfg.Codec
		}
		opts := []machine.Option{
			machine.WithKernel(c.Kernel, sim.ActorID(i)),
			machine.WithRemote(&remoteAdapter{c: c, idx: i}),
		}
		if cfg.Obs != nil {
			opts = append(opts, machine.WithObs(*cfg.Obs))
		}
		m, err := machine.New(mcfg, opts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: machine %d: %w", i, err)
		}
		net, ok := m.Device.(*netdev.Net)
		if !ok {
			return nil, fmt.Errorf("cluster: machine %d is not network-backed", i)
		}
		net.SetRemote(c.server)
		for f := 0; f < cfg.DonationFrames; f++ {
			if _, ok := m.Pool.Alloc(mem.Kernel); !ok {
				return nil, fmt.Errorf("cluster: machine %d cannot donate %d frames", i, cfg.DonationFrames)
			}
		}
		c.donated[i] = int64(cfg.DonationFrames) * int64(mcfg.PageSize)
		c.machines = append(c.machines, m)
		c.nets = append(c.nets, net)
	}
	return c, nil
}

// Size reports the fleet size.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns fleet member i.
func (c *Cluster) Machine(i int) *machine.Machine { return c.machines[i] }

// Server returns the shared page server.
func (c *Cluster) Server() *Server { return c.server }

// SeedFor derives machine i's PRNG stream from the fleet seed by machine ID
// (a splitmix64 finalizer), so the stream is stable under fleet-membership
// changes.
func (c *Cluster) SeedFor(i int) int64 {
	z := uint64(c.cfg.Seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Go arms fleet member i with a program (see sim.Kernel.Go); Run dispatches
// all armed programs on the shared timeline. A member can be re-armed after
// Run returns for multi-phase experiments.
func (c *Cluster) Go(i int, fn func(m *machine.Machine)) {
	m := c.machines[i]
	c.Kernel.Go(sim.ActorID(i), func() { fn(m) })
}

// Run dispatches the fleet until every armed program has returned and
// reports the final fleet time.
func (c *Cluster) Run() sim.Time { return c.Kernel.Run() }

// SnapshotCycle serializes the kernel at a phase boundary (between Run
// returning and the next Go — the heap is empty and every program has
// returned) and restores it into a fresh kernel, re-attaching every member's
// clock at its restored instant. Semantically a no-op: a fleet that cycles
// through a snapshot between phases is byte-identical to one that does not —
// the determinism tests exercise exactly that. Mid-Wait snapshots go through
// sim.Kernel.Stop and carry pending events; see the sim package.
func (c *Cluster) SnapshotCycle() error {
	w := snap.NewWriter()
	if err := c.Kernel.SnapshotTo(w); err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	img, err := w.Bytes()
	if err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	r, err := snap.NewReader(img)
	if err != nil {
		return fmt.Errorf("cluster: restore: %w", err)
	}
	k := sim.NewKernel()
	if err := k.RestoreFrom(r); err != nil {
		return fmt.Errorf("cluster: restore: %w", err)
	}
	for i, m := range c.machines {
		k.Attach(m.Clock, sim.ActorID(i))
	}
	c.Kernel = k
	return nil
}

// Err reports the first fatal error of any fleet member, by actor order.
func (c *Cluster) Err() error {
	for i, m := range c.machines {
		if err := m.Err(); err != nil {
			return fmt.Errorf("cluster: machine %d: %w", i, err)
		}
	}
	return nil
}

// CheckInvariants validates every member machine.
func (c *Cluster) CheckInvariants() error {
	for i, m := range c.machines {
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("cluster: machine %d: %w", i, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// machine.RemoteStore adapter: fleet memory as seen by one member.

// remoteAdapter gives machine idx its view of fleet memory. All calls run on
// machine idx's actor goroutine; transfer costs are charged through the
// machine's own network device, so they queue on the shared server timeline
// in kernel dispatch order.
type remoteAdapter struct {
	c   *Cluster
	idx int
}

// Offer implements machine.RemoteStore: place an evicted page in a sibling's
// donated memory, or spill it to the server's compressed tier. The requester
// pays the network forward either way.
func (r *remoteAdapter) Offer(key swap.PageKey, payload []byte, compressed bool, sum uint32) bool {
	c := r.c
	k := remoteKey{owner: r.idx, key: key}
	ent, existed := c.dir[k]
	if existed {
		// Re-offer of a key the fleet already holds: return the old
		// placement's capacity and reuse the entry in place.
		c.release(ent)
	} else {
		ent = c.newEntry()
	}
	donor := c.pickDonor(r.idx, len(payload))
	var addr int64 = -1 // pure forward: machine-to-machine migration
	if donor < 0 {
		// No sibling has room: spill into the server's compressed tier at a
		// fresh address in the spill namespace (negative, below the forward
		// sentinel, so it can never collide with file-system extents).
		addr = -(2 + c.spillSeq)
		c.spillSeq++
	}
	if err := c.nets[r.idx].Write(addr, len(payload)); err != nil {
		// The transfer failed (fault injection): the placement is void and
		// the machine falls back to its own backing store.
		delete(c.dir, k)
		c.free = append(c.free, ent)
		return false
	}
	ent.payload = append(ent.payload[:0], payload...)
	ent.compressed = compressed
	ent.sum = sum
	ent.donor = donor
	ent.addr = addr
	if donor >= 0 {
		c.donated[donor] -= int64(len(payload))
	}
	c.dir[k] = ent
	return true
}

// Fetch implements machine.RemoteStore: bring a remotely held page back over
// the network. Sibling copies are forwarded through the server at CPU speed;
// spilled copies read from the server tier (or its disk, on a miss).
func (r *remoteAdapter) Fetch(key swap.PageKey) ([]byte, bool, uint32, bool, error) {
	c := r.c
	ent, ok := c.dir[remoteKey{owner: r.idx, key: key}]
	if !ok {
		return nil, false, 0, false, nil
	}
	addr := ent.addr // spill address, or -1 for a sibling forward
	if err := c.nets[r.idx].Read(addr, len(ent.payload)); err != nil {
		return nil, false, 0, true, err
	}
	return ent.payload, ent.compressed, ent.sum, true, nil
}

// Has implements machine.RemoteStore.
func (r *remoteAdapter) Has(key swap.PageKey) bool {
	_, ok := r.c.dir[remoteKey{owner: r.idx, key: key}]
	return ok
}

// Invalidate implements machine.RemoteStore.
func (r *remoteAdapter) Invalidate(key swap.PageKey) {
	c := r.c
	k := remoteKey{owner: r.idx, key: key}
	if ent, ok := c.dir[k]; ok {
		c.release(ent)
		delete(c.dir, k)
		c.free = append(c.free, ent)
	}
}

// release returns an entry's capacity to its holder. The entry itself goes
// back to the freelist only when it leaves the directory (Invalidate);
// Offer's replace path reuses it in place.
func (c *Cluster) release(ent *remoteEntry) {
	if ent.donor >= 0 {
		c.donated[ent.donor] += int64(len(ent.payload))
	} else {
		c.server.Release(ent.addr)
	}
}

// pickDonor chooses the sibling to host a migrated page: the first machine
// after the requester (cyclically, by actor ID) with enough donation budget
// left. The scan order is a pure function of (requester, budgets), so
// placement is deterministic.
func (c *Cluster) pickDonor(requester, bytes int) int {
	n := len(c.machines)
	for off := 1; off < n; off++ {
		j := (requester + off) % n
		if c.donated[j] >= int64(bytes) {
			return j
		}
	}
	return -1
}
