package compress

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// The page-compression codecs sit on the fault path: every compressed page
// the cache serves goes through Decompress, and a decode that panics or
// silently returns wrong bytes corrupts simulated memory. Two properties
// are fuzzed for both LZ codecs:
//
//  1. Round-trip identity: Decompress(Compress(p)) == p for any page-sized
//     input, and the compressed block respects MaxCompressedSize.
//  2. Corrupt-input totality: Decompress never panics on arbitrary bytes,
//     and when it fails, the error wraps ErrCorrupt so callers can
//     distinguish corruption from programming errors. (Arbitrary bytes may
//     also decode "successfully" to the wrong length — decompressInto's
//     length check is what rejects those.)

const fuzzPageSize = 4096

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte("a"))
	f.Add([]byte(strings.Repeat("the compression cache extends physical memory ", 90)))
	f.Add(bytes.Repeat([]byte{0}, fuzzPageSize))
	f.Add(bytes.Repeat([]byte{0xAA, 0x55}, 2048))
	// An incompressible-looking ramp.
	ramp := make([]byte, fuzzPageSize)
	for i := range ramp {
		ramp[i] = byte(i*7 + i>>8)
	}
	f.Add(ramp)
}

func fuzzRoundTrip(f *testing.F, c Codec) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, p []byte) {
		if len(p) > fuzzPageSize {
			p = p[:fuzzPageSize]
		}
		comp := c.Compress(nil, p)
		if max := c.MaxCompressedSize(len(p)); len(comp) > max {
			t.Fatalf("compressed %d bytes into %d, above MaxCompressedSize %d", len(p), len(comp), max)
		}
		// Decompress into a tight page-sized buffer, the way the machine's
		// fault path does: the result must still be exact.
		dst := make([]byte, 0, fuzzPageSize)
		out, err := c.Decompress(dst, comp)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		// The bound decompressInto depends on: a block compressed from a
		// page never decodes past the page size.
		if len(out) > fuzzPageSize {
			t.Fatalf("page-sized block decoded to %d bytes", len(out))
		}
		if !bytes.Equal(out, p) {
			t.Fatalf("round trip changed %d bytes into %d bytes", len(p), len(out))
		}
	})
}

func fuzzCorrupt(f *testing.F, c Codec) {
	fuzzSeeds(f)
	// Valid blocks with a flipped byte are the interesting corruptions.
	good := c.Compress(nil, []byte(strings.Repeat("seed page content ", 64)))
	for i := 0; i < len(good) && i < 8; i++ {
		mut := bytes.Clone(good)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		out, err := c.Decompress(make([]byte, 0, fuzzPageSize), src)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Successful decodes of arbitrary bytes are fine (decompressInto
		// rejects wrong lengths); they just must stay bounded: one copy item
		// expands to at most ~2*lzssLenCap bytes, so output is linear in the
		// input with a constant far below 1024.
		if maxExpand := 1024 * (len(src) + 1); len(out) > maxExpand {
			t.Fatalf("decoded %d input bytes to %d output bytes", len(src), len(out))
		}
	})
}

func FuzzLZRW1RoundTrip(f *testing.F) { fuzzRoundTrip(f, LZRW1{}) }
func FuzzLZSSRoundTrip(f *testing.F)  { fuzzRoundTrip(f, LZSS{}) }
func FuzzBDIRoundTrip(f *testing.F)   { fuzzRoundTrip(f, BDI{}) }
func FuzzFPCRoundTrip(f *testing.F)   { fuzzRoundTrip(f, FPC{}) }
func FuzzLZRW1Corrupt(f *testing.F)   { fuzzCorrupt(f, LZRW1{}) }
func FuzzLZSSCorrupt(f *testing.F)    { fuzzCorrupt(f, LZSS{}) }
func FuzzBDICorrupt(f *testing.F)     { fuzzCorrupt(f, BDI{}) }
func FuzzFPCCorrupt(f *testing.F)     { fuzzCorrupt(f, FPC{}) }

// FuzzCompressDirtyScratch checks the recycled-dst contract documented on
// Codec: compressing into a zero-length slice whose backing array is full of
// garbage must produce exactly the bytes of a fresh compression. The machine
// reuses one scratch buffer for every page it compresses, so a codec that
// reads stale dst bytes beyond len(dst) would silently corrupt pages in a
// data-dependent, hard-to-reproduce way.
func FuzzCompressDirtyScratch(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, p []byte) {
		if len(p) > fuzzPageSize {
			p = p[:fuzzPageSize]
		}
		for _, name := range Names() {
			c, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			clean := c.Compress(nil, p)
			scratch := make([]byte, c.MaxCompressedSize(fuzzPageSize))
			for i := range scratch {
				scratch[i] = 0xFF
			}
			dirty := c.Compress(scratch[:0], p)
			if !bytes.Equal(clean, dirty) {
				t.Fatalf("%s: dirty-scratch compression differs: clean %d bytes, dirty %d bytes",
					c.Name(), len(clean), len(dirty))
			}
		}
	})
}
