// Package netdev models paging over a network to a remote page server — the
// paper's target environment: "mobile computers may communicate over slower
// wireless networks and run either diskless or with small, slower local
// disks" (§1). It implements the same device interface the file system uses
// for a disk, so a whole machine can be built diskless.
//
// Cost model: each operation pays one round-trip latency plus transfer time
// at the link bandwidth, with an asynchronous send queue like the disk's
// write queue. There is no seek and no rotational position: a network makes
// every access "random", which is exactly why the paper expects compression
// to matter more there ("slower backing stores, such as wireless networks",
// §6).
package netdev

import (
	"fmt"
	"time"

	"compcache/internal/sim"
	"compcache/internal/stats"
)

// Params describes a network path to a page server.
type Params struct {
	// RTT is the request/response round-trip latency charged per operation.
	RTT time.Duration

	// BytesPerSec is the link bandwidth.
	BytesPerSec float64

	// PerOp is fixed protocol processing overhead per operation.
	PerOp time.Duration

	// PacketBytes is the transfer granularity (payload per packet);
	// transfers round up to whole packets.
	PacketBytes int
}

// Ethernet10 returns parameters for the 10-Mbps Ethernet of the paper's §3
// footnote ("it is more efficient to page over a 10-Mbps Ethernet to memory
// on a file server than to page to a local disk").
func Ethernet10() Params {
	return Params{
		RTT:         2 * time.Millisecond,
		BytesPerSec: 1.25e6,
		PerOp:       500 * time.Microsecond,
		PacketBytes: 1024,
	}
}

// Wireless2 returns parameters for a ~2-Mbps early-90s wireless LAN
// (WaveLAN-class), the mobile scenario of §1.
func Wireless2() Params {
	return Params{
		RTT:         15 * time.Millisecond,
		BytesPerSec: 0.25e6,
		PerOp:       1 * time.Millisecond,
		PacketBytes: 1024,
	}
}

// Validate reports whether the parameters describe a usable link.
func (p Params) Validate() error {
	if p.BytesPerSec <= 0 {
		return fmt.Errorf("netdev: BytesPerSec must be positive, got %g", p.BytesPerSec)
	}
	if p.PacketBytes <= 0 {
		return fmt.Errorf("netdev: PacketBytes must be positive, got %d", p.PacketBytes)
	}
	if p.RTT < 0 || p.PerOp < 0 {
		return fmt.Errorf("netdev: negative latency parameter")
	}
	return nil
}

// TransferTime reports the link time to move n bytes (whole packets).
func (p Params) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	packets := (n + p.PacketBytes - 1) / p.PacketBytes
	return time.Duration(float64(packets*p.PacketBytes) / p.BytesPerSec * float64(time.Second))
}

// Net is a remote page server reached over the modelled link. It satisfies
// the file system's Device interface; the remote server's memory plays the
// platter's role (contents are tracked by the fs layer, as with a disk).
type Net struct {
	params Params
	clock  *sim.Clock
	busyAt sim.Time
	st     stats.Disk
}

// New creates a network device on the given clock.
func New(p Params, clock *sim.Clock) (*Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Net{params: p, clock: clock}, nil
}

// Params reports the link parameters.
func (n *Net) Params() Params { return n.params }

// Granularity reports the packet payload size (the fs.Device interface).
func (n *Net) Granularity() int { return n.params.PacketBytes }

// Stats reports transfer counters. Seeks are always zero: networks do not
// seek, which is itself a modelling point of difference from the disk.
func (n *Net) Stats() stats.Disk { return n.st }

// BusyUntil reports when the send queue drains.
func (n *Net) BusyUntil() sim.Time { return n.busyAt }

func (n *Net) opTime(bytes int) time.Duration {
	return n.params.PerOp + n.params.RTT + n.params.TransferTime(bytes)
}

func (n *Net) start() sim.Time {
	now := n.clock.Now()
	if n.busyAt > now {
		return n.busyAt
	}
	return now
}

// Read fetches n bytes from the page server, blocking the caller.
func (n *Net) Read(addr int64, bytes int) {
	svc := n.opTime(bytes)
	done := n.start().Add(svc)
	n.busyAt = done
	n.st.Reads++
	n.st.BytesRead += uint64(bytes)
	n.st.BusyTime += svc
	n.clock.AdvanceTo(done)
}

// Write sends n bytes to the page server, blocking the caller.
func (n *Net) Write(addr int64, bytes int) {
	svc := n.opTime(bytes)
	done := n.start().Add(svc)
	n.busyAt = done
	n.st.Writes++
	n.st.BytesWritten += uint64(bytes)
	n.st.BusyTime += svc
	n.clock.AdvanceTo(done)
}

// WriteAsync queues a send without blocking; subsequent synchronous
// operations queue behind it.
func (n *Net) WriteAsync(addr int64, bytes int) sim.Time {
	svc := n.opTime(bytes)
	done := n.start().Add(svc)
	n.busyAt = done
	n.st.Writes++
	n.st.BytesWritten += uint64(bytes)
	n.st.BusyTime += svc
	return done
}

// Drain advances the clock until the send queue empties.
func (n *Net) Drain() {
	n.clock.AdvanceTo(n.busyAt)
}
