package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"compcache/internal/mem"
	"compcache/internal/sim"
	"compcache/internal/swap"
)

// fakePager stores page contents in a map, standing in for the machine's
// cache+swap hierarchy.
type fakePager struct {
	store    map[swap.PageKey][]byte
	pageOuts int
	pageIns  int
	dirtied  int
}

func newFakePager() *fakePager {
	return &fakePager{store: make(map[swap.PageKey][]byte)}
}

func (f *fakePager) PageOut(p *Page, data []byte) error {
	f.pageOuts++
	f.store[p.Key] = append([]byte(nil), data...)
	p.State = Swapped
	p.Dirty = false
	p.SwapValid = true
	return nil
}

func (f *fakePager) PageIn(p *Page, data []byte) (Source, error) {
	f.pageIns++
	stored, ok := f.store[p.Key]
	if !ok {
		panic("fakePager: PageIn of unknown page")
	}
	copy(data, stored)
	p.Dirty = false
	p.SwapValid = true
	return SrcSwap, nil
}

func (f *fakePager) Dirtied(p *Page) { f.dirtied++ }

// touch, readWord and writeWord assert the access succeeds; the fault paths
// that can fail are exercised separately in the machine tests.
func touch(t *testing.T, v *VM, s *Segment, n int32, write bool) *Page {
	t.Helper()
	p, err := v.Touch(s, n, write)
	if err != nil {
		t.Fatalf("Touch(%d): %v", n, err)
	}
	return p
}

func readWord(t *testing.T, v *VM, s *Segment, off int64) uint64 {
	t.Helper()
	val, err := v.ReadWord(s, off)
	if err != nil {
		t.Fatalf("ReadWord(%d): %v", off, err)
	}
	return val
}

func writeWord(t *testing.T, v *VM, s *Segment, off int64, val uint64) {
	t.Helper()
	if err := v.WriteWord(s, off, val); err != nil {
		t.Fatalf("WriteWord(%d): %v", off, err)
	}
}

func newTestVM(t *testing.T, frames int) (*VM, *fakePager, *mem.Pool, *sim.Clock) {
	t.Helper()
	var clock sim.Clock
	pool := mem.NewPool(frames, 4096)
	v := New(&clock, pool, sim.DefaultCostModel())
	fp := newFakePager()
	v.SetPager(fp)
	v.SetFrameSource(func(o mem.Owner) (mem.FrameID, error) {
		if id, ok := pool.Alloc(o); ok {
			return id, nil
		}
		if ok, err := v.ReleaseOldest(); err != nil || !ok {
			t.Fatalf("nothing to evict (ok=%v err=%v)", ok, err)
		}
		id, ok := pool.Alloc(o)
		if !ok {
			t.Fatal("alloc failed after eviction")
		}
		return id, nil
	})
	return v, fp, pool, &clock
}

func TestColdFaultZeroFill(t *testing.T) {
	v, _, pool, _ := newTestVM(t, 4)
	s := v.NewSegment("heap", 8)
	p := touch(t, v, s, 3, false)
	if p.State != Resident {
		t.Fatalf("state = %v", p.State)
	}
	if !bytes.Equal(pool.Bytes(p.Frame), make([]byte, 4096)) {
		t.Fatal("cold page not zero-filled")
	}
	st := v.Stats()
	if st.Faults != 1 || st.ColdFaults != 1 || st.Refs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTouchResidentNoFault(t *testing.T) {
	v, _, _, _ := newTestVM(t, 4)
	s := v.NewSegment("heap", 8)
	v.Touch(s, 0, false)
	f0 := v.Stats().Faults
	for i := 0; i < 10; i++ {
		v.Touch(s, 0, false)
	}
	if v.Stats().Faults != f0 {
		t.Fatal("resident touches faulted")
	}
	if v.Stats().Refs != 11 {
		t.Fatalf("refs = %d", v.Stats().Refs)
	}
}

func TestWordRoundTrip(t *testing.T) {
	v, _, _, _ := newTestVM(t, 4)
	s := v.NewSegment("heap", 8)
	writeWord(t, v, s, 4096+16, 0xDEADBEEFCAFE0123)
	if got := readWord(t, v, s, 4096+16); got != 0xDEADBEEFCAFE0123 {
		t.Fatalf("ReadWord = %#x", got)
	}
}

func TestWordStraddlePanics(t *testing.T) {
	v, _, _, _ := newTestVM(t, 4)
	s := v.NewSegment("heap", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("straddling word access did not panic")
		}
	}()
	v.ReadWord(s, 4090)
}

func TestBulkReadWriteAcrossPages(t *testing.T) {
	v, _, _, _ := newTestVM(t, 8)
	s := v.NewSegment("heap", 8)
	data := make([]byte, 10000)
	rand.New(rand.NewSource(5)).Read(data)
	v.Write(s, 1000, data)
	got := make([]byte, len(data))
	v.Read(s, 1000, got)
	if !bytes.Equal(got, data) {
		t.Fatal("bulk round trip mismatch")
	}
}

func TestEvictionAndRefaultPreservesContents(t *testing.T) {
	v, fp, _, _ := newTestVM(t, 2)
	s := v.NewSegment("heap", 6)
	// Write distinct contents to 6 pages with only 2 frames: constant
	// eviction traffic.
	for i := int32(0); i < 6; i++ {
		v.WriteWord(s, int64(i)*4096, uint64(i)+100)
	}
	for i := int32(0); i < 6; i++ {
		if got := readWord(t, v, s, int64(i)*4096); got != uint64(i)+100 {
			t.Fatalf("page %d = %d after refault", i, got)
		}
	}
	if fp.pageOuts == 0 || fp.pageIns == 0 {
		t.Fatalf("expected paging traffic, got %d outs %d ins", fp.pageOuts, fp.pageIns)
	}
	if err := v.CheckLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	v, fp, _, _ := newTestVM(t, 3)
	s := v.NewSegment("heap", 4)
	v.WriteWord(s, 0*4096, 1)
	v.WriteWord(s, 1*4096, 2)
	v.WriteWord(s, 2*4096, 3)
	v.ReadWord(s, 0) // page 0 is now MRU; page 1 is LRU
	v.WriteWord(s, 3*4096, 4)
	// Page 1 must be the page that went out.
	if _, ok := fp.store[swap.PageKey{Seg: s.ID, Page: 1}]; !ok {
		t.Fatal("LRU page 1 was not evicted")
	}
	if s.Page(0).State != Resident {
		t.Fatal("recently used page 0 was evicted")
	}
}

func TestCleanNeverWrittenEvictsToUntouched(t *testing.T) {
	v, fp, _, _ := newTestVM(t, 2)
	s := v.NewSegment("heap", 4)
	v.Touch(s, 0, false) // read-only cold fault
	v.Touch(s, 1, false)
	v.Touch(s, 2, false) // evicts page 0
	if fp.pageOuts != 0 {
		t.Fatalf("read-only zero pages caused %d pageouts", fp.pageOuts)
	}
	if s.Page(0).State != Untouched {
		t.Fatalf("page 0 state = %v, want Untouched", s.Page(0).State)
	}
	// Refault reads zeros again.
	v.Touch(s, 0, false)
	if v.Stats().ColdFaults != 4 {
		t.Fatalf("cold faults = %d, want 4", v.Stats().ColdFaults)
	}
}

func TestDirtiedHookOnFirstWrite(t *testing.T) {
	v, fp, _, _ := newTestVM(t, 2)
	s := v.NewSegment("heap", 2)
	v.Touch(s, 0, false)
	if fp.dirtied != 0 {
		t.Fatal("read triggered Dirtied")
	}
	v.Touch(s, 0, true)
	if fp.dirtied != 1 {
		t.Fatalf("dirtied = %d, want 1", fp.dirtied)
	}
	v.Touch(s, 0, true) // already dirty: no second call
	if fp.dirtied != 1 {
		t.Fatalf("dirtied = %d after second write, want 1", fp.dirtied)
	}
}

func TestCleanRefaultedPageNotRewritten(t *testing.T) {
	v, fp, _, _ := newTestVM(t, 2)
	s := v.NewSegment("heap", 4)
	v.WriteWord(s, 0, 42)      // page 0 dirty
	v.WriteWord(s, 4096, 43)   // page 1 dirty
	v.WriteWord(s, 2*4096, 44) // evicts page 0 (dirty writeback)
	v.ReadWord(s, 0)           // refault page 0, clean
	outs := fp.pageOuts
	v.ReadWord(s, 3*4096) // evicts some page
	v.ReadWord(s, 2*4096) // force more eviction
	_ = outs
	// Page 0, refaulted clean with SwapValid, may be paged out again but the
	// fake pager treats every pageout as a store; what matters here is the
	// VM's writeback accounting.
	if got := v.Stats().WriteBacks; got != 3 {
		t.Fatalf("writebacks = %d, want 3 (each dirty page once)", got)
	}
}

func TestStatsWritebacksOnlyForDirty(t *testing.T) {
	v, _, _, _ := newTestVM(t, 2)
	s := v.NewSegment("heap", 4)
	v.WriteWord(s, 0, 1)
	v.ReadWord(s, 4096)
	v.ReadWord(s, 2*4096) // evicts page 0 (dirty) — 1 writeback
	v.ReadWord(s, 3*4096) // evicts page 1 (clean, never written) — no writeback
	if got := v.Stats().WriteBacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
}

func TestSegmentBounds(t *testing.T) {
	v, _, _, _ := newTestVM(t, 2)
	s := v.NewSegment("heap", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range page did not panic")
		}
	}()
	v.Touch(s, 2, false)
}

func TestNewSegmentValidation(t *testing.T) {
	v, _, _, _ := newTestVM(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page segment did not panic")
		}
	}()
	v.NewSegment("empty", 0)
}

func TestSegmentsDistinctKeys(t *testing.T) {
	v, _, _, _ := newTestVM(t, 4)
	a := v.NewSegment("a", 2)
	b := v.NewSegment("b", 2)
	if a.ID == b.ID {
		t.Fatal("segment IDs collide")
	}
	if a.Page(0).Key == b.Page(0).Key {
		t.Fatal("page keys collide across segments")
	}
	if a.Size(4096) != 8192 {
		t.Fatalf("Size = %d", a.Size(4096))
	}
}

func TestOldestAge(t *testing.T) {
	v, _, _, clock := newTestVM(t, 4)
	s := v.NewSegment("heap", 4)
	if _, ok := v.OldestAge(); ok {
		t.Fatal("OldestAge with nothing resident")
	}
	v.Touch(s, 0, false)
	t0 := clock.Now()
	v.Touch(s, 1, false)
	age, ok := v.OldestAge()
	if !ok || age > t0 {
		t.Fatalf("OldestAge = %v ok=%v, want <= %v", age, ok, t0)
	}
}

func TestReleaseOldestEmpty(t *testing.T) {
	v, _, _, _ := newTestVM(t, 2)
	if ok, err := v.ReleaseOldest(); ok || err != nil {
		t.Fatalf("ReleaseOldest with nothing resident: ok=%v err=%v", ok, err)
	}
}

func TestClockAdvancesPerRef(t *testing.T) {
	v, _, _, clock := newTestVM(t, 4)
	s := v.NewSegment("heap", 1)
	v.Touch(s, 0, false)
	t0 := clock.Now()
	v.Touch(s, 0, false)
	if got := clock.Elapsed(t0); got != sim.DefaultCostModel().MemRef {
		t.Fatalf("resident ref cost %v, want %v", got, sim.DefaultCostModel().MemRef)
	}
}

// Randomized integrity test: arbitrary word writes and reads across a
// segment larger than memory must always read back the last value written.
func TestRandomAccessIntegrity(t *testing.T) {
	v, _, pool, _ := newTestVM(t, 5)
	const npages = 20
	s := v.NewSegment("heap", npages)
	rng := rand.New(rand.NewSource(11))
	shadow := make(map[int64]uint64)
	for i := 0; i < 5000; i++ {
		off := int64(rng.Intn(npages))*4096 + int64(rng.Intn(512))*8
		if rng.Intn(2) == 0 {
			val := rng.Uint64()
			v.WriteWord(s, off, val)
			shadow[off] = val
		} else {
			want := shadow[off]
			if got := readWord(t, v, s, off); got != want {
				t.Fatalf("step %d: ReadWord(%d) = %d, want %d", i, off, got, want)
			}
		}
	}
	if err := v.CheckLRU(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if v.ResidentPages() > 5 {
		t.Fatalf("resident %d exceeds pool", v.ResidentPages())
	}
}

// Property: any access pattern leaves the LRU list consistent and the frame
// pool conserved.
func TestVMAccessProperty(t *testing.T) {
	f := func(script []uint16) bool {
		v, _, pool, _ := newQuickVM()
		s := v.NewSegment("q", 24)
		for _, op := range script {
			page := int32(op % 24)
			write := op&0x8000 != 0
			v.Touch(s, page, write)
		}
		return v.CheckLRU() == nil && pool.CheckConservation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func newQuickVM() (*VM, *fakePager, *mem.Pool, *sim.Clock) {
	var clock sim.Clock
	pool := mem.NewPool(6, 4096)
	v := New(&clock, pool, sim.DefaultCostModel())
	fp := newFakePager()
	v.SetPager(fp)
	v.SetFrameSource(func(o mem.Owner) (mem.FrameID, error) {
		if id, ok := pool.Alloc(o); ok {
			return id, nil
		}
		if ok, err := v.ReleaseOldest(); err != nil || !ok {
			panic("quick vm: nothing to evict")
		}
		id, _ := pool.Alloc(o)
		return id, nil
	})
	return v, fp, pool, &clock
}
