package exp

import (
	"context"
	"testing"

	"compcache/internal/fault"
	"compcache/internal/machine"
	"compcache/internal/runner"
	"compcache/internal/stats"
	"compcache/internal/workload"
)

func smallFaultsOptions() FaultsOptions {
	return FaultsOptions{
		MemoryMB: 1,
		Pages:    384,
		Rates:    []float64{0, 1e-3, 1e-2},
		Trials:   2,
		Seed:     1,
	}
}

// TestFaultSweepDeterministicAcrossParallelism is the determinism acceptance
// test: identical seeds and fault configs must produce byte-identical output
// at -j 1 and -j 8, faults included.
func TestFaultSweepDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallelism int) string {
		opts := smallFaultsOptions()
		opts.Parallelism = parallelism
		res, err := FaultSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().String() + res.Table().CSV()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("fault sweep differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestFaultSweepShape(t *testing.T) {
	res, err := FaultSweep(smallFaultsOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	p0 := res.Points[0]
	if p0.Survived != p0.Trials || p0.Overhead != 1.0 || p0.Faults.Any() {
		t.Fatalf("rate-0 row should be clean: %+v", p0)
	}
	if res.BaseTime == 0 {
		t.Fatal("no fault-free baseline time")
	}
	for _, p := range res.Points[1:] {
		if p.Survived > p.Trials {
			t.Fatalf("survived %d of %d", p.Survived, p.Trials)
		}
	}
}

// TestUnrecoverableKeepsSiblingResults is the error-propagation acceptance
// test: one run dying of an unrecoverable fault must surface a typed error
// through the runner without losing the sibling runs' results.
func TestUnrecoverableKeepsSiblingResults(t *testing.T) {
	w := &workload.Thrasher{Pages: 384, Write: true, Passes: 2, Seed: 1}
	healthy := machine.Default(1 << 20).WithCC()
	// Corruption at rate 1 on both layers: the first re-read of a compressed
	// fragment is corrupt with no clean copy anywhere, so this run dies.
	doomed := healthy.WithFaults(fault.Config{
		Seed:                2,
		CacheCorruptionRate: 1,
		SwapCorruptionRate:  1,
	})
	cfgs := []machine.Config{healthy, doomed, healthy}

	runs, err := runner.Map(context.Background(), len(cfgs), len(cfgs),
		func(_ context.Context, i int) (stats.Run, error) {
			return workload.Measure(cfgs[i], workload.Clone(w))
		})
	if err == nil {
		t.Fatal("doomed run reported no error")
	}
	if !fault.IsUnrecoverable(err) {
		t.Fatalf("aggregated error is not typed unrecoverable: %v", err)
	}
	if runs[0].Time == 0 {
		t.Fatal("sibling result before the failure was lost")
	}
	if runs[1].Time != 0 {
		t.Fatal("died run should hold the zero value")
	}
	// The third sibling may or may not have been dispatched before the
	// failure was observed; what matters is the slice keeps all slots.
	if len(runs) != len(cfgs) {
		t.Fatalf("results have %d slots, want %d", len(runs), len(cfgs))
	}
}
