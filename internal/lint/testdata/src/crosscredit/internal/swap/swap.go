// Package swap is the crosscredit fixture for direct cross-package codec
// calls from a scoped package.
package swap

import (
	"time"

	"compcache/crosscredit/internal/compress"
	"compcache/crosscredit/internal/sim"
)

// Store compresses pages on their way to the backing store.
type Store struct {
	clock *sim.Clock
	codec compress.LZ
}

// BadFlush compresses a page from another package without charging.
func (s *Store) BadFlush(p []byte) []byte { // want `BadFlush does codec/device work \(BadFlush → compress\.Compress\)`
	return s.codec.Compress(p)
}

// GoodFlush charges the clock for the same work.
func (s *Store) GoodFlush(p []byte) []byte {
	out := s.codec.Compress(p)
	s.clock.Advance(time.Duration(len(p)))
	return out
}
