package exp

import (
	"fmt"
	"time"

	"compcache/internal/machine"
	"compcache/internal/workload"
)

// Fig3Point is one x position of Figure 3: one address-space size measured
// four ways.
type Fig3Point struct {
	SizeMB    int
	StdRW     time.Duration // average page access, unmodified system, read/write
	CCRW      time.Duration // with compression cache, read/write
	StdRO     time.Duration // unmodified, read-only
	CCRO      time.Duration // with compression cache, read-only
	SpeedRW   float64       // Figure 3(b): StdRW / CCRW
	SpeedRO   float64       // Figure 3(b): StdRO / CCRO
	CCHitRW   float64
	CCHitRO   float64
	CompRatio float64
}

// Fig3Result is the full sweep.
type Fig3Result struct {
	MemoryMB int
	Points   []Fig3Point
}

// Fig3Options sizes the experiment.
type Fig3Options struct {
	// MemoryMB is user-available memory; the paper uses ~6.
	MemoryMB int
	// SizesMB are the address-space sizes to sweep; the paper sweeps 0-40.
	SizesMB []int
	// Passes is the number of timed access sweeps after initialization.
	Passes int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultFig3Options returns the sweep for the given scale.
func DefaultFig3Options(s Scale) Fig3Options {
	if s == Paper {
		return Fig3Options{
			MemoryMB: 6,
			SizesMB:  []int{2, 4, 6, 8, 10, 12, 15, 20, 25, 30, 35, 40},
			Passes:   2,
			Seed:     1,
		}
	}
	return Fig3Options{
		MemoryMB: 2,
		SizesMB:  []int{1, 2, 3, 4, 6, 8},
		Passes:   2,
		Seed:     1,
	}
}

// Fig3 runs the §5.1 thrasher sweep: average page access time and speedup
// versus address-space size, read-only and read-write, with and without the
// compression cache.
func Fig3(opts Fig3Options) (*Fig3Result, error) {
	res := &Fig3Result{MemoryMB: opts.MemoryMB}
	memBytes := int64(opts.MemoryMB) << 20
	for _, sizeMB := range opts.SizesMB {
		pt := Fig3Point{SizeMB: sizeMB}
		pages := int32(sizeMB << 20 / 4096)
		for _, write := range []bool{true, false} {
			mk := func() *workload.Thrasher {
				return &workload.Thrasher{Pages: pages, Write: write, Passes: opts.Passes, Seed: opts.Seed}
			}
			cmp, err := workload.RunBoth(machine.Default(memBytes), machine.Default(memBytes).WithCC(), mk())
			if err != nil {
				return nil, fmt.Errorf("fig3 %dMB write=%v: %w", sizeMB, write, err)
			}
			touches := time.Duration(mk().TimedSweeps()) * time.Duration(pages)
			if write {
				pt.StdRW = cmp.Std.Time / touches
				pt.CCRW = cmp.CC.Time / touches
				pt.SpeedRW = cmp.Speedup()
				pt.CCHitRW = cmp.CC.CC.HitRate()
				pt.CompRatio = cmp.CC.Comp.Ratio()
			} else {
				pt.StdRO = cmp.Std.Time / touches
				pt.CCRO = cmp.CC.Time / touches
				pt.SpeedRO = cmp.Speedup()
				pt.CCHitRO = cmp.CC.CC.HitRate()
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// TableA renders Figure 3(a): average page access time per curve.
func (r *Fig3Result) TableA() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3(a): average page access time (user memory %d MB)", r.MemoryMB),
		Header: []string{"size(MB)", "std_rw", "cc_rw", "std_ro", "cc_ro"},
		Note:   "std = unmodified system, cc = compression cache; _rw touches write one word per page, _ro only read.",
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.SizeMB),
			fmt.Sprint(p.StdRW.Round(time.Microsecond)),
			fmt.Sprint(p.CCRW.Round(time.Microsecond)),
			fmt.Sprint(p.StdRO.Round(time.Microsecond)),
			fmt.Sprint(p.CCRO.Round(time.Microsecond)))
	}
	return t
}

// TableB renders Figure 3(b): speedup relative to the unmodified system.
func (r *Fig3Result) TableB() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3(b): speedup relative to the unmodified system (user memory %d MB)", r.MemoryMB),
		Header: []string{"size(MB)", "cc_rw", "cc_ro", "hit_rw", "hit_ro", "ratio"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.SizeMB),
			fmt.Sprintf("%.2f", p.SpeedRW),
			fmt.Sprintf("%.2f", p.SpeedRO),
			fmt.Sprintf("%.2f", p.CCHitRW),
			fmt.Sprintf("%.2f", p.CCHitRO),
			fmt.Sprintf("%.2f", p.CompRatio))
	}
	return t
}
