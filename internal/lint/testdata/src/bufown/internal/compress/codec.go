// Package compress exercises the bufown ownership contracts on
// codec-shaped functions: src is a read-only borrow of the caller's
// page, dst is a recycled scratch buffer that may be appended to and
// returned but never retained or read past len.
package compress

// Keeper retains the borrowed source page in a field.
type Keeper struct{ last []byte }

// Compress stores src past the call — the cache would then alias a page
// the VM is about to reuse.
func (k *Keeper) Compress(dst, src []byte) []byte {
	k.last = src // want `Compress retains borrowed buffer src past the call`
	return dst
}

// Aliaser returns src-derived memory instead of dst.
type Aliaser struct{}

// Compress aliases the caller's page into the compressed stream.
func (Aliaser) Compress(dst, src []byte) []byte {
	return src // want `Compress returns memory derived from borrowed buffer src`
}

// Scratcher reads dst beyond len: the recycled scratch buffer's
// capacity holds garbage from the previous call.
type Scratcher struct{}

// Decompress reslices dst to cap before writing it.
func (Scratcher) Decompress(dst, src []byte) ([]byte, error) {
	grown := dst[:cap(dst)] // want `Decompress reslices borrowed buffer dst to cap`
	n := copy(grown, src)
	return grown[:n], nil
}

// RoundTrip follows the contract: dst is grown by append and returned,
// src is only read. No findings.
type RoundTrip struct{}

// Compress is the contract-clean shape.
func (RoundTrip) Compress(dst, src []byte) []byte {
	return append(dst[:0], src...)
}

// Decompress is the contract-clean shape.
func (RoundTrip) Decompress(dst, src []byte) ([]byte, error) {
	return append(dst[:0], src...), nil
}
