// Package stats is the errdrop fixture's miniature of the real stats
// package: the nested Faults view the paged-data paths report into.
package stats

// Faults is the nested per-class fault-counter view.
type Faults struct {
	DiskRead  int
	DiskWrite int
}

// Any reports whether any fault fired.
func (f Faults) Any() bool { return f.DiskRead+f.DiskWrite > 0 }

// Run is a trial summary.
type Run struct {
	// Faults is the real, nested view.
	Faults Faults
}
