package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"compcache/internal/cluster"
	"compcache/internal/machine"
	"compcache/internal/netdev"
	"compcache/internal/obs"
	"compcache/internal/runner"
)

// fleetPopulate is phase 1 of each member's program: write an incompressible
// working set several times physical memory (every eviction must leave the
// machine), tagging every page.
func fleetPopulate(m *machine.Machine, pages int32, seed int64) (*machine.Space, *rand.Rand) {
	ps := int64(m.Config().PageSize)
	s := m.NewSegment("fleet", int64(pages)*ps)
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, ps)
	for p := int32(0); p < pages; p++ {
		rng.Read(buf)
		s.Write(int64(p)*ps, buf)
		s.WriteWord(int64(p)*ps, tag(seed, p))
	}
	return s, rng
}

// fleetVerify is phase 2: sweep the set twice in seed-shuffled order,
// verifying every tag — so any misrouted or stale remote copy shows up as a
// wrong word, not just a checksum failure. The shuffle also makes the fault
// sequence (and with it the whole fleet timeline) a function of the
// per-machine stream.
func fleetVerify(m *machine.Machine, s *machine.Space, pages int32, seed int64, rng *rand.Rand) error {
	ps := int64(m.Config().PageSize)
	for pass := 0; pass < 2; pass++ {
		for _, p := range rng.Perm(int(pages)) {
			if got := s.ReadWord(int64(p) * ps); got != tag(seed, int32(p)) && m.Err() == nil {
				return fmt.Errorf("pass %d page %d: got %#x want %#x", pass, p, got, tag(seed, int32(p)))
			}
		}
	}
	return m.Err()
}

func tag(seed int64, p int32) uint64 { return uint64(seed)<<24 ^ uint64(p)*0x9e3779b9 }

// runFleet drives a two-phase fleet run, optionally cycling the kernel
// through a snapshot/restore at the phase boundary.
func runFleet(cfg cluster.Config, pages int32, cycle bool) (*cluster.Cluster, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	spaces := make([]*machine.Space, c.Size())
	rngs := make([]*rand.Rand, c.Size())
	errs := make([]error, c.Size())
	for i := 0; i < c.Size(); i++ {
		i := i
		c.Go(i, func(m *machine.Machine) {
			spaces[i], rngs[i] = fleetPopulate(m, pages, c.SeedFor(i))
			errs[i] = m.Err()
		})
	}
	c.Run()
	if cycle {
		if err := c.SnapshotCycle(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.Size(); i++ {
		i := i
		c.Go(i, func(m *machine.Machine) {
			if errs[i] == nil {
				errs[i] = fleetVerify(m, spaces[i], pages, c.SeedFor(i), rngs[i])
			}
		})
	}
	c.Run()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("machine %d: %w", i, err)
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if err := c.CheckInvariants(); err != nil {
		return nil, err
	}
	return c, nil
}

// TestFleetRoundTrip drives a 3-machine fleet through a shared server with
// donation enabled: pages must migrate machine-to-machine (forwards), spill
// into the server tier, come back intact, and be counted as remote-ins.
func TestFleetRoundTrip(t *testing.T) {
	cfg := cluster.Config{
		Machines:       3,
		MemoryBytes:    48 * 4096,
		Link:           netdev.Ethernet10(),
		Seed:           42,
		DonationFrames: 8,
	}
	c, err := runFleet(cfg, 96, false)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Server().Stats()
	if st.Ops == 0 {
		t.Fatal("fleet ran without touching the shared server")
	}
	if st.Forwards == 0 {
		t.Fatal("donation enabled but no machine-to-machine forwards happened")
	}
	var remoteIns uint64
	for i := 0; i < c.Size(); i++ {
		remoteIns += c.Machine(i).Stats().VM.RemoteIns
	}
	if remoteIns == 0 {
		t.Fatal("no fault was satisfied from fleet memory")
	}
	if c.Run() != c.Kernel.Now() {
		t.Fatal("idle re-run moved the fleet clock")
	}
}

// TestFleetSpillsWithoutDonation pins the fallback path: with no donated
// frames every remote placement must spill to the server's compressed tier,
// and reads back out of it must hit the tier or its disk.
func TestFleetSpillsWithoutDonation(t *testing.T) {
	cfg := cluster.Config{
		Machines:    2,
		MemoryBytes: 48 * 4096,
		Link:        netdev.Ethernet10(),
		Seed:        7,
	}
	c, err := runFleet(cfg, 96, false)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Server().Stats()
	if st.Forwards != 0 {
		t.Fatalf("no donation budget, yet %d forwards", st.Forwards)
	}
	if st.TierHits+st.TierMiss == 0 {
		t.Fatal("spilled pages never read back through the tier")
	}
}

// TestSeedForMembershipStable pins the satellite contract: a machine's PRNG
// stream is a function of (fleet seed, machine ID) alone, so growing the
// fleet never shifts a sibling's stream.
func TestSeedForMembershipStable(t *testing.T) {
	mk := func(n int) *cluster.Cluster {
		c, err := cluster.New(cluster.Config{Machines: n, MemoryBytes: 32 * 4096, Link: netdev.Ethernet10(), Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	small, big := mk(2), mk(5)
	for i := 0; i < small.Size(); i++ {
		if small.SeedFor(i) != big.SeedFor(i) {
			t.Fatalf("machine %d seed shifted when the fleet grew: %d vs %d", i, small.SeedFor(i), big.SeedFor(i))
		}
	}
	if small.SeedFor(0) == small.SeedFor(1) {
		t.Fatal("sibling machines share a seed")
	}
}

// fleetTrace renders everything observable about one fleet run as a byte
// string: per-machine metrics snapshots and stats, server counters, final
// fleet time.
func fleetTrace(cfg cluster.Config, pages int32, cycle bool) (string, error) {
	cfg.Obs = &obs.Options{}
	c, err := runFleet(cfg, pages, cycle)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i := 0; i < c.Size(); i++ {
		m := c.Machine(i)
		fmt.Fprintf(&sb, "== machine %d @ %d ==\n%s%s\n", i, m.Clock.Now(), m.Stats().String(), m.Metrics().String())
	}
	fmt.Fprintf(&sb, "server %+v\nfleet @ %d\n", c.Server().Stats(), c.Kernel.Now())
	return sb.String(), nil
}

// TestSnapshotCycleNoOp pins the phase-boundary snapshot contract: a fleet
// that cycles its kernel through SnapshotCycle between phases produces a
// byte-identical trace to one that never snapshots.
func TestSnapshotCycleNoOp(t *testing.T) {
	cfg := cluster.Config{
		Machines:       3,
		MemoryBytes:    48 * 4096,
		Link:           netdev.Ethernet10(),
		Seed:           5,
		DonationFrames: 8,
	}
	plain, err := fleetTrace(cfg, 96, false)
	if err != nil {
		t.Fatal(err)
	}
	cycled, err := fleetTrace(cfg, 96, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain != cycled {
		t.Fatalf("snapshot cycle perturbed the fleet trace (%d vs %d bytes)", len(plain), len(cycled))
	}
}

// TestClusterDeterminism is the tentpole's hard contract at fleet scale: a
// 3-machine cluster produces byte-identical traces — event ordering, every
// histogram, the shared server timeline — whether the sweep of fleets runs
// on one worker or eight. The kernel serializes actors inside each fleet, so
// host parallelism across fleets must not be able to perturb anything.
func TestClusterDeterminism(t *testing.T) {
	cells := []cluster.Config{
		{Machines: 3, MemoryBytes: 48 * 4096, Link: netdev.Ethernet10(), Seed: 1, DonationFrames: 8},
		{Machines: 3, MemoryBytes: 48 * 4096, Link: netdev.Ethernet10(), Seed: 2, DonationFrames: 8},
		{Machines: 3, MemoryBytes: 48 * 4096, Link: netdev.Wireless2(), Seed: 1},
		{Machines: 3, MemoryBytes: 32 * 4096, Link: netdev.Ethernet10(), Seed: 3, DonationFrames: 4},
	}
	render := func(ctx context.Context, i int) (string, error) {
		// Odd cells cycle the kernel through a snapshot at the phase
		// boundary; byte-identity must hold regardless.
		return fleetTrace(cells[i], 80, i%2 == 1)
	}
	serial, err := runner.Map(context.Background(), 1, len(cells), render)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.Map(context.Background(), 8, len(cells), render)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if serial[i] == "" {
			t.Fatalf("cell %d produced an empty trace", i)
		}
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: -j1 and -j8 fleet traces differ (%d vs %d bytes)", i, len(serial[i]), len(parallel[i]))
		}
	}
	if serial[0] == serial[1] {
		t.Fatal("different fleet seeds produced identical traces")
	}
}
