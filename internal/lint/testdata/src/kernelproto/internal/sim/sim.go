// Package sim is a minimal stand-in for the discrete-event kernel,
// matched by kernelproto's internal/sim suffix rule. Bodies here are
// exempt from scanning: the kernel IS the baton implementation.
package sim

// Time is virtual time.
type Time int64

// ActorID names an actor.
type ActorID int32

// Kernel mirrors the spawn primitives the analyzer seeds on.
type Kernel struct {
	now  Time
	runq []func()
}

// Go arms fn as an actor body.
func (k *Kernel) Go(id ActorID, fn func()) { k.runq = append(k.runq, fn) }

// Bind re-arms an existing actor with a fresh body.
func (k *Kernel) Bind(id ActorID, fn func()) { k.runq = append(k.runq, fn) }

// Schedule arms fn to run at a virtual instant.
func (k *Kernel) Schedule(at Time, id ActorID, fn func(Time)) {
	k.runq = append(k.runq, func() { fn(at) })
}

// Wait parks the calling actor until the virtual instant; it is the
// baton-sanctioned way an actor body blocks.
func (k *Kernel) Wait(id ActorID, until Time) Time {
	if until > k.now {
		k.now = until
	}
	return k.now
}
