package exp

import (
	"context"
	"fmt"
	"time"

	"compcache/internal/disk"
	"compcache/internal/machine"
	"compcache/internal/model"
	"compcache/internal/netdev"
	"compcache/internal/runner"
	"compcache/internal/stats"
	"compcache/internal/swap"
	"compcache/internal/workload"
)

// Extension experiments quantify §6's claims about when compressed paging
// will matter more: "hardware compression, which would improve the
// disparity between compression speeds and I/O rates; faster processors,
// which would do the same thing for software compression; and slower
// backing stores, such as wireless networks." Like the ablations, each
// builds its grid of independent runs up front and fans them out across up
// to workers concurrent machines (0 = one per core, 1 = serial), with rows
// assembled in grid order so the output is byte-identical at any
// parallelism.

// BackingStoreSweep runs the same over-committed thrasher against four
// backing stores, from a fast disk to the paper's mobile wireless scenario,
// measuring how the compression cache's advantage grows as the backing
// store slows.
func BackingStoreSweep(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: speedup vs backing-store speed (§6 'slower backing stores, such as wireless networks')",
		Header: []string{"backing store", "std time", "cc time", "speedup"},
		Note: "Read-mostly, fits-compressed working set. For write-heavy working sets that spill past the\n" +
			"cache, slow bandwidth-limited links can invert the result: swap rewrites and garbage collection\n" +
			"cost more than the avoided reads save.",
	}
	fast := disk.RZ57()
	fast.BytesPerSec = 4e6
	fast.SeekAvg = 8 * time.Millisecond
	fast.RotLatency = 4 * time.Millisecond

	type backing struct {
		name string
		mk   func(machine.Config) machine.Config
	}
	// Ordered from the fastest backing store to the slowest; note the
	// paper's own §3 footnote holds here too: paging over a 10-Mbps
	// Ethernet to a page server is faster than the local RZ57.
	cases := []backing{
		{"10-Mbps Ethernet page server", func(c machine.Config) machine.Config {
			return c.WithNetwork(netdev.Ethernet10())
		}},
		{"fast disk (4 MB/s, 8 ms seek)", func(c machine.Config) machine.Config {
			c.Disk = fast
			return c
		}},
		{"RZ57 local disk (paper)", func(c machine.Config) machine.Config { return c }},
		{"2-Mbps wireless page server", func(c machine.Config) machine.Config {
			return c.WithNetwork(netdev.Wireless2())
		}},
	}
	// Read-mostly thrasher whose working set fits once compressed: the
	// cache converts every backing-store read into a decompression, so its
	// advantage scales directly with how slow the backing store is (the §6
	// claim). Write-heavy spilling workloads behave differently — see the
	// note the table prints.
	w := &workload.Thrasher{Pages: pages, Write: false, Passes: 3,
		CompressTarget: 0.15, Seed: seed}
	var jobs []job
	for _, b := range cases {
		base := b.mk(machine.Default(int64(memoryMB) << 20))
		jobs = append(jobs, job{base, w}, job{base.WithCC(), w})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for bi, b := range cases {
		cmp := workload.Comparison{Std: runs[2*bi], CC: runs[2*bi+1]}
		t.AddRow(b.name, fmtDur(cmp.Std.Time), fmtDur(cmp.CC.Time),
			fmt.Sprintf("%.2f", cmp.Speedup()))
	}
	return t, nil
}

// CompressionSpeedSweep varies the compression bandwidth from half the
// paper's software speed up to hardware-class speeds, holding the disk
// fixed — the other §6 axis. Decompression tracks at 2x as throughout.
func CompressionSpeedSweep(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: speedup vs compression speed (§6 'hardware compression / faster processors')",
		Header: []string{"compression speed", "std time", "cc time", "speedup"},
		Note:   "The paper's DECstation compresses ~1 MB/s in software; 10-40 MB/s models a hardware engine.",
	}
	w := &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}
	base := machine.Default(int64(memoryMB) << 20)
	bws := []float64{0.5e6, 1e6, 4e6, 10e6, 40e6}
	jobs := []job{{base, w}} // the shared baseline runs as job 0
	for _, bw := range bws {
		cfg := base.WithCC()
		cfg.Cost.CompressBW = bw
		cfg.Cost.DecompressBW = 2 * bw
		jobs = append(jobs, job{cfg, w})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	std := runs[0]
	for i, bw := range bws {
		cc := runs[i+1]
		label := fmt.Sprintf("%.1f MB/s software", bw/1e6)
		if bw > 2e6 {
			label = fmt.Sprintf("%.0f MB/s (hardware-class)", bw/1e6)
		}
		if bw == 1e6 {
			label = "1.0 MB/s software (paper)"
		}
		t.AddRow(label, fmtDur(std.Time), fmtDur(cc.Time),
			fmt.Sprintf("%.2f", float64(std.Time)/float64(cc.Time)))
	}
	return t, nil
}

// MobileScenario is the paper's §1 pitch run end-to-end: a small-memory
// mobile computer paging over wireless, running the application mix, with
// and without the compression cache.
func MobileScenario(memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: the §1 mobile scenario — small memory, wireless paging",
		Header: []string{"workload", "std time", "cc time", "speedup"},
	}
	msgs := memoryMB << 20 / 128
	loads := []workload.Workload{
		&workload.Thrasher{Pages: int32(memoryMB * 512), Write: true, Passes: 2, Seed: seed},
		&workload.Compare{N: memoryMB << 20 / 384, Band: 384, Seed: seed},
		&workload.Gold{Messages: msgs, WordsPerMessage: 24, VocabWords: 3000,
			Queries: msgs / 3, Phase: workload.GoldWarm, Seed: seed},
	}
	var jobs []job
	for _, w := range loads {
		base := machine.Default(int64(memoryMB) << 20).WithNetwork(netdev.Wireless2())
		jobs = append(jobs, job{base, w}, job{base.WithCC(), w})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for wi, w := range loads {
		cmp := workload.Comparison{Std: runs[2*wi], CC: runs[2*wi+1]}
		t.AddRow(w.Name(), fmtDur(cmp.Std.Time), fmtDur(cmp.CC.Time),
			fmt.Sprintf("%.2f", cmp.Speedup()))
	}
	return t, nil
}

// AdvisoryPinning quantifies §3's comparison between application advisories
// and the compression cache: for the cyclic workload, pinning part of the
// working set caps LRU's pathology ("half the pages could effectively be
// pinned in memory with faults occurring only on the other half"), but
// "with fast compression, even reducing I/O by a factor of two will be
// inferior to keeping all pages compressed in memory".
func AdvisoryPinning(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: §3 advisory pinning vs the compression cache (cyclic read-only sweep, 2x memory)",
		Header: []string{"system", "time", "faults", "speedup vs std"},
	}
	base := machine.Default(int64(memoryMB) << 20)
	cases := []struct {
		name string
		cfg  machine.Config
		pin  float64
	}{
		{"unmodified LRU", base, 0},
		{"unmodified + pin half the working set", base, 0.5},
		{"compression cache", base.WithCC(), 0},
	}
	var jobs []job
	for _, c := range cases {
		jobs = append(jobs, job{c.cfg, &workload.Thrasher{
			Pages: pages, Write: false, Passes: 3, PinFraction: c.pin, Seed: seed}})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	stdTime := runs[0].Time
	for i, c := range cases {
		st := runs[i]
		t.AddRow(c.name, fmtDur(st.Time), fmt.Sprint(st.VM.Faults),
			fmt.Sprintf("%.2f", float64(stdTime)/float64(st.Time)))
	}
	return t, nil
}

// CompressedFileCache measures §6's file-system extension: evicted buffer
// cache blocks retained in compressed form, against the plain buffer cache,
// on a cyclic file-scan working set larger than memory. The two machines
// need more than a stats block (the compressed-cache hit counter lives on
// the file system), so this one drives the runner directly.
func CompressedFileCache(memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: compressed file buffer cache (§6)",
		Header: []string{"file cache", "time", "device reads", "compressed-cache hits"},
	}
	// A file at 2x memory whose blocks compress ~8:1: compressed, the whole
	// file fits in memory, which is precisely when §6 expects the win.
	fileBytes := int64(memoryMB) << 20 * 2
	type fcRun struct {
		st   stats.Run
		hits uint64
	}
	modes := []bool{false, true}
	runs, err := runner.Map(context.Background(), runner.Parallelism(workers), len(modes),
		func(_ context.Context, i int) (fcRun, error) {
			enabled := modes[i]
			cfg := machine.Default(int64(memoryMB) << 20).WithCC()
			cfg.CC.FileCache = enabled
			// File blocks are re-read in place rather than dirtied, so
			// LRU-like entry aging (rather than the paper's FIFO) is what
			// keeps the compressed copies alive between scans.
			cfg.CC.RefreshOnFault = enabled
			m, err := machine.New(cfg)
			if err != nil {
				return fcRun{}, err
			}
			w := &workload.FileScan{FileBytes: fileBytes, Passes: 3, CompressTarget: 0.12, Seed: seed}
			if err := w.Run(m); err != nil {
				return fcRun{}, err
			}
			if err := m.CheckInvariants(); err != nil {
				return fcRun{}, err
			}
			return fcRun{m.Stats(), m.FS.CompressedCacheHits()}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, enabled := range modes {
		name := "uncompressed only (baseline)"
		if enabled {
			name = "with compressed block cache"
		}
		t.AddRow(name, fmtDur(runs[i].st.Time), fmt.Sprint(runs[i].st.Disk.Reads),
			fmt.Sprint(runs[i].hits))
	}
	return t, nil
}

// LFSComparison quantifies §5.1's discussion of log-structured swap: "Sprite
// LFS could alleviate the problem of seeks between pageouts by grouping
// multiple pages into a single segment. However … LFS requires significant
// memory for buffers, and for LFS to clean segments containing swap files,
// it must copy more live blocks". Three machines run the same over-committed
// read/write thrasher: the unmodified baseline, the baseline paging into a
// log-structured store, and the compression cache.
func LFSComparison(memoryMB int, pages int32, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: paging into a log-structured backing store vs the compression cache (§5.1)",
		Header: []string{"system", "time", "disk writes", "cleaner passes", "speedup vs std"},
	}
	base := machine.Default(int64(memoryMB) << 20)
	cases := []struct {
		name string
		cfg  machine.Config
	}{
		{"unmodified (direct swap)", base},
		{"log-structured swap", base.WithLFS(swap.LFSConfig{SegmentBytes: 64 * 4096})},
		{"compression cache", base.WithCC()},
	}
	var jobs []job
	for _, c := range cases {
		jobs = append(jobs, job{c.cfg, &workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed}})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	stdTime := runs[0].Time
	for i, c := range cases {
		st := runs[i]
		t.AddRow(c.name, fmtDur(st.Time), fmt.Sprint(st.Disk.Writes), fmt.Sprint(st.Swap.GCs),
			fmt.Sprintf("%.2f", float64(stdTime)/float64(st.Time)))
	}
	return t, nil
}

// Multiprogramming measures the three-way memory trade with several
// processes active at once — the situation §4.2's policy is actually
// designed for ("the collective working set of active processes"). Two
// mixes run on both machines: a pair of compressible processes, and a
// compressible process sharing the machine with an incompressible one.
func Multiprogramming(memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Extension: multiprogrammed workload mixes (round-robin, shared memory)",
		Header: []string{"mix", "std time", "cc time", "speedup"},
	}
	// Each member's working set is 1x memory, so neither thrashes alone —
	// only their collective working set does. The quantum is much shorter
	// than a sweep, so the interleaving is genuinely concurrent.
	pages := int32(memoryMB * 256)
	const quantum = 64
	mixes := []struct {
		name string
		w    workload.Workload
	}{
		{"two compressible thrashers", &workload.Multi{QuantumRefs: quantum, Workloads: []workload.Workload{
			&workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed},
			&workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed + 1},
		}}},
		{"compressible + incompressible", &workload.Multi{QuantumRefs: quantum, Workloads: []workload.Workload{
			&workload.Thrasher{Pages: pages, Write: true, Passes: 2, Seed: seed},
			&workload.Thrasher{Pages: pages, Write: true, Passes: 2,
				CompressTarget: 0.95, Seed: seed + 1},
		}}},
	}
	var jobs []job
	for _, mix := range mixes {
		jobs = append(jobs,
			job{machine.Default(int64(memoryMB) << 20), mix.w},
			job{machine.Default(int64(memoryMB) << 20).WithCC(), mix.w})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for mi, mix := range mixes {
		cmp := workload.Comparison{Std: runs[2*mi], CC: runs[2*mi+1]}
		t.AddRow(mix.name, fmtDur(cmp.Std.Time), fmtDur(cmp.CC.Time),
			fmt.Sprintf("%.2f", cmp.Speedup()))
	}
	return t, nil
}

// ModelValidation checks the Figure 1(b) analytic model against the full
// simulator at matched parameters: the thrasher at W = 2M with pages
// compressing 4:1, on the default machine. The model's "compression speed
// relative to I/O" is derived from the machine model the same way the paper
// derives it — one page compression versus one page transfer including
// positioning.
func ModelValidation(memoryMB int, seed int64, workers int) (*Table, error) {
	t := &Table{
		Title:  "Validation: Figure 1(b) analytic model vs the full simulator (W = 2M, ratio ~0.25)",
		Header: []string{"case", "model speedup", "simulated speedup", "ratio"},
		Note: "The model idealizes faults as pure page moves; agreement within ~2x validates that the\n" +
			"simulator and the analysis describe the same machine.",
	}
	base := machine.Default(int64(memoryMB) << 20)
	m, err := machine.New(base) // defaulted config for parameter extraction
	if err != nil {
		return nil, err
	}
	cfg := m.Config()
	// One-page transfer time including positioning, from the disk model.
	// The read-write baseline seeks on every fault (write out, read in);
	// the read-only baseline reads sequentially and pays only the missed
	// rotation, as §5.1 describes ("no seek necessary if the pages are
	// close to each other in the swap file").
	compress := cfg.Cost.CompressCost(cfg.PageSize)
	pageIORW := cfg.Disk.PerOp + cfg.Disk.SeekAvg + cfg.Disk.RotLatency +
		cfg.Disk.TransferTime(cfg.PageSize)
	pageIORO := cfg.Disk.PerOp + cfg.Disk.RotLatency + cfg.Disk.TransferTime(cfg.PageSize)
	sRW := float64(pageIORW) / float64(compress)
	sRO := float64(pageIORO) / float64(compress)

	params := model.Default()
	pages := int32(memoryMB) * 256 * 2 // W = 2M
	writes := []bool{true, false}
	var jobs []job
	for _, write := range writes {
		w := &workload.Thrasher{Pages: pages, Write: write, Passes: 3, Seed: seed}
		jobs = append(jobs, job{base, w}, job{base.WithCC(), w})
	}
	runs, err := measureAll(workers, jobs)
	if err != nil {
		return nil, err
	}
	for wi, write := range writes {
		cmp := workload.Comparison{Std: runs[2*wi], CC: runs[2*wi+1]}
		ratio := cmp.CC.Comp.Ratio()
		var predicted float64
		name := "read-only"
		if write {
			predicted = params.ReferenceSpeedup(ratio, sRW)
			name = "read-write"
		} else {
			predicted = params.ReadOnlyReferenceSpeedup(ratio, sRO)
		}
		measured := cmp.Speedup()
		t.AddRow(name, fmt.Sprintf("%.2f", predicted), fmt.Sprintf("%.2f", measured),
			fmt.Sprintf("%.2f", measured/predicted))
	}
	return t, nil
}
