package exp

import (
	"fmt"

	"compcache/internal/model"
)

// Fig1Result holds one panel of Figure 1: a speedup surface over the
// (compression ratio, relative compression speed) plane plus the region map
// the paper shades.
type Fig1Result struct {
	Title  string
	Ratios []float64 // fraction of bytes remaining after compression
	Speeds []float64 // compression speed relative to I/O speed
	Grid   [][]float64
}

// Fig1a models transferring compressed pages to and from the backing store
// (the paper's Figure 1(a)).
func Fig1a() *Fig1Result {
	p := model.Default()
	r := &Fig1Result{
		Title:  "Figure 1(a): bandwidth speedup, compressed transfers to backing store",
		Ratios: model.Linspace(0.05, 1.0, 20),
		Speeds: model.Logspace(0.25, 32, 15),
	}
	r.Grid = model.Grid(p.BandwidthSpeedup, r.Ratios, r.Speeds)
	return r
}

// Fig1b models keeping compressed pages in memory for the cyclic workload
// with W = 2M (the paper's Figure 1(b)).
func Fig1b() *Fig1Result {
	p := model.Default()
	r := &Fig1Result{
		Title:  "Figure 1(b): mean memory-reference-time speedup, compressed pages kept in memory (W = 2M)",
		Ratios: model.Linspace(0.05, 1.0, 20),
		Speeds: model.Logspace(0.25, 32, 15),
	}
	r.Grid = model.Grid(p.ReferenceSpeedup, r.Ratios, r.Speeds)
	return r
}

// Regions classifies every grid point the way the paper's figure is shaded
// and reports the fraction of the plane in each region.
func (f *Fig1Result) Regions() map[string]float64 {
	counts := map[string]int{}
	total := 0
	for _, row := range f.Grid {
		for _, v := range row {
			counts[model.Region(v)]++
			total++
		}
	}
	out := map[string]float64{}
	for k, c := range counts {
		out[k] = float64(c) / float64(total)
	}
	return out
}

// Table renders the surface as a numeric grid (rows: compression ratio, best
// at top; columns: compression speed, slowest at left) with the paper's
// three-shade region map ('#' >6x, '+' 1-6x, '.' slowdown) as the note.
func (f *Fig1Result) Table() *Table {
	t := &Table{Title: f.Title}
	t.Header = []string{"ratio\\speed"}
	for _, s := range f.Speeds {
		t.Header = append(t.Header, fmt.Sprintf("%.2g", s))
	}
	for i, r := range f.Ratios {
		row := []string{fmt.Sprintf("%.2f", r)}
		for j := range f.Speeds {
			row = append(row, fmt.Sprintf("%.2f", f.Grid[i][j]))
		}
		t.AddRow(row...)
	}
	mapStr := "region map ('#' >6x, '+' 1-6x, '.' <1x); top row = best compression:\n"
	for i := range f.Ratios {
		for j := range f.Speeds {
			switch model.Region(f.Grid[i][j]) {
			case ">6x":
				mapStr += "#"
			case "1-6x":
				mapStr += "+"
			default:
				mapStr += "."
			}
		}
		mapStr += "\n"
	}
	t.Note = mapStr
	return t
}

// Tables implements Result.
func (f *Fig1Result) Tables() []*Table { return []*Table{f.Table()} }

// String renders the table.
func (f *Fig1Result) String() string { return f.Table().String() }
