package obs

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// The exporters hand-format every record instead of using encoding/json or
// reflection: field order, number formatting, and line endings are part of
// the determinism contract (a trace is a diffable artifact), so nothing may
// depend on struct tags or map iteration.

// appendEvent renders one event as a JSON object with a fixed field order.
func appendEvent(buf []byte, e Event) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, int64(e.T), 10)
	buf = append(buf, `,"class":"`...)
	buf = append(buf, e.Class.String()...)
	buf = append(buf, `","sub":"`...)
	buf = append(buf, e.Sub.String()...)
	buf = append(buf, `","seg":`...)
	buf = strconv.AppendInt(buf, int64(e.Seg), 10)
	buf = append(buf, `,"page":`...)
	buf = strconv.AppendInt(buf, int64(e.Page), 10)
	buf = append(buf, `,"bytes":`...)
	buf = strconv.AppendInt(buf, e.Bytes, 10)
	buf = append(buf, `,"dur":`...)
	buf = strconv.AppendInt(buf, int64(e.Dur), 10)
	buf = append(buf, `,"aux":`...)
	buf = strconv.AppendInt(buf, e.Aux, 10)
	buf = append(buf, "}\n"...)
	return buf
}

// WriteEventsJSONL renders events as one JSON object per line, fields in
// fixed order (t, class, sub, seg, page, bytes, dur, aux), durations and
// timestamps as integer virtual nanoseconds.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	buf := make([]byte, 0, 128)
	for _, e := range events {
		buf = appendEvent(buf[:0], e)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsCSV renders events as CSV with a header row, same field order
// as the JSONL exporter.
func WriteEventsCSV(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "t,class,sub,seg,page,bytes,dur,aux\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 96)
	for _, e := range events {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(e.T), 10)
		buf = append(buf, ',')
		buf = append(buf, e.Class.String()...)
		buf = append(buf, ',')
		buf = append(buf, e.Sub.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Seg), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Page), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Bytes, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Dur), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Aux, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimeline renders events as an aligned human-readable table, one line
// per event, timestamps and durations as time.Durations of virtual time. It
// is the view `cctrace -timeline` prints.
func WriteTimeline(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintf(w, "%14s  %-8s %-10s %6s %8s %9s %12s %6s\n",
		"t", "sub", "class", "seg", "page", "bytes", "dur", "aux"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%14s  %-8s %-10s %6d %8d %9d %12s %6d\n",
			time.Duration(e.T), e.Sub, e.Class, e.Seg, e.Page, e.Bytes, e.Dur, e.Aux); err != nil {
			return err
		}
	}
	return nil
}

// ClassCounts tallies events per class, indexed by class bit — the summary
// view's input. The fixed array keeps iteration order identical to the class
// declaration order.
func ClassCounts(events []Event) [classCount]uint64 {
	var counts [classCount]uint64
	for _, e := range events {
		for i := 0; i < classCount; i++ {
			if e.Class&(1<<i) != 0 {
				counts[i]++
			}
		}
	}
	return counts
}

// WriteClassSummary renders the per-class event counts (classes with no
// events omitted) in class declaration order.
func WriteClassSummary(w io.Writer, events []Event) error {
	counts := ClassCounts(events)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-12s %d\n", classNames[i], n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the snapshot as three CSV sections (counters, gauges,
// histograms), each name-sorted by construction of Snapshot.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := io.WriteString(w, "kind,name,value\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 96)
	for _, c := range s.Counters {
		buf = append(buf[:0], "counter,"...)
		buf = append(buf, c.Name...)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, c.Value, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		buf = append(buf[:0], "gauge,"...)
		buf = append(buf, g.Name...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, g.Value, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		buf = append(buf[:0], "hist,"...)
		buf = append(buf, h.Name...)
		buf = append(buf, ",count="...)
		buf = strconv.AppendUint(buf, h.Count, 10)
		buf = append(buf, " sum="...)
		buf = strconv.AppendInt(buf, int64(h.Sum), 10)
		buf = append(buf, " min="...)
		buf = strconv.AppendInt(buf, int64(h.Min), 10)
		buf = append(buf, " max="...)
		buf = strconv.AppendInt(buf, int64(h.Max), 10)
		for _, b := range h.Buckets {
			buf = append(buf, " le["...)
			buf = strconv.AppendInt(buf, int64(b.Le), 10)
			buf = append(buf, "]="...)
			buf = strconv.AppendUint(buf, b.Count, 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// String renders the snapshot via WriteCSV; convenient for tests and debug
// output.
func (s *Snapshot) String() string {
	if s == nil {
		return ""
	}
	var sb stringWriter
	_ = s.WriteCSV(&sb)
	return string(sb)
}

type stringWriter []byte

func (w *stringWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
