// Command ccsim runs one workload on a configurable simulated machine and
// prints the statistics block — the interactive way to explore the
// compression cache's behaviour.
//
// Usage:
//
//	ccsim [-mem MB] [-cc] [-codec name] [-workload name] [flags...]
//
// Workloads: thrasher_ro, thrasher_rw, compare, isca, sort_random,
// sort_partial, gold_create, gold_cold, gold_warm.
//
// Examples:
//
//	ccsim -workload thrasher_rw -mem 6 -size 20        # paper Figure 3 point
//	ccsim -workload compare -mem 8 -cc                 # best-case app
//	ccsim -workload sort_random -mem 8 -cc             # worst-case app
package main

import (
	"flag"
	"fmt"
	"os"

	"compcache/internal/fault"
	"compcache/internal/machine"
	"compcache/internal/obs"
	"compcache/internal/swap"
	"compcache/internal/workload"
)

func main() {
	memMB := flag.Int("mem", 6, "user memory in MB")
	useCC := flag.Bool("cc", false, "enable the compression cache")
	codec := flag.String("codec", "lzrw1", "compression codec (lzrw1, lzss, rle, null)")
	name := flag.String("workload", "thrasher_rw", "workload to run")
	sizeMB := flag.Int("size", 12, "working-set size in MB (thrasher, sort, compare scale)")
	passes := flag.Int("passes", 2, "thrasher passes")
	seed := flag.Int64("seed", 1, "workload random seed")
	partialIO := flag.Bool("partialio", false, "allow sub-block backing-store transfers (ablation)")
	span := flag.Bool("span", false, "let compressed pages span file blocks (ablation)")
	crashAt := flag.Uint64("crash-at-write", 0, "cut power at the Nth device write, reboot from the torn media and report recovery (arms the durable store formats)")
	eventsOut := flag.String("events", "", "export the run's observability events as JSONL to this file ('-' = stdout); with -crash-at-write, exports the reboot's recovery events")
	flag.Parse()

	cfg := machine.Default(int64(*memMB) << 20)
	if *useCC {
		cfg = cfg.WithCC()
		cfg.CC.Codec = *codec
	}
	cfg.FS.AllowPartialIO = *partialIO
	cfg.Swap.SpanBlocks = *span
	if *crashAt > 0 {
		if !*useCC {
			// The baseline's direct swap has no recoverable layout; crash
			// testing the baseline means paging into the durable LFS.
			cfg = cfg.WithLFS(swap.LFSConfig{Durable: true})
		}
		// Explicit rather than relying on the injector's auto-arming, so the
		// fault-free reboot configuration reads the same media format.
		cfg.Swap.CommitRecords = true
		cfg = cfg.WithFaults(fault.Config{Seed: *seed, CrashAtWrite: *crashAt})
	}

	pages := int32(*sizeMB << 20 / 4096)
	var w workload.Workload
	switch *name {
	case "thrasher_ro":
		w = &workload.Thrasher{Pages: pages, Write: false, Passes: *passes, Seed: *seed}
	case "thrasher_rw":
		w = &workload.Thrasher{Pages: pages, Write: true, Passes: *passes, Seed: *seed}
	case "compare":
		// Size the band matrix to about sizeMB.
		band := 1024
		n := *sizeMB << 20 / band
		w = &workload.Compare{N: n, Band: band, Seed: *seed}
	case "isca":
		w = &workload.CacheSim{CPUs: 8, Sets: 2048, Ways: 2,
			AddrWords: uint64(*sizeMB) << 20 / 8, BlockWordsList: []int{4, 16, 64},
			Refs: 1 << 20, Seed: *seed}
	case "sort_random":
		w = &workload.Sort{Bytes: int64(*sizeMB) << 20, Mode: workload.SortRandom, Seed: *seed}
	case "sort_partial":
		w = &workload.Sort{Bytes: int64(*sizeMB) << 20, Mode: workload.SortPartial, Seed: *seed}
	case "gold_create", "gold_cold", "gold_warm":
		phase := workload.GoldCreate
		switch *name {
		case "gold_cold":
			phase = workload.GoldCold
		case "gold_warm":
			phase = workload.GoldWarm
		}
		msgs := *sizeMB << 20 / (32 * 8 * 2) // index ~= sizeMB
		w = &workload.Gold{Messages: msgs, WordsPerMessage: 32, VocabWords: 16000,
			Queries: msgs / 3, Phase: phase, Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "ccsim: unknown workload %q\n", *name)
		os.Exit(2)
	}

	var opts []machine.Option
	if *eventsOut != "" {
		opts = append(opts, machine.WithObs(obs.Options{}))
	}
	mode := "baseline (no compression cache)"
	if *useCC {
		mode = fmt.Sprintf("compression cache on (%s)", *codec)
	}
	if *crashAt > 0 {
		runCrash(cfg, w, *memMB, mode, *crashAt, *eventsOut, opts)
		return
	}

	m, st, err := workload.MeasureMachine(cfg, w, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		os.Exit(1)
	}
	exportEvents(*eventsOut, m)
	fmt.Printf("workload %s on %d MB, %s\n\n", w.Name(), *memMB, mode)
	fmt.Print(st)
}

// exportEvents writes the machine's retained event window as JSONL; "" is
// off, "-" is stdout.
func exportEvents(path string, m *machine.Machine) {
	if path == "" {
		return
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := obs.WriteEventsJSONL(out, m.Events()); err != nil {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		os.Exit(1)
	}
}

// runCrash runs the workload until the armed power cut fires, reboots a
// machine from the torn media image, verifies the recovery, and prints the
// recovery report plus the rebooted machine's view of the store.
func runCrash(cfg machine.Config, w workload.Workload, memMB int, mode string, crashAt uint64, eventsOut string, opts []machine.Option) {
	m, _, err := workload.MeasureMachine(cfg, w, opts...)
	if err != nil && !fault.IsCrash(err) {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		os.Exit(1)
	}
	if m == nil || m.Introspect().Injector == nil || !m.Introspect().Injector.Crashed() {
		fmt.Fprintf(os.Stderr, "ccsim: the run finished before device write %d; crash earlier\n", crashAt)
		os.Exit(1)
	}
	fmt.Printf("workload %s on %d MB, %s\n", w.Name(), memMB, mode)
	fmt.Printf("power cut at device write %d, %v into the run\n\n", crashAt, m.Elapsed())

	reboot := cfg
	reboot.Faults = nil
	reborn, err := machine.NewFromMedia(reboot, m.FS.Image(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsim: reboot failed:", err)
		os.Exit(1)
	}
	exportEvents(eventsOut, reborn)
	fmt.Println("reboot:", reborn.Introspect().Recovery)
	stores, rebornStores := m.Introspect(), reborn.Introspect()
	switch {
	case stores.Clustered != nil:
		err = rebornStores.Clustered.VerifyRecovery(stores.Clustered)
	case stores.LFS != nil:
		err = rebornStores.LFS.VerifyRecovery(stores.LFS)
	default:
		err = fmt.Errorf("no recoverable store")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsim: recovery verification FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("recovery verified: no acknowledged-durable page lost, no torn fragment served")
}
