package fs

import (
	"bytes"
	"math/rand"
	"testing"

	"compcache/internal/disk"
	"compcache/internal/mem"
	"compcache/internal/sim"
)

func newTestFS(t *testing.T, opts Options) (*FS, *disk.Disk, *sim.Clock, *mem.Pool) {
	t.Helper()
	if opts.BlockSize == 0 {
		opts.BlockSize = 4096
	}
	var clock sim.Clock
	d, err := disk.New(disk.RZ57(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(64, opts.BlockSize)
	f, err := New(opts, d, &clock, pool)
	if err != nil {
		t.Fatal(err)
	}
	return f, d, &clock, pool
}

func TestNewValidation(t *testing.T) {
	var clock sim.Clock
	d, _ := disk.New(disk.RZ57(), &clock)
	pool := mem.NewPool(4, 4096)
	if _, err := New(Options{BlockSize: 0}, d, &clock, pool); err == nil {
		t.Error("BlockSize 0 accepted")
	}
	if _, err := New(Options{BlockSize: 1000}, d, &clock, pool); err == nil {
		t.Error("non-sector-multiple BlockSize accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	f := fsys.Create("data")
	msg := []byte("hello, sprite file system")
	f.WriteAt(msg, 100)
	got := make([]byte, len(msg))
	f.ReadAt(got, 100)
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	if f.Size() != 100+int64(len(msg)) {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestSparseReadsZero(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	f := fsys.Create("sparse")
	f.WriteAt([]byte("x"), 10000)
	got := make([]byte, 64)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("unwritten extent not zero")
	}
}

func TestCrossBlockIO(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	f := fsys.Create("span")
	data := make([]byte, 4096*3)
	rand.New(rand.NewSource(3)).Read(data)
	f.WriteAt(data, 2048) // spans 4 blocks, partial at both ends
	got := make([]byte, len(data))
	f.ReadAt(got, 2048)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-block round trip mismatch")
	}
}

func TestPartialWritePaysReadModifyWrite(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("rmw")
	// Populate one block and force it out of the cache.
	f.WriteAt(make([]byte, 4096), 0)
	fsys.DropCaches()
	r0 := d.Stats().Reads

	// Partial write to the uncached block: must read the whole block first.
	f.WriteAt(make([]byte, 2048), 0)
	if got := d.Stats().Reads - r0; got != 1 {
		t.Fatalf("partial write to uncached block issued %d reads, want 1", got)
	}
}

func TestFullBlockWriteSkipsRead(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("full")
	r0 := d.Stats().Reads
	f.WriteAt(make([]byte, 4096), 0) // exactly one whole block
	if got := d.Stats().Reads - r0; got != 0 {
		t.Fatalf("full-block write issued %d reads, want 0", got)
	}
}

func TestCacheHitAvoidsDisk(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("hot")
	f.WriteAt([]byte("abc"), 0)
	reads := d.Stats().Reads
	buf := make([]byte, 3)
	for i := 0; i < 10; i++ {
		f.ReadAt(buf, 0)
	}
	if d.Stats().Reads != reads {
		t.Fatal("cached reads went to disk")
	}
	hits, _ := fsys.CacheStats()
	if hits < 10 {
		t.Fatalf("hits = %d, want >= 10", hits)
	}
}

func TestSyncWritesDirtyBlocks(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("dirty")
	f.WriteAt(make([]byte, 4096*2), 0)
	w0 := d.Stats().Writes
	fsys.Sync()
	if got := d.Stats().Writes - w0; got != 2 {
		t.Fatalf("Sync wrote %d blocks, want 2", got)
	}
	// Second sync is a no-op.
	w1 := d.Stats().Writes
	fsys.Sync()
	if d.Stats().Writes != w1 {
		t.Fatal("Sync rewrote clean blocks")
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("evict")
	f.WriteAt(make([]byte, 4096), 0)
	w0 := d.Stats().Writes
	if ok, err := fsys.ReleaseOldest(); err != nil || !ok {
		t.Fatalf("ReleaseOldest: ok=%v err=%v", ok, err)
	}
	if d.Stats().Writes != w0+1 {
		t.Fatal("dirty eviction did not write back")
	}
	// Contents survive eviction via the platter.
	buf := make([]byte, 1)
	f.ReadAt(buf, 0)
}

func TestReleaseOldestEmptyCache(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	if ok, err := fsys.ReleaseOldest(); err != nil || ok {
		t.Fatalf("ReleaseOldest on empty cache: ok=%v err=%v", ok, err)
	}
	if _, ok := fsys.OldestAge(); ok {
		t.Fatal("OldestAge on empty cache reported ok")
	}
}

func TestLRUOrder(t *testing.T) {
	fsys, _, clock, _ := newTestFS(t, Options{})
	f := fsys.Create("lru")
	buf := make([]byte, 1)
	f.ReadAt(buf, 0) // block 0
	t0 := clock.Now()
	f.ReadAt(buf, 4096) // block 1
	f.ReadAt(buf, 0)    // touch block 0 again: block 1 is now LRU
	age, ok := fsys.OldestAge()
	if !ok {
		t.Fatal("OldestAge not ok")
	}
	if age < t0 {
		t.Fatalf("oldest age %v predates block 1 load at %v", age, t0)
	}
	fsys.ReleaseOldest()
	// Block 0 must still be cached: reading it is free.
	hits, _ := fsys.CacheStats()
	f.ReadAt(buf, 0)
	if h2, _ := fsys.CacheStats(); h2 != hits+1 {
		t.Fatal("evicted the recently used block instead of the LRU one")
	}
}

func TestCacheCapacity(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{CacheCapacity: 2})
	f := fsys.Create("cap")
	buf := make([]byte, 1)
	for i := int64(0); i < 5; i++ {
		f.ReadAt(buf, i*4096)
	}
	if fsys.CacheLen() > 2 {
		t.Fatalf("cache grew to %d blocks, cap 2", fsys.CacheLen())
	}
}

func TestRawIO(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("swap")
	data := make([]byte, 8192)
	rand.New(rand.NewSource(9)).Read(data)
	f.RawWrite(data, 4096, 8192)
	got := make([]byte, 8192)
	r0 := d.Stats().Reads
	f.RawRead(got, 4096, 8192)
	if !bytes.Equal(got, data) {
		t.Fatal("raw round trip mismatch")
	}
	if d.Stats().Reads != r0+1 {
		t.Fatal("raw read should be a single device op")
	}
}

func TestRawGranularityEnforced(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	f := fsys.Create("strict")
	defer func() {
		if recover() == nil {
			t.Fatal("sub-block raw write did not panic with AllowPartialIO=false")
		}
	}()
	f.RawWrite(make([]byte, 1024), 0, 1024)
}

func TestRawPartialIOAllowed(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{AllowPartialIO: true})
	f := fsys.Create("loose")
	f.RawWrite(make([]byte, 1024), 512, 1024) // sector-aligned: fine
	got := make([]byte, 1024)
	f.RawRead(got, 512, 1024)
}

func TestRawWriteAsync(t *testing.T) {
	fsys, _, clock, _ := newTestFS(t, Options{})
	f := fsys.Create("async")
	done, err := f.RawWriteAsync(make([]byte, 4096), 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatal("async write advanced the clock")
	}
	if done == 0 {
		t.Fatal("async completion instant should be positive")
	}
	// Contents are visible immediately (platter write-through).
	got := make([]byte, 4096)
	f.RawRead(got, 0, 4096)
}

func TestOpenAndCreate(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	if _, err := fsys.Open("missing"); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
	f := fsys.Create("x")
	f.WriteAt([]byte("abc"), 0)
	g, err := fsys.Open("x")
	if err != nil || g != f {
		t.Fatal("Open returned wrong file")
	}
	// Re-creating truncates.
	f2 := fsys.Create("x")
	if f2.Size() != 0 {
		t.Fatal("Create did not truncate")
	}
	buf := make([]byte, 3)
	f2.ReadAt(buf, 0)
	if !bytes.Equal(buf, make([]byte, 3)) {
		t.Fatal("truncated file retained data")
	}
}

func TestFramesConserved(t *testing.T) {
	fsys, _, _, pool := newTestFS(t, Options{})
	f := fsys.Create("cons")
	buf := make([]byte, 1)
	for i := int64(0); i < 20; i++ {
		f.ReadAt(buf, i*4096)
	}
	fsys.DropCaches()
	if pool.FreeCount() != pool.Total() {
		t.Fatalf("leaked frames: %d free of %d", pool.FreeCount(), pool.Total())
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctFilesDistinctExtents(t *testing.T) {
	fsys, _, _, _ := newTestFS(t, Options{})
	a := fsys.Create("a")
	b := fsys.Create("b")
	a.WriteAt([]byte("AAAA"), 0)
	b.WriteAt([]byte("BBBB"), 0)
	got := make([]byte, 4)
	a.ReadAt(got, 0)
	if string(got) != "AAAA" {
		t.Fatal("file contents aliased")
	}
}

func TestStagingHelpers(t *testing.T) {
	fsys, d, _, _ := newTestFS(t, Options{})
	f := fsys.Create("staged")
	data := make([]byte, 8192)
	rand.New(rand.NewSource(21)).Read(data)

	// Staging writes contents without touching the device.
	w0 := d.Stats().Writes
	f.WriteStage(0, data)
	if d.Stats().Writes != w0 {
		t.Fatal("WriteStage touched the device")
	}
	// Staged contents are readable for free.
	got := make([]byte, 8192)
	r0 := d.Stats().Reads
	f.ReadStaged(0, got)
	if d.Stats().Reads != r0 {
		t.Fatal("ReadStaged touched the device")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("staged round trip mismatch")
	}
	// Flushing charges exactly one device write for the region.
	f.RawWriteStaged(0, 8192)
	if d.Stats().Writes != w0+1 {
		t.Fatalf("RawWriteStaged wrote %d ops", d.Stats().Writes-w0)
	}
	if d.Stats().BytesWritten != 8192 {
		t.Fatalf("bytes written = %d", d.Stats().BytesWritten)
	}
}
