// Package snap is the versioned binary encoding machine snapshots use: a
// fixed-width little-endian stream with a magic/version header and a CRC-32
// trailer. Both ends carry sticky errors, so callers chain field writes and
// reads without per-call checks and inspect the error once at the end —
// the idiom keeps the per-subsystem SnapshotTo/RestoreFrom methods flat.
//
// The format is deliberately dumb: no varints, no compression, no field
// tags. Snapshots are pure functions of machine state, so two runs that
// reach the same state produce byte-identical snapshots — the property the
// determinism tests assert — and any structural drift between writer and
// reader surfaces as a checksum or length failure rather than silently
// misaligned fields.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// Magic opens every snapshot stream.
var Magic = [4]byte{'C', 'C', 'S', 'N'}

// Version is the current snapshot format version. Bump it on any change to
// what the subsystems write; Restore refuses other versions.
const Version = 1

// Writer serializes fixed-width values into a growing buffer.
type Writer struct {
	buf []byte
	err error
}

// NewWriter begins a snapshot stream: magic then version.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, Magic[:]...)
	w.U16(Version)
	return w
}

// Err reports the sticky error.
func (w *Writer) Err() error { return w.err }

// Bytes finalizes the stream: a CRC-32 of everything written so far is
// appended and the full buffer returned. The writer must not be used again.
func (w *Writer) Bytes() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf))
	w.buf = append(w.buf, crc[:]...)
	return w.buf, nil
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// I32 writes a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as 64 bits.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Dur writes a time.Duration as 64 bits.
func (w *Writer) Dur(v time.Duration) { w.I64(int64(v)) }

// Bytes32 writes a length-prefixed byte slice (uint32 length).
func (w *Writer) Bytes32(p []byte) {
	w.U32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Section writes a named section marker. Markers cost a few bytes and turn
// a misaligned restore into an immediate, located error instead of a
// garbage-field cascade.
func (w *Writer) Section(name string) { w.String(name) }

// Reader decodes a stream produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates the magic, version, and trailing checksum, returning
// a reader positioned after the header.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < 10 { // magic + version + crc
		return nil, fmt.Errorf("snap: %d-byte stream is too short", len(data))
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("snap: checksum mismatch (corrupt or truncated snapshot)")
	}
	if [4]byte{data[0], data[1], data[2], data[3]} != Magic {
		return nil, fmt.Errorf("snap: bad magic")
	}
	r := &Reader{buf: body, off: 4}
	if v := r.U16(); v != Version {
		return nil, fmt.Errorf("snap: version %d, this build reads %d", v, Version)
	}
	return r, nil
}

// Err reports the sticky error.
func (r *Reader) Err() error { return r.err }

// Close verifies the stream was consumed exactly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes after restore", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("snap: truncated stream (want %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Dur reads a time.Duration.
func (r *Reader) Dur() time.Duration { return time.Duration(r.I64()) }

// Bytes32 reads a length-prefixed byte slice. The slice is a copy.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	if r.err != nil {
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Section consumes a section marker and fails the stream if it does not
// match — the first line of defense against writer/reader drift.
func (r *Reader) Section(name string) {
	if r.err != nil {
		return
	}
	got := r.String()
	if r.err == nil && got != name {
		r.err = fmt.Errorf("snap: section %q, want %q (writer/reader drift)", got, name)
	}
}
