package swap

import (
	"fmt"

	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/stats"
)

// LFS is a log-structured backing store for uncompressed pages, modelling
// paging into Sprite LFS — the alternative the paper weighs against its own
// clustered store: "Sprite LFS could alleviate the problem of seeks between
// pageouts by grouping multiple pages into a single segment. However, it is
// not clear that paging into LFS would be desirable under heavy paging
// load. LFS requires significant memory for buffers, and for LFS to clean
// segments containing swap files, it must copy more 'live' blocks than for
// other types of data" (§5.1).
//
// All three of those properties are reproduced:
//
//   - pageouts accumulate in an in-memory segment buffer and reach the disk
//     as one large sequential write per segment — no per-page seeks;
//   - the segment buffer's frames are pinned from the shared pool, so LFS
//     genuinely costs memory that applications would otherwise use;
//   - rewritten pages leave dead blocks behind, and a cleaner must read
//     partly-live segments and copy their live pages forward before the
//     space can be reused.
type LFSConfig struct {
	// PageSize is the VM page size.
	PageSize int

	// SegmentBytes is the log segment size; Sprite LFS used large segments
	// (hundreds of KB) to amortize positioning. Default 256 KB.
	SegmentBytes int

	// MaxSegments caps the log's on-disk size, forcing the cleaner to run;
	// 0 sizes the log generously (cleaning still happens, later).
	MaxSegments int

	// CleanReserve is the number of free segments the cleaner tries to
	// keep ready. Default 2.
	CleanReserve int
}

func (c *LFSConfig) setDefaults() {
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 256 * 1024
	}
	if c.CleanReserve == 0 {
		c.CleanReserve = 2
	}
}

func (c LFSConfig) validate(blockSize int) error {
	if c.PageSize <= 0 || c.PageSize%blockSize != 0 {
		return fmt.Errorf("swap: lfs page size %d incompatible with block size %d", c.PageSize, blockSize)
	}
	if c.SegmentBytes < c.PageSize || c.SegmentBytes%c.PageSize != 0 {
		return fmt.Errorf("swap: lfs segment size %d must be a multiple of the page size", c.SegmentBytes)
	}
	if c.MaxSegments < 0 || c.CleanReserve < 0 {
		return fmt.Errorf("swap: negative lfs limit")
	}
	return nil
}

// lfsLoc locates a page in the log.
type lfsLoc struct {
	seg int32
	idx int32 // page index within the segment
}

// lfsSegment is the bookkeeping for one on-disk segment.
type lfsSegment struct {
	pages []PageKey // key per page slot; stale slots hold a tombstone
	live  int
}

// lfsTombstone marks a dead slot.
var lfsTombstone = PageKey{Seg: -1 << 30, Page: -1}

// LFS is the log-structured store.
type LFS struct {
	cfg          LFSConfig
	fsys         *fs.FS
	file         *fs.File
	pool         *mem.Pool
	pagesPerSeg  int
	bufferFrames []mem.FrameID // pinned segment buffer

	segs    []*lfsSegment
	free    []int32 // free segment numbers
	loc     map[PageKey]lfsLoc
	cur     int32 // segment being filled (in the buffer)
	curUsed int   // pages staged in the buffer
	inClean bool

	// Cleaner scratch, reused across passes so steady-state cleaning
	// allocates nothing: recycled segment bookkeeping objects and the
	// page-copy/segment-sweep buffers.
	segPool  []*lfsSegment
	copyBuf  []byte
	sweepBuf []byte

	st stats.Swap
}

// NewLFS creates a log-structured store. The segment buffer's frames are
// taken from pool immediately and never returned — the "significant memory
// for buffers" the paper warns about.
func NewLFS(cfg LFSConfig, fsys *fs.FS, pool *mem.Pool) (*LFS, error) {
	cfg.setDefaults()
	if err := cfg.validate(fsys.BlockSize()); err != nil {
		return nil, err
	}
	l := &LFS{
		cfg:         cfg,
		fsys:        fsys,
		file:        fsys.Create("swap.lfs"),
		pool:        pool,
		pagesPerSeg: cfg.SegmentBytes / cfg.PageSize,
		loc:         make(map[PageKey]lfsLoc),
	}
	for i := 0; i < l.pagesPerSeg; i++ {
		id, ok := pool.Alloc(mem.Kernel)
		if !ok {
			return nil, fmt.Errorf("swap: not enough memory for the LFS segment buffer (%d pages)", l.pagesPerSeg)
		}
		l.bufferFrames = append(l.bufferFrames, id)
	}
	cur, err := l.allocSegment()
	if err != nil {
		return nil, err
	}
	l.cur = cur
	return l, nil
}

// BufferFrames reports how many page frames the segment buffer pins.
func (l *LFS) BufferFrames() int { return len(l.bufferFrames) }

// Stats returns a snapshot of the store's counters; FragsLive/FragsFree
// report live and dead page slots in on-disk segments.
func (l *LFS) Stats() stats.Swap {
	st := l.st
	var live, total int
	for i, s := range l.segs {
		if int32(i) == l.cur || s == nil {
			continue
		}
		live += s.live
		total += len(s.pages)
	}
	st.FragsLive = uint64(live)
	st.FragsFree = uint64(total - live)
	return st
}

// newSegment returns segment bookkeeping, recycling an object the cleaner
// freed when one is available; the make fallback runs only until the pool
// warms up.
func (l *LFS) newSegment() *lfsSegment {
	if n := len(l.segPool); n > 0 {
		s := l.segPool[n-1]
		l.segPool[n-1] = nil
		l.segPool = l.segPool[:n-1]
		s.pages = s.pages[:0]
		s.live = 0
		return s
	}
	return &lfsSegment{pages: make([]PageKey, 0, l.pagesPerSeg)}
}

// allocSegment returns a free segment number, growing the log if allowed.
func (l *LFS) allocSegment() (int32, error) {
	if n := len(l.free); n > 0 {
		seg := l.free[n-1]
		l.free = l.free[:n-1]
		l.segs[seg] = l.newSegment()
		return seg, nil
	}
	if l.cfg.MaxSegments > 0 && len(l.segs) >= l.cfg.MaxSegments {
		// Force a synchronous clean; it must free at least one segment or
		// the log is genuinely full (a sizing error surfaced as an error so
		// the run dies cleanly rather than crashing the process).
		freed, err := l.clean()
		if err != nil {
			return 0, err
		}
		if !freed {
			return 0, fmt.Errorf("swap: LFS log full (%d segments) and nothing cleanable", len(l.segs))
		}
		return l.allocSegment()
	}
	l.segs = append(l.segs, l.newSegment())
	return int32(len(l.segs) - 1), nil
}

// Write appends a page to the log buffer; a full buffer is flushed to disk
// as one sequential segment write.
func (l *LFS) Write(key PageKey, data []byte) error {
	if len(data) != l.cfg.PageSize {
		// Invariant: the VM layer always pages out whole pages.
		panic(fmt.Sprintf("swap: LFS.Write of %d bytes, want a whole page", len(data)))
	}
	l.Invalidate(key) // supersede any previous copy (disk or staged)
	seg := l.segs[l.cur]
	idx := int32(len(seg.pages))
	seg.pages = append(seg.pages, key)
	seg.live++
	l.loc[key] = lfsLoc{seg: l.cur, idx: idx}
	// Store the bytes at their eventual on-disk position now (platter
	// write-through); the device cost is charged at flush.
	l.file.WriteStage(l.segOff(l.cur, idx), data)
	l.curUsed++
	if l.curUsed >= l.pagesPerSeg {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	if !l.inClean {
		l.st.PagesOut++
	}
	return nil
}

// Flush writes the partially or fully filled segment buffer to disk as one
// asynchronous sequential operation and opens a new segment.
func (l *LFS) Flush() error {
	if l.curUsed == 0 {
		return nil
	}
	n := l.curUsed * l.cfg.PageSize
	if _, err := l.file.RawWriteStaged(l.segOff(l.cur, 0), n); err != nil {
		return err
	}
	l.curUsed = 0
	cur, err := l.allocSegment()
	if err != nil {
		return err
	}
	l.cur = cur
	return l.maybeClean()
}

// Read fetches a page. Pages still in the segment buffer are served from
// memory (they have not left the machine yet); pages on disk cost one
// whole-page read.
func (l *LFS) Read(key PageKey, buf []byte) (bool, error) {
	pos, ok := l.loc[key]
	if !ok {
		return false, nil
	}
	if pos.seg == l.cur {
		l.file.ReadStaged(l.segOff(pos.seg, pos.idx), buf)
		l.st.PagesIn++
		return true, nil
	}
	if err := l.file.RawRead(buf, l.segOff(pos.seg, pos.idx), l.cfg.PageSize); err != nil {
		return false, err
	}
	l.st.PagesIn++
	return true, nil
}

// Has reports whether the store holds a copy of the page.
func (l *LFS) Has(key PageKey) bool {
	_, ok := l.loc[key]
	return ok
}

// Invalidate marks the page's copy dead.
func (l *LFS) Invalidate(key PageKey) {
	pos, ok := l.loc[key]
	if !ok {
		return
	}
	seg := l.segs[pos.seg]
	seg.pages[pos.idx] = lfsTombstone
	seg.live--
	delete(l.loc, key)
}

// maybeClean runs the segment cleaner when free segments run low.
func (l *LFS) maybeClean() error {
	if l.cfg.MaxSegments == 0 {
		// Generously sized log: clean only when garbage dominates, to bound
		// disk usage without constant copying.
		var dead int
		for i, s := range l.segs {
			if int32(i) != l.cur && s != nil {
				dead += len(s.pages) - s.live
			}
		}
		if dead < 4*l.pagesPerSeg {
			return nil
		}
	} else if len(l.free) >= l.cfg.CleanReserve {
		return nil
	}
	_, err := l.clean()
	return err
}

// clean copies the live pages of the emptiest on-disk segments forward into
// the log and frees those segments. This is the paper's warning made
// concrete: swap segments stay relatively live, so cleaning copies a lot.
// A device error aborts the pass: segments already processed stay freed,
// the victim being copied keeps its remaining live pages.
func (l *LFS) clean() (bool, error) {
	if l.inClean {
		return false, nil
	}
	l.inClean = true
	defer func() { l.inClean = false }()
	l.st.GCs++

	// Pick up to two victim segments — emptiest first, lowest segment
	// number on ties, never the current one. A selection scan replaces the
	// old collect-and-sort so a steady-state cleaning pass allocates
	// nothing.
	v0, v1 := int32(-1), int32(-1)
	for i, s := range l.segs {
		if int32(i) == l.cur || s == nil || len(s.pages) == 0 {
			continue
		}
		switch {
		case v0 < 0 || s.live < l.segs[v0].live:
			v0, v1 = int32(i), v0
		case v1 < 0 || s.live < l.segs[v1].live:
			v1 = int32(i)
		}
	}
	if v0 < 0 {
		return false, nil
	}
	if cap(l.copyBuf) < l.cfg.PageSize {
		l.copyBuf = make([]byte, l.cfg.PageSize)
	}
	buf := l.copyBuf[:l.cfg.PageSize]
	freed := false
	for _, v := range [...]int32{v0, v1} {
		if v < 0 {
			continue
		}
		seg := l.segs[v]
		if seg.live > 0 {
			// One sequential sweep reads the whole victim segment.
			n := len(seg.pages) * l.cfg.PageSize
			if cap(l.sweepBuf) < n {
				l.sweepBuf = make([]byte, n)
			}
			if err := l.file.RawRead(l.sweepBuf[:n], l.segOff(v, 0), n); err != nil {
				return freed, err
			}
			for idx, key := range seg.pages {
				if key == lfsTombstone {
					continue
				}
				l.file.ReadStaged(l.segOff(v, int32(idx)), buf)
				l.st.GCBytesCopied += uint64(l.cfg.PageSize)
				// Rewriting moves the page into the current buffer.
				if err := l.Write(key, buf); err != nil {
					return freed, err
				}
			}
		}
		l.segs[v] = nil
		l.segPool = append(l.segPool, seg)
		l.free = append(l.free, v)
		freed = true
	}
	return freed, nil
}

// segOff is the byte offset of page idx of segment seg in the swap file.
func (l *LFS) segOff(seg, idx int32) int64 {
	return int64(seg)*int64(l.cfg.SegmentBytes) + int64(idx)*int64(l.cfg.PageSize)
}

// CheckConsistency validates the location map against the segment tables.
func (l *LFS) CheckConsistency() error {
	for key, pos := range l.loc {
		if int(pos.seg) >= len(l.segs) || l.segs[pos.seg] == nil {
			return fmt.Errorf("swap: lfs %v points to freed segment %d", key, pos.seg)
		}
		seg := l.segs[pos.seg]
		if int(pos.idx) >= len(seg.pages) || seg.pages[pos.idx] != key {
			return fmt.Errorf("swap: lfs slot mismatch for %v", key)
		}
	}
	for i, seg := range l.segs {
		if seg == nil {
			continue
		}
		live := 0
		for _, key := range seg.pages {
			if key == lfsTombstone {
				continue
			}
			live++
			if pos, ok := l.loc[key]; !ok || pos.seg != int32(i) {
				return fmt.Errorf("swap: lfs live slot for %v not in location map", key)
			}
		}
		if live != seg.live {
			return fmt.Errorf("swap: lfs segment %d live counter %d, recounted %d", i, seg.live, live)
		}
	}
	return nil
}
