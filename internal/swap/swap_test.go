package swap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"compcache/internal/disk"
	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/sim"
)

func newFS(t *testing.T, opts fs.Options) (*fs.FS, *disk.Disk, *sim.Clock) {
	t.Helper()
	if opts.BlockSize == 0 {
		opts.BlockSize = 4096
	}
	var clock sim.Clock
	d, err := disk.New(disk.RZ57(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(16, opts.BlockSize)
	fsys, err := fs.New(opts, d, &clock, pool)
	if err != nil {
		t.Fatal(err)
	}
	return fsys, d, &clock
}

func page(seed int64, size int) []byte {
	p := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

// writeCluster is a test helper asserting the device write succeeds.
func writeCluster(t *testing.T, c *Clustered, items []Item, async bool) {
	t.Helper()
	if err := c.WriteCluster(items, async); err != nil {
		t.Fatalf("WriteCluster: %v", err)
	}
}

// readC adapts Clustered.Read to the historical 4-tuple shape for tests that
// do not exercise checksums or device errors.
func readC(t *testing.T, c *Clustered, key PageKey) (data []byte, compressed bool, neighbors []Neighbor, ok bool) {
	t.Helper()
	data, _, compressed, neighbors, ok, err := c.Read(key)
	if err != nil {
		t.Fatalf("Read(%v): %v", key, err)
	}
	return data, compressed, neighbors, ok
}

// lfsRead is a test helper asserting the device read succeeds.
func lfsRead(t *testing.T, l *LFS, key PageKey, buf []byte) bool {
	t.Helper()
	ok, err := l.Read(key, buf)
	if err != nil {
		t.Fatalf("Read(%v): %v", key, err)
	}
	return ok
}

// ---------------------------------------------------------------------------
// Direct store

func TestDirectRoundTrip(t *testing.T) {
	fsys, _, _ := newFS(t, fs.Options{})
	d, err := NewDirect(fsys, 4096)
	if err != nil {
		t.Fatal(err)
	}
	key := PageKey{Seg: 1, Page: 7}
	data := page(1, 4096)
	d.Write(key, data)
	if !d.Has(key) {
		t.Fatal("Has = false after Write")
	}
	got := make([]byte, 4096)
	if ok, err := d.Read(key, got); err != nil || !ok {
		t.Fatalf("Read: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	st := d.Stats()
	if st.PagesOut != 1 || st.PagesIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirectMissingPage(t *testing.T) {
	fsys, _, _ := newFS(t, fs.Options{})
	d, _ := NewDirect(fsys, 4096)
	if ok, err := d.Read(PageKey{0, 0}, make([]byte, 4096)); err != nil || ok {
		t.Fatalf("Read of never-written page: ok=%v err=%v", ok, err)
	}
}

func TestDirectInvalidate(t *testing.T) {
	fsys, _, _ := newFS(t, fs.Options{})
	d, _ := NewDirect(fsys, 4096)
	key := PageKey{2, 3}
	d.Write(key, page(2, 4096))
	d.Invalidate(key)
	if d.Has(key) {
		t.Fatal("Has after Invalidate")
	}
}

func TestDirectSegmentsIsolated(t *testing.T) {
	fsys, _, _ := newFS(t, fs.Options{})
	d, _ := NewDirect(fsys, 4096)
	a := page(10, 4096)
	b := page(11, 4096)
	d.Write(PageKey{1, 0}, a)
	d.Write(PageKey{2, 0}, b)
	got := make([]byte, 4096)
	d.Read(PageKey{1, 0}, got)
	if !bytes.Equal(got, a) {
		t.Fatal("segment files aliased")
	}
}

func TestDirectBadGeometry(t *testing.T) {
	fsys, _, _ := newFS(t, fs.Options{})
	if _, err := NewDirect(fsys, 1000); err == nil {
		t.Fatal("NewDirect accepted non-block-multiple page size")
	}
}

func TestDirectSequentialPagesSequentialOnDisk(t *testing.T) {
	fsys, dk, _ := newFS(t, fs.Options{})
	d, _ := NewDirect(fsys, 4096)
	for p := int32(0); p < 8; p++ {
		d.Write(PageKey{1, p}, page(int64(p), 4096))
	}
	// Sequential whole-page writes to adjacent pages: only the first pays a
	// seek.
	if got := dk.Stats().Seeks; got != 1 {
		t.Fatalf("8 sequential page writes paid %d seeks, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Clustered store

func newClustered(t *testing.T, fsOpts fs.Options, cfg ClusterConfig) (*Clustered, *fs.FS, *disk.Disk) {
	t.Helper()
	fsys, d, _ := newFS(t, fsOpts)
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	c, err := NewClustered(cfg, fsys)
	if err != nil {
		t.Fatal(err)
	}
	return c, fsys, d
}

func TestClusteredConfigValidation(t *testing.T) {
	fsys, _, _ := newFS(t, fs.Options{})
	bad := []ClusterConfig{
		{PageSize: 1000},
		{PageSize: 4096, FragSize: 3000},
		{PageSize: 4096, ClusterBytes: 1000},
		{PageSize: 4096, GCTriggerFrac: 2},
	}
	for i, cfg := range bad {
		if _, err := NewClustered(cfg, fsys); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestClusteredRoundTrip(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{})
	key := PageKey{1, 5}
	data := page(3, 1500) // compressed page, padded to 2 fragments
	writeCluster(t, c, []Item{{Key: key, Data: data, Compressed: true}}, false)
	got, compressed, _, ok := readC(t, c, key)
	if !ok || !compressed {
		t.Fatalf("Read ok=%v compressed=%v", ok, compressed)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredRawItemRoundTrip(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{})
	key := PageKey{1, 9}
	data := page(4, 4096)
	writeCluster(t, c, []Item{{Key: key, Data: data, Compressed: false}}, false)
	got, compressed, _, ok := readC(t, c, key)
	if !ok || compressed {
		t.Fatalf("Read ok=%v compressed=%v", ok, compressed)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestClusteredRawItemWrongSizePanics(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short raw item")
		}
	}()
	c.WriteCluster([]Item{{Key: PageKey{1, 1}, Data: make([]byte, 100), Compressed: false}}, false)
}

func TestClusteredSingleDeviceOpPerCluster(t *testing.T) {
	c, _, d := newClustered(t, fs.Options{}, ClusterConfig{})
	var items []Item
	for i := int32(0); i < 16; i++ {
		items = append(items, Item{Key: PageKey{1, i}, Data: page(int64(i), 1024), Compressed: true})
	}
	w0 := d.Stats().Writes
	writeCluster(t, c, items, false)
	if got := d.Stats().Writes - w0; got != 1 {
		t.Fatalf("cluster write issued %d device ops, want 1", got)
	}
}

func TestClusteredNeighbors(t *testing.T) {
	// Four 1-fragment pages share one 4-KByte block: reading one must return
	// the other three as neighbors.
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{})
	var items []Item
	for i := int32(0); i < 4; i++ {
		items = append(items, Item{Key: PageKey{1, i}, Data: page(int64(i), 1000), Compressed: true})
	}
	writeCluster(t, c, items, false)
	_, _, neighbors, ok := readC(t, c, PageKey{1, 0})
	if !ok {
		t.Fatal("Read failed")
	}
	if len(neighbors) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(neighbors))
	}
	for _, n := range neighbors {
		want := page(int64(n.Key.Page), 1000)
		if !bytes.Equal(n.Data, want) {
			t.Errorf("neighbor %v data mismatch", n.Key)
		}
	}
}

func TestClusteredNoSpanPadsToBlock(t *testing.T) {
	// With SpanBlocks=false a 3-fragment page following a 2-fragment page
	// cannot straddle the block boundary at fragment 4, so it starts at
	// fragment 4 and fragments 2–3 are padding.
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{SpanBlocks: false})
	items := []Item{
		{Key: PageKey{1, 0}, Data: page(1, 2000), Compressed: true}, // 2 frags
		{Key: PageKey{1, 1}, Data: page(2, 2500), Compressed: true}, // 3 frags
	}
	writeCluster(t, c, items, false)
	st := c.Stats()
	if st.FragsLive != 5 {
		t.Fatalf("live frags = %d, want 5", st.FragsLive)
	}
	// Span: 2 frags + 2 pad + 3 frags = 7, rounded to 8 (whole blocks).
	if st.FragsFree != 3 {
		t.Fatalf("free frags = %d, want 3 (2 pad + 1 round-up)", st.FragsFree)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredSpanReadsTwoBlocks(t *testing.T) {
	c, _, d := newClustered(t, fs.Options{}, ClusterConfig{SpanBlocks: true})
	items := []Item{
		{Key: PageKey{1, 0}, Data: page(1, 3000), Compressed: true}, // frags 0-2
		{Key: PageKey{1, 1}, Data: page(2, 3000), Compressed: true}, // frags 3-5: spans blocks 0 and 1
	}
	writeCluster(t, c, items, false)
	r0 := d.Stats().BytesRead
	_, _, _, ok := readC(t, c, PageKey{1, 1})
	if !ok {
		t.Fatal("Read failed")
	}
	if got := d.Stats().BytesRead - r0; got != 8192 {
		t.Fatalf("spanning page read %d bytes, want 8192 (two blocks)", got)
	}
}

func TestClusteredPartialIOReadsExactExtent(t *testing.T) {
	c, _, d := newClustered(t, fs.Options{AllowPartialIO: true}, ClusterConfig{})
	writeCluster(t, c, []Item{{Key: PageKey{1, 0}, Data: page(1, 1500), Compressed: true}}, false)
	r0 := d.Stats().BytesRead
	got, _, neighbors, ok := readC(t, c, PageKey{1, 0})
	if !ok || len(got) != 1500 {
		t.Fatalf("Read ok=%v len=%d", ok, len(got))
	}
	if neighbors != nil {
		t.Fatal("partial-IO read returned neighbors")
	}
	if got := d.Stats().BytesRead - r0; got != 2048 {
		t.Fatalf("read %d bytes, want 2048 (two fragments)", got)
	}
}

func TestClusteredRewriteRelocates(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{})
	key := PageKey{1, 0}
	writeCluster(t, c, []Item{{Key: key, Data: page(1, 1024), Compressed: true}}, false)
	first := c.extents[key].start
	writeCluster(t, c, []Item{{Key: key, Data: page(2, 1024), Compressed: true}}, false)
	second := c.extents[key].start
	if first == second {
		t.Fatal("rewrite stored page at the same location (would be a partial-block overwrite)")
	}
	got, _, _, _ := readC(t, c, key)
	if !bytes.Equal(got, page(2, 1024)) {
		t.Fatal("read returned stale data")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredInvalidate(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{})
	key := PageKey{1, 0}
	writeCluster(t, c, []Item{{Key: key, Data: page(1, 1024), Compressed: true}}, false)
	c.Invalidate(key)
	if c.Has(key) {
		t.Fatal("Has after Invalidate")
	}
	if _, _, _, ok := readC(t, c, key); ok {
		t.Fatal("Read after Invalidate succeeded")
	}
	c.Invalidate(key) // idempotent
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredGCCompactsAndPreservesData(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{GCTriggerFrac: 0.99})
	// Write 64 pages, then invalidate every other one to create garbage.
	contents := make(map[PageKey][]byte)
	var items []Item
	for i := int32(0); i < 64; i++ {
		key := PageKey{1, i}
		data := page(int64(i)+100, 2048)
		contents[key] = data
		items = append(items, Item{Key: key, Data: data, Compressed: true})
		if len(items) == 16 {
			writeCluster(t, c, items, false)
			items = nil
		}
	}
	for i := int32(0); i < 64; i += 2 {
		c.Invalidate(PageKey{1, i})
		delete(contents, PageKey{1, i})
	}
	spanBefore := len(c.marked)
	c.GC()
	if got := c.Stats().GCs; got != 1 {
		t.Fatalf("GCs = %d", got)
	}
	if len(c.marked) >= spanBefore {
		t.Fatalf("GC did not shrink the file span: %d -> %d", spanBefore, len(c.marked))
	}
	for key, want := range contents {
		got, _, _, ok := readC(t, c, key)
		if !ok {
			t.Fatalf("GC lost page %v", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("GC corrupted page %v", key)
		}
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredAutoGCTriggers(t *testing.T) {
	c, _, _ := newClustered(t, fs.Options{}, ClusterConfig{GCTriggerFrac: 0.4})
	// Repeatedly rewrite the same pages; stale copies accumulate until the
	// trigger fires.
	for round := 0; round < 20; round++ {
		var items []Item
		for i := int32(0); i < 16; i++ {
			items = append(items, Item{Key: PageKey{1, i}, Data: page(int64(round*16)+int64(i), 2048), Compressed: true})
		}
		writeCluster(t, c, items, false)
	}
	if c.Stats().GCs == 0 {
		t.Fatal("auto GC never triggered despite heavy rewriting")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Property-style churn: random writes, rewrites, invalidations and GCs never
// lose or corrupt a live page and keep the accounting consistent.
func TestClusteredChurn(t *testing.T) {
	for _, span := range []bool{false, true} {
		for _, partial := range []bool{false, true} {
			c, _, _ := newClustered(t, fs.Options{AllowPartialIO: partial},
				ClusterConfig{SpanBlocks: span, GCTriggerFrac: 0.6})
			rng := rand.New(rand.NewSource(99))
			contents := make(map[PageKey][]byte)
			for step := 0; step < 400; step++ {
				switch rng.Intn(4) {
				case 0, 1: // write a cluster of 1-8 pages
					n := rng.Intn(8) + 1
					var items []Item
					for i := 0; i < n; i++ {
						key := PageKey{1, int32(rng.Intn(40))}
						size := rng.Intn(4096) + 1
						compressed := size < 4096
						if !compressed {
							size = 4096
						}
						data := page(rng.Int63(), size)
						// Avoid duplicate keys within one cluster.
						dup := false
						for _, it := range items {
							if it.Key == key {
								dup = true
							}
						}
						if dup {
							continue
						}
						items = append(items, Item{Key: key, Data: data, Compressed: compressed})
						contents[key] = data
					}
					writeCluster(t, c, items, rng.Intn(2) == 0)
				case 2: // invalidate
					key := PageKey{1, int32(rng.Intn(40))}
					c.Invalidate(key)
					delete(contents, key)
				case 3: // read and verify
					key := PageKey{1, int32(rng.Intn(40))}
					got, _, _, ok := readC(t, c, key)
					want, live := contents[key]
					if ok != live {
						t.Fatalf("span=%v partial=%v: Read(%v) ok=%v, want %v", span, partial, key, ok, live)
					}
					if ok && !bytes.Equal(got, want) {
						t.Fatalf("span=%v partial=%v: Read(%v) data mismatch", span, partial, key)
					}
				}
				if step%50 == 0 {
					if err := c.CheckConsistency(); err != nil {
						t.Fatalf("span=%v partial=%v step %d: %v", span, partial, step, err)
					}
				}
			}
			// Final sweep: every live page is intact.
			for key, want := range contents {
				got, _, _, ok := readC(t, c, key)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("span=%v partial=%v: final verify failed for %v", span, partial, key)
				}
			}
			if err := c.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestClusteredEmptyWrite(t *testing.T) {
	c, _, d := newClustered(t, fs.Options{}, ClusterConfig{})
	w0 := d.Stats().Writes
	writeCluster(t, c, nil, false)
	if d.Stats().Writes != w0 {
		t.Fatal("empty cluster issued a device write")
	}
}

// ---------------------------------------------------------------------------
// LFS store

func newLFS(t *testing.T, cfg LFSConfig) (*LFS, *disk.Disk, *mem.Pool) {
	t.Helper()
	var clock sim.Clock
	d, err := disk.New(disk.RZ57(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(256, 4096)
	fsys, err := fs.New(fs.Options{BlockSize: 4096}, d, &clock, pool)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	l, err := NewLFS(cfg, fsys, pool)
	if err != nil {
		t.Fatal(err)
	}
	return l, d, pool
}

func TestLFSValidation(t *testing.T) {
	var clock sim.Clock
	d, _ := disk.New(disk.RZ57(), &clock)
	pool := mem.NewPool(8, 4096)
	fsys, _ := fs.New(fs.Options{BlockSize: 4096}, d, &clock, pool)
	bad := []LFSConfig{
		{PageSize: 1000},
		{PageSize: 4096, SegmentBytes: 5000},
		{PageSize: 4096, MaxSegments: -1},
	}
	for i, cfg := range bad {
		if _, err := NewLFS(cfg, fsys, pool); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Buffer larger than the pool must fail cleanly.
	if _, err := NewLFS(LFSConfig{PageSize: 4096, SegmentBytes: 64 * 4096}, fsys, pool); err == nil {
		t.Error("oversized buffer accepted")
	}
}

func TestLFSBufferPinsFrames(t *testing.T) {
	l, _, pool := newLFS(t, LFSConfig{SegmentBytes: 16 * 4096})
	if l.BufferFrames() != 16 {
		t.Fatalf("buffer frames = %d", l.BufferFrames())
	}
	if pool.OwnedBy(mem.Kernel) != 16 {
		t.Fatalf("kernel frames = %d", pool.OwnedBy(mem.Kernel))
	}
}

func TestLFSRoundTrip(t *testing.T) {
	l, _, _ := newLFS(t, LFSConfig{SegmentBytes: 8 * 4096})
	data := page(1, 4096)
	l.Write(PageKey{1, 0}, data)
	got := make([]byte, 4096)
	if !lfsRead(t, l, PageKey{1, 0}, got) {
		t.Fatal("read failed")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch (buffer-resident)")
	}
	// Force a flush and re-read from "disk".
	l.Flush()
	if !lfsRead(t, l, PageKey{1, 0}, got) || !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch (flushed)")
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLFSSequentialSegmentWrites(t *testing.T) {
	l, d, _ := newLFS(t, LFSConfig{SegmentBytes: 8 * 4096})
	for i := int32(0); i < 8; i++ {
		l.Write(PageKey{1, i}, page(int64(i), 4096))
	}
	// Exactly one device write for the whole segment, and buffered reads
	// cost nothing.
	if got := d.Stats().Writes; got != 1 {
		t.Fatalf("segment flush issued %d writes, want 1", got)
	}
	if got := d.Stats().BytesWritten; got != 8*4096 {
		t.Fatalf("bytes written = %d", got)
	}
}

func TestLFSMissingAndInvalidate(t *testing.T) {
	l, _, _ := newLFS(t, LFSConfig{SegmentBytes: 4 * 4096})
	if ok, err := l.Read(PageKey{1, 9}, make([]byte, 4096)); err != nil || ok {
		t.Fatalf("read of absent page: ok=%v err=%v", ok, err)
	}
	l.Write(PageKey{1, 0}, page(1, 4096))
	l.Invalidate(PageKey{1, 0})
	if l.Has(PageKey{1, 0}) {
		t.Fatal("Has after Invalidate")
	}
	l.Invalidate(PageKey{1, 0}) // idempotent
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLFSRewriteSupersedes(t *testing.T) {
	l, _, _ := newLFS(t, LFSConfig{SegmentBytes: 4 * 4096})
	key := PageKey{1, 0}
	l.Write(key, page(1, 4096))
	l.Flush()
	l.Write(key, page(2, 4096))
	got := make([]byte, 4096)
	l.Read(key, got)
	if !bytes.Equal(got, page(2, 4096)) {
		t.Fatal("stale data after rewrite")
	}
	st := l.Stats()
	if st.FragsFree == 0 {
		t.Fatal("rewrite left no garbage (tombstone expected)")
	}
}

func TestLFSCleanerReclaimsAndPreservesData(t *testing.T) {
	l, _, _ := newLFS(t, LFSConfig{SegmentBytes: 4 * 4096, MaxSegments: 4, CleanReserve: 1})
	contents := map[PageKey][]byte{}
	// Write and rewrite enough pages to exceed the log cap repeatedly.
	for round := 0; round < 12; round++ {
		for i := int32(0); i < 6; i++ {
			key := PageKey{1, i}
			data := page(int64(round*10)+int64(i), 4096)
			contents[key] = data
			l.Write(key, data)
		}
	}
	if l.Stats().GCs == 0 {
		t.Fatal("cleaner never ran despite the segment cap")
	}
	got := make([]byte, 4096)
	for key, want := range contents {
		if !lfsRead(t, l, key, got) {
			t.Fatalf("cleaner lost %v", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cleaner corrupted %v", key)
		}
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLFSChurn(t *testing.T) {
	l, _, _ := newLFS(t, LFSConfig{SegmentBytes: 8 * 4096, MaxSegments: 6})
	rng := rand.New(rand.NewSource(5))
	contents := map[PageKey][]byte{}
	buf := make([]byte, 4096)
	for step := 0; step < 2000; step++ {
		key := PageKey{1, int32(rng.Intn(24))}
		switch rng.Intn(3) {
		case 0:
			data := page(rng.Int63(), 4096)
			contents[key] = append([]byte(nil), data...)
			l.Write(key, data)
		case 1:
			l.Invalidate(key)
			delete(contents, key)
		case 2:
			want, live := contents[key]
			ok := lfsRead(t, l, key, buf)
			if ok != live {
				t.Fatalf("step %d: Read(%v) ok=%v want %v", step, key, ok, live)
			}
			if ok && !bytes.Equal(buf, want) {
				t.Fatalf("step %d: data mismatch for %v", step, key)
			}
		}
		if step%250 == 0 {
			if err := l.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Property: any write/invalidate sequence keeps the clustered store's
// fragment accounting consistent.
func TestClusteredAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		fsys, _, _ := newFSQuick()
		c, err := NewClustered(ClusterConfig{PageSize: 4096}, fsys)
		if err != nil {
			return false
		}
		for i, op := range ops {
			key := PageKey{1, int32(op % 16)}
			if op&0x8000 != 0 {
				c.Invalidate(key)
			} else {
				size := int(op)%3000 + 1
				c.WriteCluster([]Item{{Key: key, Data: page(int64(i), size), Compressed: true}}, true)
			}
			if c.CheckConsistency() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func newFSQuick() (*fs.FS, *disk.Disk, *sim.Clock) {
	var clock sim.Clock
	d, _ := disk.New(disk.RZ57(), &clock)
	pool := mem.NewPool(8, 4096)
	fsys, _ := fs.New(fs.Options{BlockSize: 4096}, d, &clock, pool)
	return fsys, d, &clock
}
