package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop polices error propagation on the paged-data paths.
//
// PR 3's graceful-degradation ladder only works if every error climbs it:
// a corrupt fragment is re-fetched from a lower level, a dead device
// surfaces as a typed sticky error, and the experiment reports a died
// trial instead of silently producing wrong numbers. One discarded error
// return anywhere on the vm → core → swap → disk/netdev → machine path
// breaks the ladder invisibly — the run keeps going with pages whose
// content is no longer trustworthy.
//
// Three shapes are flagged in the scoped packages (type-informed, so only
// results whose type is really `error` count):
//
//   - a call used as a statement whose results include an error — plain,
//     deferred (`defer f.Close()`) or spawned (`go f.flush()`); the defer
//     and go forms hide the call outside any expression statement, which
//     is exactly where cleanup-path errors die;
//   - an assignment that drops an error result into the blank identifier;
//   - an error variable assigned from a call and then overwritten by a
//     sibling statement before anything reads it (the classic copy-paste
//     shadowing bug).
type ErrDrop struct{}

// Name implements Analyzer.
func (ErrDrop) Name() string { return "errdrop" }

// Doc implements Analyzer.
func (ErrDrop) Doc() string {
	return "forbid discarded or shadowed error returns on the paged-data paths (vm/core/swap/disk/netdev/machine)"
}

// Severity implements Analyzer.
func (ErrDrop) Severity() Severity { return SevError }

// errDropScopes are the paged-data packages whose error returns carry the
// degradation ladder.
var errDropScopes = []string{
	"internal/vm", "internal/core", "internal/swap",
	"internal/disk", "internal/netdev", "internal/machine",
}

// Check implements Analyzer.
func (e ErrDrop) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil {
		return nil
	}
	var out []Diagnostic
	if !inScopes(pkg.Path, errDropScopes) {
		return out
	}
	info := pkg.Mod.Info
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						out = append(out, e.checkDiscardedCall(pkg, info, call, "")...)
					}
				case *ast.DeferStmt:
					out = append(out, e.checkDiscardedCall(pkg, info, n.Call, "deferred ")...)
				case *ast.GoStmt:
					out = append(out, e.checkDiscardedCall(pkg, info, n.Call, "spawned ")...)
				case *ast.AssignStmt:
					out = append(out, e.checkBlank(pkg, info, n)...)
				case *ast.BlockStmt:
					out = append(out, e.checkOverwrites(pkg, info, n)...)
				}
				return true
			})
		}
	}
	return out
}

// checkDiscardedCall flags a statement-position call (plain, deferred or
// spawned) whose results include an error nobody can ever see.
func (e ErrDrop) checkDiscardedCall(pkg *Package, info *types.Info, call *ast.CallExpr, form string) []Diagnostic {
	if errResultIndex(info, call) < 0 || neverFails(info, call) {
		return nil
	}
	return []Diagnostic{diag(pkg, e.Name(), call,
		"%s%s returns an error that is silently discarded; handle it or it never climbs the degradation ladder",
		form, callName(call))}
}

// checkBlank flags `_` receiving an error result.
func (e ErrDrop) checkBlank(pkg *Package, info *types.Info, as *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(as.Rhs) == len(as.Lhs):
			t = info.TypeOf(as.Rhs[i])
		case len(as.Rhs) == 1:
			// Multi-value call: pick the i-th tuple member.
			if tup, ok := info.TypeOf(as.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
		}
		if t != nil && isErrorType(t) {
			out = append(out, diag(pkg, e.Name(), id,
				"error result assigned to the blank identifier; paged-data errors must be handled, not dropped"))
		}
	}
	return out
}

// checkOverwrites flags an error variable written from a call and then
// written again by a later sibling statement, with no statement in
// between (or the second statement itself) reading it.
func (e ErrDrop) checkOverwrites(pkg *Package, info *types.Info, block *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	// last[obj] remembers the most recent unread error-write in this
	// statement list.
	type write struct {
		at   ast.Node
		name string
	}
	last := make(map[types.Object]*write)
	for _, stmt := range block.List {
		// Which error objects does this statement write at its own level,
		// and which does it mention anywhere in its subtree?
		writes := topLevelErrWrites(info, stmt)
		mentioned := mentionedObjects(info, stmt)
		for obj := range mentioned {
			if _, isWrite := writes[obj]; !isWrite {
				// Read (or nested use) clears the pending write.
				delete(last, obj)
			}
		}
		for obj, n := range writes {
			if w, ok := last[obj]; ok {
				// Does the overwriting statement also read the variable
				// (err = fmt.Errorf("...: %w", err) wraps, not drops)?
				if !readsObject(info, stmt, obj, n) {
					out = append(out, diag(pkg, e.Name(), w.at,
						"error assigned to %s is overwritten before anything reads it; the first failure is lost", w.name))
				}
			}
			last[obj] = &write{at: n, name: obj.Name()}
		}
	}
	return out
}

// topLevelErrWrites returns the error-typed objects a statement assigns
// from a call at its own level (not inside nested blocks), keyed to the
// assignment node.
func topLevelErrWrites(info *types.Info, stmt ast.Stmt) map[types.Object]ast.Node {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil
	}
	hasCall := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				hasCall = true
			}
			return !hasCall
		})
	}
	if !hasCall {
		return nil
	}
	writes := make(map[types.Object]ast.Node)
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && isErrorType(v.Type()) {
			writes[obj] = id
		}
	}
	if len(writes) == 0 {
		return nil
	}
	return writes
}

// mentionedObjects collects every object referenced anywhere in a
// statement's subtree.
func mentionedObjects(info *types.Info, stmt ast.Stmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				objs[obj] = true
			}
		}
		return true
	})
	return objs
}

// readsObject reports whether stmt references obj anywhere other than the
// writing identifier itself.
func readsObject(info *types.Info, stmt ast.Stmt, obj types.Object, writeSite ast.Node) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && ast.Node(id) != writeSite {
			if info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isErrorType reports whether t is exactly the predeclared error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// errResultIndex returns the index of the first error in a call's result
// tuple, or -1.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return -1
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErrorType(t) {
			return 0
		}
		return -1
	}
}

// neverFails recognizes the conventional always-nil error sources whose
// discarded error is idiomatic, not a broken ladder: methods on
// strings.Builder / bytes.Buffer and the fmt printers.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if named, ok := deref(s.Recv()).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
		return false
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	return false
}

// callName renders a call target for a message ("m.flush", "Close").
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
