package model

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBandwidthWriteSpeedup(t *testing.T) {
	p := Default()
	// Infinite-ish compression speed, 4:1 compression: speedup -> 1/r = 4.
	if got := p.BandwidthWriteSpeedup(0.25, 1e9); !almost(got, 4, 1e-6) {
		t.Fatalf("got %v, want ~4", got)
	}
	// Compression as fast as I/O, no compression benefit: 1/(1+1) = 0.5.
	if got := p.BandwidthWriteSpeedup(1, 1); !almost(got, 0.5, 1e-9) {
		t.Fatalf("got %v, want 0.5", got)
	}
}

func TestBandwidthReadFasterThanWrite(t *testing.T) {
	p := Default()
	for _, r := range []float64{0.2, 0.5, 0.9} {
		for _, s := range []float64{0.5, 1, 4} {
			if p.BandwidthReadSpeedup(r, s) <= p.BandwidthWriteSpeedup(r, s) {
				t.Fatalf("read path (2x decompression) should beat write path at r=%v s=%v", r, s)
			}
		}
	}
}

func TestBandwidthSpeedupBreakEven(t *testing.T) {
	p := Default()
	// Break-even: 2 = 3/(2s) + 2r. At s=1: 2r = 0.5, r = 0.25.
	if got := p.BandwidthSpeedup(0.25, 1); !almost(got, 1, 1e-9) {
		t.Fatalf("break-even speedup = %v, want 1", got)
	}
	if p.BandwidthSpeedup(0.24, 1) <= 1 {
		t.Fatal("better ratio should win")
	}
	if p.BandwidthSpeedup(0.26, 1) >= 1 {
		t.Fatal("worse ratio should lose")
	}
}

func TestReferenceSpeedupLinearInSpeedWhenFits(t *testing.T) {
	p := Default()
	// r <= 0.5 with W = 2M: everything fits compressed, no I/O term:
	// speedup = 2 / (3/(2s)) = 4s/3, linear in s.
	for _, s := range []float64{1, 2, 4, 8} {
		want := 4 * s / 3
		if got := p.ReferenceSpeedup(0.4, s); !almost(got, want, 1e-9) {
			t.Fatalf("s=%v: got %v, want %v", s, got, want)
		}
	}
}

func TestReferenceSpeedupLeapAtHalf(t *testing.T) {
	p := Default()
	s := 8.0
	below := p.ReferenceSpeedup(0.49, s)
	above := p.ReferenceSpeedup(0.55, s)
	if below <= above {
		t.Fatalf("no leap at r=0.5: below=%v above=%v", below, above)
	}
	// The discontinuity must be substantial at high s: I/O enters the
	// denominator.
	if below/above < 1.3 {
		t.Fatalf("leap too small: %v vs %v", below, above)
	}
}

func TestReferenceSpeedupSlowdownForPoorCompression(t *testing.T) {
	p := Default()
	// Slow compression and bad ratio: the cache should lose.
	if got := p.ReferenceSpeedup(0.95, 0.5); got >= 1 {
		t.Fatalf("got %v, want < 1", got)
	}
}

func TestReadOnlyVariantBeatsReadWrite(t *testing.T) {
	p := Default()
	for _, r := range []float64{0.25, 0.5, 0.8} {
		ro := p.ReadOnlyReferenceSpeedup(r, 4)
		rw := p.ReferenceSpeedup(r, 4)
		if ro <= rw {
			t.Fatalf("r=%v: read-only speedup %v should exceed read-write %v", r, ro, rw)
		}
	}
}

func TestRegionClassification(t *testing.T) {
	cases := map[float64]string{7: ">6x", 6: ">6x", 3: "1-6x", 1: "1-6x", 0.8: "<1x"}
	for v, want := range cases {
		if got := Region(v); got != want {
			t.Errorf("Region(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFigure1aRegionsExist(t *testing.T) {
	// The paper's Figure 1(a) has all three regions; the model must too
	// over the plotted domain.
	p := Default()
	ratios := Linspace(0.05, 1, 20)
	speeds := Logspace(0.25, 32, 20)
	regions := map[string]bool{}
	for _, r := range ratios {
		for _, s := range speeds {
			regions[Region(p.BandwidthSpeedup(r, s))] = true
		}
	}
	for _, want := range []string{">6x", "1-6x", "<1x"} {
		if !regions[want] {
			t.Errorf("region %q missing from the Figure 1(a) domain", want)
		}
	}
}

func TestMonotonicity(t *testing.T) {
	p := Default()
	// Speedup decreases in r and increases in s, everywhere.
	speeds := Logspace(0.5, 16, 8)
	ratios := Linspace(0.1, 1, 8)
	for _, s := range speeds {
		prev := math.Inf(1)
		for _, r := range ratios {
			v := p.BandwidthSpeedup(r, s)
			if v > prev {
				t.Fatalf("BandwidthSpeedup not decreasing in r at s=%v", s)
			}
			prev = v
		}
	}
	for _, r := range ratios {
		prev := 0.0
		for _, s := range speeds {
			v := p.ReferenceSpeedup(r, s)
			if v < prev {
				t.Fatalf("ReferenceSpeedup not increasing in s at r=%v", r)
			}
			prev = v
		}
	}
}

func TestGridShape(t *testing.T) {
	p := Default()
	g := Grid(p.BandwidthSpeedup, Linspace(0.1, 1, 3), Logspace(1, 4, 5))
	if len(g) != 3 || len(g[0]) != 5 {
		t.Fatalf("grid shape %dx%d", len(g), len(g[0]))
	}
}

func TestSpaceHelpers(t *testing.T) {
	lin := Linspace(0, 10, 11)
	if lin[0] != 0 || lin[10] != 10 || lin[5] != 5 {
		t.Fatalf("Linspace wrong: %v", lin)
	}
	log := Logspace(1, 8, 4)
	if !almost(log[0], 1, 1e-9) || !almost(log[3], 8, 1e-9) || !almost(log[1], 2, 1e-9) {
		t.Fatalf("Logspace wrong: %v", log)
	}
	if len(Linspace(1, 2, 1)) != 1 {
		t.Fatal("n=1 Linspace")
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	p := Default()
	for _, f := range []func(){
		func() { p.BandwidthSpeedup(0, 1) },
		func() { p.BandwidthSpeedup(1.5, 1) },
		func() { p.ReferenceSpeedup(0.5, 0) },
		func() { Logspace(0, 1, 3) },
	} {
		func() {
			defer func() { recover() }()
			f()
			t.Error("invalid input did not panic")
		}()
	}
}
