// Fleet: the paper's §1/§6 scenario scaled out — N diskless machines paging
// over one link to a shared page server with its own compressed swap tier,
// all co-advancing on one discrete-event kernel. Machines under memory
// pressure migrate pages into siblings' donated memory before spilling to
// the server, and the whole fleet queues on the server's serial timeline,
// so contention shows up as a stretched fault-latency tail.
//
//	go run ./examples/fleet [-n machines] [-mem MB] [-wireless]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"compcache/internal/cluster"
	"compcache/internal/machine"
	"compcache/internal/netdev"
	"compcache/internal/obs"
)

func main() {
	n := flag.Int("n", 3, "fleet size")
	memMB := flag.Int("mem", 1, "physical memory per machine in MB")
	wireless := flag.Bool("wireless", false, "page over 2-Mbps wireless instead of 10-Mbps Ethernet")
	flag.Parse()

	link := netdev.Ethernet10()
	if *wireless {
		link = netdev.Wireless2()
	}
	c, err := cluster.New(cluster.Config{
		Machines:       *n,
		MemoryBytes:    int64(*memMB) << 20,
		Link:           link,
		Seed:           1,
		DonationFrames: 16,
		Obs:            &obs.Options{},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each member writes a tagged working set ~3x its physical memory (so
	// every eviction must leave the machine), then sweeps it back in a
	// shuffled order, verifying every tag survived the trip through a
	// sibling's memory or the server tier.
	pages := int32(3 * (int64(*memMB) << 20) / 4096)
	spaces := make([]*machine.Space, c.Size())
	rngs := make([]*rand.Rand, c.Size())
	for i := 0; i < c.Size(); i++ {
		i := i
		seed := c.SeedFor(i)
		c.Go(i, func(m *machine.Machine) {
			rng := rand.New(rand.NewSource(seed))
			ps := int64(m.Config().PageSize)
			s := m.NewSegment("fleet", int64(pages)*ps)
			buf := make([]byte, ps)
			for p := int32(0); p < pages; p++ {
				rng.Read(buf)
				s.Write(int64(p)*ps, buf)
				s.WriteWord(int64(p)*ps, uint64(seed)^uint64(p))
			}
			spaces[i], rngs[i] = s, rng
		})
	}
	c.Run()

	for i := 0; i < c.Size(); i++ {
		i := i
		seed := c.SeedFor(i)
		c.Go(i, func(m *machine.Machine) {
			ps := int64(m.Config().PageSize)
			for _, p := range rngs[i].Perm(int(pages)) {
				if got := spaces[i].ReadWord(int64(p) * ps); got != uint64(seed)^uint64(p) && m.Err() == nil {
					log.Fatalf("machine %d page %d corrupted: %#x", i, p, got)
				}
			}
		})
	}
	c.Run()
	if err := c.Err(); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < c.Size(); i++ {
		m := c.Machine(i)
		st := m.Stats()
		fmt.Printf("machine %d: %d faults, %d served from fleet memory\n",
			i, st.VM.Faults, st.VM.RemoteIns)
		if h, ok := m.Metrics().Hist("vm.fault_service"); ok {
			fmt.Printf("  fault service: count=%d mean=%v max=%v\n", h.Count, h.Mean(), h.Max)
		}
	}
	srv := c.Server().Stats()
	fmt.Printf("server: %d ops, %d forwards, %d tier hits, %d tier misses, %d demotions\n",
		srv.Ops, srv.Forwards, srv.TierHits, srv.TierMiss, srv.Demotions)
	fmt.Printf("fleet virtual time: %v\n", c.Kernel.Now())
}
