package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestParallelism(t *testing.T) {
	if got := Parallelism(3); got != 3 {
		t.Fatalf("Parallelism(3) = %d", got)
	}
	for _, n := range []int{0, -1} {
		if got := Parallelism(n); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("Parallelism(%d) = %d, want GOMAXPROCS %d", n, got, runtime.GOMAXPROCS(0))
		}
	}
}

func TestMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 100} {
		got, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapAggregatesErrorsKeepingPartialResults(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		got, err := Map(context.Background(), workers, 10, func(_ context.Context, i int) (string, error) {
			if i == 5 {
				return "", sentinel
			}
			return fmt.Sprint(i), nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v does not wrap sentinel", workers, err)
		}
		if !strings.Contains(err.Error(), "run 5") {
			t.Fatalf("workers=%d: error %q not annotated with index", workers, err)
		}
		if len(got) != 10 {
			t.Fatalf("workers=%d: %d slots, want 10", workers, len(got))
		}
		// Results completed before the failure are retained; index 5 holds
		// the zero value.
		if got[5] != "" {
			t.Fatalf("workers=%d: failed slot holds %q", workers, got[5])
		}
		if got[0] != "0" {
			t.Fatalf("workers=%d: lost completed result: %q", workers, got[0])
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	// Serial mode must not call fn for indexes after the failing one.
	calls := 0
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		calls++
		if i == 2 {
			return 0, errors.New("stop here")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if calls != 3 {
		t.Fatalf("fn called %d times after early error, want 3", calls)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, workers, 8, func(ctx context.Context, i int) (int, error) {
			return i, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	// A barrier only releases once all four indexes are in flight at once;
	// a serial implementation would deadlock here (and fail via the test
	// timeout).
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	got, err := Map(context.Background(), n, n, func(_ context.Context, i int) (int, error) {
		barrier.Done()
		barrier.Wait()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}
