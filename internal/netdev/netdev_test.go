package netdev

import (
	"math"
	"testing"
	"time"

	"compcache/internal/fault"
	"compcache/internal/sim"
)

func newNet(t *testing.T, p Params) (*Net, *sim.Clock) {
	t.Helper()
	var clock sim.Clock
	n, err := New(p, &clock)
	if err != nil {
		t.Fatal(err)
	}
	return n, &clock
}

func TestValidate(t *testing.T) {
	for _, p := range []Params{Ethernet10(), Wireless2()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	bad := []Params{
		{BytesPerSec: 0, PacketBytes: 1024},
		{BytesPerSec: 1e6, PacketBytes: 0},
		{BytesPerSec: 1e6, PacketBytes: 1024, RTT: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Params{}, &sim.Clock{}); err == nil {
		t.Error("New accepted invalid params")
	}
}

func TestTransferRoundsToPackets(t *testing.T) {
	p := Params{BytesPerSec: 1e6, PacketBytes: 1024}
	if p.TransferTime(1) != p.TransferTime(1024) {
		t.Error("1 byte should cost a packet")
	}
	if p.TransferTime(1025) != p.TransferTime(2048) {
		t.Error("1025 bytes should cost two packets")
	}
	if p.TransferTime(0) != 0 {
		t.Error("zero transfer should be free")
	}
}

func TestReadCost(t *testing.T) {
	p := Ethernet10()
	n, clock := newNet(t, p)
	n.Read(0, 4096)
	want := p.PerOp + p.RTT + p.TransferTime(4096)
	if got := time.Duration(clock.Now()); got != want {
		t.Fatalf("read took %v, want %v", got, want)
	}
	st := n.Stats()
	if st.Reads != 1 || st.BytesRead != 4096 || st.Seeks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoSequentialDiscount(t *testing.T) {
	// Unlike a disk, back-to-back sequential reads cost the same as random
	// ones: the RTT is paid every time.
	p := Ethernet10()
	n, clock := newNet(t, p)
	n.Read(0, 4096)
	t0 := clock.Now()
	n.Read(4096, 4096)
	if got := clock.Elapsed(t0); got != p.PerOp+p.RTT+p.TransferTime(4096) {
		t.Fatalf("sequential read took %v", got)
	}
}

func TestAsyncQueue(t *testing.T) {
	n, clock := newNet(t, Wireless2())
	done, err := n.WriteAsync(0, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatal("async send advanced the clock")
	}
	// A read queues behind the pending send.
	n.Read(0, 4096)
	if clock.Now() <= done {
		t.Fatal("read did not queue behind the async send")
	}
	n.Drain()
	if sim.Time(0) >= n.BusyUntil() {
		t.Fatal("busy timeline not advanced")
	}
}

func TestWirelessSlowerThanEthernet(t *testing.T) {
	e, eClock := newNet(t, Ethernet10())
	w, wClock := newNet(t, Wireless2())
	e.Read(0, 4096)
	w.Read(0, 4096)
	if wClock.Now() <= eClock.Now() {
		t.Fatal("wireless should be slower than Ethernet")
	}
}

func TestGranularity(t *testing.T) {
	n, _ := newNet(t, Ethernet10())
	if n.Granularity() != 1024 {
		t.Fatalf("granularity = %d", n.Granularity())
	}
	if n.Params().PacketBytes != 1024 {
		t.Fatal("params accessor broken")
	}
}

func TestSyncWriteCost(t *testing.T) {
	p := Wireless2()
	n, clock := newNet(t, p)
	n.Write(0, 4096)
	want := p.PerOp + p.RTT + p.TransferTime(4096)
	if got := time.Duration(clock.Now()); got != want {
		t.Fatalf("write took %v, want %v", got, want)
	}
	if n.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}

func TestValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"minimal valid", Params{BytesPerSec: 1, PacketBytes: 1}, true},
		{"NaN bandwidth", Params{BytesPerSec: math.NaN(), PacketBytes: 1024}, false},
		{"Inf bandwidth", Params{BytesPerSec: math.Inf(1), PacketBytes: 1024}, false},
		{"negative packet", Params{BytesPerSec: 1e6, PacketBytes: -1}, false},
		{"packet at cap", Params{BytesPerSec: 1e6, PacketBytes: 1 << 30}, true},
		{"packet overflow-adjacent", Params{BytesPerSec: 1e6, PacketBytes: math.MaxInt}, false},
		{"negative retries", Params{BytesPerSec: 1e6, PacketBytes: 1024, Retries: -1}, false},
		{"negative retry base", Params{BytesPerSec: 1e6, PacketBytes: 1024, RetryBase: -time.Millisecond}, false},
		{"negative retry max", Params{BytesPerSec: 1e6, PacketBytes: 1024, RetryMax: -time.Millisecond}, false},
		{"base above max", Params{BytesPerSec: 1e6, PacketBytes: 1024, RetryBase: time.Second, RetryMax: time.Millisecond}, false},
		{"uncapped backoff", Params{BytesPerSec: 1e6, PacketBytes: 1024, Retries: 2, RetryBase: time.Millisecond}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// injectorOn attaches an always-fail write injector to a fresh net device.
func injectorOn(t *testing.T, p Params, cfg fault.Config) (*Net, *sim.Clock) {
	t.Helper()
	n, clock := newNet(t, p)
	in, err := fault.New(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	n.SetFaultInjector(in)
	return n, clock
}

func TestRetryExhaustionCostsBackoffInVirtualTime(t *testing.T) {
	p := Params{
		BytesPerSec: 1e6,
		PacketBytes: 1024,
		RTT:         time.Millisecond,
		Retries:     3,
		RetryBase:   2 * time.Millisecond,
		RetryMax:    5 * time.Millisecond,
	}
	n, clock := injectorOn(t, p, fault.Config{Seed: 1, WriteErrorRate: 1})
	err := n.Write(0, 4096)
	if err == nil {
		t.Fatal("rate-1 write errors exhausted retries without failing")
	}
	svc := p.PerOp + p.RTT + p.TransferTime(4096)
	// 4 attempts (1 + 3 retries) plus capped exponential backoff 2, 4, 5 ms.
	want := 4*svc + 2*time.Millisecond + 4*time.Millisecond + 5*time.Millisecond
	if got := time.Duration(clock.Now()); got != want {
		t.Fatalf("failed write took %v, want %v", got, want)
	}
	if got := n.Stats().Retries; got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	// With a 50% write error rate and 8 retries, some writes need retries
	// and essentially all eventually succeed; the test asserts the
	// deterministic aggregate.
	p := Ethernet10()
	p.Retries = 8
	n, _ := injectorOn(t, p, fault.Config{Seed: 3, WriteErrorRate: 0.5})
	fails := 0
	for i := 0; i < 50; i++ {
		if err := n.Write(int64(i)*4096, 4096); err != nil {
			fails++
		}
	}
	st := n.Stats()
	if fails != 0 {
		t.Fatalf("%d writes failed despite 8 retries at 50%% error rate", fails)
	}
	if st.Retries == 0 {
		t.Fatal("no retries recorded at 50% error rate")
	}
}

func TestAsyncRetryBackoffDelaysQueueNotCaller(t *testing.T) {
	p := Params{
		BytesPerSec: 1e6,
		PacketBytes: 1024,
		Retries:     2,
		RetryBase:   3 * time.Millisecond,
	}
	n, clock := injectorOn(t, p, fault.Config{Seed: 1, WriteErrorRate: 1})
	_, err := n.WriteAsync(0, 1024)
	if err == nil {
		t.Fatal("rate-1 async write did not fail")
	}
	if clock.Now() != 0 {
		t.Fatalf("async retry advanced the caller's clock to %v", clock.Now())
	}
	svc := p.PerOp + p.RTT + p.TransferTime(1024)
	want := sim.Time(0).Add(3*svc + 3*time.Millisecond + 6*time.Millisecond)
	if n.BusyUntil() != want {
		t.Fatalf("BusyUntil = %v, want %v (3 attempts + backoffs on the queue timeline)", n.BusyUntil(), want)
	}
}

func TestFaultFreeRetryKnobsChangeNothing(t *testing.T) {
	with := Ethernet10()
	without := with
	without.Retries, without.RetryBase, without.RetryMax = 0, 0, 0
	a, aClock := newNet(t, with)
	b, bClock := newNet(t, without)
	for i := 0; i < 20; i++ {
		a.Read(int64(i)*4096, 4096)
		b.Read(int64(i)*4096, 4096)
		a.Write(int64(i)*8192, 2048)
		b.Write(int64(i)*8192, 2048)
	}
	if aClock.Now() != bClock.Now() {
		t.Fatal("retry knobs changed fault-free timing")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("retry knobs changed fault-free stats: %+v vs %+v", a.Stats(), b.Stats())
	}
}
