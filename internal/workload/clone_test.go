package workload

import (
	"testing"

	"compcache/internal/machine"
)

func TestCloneGivesIndependentReceivers(t *testing.T) {
	orig := &Sort{Bytes: 1 << 20, Mode: SortPartial, VocabWords: 4000, Seed: 7}
	cp := Clone(orig)
	if cp == Workload(orig) {
		t.Fatal("Clone returned the same pointer")
	}
	s, ok := cp.(*Sort)
	if !ok {
		t.Fatalf("Clone changed the type: %T", cp)
	}
	if *s != *orig {
		t.Fatalf("Clone changed parameters: %+v vs %+v", *s, *orig)
	}
}

func TestCloneCacheSimDoesNotShareMissRates(t *testing.T) {
	orig := &CacheSim{CPUs: 2, Sets: 64, Ways: 2, AddrWords: 1 << 12,
		BlockWordsList: []int{4, 16}, Refs: 1 << 10, Seed: 3}
	m, err := machine.New(machine.Default(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Run(m); err != nil {
		t.Fatal(err)
	}
	rates := append([]float64(nil), orig.MissRates()...)
	if len(rates) == 0 {
		t.Fatal("no miss rates recorded")
	}

	cp := Clone(orig).(*CacheSim)
	m2, err := machine.New(machine.Default(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Run(m2); err != nil {
		t.Fatal(err)
	}
	// The clone must have recorded into its own slice...
	for i, r := range orig.MissRates() {
		if r != rates[i] {
			t.Fatalf("clone run overwrote the original's miss rates at %d", i)
		}
	}
	// ...and, with identical parameters, reproduced identical results.
	cpRates := cp.MissRates()
	if len(cpRates) != len(rates) {
		t.Fatalf("clone recorded %d rates, original %d", len(cpRates), len(rates))
	}
	for i := range rates {
		if cpRates[i] != rates[i] {
			t.Fatalf("clone diverged at rate %d: %v vs %v", i, cpRates[i], rates[i])
		}
	}
}

func TestCloneMultiIsDeep(t *testing.T) {
	inner := &Thrasher{Pages: 64, Write: true, Passes: 1, Seed: 1}
	orig := &Multi{QuantumRefs: 10, Workloads: []Workload{inner, &Sort{Bytes: 1 << 16, Seed: 2}}}
	cp := Clone(orig).(*Multi)
	if len(cp.Workloads) != 2 {
		t.Fatalf("member count %d", len(cp.Workloads))
	}
	for i := range cp.Workloads {
		if cp.Workloads[i] == orig.Workloads[i] {
			t.Fatalf("member %d shared between clone and original", i)
		}
	}
}
