package mem

import (
	"math/rand"
	"testing"
)

func TestPoolBasics(t *testing.T) {
	p := NewPool(4, 4096)
	if p.Total() != 4 || p.FreeCount() != 4 || p.PageSize() != 4096 {
		t.Fatalf("geometry: total %d free %d pagesize %d", p.Total(), p.FreeCount(), p.PageSize())
	}
	f, ok := p.Alloc(VM)
	if !ok || f == NoFrame {
		t.Fatal("Alloc failed on fresh pool")
	}
	if p.Owner(f) != VM || p.OwnedBy(VM) != 1 || p.FreeCount() != 3 {
		t.Fatalf("after alloc: owner %v, vm %d, free %d", p.Owner(f), p.OwnedBy(VM), p.FreeCount())
	}
	if len(p.Bytes(f)) != 4096 {
		t.Fatalf("Bytes len = %d", len(p.Bytes(f)))
	}
	p.Release(f)
	if p.FreeCount() != 4 || p.Owner(f) != Free {
		t.Fatal("release did not return frame")
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(2, 512)
	if _, ok := p.Alloc(FS); !ok {
		t.Fatal("alloc 1 failed")
	}
	if _, ok := p.Alloc(CC); !ok {
		t.Fatal("alloc 2 failed")
	}
	if f, ok := p.Alloc(VM); ok {
		t.Fatalf("alloc on empty pool returned %d", f)
	}
}

func TestTransfer(t *testing.T) {
	p := NewPool(2, 512)
	f, _ := p.Alloc(VM)
	p.Transfer(f, CC)
	if p.Owner(f) != CC || p.OwnedBy(VM) != 0 || p.OwnedBy(CC) != 1 {
		t.Fatalf("transfer bookkeeping wrong: %v", p.Owner(f))
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBytesAreDistinct(t *testing.T) {
	p := NewPool(3, 64)
	a, _ := p.Alloc(VM)
	b, _ := p.Alloc(VM)
	copy(p.Bytes(a), "AAAA")
	copy(p.Bytes(b), "BBBB")
	if string(p.Bytes(a)[:4]) != "AAAA" || string(p.Bytes(b)[:4]) != "BBBB" {
		t.Fatal("frames share storage")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	p := NewPool(1, 64)
	f, _ := p.Alloc(VM)
	p.Release(f)
	mustPanic("double release", func() { p.Release(f) })
	mustPanic("alloc free owner", func() { p.Alloc(Free) })
	mustPanic("bad frame id", func() { p.Bytes(99) })
	mustPanic("transfer of free frame", func() { p.Transfer(f, CC) })
	mustPanic("bad geometry", func() { NewPool(0, 64) })
}

func TestOwnerString(t *testing.T) {
	cases := map[Owner]string{Free: "free", VM: "vm", CC: "cc", FS: "fs", Owner(9): "owner(9)"}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}

// Random alloc/release/transfer churn must preserve conservation.
func TestConservationUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPool(64, 128)
	var held []FrameID
	owners := []Owner{VM, CC, FS}
	for i := 0; i < 10000; i++ {
		switch rng.Intn(3) {
		case 0:
			if f, ok := p.Alloc(owners[rng.Intn(3)]); ok {
				held = append(held, f)
			}
		case 1:
			if len(held) > 0 {
				i := rng.Intn(len(held))
				p.Release(held[i])
				held = append(held[:i], held[i+1:]...)
			}
		case 2:
			if len(held) > 0 {
				p.Transfer(held[rng.Intn(len(held))], owners[rng.Intn(3)])
			}
		}
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if p.FreeCount()+len(held) != p.Total() {
		t.Fatalf("free %d + held %d != total %d", p.FreeCount(), len(held), p.Total())
	}
}

func TestDeterministicAllocationOrder(t *testing.T) {
	p := NewPool(3, 64)
	a, _ := p.Alloc(VM)
	b, _ := p.Alloc(VM)
	c, _ := p.Alloc(VM)
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("allocation order %d,%d,%d, want 0,1,2", a, b, c)
	}
}
