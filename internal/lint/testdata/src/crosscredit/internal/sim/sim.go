// Package sim is the crosscredit fixture's miniature virtual clock: the
// Advance/AdvanceTo methods are what the analyzer recognizes as credit.
package sim

import "time"

// Time is a virtual instant.
type Time int64

// Clock is the fixture's virtual clock.
type Clock struct{ now Time }

// Now reports the current virtual instant.
func (c *Clock) Now() Time { return c.now }

// Advance charges d of virtual time.
func (c *Clock) Advance(d time.Duration) { c.now += Time(d) }

// AdvanceTo moves the clock forward to t.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Kernel is the fixture's discrete-event kernel: on an attached clock every
// Advance resolves to a kernel-mediated Wait, so Wait and Schedule are
// charging calls exactly like the clock's own methods.
type Kernel struct{ now Time }

// Wait parks the calling actor until instant until and reports it.
func (k *Kernel) Wait(id int32, until Time) Time {
	if until > k.now {
		k.now = until
	}
	return k.now
}

// Schedule books a wake-up for actor id at instant at.
func (k *Kernel) Schedule(at Time, id int32) {
	if at > k.now {
		k.now = at
	}
}
