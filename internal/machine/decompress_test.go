package machine

import (
	"bytes"
	"testing"

	"compcache/internal/core"
	"compcache/internal/swap"
)

// growingCodec decompresses correctly but ignores the destination buffer,
// returning a freshly allocated slice — the behaviour of any append-style
// codec that transiently grows past cap(dst). decompressInto must detect
// that the result no longer aliases the page buffer and copy it back.
type growingCodec struct{}

func (growingCodec) Name() string                    { return "growing-test" }
func (growingCodec) MaxCompressedSize(n int) int     { return n }
func (growingCodec) Compress(dst, src []byte) []byte { return append(dst, src...) }
func (growingCodec) Decompress(dst, src []byte) ([]byte, error) {
	out := make([]byte, 0, 2*len(src)+1) // never aliases dst
	return append(out, src...), nil
}

func TestDecompressIntoCopiesBackNonAliasedResult(t *testing.T) {
	m, err := New(Default(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	const seg = int32(7)
	m.segCodec[seg] = growingCodec{}

	want := make([]byte, m.Config().PageSize)
	for i := range want {
		want[i] = byte(i * 31)
	}
	cdata := append([]byte(nil), want...)

	// A page buffer with exactly page-size capacity, pre-filled with stale
	// contents: the codec above returns a fresh array, so without the
	// copy-back the stale bytes would survive.
	page := make([]byte, m.Config().PageSize)
	for i := range page {
		page[i] = 0xEE
	}
	if err := m.decompressInto(page, cdata, core.Checksum(cdata), swap.PageKey{Seg: seg, Page: 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, want) {
		t.Fatal("page buffer kept stale contents after non-aliased decompression")
	}
}

func TestDecompressIntoAliasedResultUnchanged(t *testing.T) {
	// The common case — the codec fills the provided buffer in place — must
	// keep working with real codecs.
	m, err := New(Default(1 << 20).WithCC())
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("compression cache "), 300)[:m.Config().PageSize]
	codec := m.codecFor(0)
	cdata := codec.Compress(nil, want)
	page := make([]byte, m.Config().PageSize)
	if err := m.decompressInto(page, cdata, core.Checksum(cdata), swap.PageKey{Seg: 0, Page: 0}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, want) {
		t.Fatal("round trip through decompressInto corrupted the page")
	}
}
