package fs

import (
	"fmt"
	"sort"

	"compcache/internal/mem"
	"compcache/internal/sim"
	"compcache/internal/snap"
)

// SnapshotTo serializes the file system: every file's metadata and platter
// blocks (in name- and block-sorted order, like Image), then the buffer
// cache in LRU order as (file name, block) pairs, then the hit counters.
// Frame IDs are recorded as-is; the pool restores them verbatim.
func (fs *FS) SnapshotTo(w *snap.Writer) {
	w.Section("fs")
	w.I32(fs.nextID)
	w.I64(fs.nextBase)
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, name := range names {
		f := fs.files[name]
		w.String(f.name)
		w.I32(f.id)
		w.I64(f.base)
		w.I64(f.size)
		blocks := make([]int64, 0, len(f.platter))
		for b := range f.platter {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		w.Int(len(blocks))
		for _, b := range blocks {
			w.I64(b)
			w.Bytes32(f.platter[b])
		}
	}
	w.Int(len(fs.cache))
	for cb := fs.lruHead; cb != nil; cb = cb.next {
		w.String(cb.key.file.name)
		w.I64(cb.key.block)
		w.I32(int32(cb.frame))
		w.Bool(cb.dirty)
		w.I64(int64(cb.lastUse))
	}
	w.U64(fs.hits)
	w.U64(fs.misses)
	w.U64(fs.ccHits)
	w.U64(fs.writeHits)
}

// RestoreFrom rebuilds the file set and buffer cache. Files that already
// exist (created by the store constructors during machine rebuild) are
// updated in place so any *File handles other subsystems hold stay valid;
// files in the snapshot but not yet present are created, and files present
// but absent from the snapshot are removed.
func (fs *FS) RestoreFrom(r *snap.Reader) error {
	r.Section("fs")
	nextID := r.I32()
	nextBase := r.I64()
	nfiles := r.Int()
	if r.Err() == nil && (nfiles < 0 || nfiles > 1<<20) {
		return fmt.Errorf("fs: snapshot claims %d files", nfiles)
	}
	seen := make(map[string]bool, nfiles)
	for i := 0; i < nfiles && r.Err() == nil; i++ {
		name := r.String()
		id := r.I32()
		base := r.I64()
		size := r.I64()
		nblocks := r.Int()
		if r.Err() != nil {
			break
		}
		if nblocks < 0 || nblocks > 1<<24 {
			return fmt.Errorf("fs: snapshot file %q claims %d blocks", name, nblocks)
		}
		f := fs.files[name]
		if f == nil {
			f = &File{fs: fs, name: name}
			fs.files[name] = f
		}
		f.id = id
		f.base = base
		f.size = size
		f.platter = make(map[int64][]byte, nblocks)
		for b := 0; b < nblocks; b++ {
			block := r.I64()
			data := r.Bytes32()
			if r.Err() != nil {
				break
			}
			if len(data) != fs.opts.BlockSize {
				return fmt.Errorf("fs: snapshot block %d of %q is %d bytes, want %d",
					block, name, len(data), fs.opts.BlockSize)
			}
			f.platter[block] = data
		}
		seen[name] = true
	}
	ncache := r.Int()
	if r.Err() == nil && (ncache < 0 || ncache > 1<<24) {
		return fmt.Errorf("fs: snapshot claims %d cached blocks", ncache)
	}
	cache := make(map[blockKey]*cacheBlock, ncache)
	var head, tail *cacheBlock
	for i := 0; i < ncache && r.Err() == nil; i++ {
		name := r.String()
		block := r.I64()
		frame := mem.FrameID(r.I32())
		dirty := r.Bool()
		lastUse := sim.Time(r.I64())
		if r.Err() != nil {
			break
		}
		f := fs.files[name]
		if f == nil || !seen[name] {
			return fmt.Errorf("fs: snapshot caches block %d of unknown file %q", block, name)
		}
		cb := &cacheBlock{
			key:     blockKey{file: f, block: block},
			frame:   frame,
			dirty:   dirty,
			lastUse: lastUse,
			prev:    tail,
		}
		if tail != nil {
			tail.next = cb
		} else {
			head = cb
		}
		tail = cb
		cache[cb.key] = cb
	}
	hits := r.U64()
	misses := r.U64()
	ccHits := r.U64()
	writeHits := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	for name := range fs.files {
		if !seen[name] {
			delete(fs.files, name)
		}
	}
	fs.nextID = nextID
	fs.nextBase = nextBase
	fs.cache = cache
	fs.lruHead, fs.lruTail = head, tail
	fs.hits = hits
	fs.misses = misses
	fs.ccHits = ccHits
	fs.writeHits = writeHits
	return nil
}
